#include "cholesky/cholesky_common.hpp"

#include "cholesky/confchox25d.hpp"
#include "cholesky/scalapack2d_chol.hpp"
#include "support/assert.hpp"

namespace conflux::cholesky {

std::unique_ptr<CholeskyAlgorithm> make_cholesky_algorithm(
    const std::string& name) {
  if (name == "COnfCHOX") return std::make_unique<Confchox25D>();
  if (name == "ScaLAPACK") return std::make_unique<Scalapack2DCholesky>();
  CONFLUX_EXPECTS_MSG(false, "unknown Cholesky algorithm '" << name << "'");
  return nullptr;  // unreachable
}

std::vector<std::unique_ptr<CholeskyAlgorithm>> all_cholesky_algorithms() {
  std::vector<std::unique_ptr<CholeskyAlgorithm>> algos;
  algos.push_back(make_cholesky_algorithm("ScaLAPACK"));
  algos.push_back(make_cholesky_algorithm("COnfCHOX"));
  return algos;
}

}  // namespace conflux::cholesky
