/// \file scalapack2d_chol.hpp
/// ScaLAPACK-style 2D block-cyclic Cholesky (pdpotrf): the comparison
/// baseline for COnfCHOX, mirroring how lu/scalapack2d.hpp serves COnfLUX.
/// Right-looking elimination on a Pr x Pc grid chosen greedily over all
/// ranks (the LibSci chooser):
///   - the diagonal-block owner factors A00 = L00 L00^T locally and
///     broadcasts L00 down its process column,
///   - the panel column solves L10 := A10 * L00^{-T},
///   - the L panel is broadcast along process rows, then transposed into
///     the process columns (each column's owner re-broadcasts the rows that
///     are that column's trailing indices — pdpotrf's transpose step),
///   - every rank updates its local trailing block A11 -= L10 * L10^T.
/// Leading cost N^2/2 (1/Pr + 1/Pc) elements per rank — no memory-for-
/// communication trade-off, hence strictly more traffic than COnfCHOX
/// whenever replication depth c > 1 is available.
#pragma once

#include "cholesky/cholesky_common.hpp"

namespace conflux::cholesky {

class Scalapack2DCholesky final : public CholeskyAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "ScaLAPACK"; }
  [[nodiscard]] CholResult run(const linalg::Matrix* a,
                               const CholConfig& cfg) override;
};

}  // namespace conflux::cholesky
