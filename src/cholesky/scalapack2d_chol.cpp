#include "cholesky/scalapack2d_chol.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "grid/block_cyclic.hpp"
#include "grid/grid_opt.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "simnet/collectives.hpp"
#include "simnet/spmd.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace conflux::cholesky {

namespace {

using grid::BlockCyclic1D;
using grid::Grid2D;
using linalg::Matrix;
using simnet::Comm;
using simnet::Group;
using simnet::make_tag;
using simnet::Tag;

/// Per-rank view of the 2D block-cyclic decomposition (the same local
/// bookkeeping as the LU baseline in lu/scalapack2d.cpp).
struct Local2D {
  int pr = 0, pc = 0;
  BlockCyclic1D rowmap{1, 1, 1};
  BlockCyclic1D colmap{1, 1, 1};
  std::vector<int> my_rows;  ///< owned global rows, ascending
  std::vector<int> my_cols;  ///< owned global cols, ascending
  Matrix loc;                ///< numeric local block (my_rows x my_cols)

  [[nodiscard]] int lrow(int g) const { return rowmap.local_of(g); }
  [[nodiscard]] int lcol(int g) const { return colmap.local_of(g); }

  /// First local row/col index whose global index is >= g.
  [[nodiscard]] int lrow_lower_bound(int g) const {
    return static_cast<int>(
        std::lower_bound(my_rows.begin(), my_rows.end(), g) -
        my_rows.begin());
  }
  [[nodiscard]] int lcol_lower_bound(int g) const {
    return static_cast<int>(
        std::lower_bound(my_cols.begin(), my_cols.end(), g) -
        my_cols.begin());
  }
};

struct BodyParams {
  int n = 0;
  int nb = 0;
  Grid2D g{1, 1};
  bool numeric = true;
  const Matrix* a = nullptr;
  Matrix* gathered = nullptr;  ///< out-of-band factor collection (verify)
  std::atomic<bool>* not_spd = nullptr;
  telemetry::TelemetryBoard* tel = nullptr;  ///< ConfScope spans (optional)
};

void cholesky2d_body(Comm& comm, const BodyParams& params) {
  const int n = params.n;
  const int nb = params.nb;
  const Grid2D& g = params.g;
  const bool numeric = params.numeric;
  CONFLUX_EXPECTS(n % nb == 0);
  const int me_rank = comm.rank();

  Local2D me;
  me.pr = g.row_of(comm.rank());
  me.pc = g.col_of(comm.rank());
  me.rowmap = BlockCyclic1D(n, nb, g.rows());
  me.colmap = BlockCyclic1D(n, nb, g.cols());
  me.my_rows = me.rowmap.indices_of_owner(me.pr);
  me.my_cols = me.colmap.indices_of_owner(me.pc);
  if (numeric) {
    me.loc = Matrix(static_cast<int>(me.my_rows.size()),
                    static_cast<int>(me.my_cols.size()));
    for (std::size_t i = 0; i < me.my_rows.size(); ++i)
      for (std::size_t j = 0; j < me.my_cols.size(); ++j)
        if (me.my_rows[i] >= me.my_cols[j])  // lower triangle only
          me.loc(static_cast<int>(i), static_cast<int>(j)) =
              (*params.a)(me.my_rows[i], me.my_cols[j]);
  }

  auto col_group = [&](int pc) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(g.rows()));
    for (int pr = 0; pr < g.rows(); ++pr) ranks.push_back(g.rank_of(pr, pc));
    return Group(std::move(ranks));
  };
  auto row_group = [&](int pr) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(g.cols()));
    for (int pc = 0; pc < g.cols(); ++pc) ranks.push_back(g.rank_of(pr, pc));
    return Group(std::move(ranks));
  };

  const int steps = n / nb;
  for (int s = 0; s < steps; ++s) {
    const int k0 = s * nb;
    const int pck = me.colmap.owner_of(k0);
    const int prk = me.rowmap.owner_of(k0);
    const std::uint32_t ts = static_cast<std::uint32_t>(s);

    // ---- Diagonal block: factor and broadcast L00 down the column -------
    Matrix l00(nb, nb);
    if (me.pc == pck) {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kPanelFactor, s);
      const Group cg = col_group(pck);
      if (numeric) {
        std::vector<double> buf(static_cast<std::size_t>(nb) * nb, 0.0);
        if (me.pr == prk) {
          linalg::MatrixView a00 =
              me.loc.block(me.lrow(k0), me.lcol(k0), nb, nb);
          if (linalg::potrf_unblocked(a00) != linalg::FactorStatus::Ok)
            params.not_spd->store(true, std::memory_order_relaxed);
          for (int i = 0; i < nb; ++i)
            for (int j = 0; j <= i; ++j)
              buf[static_cast<std::size_t>(i) * nb + j] = a00(i, j);
        }
        simnet::bcast(comm, cg, prk, buf, make_tag(20, ts, 0));
        std::copy(buf.begin(), buf.end(), l00.data());
      } else {
        (void)simnet::bcast_ghost(comm, cg, prk,
                                  static_cast<std::size_t>(nb) * nb * 8,
                                  make_tag(20, ts, 0));
      }
    }

    // ---- Panel solve: L10 := A10 * L00^{-T} on the panel column ---------
    const int mrow0 = me.lrow_lower_bound(k0 + nb);
    const int mtrail = static_cast<int>(me.my_rows.size()) - mrow0;
    if (numeric && me.pc == pck && mtrail > 0) {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kTrsm, s);
      linalg::trsm_right_lower_transposed(
          l00.view(), me.loc.block(mrow0, me.lcol(k0), mtrail, nb));
    }

    // ---- Broadcast the L panel along process rows -----------------------
    Matrix lpanel;  // mtrail x nb, rows ascending global (>= k0 + nb)
    {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kSchurUpdate, s);
      const Group rg = row_group(me.pr);
      const Tag tag = make_tag(24, ts, 0);
      if (numeric) {
        std::vector<double> buf(static_cast<std::size_t>(mtrail) * nb);
        if (me.pc == pck)
          for (int il = 0; il < mtrail; ++il)
            for (int q = 0; q < nb; ++q)
              buf[static_cast<std::size_t>(il) * nb + q] =
                  me.loc(mrow0 + il, me.lcol(k0) + q);
        simnet::bcast(comm, rg, pck, buf, tag);
        lpanel = Matrix(mtrail, nb);
        std::copy(buf.begin(), buf.end(), lpanel.data());
      } else {
        (void)simnet::bcast_ghost(
            comm, rg, pck, static_cast<std::size_t>(mtrail) * nb * 8, tag);
      }
    }

    // ---- Transpose: re-broadcast rows into their process columns --------
    // Rank (pr, pc) now holds the L10 rows owned by pr. Each trailing
    // column c2 of process column pc needs row c2 of L10; its holder
    // within the column group is process row rowmap.owner_of(c2). One
    // broadcast per contributing process row (pdpotrf's transpose step).
    const int ncol0 = me.lcol_lower_bound(k0 + nb);
    const int ntrail = static_cast<int>(me.my_cols.size()) - ncol0;
    Matrix colpanel;  // nb x ntrail: colpanel(k, jc) = L10(col_jc, k)
    if (numeric && ntrail > 0) colpanel = Matrix(nb, ntrail);
    {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kSchurUpdate, s);
      const Group cg = col_group(me.pc);
      for (int pr = 0; pr < g.rows(); ++pr) {
        // Trailing columns of this process column whose L10 row lives on
        // process row pr — identical index arithmetic on every rank.
        std::vector<int> rows_pr;
        for (std::size_t jc = static_cast<std::size_t>(ncol0);
             jc < me.my_cols.size(); ++jc) {
          const int c2 = me.my_cols[jc];
          if (me.rowmap.owner_of(c2) == pr) rows_pr.push_back(c2);
        }
        if (rows_pr.empty()) continue;
        const Tag tag = make_tag(25, ts, static_cast<std::uint32_t>(pr));
        if (numeric) {
          std::vector<double> buf(rows_pr.size() *
                                  static_cast<std::size_t>(nb));
          if (me.pr == pr) {
            std::size_t off = 0;
            for (int c2 : rows_pr) {
              const int il = me.lrow(c2) - mrow0;
              auto row = lpanel.row(il);
              for (int q = 0; q < nb; ++q) buf[off++] = row[q];
            }
          }
          simnet::bcast(comm, cg, pr, buf, tag);
          std::size_t off = 0;
          for (int c2 : rows_pr) {
            const int jc = me.lcol(c2) - ncol0;
            for (int q = 0; q < nb; ++q) colpanel(q, jc) = buf[off++];
          }
        } else {
          (void)simnet::bcast_ghost(
              comm, cg, pr, rows_pr.size() * static_cast<std::size_t>(nb) * 8,
              tag);
        }
      }
    }

    // ---- Local trailing update A11 -= L10 * L10^T -----------------------
    if (numeric && mtrail > 0 && ntrail > 0) {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kSchurUpdate, s);
      linalg::schur_update(me.loc.block(mrow0, ncol0, mtrail, ntrail),
                           lpanel.view(), colpanel.view());
    }
  }

  // ---- Out-of-band result collection (not part of measured volume) -----
  if (numeric && params.gathered != nullptr) {
    for (std::size_t i = 0; i < me.my_rows.size(); ++i)
      for (std::size_t j = 0; j < me.my_cols.size(); ++j)
        if (me.my_rows[i] >= me.my_cols[j])
          (*params.gathered)(me.my_rows[i], me.my_cols[j]) =
              me.loc(static_cast<int>(i), static_cast<int>(j));
  }
}

}  // namespace

CholResult Scalapack2DCholesky::run(const linalg::Matrix* a,
                                    const CholConfig& cfg) {
  CONFLUX_EXPECTS(cfg.n >= 1 && cfg.p >= 1);
  CONFLUX_EXPECTS(cfg.mode == Mode::DryRun || a != nullptr);

  const Grid2D g = grid::choose_grid_2d_all_ranks(cfg.p);
  const int nb =
      grid::choose_block_size(cfg.n, 1, cfg.block > 0 ? cfg.block : 64);

  BodyParams params;
  params.n = cfg.n;
  params.nb = nb;
  params.g = g;
  params.numeric = (cfg.mode == Mode::Numeric);
  params.a = a;
  params.tel = cfg.telemetry;
  std::atomic<bool> not_spd{false};
  params.not_spd = &not_spd;

  Matrix gathered;
  const bool gather = params.numeric && (cfg.verify || cfg.keep_factors);
  if (gather) {
    gathered = Matrix(cfg.n, cfg.n);
    params.gathered = &gathered;
  }

  simnet::Network net(g.active(), cfg.fabric);
  factor::attach_instruments(net, cfg);
  Stopwatch timer;
  simnet::run_spmd(net,
                   [&](simnet::Comm& comm) { cholesky2d_body(comm, params); });

  CholResult result;
  result.seconds = timer.seconds();
  factor::fill_comm_stats(result, net, g.active(), cfg.p);
  result.grid = g.to_string();
  result.block = nb;
  result.spd = !not_spd.load(std::memory_order_relaxed);
  if (gather) {
    if (cfg.verify)
      result.residual = linalg::cholesky_residual(*a, gathered.view());
    if (cfg.keep_factors)
      result.factors = std::make_shared<Matrix>(
          linalg::extract_lower(gathered.view()));
  }
  return result;
}

}  // namespace conflux::cholesky
