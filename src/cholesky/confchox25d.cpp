#include "cholesky/confchox25d.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "factor/step_records.hpp"
#include "grid/block_cyclic.hpp"
#include "grid/grid_opt.hpp"
#include "linalg/blas.hpp"
#include "linalg/potrf.hpp"
#include "simnet/collectives.hpp"
#include "simnet/spmd.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace conflux::cholesky {

namespace {

using factor::StepRecord;
using grid::chunk_range;
using grid::Coord3;
using grid::Grid3D;
using linalg::Matrix;
using simnet::Comm;
using simnet::make_tag;
using simnet::Tag;

/// Resolved run parameters shared by every rank.
struct Plan {
  int n = 0;
  int v = 0;
  int steps = 0;
  Grid3D g{1, 1, 1};
  int active = 0;
  bool numeric = true;
  telemetry::TelemetryBoard* tel = nullptr;  ///< ConfScope spans (optional)
};

/// Per-rank mutable state. Tile storage mirrors COnfLUX: tiles
/// It % Px == me.px, Jt % Py == me.py, packed [(It/Px) * ltc + (Jt/Py)]
/// * v^2, row-major within a tile. Only tiles It >= Jt carry meaningful
/// data (the trailing matrix is symmetric; the strict upper tiles are
/// never read or written).
struct RankState {
  Coord3 me;
  std::vector<double> tiles;
  int ltr = 0, ltc = 0;
};

/// Pointer to the (It, Jt) tile owned by this rank.
double* tile_at(const Plan& plan, RankState& st, int tile_row, int tile_col) {
  const int lr = tile_row / plan.g.px_extent();
  const int lc = tile_col / plan.g.py_extent();
  return st.tiles.data() +
         (static_cast<std::size_t>(lr) * st.ltc + lc) *
             (static_cast<std::size_t>(plan.v) * plan.v);
}

/// Element reference inside the owned tile covering (row, col).
double& elem_at(const Plan& plan, RankState& st, int row, int col) {
  double* t = tile_at(plan, st, row / plan.v, col / plan.v);
  return t[static_cast<std::size_t>(row % plan.v) * plan.v + col % plan.v];
}

/// Tiles It in [first, n/v) owned along one grid dimension (extent, pos),
/// ascending.
std::vector<int> owned_tiles(const Plan& plan, int first, int extent,
                             int pos) {
  std::vector<int> out;
  const int tiles_total = plan.n / plan.v;
  for (int it = first; it < tiles_total; ++it)
    if (it % extent == pos) out.push_back(it);
  return out;
}

/// ---- Step 1: reduce panel column t across layers onto l_star -------------
/// The next panel's column strip (rows >= t*v, the v columns of tile column
/// t) is the only data whose per-layer partial sums must be combined:
/// Cholesky's row panel is the transposed column panel, so COnfLUX's second
/// reduce (its step 5) has no counterpart here.
void reduce_panel_column(const Plan& plan, RankState& st, const Comm& comm,
                         int t, int l_star, int py_c) {
  if (plan.g.layers() == 1) return;
  if (st.me.py != py_c) return;
  const auto mine = owned_tiles(plan, t, plan.g.px_extent(), st.me.px);
  if (mine.empty()) return;
  const int v = plan.v;
  const int col0 = t * v;
  const std::size_t doubles =
      mine.size() * static_cast<std::size_t>(v) * v;

  if (st.me.l != l_star) {
    const Tag tag = make_tag(1, static_cast<std::uint32_t>(t),
                             static_cast<std::uint32_t>(st.me.l));
    const int dst = plan.g.rank_of({st.me.px, py_c, l_star});
    if (plan.numeric) {
      std::vector<double> buf;
      buf.reserve(doubles);
      for (int it : mine)
        for (int r = it * v; r < (it + 1) * v; ++r) {
          double* base = &elem_at(plan, st, r, col0);
          buf.insert(buf.end(), base, base + v);
          std::fill(base, base + v, 0.0);
        }
      comm.send(dst, tag, std::move(buf));
    } else {
      comm.send_ghost_doubles(dst, tag, doubles);
    }
  } else {
    for (int l = 0; l < plan.g.layers(); ++l) {
      if (l == l_star) continue;
      const Tag tag = make_tag(1, static_cast<std::uint32_t>(t),
                               static_cast<std::uint32_t>(l));
      const int src = plan.g.rank_of({st.me.px, py_c, l});
      if (plan.numeric) {
        // Accumulate straight out of the shared payload; no copy-out.
        const simnet::BufferView buf = comm.recv_view(src, tag);
        const double* in = buf.data();
        for (int it : mine)
          for (int r = it * v; r < (it + 1) * v; ++r) {
            double* base = &elem_at(plan, st, r, col0);
            for (int k = 0; k < v; ++k) base[k] += *in++;
          }
      } else {
        (void)comm.recv_ghost(src, tag);
      }
    }
  }
}

/// ---- Step 2: factor the diagonal block, broadcast L00 --------------------
/// The owner of tile (t, t) on the reducing layer runs the sequential
/// potrf; L00 then travels to every active rank (v^2 per step — the same
/// lower-order term as COnfLUX's A00 broadcast, minus the pivot indices).
Matrix factor_and_bcast_a00(const Plan& plan, RankState& st, const Comm& comm,
                            int t, int l_star, int py_c,
                            const simnet::Group& world,
                            std::atomic<bool>* not_spd) {
  const int v = plan.v;
  const int root = plan.g.rank_of({t % plan.g.px_extent(), py_c, l_star});
  Matrix a00(v, v);
  if (plan.numeric) {
    std::vector<double> flat(static_cast<std::size_t>(v) * v, 0.0);
    if (comm.rank() == root) {
      linalg::MatrixView tile(tile_at(plan, st, t, t), v, v, v);
      if (linalg::potrf_unblocked(tile) != linalg::FactorStatus::Ok)
        not_spd->store(true, std::memory_order_relaxed);
      for (int i = 0; i < v; ++i)
        for (int j = 0; j <= i; ++j)
          flat[static_cast<std::size_t>(i) * v + j] = tile(i, j);
    }
    simnet::bcast(comm, world, root, flat,
                  make_tag(3, static_cast<std::uint32_t>(t), 0));
    std::copy(flat.begin(), flat.end(), a00.data());
  } else {
    (void)simnet::bcast_ghost(
        comm, world, root, static_cast<std::size_t>(v) * v * sizeof(double),
        make_tag(3, static_cast<std::uint32_t>(t), 0));
  }
  return a00;
}

/// ---- Step 3: panel solve at the row leaders ------------------------------
/// The reduced strip below the diagonal already lives, grouped by tile-row
/// owner px, on the column owners (px, py_c, l_star) — the same px-aligned
/// 1D layout COnfLUX uses, so L10 := A10 * L00^{-T} runs in place with no
/// redistribution.
struct PanelL10 {
  std::vector<int> tiles;  ///< owned trailing tiles (> t), ascending
  Matrix full;             ///< (tiles * v) x v solved rows (numeric leaders)
  bool leader = false;
};

PanelL10 solve_panel(const Plan& plan, RankState& st, int t, int l_star,
                     int py_c, const Matrix& a00,
                     std::vector<StepRecord>* records) {
  PanelL10 panel;
  if (st.me.py != py_c || st.me.l != l_star) return panel;
  panel.leader = true;
  panel.tiles = owned_tiles(plan, t + 1, plan.g.px_extent(), st.me.px);
  if (panel.tiles.empty() || !plan.numeric) return panel;

  const int v = plan.v;
  const int col0 = t * v;
  panel.full = Matrix(static_cast<int>(panel.tiles.size()) * v, v);
  int i = 0;
  for (int it : panel.tiles)
    for (int r = it * v; r < (it + 1) * v; ++r, ++i) {
      const double* base = &elem_at(plan, st, r, col0);
      auto dst = panel.full.row(i);
      std::copy(base, base + v, dst.begin());
    }
  // L10 := A10 * L00^{-T}.
  linalg::trsm_right_lower_transposed(a00.view(), panel.full.view());
  if (records != nullptr) {
    StepRecord& rec = (*records)[static_cast<std::size_t>(t)];
    i = 0;
    for (int it : panel.tiles)
      for (int r = it * v; r < (it + 1) * v; ++r, ++i) {
        auto srow = panel.full.row(i);
        auto drow = rec.a10.row(r);
        std::copy(srow.begin(), srow.end(), drow.begin());
      }
  }
  return panel;
}

/// ---- Step 4: layer-sliced row multicast ----------------------------------
/// Row leaders (px, py_c, l_star) -> every (px, *, l), sending each layer
/// only its v/c k-slice of the solved panel rows (COnfLUX step 8).
struct RowSlice {
  std::vector<int> tiles;  ///< my trailing row tiles
  Matrix values;           ///< (tiles * v) x slice
  grid::Range slice;       ///< k-range within the v panel columns
};

RowSlice multicast_rows(const Plan& plan, RankState& st, const Comm& comm,
                        int t, int l_star, int py_c, const PanelL10& panel) {
  RowSlice out;
  const int v = plan.v;
  const int c = plan.g.layers();
  out.slice = chunk_range(v, c, st.me.l);

  if (panel.leader && !panel.tiles.empty()) {
    // One packed slice per layer, multicast to the whole process row: the
    // py_count recipients share a single immutable buffer.
    const std::size_t nrows = panel.tiles.size() * static_cast<std::size_t>(v);
    std::vector<int> dsts(static_cast<std::size_t>(plan.g.py_extent()));
    for (int l = 0; l < c; ++l) {
      const auto slice = chunk_range(v, c, l);
      if (slice.size() == 0) continue;
      for (int py = 0; py < plan.g.py_extent(); ++py)
        dsts[static_cast<std::size_t>(py)] =
            plan.g.rank_of({st.me.px, py, l});
      const Tag tag = make_tag(8, static_cast<std::uint32_t>(t), 0);
      if (plan.numeric) {
        std::vector<double> buf;
        buf.reserve(nrows * static_cast<std::size_t>(slice.size()));
        for (std::size_t i = 0; i < nrows; ++i) {
          const double* base = panel.full.data() +
                               i * static_cast<std::size_t>(v) + slice.begin;
          buf.insert(buf.end(), base, base + slice.size());
        }
        comm.multicast(dsts, tag,
                       simnet::make_shared_buffer(std::move(buf)));
      } else {
        comm.multicast_ghost(dsts, tag,
                             nrows * static_cast<std::size_t>(slice.size()) *
                                 sizeof(double));
      }
    }
  }

  const auto mine = owned_tiles(plan, t + 1, plan.g.px_extent(), st.me.px);
  if (!mine.empty() && out.slice.size() > 0) {
    const int src = plan.g.rank_of({st.me.px, py_c, l_star});
    const Tag tag = make_tag(8, static_cast<std::uint32_t>(t), 0);
    out.tiles = mine;
    if (plan.numeric) {
      const simnet::BufferView buf = comm.recv_view(src, tag);
      out.values = Matrix(static_cast<int>(mine.size()) * v,
                          out.slice.size());
      std::copy(buf.data(), buf.data() + buf.size(), out.values.data());
    } else {
      (void)comm.recv_ghost(src, tag);
    }
  }
  return out;
}

/// ---- Step 5: layer-sliced transposed multicast ---------------------------
/// The symmetric update needs L10^T where COnfLUX needs the separately
/// reduced-and-solved A01 row panel. The row leaders already hold every L10
/// row, so they also serve the column direction: the rows of tile It go,
/// k-sliced per layer, to the ranks whose process column owns tile column
/// It — i.e. leader (It % Px, py_c, l_star) -> every (*, It % Py, l).
struct ColSlice {
  std::vector<int> tiles;  ///< my trailing column tiles
  Matrix values;  ///< slice x (tiles * v): values(k, j) = L10(col_j, k)
  grid::Range slice;
};

ColSlice multicast_cols(const Plan& plan, RankState& st, const Comm& comm,
                        int t, int l_star, int py_c, const PanelL10& panel) {
  ColSlice out;
  const int v = plan.v;
  const int c = plan.g.layers();
  const int px_count = plan.g.px_extent();
  const int py_count = plan.g.py_extent();
  out.slice = chunk_range(v, c, st.me.l);

  if (panel.leader && !panel.tiles.empty()) {
    for (int py_d = 0; py_d < py_count; ++py_d) {
      std::vector<int> group;  // positions of my tiles bound for column py_d
      for (std::size_t i = 0; i < panel.tiles.size(); ++i)
        if (panel.tiles[i] % py_count == py_d)
          group.push_back(static_cast<int>(i));
      if (group.empty()) continue;
      // One packed (py_d, layer) strip, multicast across the process row
      // dimension: all px_count recipients share one immutable buffer.
      std::vector<int> dsts(static_cast<std::size_t>(px_count));
      for (int l = 0; l < c; ++l) {
        const auto slice = chunk_range(v, c, l);
        if (slice.size() == 0) continue;
        for (int px2 = 0; px2 < px_count; ++px2)
          dsts[static_cast<std::size_t>(px2)] =
              plan.g.rank_of({px2, py_d, l});
        const Tag tag = make_tag(10, static_cast<std::uint32_t>(t), 0);
        if (plan.numeric) {
          std::vector<double> buf;
          buf.reserve(group.size() * static_cast<std::size_t>(v) *
                      slice.size());
          for (int i : group)
            for (int q = 0; q < v; ++q) {
              const double* base =
                  panel.full.data() +
                  (static_cast<std::size_t>(i) * v + q) * v + slice.begin;
              buf.insert(buf.end(), base, base + slice.size());
            }
          comm.multicast(dsts, tag,
                         simnet::make_shared_buffer(std::move(buf)));
        } else {
          comm.multicast_ghost(dsts, tag,
                               group.size() * static_cast<std::size_t>(v) *
                                   slice.size() * sizeof(double));
        }
      }
    }
  }

  const auto mine = owned_tiles(plan, t + 1, py_count, st.me.py);
  if (!mine.empty() && out.slice.size() > 0) {
    out.tiles = mine;
    if (plan.numeric)
      out.values =
          Matrix(out.slice.size(), static_cast<int>(mine.size()) * v);
    for (int px1 = 0; px1 < px_count; ++px1) {
      std::vector<int> sub;  // positions of my column tiles owned by px1
      for (std::size_t j = 0; j < mine.size(); ++j)
        if (mine[j] % px_count == px1) sub.push_back(static_cast<int>(j));
      if (sub.empty()) continue;
      const int src = plan.g.rank_of({px1, py_c, l_star});
      const Tag tag = make_tag(10, static_cast<std::uint32_t>(t), 0);
      if (plan.numeric) {
        const simnet::BufferView buf = comm.recv_view(src, tag);
        const double* in = buf.data();
        for (int j : sub)
          for (int q = 0; q < v; ++q)
            for (int k = out.slice.begin; k < out.slice.end; ++k)
              out.values(k - out.slice.begin, j * v + q) = *in++;
      } else {
        (void)comm.recv_ghost(src, tag);
      }
    }
  }
  return out;
}

/// ---- Step 6: local symmetric Schur update with the layer's k-slice -------
/// A11 -= L10 * L10^T, restricted to the lower-triangular tiles It >= Jt
/// this rank owns (the strict upper tiles are dead storage).
void schur_update_local(const Plan& plan, RankState& st, const RowSlice& rows,
                        const ColSlice& cols) {
  if (!plan.numeric) return;
  if (rows.tiles.empty() || cols.tiles.empty() || rows.slice.size() == 0)
    return;
  CONFLUX_ASSERT(rows.slice.begin == cols.slice.begin &&
                 rows.slice.end == cols.slice.end);
  const int v = plan.v;

  // One GEMM per column tile, restricted to the row tiles at or below it
  // (both tile lists are ascending), so the strict-upper half of the
  // symmetric update is never computed — the same block-column trick as
  // potrf_blocked.
  const int slice = rows.slice.size();
  for (std::size_t tj = 0; tj < cols.tiles.size(); ++tj) {
    std::size_t ti0 = 0;
    while (ti0 < rows.tiles.size() && rows.tiles[ti0] < cols.tiles[tj])
      ++ti0;
    if (ti0 == rows.tiles.size()) continue;
    const int row0 = static_cast<int>(ti0) * v;
    const int nrows = rows.values.rows() - row0;
    Matrix prod(nrows, v);
    linalg::gemm(1.0, rows.values.view().block(row0, 0, nrows, slice),
                 cols.values.view().block(0, static_cast<int>(tj) * v, slice,
                                          v),
                 0.0, prod.view());
    for (int i = 0; i < nrows; ++i) {
      const int gi = row0 + i;
      const int r = rows.tiles[static_cast<std::size_t>(gi) / v] * v + gi % v;
      auto pr = prod.row(i);
      double* dst = &elem_at(plan, st, r, cols.tiles[tj] * v);
      for (int k = 0; k < v; ++k) dst[k] -= pr[k];
    }
  }
}

}  // namespace

CholResult Confchox25D::run(const linalg::Matrix* a, const CholConfig& cfg) {
  CONFLUX_EXPECTS(cfg.n >= 1 && cfg.p >= 1);
  CONFLUX_EXPECTS(cfg.mode == Mode::DryRun || a != nullptr);

  const double mem = cfg.mem_elements > 0
                         ? cfg.mem_elements
                         : static_cast<double>(cfg.n) * cfg.n /
                               std::pow(static_cast<double>(cfg.p), 2.0 / 3.0);

  Plan plan;
  plan.n = cfg.n;
  plan.numeric = (cfg.mode == Mode::Numeric);
  if (cfg.force_layers > 0 || !cfg.grid_optimization) {
    int c = cfg.force_layers > 0
                ? cfg.force_layers
                : std::max(1, static_cast<int>(std::lround(
                                  cfg.p * mem /
                                  (static_cast<double>(cfg.n) * cfg.n))));
    c = std::min(c, cfg.p);
    const int front = std::max(1, cfg.p / c);
    const int px = std::max(1, static_cast<int>(std::sqrt(
                                   static_cast<double>(front))));
    plan.g = Grid3D(px, std::max(1, front / px), c);
  } else {
    plan.g = grid::optimize_grid(cfg.p, cfg.n, mem, 0,
                                 grid::confchox_cost_per_rank)
                 .grid;
  }
  plan.active = plan.g.active();
  plan.v = cfg.block > 0
               ? cfg.block
               : grid::choose_block_size(
                     cfg.n, plan.g.layers(),
                     grid::default_block_target(cfg.n, plan.g.layers()));
  CONFLUX_EXPECTS_MSG(cfg.n % plan.v == 0,
                      "block size " << plan.v << " must divide N=" << cfg.n);
  plan.steps = cfg.n / plan.v;

  std::vector<StepRecord> records;
  const bool want_records = plan.numeric && (cfg.verify || cfg.keep_factors);
  if (want_records)
    records = factor::make_step_records(plan.n, plan.v, /*with_a01=*/false);
  std::atomic<bool> not_spd{false};

  simnet::Network net(plan.active, cfg.fabric);
  factor::attach_instruments(net, cfg);
  plan.tel = cfg.telemetry;
  const simnet::Group world = simnet::Group::iota(plan.active);

  Stopwatch timer;
  simnet::run_spmd(net, [&](Comm& comm) {
    RankState st;
    st.me = plan.g.coord_of(comm.rank());

    if (plan.numeric) {
      // Tile storage; layer 0 holds A, other layers hold zero partial sums.
      const int tiles_total = plan.n / plan.v;
      st.ltr = (tiles_total - st.me.px + plan.g.px_extent() - 1) /
               plan.g.px_extent();
      st.ltc = (tiles_total - st.me.py + plan.g.py_extent() - 1) /
               plan.g.py_extent();
      st.tiles.assign(static_cast<std::size_t>(st.ltr) * st.ltc * plan.v *
                          plan.v,
                      0.0);
      if (st.me.l == 0) {
        for (int it = st.me.px; it < tiles_total; it += plan.g.px_extent())
          for (int jt = st.me.py; jt <= it; jt += plan.g.py_extent()) {
            double* tl = tile_at(plan, st, it, jt);
            for (int i = 0; i < plan.v; ++i)
              for (int j = 0; j < plan.v; ++j)
                tl[static_cast<std::size_t>(i) * plan.v + j] =
                    (*a)(it * plan.v + i, jt * plan.v + j);
          }
      }
    }

    const int me = comm.rank();
    for (int t = 0; t < plan.steps; ++t) {
      const int l_star = t % plan.g.layers();
      const int py_c = t % plan.g.py_extent();
      {
        const telemetry::ScopedSpan span(plan.tel, me,
                                         telemetry::kLayerReduction, t);
        reduce_panel_column(plan, st, comm, t, l_star, py_c);      // step 1
      }
      Matrix a00;
      {
        const telemetry::ScopedSpan span(plan.tel, me,
                                         telemetry::kPanelFactor, t);
        a00 = factor_and_bcast_a00(plan, st, comm, t,              // step 2
                                   l_star, py_c, world, &not_spd);
      }
      if (want_records && me == 0) {
        StepRecord& rec = records[static_cast<std::size_t>(t)];
        for (int q = 0; q < plan.v; ++q)
          rec.pivots[static_cast<std::size_t>(q)] = t * plan.v + q;
        rec.a00 = a00;
      }
      PanelL10 panel;
      {
        const telemetry::ScopedSpan span(plan.tel, me, telemetry::kTrsm, t);
        panel = solve_panel(plan, st, t, l_star, py_c,             // step 3
                            a00, want_records ? &records : nullptr);
      }
      {
        const telemetry::ScopedSpan span(plan.tel, me,
                                         telemetry::kSchurUpdate, t);
        const RowSlice rows = multicast_rows(plan, st, comm, t,    // step 4
                                             l_star, py_c, panel);
        const ColSlice cols = multicast_cols(plan, st, comm, t,    // step 5
                                             l_star, py_c, panel);
        schur_update_local(plan, st, rows, cols);                  // step 6
      }
    }
  });

  CholResult result;
  result.seconds = timer.seconds();
  factor::fill_comm_stats(result, net, plan.active, cfg.p);
  result.grid = plan.g.to_string();
  result.block = plan.v;
  result.spd = !not_spd.load(std::memory_order_relaxed);
  if (want_records) {
    const Matrix l =
        factor::assemble_cholesky_factor(records, plan.n, plan.v);
    if (cfg.verify) result.residual = linalg::cholesky_residual(*a, l.view());
    if (cfg.keep_factors)
      result.factors = std::make_shared<linalg::Matrix>(std::move(l));
  }
  return result;
}

}  // namespace conflux::cholesky
