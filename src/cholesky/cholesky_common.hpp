/// \file cholesky_common.hpp
/// Configuration, result and interface types for the distributed Cholesky
/// implementations — the second factorization family of the journal
/// extension ("Near-Optimal Matrix Factorizations", arXiv:2108.09337):
/// COnfCHOX (2.5D, communication-avoiding) and a ScaLAPACK-style 2D
/// block-cyclic baseline (pdpotrf).
///
/// The family-neutral parts — problem shape, Numeric/DryRun duality, 2.5D
/// ablation knobs, CommVolume reporting — are the shared types of
/// factor/factorization.hpp, exactly as for LU (lu/lu_common.hpp). Cholesky
/// needs no pivoting, so its communication schedule is fully deterministic:
/// DryRun and Numeric runs produce bit-identical volumes (the volume tests
/// assert equality, not a tolerance band).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "factor/factorization.hpp"
#include "linalg/matrix.hpp"

namespace conflux::cholesky {

/// Numeric-vs-DryRun execution mode, shared across factorization families.
using factor::Mode;

/// A distributed-Cholesky problem configuration. All fields are inherited
/// from the family-neutral FactorConfig (factor/factorization.hpp); the
/// `seed` field is unused here (no synthetic pivots to draw).
struct CholConfig : factor::FactorConfig {
  /// Copy of this configuration with a different execution mode.
  [[nodiscard]] CholConfig with_mode(Mode m) const {
    CholConfig copy = *this;
    copy.mode = m;
    return copy;
  }
};

/// Result of one Cholesky factorization run. The communication metrics,
/// grid description, residual and wall time are the shared FactorResult
/// fields. `factors`, when kept, holds the lower-triangular L (zeros above
/// the diagonal) with L * L^T = A; there is no permutation.
struct CholResult : factor::FactorResult {
  /// False when a non-positive pivot showed the input was not positive
  /// definite (numeric mode only); the factors/residual are then
  /// meaningless.
  bool spd = true;
};

/// Interface implemented by both Cholesky algorithms.
class CholeskyAlgorithm : public factor::Factorization {
 public:
  /// Factor the SPD matrix `a` (lower triangle read) under `cfg`. In
  /// DryRun mode `a` may be null. In Numeric mode with cfg.verify, the
  /// result carries the scaled residual max|L L^T - A| / (N max|A|).
  [[nodiscard]] virtual CholResult run(const linalg::Matrix* a,
                                       const CholConfig& cfg) = 0;
};

/// Instantiate an algorithm by name: "COnfCHOX" or "ScaLAPACK". Throws
/// ContractViolation for unknown names.
[[nodiscard]] std::unique_ptr<CholeskyAlgorithm> make_cholesky_algorithm(
    const std::string& name);

/// Both algorithms, baseline first (ScaLAPACK, COnfCHOX).
[[nodiscard]] std::vector<std::unique_ptr<CholeskyAlgorithm>>
all_cholesky_algorithms();

}  // namespace conflux::cholesky
