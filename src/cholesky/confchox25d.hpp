/// \file confchox25d.hpp
/// COnfCHOX — the near-communication-optimal 2.5D Cholesky factorization of
/// the journal extension (arXiv:2108.09337), built from the same machinery
/// as COnfLUX (lu/conflux25d.hpp) minus everything pivoting required:
///   - lazy panel reduction: trailing-matrix updates accumulate as
///     per-layer partial sums; only the next panel's column strip is summed
///     across layers each step (Cholesky has no row-panel reduce — the row
///     panel IS the transposed column panel),
///   - no pivoting: SPD inputs make the natural diagonal pivots stable, so
///     the tournament and pivot broadcasts of COnfLUX disappear and the
///     schedule is fully deterministic,
///   - layer-sliced panel multicast for the symmetric Schur update
///     A11 -= L10 * L10^T: each layer receives only its v/c k-slice of the
///     solved panel, once along process rows and once (transposed) along
///     process columns.
/// Leading-order cost: N^3/(P sqrt M) elements per rank on the same
/// [Px, Py, c] grids as COnfLUX, against the Cholesky lower bound
/// N^3/(3 P sqrt M) of the DAAP analysis (daap/kernels.hpp).
#pragma once

#include "cholesky/cholesky_common.hpp"

namespace conflux::cholesky {

class Confchox25D final : public CholeskyAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "COnfCHOX"; }
  [[nodiscard]] CholResult run(const linalg::Matrix* a,
                               const CholConfig& cfg) override;
};

}  // namespace conflux::cholesky
