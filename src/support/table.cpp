#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "support/assert.hpp"

namespace conflux {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CONFLUX_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CONFLUX_EXPECTS_MSG(cells.size() == headers_.size(),
                      "row has " << cells.size() << " cells, expected "
                                 << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os, int indent) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const std::string pad(static_cast<std::size_t>(indent), ' ');
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << pad;
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  os << pad;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c], '-');
    if (c + 1 < headers_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double value, int prec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", prec, value);
  return buf;
}

std::string human_bytes(double bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB", "PB"};
  int u = 0;
  while (std::abs(bytes) >= 1000.0 && u < 5) {
    bytes /= 1000.0;
    ++u;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g %s", bytes, units[u]);
  return buf;
}

std::string gb(double bytes) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", bytes / 1e9);
  return buf;
}

}  // namespace conflux
