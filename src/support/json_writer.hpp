/// \file json_writer.hpp
/// A minimal streaming JSON emitter. One shared implementation backs every
/// machine-readable artifact the repo produces — the bench `--json` files
/// (BENCH_*.json trajectory data), the confscope summary, and the
/// Chrome-trace/Perfetto export in support/telemetry — so the escaping and
/// number-formatting rules cannot drift between them. Header-only, no
/// dependencies beyond the standard library.
///
/// The writer is deliberately dumb: an explicit begin/end call per container
/// with comma state tracked on a stack. Callers own the structure; the
/// writer owns the syntax.
#pragma once

#include <cmath>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace conflux::support {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void begin_object() {
    comma();
    os_ << '{';
    stack_.push_back(false);
  }
  void end_object() {
    stack_.pop_back();
    os_ << '}';
  }
  void begin_array() {
    comma();
    os_ << '[';
    stack_.push_back(false);
  }
  void end_array() {
    stack_.pop_back();
    os_ << ']';
  }

  /// Emit `"k":` — must be followed by exactly one value or container.
  void key(std::string_view k) {
    comma();
    write_string(k);
    os_ << ':';
    pending_value_ = true;
  }

  void value(std::string_view v) {
    comma();
    write_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(const std::string& v) { value(std::string_view(v)); }
  void value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
  }
  void value(double v) {
    comma();
    // JSON has no NaN/Inf; clamp to null so the file stays parseable.
    if (!std::isfinite(v)) {
      os_ << "null";
      return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os_ << buf;
  }
  // Integer overloads spell out the fundamental types (not the fixed-width
  // aliases) so the set stays collision-free whichever type int64_t names.
  void value(long long v) {
    comma();
    os_ << v;
  }
  void value(unsigned long long v) {
    comma();
    os_ << v;
  }
  void value(int v) { value(static_cast<long long>(v)); }
  void value(long v) { value(static_cast<long long>(v)); }
  void value(unsigned v) { value(static_cast<unsigned long long>(v)); }
  void value(unsigned long v) { value(static_cast<unsigned long long>(v)); }

  /// `"k": v` in one call.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

 private:
  // A comma is due before any element that is not the first of its
  // container, except immediately after a key.
  void comma() {
    if (pending_value_) {
      pending_value_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) os_ << ',';
      stack_.back() = true;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> stack_;  ///< per open container: "has at least one item"
  bool pending_value_ = false;
};

}  // namespace conflux::support
