/// \file telemetry.hpp
/// ConfScope's span recorder: lock-free per-rank timing telemetry for the
/// simulated fabric and the factorization engines.
///
/// The design mirrors simnet's TraceRecorder — one cache-line-padded slot
/// per rank, appended to only by that rank's own thread, read only after
/// the SPMD join — but records *time* instead of message identity:
///
///   - **Spans**: named, nestable phase intervals ("panel_tournament",
///     "schur_update", ...) opened/closed on the rank's hot path, each
///     carrying begin/end timestamps (steady-clock ns relative to the
///     board's reset epoch), its nesting depth/parent, and the wire bytes
///     the rank sent while the span was innermost.
///   - **Wait samples**: one record per fabric receive while attached,
///     attributing time parked in `recv`/`recv_view` to a (src, tag) pair.
///     Wait time inside a span is also accumulated on that span so busy
///     (compute) time can be separated from blocked time.
///   - **Monotonic counters** and per-rank queue-depth high-water marks
///     flushed by the Network after the join.
///
/// Zero-overhead when disabled: everything is reached through a nullable
/// board pointer (`FactorConfig::telemetry`, mirroring the `trace` hook),
/// and the ScopedSpan guard does no clock read and no allocation when the
/// pointer is null. support/ stays below simnet/ in the layering, so tags
/// appear here as raw integers.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace conflux::telemetry {

/// Canonical phase-span names used by the factorization backends, so the
/// profiler and the per-phase cost model agree on spelling.
inline constexpr const char* kLayerReduction = "layer_reduction";
inline constexpr const char* kPanelTournament = "panel_tournament";
inline constexpr const char* kPanelFactor = "panel_factor";
inline constexpr const char* kPivotApply = "pivot_apply";
inline constexpr const char* kTrsm = "trsm";
inline constexpr const char* kSchurUpdate = "schur_update";

/// Current steady-clock time in nanoseconds (absolute; subtract the board's
/// epoch for board-relative values).
[[nodiscard]] std::uint64_t now_ns();

/// One named phase interval on one rank.
struct Span {
  const char* name = "";        ///< static string (phase constant above)
  int step = -1;                ///< factorization step index, -1 if n/a
  int depth = 0;                ///< 0 = top level
  int parent = -1;              ///< index of enclosing span in rank_spans
  std::uint64_t begin_ns = 0;   ///< epoch-relative
  std::uint64_t end_ns = 0;     ///< epoch-relative; 0 while still open
  std::uint64_t bytes = 0;      ///< wire bytes sent while innermost
  std::uint64_t wait_ns = 0;    ///< time blocked in recv while innermost
};

/// One fabric receive: how long the rank sat parked and on whom.
struct WaitSample {
  int src = -1;
  std::uint64_t tag = 0;
  std::uint64_t begin_ns = 0;  ///< epoch-relative entry into the receive
  std::uint64_t ns = 0;        ///< blocked duration
  std::uint64_t bytes = 0;     ///< logical bytes of the message received
};

/// A named monotonic counter (static-string keys, few per rank).
struct Counter {
  const char* name = "";
  std::uint64_t value = 0;
};

/// Aggregated per-phase totals over all ranks (see phase_totals()).
struct PhaseTotal {
  double seconds = 0;       ///< exclusive (self) time, nested spans removed
  double wait_seconds = 0;  ///< blocked-in-recv portion of `seconds`
  std::uint64_t bytes = 0;  ///< wire bytes attributed to the phase
  std::uint64_t count = 0;  ///< number of span instances
};

/// The per-run telemetry store. Attach to a run via FactorConfig::telemetry
/// (the backend forwards it to Network::set_telemetry, which resets the
/// board to the run's rank count); read after the SPMD join.
class TelemetryBoard {
 public:
  TelemetryBoard() = default;
  explicit TelemetryBoard(int nranks) { reset(nranks); }

  /// Drop all recorded data, size for `nranks` ranks, and restart the epoch.
  void reset(int nranks);

  [[nodiscard]] int nranks() const { return static_cast<int>(slots_.size()); }

  /// Absolute steady-clock ns of the epoch all timestamps are relative to.
  [[nodiscard]] std::uint64_t epoch_ns() const { return epoch_; }

  /// Switch the board to virtual time: `clock_ns` points at one uint64 per
  /// rank (owned by the caller, updated by each rank's own context), and
  /// spans/waits are stamped from it instead of the steady clock — so a
  /// virtual-time run's profile and Chrome trace show *simulated* seconds.
  /// record_wait then interprets its begin/end arguments as virtual ns
  /// (already epoch-relative). reset() clears the attachment; re-attach
  /// after resetting. Pass nullptr to detach.
  void set_virtual_clock(const std::uint64_t* clock_ns) { vclock_ = clock_ns; }
  [[nodiscard]] bool virtual_clock() const { return vclock_ != nullptr; }

  // --- hot path (called only by rank `rank`'s own thread) -----------------

  void open_span(int rank, const char* name, int step = -1);
  void close_span(int rank);

  /// Attribute `bytes` wire bytes to `rank`'s innermost open span (the
  /// fabric calls this on the sender's thread at deliver time).
  void add_bytes(int rank, std::uint64_t bytes);

  /// Record one fabric receive: blocked from `begin_abs_ns` to `end_abs_ns`
  /// (absolute now_ns() values) waiting on (src, tag).
  void record_wait(int rank, int src, std::uint64_t tag,
                   std::uint64_t begin_abs_ns, std::uint64_t end_abs_ns,
                   std::uint64_t bytes);

  void add_counter(int rank, const char* name, std::uint64_t delta = 1);

  /// Highest simultaneous queue depth observed across `rank`'s inbound
  /// channels (flushed by Network::run_team after the join).
  void set_queue_hwm(int rank, int hwm);

  // --- post-join queries --------------------------------------------------

  [[nodiscard]] const std::vector<Span>& rank_spans(int r) const;
  [[nodiscard]] const std::vector<WaitSample>& rank_waits(int r) const;
  [[nodiscard]] const std::vector<Counter>& rank_counters(int r) const;
  [[nodiscard]] int queue_hwm(int r) const;

  /// True when every opened span was closed on every rank.
  [[nodiscard]] bool balanced() const;

  /// Epoch-relative finish time of the last recorded event, in seconds —
  /// the telemetry view of the run's wall clock.
  [[nodiscard]] double wall_seconds() const;

  /// Top-level span time minus blocked-in-recv time for rank `r`.
  [[nodiscard]] double busy_seconds(int r) const;

  /// Total time rank `r` spent parked in fabric receives.
  [[nodiscard]] double blocked_seconds(int r) const;

  /// Per-phase totals over all ranks, keyed by span name. Time is
  /// exclusive: a nested span's duration counts toward the nested phase,
  /// not its parent (so phases partition top-level span time).
  [[nodiscard]] std::map<std::string, PhaseTotal> phase_totals() const;

 private:
  /// Cache-line-padded so concurrent ranks never share a line.
  struct alignas(64) Slot {
    std::vector<Span> spans;
    std::vector<WaitSample> waits;
    std::vector<Counter> counters;
    std::vector<int> open;  ///< stack of open span indices
    std::uint64_t orphan_bytes = 0;  ///< sent outside any span
    int queue_hwm = 0;
  };

  Slot& slot(int rank);
  [[nodiscard]] const Slot& slot(int rank) const;

  /// Epoch-relative timestamp for `rank`: its virtual clock when attached,
  /// the steady clock otherwise.
  [[nodiscard]] std::uint64_t stamp_ns(int rank) const;

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 0;
  const std::uint64_t* vclock_ = nullptr;
};

/// RAII span guard. With a null board this is a pair of pointer tests —
/// no clock read, no allocation — which is what keeps disabled-mode
/// instrumentation free on the rank hot path.
class ScopedSpan {
 public:
  ScopedSpan(TelemetryBoard* board, int rank, const char* name, int step = -1)
      : board_(board), rank_(rank) {
    if (board_ != nullptr) board_->open_span(rank_, name, step);
  }
  ~ScopedSpan() {
    if (board_ != nullptr) board_->close_span(rank_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  TelemetryBoard* board_;
  int rank_;
};

/// Streams one or more boards as a Chrome-trace/Perfetto JSON object
/// (`{"traceEvents": [...]}`): each board becomes one process (pid), each
/// rank one named thread, spans become complete ("X") events under
/// category "phase" and wait samples under category "wait".
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ~ChromeTraceWriter();

  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  /// Add one run's telemetry as process `pid` labelled `name`.
  void add_process(int pid, const std::string& name,
                   const TelemetryBoard& board);

  /// Close the JSON document (idempotent; the destructor calls it).
  void finish();

 private:
  struct Impl;
  Impl* impl_;
};

/// Single-run convenience: the whole board as one process, pid 0.
void write_chrome_trace(std::ostream& os, const TelemetryBoard& board,
                        const std::string& name = "run");

}  // namespace conflux::telemetry
