#include "support/telemetry.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <ostream>

#include "support/assert.hpp"
#include "support/json_writer.hpp"

namespace conflux::telemetry {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void TelemetryBoard::reset(int nranks) {
  CONFLUX_EXPECTS(nranks >= 0);
  slots_.clear();
  slots_.resize(static_cast<std::size_t>(nranks));
  // Pre-reserve so the first steps of a run do not pay vector growth on
  // the hot path (growth later is still allowed; enabled mode only
  // promises "cheap", disabled mode promises "free").
  for (Slot& s : slots_) {
    s.spans.reserve(256);
    s.waits.reserve(256);
    s.open.reserve(8);
  }
  epoch_ = now_ns();
  vclock_ = nullptr;
}

std::uint64_t TelemetryBoard::stamp_ns(int rank) const {
  if (vclock_ != nullptr) return vclock_[static_cast<std::size_t>(rank)];
  return now_ns() - epoch_;
}

TelemetryBoard::Slot& TelemetryBoard::slot(int rank) {
  CONFLUX_EXPECTS(rank >= 0 && rank < nranks());
  return slots_[static_cast<std::size_t>(rank)];
}

const TelemetryBoard::Slot& TelemetryBoard::slot(int rank) const {
  CONFLUX_EXPECTS(rank >= 0 && rank < nranks());
  return slots_[static_cast<std::size_t>(rank)];
}

void TelemetryBoard::open_span(int rank, const char* name, int step) {
  Slot& s = slot(rank);
  Span span;
  span.name = name;
  span.step = step;
  span.depth = static_cast<int>(s.open.size());
  span.parent = s.open.empty() ? -1 : s.open.back();
  span.begin_ns = stamp_ns(rank);
  s.open.push_back(static_cast<int>(s.spans.size()));
  s.spans.push_back(span);
}

void TelemetryBoard::close_span(int rank) {
  Slot& s = slot(rank);
  CONFLUX_EXPECTS(!s.open.empty());
  Span& span = s.spans[static_cast<std::size_t>(s.open.back())];
  span.end_ns = stamp_ns(rank);
  s.open.pop_back();
}

void TelemetryBoard::add_bytes(int rank, std::uint64_t bytes) {
  Slot& s = slot(rank);
  if (s.open.empty()) {
    s.orphan_bytes += bytes;
    return;
  }
  s.spans[static_cast<std::size_t>(s.open.back())].bytes += bytes;
}

void TelemetryBoard::record_wait(int rank, int src, std::uint64_t tag,
                                 std::uint64_t begin_abs_ns,
                                 std::uint64_t end_abs_ns,
                                 std::uint64_t bytes) {
  Slot& s = slot(rank);
  WaitSample w;
  w.src = src;
  w.tag = tag;
  if (vclock_ != nullptr) {
    // Virtual time: the fabric passes epoch-relative virtual ns directly.
    w.begin_ns = begin_abs_ns;
  } else {
    w.begin_ns = begin_abs_ns >= epoch_ ? begin_abs_ns - epoch_ : 0;
  }
  w.ns = end_abs_ns >= begin_abs_ns ? end_abs_ns - begin_abs_ns : 0;
  w.bytes = bytes;
  s.waits.push_back(w);
  if (!s.open.empty())
    s.spans[static_cast<std::size_t>(s.open.back())].wait_ns += w.ns;
}

void TelemetryBoard::add_counter(int rank, const char* name,
                                 std::uint64_t delta) {
  Slot& s = slot(rank);
  for (Counter& c : s.counters) {
    if (c.name == name || std::strcmp(c.name, name) == 0) {
      c.value += delta;
      return;
    }
  }
  s.counters.push_back({name, delta});
}

void TelemetryBoard::set_queue_hwm(int rank, int hwm) {
  slot(rank).queue_hwm = std::max(slot(rank).queue_hwm, hwm);
}

const std::vector<Span>& TelemetryBoard::rank_spans(int r) const {
  return slot(r).spans;
}

const std::vector<WaitSample>& TelemetryBoard::rank_waits(int r) const {
  return slot(r).waits;
}

const std::vector<Counter>& TelemetryBoard::rank_counters(int r) const {
  return slot(r).counters;
}

int TelemetryBoard::queue_hwm(int r) const { return slot(r).queue_hwm; }

bool TelemetryBoard::balanced() const {
  for (const Slot& s : slots_) {
    if (!s.open.empty()) return false;
    for (const Span& span : s.spans)
      if (span.end_ns == 0 && span.begin_ns != 0) return false;
  }
  return true;
}

double TelemetryBoard::wall_seconds() const {
  std::uint64_t last = 0;
  for (const Slot& s : slots_) {
    for (const Span& span : s.spans)
      last = std::max(last, std::max(span.begin_ns, span.end_ns));
    for (const WaitSample& w : s.waits)
      last = std::max(last, w.begin_ns + w.ns);
  }
  return static_cast<double>(last) / 1e9;
}

double TelemetryBoard::busy_seconds(int r) const {
  const Slot& s = slot(r);
  std::uint64_t covered = 0;
  std::uint64_t waited = 0;
  for (const Span& span : s.spans) {
    if (span.depth == 0 && span.end_ns >= span.begin_ns)
      covered += span.end_ns - span.begin_ns;
    waited += span.wait_ns;
  }
  return covered >= waited ? static_cast<double>(covered - waited) / 1e9 : 0.0;
}

double TelemetryBoard::blocked_seconds(int r) const {
  const Slot& s = slot(r);
  std::uint64_t waited = 0;
  for (const WaitSample& w : s.waits) waited += w.ns;
  return static_cast<double>(waited) / 1e9;
}

std::map<std::string, PhaseTotal> TelemetryBoard::phase_totals() const {
  std::map<std::string, PhaseTotal> totals;
  std::vector<std::uint64_t> child_ns;
  for (const Slot& s : slots_) {
    // Sum each span's children into its slot so self time = dur - children.
    child_ns.assign(s.spans.size(), 0);
    for (const Span& span : s.spans)
      if (span.parent >= 0 && span.end_ns >= span.begin_ns)
        child_ns[static_cast<std::size_t>(span.parent)] +=
            span.end_ns - span.begin_ns;
    for (std::size_t i = 0; i < s.spans.size(); ++i) {
      const Span& span = s.spans[i];
      if (span.end_ns < span.begin_ns) continue;
      const std::uint64_t dur = span.end_ns - span.begin_ns;
      const std::uint64_t self = dur >= child_ns[i] ? dur - child_ns[i] : 0;
      PhaseTotal& t = totals[span.name];
      t.seconds += static_cast<double>(self) / 1e9;
      t.wait_seconds += static_cast<double>(span.wait_ns) / 1e9;
      t.bytes += span.bytes;
      t.count += 1;
    }
  }
  return totals;
}

// --- Chrome-trace export ----------------------------------------------------

struct ChromeTraceWriter::Impl {
  explicit Impl(std::ostream& os) : json(os) {}
  support::JsonWriter json;
  bool finished = false;
};

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : impl_(new Impl(os)) {
  impl_->json.begin_object();
  impl_->json.key("traceEvents");
  impl_->json.begin_array();
}

ChromeTraceWriter::~ChromeTraceWriter() {
  finish();
  delete impl_;
}

void ChromeTraceWriter::finish() {
  if (impl_->finished) return;
  impl_->finished = true;
  impl_->json.end_array();
  impl_->json.kv("displayTimeUnit", "ms");
  impl_->json.end_object();
}

void ChromeTraceWriter::add_process(int pid, const std::string& name,
                                    const TelemetryBoard& board) {
  CONFLUX_EXPECTS(!impl_->finished);
  support::JsonWriter& j = impl_->json;
  const auto us = [](std::uint64_t ns) {
    return static_cast<double>(ns) / 1e3;
  };

  j.begin_object();
  j.kv("name", "process_name");
  j.kv("ph", "M");
  j.kv("pid", pid);
  j.key("args");
  j.begin_object();
  j.kv("name", name);
  j.end_object();
  j.end_object();

  for (int r = 0; r < board.nranks(); ++r) {
    j.begin_object();
    j.kv("name", "thread_name");
    j.kv("ph", "M");
    j.kv("pid", pid);
    j.kv("tid", r);
    j.key("args");
    j.begin_object();
    j.kv("name", "rank " + std::to_string(r));
    j.end_object();
    j.end_object();

    for (const Span& span : board.rank_spans(r)) {
      if (span.end_ns < span.begin_ns) continue;
      j.begin_object();
      j.kv("name", span.name);
      j.kv("cat", "phase");
      j.kv("ph", "X");
      j.kv("ts", us(span.begin_ns));
      j.kv("dur", us(span.end_ns - span.begin_ns));
      j.kv("pid", pid);
      j.kv("tid", r);
      j.key("args");
      j.begin_object();
      if (span.step >= 0) j.kv("step", span.step);
      j.kv("bytes", span.bytes);
      j.kv("wait_us", us(span.wait_ns));
      j.end_object();
      j.end_object();
    }
    for (const WaitSample& w : board.rank_waits(r)) {
      // Sub-microsecond parks are noise at trace scale; skip them to keep
      // the file proportionate (they remain in blocked_seconds()).
      if (w.ns < 1000) continue;
      j.begin_object();
      j.kv("name", "wait");
      j.kv("cat", "wait");
      j.kv("ph", "X");
      j.kv("ts", us(w.begin_ns));
      j.kv("dur", us(w.ns));
      j.kv("pid", pid);
      j.kv("tid", r);
      j.key("args");
      j.begin_object();
      j.kv("src", w.src);
      j.kv("tag", w.tag);
      j.kv("bytes", w.bytes);
      j.end_object();
      j.end_object();
    }
  }
}

void write_chrome_trace(std::ostream& os, const TelemetryBoard& board,
                        const std::string& name) {
  ChromeTraceWriter writer(os);
  writer.add_process(0, name, board);
  writer.finish();
}

}  // namespace conflux::telemetry
