/// \file thread_pool.hpp
/// A small fixed-size thread pool plus a blocking parallel_for on top of it.
/// This is the shared parallel runtime under the optimized BLAS kernels and
/// the DAAP bound solver's multi-start search.
///
/// Design constraints:
///  - No work stealing, no futures: callers submit closures and wait on a
///    counter. The kernels that use it partition work into a handful of
///    coarse chunks, so a mutex-protected queue is not a bottleneck.
///  - Re-entrancy safe: parallel_for called from inside a pool worker runs
///    the loop inline instead of deadlocking on the (busy) workers.
///  - Pool size comes from CONFLUX_THREADS when set, otherwise from
///    std::thread::hardware_concurrency(); a size of 1 means every
///    parallel_for runs inline and the pool spawns no threads at all.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace conflux::support {

class ThreadPool {
 public:
  /// Spawns `threads` workers (0 = pick from CONFLUX_THREADS or hardware).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of workers (>= 1; 1 means "inline", no threads were spawned).
  [[nodiscard]] int size() const { return size_; }

  /// Run `body(i)` for i in [begin, end). Blocks until every index ran.
  /// The range is split into at most `size()` contiguous chunks; exceptions
  /// from `body` propagate to the caller (first one wins).
  void parallel_for(int begin, int end,
                    const std::function<void(int)>& body);

  /// True when the calling thread is one of this pool's workers.
  [[nodiscard]] bool on_worker_thread() const;

 private:
  void worker_loop();

  int size_ = 1;
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// The process-wide pool shared by the BLAS kernels and the bound solver.
[[nodiscard]] ThreadPool& global_pool();

/// Convenience wrapper: global_pool().parallel_for(...).
void parallel_for(int begin, int end, const std::function<void(int)>& body);

}  // namespace conflux::support
