/// \file env.hpp
/// Environment-variable knobs used by the benchmark harness so that the full
/// reproduction suite can be scaled down (e.g. CONFLUX_BENCH_SCALE=small) on
/// constrained machines without editing code.
#pragma once

#include <cstdint>
#include <string>

namespace conflux {

/// Read an environment variable; returns `fallback` when unset or empty.
[[nodiscard]] std::string env_string(const char* name,
                                     const std::string& fallback);

/// Read an integer environment variable; returns `fallback` when unset or
/// unparsable.
[[nodiscard]] std::int64_t env_int(const char* name, std::int64_t fallback);

/// Benchmark scale selector: "full" reproduces the paper's parameter ranges,
/// "small" shrinks N/P for quick smoke runs. Controlled by
/// CONFLUX_BENCH_SCALE.
enum class BenchScale { Small, Full };

/// Current scale (default Full).
[[nodiscard]] BenchScale bench_scale();

}  // namespace conflux
