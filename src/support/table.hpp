/// \file table.hpp
/// Column-aligned ASCII table and CSV emission used by the benchmark harness
/// to print the paper's tables and figure series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace conflux {

/// A simple table: a header row plus data rows of strings. Cells are
/// formatted by the caller (see format helpers below) so the table stays
/// type-agnostic.
class Table {
 public:
  /// Create a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Append one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Render with aligned columns, a header underline, and `indent` leading
  /// spaces on every line.
  void print(std::ostream& os, int indent = 0) const;

  /// Render as CSV (RFC-4180-ish; cells containing commas are quoted).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a double with `prec` significant-ish decimal digits.
[[nodiscard]] std::string fmt(double value, int prec = 3);

/// Format a byte count as a human-readable string (B, KB, MB, GB) using
/// decimal units, matching how the paper reports GB volumes.
[[nodiscard]] std::string human_bytes(double bytes);

/// Format bytes as GB with two decimals (the paper's Table 2 unit).
[[nodiscard]] std::string gb(double bytes);

}  // namespace conflux
