/// \file timer.hpp
/// Minimal wall-clock stopwatch for benchmark reporting.
#pragma once

#include <chrono>

namespace conflux {

/// Steady-clock stopwatch. Starts running on construction. `seconds()`
/// reports time since construction/reset; the pause()/resume() pair and
/// `accumulated_seconds()` support interval accumulation (span timing,
/// bench warm-up exclusion) without re-deriving it at every call site.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart: running, zero accumulated time.
  void reset() {
    start_ = clock::now();
    accumulated_ = duration::zero();
    paused_ = false;
  }

  /// Elapsed seconds since construction or the last reset(), ignoring
  /// pauses (the original contract — benches that never pause see the
  /// plain wall interval).
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Stop accumulating. Idempotent: pausing a paused watch is a no-op.
  void pause() {
    if (paused_) return;
    accumulated_ += clock::now() - start_;
    paused_ = true;
  }

  /// Start a new accumulation interval. No-op when already running.
  void resume() {
    if (!paused_) return;
    start_ = clock::now();
    paused_ = false;
  }

  [[nodiscard]] bool paused() const { return paused_; }

  /// Total seconds spent running: the sum of all intervals between
  /// construction/reset/resume and pause, plus the current interval when
  /// running.
  [[nodiscard]] double accumulated_seconds() const {
    duration total = accumulated_;
    if (!paused_) total += clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  using duration = clock::duration;
  clock::time_point start_;
  duration accumulated_ = duration::zero();
  bool paused_ = false;
};

}  // namespace conflux
