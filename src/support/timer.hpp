/// \file timer.hpp
/// Minimal wall-clock stopwatch for benchmark reporting.
#pragma once

#include <chrono>

namespace conflux {

/// Steady-clock stopwatch. Starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace conflux
