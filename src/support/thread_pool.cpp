#include "support/thread_pool.hpp"

#include <algorithm>
#include <exception>

#include "support/env.hpp"

namespace conflux::support {

namespace {
// Set while a thread is executing inside ThreadPool::worker_loop; used to
// run nested parallel_for calls inline instead of deadlocking on busy
// workers.
thread_local const ThreadPool* g_current_pool = nullptr;

int default_pool_size() {
  // Clamp before narrowing: an absurd 64-bit CONFLUX_THREADS must not
  // truncate into a zero/negative pool size.
  constexpr std::int64_t kMaxThreads = 1024;
  const std::int64_t env = env_int("CONFLUX_THREADS", 0);
  if (env > 0) return static_cast<int>(std::min(env, kMaxThreads));
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

ThreadPool::ThreadPool(int threads) {
  size_ = threads > 0 ? threads : default_pool_size();
  workers_.reserve(static_cast<std::size_t>(size_ - 1));
  // size_ - 1 workers: the submitting thread always participates, so a pool
  // of size 1 runs everything inline with zero thread overhead.
  for (int i = 0; i < size_ - 1; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::on_worker_thread() const { return g_current_pool == this; }

void ThreadPool::worker_loop() {
  g_current_pool = this;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(int begin, int end,
                              const std::function<void(int)>& body) {
  const int count = end - begin;
  if (count <= 0) return;
  // Inline when there is nothing to parallelize over, or when called from a
  // worker (nested parallelism would deadlock a fixed pool).
  if (size_ == 1 || count == 1 || on_worker_thread()) {
    for (int i = begin; i < end; ++i) body(i);
    return;
  }

  const int chunks = std::min(size_, count);
  // `shared` lives on this stack frame and is destroyed when parallel_for
  // returns, so `remaining` may only reach 0 — and be observed at 0 — while
  // done_mutex is held: a worker that decremented outside the lock could
  // still be about to touch the mutex/cv after the waiter has already woken,
  // returned, and destroyed them.
  struct Shared {
    int remaining;  ///< guarded by done_mutex
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
  } shared;
  shared.remaining = chunks;

  auto run_chunk = [&body, &shared, begin, end, chunks](int c) {
    const int count_total = end - begin;
    const int lo = begin + static_cast<int>(
                               static_cast<long long>(count_total) * c / chunks);
    const int hi = begin + static_cast<int>(static_cast<long long>(count_total) *
                                            (c + 1) / chunks);
    std::exception_ptr error;
    try {
      for (int i = lo; i < hi; ++i) body(i);
    } catch (...) {
      error = std::current_exception();
    }
    const std::lock_guard lock(shared.done_mutex);
    if (error && !shared.error) shared.error = error;
    if (--shared.remaining == 0) shared.done_cv.notify_all();
    // No access to `shared` past this point: once the lock is released the
    // waiter may destroy it.
  };

  {
    const std::lock_guard lock(mutex_);
    for (int c = 1; c < chunks; ++c)
      queue_.emplace_back([run_chunk, c] { run_chunk(c); });
  }
  cv_.notify_all();
  run_chunk(0);  // the submitting thread takes the first chunk

  std::unique_lock lock(shared.done_mutex);
  shared.done_cv.wait(lock, [&shared] { return shared.remaining == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(int begin, int end, const std::function<void(int)>& body) {
  global_pool().parallel_for(begin, end, body);
}

}  // namespace conflux::support
