/// \file random.hpp
/// Deterministic pseudo-random generation used across tests, generators and
/// the dry-run synthetic pivot selection. A thin wrapper over SplitMix64 /
/// xoshiro256** so that results are reproducible across platforms and do not
/// depend on the standard library's distribution implementations.
#pragma once

#include <cstdint>
#include <limits>

namespace conflux {

/// SplitMix64: used for seeding and for stateless index hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// xoshiro256** 1.0 — small, fast, high-quality PRNG with value semantics.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Rng(std::uint64_t seed = 0x5EED5EED5EED5EEDULL) noexcept {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x = splitmix64(x);
      word = x;
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, n). Precondition: n > 0.
  [[nodiscard]] constexpr std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire-style rejection-free for our (non-cryptographic) purposes.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>((*this)()) * n) >> 64);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace conflux
