/// \file assert.hpp
/// Always-on contract checking for the conflux library.
///
/// Following the C++ Core Guidelines (I.6/I.8), public interfaces state their
/// preconditions explicitly. We use throwing checks (rather than the C assert
/// macro) so that contract violations are testable and active in Release
/// builds; a failed contract indicates a bug in the caller or in the library,
/// never an expected runtime condition.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace conflux {

/// Error type thrown on contract violations (preconditions/invariants).
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace conflux

/// Precondition check: use at function entry to validate arguments.
#define CONFLUX_EXPECTS(cond)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::conflux::detail::contract_fail("precondition", #cond, __FILE__,     \
                                       __LINE__, "");                       \
  } while (0)

/// Precondition check with an explanatory message (streamable).
#define CONFLUX_EXPECTS_MSG(cond, msg)                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::conflux::detail::contract_fail("precondition", #cond, __FILE__,     \
                                       __LINE__, os_.str());                \
    }                                                                       \
  } while (0)

/// Internal invariant check: a failure indicates a library bug.
#define CONFLUX_ASSERT(cond)                                                \
  do {                                                                      \
    if (!(cond))                                                            \
      ::conflux::detail::contract_fail("invariant", #cond, __FILE__,        \
                                       __LINE__, "");                       \
  } while (0)

/// Postcondition check.
#define CONFLUX_ENSURES(cond)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::conflux::detail::contract_fail("postcondition", #cond, __FILE__,    \
                                       __LINE__, "");                       \
  } while (0)
