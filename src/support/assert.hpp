/// \file assert.hpp
/// Always-on contract checking for the conflux library.
///
/// Following the C++ Core Guidelines (I.6/I.8), public interfaces state their
/// preconditions explicitly. We use throwing checks (rather than the C assert
/// macro) so that contract violations are testable and active in Release
/// builds; a failed contract indicates a bug in the caller or in the library,
/// never an expected runtime condition.
#pragma once

#include <cstdint>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace conflux {

/// Error type thrown on contract violations (preconditions/invariants).
class ContractViolation : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Structured location of a communication operation, attached to fabric and
/// verifier assertion failures so a failed contract names the offending
/// (rank, step, src, dst, tag) instead of just the expression text. Fields
/// left at their defaults are omitted from the printout.
struct CommContext {
  int rank = -1;           ///< rank executing the failing operation
  long long step = -1;     ///< outer-loop step / per-rank event index
  int src = -1;            ///< message source rank
  int dst = -1;            ///< message destination rank
  std::uint64_t tag = 0;   ///< message tag (printed when has_tag)
  bool has_tag = false;

  [[nodiscard]] CommContext with_tag(std::uint64_t t) const {
    CommContext c = *this;
    c.tag = t;
    c.has_tag = true;
    return c;
  }
};

inline std::ostream& operator<<(std::ostream& os, const CommContext& c) {
  const char* sep = "";
  os << '[';
  if (c.rank >= 0) os << sep << "rank=" << c.rank, sep = " ";
  if (c.step >= 0) os << sep << "step=" << c.step, sep = " ";
  if (c.src >= 0) os << sep << "src=" << c.src, sep = " ";
  if (c.dst >= 0) os << sep << "dst=" << c.dst, sep = " ";
  if (c.has_tag) {
    // Decode the (phase, step, sub) packing of simnet::make_tag — stated
    // there as phase<<44 | step<<20 | sub — purely as a reading aid; the
    // raw value is printed alongside.
    os << sep << "tag=0x" << std::hex << c.tag << std::dec << " (phase="
       << (c.tag >> 44) << " step=" << ((c.tag >> 20) & 0xFFFFFF)
       << " sub=" << (c.tag & 0xFFFFF) << ')';
  }
  os << ']';
  return os;
}

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line,
                                       const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw ContractViolation(os.str());
}
}  // namespace detail

}  // namespace conflux

/// Precondition check: use at function entry to validate arguments.
#define CONFLUX_EXPECTS(cond)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::conflux::detail::contract_fail("precondition", #cond, __FILE__,     \
                                       __LINE__, "");                       \
  } while (0)

/// Precondition check with an explanatory message (streamable).
#define CONFLUX_EXPECTS_MSG(cond, msg)                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << msg;                                                           \
      ::conflux::detail::contract_fail("precondition", #cond, __FILE__,     \
                                       __LINE__, os_.str());                \
    }                                                                       \
  } while (0)

/// Internal invariant check: a failure indicates a library bug.
#define CONFLUX_ASSERT(cond)                                                \
  do {                                                                      \
    if (!(cond))                                                            \
      ::conflux::detail::contract_fail("invariant", #cond, __FILE__,        \
                                       __LINE__, "");                       \
  } while (0)

/// Postcondition check.
#define CONFLUX_ENSURES(cond)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::conflux::detail::contract_fail("postcondition", #cond, __FILE__,    \
                                       __LINE__, "");                       \
  } while (0)

/// Precondition check carrying a CommContext (or any streamable context):
/// the failure message leads with the structured (rank, step, src, dst,
/// tag) location so fabric/verifier diagnostics are actionable without a
/// debugger.
#define CONFLUX_EXPECTS_CTX(cond, ctx)                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << (ctx);                                                         \
      ::conflux::detail::contract_fail("precondition", #cond, __FILE__,     \
                                       __LINE__, os_.str());                \
    }                                                                       \
  } while (0)

/// Invariant check carrying a CommContext (or any streamable context).
#define CONFLUX_ASSERT_CTX(cond, ctx)                                       \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream os_;                                               \
      os_ << (ctx);                                                         \
      ::conflux::detail::contract_fail("invariant", #cond, __FILE__,        \
                                       __LINE__, os_.str());                \
    }                                                                       \
  } while (0)
