#include "factor/numerics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace conflux::factor {

PivotStats pivot_stats(std::span<const int> permutation,
                       std::span<const double> u_diag) {
  CONFLUX_EXPECTS(permutation.size() == u_diag.size());
  PivotStats stats;
  stats.rows = static_cast<int>(permutation.size());
  if (stats.rows == 0) return stats;
  stats.min_abs_u_diag = std::numeric_limits<double>::infinity();
  for (int i = 0; i < stats.rows; ++i) {
    const int p = permutation[static_cast<std::size_t>(i)];
    if (p != i) ++stats.off_natural;
    stats.max_displacement = std::max(stats.max_displacement,
                                      std::abs(p - i));
    const double d = std::abs(u_diag[static_cast<std::size_t>(i)]);
    stats.min_abs_u_diag = std::min(stats.min_abs_u_diag, d);
    stats.max_abs_u_diag = std::max(stats.max_abs_u_diag, d);
  }
  return stats;
}

double residual_in_eps(double scaled_residual) {
  return scaled_residual / std::numeric_limits<double>::epsilon();
}

}  // namespace conflux::factor
