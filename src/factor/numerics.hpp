/// \file numerics.hpp
/// Per-run numerics instrumentation for the pivoted factorizations: the
/// growth factor and residual already reported by FactorResult/LuResult are
/// joined here by the eps-scaled residual ‖PA−LU‖ / (‖A‖·n·eps) — the unit
/// the stability literature (and the adversarial validation suite) reasons
/// in — and by summary statistics of the pivot sequence itself, so a run's
/// report shows not just *whether* a strategy stayed stable but *what its
/// pivoting actually did*.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace conflux::factor {

/// Summary of one run's pivot sequence. `permutation` maps position to
/// global row (L*U = A[permutation, :]); displacement measures how far the
/// chosen pivot rows sit from the natural (unpivoted) order.
struct PivotStats {
  int rows = 0;              ///< permutation length (0 = not populated)
  int off_natural = 0;       ///< positions with permutation[i] != i
  int max_displacement = 0;  ///< max |permutation[i] - i|
  double min_abs_u_diag = 0;  ///< smallest |U(i,i)| — distance to breakdown
  double max_abs_u_diag = 0;  ///< largest |U(i,i)| — growth's diagonal face

  /// Fraction of positions where the strategy deviated from natural order.
  [[nodiscard]] double off_natural_fraction() const {
    return rows > 0 ? static_cast<double>(off_natural) / rows : 0.0;
  }
};

/// Compute pivot statistics from a run's row permutation and the diagonal
/// of its U factor (both sized n).
[[nodiscard]] PivotStats pivot_stats(std::span<const int> permutation,
                                     std::span<const double> u_diag);

/// Convert the scaled residual max|LU − PA| / (n·max|A|) the backends
/// report into units of machine epsilon: ‖PA−LU‖ / (‖A‖·n·eps). Classical
/// backward-error analysis bounds this by c(n) times the growth factor,
/// which is exactly how the adversarial suite asserts it.
[[nodiscard]] double residual_in_eps(double scaled_residual);

}  // namespace conflux::factor
