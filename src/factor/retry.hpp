/// \file retry.hpp
/// Run-level recovery for the factorization backends: classify a failed
/// run as transient (fault-injected or environmental — worth retrying) or
/// deterministic (a bug — rethrow immediately), and re-run with capped
/// exponential backoff.
///
/// The contract chaos testing enforces (tools/confscope --chaos,
/// tests/test_faults.cpp): a retried run that succeeds produces the *same*
/// result a fault-free run produces — bit-identical CommVolume and passing
/// residual — because injected delays and stalls never change the
/// communication schedule, and detected corruption aborts the attempt
/// before a wrong value can propagate. Each attempt runs over a fresh
/// Network (every backend constructs its own), so no fabric state leaks
/// between attempts.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "simnet/faults.hpp"

namespace conflux::factor {

/// How run_with_retry retries.
struct RetryPolicy {
  int max_attempts = 3;      ///< total tries, including the first
  double backoff_s = 0.01;   ///< first inter-attempt backoff
  double backoff_max_s = 1.0;  ///< cap for the exponential growth
  /// Sleep the backoff for real (Threaded mode). False in virtual-time
  /// mode: the backoff is recorded in FactorResult::backoff_seconds but
  /// not slept — the simulated machine's recovery latency, not the host's.
  bool real_sleep = true;
};

/// True when `e` is the kind of failure a retry can plausibly outrun: a
/// receive deadline expiry (but NOT a detected deadlock — that is a
/// deterministic program bug and would recur), a detected payload
/// corruption, or a job aborted by a peer rank's transient failure.
/// ContractViolation and everything else classify as deterministic.
[[nodiscard]] bool is_transient_failure(const std::exception& e);

/// Run `run()` (returning a FactorResult or derived type) up to
/// `policy.max_attempts` times. Transient failures back off exponentially
/// (capped) and retry; deterministic failures and the final attempt's
/// failure rethrow. `plan`, when given, is advanced via next_attempt()
/// between tries so the retry sees a re-randomized fault schedule — the
/// mechanism that lets a run recover from an injected fault at all.
/// On success the result's attempts / failure_causes / backoff_seconds
/// fields record the recovery history.
template <typename Run>
auto run_with_retry(Run&& run, const RetryPolicy& policy = {},
                    simnet::FaultPlan* plan = nullptr) -> decltype(run()) {
  std::vector<std::string> causes;
  double backoff_total = 0;
  for (int attempt = 1;; ++attempt) {
    try {
      auto result = run();
      result.attempts = attempt;
      result.failure_causes = std::move(causes);
      result.backoff_seconds = backoff_total;
      return result;
    } catch (const std::exception& e) {
      if (attempt >= policy.max_attempts || !is_transient_failure(e)) throw;
      causes.push_back(e.what());
      if (plan != nullptr) plan->next_attempt();
      const double delay =
          std::min(policy.backoff_max_s,
                   policy.backoff_s * std::ldexp(1.0, attempt - 1));
      backoff_total += delay;
      if (policy.real_sleep && delay > 0)
        std::this_thread::sleep_for(std::chrono::duration<double>(delay));
    }
  }
}

}  // namespace conflux::factor
