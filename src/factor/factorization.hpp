/// \file factorization.hpp
/// The shared configuration/result/interface layer for the distributed
/// factorization families:
///   - LU (src/lu): COnfLUX and the three §8 comparison targets;
///   - Cholesky (src/cholesky): COnfCHOX and the ScaLAPACK-style 2D
///     baseline of the journal extension (arXiv:2108.09337).
///
/// Both families run on the same simnet SPMD fabric, report the same
/// CommVolume metrics (the paper's Score-P byte counts), support the same
/// Numeric/DryRun duality, and share the 2.5D ablation knobs. Everything a
/// factorization result has in common — grid, block size, per-rank volume,
/// residual, wall time — lives here; family-specific extras (LU's pivot
/// growth and permutation, Cholesky's L factor semantics) live in the
/// derived LuResult/CholResult types.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "simnet/faults.hpp"
#include "simnet/stats.hpp"
#include "simnet/vtime.hpp"

namespace conflux::simnet {
class Network;
class TraceRecorder;
}  // namespace conflux::simnet

namespace conflux::telemetry {
class TelemetryBoard;
}  // namespace conflux::telemetry

namespace conflux::factor {

/// Execution mode.
/// - Numeric: factor real data, record the factors, verify the residual.
/// - DryRun: execute the identical communication schedule with ghost
///   payloads (and, for pivoted algorithms, synthetic hash-spread pivots).
///   Message sizes in every algorithm depend only on index sets, never on
///   matrix values, so the measured volume is exact (tests assert
///   DryRun == Numeric volume; for the pivot-free Cholesky family the two
///   are bit-identical).
enum class Mode { Numeric, DryRun };

/// A distributed-factorization problem configuration, shared by every
/// algorithm in both families.
struct FactorConfig {
  int n = 0;       ///< matrix dimension; must be a multiple of the block size
  int p = 1;       ///< ranks available (nodes in the paper's terminology)
  int block = 0;   ///< v (2.5D algorithms) or nb (2D); 0 = auto-tune
  double mem_elements = 0;  ///< per-rank memory budget M in elements;
                            ///< <= 0 selects the paper's max-replication rule
                            ///< M = N^2 / P^(2/3)
  Mode mode = Mode::Numeric;
  std::uint64_t seed = 42;  ///< synthetic pivot seed (DryRun, LU only)

  // --- ablation knobs (bench_ablation) ------------------------------------
  bool grid_optimization = true;  ///< 2.5D: search the best [Px,Py,c] grid
  int force_layers = 0;           ///< force the replication depth c (0 = auto)
  bool verify = true;             ///< Numeric: assemble factors and check
  bool keep_factors = false;      ///< Numeric: retain the factors in the
                                  ///< result (lu/solve.hpp consumes them)

  /// Optional schedule export: when set, the run's Network attaches this
  /// recorder, so every send/multicast/receive lands in a per-rank event
  /// log (simnet/trace.hpp). This is how the static verifier
  /// (src/verify, tools/commcheck) extracts the communication graph of a
  /// dry run; numeric runs can attach it too to check the dry-run contract.
  simnet::TraceRecorder* trace = nullptr;

  /// Execution mode of the run's fabric (simnet/vtime.hpp). Threaded (the
  /// default) runs one OS thread per rank; VirtualTime multiplexes
  /// cooperative fibers over the thread pool with a LogGP clock, which is
  /// what lets the benches run P = 512–4096 on a laptop-class host and
  /// report a *predicted* wall clock (FactorResult::predicted_seconds).
  simnet::FabricSpec fabric;

  /// Optional ConfScope telemetry (support/telemetry.hpp), mirroring the
  /// `trace` hook: when set, the run's Network attaches this board, the
  /// backend opens a span per step-record phase (panel tournament, pivot
  /// apply, TRSM, Schur update, layer reduction), and the fabric attributes
  /// sent bytes to the sender's open span and blocked-in-recv time to
  /// (src, tag) wait samples. Null (the default) costs nothing on the hot
  /// path.
  telemetry::TelemetryBoard* telemetry = nullptr;

  /// Optional ConfChaos fault plan (simnet/faults.hpp), mirroring the
  /// `trace`/`telemetry` hooks: when set, the run's Network attaches this
  /// plan and every remote message consults it for seeded link delays,
  /// rank stalls and payload bit-flips. Null (the default) costs nothing.
  simnet::FaultPlan* faults = nullptr;

  /// End-to-end payload integrity: stamp every payload with its FNV-1a
  /// fingerprint at deliver time and verify it at receive time, raising
  /// simnet::PayloadCorrupted instead of silently misfactoring. Off by
  /// default (zero hot-path cost).
  bool integrity = false;

  /// Containment policy for the run's fabric: receive deadlines (Threaded)
  /// and the virtual-clock cap (VirtualTime). All-zero (the default) waits
  /// forever, exactly as before ConfChaos.
  simnet::RunPolicy policy;
};

/// The common part of one factorization run's result. Derived result types
/// add family-specific fields; everything the volume benchmarks and
/// reporting consume is here.
struct FactorResult {
  simnet::CommVolume total;          ///< summed over ranks (Score-P metric)
  std::uint64_t max_rank_bytes = 0;  ///< busiest rank, sent+received (Fig. 6)
  int ranks_used = 0;                ///< active ranks (grid may idle some)
  int ranks_available = 0;           ///< the P the caller asked for
  std::string grid;                  ///< human-readable grid description
  int block = 0;                     ///< block size actually used
  double residual = std::numeric_limits<double>::quiet_NaN();  ///< Numeric
  double seconds = 0;                ///< wall time of the simulated run

  /// Virtual-time runs only: the predicted wall clock of the run on the
  /// modeled machine — the maximum per-rank LogGP clock at the join. 0 for
  /// threaded runs.
  double predicted_seconds = 0;

  /// Recovery accounting (factor/retry.hpp). attempts counts runs
  /// including the successful one; failure_causes holds the what() of each
  /// failed attempt in order; backoff_seconds sums the inter-attempt
  /// backoff (real or virtual). A first-try success is {1, {}, 0}.
  int attempts = 1;
  std::vector<std::string> failure_causes;
  double backoff_seconds = 0;

  /// Factors retained by a numeric run with cfg.keep_factors. Packing is
  /// family-specific: LU stores L below the diagonal and U on/above it in
  /// permuted row order (see lu/lu_common.hpp); Cholesky stores the lower
  /// triangular L with zeros above the diagonal.
  std::shared_ptr<linalg::Matrix> factors;

  /// Total bytes sent over the network — the paper's "communication volume".
  [[nodiscard]] double total_bytes() const {
    return static_cast<double>(total.bytes_sent);
  }
  /// Average per-available-rank volume (Fig. 6's per-node axis).
  [[nodiscard]] double bytes_per_rank() const {
    return total_bytes() / std::max(1, ranks_available);
  }
};

/// Root interface of every distributed factorization. The per-family
/// interfaces (lu::LuAlgorithm, cholesky::CholeskyAlgorithm) extend it with
/// a typed run() entry point; the base keeps naming and reporting uniform
/// across families.
class Factorization {
 public:
  virtual ~Factorization() = default;

  /// Name as used in the paper's tables ("COnfLUX", "LibSci", "COnfCHOX",
  /// ...).
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Populate the common CommVolume fields of `result` from a finished SPMD
/// run: summed volume, busiest-rank bytes, and the rank accounting. Every
/// algorithm in both families funnels its result through this helper so the
/// reported metrics stay directly comparable.
void fill_comm_stats(FactorResult& result, const simnet::Network& net,
                     int ranks_used, int ranks_available);

/// Attach every configured instrument to a run's fresh Network: trace,
/// telemetry, fault plan, integrity mode and containment policy. Every
/// backend calls this right after constructing its Network, so a new hook
/// added here reaches all seven algorithms at once.
void attach_instruments(simnet::Network& net, const FactorConfig& cfg);

}  // namespace conflux::factor
