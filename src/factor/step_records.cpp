#include "factor/step_records.hpp"

#include "linalg/blas.hpp"
#include "support/assert.hpp"

namespace conflux::factor {

std::vector<StepRecord> make_step_records(int n, int v, bool with_a01) {
  CONFLUX_EXPECTS(n % v == 0);
  const int steps = n / v;
  std::vector<StepRecord> records(static_cast<std::size_t>(steps));
  for (auto& rec : records) {
    rec.pivots.assign(static_cast<std::size_t>(v), -1);
    rec.a00 = linalg::Matrix(v, v);
    rec.a10 = linalg::Matrix(n, v);
    if (with_a01) rec.a01 = linalg::Matrix(v, n);
  }
  return records;
}

AssembledFactors assemble_factors(const std::vector<StepRecord>& records,
                                  int n, int v) {
  CONFLUX_EXPECTS(static_cast<int>(records.size()) == n / v);
  AssembledFactors f;
  f.l = linalg::Matrix(n, n);
  f.u = linalg::Matrix(n, n);
  f.pivot_order.reserve(static_cast<std::size_t>(n));

  const int steps = n / v;
  for (int t = 0; t < steps; ++t) {
    const StepRecord& rec = records[static_cast<std::size_t>(t)];
    for (int q = 0; q < v; ++q) {
      const int row = t * v + q;  // position in the permuted ordering
      const int grow = rec.pivots[static_cast<std::size_t>(q)];
      CONFLUX_ASSERT(grow >= 0 && grow < n);
      f.pivot_order.push_back(grow);

      // L: earlier steps' trsm'd panel values for this global row, then the
      // unit-diagonal A00 row.
      for (int s = 0; s < t; ++s) {
        const StepRecord& prev = records[static_cast<std::size_t>(s)];
        for (int k = 0; k < v; ++k)
          f.l(row, s * v + k) = prev.a10(grow, k);
      }
      for (int k = 0; k < q; ++k) f.l(row, t * v + k) = rec.a00(q, k);
      f.l(row, t * v + q) = 1.0;

      // U: A00's upper part, then this step's trsm'd row panel.
      for (int k = q; k < v; ++k) f.u(row, t * v + k) = rec.a00(q, k);
      for (int col = (t + 1) * v; col < n; ++col)
        f.u(row, col) = rec.a01(q, col);
    }
  }
  return f;
}

linalg::Matrix assemble_cholesky_factor(const std::vector<StepRecord>& records,
                                        int n, int v) {
  CONFLUX_EXPECTS(static_cast<int>(records.size()) == n / v);
  linalg::Matrix l(n, n);
  const int steps = n / v;
  for (int t = 0; t < steps; ++t) {
    const StepRecord& rec = records[static_cast<std::size_t>(t)];
    // Diagonal block: the lower triangle of L00.
    for (int i = 0; i < v; ++i)
      for (int j = 0; j <= i; ++j) l(t * v + i, t * v + j) = rec.a00(i, j);
    // Below-panel rows: the solved L10 strip.
    for (int r = (t + 1) * v; r < n; ++r)
      for (int k = 0; k < v; ++k) l(r, t * v + k) = rec.a10(r, k);
  }
  return l;
}

double masked_lu_residual(const linalg::Matrix& a, const AssembledFactors& f) {
  const int n = a.rows();
  CONFLUX_EXPECTS(a.cols() == n && f.l.rows() == n);

  linalg::Matrix prod(n, n);
  linalg::gemm(1.0, f.l.view(), f.u.view(), 0.0, prod.view());

  double err = 0.0;
  for (int i = 0; i < n; ++i) {
    const int src = f.pivot_order[static_cast<std::size_t>(i)];
    auto pa = a.row(src);
    auto lu = prod.row(i);
    for (int j = 0; j < n; ++j)
      err = std::max(err, std::abs(pa[j] - lu[j]));
  }
  const double scale = std::max(1.0, linalg::max_abs(a.view())) * n;
  return err / scale;
}

double masked_growth_factor(const linalg::Matrix& a,
                            const AssembledFactors& f) {
  const double amax = linalg::max_abs(a.view());
  return amax == 0.0 ? 0.0 : linalg::max_abs(f.u.view()) / amax;
}

}  // namespace conflux::factor
