#include "factor/retry.hpp"

#include "simnet/network.hpp"

namespace conflux::factor {

bool is_transient_failure(const std::exception& e) {
  if (const auto* timeout = dynamic_cast<const simnet::ReceiveTimeout*>(&e))
    return !timeout->deadlock();
  if (dynamic_cast<const simnet::PayloadCorrupted*>(&e) != nullptr)
    return true;
  // JobAborted reaching the caller means the aborting rank's own exception
  // was swallowed somewhere unusual; treat like the peer failure it is.
  if (dynamic_cast<const simnet::JobAborted*>(&e) != nullptr) return true;
  return false;
}

}  // namespace conflux::factor
