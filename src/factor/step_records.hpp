/// \file step_records.hpp
/// Out-of-band recording of per-step factors for verification, shared by
/// the LU and Cholesky factorization families.
///
/// The paper (and this reproduction) excludes result collection from the
/// measured communication volume; ranks therefore write their factor pieces
/// straight into pre-allocated shared buffers. Writes are disjoint by
/// construction (each row/column chunk has exactly one owner), and the
/// SPMD join synchronizes before the host reads them.
///
/// The same StepRecord shape serves both families:
///  - COnfLUX fills pivots/a00/a10/a01 (see assemble_factors);
///  - COnfCHOX, which never pivots and whose row panel is the transposed
///    column panel, fills only a00 (the v x v L00 block) and a10 (the
///    solved L10 rows); assemble_cholesky_factor ignores pivots/a01.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace conflux::factor {

/// Factors produced at outer-loop step t of a block algorithm with masked
/// rows (COnfLUX) or a fixed leading panel (COnfCHOX). Row-indexed by
/// *global* row id so concurrent writers stay disjoint.
struct StepRecord {
  std::vector<int> pivots;  ///< the v pivot rows chosen this step, in order
                            ///< (identity for the pivot-free Cholesky)
  linalg::Matrix a00;       ///< v x v packed factor of the pivot block:
                            ///< LU of A00 (COnfLUX) or lower L00 (COnfCHOX)
  linalg::Matrix a10;       ///< N x v; row r holds L[r, step-cols] if r was
                            ///< unpivoted (LU) / below the panel (Cholesky)
  linalg::Matrix a01;       ///< v x N; column c holds U[step-rows, c] for
                            ///< trailing columns (LU only)
};

/// Pre-sized record set for n / v steps. `with_a01` is false for the
/// Cholesky family, whose row panel is recovered from a10 by transposition.
[[nodiscard]] std::vector<StepRecord> make_step_records(int n, int v,
                                                        bool with_a01 = true);

/// Assemble the explicit LU factors from step records:
/// rows of L and U appear in pivot order (the row permutation), columns in
/// natural order, so that L * U == A[pivot_order, :].
struct AssembledFactors {
  std::vector<int> pivot_order;  ///< row permutation: position -> global row
  linalg::Matrix l;              ///< n x n unit lower triangular
  linalg::Matrix u;              ///< n x n upper triangular
};

[[nodiscard]] AssembledFactors assemble_factors(
    const std::vector<StepRecord>& records, int n, int v);

/// Assemble the lower-triangular Cholesky factor L (zeros above the
/// diagonal) from records whose a00 holds L00 and whose a10 rows hold the
/// solved L10 panels. Row order is natural (no pivoting).
[[nodiscard]] linalg::Matrix assemble_cholesky_factor(
    const std::vector<StepRecord>& records, int n, int v);

/// Scaled residual max|L*U - A[perm, :]| / (n * max|A|).
[[nodiscard]] double masked_lu_residual(const linalg::Matrix& a,
                                        const AssembledFactors& f);

/// Growth factor max|U| / max|A|.
[[nodiscard]] double masked_growth_factor(const linalg::Matrix& a,
                                          const AssembledFactors& f);

}  // namespace conflux::factor
