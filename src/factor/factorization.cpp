#include "factor/factorization.hpp"

#include "simnet/network.hpp"

namespace conflux::factor {

void fill_comm_stats(FactorResult& result, const simnet::Network& net,
                     int ranks_used, int ranks_available) {
  result.total = net.stats().total();
  result.max_rank_bytes = net.stats().max_rank_bytes();
  result.ranks_used = ranks_used;
  result.ranks_available = ranks_available;
  result.predicted_seconds = net.virtual_makespan();
}

void attach_instruments(simnet::Network& net, const FactorConfig& cfg) {
  if (cfg.trace != nullptr) net.set_trace(cfg.trace);
  if (cfg.telemetry != nullptr) net.set_telemetry(cfg.telemetry);
  if (cfg.faults != nullptr) net.set_faults(cfg.faults);
  net.set_integrity(cfg.integrity);
  net.set_policy(cfg.policy);
}

}  // namespace conflux::factor
