#include "factor/factorization.hpp"

#include "simnet/network.hpp"

namespace conflux::factor {

void fill_comm_stats(FactorResult& result, const simnet::Network& net,
                     int ranks_used, int ranks_available) {
  result.total = net.stats().total();
  result.max_rank_bytes = net.stats().max_rank_bytes();
  result.ranks_used = ranks_used;
  result.ranks_available = ranks_available;
  result.predicted_seconds = net.virtual_makespan();
}

}  // namespace conflux::factor
