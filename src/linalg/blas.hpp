/// \file blas.hpp
/// BLAS-3-style kernels on views: blocked GEMM and the four TRSM variants
/// used by blocked/distributed LU. Written for clarity first and reasonable
/// single-core throughput second (register-tiled inner loops, contiguous
/// row-major access).
#pragma once

#include "linalg/matrix.hpp"

namespace conflux::linalg {

/// C := alpha * A * B + beta * C.
/// Shapes: A is m x k, B is k x n, C is m x n.
void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c);

/// C := C - A * B — the Schur-complement update used by every LU variant.
void schur_update(MatrixView c, ConstMatrixView a, ConstMatrixView b);

/// Triangle selector for TRSM.
enum class Triangle { Lower, Upper };
/// Unit-diagonal selector for TRSM.
enum class Diag { Unit, NonUnit };

/// Solve op(L/U) * X = B in place (X overwrites B), with the triangular
/// matrix applied from the left. `tri` is `a`'s triangle; entries of `a`
/// outside the triangle are ignored.
/// Shapes: a is m x m, b is m x n.
void trsm_left(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b);

/// Solve X * op(L/U) = B in place (X overwrites B), triangular matrix applied
/// from the right. Shapes: a is n x n, b is m x n.
void trsm_right(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b);

}  // namespace conflux::linalg
