/// \file blas.hpp
/// BLAS-3-style kernels on views: blocked GEMM and the four TRSM variants
/// used by blocked/distributed LU.
///
/// Two implementations live behind each entry point:
///  - reference: the original clarity-first single-threaded loops, kept as
///    the ground truth for testing;
///  - optimized: cache-blocked, packed, register-tiled kernels that run the
///    macro loops on the shared thread pool (src/support/thread_pool.hpp).
///    TRSM is blocked so its bulk flops run through the optimized GEMM.
///
/// The active implementation is a process-wide runtime switch: it defaults
/// to Optimized, can be forced with CONFLUX_BLAS=reference|optimized, and
/// can be flipped programmatically (tests pin both paths against each
/// other).
#pragma once

#include "linalg/matrix.hpp"

namespace conflux::linalg {

/// Which kernel family the public entry points dispatch to.
enum class BlasImpl { Reference, Optimized };

/// Current implementation. Initialized once from CONFLUX_BLAS
/// ("reference"/"optimized", default optimized).
[[nodiscard]] BlasImpl blas_impl();

/// Override the implementation at runtime (tests, A/B benchmarks).
void set_blas_impl(BlasImpl impl);

/// C := alpha * A * B + beta * C.
/// Shapes: A is m x k, B is k x n, C is m x n.
void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c);

/// C := C - A * B — the Schur-complement update used by every LU variant.
void schur_update(MatrixView c, ConstMatrixView a, ConstMatrixView b);

/// Triangle selector for TRSM.
enum class Triangle { Lower, Upper };
/// Unit-diagonal selector for TRSM.
enum class Diag { Unit, NonUnit };

/// Solve op(L/U) * X = B in place (X overwrites B), with the triangular
/// matrix applied from the left. `tri` is `a`'s triangle; entries of `a`
/// outside the triangle are ignored.
/// Shapes: a is m x m, b is m x n.
void trsm_left(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b);

/// Solve X * op(L/U) = B in place (X overwrites B), triangular matrix applied
/// from the right. Shapes: a is n x n, b is m x n.
void trsm_right(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b);

/// The reference kernels, always callable directly regardless of the active
/// switch — the test suite pins the optimized path against these.
void gemm_reference(double alpha, ConstMatrixView a, ConstMatrixView b,
                    double beta, MatrixView c);
void trsm_left_reference(Triangle tri, Diag diag, ConstMatrixView a,
                         MatrixView b);
void trsm_right_reference(Triangle tri, Diag diag, ConstMatrixView a,
                          MatrixView b);

/// The optimized kernels, likewise directly callable (benchmarks).
void gemm_optimized(double alpha, ConstMatrixView a, ConstMatrixView b,
                    double beta, MatrixView c);
void trsm_left_optimized(Triangle tri, Diag diag, ConstMatrixView a,
                         MatrixView b);
void trsm_right_optimized(Triangle tri, Diag diag, ConstMatrixView a,
                          MatrixView b);

}  // namespace conflux::linalg
