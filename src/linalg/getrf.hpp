/// \file getrf.hpp
/// Sequential LU factorization with partial pivoting (unblocked and blocked)
/// plus pivot bookkeeping and residual checks. These serve as the reference
/// against which the distributed algorithms are verified, and as the local
/// building block inside panel factorizations.
#pragma once

#include <span>
#include <vector>

#include "linalg/matrix.hpp"

namespace conflux::linalg {

/// Result flag for factorizations. Singular is LU's failure mode (a zero
/// pivot column); NotSpd is Cholesky's (a non-positive diagonal during
/// potrf, see linalg/potrf.hpp).
enum class FactorStatus { Ok, Singular, NotSpd };

/// In-place unblocked LU with partial pivoting on a (possibly tall) m x n
/// view (m >= n not required; factors min(m, n) columns). On return `a`
/// holds L (unit lower, below diagonal) and U (upper). `ipiv[k]` is the row
/// (in 0-based local indices, >= k) swapped with row k at step k — LAPACK
/// convention.
FactorStatus getrf_unblocked(MatrixView a, std::span<int> ipiv);

/// Blocked right-looking LU with partial pivoting, panel width `nb`.
/// Semantics identical to getrf_unblocked.
FactorStatus getrf_blocked(MatrixView a, std::span<int> ipiv, int nb);

/// Apply the LAPACK-style pivot sequence to the rows of `a` (forward order):
/// for k in [0, ipiv.size()): swap rows k and ipiv[k].
void apply_pivots(MatrixView a, std::span<const int> ipiv);

/// Convert a LAPACK ipiv sequence into the explicit row permutation `perm`
/// such that (PA)(i, :) = A(perm[i], :).
[[nodiscard]] std::vector<int> pivots_to_permutation(std::span<const int> ipiv,
                                                     int m);

/// Extract the unit-lower L factor (m x n) from a factored view.
[[nodiscard]] Matrix extract_lower_unit(ConstMatrixView lu);
/// Extract the upper U factor (n x n top block) from a factored view.
[[nodiscard]] Matrix extract_upper(ConstMatrixView lu);

/// Scaled residual max|P*A - L*U| / (n * max|A|); small (~1e-14 * growth)
/// for a healthy factorization.
[[nodiscard]] double lu_residual(const Matrix& original,
                                 ConstMatrixView factored,
                                 std::span<const int> ipiv);

/// Element growth factor max|U| / max|A| — the standard stability proxy for
/// pivoting strategies (tournament pivoting is shown in [29] to behave like
/// partial pivoting).
[[nodiscard]] double growth_factor(const Matrix& original,
                                   ConstMatrixView factored);

}  // namespace conflux::linalg
