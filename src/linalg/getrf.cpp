#include "linalg/getrf.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"

namespace conflux::linalg {

namespace {
void swap_rows(MatrixView a, int r0, int r1) {
  if (r0 == r1) return;
  auto x = a.row(r0);
  auto y = a.row(r1);
  for (int j = 0; j < a.cols(); ++j) std::swap(x[j], y[j]);
}
}  // namespace

FactorStatus getrf_unblocked(MatrixView a, std::span<int> ipiv) {
  const int m = a.rows(), n = a.cols();
  const int kmax = std::min(m, n);
  CONFLUX_EXPECTS(static_cast<int>(ipiv.size()) >= kmax);
  FactorStatus status = FactorStatus::Ok;

  for (int k = 0; k < kmax; ++k) {
    // Pivot search in column k, rows k..m.
    int piv = k;
    double best = std::abs(a(k, k));
    for (int i = k + 1; i < m; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    ipiv[k] = piv;
    swap_rows(a, k, piv);

    const double akk = a(k, k);
    if (akk == 0.0) {
      status = FactorStatus::Singular;
      continue;  // LAPACK keeps going; the column below stays as-is.
    }
    const double inv = 1.0 / akk;
    for (int i = k + 1; i < m; ++i) a(i, k) *= inv;
    // Rank-1 trailing update.
    for (int i = k + 1; i < m; ++i) {
      const double lik = a(i, k);
      if (lik == 0.0) continue;
      auto ai = a.row(i);
      auto ak = a.row(k);
      for (int j = k + 1; j < n; ++j) ai[j] -= lik * ak[j];
    }
  }
  return status;
}

FactorStatus getrf_blocked(MatrixView a, std::span<int> ipiv, int nb) {
  const int m = a.rows(), n = a.cols();
  const int kmax = std::min(m, n);
  CONFLUX_EXPECTS(nb >= 1);
  CONFLUX_EXPECTS(static_cast<int>(ipiv.size()) >= kmax);
  FactorStatus status = FactorStatus::Ok;

  for (int k0 = 0; k0 < kmax; k0 += nb) {
    const int kb = std::min(nb, kmax - k0);
    // Factor the panel a[k0:m, k0:k0+kb].
    auto panel = a.block(k0, k0, m - k0, kb);
    std::vector<int> piv_local(kb);
    if (getrf_unblocked(panel, piv_local) == FactorStatus::Singular)
      status = FactorStatus::Singular;

    // Record pivots in global row indices and apply the swaps to the rest of
    // the matrix (left of the panel and right of it).
    for (int k = 0; k < kb; ++k) {
      const int piv = piv_local[k] + k0;
      ipiv[k0 + k] = piv;
      if (piv != k0 + k) {
        if (k0 > 0)
          swap_rows(a.block(0, 0, m, k0), k0 + k, piv);
        if (k0 + kb < n)
          swap_rows(a.block(0, k0 + kb, m, n - (k0 + kb)), k0 + k, piv);
      }
    }

    if (k0 + kb < n) {
      // U block row: solve L00 * U01 = A01.
      auto l00 = a.block(k0, k0, kb, kb);
      auto a01 = a.block(k0, k0 + kb, kb, n - (k0 + kb));
      trsm_left(Triangle::Lower, Diag::Unit, l00, a01);
      // Trailing update A11 -= L10 * U01.
      if (k0 + kb < m) {
        auto l10 = a.block(k0 + kb, k0, m - (k0 + kb), kb);
        auto a11 = a.block(k0 + kb, k0 + kb, m - (k0 + kb), n - (k0 + kb));
        schur_update(a11, l10, a01);
      }
    }
  }
  return status;
}

void apply_pivots(MatrixView a, std::span<const int> ipiv) {
  for (std::size_t k = 0; k < ipiv.size(); ++k)
    swap_rows(a, static_cast<int>(k), ipiv[k]);
}

std::vector<int> pivots_to_permutation(std::span<const int> ipiv, int m) {
  std::vector<int> perm(static_cast<std::size_t>(m));
  std::iota(perm.begin(), perm.end(), 0);
  for (std::size_t k = 0; k < ipiv.size(); ++k)
    std::swap(perm[k], perm[static_cast<std::size_t>(ipiv[k])]);
  return perm;
}

Matrix extract_lower_unit(ConstMatrixView lu) {
  const int m = lu.rows();
  const int n = std::min(lu.rows(), lu.cols());
  Matrix l(m, n);
  for (int i = 0; i < m; ++i)
    for (int j = 0; j < n; ++j) {
      if (j < i)
        l(i, j) = lu(i, j);
      else if (j == i)
        l(i, j) = 1.0;
    }
  return l;
}

Matrix extract_upper(ConstMatrixView lu) {
  const int n = std::min(lu.rows(), lu.cols());
  const int cols = lu.cols();
  Matrix u(n, cols);
  for (int i = 0; i < n; ++i)
    for (int j = i; j < cols; ++j) u(i, j) = lu(i, j);
  return u;
}

double lu_residual(const Matrix& original, ConstMatrixView factored,
                   std::span<const int> ipiv) {
  const int m = original.rows(), n = original.cols();
  CONFLUX_EXPECTS(factored.rows() == m && factored.cols() == n);

  Matrix pa = original;
  apply_pivots(pa.view(), ipiv);

  const Matrix l = extract_lower_unit(factored);
  const Matrix u = extract_upper(factored);
  Matrix prod(m, n);
  gemm(1.0, l.view(), u.view(), 0.0, prod.view());

  const double scale = std::max(1.0, max_abs(original.view())) * std::max(1, n);
  return max_abs_diff(pa.view(), prod.view()) / scale;
}

double growth_factor(const Matrix& original, ConstMatrixView factored) {
  const double a = max_abs(original.view());
  const Matrix u = extract_upper(factored);
  return a == 0.0 ? 0.0 : max_abs(u.view()) / a;
}

}  // namespace conflux::linalg
