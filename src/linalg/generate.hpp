/// \file generate.hpp
/// Deterministic test-matrix generators. The paper's evaluation factors
/// matrices from scientific applications (DFT atom-interaction matrices,
/// HPL); for reproduction we use well-conditioned random and structured
/// generators with fixed seeds, plus the adversarial families the
/// numerics validation suite throws at the pivoting strategies.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace conflux::linalg {

/// Kinds of generated matrices.
enum class MatrixKind {
  Uniform,        ///< i.i.d. uniform in [-1, 1): generic dense workload.
  DiagDominant,   ///< uniform + n on the diagonal: no pivot growth, stable.
  Interaction,    ///< symmetric-ish decaying off-diagonals, mimicking the
                  ///< atom-interaction matrices of DFT applications (§8).
  Laplace2D,      ///< 2D finite-difference Laplacian stencil (sparse-in-dense).
  Spd,            ///< symmetric positive definite: symmetrized uniform noise
                  ///< plus n on the diagonal (SPD by Gershgorin; square
                  ///< only). The input family for the Cholesky algorithms.

  // --- adversarial kinds (the numerics validation suite) -------------------
  Wilkinson,      ///< Wilkinson's GEPP worst case: 1 on the diagonal, -1
                  ///< strictly below it, 1 in the last column. Partial
                  ///< pivoting never swaps and the growth factor doubles
                  ///< every elimination step, reaching 2^(n-1).
  Graded,         ///< ill-scaled: uniform noise with row magnitudes decaying
                  ///< over ~2^-36 and column magnitudes growing over ~2^12 —
                  ///< entries span twelve decades, stressing the pivot
                  ///< selection's scale invariance.
  NearSingular,   ///< low-rank perturbation of singular: the last row is a
                  ///< convex combination of two earlier rows plus 1e-8 noise,
                  ///< driving one pivot (and the conditioning) to ~1e-8.
  RandSvd,        ///< randsvd with prescribed condition number 1e10:
                  ///< geometrically decaying singular values wrapped in
                  ///< random Householder reflections (square only).
};

/// Table name of a matrix kind ("Uniform", "Wilkinson", ...).
[[nodiscard]] const char* to_string(MatrixKind kind);

/// The adversarial kinds, in the order the numerics suite sweeps them.
[[nodiscard]] const std::vector<MatrixKind>& adversarial_kinds();

/// Generate an m x n matrix of the given kind with a deterministic seed.
[[nodiscard]] Matrix generate(int m, int n, MatrixKind kind,
                              std::uint64_t seed = 42);

/// Square convenience overload.
[[nodiscard]] Matrix generate(int n, MatrixKind kind, std::uint64_t seed = 42);

}  // namespace conflux::linalg
