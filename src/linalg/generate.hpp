/// \file generate.hpp
/// Deterministic test-matrix generators. The paper's evaluation factors
/// matrices from scientific applications (DFT atom-interaction matrices,
/// HPL); for reproduction we use well-conditioned random and structured
/// generators with fixed seeds.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"

namespace conflux::linalg {

/// Kinds of generated matrices.
enum class MatrixKind {
  Uniform,        ///< i.i.d. uniform in [-1, 1): generic dense workload.
  DiagDominant,   ///< uniform + n on the diagonal: no pivot growth, stable.
  Interaction,    ///< symmetric-ish decaying off-diagonals, mimicking the
                  ///< atom-interaction matrices of DFT applications (§8).
  Laplace2D,      ///< 2D finite-difference Laplacian stencil (sparse-in-dense).
  Spd,            ///< symmetric positive definite: symmetrized uniform noise
                  ///< plus n on the diagonal (SPD by Gershgorin; square
                  ///< only). The input family for the Cholesky algorithms.
};

/// Generate an m x n matrix of the given kind with a deterministic seed.
[[nodiscard]] Matrix generate(int m, int n, MatrixKind kind,
                              std::uint64_t seed = 42);

/// Square convenience overload.
[[nodiscard]] Matrix generate(int n, MatrixKind kind, std::uint64_t seed = 42);

}  // namespace conflux::linalg
