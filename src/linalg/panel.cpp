#include "linalg/panel.hpp"

#include <algorithm>

#include "linalg/getrf.hpp"

namespace conflux::linalg {

std::vector<int> rank_rows_gepp(const PivotCandidates& cand, int v) {
  const int m = cand.count();
  const int n = cand.width();
  const int keep = std::min(v, m);
  if (keep == 0) return {};

  Matrix scratch = cand.values;
  std::vector<int> ipiv(static_cast<std::size_t>(std::min(m, n)));
  // Only the first `keep` elimination steps matter; factoring fully is
  // simpler and panels are narrow (n == v), so the cost is the same order.
  (void)getrf_unblocked(scratch.view(), ipiv);
  const std::vector<int> perm = pivots_to_permutation(ipiv, m);
  return {perm.begin(), perm.begin() + keep};
}

PivotCandidates select_best(const PivotCandidates& cand, int v) {
  const std::vector<int> chosen = rank_rows_gepp(cand, v);
  PivotCandidates out;
  out.values = Matrix(static_cast<int>(chosen.size()), cand.width());
  out.rows.reserve(chosen.size());
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    out.rows.push_back(cand.rows[static_cast<std::size_t>(chosen[i])]);
    auto src = cand.values.row(chosen[i]);
    auto dst = out.values.row(static_cast<int>(i));
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return out;
}

PivotCandidates tournament_round(const PivotCandidates& a,
                                 const PivotCandidates& b, int v) {
  CONFLUX_EXPECTS(a.count() == 0 || b.count() == 0 ||
                  a.width() == b.width());
  // Merge in GLOBAL ROW ORDER so that both butterfly partners — who see the
  // two sets in opposite roles — produce bit-identical selections even under
  // GEPP tie-breaking.
  std::vector<std::pair<int, const PivotCandidates*>> order;
  order.reserve(static_cast<std::size_t>(a.count() + b.count()));
  for (const PivotCandidates* part : {&a, &b})
    for (int i = 0; i < part->count(); ++i)
      order.emplace_back(i, part);
  std::sort(order.begin(), order.end(), [](const auto& x, const auto& y) {
    return x.second->rows[static_cast<std::size_t>(x.first)] <
           y.second->rows[static_cast<std::size_t>(y.first)];
  });

  PivotCandidates merged;
  const int width = a.count() > 0 ? a.width() : b.width();
  merged.values = Matrix(static_cast<int>(order.size()), width);
  merged.rows.reserve(order.size());
  int r = 0;
  for (const auto& [i, part] : order) {
    merged.rows.push_back(part->rows[static_cast<std::size_t>(i)]);
    auto src = part->values.row(i);
    auto dst = merged.values.row(r++);
    std::copy(src.begin(), src.end(), dst.begin());
  }
  return select_best(merged, v);
}

TournamentResult finalize_tournament(const PivotCandidates& winners) {
  const int v = winners.count();
  TournamentResult result;
  result.a00 = winners.values;
  std::vector<int> ipiv(static_cast<std::size_t>(
      std::min(winners.count(), winners.width())));
  (void)getrf_unblocked(result.a00.view(), ipiv);
  const std::vector<int> perm = pivots_to_permutation(ipiv, v);
  result.pivot_rows.reserve(static_cast<std::size_t>(v));
  for (int i = 0; i < v; ++i)
    result.pivot_rows.push_back(
        winners.rows[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])]);
  return result;
}

std::vector<TreeStep> reduction_tree_schedule(int parts) {
  CONFLUX_EXPECTS(parts >= 1);
  std::vector<TreeStep> steps;
  steps.reserve(static_cast<std::size_t>(parts > 0 ? parts - 1 : 0));
  int round = 0;
  for (int gap = 1; gap < parts; gap *= 2, ++round)
    for (int src = gap; src < parts; src += 2 * gap)
      steps.push_back({round, src, src - gap});
  return steps;
}

PivotCandidates tournament_tree(std::vector<PivotCandidates> parts, int v) {
  CONFLUX_EXPECTS(!parts.empty());
  for (PivotCandidates& p : parts) p = select_best(p, v);
  for (const TreeStep& step :
       reduction_tree_schedule(static_cast<int>(parts.size())))
    parts[static_cast<std::size_t>(step.dst)] = tournament_round(
        parts[static_cast<std::size_t>(step.dst)],
        parts[static_cast<std::size_t>(step.src)], v);
  return std::move(parts.front());
}

std::vector<double> pack_candidates(const PivotCandidates& cand) {
  std::vector<double> buf;
  const int m = cand.count();
  const int n = cand.width();
  buf.reserve(2 + static_cast<std::size_t>(m) * (1 + n));
  buf.push_back(static_cast<double>(m));
  buf.push_back(static_cast<double>(n));
  for (int id : cand.rows) buf.push_back(static_cast<double>(id));
  for (int i = 0; i < m; ++i) {
    auto row = cand.values.row(i);
    buf.insert(buf.end(), row.begin(), row.end());
  }
  return buf;
}

PivotCandidates unpack_candidates(std::span<const double> buffer) {
  CONFLUX_EXPECTS(buffer.size() >= 2);
  const int m = static_cast<int>(buffer[0]);
  const int n = static_cast<int>(buffer[1]);
  CONFLUX_EXPECTS(static_cast<std::size_t>(m) * (1 + n) + 2 == buffer.size());
  PivotCandidates cand;
  cand.rows.reserve(static_cast<std::size_t>(m));
  for (int i = 0; i < m; ++i)
    cand.rows.push_back(static_cast<int>(buffer[2 + static_cast<std::size_t>(i)]));
  cand.values = Matrix(m, n);
  const double* v = buffer.data() + 2 + m;
  for (int i = 0; i < m; ++i) {
    auto row = cand.values.row(i);
    std::copy(v, v + n, row.begin());
    v += n;
  }
  return cand;
}

}  // namespace conflux::linalg
