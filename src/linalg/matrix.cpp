#include "linalg/matrix.hpp"

#include <cmath>

namespace conflux::linalg {

Matrix Matrix::identity(int n) {
  Matrix eye(n, n);
  for (int i = 0; i < n; ++i) eye(i, i) = 1.0;
  return eye;
}

void copy(ConstMatrixView src, MatrixView dst) {
  CONFLUX_EXPECTS(src.rows() == dst.rows() && src.cols() == dst.cols());
  for (int i = 0; i < src.rows(); ++i) {
    auto s = src.row(i);
    auto d = dst.row(i);
    for (int j = 0; j < src.cols(); ++j) d[j] = s[j];
  }
}

double max_abs(ConstMatrixView a) {
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i)
    for (double x : a.row(i)) m = std::max(m, std::abs(x));
  return m;
}

double frobenius(ConstMatrixView a) {
  double s = 0.0;
  for (int i = 0; i < a.rows(); ++i)
    for (double x : a.row(i)) s += x * x;
  return std::sqrt(s);
}

double max_abs_diff(ConstMatrixView a, ConstMatrixView b) {
  CONFLUX_EXPECTS(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (int i = 0; i < a.rows(); ++i) {
    auto ra = a.row(i);
    auto rb = b.row(i);
    for (int j = 0; j < a.cols(); ++j)
      m = std::max(m, std::abs(ra[j] - rb[j]));
  }
  return m;
}

}  // namespace conflux::linalg
