/// \file matrix.hpp
/// Dense row-major matrix with value semantics plus lightweight non-owning
/// views. This is the numeric substrate under every LU implementation and
/// under the verification harness.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "support/assert.hpp"

namespace conflux::linalg {

class ConstMatrixView;

/// Non-owning mutable view of a row-major block with leading dimension `ld`.
/// Views are cheap to copy and never outlive the owning storage (Core
/// Guidelines P.8/R.4 — views are parameters, not members of long-lived
/// objects in this codebase).
class MatrixView {
 public:
  MatrixView(double* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CONFLUX_EXPECTS(rows >= 0 && cols >= 0 && ld >= cols);
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int ld() const { return ld_; }
  [[nodiscard]] double* data() const { return data_; }

  [[nodiscard]] double& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }

  /// Row `i` as a span of `cols()` elements.
  [[nodiscard]] std::span<double> row(int i) const {
    return {data_ + static_cast<std::size_t>(i) * ld_,
            static_cast<std::size_t>(cols_)};
  }

  /// Sub-block view rooted at (i0, j0) of size r x c.
  [[nodiscard]] MatrixView block(int i0, int j0, int r, int c) const {
    CONFLUX_EXPECTS(i0 >= 0 && j0 >= 0 && i0 + r <= rows_ && j0 + c <= cols_);
    return {data_ + static_cast<std::size_t>(i0) * ld_ + j0, r, c, ld_};
  }

 private:
  double* data_;
  int rows_, cols_, ld_;
};

/// Non-owning read-only view; implicitly constructible from MatrixView.
class ConstMatrixView {
 public:
  ConstMatrixView(const double* data, int rows, int cols, int ld)
      : data_(data), rows_(rows), cols_(cols), ld_(ld) {
    CONFLUX_EXPECTS(rows >= 0 && cols >= 0 && ld >= cols);
  }
  ConstMatrixView(MatrixView v)  // NOLINT(google-explicit-constructor)
      : ConstMatrixView(v.data(), v.rows(), v.cols(), v.ld()) {}

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] int ld() const { return ld_; }
  [[nodiscard]] const double* data() const { return data_; }

  [[nodiscard]] const double& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * ld_ + j];
  }

  [[nodiscard]] std::span<const double> row(int i) const {
    return {data_ + static_cast<std::size_t>(i) * ld_,
            static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] ConstMatrixView block(int i0, int j0, int r, int c) const {
    CONFLUX_EXPECTS(i0 >= 0 && j0 >= 0 && i0 + r <= rows_ && j0 + c <= cols_);
    return {data_ + static_cast<std::size_t>(i0) * ld_ + j0, r, c, ld_};
  }

 private:
  const double* data_;
  int rows_, cols_, ld_;
};

/// Owning dense row-major matrix.
class Matrix {
 public:
  Matrix() = default;

  /// Zero-initialized rows x cols matrix.
  Matrix(int rows, int cols)
      : rows_(rows),
        cols_(cols),
        data_(static_cast<std::size_t>(rows) * cols, 0.0) {
    CONFLUX_EXPECTS(rows >= 0 && cols >= 0);
  }

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& operator()(int i, int j) {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }
  [[nodiscard]] const double& operator()(int i, int j) const {
    return data_[static_cast<std::size_t>(i) * cols_ + j];
  }

  [[nodiscard]] std::span<double> row(int i) {
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }
  [[nodiscard]] std::span<const double> row(int i) const {
    return {data_.data() + static_cast<std::size_t>(i) * cols_,
            static_cast<std::size_t>(cols_)};
  }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

  /// Whole-matrix mutable view.
  [[nodiscard]] MatrixView view() {
    return {data_.data(), rows_, cols_, cols_};
  }
  /// Whole-matrix read-only view.
  [[nodiscard]] ConstMatrixView view() const {
    return {data_.data(), rows_, cols_, cols_};
  }
  /// Sub-block views.
  [[nodiscard]] MatrixView block(int i0, int j0, int r, int c) {
    return view().block(i0, j0, r, c);
  }
  [[nodiscard]] ConstMatrixView block(int i0, int j0, int r, int c) const {
    return view().block(i0, j0, r, c);
  }

  /// The n x n identity.
  [[nodiscard]] static Matrix identity(int n);

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<double> data_;
};

/// Copy `src` into `dst` (shapes must match).
void copy(ConstMatrixView src, MatrixView dst);

/// max_ij |A(i,j)|.
[[nodiscard]] double max_abs(ConstMatrixView a);

/// Frobenius norm.
[[nodiscard]] double frobenius(ConstMatrixView a);

/// max_ij |A(i,j) - B(i,j)| (shapes must match).
[[nodiscard]] double max_abs_diff(ConstMatrixView a, ConstMatrixView b);

}  // namespace conflux::linalg
