#include "linalg/potrf.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/blas.hpp"
#include "support/assert.hpp"

namespace conflux::linalg {

FactorStatus potrf_unblocked(MatrixView a) {
  const int n = a.rows();
  CONFLUX_EXPECTS(a.cols() == n);
  FactorStatus status = FactorStatus::Ok;
  for (int j = 0; j < n; ++j) {
    double d = a(j, j);
    for (int k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (!(d > 0.0) || !std::isfinite(d)) {
      status = FactorStatus::NotSpd;
      d = 1.0;  // keep the remaining columns finite
    }
    a(j, j) = std::sqrt(d);
    const double inv = 1.0 / a(j, j);
    for (int i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (int k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s * inv;
    }
  }
  return status;
}

void trsm_right_lower_transposed(ConstMatrixView l00, MatrixView b) {
  const int kb = l00.rows();
  CONFLUX_EXPECTS(l00.cols() == kb && b.cols() == kb);
  Matrix u00t(kb, kb);
  for (int i = 0; i < kb; ++i)
    for (int j = i; j < kb; ++j) u00t(i, j) = l00(j, i);
  trsm_right(Triangle::Upper, Diag::NonUnit, u00t.view(), b);
}

FactorStatus potrf_blocked(MatrixView a, int nb) {
  const int n = a.rows();
  CONFLUX_EXPECTS(a.cols() == n && nb >= 1);
  FactorStatus status = FactorStatus::Ok;

  for (int k0 = 0; k0 < n; k0 += nb) {
    const int kb = std::min(nb, n - k0);
    MatrixView a00 = a.block(k0, k0, kb, kb);
    if (potrf_unblocked(a00) != FactorStatus::Ok)
      status = FactorStatus::NotSpd;

    const int m = n - k0 - kb;
    if (m == 0) continue;

    MatrixView a10 = a.block(k0 + kb, k0, m, kb);
    trsm_right_lower_transposed(a00, a10);

    // Trailing update A11 -= L10 * L10^T, one block column at a time so
    // only the lower triangle (block granularity) is touched.
    Matrix l10t(kb, m);
    for (int i = 0; i < m; ++i)
      for (int k = 0; k < kb; ++k) l10t(k, i) = a10(i, k);
    for (int j0 = k0 + kb; j0 < n; j0 += nb) {
      const int jb = std::min(nb, n - j0);
      const int mrows = n - j0;
      schur_update(a.block(j0, j0, mrows, jb),
                   a.block(j0, k0, mrows, kb),
                   l10t.block(0, j0 - k0 - kb, kb, jb));
    }
  }
  return status;
}

Matrix extract_lower(ConstMatrixView llt) {
  const int n = llt.rows();
  CONFLUX_EXPECTS(llt.cols() == n);
  Matrix l(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= i; ++j) l(i, j) = llt(i, j);
  return l;
}

double cholesky_residual(const Matrix& original, ConstMatrixView factored) {
  const int n = original.rows();
  CONFLUX_EXPECTS(original.cols() == n && factored.rows() == n);

  const Matrix l = extract_lower(factored);
  Matrix lt(n, n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= i; ++j) lt(j, i) = l(i, j);
  Matrix prod(n, n);
  gemm(1.0, l.view(), lt.view(), 0.0, prod.view());

  double err = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j <= i; ++j)
      err = std::max(err, std::abs(prod(i, j) - original(i, j)));
  const double scale = std::max(1.0, max_abs(original.view())) * n;
  return err / scale;
}

}  // namespace conflux::linalg
