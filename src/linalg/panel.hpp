/// \file panel.hpp
/// Tournament pivoting (TSLU) building blocks, §7.3 of the paper.
///
/// Tournament pivoting selects v pivot rows from a tall panel in a playoff of
/// local selections: each participant ranks its rows by running Gaussian
/// elimination with partial pivoting (GEPP) on a scratch copy and keeping the
/// first v rows the permutation chose; pairs of participants then merge their
/// candidate sets and reselect, log2(#participants) times. The winners'
/// ORIGINAL values travel with their global row indices, so the final block
/// can be factored exactly. Grigori, Demmel & Xiang [29] show the scheme is
/// as stable as partial pivoting in practice.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace conflux::linalg {

/// A candidate set: global row ids paired with the rows' original values.
/// `values` is rows.size() x v.
struct PivotCandidates {
  std::vector<int> rows;
  Matrix values;

  [[nodiscard]] int count() const { return static_cast<int>(rows.size()); }
  [[nodiscard]] int width() const { return values.cols(); }
};

/// Rank the candidate rows by GEPP on a scratch copy; returns the positions
/// (indices into `cand.rows`) of the first min(v, count) rows in the order
/// the elimination picked them.
[[nodiscard]] std::vector<int> rank_rows_gepp(const PivotCandidates& cand,
                                              int v);

/// Keep the best min(v, count) rows of a candidate set (one local selection).
[[nodiscard]] PivotCandidates select_best(const PivotCandidates& cand, int v);

/// One tournament round: merge two candidate sets and reselect the best v.
[[nodiscard]] PivotCandidates tournament_round(const PivotCandidates& a,
                                               const PivotCandidates& b,
                                               int v);

/// Final tournament outcome.
struct TournamentResult {
  /// Global ids of the winning pivot rows, in the order GEPP eliminates them
  /// (this is the within-block pivot order).
  std::vector<int> pivot_rows;
  /// The factored v x v pivot block: unit-lower L00 below the diagonal, U00
  /// on/above it, rows already in `pivot_rows` order.
  Matrix a00;
};

/// Factor the winner block: reorders winners by their GEPP pivot order and
/// returns the packed LU factors.
[[nodiscard]] TournamentResult finalize_tournament(
    const PivotCandidates& winners);

/// One edge of the binary reduction tree CALU runs over the tournament
/// participants (arXiv 0808.2664): in round `round`, participant `src`
/// ships its candidate set to `dst`, which merges and reselects.
struct TreeStep {
  int round = 0;
  int src = 0;
  int dst = 0;
};

/// CALU's reduction-tree schedule over `parts` participants: in round r the
/// odd multiples of 2^r send to the even multiple 2^r below, so candidates
/// funnel to participant 0 in ceil(log2(parts)) rounds with parts - 1 total
/// messages (the butterfly's all-to-all costs ~parts * log2(parts)).
/// Non-powers-of-two fold in naturally. Every participant > 0 appears as a
/// sender exactly once; the steps are in replayable global order.
[[nodiscard]] std::vector<TreeStep> reduction_tree_schedule(int parts);

/// Host-side reference for the distributed reduction tree: locally select
/// each participant's best v rows, then merge along reduction_tree_schedule.
/// Returns the winners held by participant 0 (the tree root) — the oracle
/// the CALU backend's distributed path must reproduce.
[[nodiscard]] PivotCandidates tournament_tree(
    std::vector<PivotCandidates> parts, int v);

/// Serialize candidates for transport: [count, width, rows..., values...]
/// packed into doubles (row ids are exactly representable).
[[nodiscard]] std::vector<double> pack_candidates(const PivotCandidates& cand);
/// Inverse of pack_candidates.
[[nodiscard]] PivotCandidates unpack_candidates(
    std::span<const double> buffer);

}  // namespace conflux::linalg
