#include "linalg/generate.hpp"

#include <cmath>
#include <cstdlib>

#include "support/random.hpp"

namespace conflux::linalg {

Matrix generate(int m, int n, MatrixKind kind, std::uint64_t seed) {
  Matrix a(m, n);
  Rng rng(seed);
  switch (kind) {
    case MatrixKind::Uniform:
      for (int i = 0; i < m; ++i)
        for (double& x : a.row(i)) x = rng.uniform(-1.0, 1.0);
      break;
    case MatrixKind::DiagDominant:
      for (int i = 0; i < m; ++i)
        for (double& x : a.row(i)) x = rng.uniform(-1.0, 1.0);
      for (int i = 0; i < std::min(m, n); ++i) a(i, i) += n;
      break;
    case MatrixKind::Interaction:
      // Decaying interactions: A(i,j) = cos(h(i,j)) / (1 + |i-j|) with a
      // strong diagonal, a dense analogue of screened-Coulomb interaction
      // matrices in electronic-structure codes.
      for (int i = 0; i < m; ++i)
        for (int j = 0; j < n; ++j) {
          const double noise =
              static_cast<double>(splitmix64(seed ^ (static_cast<std::uint64_t>(i) << 32 | static_cast<std::uint32_t>(j))) >> 11) *
              0x1.0p-53;
          a(i, j) = std::cos(6.28318530717958647 * noise) /
                    (1.0 + std::abs(i - j));
        }
      for (int i = 0; i < std::min(m, n); ++i) a(i, i) += 2.0;
      break;
    case MatrixKind::Spd:
      // A = (B + B^T)/2 + n*I for uniform B: symmetric, and positive
      // definite by Gershgorin (diagonal >= n - 1 > sum of |off-diagonal|).
      CONFLUX_EXPECTS_MSG(m == n, "SPD matrices must be square");
      for (int i = 0; i < n; ++i)
        for (double& x : a.row(i)) x = rng.uniform(-1.0, 1.0);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < i; ++j) {
          const double s = 0.5 * (a(i, j) + a(j, i));
          a(i, j) = a(j, i) = s;
        }
        a(i, i) += n;
      }
      break;
    case MatrixKind::Laplace2D: {
      // n must be a perfect square for a true stencil; otherwise fall back to
      // a 1D Laplacian. Entries: 4 on diagonal, -1 for grid neighbours.
      const int side = static_cast<int>(std::lround(std::sqrt(n)));
      const bool grid = (side * side == n) && (m == n);
      for (int i = 0; i < std::min(m, n); ++i) a(i, i) = 4.0;
      if (grid) {
        for (int i = 0; i < n; ++i) {
          const int r = i / side, c = i % side;
          if (c + 1 < side) a(i, i + 1) = a(i + 1, i) = -1.0;
          if (r + 1 < side) a(i, i + side) = a(i + side, i) = -1.0;
        }
      } else {
        for (int i = 0; i + 1 < std::min(m, n); ++i)
          a(i, i + 1) = a(i + 1, i) = -1.0;
      }
      break;
    }
  }
  return a;
}

Matrix generate(int n, MatrixKind kind, std::uint64_t seed) {
  return generate(n, n, kind, seed);
}

}  // namespace conflux::linalg
