#include "linalg/generate.hpp"

#include <cmath>
#include <cstdlib>

#include "support/random.hpp"

namespace conflux::linalg {

Matrix generate(int m, int n, MatrixKind kind, std::uint64_t seed) {
  Matrix a(m, n);
  Rng rng(seed);
  switch (kind) {
    case MatrixKind::Uniform:
      for (int i = 0; i < m; ++i)
        for (double& x : a.row(i)) x = rng.uniform(-1.0, 1.0);
      break;
    case MatrixKind::DiagDominant:
      for (int i = 0; i < m; ++i)
        for (double& x : a.row(i)) x = rng.uniform(-1.0, 1.0);
      for (int i = 0; i < std::min(m, n); ++i) a(i, i) += n;
      break;
    case MatrixKind::Interaction:
      // Decaying interactions: A(i,j) = cos(h(i,j)) / (1 + |i-j|) with a
      // strong diagonal, a dense analogue of screened-Coulomb interaction
      // matrices in electronic-structure codes.
      for (int i = 0; i < m; ++i)
        for (int j = 0; j < n; ++j) {
          const double noise =
              static_cast<double>(splitmix64(seed ^ (static_cast<std::uint64_t>(i) << 32 | static_cast<std::uint32_t>(j))) >> 11) *
              0x1.0p-53;
          a(i, j) = std::cos(6.28318530717958647 * noise) /
                    (1.0 + std::abs(i - j));
        }
      for (int i = 0; i < std::min(m, n); ++i) a(i, i) += 2.0;
      break;
    case MatrixKind::Spd:
      // A = (B + B^T)/2 + n*I for uniform B: symmetric, and positive
      // definite by Gershgorin (diagonal >= n - 1 > sum of |off-diagonal|).
      CONFLUX_EXPECTS_MSG(m == n, "SPD matrices must be square");
      for (int i = 0; i < n; ++i)
        for (double& x : a.row(i)) x = rng.uniform(-1.0, 1.0);
      for (int i = 0; i < n; ++i) {
        for (int j = 0; j < i; ++j) {
          const double s = 0.5 * (a(i, j) + a(j, i));
          a(i, j) = a(j, i) = s;
        }
        a(i, i) += n;
      }
      break;
    case MatrixKind::Wilkinson:
      // Deterministic by construction (the seed is unused): W(i,i) = 1,
      // W(i,j) = -1 below the diagonal, W(:,n-1) = 1. Under partial
      // pivoting no row ever beats the diagonal, and the last column
      // doubles each step: |U(n-1,n-1)| = 2^(n-1).
      for (int i = 0; i < m; ++i)
        for (int j = 0; j < n; ++j)
          a(i, j) = j == n - 1 ? 1.0 : (i == j ? 1.0 : (i > j ? -1.0 : 0.0));
      break;
    case MatrixKind::Graded:
      // Uniform noise under a two-sided graded scaling: rows decay by
      // 2^-36 top to bottom while columns grow by 2^12 left to right, so
      // magnitudes span ~2^48 and naive (unpivoted or badly tie-broken)
      // eliminations lose the small rows entirely.
      for (int i = 0; i < m; ++i) {
        const double row_scale =
            std::exp2(-36.0 * i / std::max(1, m - 1));
        for (int j = 0; j < n; ++j)
          a(i, j) = rng.uniform(-1.0, 1.0) * row_scale *
                    std::exp2(12.0 * j / std::max(1, n - 1));
      }
      break;
    case MatrixKind::NearSingular:
      // Well-conditioned uniform noise, then a near rank-deficiency: the
      // last row becomes the average of the first two rows plus 1e-8
      // noise. Backward error must stay tiny; the forward error (and the
      // final pivot) legitimately degrade to ~1e-8.
      CONFLUX_EXPECTS_MSG(m >= 3, "NearSingular needs at least 3 rows");
      for (int i = 0; i < m; ++i)
        for (double& x : a.row(i)) x = rng.uniform(-1.0, 1.0);
      for (int j = 0; j < n; ++j)
        a(m - 1, j) = 0.5 * (a(0, j) + a(1, j)) +
                      1e-8 * rng.uniform(-1.0, 1.0);
      break;
    case MatrixKind::RandSvd: {
      // randsvd: A = H_1 H_2 D G_1 G_2 with D = diag(sigma), sigma
      // geometrically spaced from 1 down to 1/cond, and H/G random
      // Householder reflections (exactly orthogonal), so the singular
      // values — and the condition number 1e10 — are prescribed exactly.
      CONFLUX_EXPECTS_MSG(m == n, "RandSvd matrices must be square");
      const double cond = 1e10;
      for (int i = 0; i < n; ++i)
        a(i, i) = std::pow(cond, -static_cast<double>(i) /
                                     std::max(1, n - 1));
      auto reflect = [&](bool left) {
        std::vector<double> w(static_cast<std::size_t>(n));
        double norm2 = 0.0;
        for (double& x : w) {
          x = rng.uniform(-1.0, 1.0);
          norm2 += x * x;
        }
        const double inv = 1.0 / std::sqrt(norm2);
        for (double& x : w) x *= inv;
        // A := (I - 2 w w^T) A  or  A := A (I - 2 w w^T).
        for (int k = 0; k < n; ++k) {
          double dot = 0.0;
          for (int i = 0; i < n; ++i)
            dot += w[static_cast<std::size_t>(i)] *
                   (left ? a(i, k) : a(k, i));
          for (int i = 0; i < n; ++i) {
            double& x = left ? a(i, k) : a(k, i);
            x -= 2.0 * w[static_cast<std::size_t>(i)] * dot;
          }
        }
      };
      reflect(true);
      reflect(true);
      reflect(false);
      reflect(false);
      break;
    }
    case MatrixKind::Laplace2D: {
      // n must be a perfect square for a true stencil; otherwise fall back to
      // a 1D Laplacian. Entries: 4 on diagonal, -1 for grid neighbours.
      const int side = static_cast<int>(std::lround(std::sqrt(n)));
      const bool grid = (side * side == n) && (m == n);
      for (int i = 0; i < std::min(m, n); ++i) a(i, i) = 4.0;
      if (grid) {
        for (int i = 0; i < n; ++i) {
          const int r = i / side, c = i % side;
          if (c + 1 < side) a(i, i + 1) = a(i + 1, i) = -1.0;
          if (r + 1 < side) a(i, i + side) = a(i + side, i) = -1.0;
        }
      } else {
        for (int i = 0; i + 1 < std::min(m, n); ++i)
          a(i, i + 1) = a(i + 1, i) = -1.0;
      }
      break;
    }
  }
  return a;
}

Matrix generate(int n, MatrixKind kind, std::uint64_t seed) {
  return generate(n, n, kind, seed);
}

const char* to_string(MatrixKind kind) {
  switch (kind) {
    case MatrixKind::Uniform: return "Uniform";
    case MatrixKind::DiagDominant: return "DiagDominant";
    case MatrixKind::Interaction: return "Interaction";
    case MatrixKind::Laplace2D: return "Laplace2D";
    case MatrixKind::Spd: return "Spd";
    case MatrixKind::Wilkinson: return "Wilkinson";
    case MatrixKind::Graded: return "Graded";
    case MatrixKind::NearSingular: return "NearSingular";
    case MatrixKind::RandSvd: return "RandSvd";
  }
  return "?";
}

const std::vector<MatrixKind>& adversarial_kinds() {
  static const std::vector<MatrixKind> kKinds = {
      MatrixKind::Wilkinson, MatrixKind::Graded, MatrixKind::NearSingular,
      MatrixKind::RandSvd};
  return kKinds;
}

}  // namespace conflux::linalg
