/// \file potrf.hpp
/// Sequential Cholesky factorization A = L * L^T of symmetric positive
/// definite matrices (unblocked and blocked, lower-triangular convention)
/// plus the residual check used to verify the distributed Cholesky
/// implementations (COnfCHOX and the ScaLAPACK-style 2D baseline of the
/// journal extension, arXiv:2108.09337).
///
/// Only the lower triangle of the input is ever read or written — the
/// strict upper triangle is ignored on input and left untouched on output,
/// which is what lets the distributed algorithms carry garbage partial
/// sums above the diagonal without affecting correctness.
#pragma once

#include "linalg/getrf.hpp"  // FactorStatus
#include "linalg/matrix.hpp"

namespace conflux::linalg {

/// In-place unblocked Cholesky of the n x n view `a` (lower convention):
/// on return the lower triangle (diagonal included) holds L with
/// L * L^T = A. Returns NotSpd when a non-positive (or non-finite) pivot
/// shows the matrix is not positive definite; the factor contents are then
/// unspecified.
FactorStatus potrf_unblocked(MatrixView a);

/// Blocked right-looking Cholesky with panel width `nb`: potrf on the
/// diagonal block, a triangular solve for the panel below it, and a
/// symmetric rank-nb Schur update of the trailing lower triangle. The bulk
/// flops run through the TRSM/GEMM kernels of linalg/blas.hpp (and thus
/// through the optimized packed kernels when those are active). Semantics
/// identical to potrf_unblocked.
FactorStatus potrf_blocked(MatrixView a, int nb);

/// Solve X * L00^T = B in place (X overwrites B) for a lower-triangular
/// L00 — the panel solve L10 := A10 * L00^{-T} every Cholesky variant
/// (sequential, 2D, 2.5D) performs. Materializes L00^T once and defers to
/// trsm_right, so the bulk flops take the optimized path when active.
void trsm_right_lower_transposed(ConstMatrixView l00, MatrixView b);

/// Extract the lower-triangular factor (diagonal included, zeros above)
/// from a factored view.
[[nodiscard]] Matrix extract_lower(ConstMatrixView llt);

/// Scaled residual max_{i>=j} |(L L^T - A)(i,j)| / (n * max|A|), with L
/// read from the lower triangle of `factored`. Only the lower triangle is
/// compared: the upper one is A's by symmetry and may hold junk in
/// `factored`. Small (~1e-15) for a healthy factorization.
[[nodiscard]] double cholesky_residual(const Matrix& original,
                                       ConstMatrixView factored);

}  // namespace conflux::linalg
