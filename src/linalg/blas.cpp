#include "linalg/blas.hpp"

#include <algorithm>
#include <atomic>
#include <iostream>
#include <string>
#include <vector>

#include "support/env.hpp"
#include "support/thread_pool.hpp"

namespace conflux::linalg {

// ---------------------------------------------------------------------------
// Implementation switch.
// ---------------------------------------------------------------------------

namespace {

BlasImpl initial_impl() {
  const std::string value = env_string("CONFLUX_BLAS", "optimized");
  if (value == "reference") return BlasImpl::Reference;
  if (value != "optimized")
    std::cerr << "conflux: unknown CONFLUX_BLAS value '" << value
              << "' (expected 'reference' or 'optimized'); using optimized\n";
  return BlasImpl::Optimized;
}

std::atomic<BlasImpl>& impl_slot() {
  static std::atomic<BlasImpl> impl{initial_impl()};
  return impl;
}

}  // namespace

BlasImpl blas_impl() { return impl_slot().load(std::memory_order_relaxed); }

void set_blas_impl(BlasImpl impl) {
  impl_slot().store(impl, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Reference kernels (the original clarity-first loops).
// ---------------------------------------------------------------------------

namespace {
/// Cache-blocking factor for the k dimension of the reference GEMM.
constexpr int kRefBlock = 64;
}  // namespace

void gemm_reference(double alpha, ConstMatrixView a, ConstMatrixView b,
                    double beta, MatrixView c) {
  const int m = c.rows(), n = c.cols(), k = a.cols();
  CONFLUX_EXPECTS(a.rows() == m && b.rows() == k && b.cols() == n);

  if (beta != 1.0) {
    for (int i = 0; i < m; ++i) {
      auto ci = c.row(i);
      if (beta == 0.0)
        std::fill(ci.begin(), ci.end(), 0.0);
      else
        for (double& x : ci) x *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  // i-k-j loop with k blocking: B rows are walked contiguously and the inner
  // j loop vectorizes.
  for (int kk = 0; kk < k; kk += kRefBlock) {
    const int kend = std::min(k, kk + kRefBlock);
    for (int i = 0; i < m; ++i) {
      auto ci = c.row(i);
      for (int p = kk; p < kend; ++p) {
        const double aip = alpha * a(i, p);
        if (aip == 0.0) continue;
        auto bp = b.row(p);
        for (int j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

void trsm_left_reference(Triangle tri, Diag diag, ConstMatrixView a,
                         MatrixView b) {
  const int m = b.rows(), n = b.cols();
  CONFLUX_EXPECTS(a.rows() == m && a.cols() == m);
  if (tri == Triangle::Lower) {
    // Forward substitution: X(i,:) = (B(i,:) - sum_{p<i} A(i,p) X(p,:)) / A(i,i)
    for (int i = 0; i < m; ++i) {
      auto bi = b.row(i);
      for (int p = 0; p < i; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;
        auto bp = b.row(p);
        for (int j = 0; j < n; ++j) bi[j] -= aip * bp[j];
      }
      if (diag == Diag::NonUnit) {
        const double inv = 1.0 / a(i, i);
        for (int j = 0; j < n; ++j) bi[j] *= inv;
      }
    }
  } else {
    // Backward substitution.
    for (int i = m - 1; i >= 0; --i) {
      auto bi = b.row(i);
      for (int p = i + 1; p < m; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;
        auto bp = b.row(p);
        for (int j = 0; j < n; ++j) bi[j] -= aip * bp[j];
      }
      if (diag == Diag::NonUnit) {
        const double inv = 1.0 / a(i, i);
        for (int j = 0; j < n; ++j) bi[j] *= inv;
      }
    }
  }
}

void trsm_right_reference(Triangle tri, Diag diag, ConstMatrixView a,
                          MatrixView b) {
  const int m = b.rows(), n = b.cols();
  CONFLUX_EXPECTS(a.rows() == n && a.cols() == n);
  if (tri == Triangle::Upper) {
    // X * U = B: column-by-column forward sweep, row-major friendly.
    for (int i = 0; i < m; ++i) {
      auto bi = b.row(i);
      for (int j = 0; j < n; ++j) {
        double x = bi[j];
        for (int p = 0; p < j; ++p) x -= bi[p] * a(p, j);
        bi[j] = (diag == Diag::NonUnit) ? x / a(j, j) : x;
      }
    }
  } else {
    // X * L = B: backward sweep over columns.
    for (int i = 0; i < m; ++i) {
      auto bi = b.row(i);
      for (int j = n - 1; j >= 0; --j) {
        double x = bi[j];
        for (int p = j + 1; p < n; ++p) x -= bi[p] * a(p, j);
        bi[j] = (diag == Diag::NonUnit) ? x / a(j, j) : x;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Optimized GEMM: BLIS-style blocking. B is packed once per k-panel into
// NR-wide micro-panels; each thread packs its own MC x KC block of A into
// MR-wide micro-panels and drives an MR x NR register-tiled microkernel.
// Row blocks of C are independent, so the MC loop runs on the thread pool.
// ---------------------------------------------------------------------------

namespace {

// Tile sizes tuned empirically on the 1024^3 A/B benchmark (bench_kernels):
// GCC turns the 4x8 accumulator tile into clean FMA code, and the deep
// k-panel amortizes C write-back traffic. Larger MR/NR shapes spill.
constexpr int kMR = 4;     ///< microkernel rows (C register tile height)
constexpr int kNR = 8;     ///< microkernel cols (one 512-bit vector)
constexpr int kMC = 128;   ///< rows of A packed per thread block
constexpr int kKC = 1024;  ///< k-panel depth

/// Problems below this flop count skip packing entirely; the reference loop
/// is faster once the whole working set fits in L1/L2.
constexpr long long kSmallGemmFlops = 2LL * 48 * 48 * 48;

/// Pack a mc x kc block of A (row-major view) into MR-tall micro-panels:
/// panel i holds columns p as contiguous groups pa[p*MR + ir], zero-padded
/// past mc.
void pack_a(ConstMatrixView a, int i0, int k0, int mc, int kc, double* pa) {
  for (int ip = 0; ip < mc; ip += kMR) {
    const int mr = std::min(kMR, mc - ip);
    for (int p = 0; p < kc; ++p) {
      for (int ir = 0; ir < mr; ++ir) pa[p * kMR + ir] = a(i0 + ip + ir, k0 + p);
      for (int ir = mr; ir < kMR; ++ir) pa[p * kMR + ir] = 0.0;
    }
    pa += static_cast<std::ptrdiff_t>(kc) * kMR;
  }
}

/// Pack a kc x n panel of B into NR-wide micro-panels, zero-padded past n.
void pack_b(ConstMatrixView b, int k0, int kc, int n, double* pb) {
  for (int jp = 0; jp < n; jp += kNR) {
    const int nr = std::min(kNR, n - jp);
    for (int p = 0; p < kc; ++p) {
      const double* bp = &b(k0 + p, jp);
      for (int jr = 0; jr < nr; ++jr) pb[p * kNR + jr] = bp[jr];
      for (int jr = nr; jr < kNR; ++jr) pb[p * kNR + jr] = 0.0;
    }
    pb += static_cast<std::ptrdiff_t>(kc) * kNR;
  }
}

/// acc[ir][jr] += sum_p pa[p*MR+ir] * pb[p*NR+jr]. With fixed MR/NR the
/// inner loops fully unroll and vectorize into FMA register tiles.
void micro_kernel(int kc, const double* pa, const double* pb,
                  double acc[kMR][kNR]) {
  for (int p = 0; p < kc; ++p) {
    const double* ap = pa + static_cast<std::ptrdiff_t>(p) * kMR;
    const double* bp = pb + static_cast<std::ptrdiff_t>(p) * kNR;
    for (int ir = 0; ir < kMR; ++ir)
      for (int jr = 0; jr < kNR; ++jr) acc[ir][jr] += ap[ir] * bp[jr];
  }
}

}  // namespace

void gemm_optimized(double alpha, ConstMatrixView a, ConstMatrixView b,
                    double beta, MatrixView c) {
  const int m = c.rows(), n = c.cols(), k = a.cols();
  CONFLUX_EXPECTS(a.rows() == m && b.rows() == k && b.cols() == n);

  const long long flops = 2LL * m * n * k;
  if (flops <= kSmallGemmFlops) {
    gemm_reference(alpha, a, b, beta, c);
    return;
  }

  if (beta != 1.0) {
    support::parallel_for(0, m, [&](int i) {
      auto ci = c.row(i);
      if (beta == 0.0)
        std::fill(ci.begin(), ci.end(), 0.0);
      else
        for (double& x : ci) x *= beta;
    });
  }
  if (alpha == 0.0 || k == 0) return;

  const int n_panels = (n + kNR - 1) / kNR;
  const int max_kc = std::min(kKC, k);
  std::vector<double> packed_b(static_cast<std::size_t>(n_panels) * max_kc *
                               kNR);

  for (int k0 = 0; k0 < k; k0 += kKC) {
    const int kc = std::min(kKC, k - k0);
    pack_b(b, k0, kc, n, packed_b.data());

    const int i_blocks = (m + kMC - 1) / kMC;
    support::parallel_for(0, i_blocks, [&](int ib) {
      const int i0 = ib * kMC;
      const int mc = std::min(kMC, m - i0);
      // Per-call pack buffer; the block is at most MC x KC doubles = 1 MiB.
      std::vector<double> packed_a(
          static_cast<std::size_t>((mc + kMR - 1) / kMR) * kc * kMR);
      pack_a(a, i0, k0, mc, kc, packed_a.data());

      for (int jp = 0; jp < n; jp += kNR) {
        const int nr = std::min(kNR, n - jp);
        const double* pb =
            packed_b.data() + static_cast<std::ptrdiff_t>(jp / kNR) * kc * kNR;
        for (int ip = 0; ip < mc; ip += kMR) {
          const int mr = std::min(kMR, mc - ip);
          const double* pa =
              packed_a.data() + static_cast<std::ptrdiff_t>(ip / kMR) * kc * kMR;
          double acc[kMR][kNR] = {};
          micro_kernel(kc, pa, pb, acc);
          for (int ir = 0; ir < mr; ++ir) {
            double* ci = &c(i0 + ip + ir, jp);
            for (int jr = 0; jr < nr; ++jr) ci[jr] += alpha * acc[ir][jr];
          }
        }
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Optimized TRSM: blocked so that all O(m n b) update flops flow through the
// optimized GEMM; only the small diagonal-block solves run the reference
// substitution loops.
// ---------------------------------------------------------------------------

namespace {

constexpr int kTrsmBlock = 64;  ///< diagonal block size

/// TRSM problems below this size gain nothing from blocking.
bool trsm_is_small(int tri_dim, int other_dim) {
  return static_cast<long long>(tri_dim) * tri_dim * other_dim <=
         64LL * 64 * 64;
}

}  // namespace

void trsm_left_optimized(Triangle tri, Diag diag, ConstMatrixView a,
                         MatrixView b) {
  const int m = b.rows(), n = b.cols();
  CONFLUX_EXPECTS(a.rows() == m && a.cols() == m);
  if (trsm_is_small(m, n)) {
    trsm_left_reference(tri, diag, a, b);
    return;
  }
  if (tri == Triangle::Lower) {
    // Forward: solve the diagonal block, then push it into the trailing rows
    // with a GEMM update.
    for (int d0 = 0; d0 < m; d0 += kTrsmBlock) {
      const int d = std::min(kTrsmBlock, m - d0);
      trsm_left_reference(tri, diag, a.block(d0, d0, d, d), b.block(d0, 0, d, n));
      const int rest = m - d0 - d;
      if (rest > 0)
        gemm_optimized(-1.0, a.block(d0 + d, d0, rest, d), b.block(d0, 0, d, n),
                       1.0, b.block(d0 + d, 0, rest, n));
    }
  } else {
    // Backward: last block first, updates flow upward.
    for (int d0 = ((m - 1) / kTrsmBlock) * kTrsmBlock; d0 >= 0;
         d0 -= kTrsmBlock) {
      const int d = std::min(kTrsmBlock, m - d0);
      trsm_left_reference(tri, diag, a.block(d0, d0, d, d), b.block(d0, 0, d, n));
      if (d0 > 0)
        gemm_optimized(-1.0, a.block(0, d0, d0, d), b.block(d0, 0, d, n), 1.0,
                       b.block(0, 0, d0, n));
    }
  }
}

void trsm_right_optimized(Triangle tri, Diag diag, ConstMatrixView a,
                          MatrixView b) {
  const int m = b.rows(), n = b.cols();
  CONFLUX_EXPECTS(a.rows() == n && a.cols() == n);
  if (trsm_is_small(n, m)) {
    trsm_right_reference(tri, diag, a, b);
    return;
  }
  if (tri == Triangle::Upper) {
    // Forward over column blocks: X_d := B_d U_dd^{-1}, then
    // B_{>d} -= X_d U_{d,>d}.
    for (int d0 = 0; d0 < n; d0 += kTrsmBlock) {
      const int d = std::min(kTrsmBlock, n - d0);
      trsm_right_reference(tri, diag, a.block(d0, d0, d, d),
                           b.block(0, d0, m, d));
      const int rest = n - d0 - d;
      if (rest > 0)
        gemm_optimized(-1.0, b.block(0, d0, m, d), a.block(d0, d0 + d, d, rest),
                       1.0, b.block(0, d0 + d, m, rest));
    }
  } else {
    // Backward over column blocks: X_d := B_d L_dd^{-1}, then
    // B_{<d} -= X_d L_{d,<d}.
    for (int d0 = ((n - 1) / kTrsmBlock) * kTrsmBlock; d0 >= 0;
         d0 -= kTrsmBlock) {
      const int d = std::min(kTrsmBlock, n - d0);
      trsm_right_reference(tri, diag, a.block(d0, d0, d, d),
                           b.block(0, d0, m, d));
      if (d0 > 0)
        gemm_optimized(-1.0, b.block(0, d0, m, d), a.block(d0, 0, d, d0), 1.0,
                       b.block(0, 0, m, d0));
    }
  }
}

// ---------------------------------------------------------------------------
// Dispatching entry points.
// ---------------------------------------------------------------------------

void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c) {
  if (blas_impl() == BlasImpl::Optimized)
    gemm_optimized(alpha, a, b, beta, c);
  else
    gemm_reference(alpha, a, b, beta, c);
}

void schur_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  gemm(-1.0, a, b, 1.0, c);
}

void trsm_left(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b) {
  if (blas_impl() == BlasImpl::Optimized)
    trsm_left_optimized(tri, diag, a, b);
  else
    trsm_left_reference(tri, diag, a, b);
}

void trsm_right(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b) {
  if (blas_impl() == BlasImpl::Optimized)
    trsm_right_optimized(tri, diag, a, b);
  else
    trsm_right_reference(tri, diag, a, b);
}

}  // namespace conflux::linalg
