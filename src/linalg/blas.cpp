#include "linalg/blas.hpp"

#include <algorithm>

namespace conflux::linalg {

namespace {
/// Cache-blocking factor for the k dimension of GEMM. 64 doubles * 3 blocks
/// comfortably fits L1 on any modern core.
constexpr int kBlock = 64;
}  // namespace

void gemm(double alpha, ConstMatrixView a, ConstMatrixView b, double beta,
          MatrixView c) {
  const int m = c.rows(), n = c.cols(), k = a.cols();
  CONFLUX_EXPECTS(a.rows() == m && b.rows() == k && b.cols() == n);

  if (beta != 1.0) {
    for (int i = 0; i < m; ++i) {
      auto ci = c.row(i);
      if (beta == 0.0)
        std::fill(ci.begin(), ci.end(), 0.0);
      else
        for (double& x : ci) x *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  // i-k-j loop with k blocking: B rows are walked contiguously and the inner
  // j loop vectorizes.
  for (int kk = 0; kk < k; kk += kBlock) {
    const int kend = std::min(k, kk + kBlock);
    for (int i = 0; i < m; ++i) {
      auto ci = c.row(i);
      for (int p = kk; p < kend; ++p) {
        const double aip = alpha * a(i, p);
        if (aip == 0.0) continue;
        auto bp = b.row(p);
        for (int j = 0; j < n; ++j) ci[j] += aip * bp[j];
      }
    }
  }
}

void schur_update(MatrixView c, ConstMatrixView a, ConstMatrixView b) {
  gemm(-1.0, a, b, 1.0, c);
}

void trsm_left(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b) {
  const int m = b.rows(), n = b.cols();
  CONFLUX_EXPECTS(a.rows() == m && a.cols() == m);
  if (tri == Triangle::Lower) {
    // Forward substitution: X(i,:) = (B(i,:) - sum_{p<i} A(i,p) X(p,:)) / A(i,i)
    for (int i = 0; i < m; ++i) {
      auto bi = b.row(i);
      for (int p = 0; p < i; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;
        auto bp = b.row(p);
        for (int j = 0; j < n; ++j) bi[j] -= aip * bp[j];
      }
      if (diag == Diag::NonUnit) {
        const double inv = 1.0 / a(i, i);
        for (int j = 0; j < n; ++j) bi[j] *= inv;
      }
    }
  } else {
    // Backward substitution.
    for (int i = m - 1; i >= 0; --i) {
      auto bi = b.row(i);
      for (int p = i + 1; p < m; ++p) {
        const double aip = a(i, p);
        if (aip == 0.0) continue;
        auto bp = b.row(p);
        for (int j = 0; j < n; ++j) bi[j] -= aip * bp[j];
      }
      if (diag == Diag::NonUnit) {
        const double inv = 1.0 / a(i, i);
        for (int j = 0; j < n; ++j) bi[j] *= inv;
      }
    }
  }
}

void trsm_right(Triangle tri, Diag diag, ConstMatrixView a, MatrixView b) {
  const int m = b.rows(), n = b.cols();
  CONFLUX_EXPECTS(a.rows() == n && a.cols() == n);
  if (tri == Triangle::Upper) {
    // X * U = B: column-by-column forward sweep, row-major friendly.
    for (int i = 0; i < m; ++i) {
      auto bi = b.row(i);
      for (int j = 0; j < n; ++j) {
        double x = bi[j];
        for (int p = 0; p < j; ++p) x -= bi[p] * a(p, j);
        bi[j] = (diag == Diag::NonUnit) ? x / a(j, j) : x;
      }
    }
  } else {
    // X * L = B: backward sweep over columns.
    for (int i = 0; i < m; ++i) {
      auto bi = b.row(i);
      for (int j = n - 1; j >= 0; --j) {
        double x = bi[j];
        for (int p = j + 1; p < n; ++p) x -= bi[p] * a(p, j);
        bi[j] = (diag == Diag::NonUnit) ? x / a(j, j) : x;
      }
    }
  }
}

}  // namespace conflux::linalg
