/// \file calu25d.hpp
/// CALU — communication-avoiding LU with tournament pivoting over a binary
/// reduction tree (Grigori, Demmel, Xiang; arXiv 0808.2664), grafted onto
/// the same 2.5D engine as COnfLUX (lu/block25d.hpp).
///
/// The only difference from COnfLUX is the step-2 panel tournament: instead
/// of the butterfly (hypercube all-to-all) exchange in which every panel
/// owner finishes holding the winners, candidates funnel down a binary
/// reduction tree to participant 0, which alone finalizes the v pivots and
/// seeds the step-3 broadcast. That is Px - 1 point-to-point messages per
/// panel against the butterfly's ~Px log2(Px), so CALU's total communication
/// volume is bounded by COnfLUX's on every grid (the acceptance ablation
/// pins the ratio within 1.1x). Numerically, both topologies apply the same
/// tournament_round merge in global row order, hence the same documented
/// growth bound of roughly 2^(n/b · (log2 Px + 1)) — attained only on
/// Wilkinson-type adversaries, like partial pivoting's 2^(n-1).
#pragma once

#include "lu/lu_common.hpp"

namespace conflux::lu {

class Calu25D final : public LuAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "CALU"; }
  [[nodiscard]] LuResult run(const linalg::Matrix* a,
                             const LuConfig& cfg) override;
};

}  // namespace conflux::lu
