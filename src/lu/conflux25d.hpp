/// \file conflux25d.hpp
/// COnfLUX — the paper's near-communication-optimal LU factorization
/// (Algorithm 1). 2.5D decomposition [Px, Py, c] with:
///   - lazy panel reduction: trailing-matrix updates accumulate as per-layer
///     partial sums; only the next panel's column/row strips are summed
///     across layers each step (steps 1 and 5),
///   - row-masking tournament pivoting: pivot rows are never swapped, only
///     their indices travel (step 2/3),
///   - 1D panel layouts for the triangular solves (steps 4/6/7/9),
///   - layer-sliced panel multicast for the Schur update: each layer
///     receives only its v/c slice of A10 and A01 (steps 8/10).
/// Leading-order cost: N^3/(P sqrt M) elements per rank (Lemma 10), a factor
/// 1/3 above the lower bound of §6.
#pragma once

#include "lu/lu_common.hpp"

namespace conflux::lu {

class Conflux25D final : public LuAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "COnfLUX"; }
  [[nodiscard]] LuResult run(const linalg::Matrix* a,
                             const LuConfig& cfg) override;
};

}  // namespace conflux::lu
