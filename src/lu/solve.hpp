/// \file solve.hpp
/// Linear-system solving on top of the distributed factorizations — the
/// operation the paper's motivating applications (DFT, HPL) actually need.
/// A numeric-mode run with cfg.keep_factors retains the packed factors and
/// row permutation in the LuResult; lu_solve applies them to one or more
/// right-hand sides by permuted forward/backward substitution.
#pragma once

#include <span>
#include <vector>

#include "lu/lu_common.hpp"

namespace conflux::lu {

/// Solve A x = b using the factors carried by `result` (requires a
/// numeric-mode run with cfg.keep_factors = true). Returns x.
/// Works for every algorithm: the factors satisfy L U = A[perm, :], so the
/// solve is L y = b[perm], then U x = y.
[[nodiscard]] std::vector<double> lu_solve(const LuResult& result,
                                           std::span<const double> b);

/// Multi-RHS variant: each column of `b` (n x k) is solved independently;
/// returns an n x k solution matrix.
[[nodiscard]] linalg::Matrix lu_solve(const LuResult& result,
                                      const linalg::Matrix& b);

/// Scaled solve residual max|A x - b| / (n * max|A| * max|x|) — the
/// standard backward-error proxy.
[[nodiscard]] double solve_residual(const linalg::Matrix& a,
                                    std::span<const double> x,
                                    std::span<const double> b);

/// Convenience one-shot: factor `a` with the named algorithm on `p`
/// simulated ranks and solve for `b`. Returns {x, result}.
struct SolveOutcome {
  std::vector<double> x;
  LuResult factorization;
};
[[nodiscard]] SolveOutcome factor_and_solve(const std::string& algorithm,
                                            const linalg::Matrix& a,
                                            std::span<const double> b, int p);

}  // namespace conflux::lu
