#include "lu/candmc25d.hpp"

#include <cmath>

#include "grid/grid_opt.hpp"
#include "linalg/getrf.hpp"
#include "lu/scalapack2d.hpp"
#include "simnet/spmd.hpp"
#include "support/timer.hpp"

namespace conflux::lu {

LuResult Candmc25D::run(const linalg::Matrix* a, const LuConfig& cfg) {
  CONFLUX_EXPECTS(cfg.n >= 1 && cfg.p >= 1);
  CONFLUX_EXPECTS(cfg.mode == Mode::DryRun || a != nullptr);

  const double mem = cfg.mem_elements > 0
                         ? cfg.mem_elements
                         : static_cast<double>(cfg.n) * cfg.n /
                               std::pow(static_cast<double>(cfg.p), 2.0 / 3.0);
  // Replication depth: memory-limited, capped at the 2.5D optimum P^(1/3)
  // and at 4 — CANDMC's own tuning keeps replication modest at the node
  // counts the paper measures (its measured/modeled ratio in Table 2 is
  // consistent with c = 4 at P = 1024).
  int c = cfg.force_layers > 0
              ? cfg.force_layers
              : static_cast<int>(std::lround(
                    cfg.p * mem / (static_cast<double>(cfg.n) * cfg.n)));
  c = std::clamp(c, 1,
                 std::max(1, static_cast<int>(std::floor(
                                 std::cbrt(static_cast<double>(cfg.p))))));
  if (cfg.force_layers <= 0) c = std::min(c, 4);

  const int front = std::max(1, cfg.p / c);
  const grid::Grid2D face = grid::choose_grid_2d_near_square(front);
  const int nb =
      grid::choose_block_size(cfg.n, 1, cfg.block > 0 ? cfg.block : 64);
  const int active = face.active() * c;

  linalg::Matrix gathered;
  std::vector<int> ipiv;
  const bool numeric = (cfg.mode == Mode::Numeric);
  const bool verify = numeric && cfg.verify;
  const bool gather = numeric && (cfg.verify || cfg.keep_factors);
  if (gather) gathered = linalg::Matrix(cfg.n, cfg.n);

  simnet::Network net(active, cfg.fabric);
  factor::attach_instruments(net, cfg);
  Stopwatch timer;
  simnet::run_spmd(net, [&](simnet::Comm& comm) {
    const int layer = comm.rank() / face.active();
    Scalapack2DParams params;
    params.n = cfg.n;
    params.nb = nb;
    params.g = face;
    params.base_rank = layer * face.active();
    params.numeric = numeric;
    params.seed = cfg.seed;  // identical pivots keep replicas coherent
    params.a = a;
    params.tel = cfg.telemetry;
    if (gather && layer == 0) {
      params.gathered = &gathered;
      params.ipiv_out = &ipiv;
    }
    scalapack2d_body(comm, params);
  });

  LuResult result;
  result.seconds = timer.seconds();
  factor::fill_comm_stats(result, net, active, cfg.p);
  result.grid = face.to_string() + " x " + std::to_string(c);
  result.block = nb;
  if (verify) {
    result.residual = linalg::lu_residual(*a, gathered.view(), ipiv);
    result.growth = linalg::growth_factor(*a, gathered.view());
    result.residual_eps = factor::residual_in_eps(result.residual);
    std::vector<double> u_diag(static_cast<std::size_t>(cfg.n));
    for (int i = 0; i < cfg.n; ++i)
      u_diag[static_cast<std::size_t>(i)] = gathered(i, i);
    result.pivot_stats = factor::pivot_stats(
        linalg::pivots_to_permutation(ipiv, cfg.n), u_diag);
  }
  if (numeric && cfg.keep_factors) {
    result.permutation = linalg::pivots_to_permutation(ipiv, cfg.n);
    result.factors = std::make_shared<linalg::Matrix>(std::move(gathered));
  }
  return result;
}

}  // namespace conflux::lu
