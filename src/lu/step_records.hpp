/// \file step_records.hpp
/// Out-of-band recording of per-step factors for verification.
///
/// The paper (and this reproduction) excludes result collection from the
/// measured communication volume; ranks therefore write their factor pieces
/// straight into pre-allocated shared buffers. Writes are disjoint by
/// construction (each row/column chunk has exactly one owner), and the
/// SPMD join synchronizes before the host reads them.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace conflux::lu {

/// Factors produced at outer-loop step t of a block algorithm with masked
/// rows (COnfLUX). Row-indexed by *global* row id so concurrent writers
/// stay disjoint.
struct StepRecord {
  std::vector<int> pivots;  ///< the v pivot rows chosen this step, in order
  linalg::Matrix a00;       ///< v x v packed LU of the pivot block
  linalg::Matrix a10;       ///< N x v; row r holds L[r, step-cols] if r was
                            ///< unpivoted at this step
  linalg::Matrix a01;       ///< v x N; column c holds U[step-rows, c] for
                            ///< trailing columns
};

/// Pre-sized record set for n / v steps.
[[nodiscard]] std::vector<StepRecord> make_step_records(int n, int v);

/// Assemble the explicit factors from step records:
/// rows of L and U appear in pivot order (the row permutation), columns in
/// natural order, so that L * U == A[pivot_order, :].
struct AssembledFactors {
  std::vector<int> pivot_order;  ///< row permutation: position -> global row
  linalg::Matrix l;              ///< n x n unit lower triangular
  linalg::Matrix u;              ///< n x n upper triangular
};

[[nodiscard]] AssembledFactors assemble_factors(
    const std::vector<StepRecord>& records, int n, int v);

/// Scaled residual max|L*U - A[perm, :]| / (n * max|A|).
[[nodiscard]] double masked_lu_residual(const linalg::Matrix& a,
                                        const AssembledFactors& f);

/// Growth factor max|U| / max|A|.
[[nodiscard]] double masked_growth_factor(const linalg::Matrix& a,
                                          const AssembledFactors& f);

}  // namespace conflux::lu
