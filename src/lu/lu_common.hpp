/// \file lu_common.hpp
/// Configuration, result and interface types for the distributed LU
/// implementations (COnfLUX, the three comparison targets of §8 — Cray
/// LibSci, SLATE, CANDMC — and the CALU tournament-pivoting backend).
///
/// The family-neutral parts — problem shape, Numeric/DryRun duality,
/// 2.5D ablation knobs, CommVolume reporting — live in
/// factor/factorization.hpp and are shared with the Cholesky family
/// (cholesky/cholesky_common.hpp). This header adds the LU-specific pieces:
/// pivot growth, the packed-factor + permutation contract consumed by
/// lu/solve.hpp, and the synthetic pivot schedule dry runs replay.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "factor/factorization.hpp"
#include "factor/numerics.hpp"
#include "linalg/matrix.hpp"

namespace conflux::lu {

/// Numeric-vs-DryRun execution mode, shared across factorization families.
/// For LU, DryRun replays the identical communication schedule with ghost
/// payloads and synthetic (hash-spread) pivots; message sizes depend only
/// on index sets, so the measured volume matches a numeric run to within
/// the pivot-placement noise band (tests pin it at a few percent).
using factor::Mode;

/// A distributed-LU problem configuration. All fields are inherited from
/// the family-neutral FactorConfig; see factor/factorization.hpp for their
/// meaning (n, p, block, mem_elements, mode, seed, and the ablation knobs
/// grid_optimization / force_layers / verify / keep_factors).
struct LuConfig : factor::FactorConfig {
  /// Copy of this configuration with a different execution mode — the
  /// idiom tests use to run the same problem numerically and dry.
  [[nodiscard]] LuConfig with_mode(Mode m) const {
    LuConfig copy = *this;
    copy.mode = m;
    return copy;
  }
};

/// Result of one LU factorization run. The communication metrics, grid
/// description, residual and wall time are the shared FactorResult fields;
/// LU adds the pivot-growth stability proxy and the row permutation.
struct LuResult : factor::FactorResult {
  double growth = std::numeric_limits<double>::quiet_NaN();  ///< Numeric:
                                                             ///< max|U|/max|A|

  /// The residual in units of machine epsilon — ‖PA−LU‖ / (‖A‖·n·eps), the
  /// form the stability bounds (and the adversarial numerics suite) use.
  /// Populated with `residual` by numeric runs with cfg.verify.
  double residual_eps = std::numeric_limits<double>::quiet_NaN();

  /// Pivot-sequence summary (rows == 0 when not populated): how far from
  /// natural order the strategy pivoted, and the |U| diagonal extremes.
  /// Populated by numeric runs with cfg.verify.
  factor::PivotStats pivot_stats;

  /// Row permutation accompanying `factors` (the shared FactorResult
  /// member): the packed matrix holds L below the diagonal and U on/above
  /// it in permuted row order, with L*U = A[permutation, :]. Only
  /// populated by numeric runs with cfg.keep_factors (see lu/solve.hpp).
  std::vector<int> permutation;
};

/// Interface implemented by all five LU algorithms.
class LuAlgorithm : public factor::Factorization {
 public:
  /// Factor `a` under `cfg`. In DryRun mode `a` may be null. In Numeric
  /// mode with cfg.verify, the result carries the scaled residual
  /// max|LU - PA| / (N max|A|).
  [[nodiscard]] virtual LuResult run(const linalg::Matrix* a,
                                     const LuConfig& cfg) = 0;
};

/// Instantiate an algorithm by table name: "COnfLUX", "LibSci", "SLATE",
/// "CANDMC", "CALU". Throws ContractViolation for unknown names.
[[nodiscard]] std::unique_ptr<LuAlgorithm> make_algorithm(
    const std::string& name);

/// All five, Table 2 order first (LibSci, SLATE, CANDMC, COnfLUX), then the
/// CALU tournament-pivoting backend.
[[nodiscard]] std::vector<std::unique_ptr<LuAlgorithm>> all_algorithms();

/// Deterministic synthetic pivot choice for dry runs: pick `v` rows from the
/// not-yet-pivoted set by hashed order, which spreads pivots evenly across
/// tile rows (the "with high probability, pivots are evenly distributed"
/// assumption of §7.4). All ranks compute the same selection locally.
[[nodiscard]] std::vector<int> synthetic_pivots(
    const std::vector<std::uint8_t>& pivoted, int n, int v, int step,
    std::uint64_t seed);

}  // namespace conflux::lu
