/// \file lu_common.hpp
/// Shared configuration, result and interface types for the distributed LU
/// implementations (COnfLUX and the three comparison targets of §8).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "simnet/stats.hpp"

namespace conflux::lu {

/// Execution mode.
/// - Numeric: factor real data, record the factors, verify ||LU - PA||.
/// - DryRun: execute the identical communication schedule with ghost
///   payloads and synthetic (hash-spread) pivots. Message sizes in every
///   algorithm depend only on index sets, never on matrix values, so the
///   measured volume is exact (tests assert DryRun == Numeric volume).
enum class Mode { Numeric, DryRun };

/// A distributed-LU problem configuration.
struct LuConfig {
  int n = 0;       ///< matrix dimension; must be a multiple of the block size
  int p = 1;       ///< ranks available (nodes in the paper's terminology)
  int block = 0;   ///< v (2.5D algorithms) or nb (2D); 0 = auto-tune
  double mem_elements = 0;  ///< per-rank memory budget M in elements;
                            ///< <= 0 selects the paper's max-replication rule
                            ///< M = N^2 / P^(2/3)
  Mode mode = Mode::Numeric;
  std::uint64_t seed = 42;  ///< synthetic pivot seed (DryRun)

  // --- ablation knobs (bench_ablation) ------------------------------------
  bool grid_optimization = true;  ///< COnfLUX: search the best [Px,Py,c] grid
  int force_layers = 0;           ///< force the replication depth c (0 = auto)
  bool verify = true;             ///< Numeric: assemble factors and check
  bool keep_factors = false;      ///< Numeric: retain packed factors +
                                  ///< permutation in the result (lu_solve)

  [[nodiscard]] LuConfig with_mode(Mode m) const {
    LuConfig copy = *this;
    copy.mode = m;
    return copy;
  }
};

/// Result of one factorization run.
struct LuResult {
  simnet::CommVolume total;          ///< summed over ranks (Score-P metric)
  std::uint64_t max_rank_bytes = 0;  ///< busiest rank, sent+received (Fig. 6)
  int ranks_used = 0;                ///< active ranks (grid may idle some)
  int ranks_available = 0;           ///< the P the caller asked for
  std::string grid;                  ///< human-readable grid description
  int block = 0;                     ///< block size actually used
  double residual = std::numeric_limits<double>::quiet_NaN();  ///< Numeric
  double growth = std::numeric_limits<double>::quiet_NaN();    ///< Numeric
  double seconds = 0;                ///< wall time of the simulated run

  /// Packed factors (L below the diagonal, U on/above) in permuted row
  /// order, and the row permutation with L*U = A[permutation, :]. Only
  /// populated by numeric runs with cfg.keep_factors (see lu/solve.hpp).
  std::shared_ptr<linalg::Matrix> factors;
  std::vector<int> permutation;

  /// Total bytes sent over the network — the paper's "communication volume".
  [[nodiscard]] double total_bytes() const {
    return static_cast<double>(total.bytes_sent);
  }
  /// Average per-available-rank volume (Fig. 6's per-node axis).
  [[nodiscard]] double bytes_per_rank() const {
    return total_bytes() / std::max(1, ranks_available);
  }
};

/// Interface implemented by all four LU algorithms.
class LuAlgorithm {
 public:
  virtual ~LuAlgorithm() = default;

  /// Name as used in the paper's tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Factor `a` under `cfg`. In DryRun mode `a` may be null. In Numeric
  /// mode with cfg.verify, the result carries the scaled residual
  /// max|LU - PA| / (N max|A|).
  [[nodiscard]] virtual LuResult run(const linalg::Matrix* a,
                                     const LuConfig& cfg) = 0;
};

/// Instantiate an algorithm by table name: "COnfLUX", "LibSci", "SLATE",
/// "CANDMC". Throws ContractViolation for unknown names.
[[nodiscard]] std::unique_ptr<LuAlgorithm> make_algorithm(
    const std::string& name);

/// All four, in Table 2 order (LibSci, SLATE, CANDMC, COnfLUX).
[[nodiscard]] std::vector<std::unique_ptr<LuAlgorithm>> all_algorithms();

/// Deterministic synthetic pivot choice for dry runs: pick `v` rows from the
/// not-yet-pivoted set by hashed order, which spreads pivots evenly across
/// tile rows (the "with high probability, pivots are evenly distributed"
/// assumption of §7.4). All ranks compute the same selection locally.
[[nodiscard]] std::vector<int> synthetic_pivots(
    const std::vector<std::uint8_t>& pivoted, int n, int v, int step,
    std::uint64_t seed);

}  // namespace conflux::lu
