#include "lu/solve.hpp"

#include <cmath>

#include "linalg/matrix.hpp"

namespace conflux::lu {

std::vector<double> lu_solve(const LuResult& result,
                             std::span<const double> b) {
  CONFLUX_EXPECTS_MSG(result.factors != nullptr,
                      "lu_solve needs a numeric run with keep_factors");
  const linalg::Matrix& f = *result.factors;
  const int n = f.rows();
  CONFLUX_EXPECTS(static_cast<int>(b.size()) == n);
  CONFLUX_EXPECTS(static_cast<int>(result.permutation.size()) == n);

  // y = L^{-1} (P b): forward substitution with the unit-lower factor.
  std::vector<double> y(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    double acc = b[static_cast<std::size_t>(
        result.permutation[static_cast<std::size_t>(i)])];
    for (int k = 0; k < i; ++k) acc -= f(i, k) * y[static_cast<std::size_t>(k)];
    y[static_cast<std::size_t>(i)] = acc;
  }
  // x = U^{-1} y: backward substitution.
  std::vector<double> x(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    double acc = y[static_cast<std::size_t>(i)];
    for (int k = i + 1; k < n; ++k)
      acc -= f(i, k) * x[static_cast<std::size_t>(k)];
    const double diag = f(i, i);
    CONFLUX_EXPECTS_MSG(diag != 0.0, "singular U in lu_solve");
    x[static_cast<std::size_t>(i)] = acc / diag;
  }
  return x;
}

linalg::Matrix lu_solve(const LuResult& result, const linalg::Matrix& b) {
  linalg::Matrix x(b.rows(), b.cols());
  std::vector<double> column(static_cast<std::size_t>(b.rows()));
  for (int j = 0; j < b.cols(); ++j) {
    for (int i = 0; i < b.rows(); ++i)
      column[static_cast<std::size_t>(i)] = b(i, j);
    const std::vector<double> xj = lu_solve(result, column);
    for (int i = 0; i < b.rows(); ++i)
      x(i, j) = xj[static_cast<std::size_t>(i)];
  }
  return x;
}

double solve_residual(const linalg::Matrix& a, std::span<const double> x,
                      std::span<const double> b) {
  const int n = a.rows();
  CONFLUX_EXPECTS(a.cols() == n && static_cast<int>(x.size()) == n &&
                  static_cast<int>(b.size()) == n);
  double err = 0.0, xmax = 0.0;
  for (double v : x) xmax = std::max(xmax, std::abs(v));
  for (int i = 0; i < n; ++i) {
    double acc = -b[static_cast<std::size_t>(i)];
    auto row = a.row(i);
    for (int j = 0; j < n; ++j) acc += row[j] * x[static_cast<std::size_t>(j)];
    err = std::max(err, std::abs(acc));
  }
  const double scale =
      std::max(1.0, linalg::max_abs(a.view())) * std::max(1.0, xmax) * n;
  return err / scale;
}

SolveOutcome factor_and_solve(const std::string& algorithm,
                              const linalg::Matrix& a,
                              std::span<const double> b, int p) {
  LuConfig cfg;
  cfg.n = a.rows();
  cfg.p = p;
  cfg.mode = Mode::Numeric;
  cfg.keep_factors = true;
  SolveOutcome out;
  out.factorization = make_algorithm(algorithm)->run(&a, cfg);
  out.x = lu_solve(out.factorization, b);
  return out;
}

}  // namespace conflux::lu
