#include "lu/conflux25d.hpp"

#include "lu/block25d.hpp"

namespace conflux::lu {

LuResult Conflux25D::run(const linalg::Matrix* a, const LuConfig& cfg) {
  return run_block25d(a, cfg, PanelTournament::Butterfly);
}

}  // namespace conflux::lu
