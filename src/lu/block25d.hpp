/// \file block25d.hpp
/// The shared 2.5D masked-row LU engine behind COnfLUX and CALU.
///
/// Both backends run the identical Algorithm-1 step structure — lazy panel
/// reduction across layers, row-masking pivoting (rows never move, only
/// their indices travel), 1D panel layouts for the triangular solves, and
/// layer-sliced panel multicasts for the Schur update. They differ in
/// exactly one place: the topology of the step-2 panel tournament that
/// selects the v pivot rows. The engine takes that topology as a parameter,
/// so the two backends are guaranteed to diverge only where the paper
/// and the CALU line (arXiv 0808.2664) actually disagree.
#pragma once

#include "lu/lu_common.hpp"

namespace conflux::lu {

/// Panel-tournament topology for step 2 of the 2.5D engine.
enum class PanelTournament {
  Butterfly,  ///< COnfLUX (§7.3): hypercube all-to-all exchange; every
              ///< participant finishes holding the winners.
              ///< ~Px log2(Px) messages per panel.
  Tree,       ///< CALU/TSLU (arXiv 0808.2664): binary reduction tree;
              ///< candidates funnel to participant 0, which alone holds the
              ///< winners until the step-3 pivot broadcast disseminates
              ///< them. Px - 1 messages per panel.
};

/// Run the 2.5D engine with the given tournament topology. Numeric and dry
/// modes follow the FactorConfig contract of lu_common.hpp; dry runs replay
/// the chosen topology's exact message-size recursion with ghost payloads.
[[nodiscard]] LuResult run_block25d(const linalg::Matrix* a,
                                    const LuConfig& cfg,
                                    PanelTournament tournament);

}  // namespace conflux::lu
