#include "lu/calu25d.hpp"

#include "lu/block25d.hpp"

namespace conflux::lu {

LuResult Calu25D::run(const linalg::Matrix* a, const LuConfig& cfg) {
  return run_block25d(a, cfg, PanelTournament::Tree);
}

}  // namespace conflux::lu
