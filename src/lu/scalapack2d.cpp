#include "lu/scalapack2d.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "grid/block_cyclic.hpp"
#include "grid/grid_opt.hpp"
#include "linalg/blas.hpp"
#include "linalg/getrf.hpp"
#include "simnet/collectives.hpp"
#include "simnet/spmd.hpp"
#include "support/random.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace conflux::lu {

namespace {

using grid::BlockCyclic1D;
using grid::Grid2D;
using linalg::Matrix;
using simnet::Comm;
using simnet::Group;
using simnet::make_tag;
using simnet::Tag;

std::uint64_t swap_hash(std::uint64_t seed, int col) {
  return splitmix64(seed ^ 0xC0FFEEULL ^
                    static_cast<std::uint64_t>(col) * 0x9E3779B97F4A7C15ULL);
}

/// Per-rank view of the 2D decomposition.
struct Local2D {
  int pr = 0, pc = 0;
  BlockCyclic1D rowmap{1, 1, 1};
  BlockCyclic1D colmap{1, 1, 1};
  std::vector<int> my_rows;  ///< owned global rows, ascending
  std::vector<int> my_cols;  ///< owned global cols, ascending
  Matrix loc;                ///< numeric local block (my_rows x my_cols)

  [[nodiscard]] int lrow(int g) const { return rowmap.local_of(g); }
  [[nodiscard]] int lcol(int g) const { return colmap.local_of(g); }

  /// First local row index whose global row is >= g.
  [[nodiscard]] int lrow_lower_bound(int g) const {
    return static_cast<int>(
        std::lower_bound(my_rows.begin(), my_rows.end(), g) -
        my_rows.begin());
  }
  [[nodiscard]] int lcol_lower_bound(int g) const {
    return static_cast<int>(
        std::lower_bound(my_cols.begin(), my_cols.end(), g) -
        my_cols.begin());
  }
};

}  // namespace

void scalapack2d_body(Comm& comm, const Scalapack2DParams& params) {
  const int n = params.n;
  const int nb = params.nb;
  const Grid2D& g = params.g;
  const bool numeric = params.numeric;
  CONFLUX_EXPECTS(n % nb == 0);
  const int me_rank = comm.rank();

  Local2D me;
  {
    const int local_id = comm.rank() - params.base_rank;
    CONFLUX_EXPECTS(local_id >= 0 && local_id < g.active());
    me.pr = g.row_of(local_id);
    me.pc = g.col_of(local_id);
    me.rowmap = BlockCyclic1D(n, nb, g.rows());
    me.colmap = BlockCyclic1D(n, nb, g.cols());
    me.my_rows = me.rowmap.indices_of_owner(me.pr);
    me.my_cols = me.colmap.indices_of_owner(me.pc);
    if (numeric) {
      me.loc = Matrix(static_cast<int>(me.my_rows.size()),
                      static_cast<int>(me.my_cols.size()));
      for (std::size_t i = 0; i < me.my_rows.size(); ++i)
        for (std::size_t j = 0; j < me.my_cols.size(); ++j)
          me.loc(static_cast<int>(i), static_cast<int>(j)) =
              (*params.a)(me.my_rows[i], me.my_cols[j]);
    }
  }

  auto rank_of = [&](int pr, int pc) {
    return params.base_rank + g.rank_of(pr, pc);
  };
  // The column group containing process column pc (all pr), and the row
  // group containing process row pr (all pc).
  auto col_group = [&](int pc) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(g.rows()));
    for (int pr = 0; pr < g.rows(); ++pr) ranks.push_back(rank_of(pr, pc));
    return Group(std::move(ranks));
  };
  auto row_group = [&](int pr) {
    std::vector<int> ranks;
    ranks.reserve(static_cast<std::size_t>(g.cols()));
    for (int pc = 0; pc < g.cols(); ++pc) ranks.push_back(rank_of(pr, pc));
    return Group(std::move(ranks));
  };

  std::vector<int> ipiv(static_cast<std::size_t>(n), -1);
  const int steps = n / nb;

  for (int s = 0; s < steps; ++s) {
    const int k0 = s * nb;
    const int kb = nb;
    const int pck = me.colmap.owner_of(k0);
    const int prk = me.rowmap.owner_of(k0);
    const std::uint32_t ts = static_cast<std::uint32_t>(s);

    // ---- Panel factorization (process column pck) ----------------------
    if (numeric) {
      if (me.pc == pck) {
        const telemetry::ScopedSpan span(params.tel, me_rank,
                                         telemetry::kPanelTournament, s);
        const Group cg = col_group(pck);
        for (int j = k0; j < k0 + kb; ++j) {
          const std::uint32_t js = static_cast<std::uint32_t>(j - k0);
          // Local pivot search in column j, rows >= j.
          simnet::MaxLoc mine;
          const int jl = me.lcol(j);
          for (int il = me.lrow_lower_bound(j);
               il < static_cast<int>(me.my_rows.size()); ++il) {
            const double val = std::abs(me.loc(il, jl));
            if (val > mine.value) {
              mine.value = val;
              mine.location = me.my_rows[static_cast<std::size_t>(il)];
            }
          }
          const simnet::MaxLoc win =
              simnet::allreduce_maxloc(comm, cg, mine, make_tag(20, ts, js));
          const int piv = win.location >= 0 ? win.location : j;
          ipiv[static_cast<std::size_t>(j)] = piv;

          // Swap rows j <-> piv within the panel columns.
          if (piv != j) {
            const int o1 = me.rowmap.owner_of(j);
            const int o2 = me.rowmap.owner_of(piv);
            if (o1 == o2) {
              if (me.pr == o1) {
                const int r1 = me.lrow(j), r2 = me.lrow(piv);
                for (int col = k0; col < k0 + kb; ++col)
                  std::swap(me.loc(r1, me.lcol(col)),
                            me.loc(r2, me.lcol(col)));
              }
            } else if (me.pr == o1 || me.pr == o2) {
              const int other = rank_of(me.pr == o1 ? o2 : o1, pck);
              const int my_row = me.lrow(me.pr == o1 ? j : piv);
              std::vector<double> buf;
              buf.reserve(static_cast<std::size_t>(kb));
              for (int col = k0; col < k0 + kb; ++col)
                buf.push_back(me.loc(my_row, me.lcol(col)));
              const std::vector<double> theirs =
                  comm.exchange(other, make_tag(21, ts, js), buf);
              for (int col = k0; col < k0 + kb; ++col)
                me.loc(my_row, me.lcol(col)) =
                    theirs[static_cast<std::size_t>(col - k0)];
            }
          }

          // Broadcast the (swapped-in) pivot row segment [j .. k0+kb).
          std::vector<double> seg(static_cast<std::size_t>(k0 + kb - j));
          const int powner = me.rowmap.owner_of(j);
          if (me.pr == powner) {
            const int r = me.lrow(j);
            for (int col = j; col < k0 + kb; ++col)
              seg[static_cast<std::size_t>(col - j)] = me.loc(r, me.lcol(col));
          }
          simnet::bcast(comm, cg, powner, seg, make_tag(22, ts, js));

          // Scale column j below the diagonal and rank-1 update the panel.
          const double diag = seg[0];
          const double inv = diag != 0.0 ? 1.0 / diag : 0.0;
          for (int il = me.lrow_lower_bound(j + 1);
               il < static_cast<int>(me.my_rows.size()); ++il) {
            const int jl2 = me.lcol(j);
            me.loc(il, jl2) *= inv;
            const double lij = me.loc(il, jl2);
            for (int col = j + 1; col < k0 + kb; ++col)
              me.loc(il, me.lcol(col)) -=
                  lij * seg[static_cast<std::size_t>(col - j)];
          }
        }
      }
    } else {
      // Dry run: synthetic pivots spread over the remaining rows; the
      // per-column max-loc allreduces and pivot-row broadcasts are
      // aggregated into per-panel ghosts of identical total volume.
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kPanelTournament, s);
      for (int j = k0; j < k0 + kb; ++j)
        ipiv[static_cast<std::size_t>(j)] =
            j + static_cast<int>(swap_hash(params.seed, j) %
                                 static_cast<std::uint64_t>(n - j));
      if (me.pc == pck) {
        const Group cg = col_group(pck);
        const std::size_t pair_bytes =
            static_cast<std::size_t>(kb) * (sizeof(double) + sizeof(int));
        simnet::reduce_ghost(comm, cg, 0, pair_bytes, make_tag(20, ts, 0));
        (void)simnet::bcast_ghost(comm, cg, 0, pair_bytes,
                                  make_tag(20, ts, 1));
        // Pivot-row segments: sum over columns of (kb - jj) doubles.
        const std::size_t seg_doubles =
            static_cast<std::size_t>(kb) * (kb + 1) / 2;
        (void)simnet::bcast_ghost(comm, cg, 0, seg_doubles * sizeof(double),
                                  make_tag(22, ts, 0));
        // Panel-width swap exchanges.
        for (int j = k0; j < k0 + kb; ++j) {
          const int piv = ipiv[static_cast<std::size_t>(j)];
          if (piv == j) continue;
          const int o1 = me.rowmap.owner_of(j);
          const int o2 = me.rowmap.owner_of(piv);
          if (o1 == o2) continue;
          const std::uint32_t js = static_cast<std::uint32_t>(j - k0);
          if (me.pr == o1 || me.pr == o2) {
            const int other = rank_of(me.pr == o1 ? o2 : o1, pck);
            comm.send_ghost_doubles(other, make_tag(21, ts, js),
                                    static_cast<std::size_t>(kb));
            (void)comm.recv_ghost(other, make_tag(21, ts, js));
          }
        }
      }
    }

    // ---- Share the panel's pivot indices along process rows -------------
    // (part of pdgetrf's panel broadcast; pdlaswp needs ipiv everywhere).
    {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kPivotApply, s);
      const Group rg = row_group(me.pr);
      if (numeric) {
        std::vector<int> piv_step(ipiv.begin() + k0, ipiv.begin() + k0 + kb);
        simnet::bcast_ints(comm, rg, pck, piv_step, make_tag(26, ts, 0));
        std::copy(piv_step.begin(), piv_step.end(), ipiv.begin() + k0);
      } else {
        (void)simnet::bcast_ghost(comm, rg, pck,
                                  static_cast<std::size_t>(kb) * sizeof(int),
                                  make_tag(26, ts, 0));
      }
    }

    // ---- Batched row interchanges outside the panel (pdlaswp) ----------
    {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kPivotApply, s);
      // Convert the kb sequential swaps into an explicit permutation
      // (pdlapiv semantics): occupant[pos] = original row whose data must
      // end up at position pos. Applying moves from original positions is
      // then order-independent, so messages batch safely even when swap
      // chains share rows. A flat (pos, row) list beats a std::map here:
      // at most 2*kb entries, rebuilt by every rank every step.
      std::vector<std::pair<int, int>> occupant;
      occupant.reserve(2 * static_cast<std::size_t>(kb));
      auto occ = [&](int pos) {
        for (const auto& [p, row] : occupant)
          if (p == pos) return row;
        return pos;
      };
      auto set_occ = [&](int pos, int row) {
        for (auto& [p, r] : occupant)
          if (p == pos) {
            r = row;
            return;
          }
        occupant.emplace_back(pos, row);
      };
      for (int j = k0; j < k0 + kb; ++j) {
        const int piv = ipiv[static_cast<std::size_t>(j)];
        if (piv == j) continue;
        const int oj = occ(j), op = occ(piv);
        set_occ(j, op);
        set_occ(piv, oj);
      }
      // Columns outside the panel that I own (sender and receiver live in
      // the same process column, so both sides see the same width): local
      // indices [0, panel_lo) and [panel_hi, ncols), ascending.
      const int panel_lo = me.lcol_lower_bound(k0);
      const int panel_hi = me.lcol_lower_bound(k0 + kb);
      const int ncols = static_cast<int>(me.my_cols.size());
      const std::size_t out_count =
          static_cast<std::size_t>(ncols - (panel_hi - panel_lo));
      auto for_each_out_col = [&](auto&& fn) {
        for (int jl = 0; jl < panel_lo; ++jl) fn(jl);
        for (int jl = panel_hi; jl < ncols; ++jl) fn(jl);
      };

      // Moves grouped by (source owner -> destination owner). Every rank
      // iterates `occupant` in the same (deterministic) order, so the
      // per-pair move lists agree between sender and receiver.
      std::map<std::pair<int, int>, std::vector<std::pair<int, int>>> moves;
      for (const auto& [pos, src] : occupant) {
        if (pos == src) continue;
        moves[{me.rowmap.owner_of(src), me.rowmap.owner_of(pos)}]
            .emplace_back(src, pos);
      }
      // Stage all outgoing data before any write, then send, then receive.
      std::vector<std::pair<int, int>> local_moves;  // (src, pos), same owner
      struct Outgoing {
        int dst_rank;
        Tag tag;
        std::vector<double> buf;
        std::size_t count;
      };
      std::vector<Outgoing> outbox;
      unsigned pair_id = 0;
      for (const auto& [owners, mv] : moves) {
        const auto [osrc, odst] = owners;
        ++pair_id;
        if (osrc == odst) {
          if (me.pr == osrc)
            local_moves.insert(local_moves.end(), mv.begin(), mv.end());
          continue;
        }
        if (me.pr == osrc) {
          Outgoing out;
          out.dst_rank = rank_of(odst, me.pc);
          out.tag = make_tag(23, ts, pair_id);
          out.count = mv.size() * out_count;
          if (numeric) {
            out.buf.reserve(out.count);
            for (const auto& [src, pos] : mv) {
              const int r = me.lrow(src);
              for_each_out_col(
                  [&](int jl) { out.buf.push_back(me.loc(r, jl)); });
            }
          }
          outbox.push_back(std::move(out));
        }
      }
      // Stage local (same-owner) moves: read everything, then write.
      std::vector<std::vector<double>> staged;
      if (numeric && me.pr >= 0) {
        for (const auto& [src, pos] : local_moves) {
          (void)pos;
          std::vector<double> row;
          row.reserve(out_count);
          const int r = me.lrow(src);
          for_each_out_col([&](int jl) { row.push_back(me.loc(r, jl)); });
          staged.push_back(std::move(row));
        }
      }
      for (auto& out : outbox) {
        if (numeric)
          comm.send(out.dst_rank, out.tag, std::move(out.buf));
        else
          comm.send_ghost_doubles(out.dst_rank, out.tag, out.count);
      }
      if (numeric) {
        for (std::size_t i = 0; i < local_moves.size(); ++i) {
          const int r = me.lrow(local_moves[i].second);
          std::size_t idx = 0;
          for_each_out_col([&](int jl) { me.loc(r, jl) = staged[i][idx++]; });
        }
      }
      pair_id = 0;
      for (const auto& [owners, mv] : moves) {
        const auto [osrc, odst] = owners;
        ++pair_id;
        if (osrc == odst || me.pr != odst) continue;
        const Tag tag = make_tag(23, ts, pair_id);
        const int src_rank = rank_of(osrc, me.pc);
        if (numeric) {
          const simnet::BufferView buf = comm.recv_view(src_rank, tag);
          const double* in = buf.data();
          for (const auto& [src, pos] : mv) {
            (void)src;
            const int r = me.lrow(pos);
            for_each_out_col([&](int jl) { me.loc(r, jl) = *in++; });
          }
        } else {
          (void)comm.recv_ghost(src_rank, tag);
        }
      }
    }

    // ---- Broadcast the L panel along process rows -----------------------
    // Panel piece on (pr, pck): my rows >= k0 x kb columns.
    const int mrow0 = me.lrow_lower_bound(k0);
    const int m_loc = static_cast<int>(me.my_rows.size()) - mrow0;
    Matrix lpanel;  // m_loc x kb, rows ascending global
    {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kSchurUpdate, s);
      const Group rg = row_group(me.pr);
      const Tag tag = make_tag(24, ts, 0);
      if (numeric) {
        std::vector<double> buf;
        if (me.pc == pck) {
          buf.reserve(static_cast<std::size_t>(m_loc) * kb);
          for (int il = mrow0; il < static_cast<int>(me.my_rows.size()); ++il)
            for (int col = k0; col < k0 + kb; ++col)
              buf.push_back(me.loc(il, me.lcol(col)));
        } else {
          buf.resize(static_cast<std::size_t>(m_loc) * kb);
        }
        simnet::bcast(comm, rg, pck, buf, tag);
        lpanel = Matrix(m_loc, kb);
        std::copy(buf.begin(), buf.end(), lpanel.data());
      } else {
        (void)simnet::bcast_ghost(
            comm, rg, pck, static_cast<std::size_t>(m_loc) * kb * 8, tag);
      }
    }

    // ---- U block row: solve and broadcast down process columns ----------
    const int ncol0 = me.lcol_lower_bound(k0 + kb);
    const int ntrail = static_cast<int>(me.my_cols.size()) - ncol0;
    Matrix u01;  // kb x ntrail
    {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kTrsm, s);
      const Group cg = col_group(me.pc);
      const Tag tag = make_tag(25, ts, 0);
      if (numeric) {
        std::vector<double> buf;
        if (me.pr == prk) {
          // My copy of L00 sits in the first kb rows of lpanel.
          auto l00 = lpanel.block(0, 0, kb, kb);
          u01 = Matrix(kb, ntrail);
          for (int q = 0; q < kb; ++q) {
            const int r = me.lrow(k0 + q);
            for (int jl = ncol0; jl < static_cast<int>(me.my_cols.size());
                 ++jl)
              u01(q, jl - ncol0) = me.loc(r, jl);
          }
          linalg::trsm_left(linalg::Triangle::Lower, linalg::Diag::Unit, l00,
                            u01.view());
          // Write the solved U block row back into the local matrix.
          for (int q = 0; q < kb; ++q) {
            const int r = me.lrow(k0 + q);
            for (int jl = ncol0; jl < static_cast<int>(me.my_cols.size());
                 ++jl)
              me.loc(r, jl) = u01(q, jl - ncol0);
          }
          buf.assign(u01.data(), u01.data() + u01.size());
        } else {
          buf.resize(static_cast<std::size_t>(kb) * ntrail);
        }
        simnet::bcast(comm, cg, prk, buf, tag);
        if (me.pr != prk) {
          u01 = Matrix(kb, ntrail);
          std::copy(buf.begin(), buf.end(), u01.data());
        }
      } else {
        (void)simnet::bcast_ghost(
            comm, cg, prk, static_cast<std::size_t>(kb) * ntrail * 8, tag);
      }
    }

    // ---- Local trailing update -----------------------------------------
    if (numeric && ntrail > 0) {
      const telemetry::ScopedSpan span(params.tel, me_rank,
                                       telemetry::kSchurUpdate, s);
      const int urow0 = me.lrow_lower_bound(k0 + kb);
      const int mtrail = static_cast<int>(me.my_rows.size()) - urow0;
      if (mtrail > 0) {
        auto l10 = lpanel.block(urow0 - mrow0, 0, mtrail, kb);
        auto a11 = me.loc.block(urow0, ncol0, mtrail, ntrail);
        linalg::schur_update(a11, l10, u01.view());
      }
    }
  }

  // ---- Out-of-band result collection (not part of measured volume) -----
  if (numeric && params.gathered != nullptr) {
    for (std::size_t i = 0; i < me.my_rows.size(); ++i)
      for (std::size_t j = 0; j < me.my_cols.size(); ++j)
        (*params.gathered)(me.my_rows[i], me.my_cols[j]) =
            me.loc(static_cast<int>(i), static_cast<int>(j));
  }
  if (params.ipiv_out != nullptr && comm.rank() == params.base_rank)
    *params.ipiv_out = std::move(ipiv);
}

LuResult ScaLapack2D::run(const linalg::Matrix* a, const LuConfig& cfg) {
  CONFLUX_EXPECTS(cfg.n >= 1 && cfg.p >= 1);
  CONFLUX_EXPECTS(cfg.mode == Mode::DryRun || a != nullptr);

  const Grid2D g = slate_ ? grid::choose_grid_2d_near_square(cfg.p)
                          : grid::choose_grid_2d_all_ranks(cfg.p);
  const int requested_nb = cfg.block > 0 ? cfg.block : (slate_ ? 16 : 64);
  const int nb = grid::choose_block_size(cfg.n, 1, requested_nb);

  Scalapack2DParams params;
  params.n = cfg.n;
  params.nb = nb;
  params.g = g;
  params.base_rank = 0;
  params.numeric = (cfg.mode == Mode::Numeric);
  params.seed = cfg.seed;
  params.a = a;
  params.tel = cfg.telemetry;

  linalg::Matrix gathered;
  std::vector<int> ipiv;
  const bool verify = params.numeric && cfg.verify;
  const bool gather = params.numeric && (cfg.verify || cfg.keep_factors);
  if (gather) {
    gathered = linalg::Matrix(cfg.n, cfg.n);
    params.gathered = &gathered;
    params.ipiv_out = &ipiv;
  }

  simnet::Network net(g.active(), cfg.fabric);
  factor::attach_instruments(net, cfg);
  Stopwatch timer;
  simnet::run_spmd(net,
                   [&](simnet::Comm& comm) { scalapack2d_body(comm, params); });

  LuResult result;
  result.seconds = timer.seconds();
  factor::fill_comm_stats(result, net, g.active(), cfg.p);
  result.grid = g.to_string();
  result.block = nb;
  if (verify) {
    result.residual = linalg::lu_residual(*a, gathered.view(), ipiv);
    result.growth = linalg::growth_factor(*a, gathered.view());
    result.residual_eps = factor::residual_in_eps(result.residual);
    std::vector<double> u_diag(static_cast<std::size_t>(cfg.n));
    for (int i = 0; i < cfg.n; ++i)
      u_diag[static_cast<std::size_t>(i)] = gathered(i, i);
    result.pivot_stats = factor::pivot_stats(
        linalg::pivots_to_permutation(ipiv, cfg.n), u_diag);
  }
  if (params.numeric && cfg.keep_factors) {
    result.permutation = linalg::pivots_to_permutation(ipiv, cfg.n);
    result.factors =
        std::make_shared<linalg::Matrix>(std::move(gathered));
  }
  return result;
}

}  // namespace conflux::lu
