#include "lu/block25d.hpp"

#include <algorithm>
#include <cmath>

#include "grid/block_cyclic.hpp"
#include "grid/grid_opt.hpp"
#include "linalg/blas.hpp"
#include "linalg/panel.hpp"
#include "factor/step_records.hpp"
#include "simnet/collectives.hpp"
#include "simnet/spmd.hpp"
#include "support/random.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace conflux::lu {

namespace {

using factor::assemble_factors;
using factor::AssembledFactors;
using factor::make_step_records;
using factor::masked_growth_factor;
using factor::masked_lu_residual;
using factor::StepRecord;
using grid::chunk_of;
using grid::chunk_range;
using grid::Coord3;
using grid::Grid3D;
using linalg::Matrix;
using simnet::Comm;
using simnet::make_tag;
using simnet::Tag;

/// Resolved run parameters shared by every rank.
struct Plan {
  int n = 0;
  int v = 0;
  int steps = 0;
  Grid3D g{1, 1, 1};
  int active = 0;
  bool numeric = true;
  std::uint64_t seed = 42;
  PanelTournament tournament = PanelTournament::Butterfly;
  telemetry::TelemetryBoard* tel = nullptr;  ///< ConfScope board (nullable)
};

/// Per-rank mutable state.
struct RankState {
  Coord3 me;
  // Tile storage (numeric only): tiles It % Px == me.px, Jt % Py == me.py,
  // packed [(It/Px) * ltc + (Jt/Py)] * v^2, row-major within a tile.
  std::vector<double> tiles;
  int ltr = 0, ltc = 0;
  // Globally consistent pivot bookkeeping.
  std::vector<std::uint8_t> pivoted;
  std::vector<int> pivot_order;
};

/// Pointer to the (It, Jt) tile owned by this rank.
double* tile_at(const Plan& plan, RankState& st, int tile_row, int tile_col) {
  const int lr = tile_row / plan.g.px_extent();
  const int lc = tile_col / plan.g.py_extent();
  return st.tiles.data() +
         (static_cast<std::size_t>(lr) * st.ltc + lc) *
             (static_cast<std::size_t>(plan.v) * plan.v);
}

/// Element reference inside the owned tile covering (row, col).
double& elem_at(const Plan& plan, RankState& st, int row, int col) {
  double* t = tile_at(plan, st, row / plan.v, col / plan.v);
  return t[static_cast<std::size_t>(row % plan.v) * plan.v + col % plan.v];
}

/// Everything the ranks derive per outer step from the shared pivot state.
struct StepView {
  int t = 0;
  int l_star = 0;  ///< reducing layer for this step
  int py_c = 0;    ///< process column owning panel column t
  int px_c = 0;    ///< process row anchoring the A01 aggregators
  std::vector<int> rem;                    ///< unpivoted rows, ascending
  std::vector<std::vector<int>> rows_by_px;  ///< rem split by tile-row owner
};

StepView make_step_view(const Plan& plan, const RankState& st, int t) {
  StepView sv;
  sv.t = t;
  sv.l_star = t % plan.g.layers();
  sv.py_c = t % plan.g.py_extent();
  sv.px_c = t % plan.g.px_extent();
  sv.rem.reserve(static_cast<std::size_t>(plan.n - t * plan.v));
  sv.rows_by_px.resize(static_cast<std::size_t>(plan.g.px_extent()));
  for (int r = 0; r < plan.n; ++r) {
    if (st.pivoted[static_cast<std::size_t>(r)]) continue;
    sv.rem.push_back(r);
    sv.rows_by_px[static_cast<std::size_t>((r / plan.v) %
                                           plan.g.px_extent())]
        .push_back(r);
  }
  return sv;
}

/// ---- Step 1: reduce panel column t across layers onto l_star -------------
void reduce_panel_column(const Plan& plan, RankState& st, const Comm& comm,
                         const StepView& sv) {
  if (plan.g.layers() == 1) return;
  if (st.me.py != sv.py_c) return;
  const auto& mine = sv.rows_by_px[static_cast<std::size_t>(st.me.px)];
  if (mine.empty()) return;
  const int v = plan.v;
  const int col0 = sv.t * v;

  if (st.me.l != sv.l_star) {
    const Tag tag = make_tag(1, static_cast<std::uint32_t>(sv.t),
                             static_cast<std::uint32_t>(st.me.l));
    const int dst = plan.g.rank_of({st.me.px, sv.py_c, sv.l_star});
    if (plan.numeric) {
      std::vector<double> buf;
      buf.reserve(mine.size() * static_cast<std::size_t>(v));
      for (int r : mine) {
        double* base = &elem_at(plan, st, r, col0);
        buf.insert(buf.end(), base, base + v);
        std::fill(base, base + v, 0.0);
      }
      comm.send(dst, tag, std::move(buf));
    } else {
      comm.send_ghost_doubles(dst, tag,
                              mine.size() * static_cast<std::size_t>(v));
    }
  } else {
    for (int l = 0; l < plan.g.layers(); ++l) {
      if (l == sv.l_star) continue;
      const Tag tag = make_tag(1, static_cast<std::uint32_t>(sv.t),
                               static_cast<std::uint32_t>(l));
      const int src = plan.g.rank_of({st.me.px, sv.py_c, l});
      if (plan.numeric) {
        // Accumulate straight out of the shared payload; no copy-out.
        const simnet::BufferView buf = comm.recv_view(src, tag);
        const double* in = buf.data();
        for (int r : mine) {
          double* base = &elem_at(plan, st, r, col0);
          for (int k = 0; k < v; ++k) base[k] += *in++;
        }
      } else {
        (void)comm.recv_ghost(src, tag);
      }
    }
  }
}

/// ---- Step 2: tournament pivoting over the Px panel owners ---------------
/// Butterfly: returns (pivots, a00) on every rank with px < fold-size.
/// Tree: returns them on the tree root (px == 0) only. Everyone else
/// learns them from the step-3 broadcast.
struct TournamentOutcome {
  std::vector<int> pivots;
  Matrix a00;
  bool have = false;
};

TournamentOutcome run_tournament(const Plan& plan, RankState& st,
                                 const Comm& comm, const StepView& sv) {
  TournamentOutcome out;
  const int px_count = plan.g.px_extent();
  const int v = plan.v;

  if (!plan.numeric) {
    // Ghost traffic replays the exact message sizes of the numeric
    // tournament (butterfly or tree); the synthetic winners themselves are
    // precomputed once by the host (see DrySchedule).
    if (st.me.py == sv.py_c && st.me.l == sv.l_star) {
      std::vector<std::size_t> size_of(
          static_cast<std::size_t>(px_count));
      for (int px = 0; px < px_count; ++px)
        size_of[static_cast<std::size_t>(px)] = std::min<std::size_t>(
            static_cast<std::size_t>(v),
            sv.rows_by_px[static_cast<std::size_t>(px)].size());
      auto pack_bytes = [v](std::size_t count) {
        return (2 + count * (1 + static_cast<std::size_t>(v))) *
               sizeof(double);
      };
      const int px = st.me.px;
      if (plan.tournament == PanelTournament::Tree) {
        // Replay the reduction tree: every rank walks the global schedule,
        // ghosting its own edge and updating the size recursion
        // (merged count saturates at v, exactly like tournament_round).
        for (const linalg::TreeStep& step :
             linalg::reduction_tree_schedule(px_count)) {
          const Tag tag = make_tag(2, static_cast<std::uint32_t>(sv.t),
                                   static_cast<std::uint32_t>(step.round));
          if (step.src == px)
            comm.send_ghost(
                plan.g.rank_of({step.dst, sv.py_c, sv.l_star}), tag,
                pack_bytes(size_of[static_cast<std::size_t>(step.src)]));
          else if (step.dst == px)
            (void)comm.recv_ghost(
                plan.g.rank_of({step.src, sv.py_c, sv.l_star}), tag);
          size_of[static_cast<std::size_t>(step.dst)] =
              std::min<std::size_t>(
                  static_cast<std::size_t>(v),
                  size_of[static_cast<std::size_t>(step.dst)] +
                      size_of[static_cast<std::size_t>(step.src)]);
        }
        out.have = true;
        return out;
      }
      int fold = 1;
      while (fold * 2 <= px_count) fold *= 2;
      // Fold-in phase (ghost sizes follow the global size recursion).
      if (px >= fold) {
        comm.send_ghost(
            plan.g.rank_of({px - fold, sv.py_c, sv.l_star}),
            make_tag(2, static_cast<std::uint32_t>(sv.t), 0),
            pack_bytes(size_of[static_cast<std::size_t>(px)]));
      } else if (px + fold < px_count) {
        (void)comm.recv_ghost(
            plan.g.rank_of({px + fold, sv.py_c, sv.l_star}),
            make_tag(2, static_cast<std::uint32_t>(sv.t), 0));
      }
      for (int q = 0; q + fold < px_count; ++q)
        size_of[static_cast<std::size_t>(q)] = std::min<std::size_t>(
            static_cast<std::size_t>(v),
            size_of[static_cast<std::size_t>(q)] +
                size_of[static_cast<std::size_t>(q + fold)]);
      // Butterfly phase (all ranks replay the global size recursion).
      if (px < fold) {
        unsigned round = 1;
        for (int mask = 1; mask < fold; mask <<= 1, ++round) {
          const int partner = px ^ mask;
          comm.send_ghost(
              plan.g.rank_of({partner, sv.py_c, sv.l_star}),
              make_tag(2, static_cast<std::uint32_t>(sv.t), round),
              pack_bytes(size_of[static_cast<std::size_t>(px)]));
          (void)comm.recv_ghost(
              plan.g.rank_of({partner, sv.py_c, sv.l_star}),
              make_tag(2, static_cast<std::uint32_t>(sv.t), round));
          std::vector<std::size_t> next = size_of;
          for (int q = 0; q < fold; ++q)
            next[static_cast<std::size_t>(q)] = std::min<std::size_t>(
                static_cast<std::size_t>(v),
                size_of[static_cast<std::size_t>(q)] +
                    size_of[static_cast<std::size_t>(q ^ mask)]);
          size_of = std::move(next);
        }
      }
    }
    // Winners come from the host-precomputed schedule (filled in by the
    // caller); nothing further to do here.
    out.have = true;
    return out;
  }

  // --- numeric tournament --------------------------------------------------
  if (st.me.py != sv.py_c || st.me.l != sv.l_star) return out;
  const int px = st.me.px;
  const int col0 = sv.t * v;

  linalg::PivotCandidates cand;
  {
    const auto& mine = sv.rows_by_px[static_cast<std::size_t>(px)];
    linalg::PivotCandidates local;
    local.rows = mine;
    local.values = Matrix(static_cast<int>(mine.size()), v);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      const double* base = &elem_at(plan, st, mine[i], col0);
      auto dst = local.values.row(static_cast<int>(i));
      std::copy(base, base + v, dst.begin());
    }
    cand = linalg::select_best(local, v);
  }

  if (plan.tournament == PanelTournament::Tree) {
    // TSLU reduction tree: odd multiples of the round's gap send their
    // candidates down and are done (the step-3 broadcast tells them the
    // winners); receivers merge in global row order and continue. Only the
    // root finalizes.
    for (const linalg::TreeStep& step :
         linalg::reduction_tree_schedule(px_count)) {
      const Tag tag = make_tag(2, static_cast<std::uint32_t>(sv.t),
                               static_cast<std::uint32_t>(step.round));
      if (step.src == px) {
        comm.send(plan.g.rank_of({step.dst, sv.py_c, sv.l_star}), tag,
                  linalg::pack_candidates(cand));
        return out;  // learns the pivots from the step-3 broadcast
      }
      if (step.dst == px) {
        const auto other = linalg::unpack_candidates(
            comm.recv(plan.g.rank_of({step.src, sv.py_c, sv.l_star}), tag));
        cand = linalg::tournament_round(cand, other, v);
      }
    }
    // Every participant > 0 sent exactly once above; only the root reaches
    // this point.
    const linalg::TournamentResult result = linalg::finalize_tournament(cand);
    out.pivots = result.pivot_rows;
    out.a00 = result.a00;
    out.have = true;
    return out;
  }

  int fold = 1;
  while (fold * 2 <= px_count) fold *= 2;

  if (px >= fold) {
    comm.send(plan.g.rank_of({px - fold, sv.py_c, sv.l_star}),
              make_tag(2, static_cast<std::uint32_t>(sv.t), 0),
              linalg::pack_candidates(cand));
    return out;  // learns the pivots from the step-3 broadcast
  }
  if (px + fold < px_count) {
    const auto other = linalg::unpack_candidates(
        comm.recv(plan.g.rank_of({px + fold, sv.py_c, sv.l_star}),
                  make_tag(2, static_cast<std::uint32_t>(sv.t), 0)));
    cand = linalg::tournament_round(cand, other, v);
  }
  unsigned round = 1;
  for (int mask = 1; mask < fold; mask <<= 1, ++round) {
    const int partner_rank =
        plan.g.rank_of({px ^ mask, sv.py_c, sv.l_star});
    const Tag tag = make_tag(2, static_cast<std::uint32_t>(sv.t), round);
    comm.send(partner_rank, tag, linalg::pack_candidates(cand));
    const auto other = linalg::unpack_candidates(comm.recv(partner_rank, tag));
    cand = linalg::tournament_round(cand, other, v);
  }

  const linalg::TournamentResult result = linalg::finalize_tournament(cand);
  out.pivots = result.pivot_rows;
  out.a00 = result.a00;
  out.have = true;
  return out;
}

/// ---- Step 3: broadcast pivots + A00 to all active ranks ------------------
void broadcast_pivot_block(const Plan& plan, RankState& st, const Comm& comm,
                           const StepView& sv, TournamentOutcome& outcome,
                           const simnet::Group& world) {
  const int v = plan.v;
  const int root = plan.g.rank_of({0, sv.py_c, sv.l_star});
  if (plan.numeric) {
    std::vector<int> piv =
        outcome.have ? outcome.pivots : std::vector<int>();
    piv.resize(static_cast<std::size_t>(v), -1);
    simnet::bcast_ints(comm, world, root, piv,
                       make_tag(3, static_cast<std::uint32_t>(sv.t), 0));
    std::vector<double> a00_flat;
    if (outcome.have)
      a00_flat.assign(outcome.a00.data(),
                      outcome.a00.data() + outcome.a00.size());
    else
      a00_flat.resize(static_cast<std::size_t>(v) * v);
    simnet::bcast(comm, world, root, a00_flat,
                  make_tag(3, static_cast<std::uint32_t>(sv.t), 1));
    outcome.pivots = std::move(piv);
    outcome.a00 = Matrix(v, v);
    std::copy(a00_flat.begin(), a00_flat.end(), outcome.a00.data());
    outcome.have = true;
  } else {
    (void)simnet::bcast_ghost(
        comm, world, root,
        static_cast<std::size_t>(v) * sizeof(int) +
            static_cast<std::size_t>(v) * v * sizeof(double),
        make_tag(3, static_cast<std::uint32_t>(sv.t), 0));
    // outcome.pivots already carries the synthetic winners on every rank;
    // dry runs keep the pivot bookkeeping host-side (DryStep), so there is
    // no per-rank state to update.
    return;
  }
  for (int r : outcome.pivots) {
    st.pivoted[static_cast<std::size_t>(r)] = 1;
    st.pivot_order.push_back(r);
  }
}

/// Rows remaining after this step's pivots are masked out, and their split
/// by tile-row owner.
struct Rem2 {
  std::vector<int> rows;                     ///< ascending
  std::vector<std::vector<int>> by_px;       ///< split by tile-row owner
  std::vector<int> px_of_pos;                ///< owner px per position
};

Rem2 make_rem2(const Plan& plan, const StepView& sv,
               const std::vector<int>& pivots) {
  std::vector<std::uint8_t> is_piv(static_cast<std::size_t>(plan.n), 0);
  for (int r : pivots) is_piv[static_cast<std::size_t>(r)] = 1;
  Rem2 rem2;
  rem2.by_px.resize(static_cast<std::size_t>(plan.g.px_extent()));
  for (int r : sv.rem) {
    if (is_piv[static_cast<std::size_t>(r)]) continue;
    const int px = (r / plan.v) % plan.g.px_extent();
    rem2.rows.push_back(r);
    rem2.px_of_pos.push_back(px);
    rem2.by_px[static_cast<std::size_t>(px)].push_back(r);
  }
  return rem2;
}

/// Host-precomputed per-step schedule for dry runs: with synthetic pivots
/// the index sets of every step are known up front, so ranks share one
/// read-only copy instead of recomputing O(N) scans per rank per step. The
/// P threads of a dry run spend their time in the fabric, not in index
/// bookkeeping — which is what the simulator is supposed to measure.
struct DryStep {
  StepView sv;
  std::vector<int> pivots;
  Rem2 rem2;  ///< post-pivot row split, shared by all ranks
  std::vector<std::vector<int>> qs_of_px;        ///< pivot q's per row owner
  std::vector<std::vector<int>> cols_by_py;      ///< trailing cols per py
  std::vector<std::vector<int>> tile_cols_by_py; ///< trailing tile cols / py
};

/// ---- Steps 4 + 7: A10 triangular solve at the row leaders ----------------
/// The reduced panel column already lives, grouped by tile-row owner px, on
/// the column owners (px, py_c, l_star). We use that grouping as the 1D
/// block-row layout of Algorithm 1 (a px-aligned assignment costs no
/// redistribution), so step 7's triangular solve runs in place on the Px
/// row leaders.
struct A10Panel {
  Matrix full;  ///< rows2_by_px[me.px] x v, solved (leaders, numeric mode)
  bool leader = false;
};

A10Panel solve_a10_at_leaders(const Plan& plan, RankState& st,
                              const Comm& comm, const StepView& sv,
                              const Rem2& rem2, const Matrix& a00,
                              std::vector<StepRecord>* records) {
  (void)comm;
  A10Panel panel;
  const int v = plan.v;
  const int col0 = sv.t * v;
  if (st.me.py != sv.py_c || st.me.l != sv.l_star) return panel;
  panel.leader = true;
  const auto& mine = rem2.by_px[static_cast<std::size_t>(st.me.px)];
  if (mine.empty() || !plan.numeric) return panel;

  panel.full = Matrix(static_cast<int>(mine.size()), v);
  for (std::size_t i = 0; i < mine.size(); ++i) {
    const double* base = &elem_at(plan, st, mine[i], col0);
    auto dst = panel.full.row(static_cast<int>(i));
    std::copy(base, base + v, dst.begin());
  }
  // Step 7: A10 := A10 * U00^{-1} (right, upper, non-unit).
  linalg::trsm_right(linalg::Triangle::Upper, linalg::Diag::NonUnit,
                     a00.view(), panel.full.view());
  if (records != nullptr) {
    StepRecord& rec = (*records)[static_cast<std::size_t>(sv.t)];
    for (std::size_t i = 0; i < mine.size(); ++i) {
      auto srow = panel.full.row(static_cast<int>(i));
      auto drow = rec.a10.row(mine[i]);
      std::copy(srow.begin(), srow.end(), drow.begin());
    }
  }
  return panel;
}

/// ---- Steps 5 + 9: A01 reduce to aggregators, triangular solve ------------
/// Each process column's pivot-row partials are summed (across tile-row
/// owners and layers) onto the aggregator (px_c, py, l_star), which then
/// owns the true v x (its trailing columns) strip and solves it in place —
/// the py-aligned 1D block-column layout of Algorithm 1.
struct A01Panel {
  Matrix agg;                 ///< v x my trailing cols (aggregators, numeric)
  std::vector<int> my_cols;   ///< this rank's trailing columns (all ranks)
  bool aggregator = false;
};

A01Panel solve_a01_at_aggregators(const Plan& plan, RankState& st,
                                  const Comm& comm, const StepView& sv,
                                  const std::vector<int>& pivots,
                                  const Matrix& a00,
                                  std::vector<StepRecord>* records,
                                  const DryStep* dry) {
  A01Panel panel;
  const int v = plan.v;
  const int n = plan.n;
  const int trail0 = (sv.t + 1) * v;
  if (n - trail0 == 0) return panel;
  const int px_count = plan.g.px_extent();
  const int py_count = plan.g.py_extent();

  // My trailing columns (the ones my tiles cover) — needed by every rank
  // for the later multicast and Schur update. Dry runs reuse the shared
  // precomputed split.
  if (dry != nullptr) {
    panel.my_cols = dry->cols_by_py[static_cast<std::size_t>(st.me.py)];
  } else {
    for (int col = trail0; col < n; ++col)
      if ((col / v) % py_count == st.me.py) panel.my_cols.push_back(col);
  }

  // Pivot q's grouped by the tile-row owner of their row.
  std::vector<std::vector<int>> qs_local;
  if (dry == nullptr) {
    qs_local.resize(static_cast<std::size_t>(px_count));
    for (int q = 0; q < v; ++q)
      qs_local[static_cast<std::size_t>(
                   (pivots[static_cast<std::size_t>(q)] / v) % px_count)]
          .push_back(q);
  }
  const std::vector<std::vector<int>>& qs_of_px =
      dry != nullptr ? dry->qs_of_px : qs_local;

  // My trailing tile columns, for the send layout.
  const int tiles_total = n / v;
  std::vector<int> tile_cols_local;
  if (dry == nullptr) {
    for (int jt = sv.t + 1; jt < tiles_total; ++jt)
      if (jt % py_count == st.me.py) tile_cols_local.push_back(jt);
  }
  const std::vector<int>& my_tile_cols =
      dry != nullptr ? dry->tile_cols_by_py[static_cast<std::size_t>(st.me.py)]
                     : tile_cols_local;

  // Phase 1 (step 5): everyone holding pivot-row partials ships them to the
  // aggregator of its process column.
  const auto& my_qs = qs_of_px[static_cast<std::size_t>(st.me.px)];
  const std::size_t seg_count = my_qs.size() * my_tile_cols.size();
  if (seg_count > 0) {
    // Step 5 is the lazy cross-layer reduction of the pivot rows; its
    // traffic belongs to the layer_reduction phase even though the engine
    // reaches it from inside the TRSM step block (nested span wins).
    const telemetry::ScopedSpan span(plan.tel, comm.rank(),
                                     telemetry::kLayerReduction, sv.t);
    const int dst = plan.g.rank_of({sv.px_c, st.me.py, sv.l_star});
    const Tag tag = make_tag(5, static_cast<std::uint32_t>(sv.t), 0);
    if (plan.numeric) {
      std::vector<double> buf;
      buf.reserve(seg_count * static_cast<std::size_t>(v));
      for (int jt : my_tile_cols)
        for (int q : my_qs) {
          const double* base = &elem_at(
              plan, st, pivots[static_cast<std::size_t>(q)], jt * v);
          buf.insert(buf.end(), base, base + v);
        }
      comm.send(dst, tag, std::move(buf));
    } else {
      comm.send_ghost_doubles(dst, tag,
                              seg_count * static_cast<std::size_t>(v));
    }
  }

  panel.aggregator = (st.me.px == sv.px_c && st.me.l == sv.l_star);
  if (!panel.aggregator || my_tile_cols.empty()) return panel;

  const int my_width = static_cast<int>(panel.my_cols.size());
  if (plan.numeric) panel.agg = Matrix(v, my_width);
  {
    // The aggregation receives are the other half of the step-5 lazy
    // reduction (see the send above).
    const telemetry::ScopedSpan span(plan.tel, comm.rank(),
                                     telemetry::kLayerReduction, sv.t);
    for (int px = 0; px < px_count; ++px) {
      if (qs_of_px[static_cast<std::size_t>(px)].empty()) continue;
      for (int l = 0; l < plan.g.layers(); ++l) {
        const int src = plan.g.rank_of({px, st.me.py, l});
        const Tag tag = make_tag(5, static_cast<std::uint32_t>(sv.t), 0);
        if (plan.numeric) {
          const simnet::BufferView buf = comm.recv_view(src, tag);
          const double* in = buf.data();
          for (std::size_t jc = 0; jc < my_tile_cols.size(); ++jc)
            for (int q : qs_of_px[static_cast<std::size_t>(px)]) {
              auto row = panel.agg.row(q);
              for (int k = 0; k < v; ++k)
                row[jc * static_cast<std::size_t>(v) + k] += *in++;
            }
        } else {
          (void)comm.recv_ghost(src, tag);
        }
      }
    }
  }
  if (plan.numeric) {
    // Step 9: A01 := L00^{-1} * A01 (left, lower, unit).
    linalg::trsm_left(linalg::Triangle::Lower, linalg::Diag::Unit, a00.view(),
                      panel.agg.view());
    if (records != nullptr) {
      StepRecord& rec = (*records)[static_cast<std::size_t>(sv.t)];
      for (int j = 0; j < my_width; ++j)
        for (int q = 0; q < v; ++q)
          rec.a01(q, panel.my_cols[static_cast<std::size_t>(j)]) =
              panel.agg(q, j);
    }
  }
  return panel;
}

/// ---- Steps 8 / 10: layer-sliced panel multicast --------------------------
/// A10: row leaders (px, py_c, l_star) -> every (px, *, *), sending each
/// layer only its v/c k-slice. Returns my slice.
struct A10Slice {
  std::vector<int> rows;  ///< global rows (this rank's tile rows in rem2)
  Matrix values;          ///< rows x slice_width
  grid::Range slice;      ///< k-range within the v panel columns
};

A10Slice multicast_a10(const Plan& plan, RankState& st, const Comm& comm,
                       const StepView& sv, const Rem2& rem2,
                       const A10Panel& panel) {
  A10Slice out;
  const int v = plan.v;
  const int c = plan.g.layers();
  out.slice = chunk_range(v, c, st.me.l);
  if (rem2.rows.empty()) return out;

  const auto& group_rows = rem2.by_px[static_cast<std::size_t>(st.me.px)];
  if (panel.leader && !group_rows.empty()) {
    // One packed slice per layer, multicast to the whole process row: the
    // py_count recipients share a single immutable buffer.
    std::vector<int> dsts(static_cast<std::size_t>(plan.g.py_extent()));
    for (int l = 0; l < c; ++l) {
      const auto slice = chunk_range(v, c, l);
      if (slice.size() == 0) continue;
      for (int py = 0; py < plan.g.py_extent(); ++py)
        dsts[static_cast<std::size_t>(py)] =
            plan.g.rank_of({st.me.px, py, l});
      const Tag tag = make_tag(8, static_cast<std::uint32_t>(sv.t), 0);
      if (plan.numeric) {
        std::vector<double> buf;
        buf.reserve(group_rows.size() *
                    static_cast<std::size_t>(slice.size()));
        for (std::size_t i = 0; i < group_rows.size(); ++i) {
          const double* base = panel.full.data() +
                               i * static_cast<std::size_t>(v) + slice.begin;
          buf.insert(buf.end(), base, base + slice.size());
        }
        comm.multicast(dsts, tag,
                       simnet::make_shared_buffer(std::move(buf)));
      } else {
        comm.multicast_ghost(
            dsts, tag,
            group_rows.size() * static_cast<std::size_t>(slice.size()) *
                sizeof(double));
      }
    }
  }

  if (!group_rows.empty() && out.slice.size() > 0) {
    const int src = plan.g.rank_of({st.me.px, sv.py_c, sv.l_star});
    const Tag tag = make_tag(8, static_cast<std::uint32_t>(sv.t), 0);
    if (plan.numeric) {
      out.rows = group_rows;
      const simnet::BufferView buf = comm.recv_view(src, tag);
      out.values =
          Matrix(static_cast<int>(group_rows.size()), out.slice.size());
      std::copy(buf.data(), buf.data() + buf.size(), out.values.data());
    } else {
      (void)comm.recv_ghost(src, tag);
    }
  }
  return out;
}

/// A01: aggregators (px_c, py, l_star) -> every (*, py, *) with the l-th
/// k-slice. Returns my slice.
struct A01Slice {
  std::vector<int> cols;  ///< global columns (this rank's trailing columns)
  Matrix values;          ///< slice_height x cols
  grid::Range slice;
};

A01Slice multicast_a01(const Plan& plan, RankState& st, const Comm& comm,
                       const StepView& sv, const A01Panel& panel) {
  A01Slice out;
  const int v = plan.v;
  const int c = plan.g.layers();
  const int trail0 = (sv.t + 1) * v;
  out.slice = chunk_range(v, c, st.me.l);
  if (plan.n - trail0 == 0) return out;

  if (panel.aggregator && !panel.my_cols.empty()) {
    // One packed slice per layer, multicast down the process column.
    std::vector<int> dsts(static_cast<std::size_t>(plan.g.px_extent()));
    for (int l = 0; l < c; ++l) {
      const auto slice = chunk_range(v, c, l);
      if (slice.size() == 0) continue;
      for (int px = 0; px < plan.g.px_extent(); ++px)
        dsts[static_cast<std::size_t>(px)] =
            plan.g.rank_of({px, st.me.py, l});
      const Tag tag = make_tag(10, static_cast<std::uint32_t>(sv.t), 0);
      if (plan.numeric) {
        std::vector<double> buf;
        buf.reserve(static_cast<std::size_t>(slice.size()) *
                    panel.my_cols.size());
        for (int q = slice.begin; q < slice.end; ++q) {
          auto row = panel.agg.row(q);
          buf.insert(buf.end(), row.begin(), row.end());
        }
        comm.multicast(dsts, tag,
                       simnet::make_shared_buffer(std::move(buf)));
      } else {
        comm.multicast_ghost(dsts, tag,
                             static_cast<std::size_t>(slice.size()) *
                                 panel.my_cols.size() * sizeof(double));
      }
    }
  }

  if (!panel.my_cols.empty() && out.slice.size() > 0) {
    const int src = plan.g.rank_of({sv.px_c, st.me.py, sv.l_star});
    const Tag tag = make_tag(10, static_cast<std::uint32_t>(sv.t), 0);
    if (plan.numeric) {
      out.cols = panel.my_cols;
      const simnet::BufferView buf = comm.recv_view(src, tag);
      out.values =
          Matrix(out.slice.size(), static_cast<int>(out.cols.size()));
      std::copy(buf.data(), buf.data() + buf.size(), out.values.data());
    } else {
      (void)comm.recv_ghost(src, tag);
    }
  }
  return out;
}


/// ---- Step 11: local Schur update with the layer's k-slice ---------------
void schur_update_local(const Plan& plan, RankState& st, const A10Slice& a10,
                        const A01Slice& a01) {
  if (!plan.numeric) return;
  if (a10.rows.empty() || a01.cols.empty() || a10.slice.size() == 0) return;
  CONFLUX_ASSERT(a10.slice.begin == a01.slice.begin &&
                 a10.slice.end == a01.slice.end);

  Matrix prod(static_cast<int>(a10.rows.size()),
              static_cast<int>(a01.cols.size()));
  linalg::gemm(1.0, a10.values.view(), a01.values.view(), 0.0, prod.view());
  for (std::size_t i = 0; i < a10.rows.size(); ++i) {
    auto pr = prod.row(static_cast<int>(i));
    for (std::size_t j = 0; j < a01.cols.size(); ++j)
      elem_at(plan, st, a10.rows[i], a01.cols[j]) -= pr[j];
  }
}

}  // namespace

LuResult run_block25d(const linalg::Matrix* a, const LuConfig& cfg,
                      PanelTournament tournament) {
  CONFLUX_EXPECTS(cfg.n >= 1 && cfg.p >= 1);
  CONFLUX_EXPECTS(cfg.mode == Mode::DryRun || a != nullptr);

  const double mem = cfg.mem_elements > 0
                         ? cfg.mem_elements
                         : static_cast<double>(cfg.n) * cfg.n /
                               std::pow(static_cast<double>(cfg.p), 2.0 / 3.0);

  Plan plan;
  plan.n = cfg.n;
  plan.numeric = (cfg.mode == Mode::Numeric);
  plan.seed = cfg.seed;
  plan.tournament = tournament;
  if (cfg.force_layers > 0 || !cfg.grid_optimization) {
    int c = cfg.force_layers > 0
                ? cfg.force_layers
                : std::max(1, static_cast<int>(std::lround(
                                  cfg.p * mem /
                                  (static_cast<double>(cfg.n) * cfg.n))));
    c = std::min(c, cfg.p);
    const int front = std::max(1, cfg.p / c);
    const int px = std::max(1, static_cast<int>(std::sqrt(
                                   static_cast<double>(front))));
    plan.g = Grid3D(px, std::max(1, front / px), c);
  } else {
    plan.g = grid::optimize_grid(cfg.p, cfg.n, mem).grid;
  }
  plan.active = plan.g.active();
  plan.v = cfg.block > 0
               ? cfg.block
               : grid::choose_block_size(
                     cfg.n, plan.g.layers(),
                     grid::default_block_target(cfg.n, plan.g.layers()));
  CONFLUX_EXPECTS_MSG(cfg.n % plan.v == 0,
                      "block size " << plan.v << " must divide N=" << cfg.n);
  plan.steps = cfg.n / plan.v;

  std::vector<StepRecord> records;
  const bool want_records = plan.numeric && (cfg.verify || cfg.keep_factors);
  if (want_records) records = make_step_records(plan.n, plan.v);

  // Dry runs: precompute the pivot schedule and per-step index sets once.
  std::vector<DryStep> dry_sched;
  if (!plan.numeric) {
    RankState ghost;
    ghost.pivoted.assign(static_cast<std::size_t>(plan.n), 0);
    dry_sched.reserve(static_cast<std::size_t>(plan.steps));
    const int px_count = plan.g.px_extent();
    const int py_count = plan.g.py_extent();
    const int tiles_total = plan.n / plan.v;
    for (int t = 0; t < plan.steps; ++t) {
      DryStep ds;
      ds.sv = make_step_view(plan, ghost, t);
      ds.pivots = synthetic_pivots(ghost.pivoted, plan.n, plan.v, t, plan.seed);
      for (int r : ds.pivots) ghost.pivoted[static_cast<std::size_t>(r)] = 1;
      ds.rem2 = make_rem2(plan, ds.sv, ds.pivots);
      ds.qs_of_px.resize(static_cast<std::size_t>(px_count));
      for (int q = 0; q < plan.v; ++q)
        ds.qs_of_px[static_cast<std::size_t>(
                        (ds.pivots[static_cast<std::size_t>(q)] / plan.v) %
                        px_count)]
            .push_back(q);
      ds.cols_by_py.resize(static_cast<std::size_t>(py_count));
      ds.tile_cols_by_py.resize(static_cast<std::size_t>(py_count));
      for (int jt = t + 1; jt < tiles_total; ++jt) {
        auto& cols = ds.cols_by_py[static_cast<std::size_t>(jt % py_count)];
        for (int col = jt * plan.v; col < (jt + 1) * plan.v; ++col)
          cols.push_back(col);
        ds.tile_cols_by_py[static_cast<std::size_t>(jt % py_count)]
            .push_back(jt);
      }
      dry_sched.push_back(std::move(ds));
    }
  }

  simnet::Network net(plan.active, cfg.fabric);
  factor::attach_instruments(net, cfg);
  plan.tel = cfg.telemetry;
  const simnet::Group world = simnet::Group::iota(plan.active);

  Stopwatch timer;
  simnet::run_spmd(net, [&](Comm& comm) {
    RankState st;
    st.me = plan.g.coord_of(comm.rank());
    st.pivoted.assign(static_cast<std::size_t>(plan.n), 0);

    if (plan.numeric) {
      // Tile storage; layer 0 holds A, other layers hold zero partial sums.
      const int tiles_total = plan.n / plan.v;
      st.ltr = (tiles_total - st.me.px + plan.g.px_extent() - 1) /
               plan.g.px_extent();
      st.ltc = (tiles_total - st.me.py + plan.g.py_extent() - 1) /
               plan.g.py_extent();
      st.tiles.assign(static_cast<std::size_t>(st.ltr) * st.ltc * plan.v *
                          plan.v,
                      0.0);
      if (st.me.l == 0) {
        for (int it = st.me.px; it < tiles_total; it += plan.g.px_extent())
          for (int jt = st.me.py; jt < tiles_total;
               jt += plan.g.py_extent()) {
            double* t = tile_at(plan, st, it, jt);
            for (int i = 0; i < plan.v; ++i)
              for (int j = 0; j < plan.v; ++j)
                t[static_cast<std::size_t>(i) * plan.v + j] =
                    (*a)(it * plan.v + i, jt * plan.v + j);
          }
      }
    }

    const int me = comm.rank();
    for (int t = 0; t < plan.steps; ++t) {
      StepView sv_storage;
      if (plan.numeric) sv_storage = make_step_view(plan, st, t);
      const StepView& sv =
          plan.numeric ? sv_storage : dry_sched[static_cast<std::size_t>(t)].sv;
      {
        const telemetry::ScopedSpan span(plan.tel, me,
                                         telemetry::kLayerReduction, t);
        reduce_panel_column(plan, st, comm, sv);                    // step 1
      }
      TournamentOutcome outcome;
      {
        const telemetry::ScopedSpan span(plan.tel, me,
                                         telemetry::kPanelTournament, t);
        outcome = run_tournament(plan, st, comm, sv);               // step 2
      }
      if (!plan.numeric)
        outcome.pivots = dry_sched[static_cast<std::size_t>(t)].pivots;
      {
        const telemetry::ScopedSpan span(plan.tel, me,
                                         telemetry::kPivotApply, t);
        broadcast_pivot_block(plan, st, comm, sv, outcome, world);  // step 3
      }
      if (want_records && comm.rank() == 0) {
        StepRecord& rec = records[static_cast<std::size_t>(t)];
        rec.pivots = outcome.pivots;
        rec.a00 = outcome.a00;
      }
      const DryStep* ds =
          plan.numeric ? nullptr : &dry_sched[static_cast<std::size_t>(t)];
      Rem2 rem2_storage;
      if (plan.numeric) rem2_storage = make_rem2(plan, sv, outcome.pivots);
      const Rem2& rem2 = plan.numeric ? rem2_storage : ds->rem2;
      A10Panel a10_panel;
      A01Panel a01_panel;
      {
        const telemetry::ScopedSpan span(plan.tel, me, telemetry::kTrsm, t);
        a10_panel = solve_a10_at_leaders(                            // 4 + 7
            plan, st, comm, sv, rem2, outcome.a00,
            want_records ? &records : nullptr);
        a01_panel = solve_a01_at_aggregators(                        // 5 + 9
            plan, st, comm, sv, outcome.pivots, outcome.a00,
            want_records ? &records : nullptr, ds);
      }
      {
        const telemetry::ScopedSpan span(plan.tel, me,
                                         telemetry::kSchurUpdate, t);
        const A10Slice a10 = multicast_a10(plan, st, comm, sv, rem2,  // 8
                                           a10_panel);
        const A01Slice a01 = multicast_a01(plan, st, comm, sv,        // 10
                                           a01_panel);
        schur_update_local(plan, st, a10, a01);                       // 11
      }
    }
  });

  LuResult result;
  result.seconds = timer.seconds();
  factor::fill_comm_stats(result, net, plan.active, cfg.p);
  result.grid = plan.g.to_string();
  result.block = plan.v;
  if (want_records) {
    const AssembledFactors f = assemble_factors(records, plan.n, plan.v);
    if (cfg.verify) {
      result.residual = masked_lu_residual(*a, f);
      result.growth = masked_growth_factor(*a, f);
      result.residual_eps = factor::residual_in_eps(result.residual);
      std::vector<double> u_diag(static_cast<std::size_t>(plan.n));
      for (int i = 0; i < plan.n; ++i)
        u_diag[static_cast<std::size_t>(i)] = f.u(i, i);
      result.pivot_stats = factor::pivot_stats(f.pivot_order, u_diag);
    }
    if (cfg.keep_factors) {
      auto packed = std::make_shared<linalg::Matrix>(plan.n, plan.n);
      for (int i = 0; i < plan.n; ++i)
        for (int j = 0; j < plan.n; ++j)
          (*packed)(i, j) = j < i ? f.l(i, j) : f.u(i, j);
      result.factors = std::move(packed);
      result.permutation = f.pivot_order;
    }
  }
  return result;
}

}  // namespace conflux::lu
