#include "lu/lu_common.hpp"

#include <algorithm>

#include "lu/calu25d.hpp"
#include "lu/candmc25d.hpp"
#include "lu/conflux25d.hpp"
#include "lu/scalapack2d.hpp"
#include "support/random.hpp"

namespace conflux::lu {

std::unique_ptr<LuAlgorithm> make_algorithm(const std::string& name) {
  if (name == "COnfLUX") return std::make_unique<Conflux25D>();
  if (name == "LibSci") return std::make_unique<ScaLapack2D>(false);
  if (name == "SLATE") return std::make_unique<ScaLapack2D>(true);
  if (name == "CANDMC") return std::make_unique<Candmc25D>();
  if (name == "CALU") return std::make_unique<Calu25D>();
  CONFLUX_EXPECTS_MSG(false, "unknown LU algorithm '" << name << "'");
  return nullptr;  // unreachable
}

std::vector<std::unique_ptr<LuAlgorithm>> all_algorithms() {
  std::vector<std::unique_ptr<LuAlgorithm>> algos;
  algos.push_back(make_algorithm("LibSci"));
  algos.push_back(make_algorithm("SLATE"));
  algos.push_back(make_algorithm("CANDMC"));
  algos.push_back(make_algorithm("COnfLUX"));
  algos.push_back(make_algorithm("CALU"));
  return algos;
}

std::vector<int> synthetic_pivots(const std::vector<std::uint8_t>& pivoted,
                                  int n, int v, int step, std::uint64_t seed) {
  std::vector<std::pair<std::uint64_t, int>> ranked;
  ranked.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    if (pivoted[static_cast<std::size_t>(r)]) continue;
    ranked.emplace_back(
        splitmix64(seed ^ (static_cast<std::uint64_t>(step) << 32) ^
                   static_cast<std::uint64_t>(r) * 0x9E3779B97F4A7C15ULL),
        r);
  }
  CONFLUX_EXPECTS(static_cast<int>(ranked.size()) >= v);
  std::sort(ranked.begin(), ranked.end());
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(v));
  for (int q = 0; q < v; ++q)
    out.push_back(ranked[static_cast<std::size_t>(q)].second);
  return out;
}

}  // namespace conflux::lu
