/// \file scalapack2d.hpp
/// The 2D comparison targets of §8: a right-looking block-cyclic LU with
/// partial pivoting, the textbook ScaLAPACK pdgetrf schedule that both Cray
/// LibSci and SLATE implement (Table 2 classifies both as 2D with leading
/// cost N^2/sqrt(P) per rank). The two proxies differ exactly where the
/// real libraries differ for communication purposes:
///   - LibSci: greedy divisor grid over ALL ranks (1 x P at primes — the
///     outlier behaviour in Fig. 6a's inset), default block 64;
///   - SLATE: near-square grid that may idle a few ranks, default block 16.
#pragma once

#include "grid/grid3d.hpp"
#include "lu/lu_common.hpp"
#include "simnet/comm.hpp"

namespace conflux::telemetry {
class TelemetryBoard;
}

namespace conflux::lu {

/// Shared SPMD body so the CANDMC proxy can replicate it per layer.
/// `base_rank` maps the (pr, pc) grid onto global ranks
/// base_rank + pr + Pr * pc. In numeric mode, `gathered`/`ipiv_out` (when
/// non-null) receive the factored matrix and the pivot sequence via disjoint
/// out-of-band writes (result collection is not part of the measured
/// volume).
struct Scalapack2DParams {
  int n = 0;
  int nb = 0;
  grid::Grid2D g{1, 1};
  int base_rank = 0;
  bool numeric = true;
  std::uint64_t seed = 42;
  const linalg::Matrix* a = nullptr;  ///< input (numeric mode)
  linalg::Matrix* gathered = nullptr;
  std::vector<int>* ipiv_out = nullptr;
  telemetry::TelemetryBoard* tel = nullptr;  ///< ConfScope spans (optional)
};

void scalapack2d_body(simnet::Comm& comm, const Scalapack2DParams& params);

/// LibSci proxy (and, via `slate_mode`, the SLATE proxy).
class ScaLapack2D : public LuAlgorithm {
 public:
  explicit ScaLapack2D(bool slate_mode = false) : slate_(slate_mode) {}

  [[nodiscard]] std::string name() const override {
    return slate_ ? "SLATE" : "LibSci";
  }
  [[nodiscard]] LuResult run(const linalg::Matrix* a,
                             const LuConfig& cfg) override;

 private:
  bool slate_;
};

}  // namespace conflux::lu
