/// \file candmc25d.hpp
/// CANDMC comparison proxy. The real library implements Solomonik &
/// Demmel's 2.5D LU with an asymptotically optimal model of 5 N^3/(P sqrt M)
/// [56], but the paper's measurements (Fig. 6a, Table 2) show it moving
/// 2-4x MORE data than the 2D libraries at every measured scale — large
/// constants from replication traffic dominate until several hundred
/// thousand ranks.
///
/// This proxy reproduces that measured behaviour mechanically: the matrix is
/// replicated across c = min(P*M/N^2, P^(1/3)) layers, each layer executes
/// the full 2D right-looking schedule on its P/c-rank face (redundant
/// compute keeps replicas coherent, as 2.5D schedules do between their
/// reduction points), and row interchanges are physical — every layer pays
/// them. Per-rank volume is therefore ~ N^2 sqrt(c/P): a factor sqrt(c)
/// above the 2D libraries, matching the paper's measured ratios. The
/// *model* line for CANDMC in tables/figures uses the authors' published
/// cost, exactly as the paper does (models::CandmcModel).
#pragma once

#include "lu/lu_common.hpp"

namespace conflux::lu {

class Candmc25D final : public LuAlgorithm {
 public:
  [[nodiscard]] std::string name() const override { return "CANDMC"; }
  [[nodiscard]] LuResult run(const linalg::Matrix* a,
                             const LuConfig& cfg) override;
};

}  // namespace conflux::lu
