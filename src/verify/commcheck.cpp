#include "verify/commcheck.hpp"

#include <algorithm>
#include <mutex>
#include <sstream>
#include <utility>

#include "cholesky/cholesky_common.hpp"
#include "lu/lu_common.hpp"
#include "models/cost_model.hpp"
#include "simnet/trace.hpp"
#include "support/assert.hpp"

namespace conflux::verify {

namespace {

/// RAII collector for the buffer-ownership debug hook: while alive, misuse
/// reports append here instead of throwing; the previous handler is
/// restored on destruction.
class MisuseCollector {
 public:
  MisuseCollector() {
    previous_ = simnet::set_buffer_misuse_handler(
        [this](const std::string& what) {
          const std::lock_guard<std::mutex> lock(mutex_);
          reports_.push_back(what);
        });
  }
  ~MisuseCollector() {
    (void)simnet::set_buffer_misuse_handler(std::move(previous_));
  }
  MisuseCollector(const MisuseCollector&) = delete;
  MisuseCollector& operator=(const MisuseCollector&) = delete;

  [[nodiscard]] std::vector<std::string> reports() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return reports_;
  }

 private:
  std::mutex mutex_;
  std::vector<std::string> reports_;
  simnet::BufferMisuseHandler previous_;
};

/// True for the 2.5D backends whose schedule shape depends on the
/// replication depth (the others ignore force_layers).
bool has_layers(const Backend& b) {
  return b.name == "COnfLUX" || b.name == "CANDMC" || b.name == "COnfCHOX" ||
         b.name == "CALU";
}

}  // namespace

std::vector<Backend> registered_backends() {
  return {{"LU", "LibSci"},        {"LU", "SLATE"},
          {"LU", "CANDMC"},        {"LU", "COnfLUX"},
          {"LU", "CALU"},          {"Cholesky", "ScaLAPACK"},
          {"Cholesky", "COnfCHOX"}};
}

std::string CheckResult::describe() const {
  std::ostringstream os;
  os << backend.family << '/' << backend.name << " n=" << config.n
     << " p=" << config.p;
  if (config.force_layers > 0) os << " c=" << config.force_layers;
  os << " grid=" << run.grid << " v=" << run.block << " (" << events
     << " events, " << run.total.messages_sent << " messages, "
     << run.total.bytes_sent << " B)";
  return os.str();
}

CheckResult check_schedule(const Backend& backend, const CheckConfig& config) {
  CheckResult out;
  out.backend = backend;
  out.config = config;

  simnet::TraceRecorder trace;
  MisuseCollector misuse;

  factor::FactorConfig base;
  base.n = config.n;
  base.p = config.p;
  base.block = config.block;
  base.mode = factor::Mode::DryRun;
  base.seed = config.seed;
  base.grid_optimization = config.grid_optimization;
  base.force_layers = config.force_layers;
  base.verify = false;
  base.trace = &trace;

  double bound_elements_per_rank = 0;
  const models::Instance inst =
      models::max_replication_instance(config.n, config.p);
  if (backend.family == "LU") {
    lu::LuConfig cfg;
    static_cast<factor::FactorConfig&>(cfg) = base;
    out.run = lu::make_algorithm(backend.name)->run(nullptr, cfg);
    bound_elements_per_rank = models::lu_lower_bound_elements_per_rank(inst);
  } else if (backend.family == "Cholesky") {
    cholesky::CholConfig cfg;
    static_cast<factor::FactorConfig&>(cfg) = base;
    out.run = cholesky::make_cholesky_algorithm(backend.name)->run(nullptr,
                                                                   cfg);
    bound_elements_per_rank =
        models::cholesky_lower_bound_elements_per_rank(inst);
  } else {
    CONFLUX_EXPECTS_MSG(false,
                        "unknown family '" << backend.family << '\'');
  }

  // The DAAP bound counts elements each rank must load into its memory; in
  // a distributed run every rank starts with its N^2/P share of the operand
  // already resident, and those loads cost no network traffic. Network
  // volume can therefore legitimately undershoot the raw bound by that
  // share (at small P the effect is first-order), so the floor the volume
  // pass enforces is bound minus residency.
  const double resident = static_cast<double>(config.n) * config.n / config.p;
  const double lower_bound_bytes =
      std::max(0.0, bound_elements_per_rank - resident) * config.p * 8.0;

  out.events = trace.size();
  const CommGraph graph = CommGraph::build(trace);
  VolumeExpectation expect;
  expect.total = out.run.total;
  expect.max_rank_bytes = out.run.max_rank_bytes;
  expect.lower_bound_bytes = lower_bound_bytes;
  out.diags = run_all_passes(graph, expect);

  for (const std::string& what : misuse.reports()) {
    Diagnostic d;
    d.severity = Severity::Error;
    d.pass = "ownership";
    d.message = what;
    out.diags.push_back(std::move(d));
  }
  return out;
}

std::vector<CheckResult> sweep(const std::vector<int>& p_list,
                               const std::vector<int>& n_list) {
  std::vector<CheckResult> results;
  for (const Backend& backend : registered_backends()) {
    const std::vector<int> layer_choices =
        has_layers(backend) ? std::vector<int>{0, 1, 2}
                            : std::vector<int>{0};
    for (int n : n_list)
      for (int p : p_list)
        for (int c : layer_choices) {
          if (c > p) continue;
          CheckConfig config;
          config.n = n;
          config.p = p;
          config.force_layers = c;
          results.push_back(check_schedule(backend, config));
        }
  }
  return results;
}

}  // namespace conflux::verify
