#include "verify/passes.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

namespace conflux::verify {

namespace {

CommContext context_of(const CommNode& node) {
  CommContext c;
  c.rank = node.rank;
  c.step = node.seq;
  c.src = node.kind == simnet::EventKind::Send ? node.rank : node.peer;
  c.dst = node.kind == simnet::EventKind::Send ? node.peer : node.rank;
  return c.with_tag(node.tag);
}

Diagnostic make_diag(Severity sev, std::string pass, const CommNode& node,
                     const std::string& what) {
  Diagnostic d;
  d.severity = sev;
  d.pass = std::move(pass);
  d.context = context_of(node);
  std::ostringstream os;
  os << what << ' ' << d.context;
  d.message = os.str();
  return d;
}

}  // namespace

std::string to_string(const Diagnostic& d) {
  std::string out = d.severity == Severity::Error ? "error[" : "warning[";
  out += d.pass;
  out += "]: ";
  out += d.message;
  return out;
}

bool has_errors(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::Error;
  });
}

std::vector<Diagnostic> check_matching(const CommGraph& g) {
  std::vector<Diagnostic> diags;
  for (const CommNode& node : g.nodes()) {
    if (node.match < 0) {
      diags.push_back(make_diag(
          Severity::Error, "matching", node,
          node.kind == simnet::EventKind::Send
              ? "send is never received (dropped message)"
              : "orphan recv: no send can ever satisfy this receive"));
      continue;
    }
    if (node.kind == simnet::EventKind::Send) {
      const CommNode& recv =
          g.nodes()[static_cast<std::size_t>(node.match)];
      if (recv.bytes != node.bytes) {
        std::ostringstream os;
        os << "matched pair disagrees on size: send carries " << node.bytes
           << " B, recv expects " << recv.bytes << " B";
        diags.push_back(
            make_diag(Severity::Error, "matching", node, os.str()));
      }
    }
  }
  return diags;
}

std::vector<Diagnostic> check_deadlock(const CommGraph& g) {
  std::vector<Diagnostic> diags;
  const int nranks = g.nranks();
  std::vector<char> issued(g.nodes().size(), 0);
  std::vector<int> ptr(static_cast<std::size_t>(nranks), 0);

  // Abstract replay: sends issue freely in program order, a recv completes
  // once its matched send has issued. The fixed point either retires every
  // node (schedule executable) or leaves a set of stalled ranks.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < nranks; ++r) {
      const auto stream = g.rank_nodes(r);
      while (ptr[static_cast<std::size_t>(r)] <
             static_cast<int>(stream.size())) {
        const CommNode& node =
            stream[static_cast<std::size_t>(ptr[static_cast<std::size_t>(r)])];
        if (node.kind == simnet::EventKind::Recv &&
            (node.match < 0 || !issued[static_cast<std::size_t>(node.match)]))
          break;
        issued[static_cast<std::size_t>(g.index_of(r, node.seq))] = 1;
        ++ptr[static_cast<std::size_t>(r)];
        progress = true;
      }
    }
  }

  // wait_for[r] = rank whose un-issued send r's blocking recv matches; -1
  // when not stalled, -2 when stalled on an orphan recv (matching error).
  std::vector<int> wait_for(static_cast<std::size_t>(nranks), -1);
  std::vector<const CommNode*> blocked_at(static_cast<std::size_t>(nranks),
                                          nullptr);
  for (int r = 0; r < nranks; ++r) {
    const auto stream = g.rank_nodes(r);
    const int at = ptr[static_cast<std::size_t>(r)];
    if (at >= static_cast<int>(stream.size())) continue;
    const CommNode& node = stream[static_cast<std::size_t>(at)];
    blocked_at[static_cast<std::size_t>(r)] = &node;
    wait_for[static_cast<std::size_t>(r)] =
        node.match < 0
            ? -2
            : g.nodes()[static_cast<std::size_t>(node.match)].rank;
  }

  // Cycles in the wait-for map are true deadlocks; walk each stalled rank's
  // chain once, reporting a found cycle through every member's blocked op.
  std::vector<int> state(static_cast<std::size_t>(nranks), 0);  // 0/1/2
  std::vector<char> in_cycle(static_cast<std::size_t>(nranks), 0);
  for (int start = 0; start < nranks; ++start) {
    if (wait_for[static_cast<std::size_t>(start)] < 0 ||
        state[static_cast<std::size_t>(start)] != 0)
      continue;
    std::vector<int> path;
    int r = start;
    while (r >= 0 && state[static_cast<std::size_t>(r)] == 0) {
      state[static_cast<std::size_t>(r)] = 1;
      path.push_back(r);
      r = wait_for[static_cast<std::size_t>(r)];
      if (r >= 0 && wait_for[static_cast<std::size_t>(r)] == -1) r = -1;
    }
    if (r >= 0 && state[static_cast<std::size_t>(r)] == 1) {
      // Found a cycle: r .. path.back().
      std::ostringstream cyc;
      const auto cycle_start =
          std::find(path.begin(), path.end(), r) - path.begin();
      for (std::size_t i = static_cast<std::size_t>(cycle_start);
           i < path.size(); ++i) {
        in_cycle[static_cast<std::size_t>(path[i])] = 1;
        const CommNode& node = *blocked_at[static_cast<std::size_t>(path[i])];
        cyc << (i == static_cast<std::size_t>(cycle_start) ? "" : " -> ")
            << "rank " << path[i] << " blocked in recv " << context_of(node);
      }
      const CommNode& head = *blocked_at[static_cast<std::size_t>(r)];
      diags.push_back(make_diag(Severity::Error, "deadlock", head,
                                "wait-for cycle: " + cyc.str()));
    }
    for (int p : path) state[static_cast<std::size_t>(p)] = 2;
  }

  // Stalls that are not part of a cycle (waiting, directly or transitively,
  // on an orphan recv or on a rank ahead of a cycle) still make the
  // schedule non-executable; report them so every stuck rank is located.
  for (int r = 0; r < nranks; ++r) {
    if (wait_for[static_cast<std::size_t>(r)] == -1 ||
        in_cycle[static_cast<std::size_t>(r)])
      continue;
    const CommNode& node = *blocked_at[static_cast<std::size_t>(r)];
    if (wait_for[static_cast<std::size_t>(r)] == -2) {
      diags.push_back(make_diag(
          Severity::Error, "deadlock", node,
          "rank stalls forever on a receive no send can satisfy"));
    } else {
      std::ostringstream os;
      os << "rank stalls: matched send on rank "
         << g.nodes()[static_cast<std::size_t>(node.match)].rank
         << " is never issued";
      diags.push_back(make_diag(Severity::Error, "deadlock", node, os.str()));
    }
  }
  return diags;
}

std::vector<Diagnostic> check_tags(const CommGraph& g) {
  std::vector<Diagnostic> diags;
  // Sends per directed (src, dst, tag) channel, in sender program order.
  std::map<std::tuple<int, int, simnet::Tag>, std::vector<int>> sends;
  for (std::size_t i = 0; i < g.nodes().size(); ++i) {
    const CommNode& node = g.nodes()[i];
    if (node.kind == simnet::EventKind::Send)
      sends[{node.rank, node.peer, node.tag}].push_back(static_cast<int>(i));
  }
  for (const auto& [key, list] : sends) {
    for (std::size_t k = 0; k + 1 < list.size(); ++k) {
      const CommNode& first = g.nodes()[static_cast<std::size_t>(list[k])];
      const CommNode& second =
          g.nodes()[static_cast<std::size_t>(list[k + 1])];
      // Safe reuse requires the earlier message to be out of the channel —
      // its receive causally before the next same-tag send.
      if (first.match >= 0 &&
          g.happens_before(first.match, list[k + 1]))
        continue;
      std::ostringstream os;
      os << "tag collision: two messages share this (src, dst, tag) channel "
            "with no happens-before between the first receive and the "
            "second send (seq " << first.seq << " and " << second.seq
         << " on rank " << first.rank << ')';
      diags.push_back(make_diag(Severity::Error, "tags", second, os.str()));
    }
  }
  return diags;
}

std::vector<Diagnostic> check_volume(const CommGraph& g,
                                     const VolumeExpectation& expect) {
  std::vector<Diagnostic> diags;
  auto add = [&](const std::string& msg) {
    Diagnostic d;
    d.severity = Severity::Error;
    d.pass = "volume";
    d.message = msg;
    diags.push_back(std::move(d));
  };

  // Per-rank accounting from the graph, mirroring StatsBoard's conventions
  // (self-sends are free under the uniform remote-cost model).
  simnet::CommVolume total;
  std::uint64_t received_total = 0;
  std::uint64_t max_rank = 0;
  std::vector<std::uint64_t> sent(static_cast<std::size_t>(g.nranks()), 0);
  std::vector<std::uint64_t> recvd(static_cast<std::size_t>(g.nranks()), 0);
  for (const CommNode& node : g.nodes()) {
    if (node.rank == node.peer) continue;
    if (node.kind == simnet::EventKind::Send) {
      total.bytes_sent += node.bytes;
      ++total.messages_sent;
      sent[static_cast<std::size_t>(node.rank)] += node.bytes;
    } else {
      received_total += node.bytes;
      recvd[static_cast<std::size_t>(node.rank)] += node.bytes;
    }
  }
  for (int r = 0; r < g.nranks(); ++r)
    max_rank = std::max(max_rank, sent[static_cast<std::size_t>(r)] +
                                      recvd[static_cast<std::size_t>(r)]);

  // A fully matched graph conserves bytes by construction; an unmatched one
  // leaks them. Check conservation first, then the cross-checks.
  if (total.bytes_sent != received_total) {
    std::ostringstream os;
    os << "volume not conserved: " << total.bytes_sent << " B sent vs "
       << received_total << " B received";
    add(os.str());
  }
  if (total.bytes_sent != expect.total.bytes_sent) {
    std::ostringstream os;
    os << "graph bytes_sent " << total.bytes_sent
       << " != CommVolume stats " << expect.total.bytes_sent;
    add(os.str());
  }
  if (total.messages_sent != expect.total.messages_sent) {
    std::ostringstream os;
    os << "graph messages_sent " << total.messages_sent
       << " != CommVolume stats " << expect.total.messages_sent;
    add(os.str());
  }
  if (expect.max_rank_bytes != 0 && max_rank != expect.max_rank_bytes) {
    std::ostringstream os;
    os << "graph max-rank bytes " << max_rank << " != CommVolume stats "
       << expect.max_rank_bytes;
    add(os.str());
  }
  if (expect.lower_bound_bytes > 0 &&
      static_cast<double>(total.bytes_sent) < expect.lower_bound_bytes) {
    std::ostringstream os;
    os << "measured volume " << total.bytes_sent
       << " B sits below the proven I/O lower bound "
       << expect.lower_bound_bytes << " B — accounting is broken";
    add(os.str());
  }
  return diags;
}

std::vector<Diagnostic> run_all_passes(const CommGraph& g,
                                       const VolumeExpectation& expect) {
  std::vector<Diagnostic> diags = check_matching(g);
  std::vector<Diagnostic> more = check_deadlock(g);
  diags.insert(diags.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  more = check_tags(g);
  diags.insert(diags.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  more = check_volume(g, expect);
  diags.insert(diags.end(), std::make_move_iterator(more.begin()),
               std::make_move_iterator(more.end()));
  return diags;
}

}  // namespace conflux::verify
