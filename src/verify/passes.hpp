/// \file passes.hpp
/// CommCheck's analysis passes over the CommGraph IR. Each pass proves one
/// property of a communication schedule statically — before (or without)
/// any numeric flop running — and reports violations as located
/// diagnostics:
///
///  - matching:  every send has exactly one matching receive and vice
///               versa (orphan receives, dropped sends, and size-mismatched
///               pairs are errors);
///  - deadlock:  the schedule is executable under blocking receives and
///               non-blocking sends — no wait-for cycle, no rank stalled
///               forever;
///  - tags:      within a directed (src, dst) channel a tag is never
///               carried by two messages that could be simultaneously in
///               flight (matching would then depend on arrival order);
///  - volume:    the graph's byte/message accounting agrees exactly with
///               the run's CommVolume stats and sits above the family's
///               proven I/O lower bound.
///
/// The buffer-ownership lint (use-after-take, in-flight mutation) is
/// dynamic by nature; its reports are collected through the trace.hpp debug
/// hooks and folded into the same Diagnostic stream by the driver
/// (commcheck.hpp).
#pragma once

#include <string>
#include <vector>

#include "simnet/stats.hpp"
#include "support/assert.hpp"
#include "verify/comm_graph.hpp"

namespace conflux::verify {

enum class Severity { Error, Warning };

/// One located finding. `context` carries the (rank, step/seq, src, dst,
/// tag) coordinates of the offending event where applicable.
struct Diagnostic {
  Severity severity = Severity::Error;
  std::string pass;     ///< "matching", "deadlock", "tags", "volume", ...
  std::string message;  ///< human-readable, already containing the context
  CommContext context;  ///< structured location (support/assert.hpp)
};

/// Render "error[pass]: message" (the tools/commcheck report line).
[[nodiscard]] std::string to_string(const Diagnostic& d);

/// True if any diagnostic is an Error.
[[nodiscard]] bool has_errors(const std::vector<Diagnostic>& diags);

/// Pass 1: send/recv pairing. Flags unmatched sends (message never
/// received), orphan receives (no send can satisfy them), and matched
/// pairs whose byte counts disagree.
[[nodiscard]] std::vector<Diagnostic> check_matching(const CommGraph& g);

/// Pass 2: deadlock freedom. Replays the schedule abstractly (sends never
/// block; a receive completes once its matched send is issued) and reports
/// every wait-for cycle among stalled ranks, plus ranks stalled for
/// non-cyclic reasons (these always co-occur with a matching error).
[[nodiscard]] std::vector<Diagnostic> check_deadlock(const CommGraph& g);

/// Pass 3: tag hygiene. For every directed (src, dst) channel carrying the
/// same tag more than once, requires a happens-before chain from each
/// message's receive to the next same-tag send; otherwise the two can be
/// concurrently in flight and matching is order-dependent.
[[nodiscard]] std::vector<Diagnostic> check_tags(const CommGraph& g);

/// What the volume pass checks the graph against. `total` comes from the
/// run's StatsBoard (self-sends excluded there, and likewise here);
/// `max_rank_bytes` is Fig. 6's per-node metric; `lower_bound_bytes`, when
/// positive, is the family's proven I/O lower bound (src/models) — measured
/// volume below a *lower bound* means the accounting itself is broken.
struct VolumeExpectation {
  simnet::CommVolume total;
  std::uint64_t max_rank_bytes = 0;
  double lower_bound_bytes = 0;  ///< <= 0: skip the bound check
};

/// Pass 4: volume conservation, cross-checked against the fabric stats.
[[nodiscard]] std::vector<Diagnostic> check_volume(
    const CommGraph& g, const VolumeExpectation& expect);

/// All static passes in order (matching, deadlock, tags, volume).
[[nodiscard]] std::vector<Diagnostic> run_all_passes(
    const CommGraph& g, const VolumeExpectation& expect);

}  // namespace conflux::verify
