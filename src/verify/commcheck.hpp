/// \file commcheck.hpp
/// CommCheck: the static communication-schedule verifier. Drives a dry run
/// of a registered (family, backend) with a TraceRecorder attached (no
/// numeric flops execute — ghost messages carry byte counts only), lifts
/// the recorded streams into the CommGraph IR, and proves the schedule
/// clean with the passes.hpp analyses plus the buffer-ownership lint
/// collected through the trace.hpp debug hooks.
///
/// This is the gate every future factorization family must pass: a backend
/// registered here is swept by tools/commcheck (and the commcheck CTest
/// suite / CI job) across (P, grid) configurations before any of its
/// figures count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "factor/factorization.hpp"
#include "verify/passes.hpp"

namespace conflux::verify {

/// A registered (family, backend) pair.
struct Backend {
  std::string family;  ///< "LU" or "Cholesky"
  std::string name;    ///< table name ("COnfLUX", "LibSci", ...)
};

/// Every registered backend, families in paper order.
[[nodiscard]] std::vector<Backend> registered_backends();

/// One schedule shape to verify.
struct CheckConfig {
  int n = 128;           ///< matrix dimension
  int p = 8;             ///< ranks
  int block = 0;         ///< 0 = the backend's auto-tuned block size
  int force_layers = 0;  ///< 2.5D replication depth (0 = auto)
  bool grid_optimization = true;
  std::uint64_t seed = 42;  ///< synthetic pivot seed (LU dry runs)
};

/// Result of verifying one (backend, config) pair.
struct CheckResult {
  Backend backend;
  CheckConfig config;
  factor::FactorResult run;          ///< the dry run's volume/grid report
  std::size_t events = 0;            ///< trace events analyzed
  std::vector<Diagnostic> diags;     ///< all findings, passes + ownership

  [[nodiscard]] bool ok() const { return !has_errors(diags); }
  /// "LU/COnfLUX n=128 p=8 ..." header for reports.
  [[nodiscard]] std::string describe() const;
};

/// Verify one backend under one configuration: dry run with trace attached,
/// graph build, all passes, volume cross-check against the run's CommVolume
/// stats and the family's I/O lower bound, ownership lint collection.
[[nodiscard]] CheckResult check_schedule(const Backend& backend,
                                         const CheckConfig& config);

/// The default sweep tools/commcheck --all runs: every registered backend
/// over the given P list crossed with replication depths {auto, 1, 2}
/// (grids beyond the backend's reach degrade gracefully to what it picks).
[[nodiscard]] std::vector<CheckResult> sweep(
    const std::vector<int>& p_list, const std::vector<int>& n_list);

}  // namespace conflux::verify
