#include "verify/critical_path.hpp"

#include <algorithm>

#include "support/telemetry.hpp"

namespace conflux::verify {

namespace {

/// Backward walk from the globally latest node. At each node the critical
/// predecessor is whichever of {program-order predecessor, matched send}
/// finished later: the node could not complete before either, so the later
/// one is the binding constraint.
CriticalPath walk(const CommGraph& g) {
  CriticalPath path;
  const auto& nodes = g.nodes();
  if (nodes.empty()) return path;

  int cur = 0;
  for (std::size_t i = 1; i < nodes.size(); ++i)
    if (nodes[i].t_ns > nodes[static_cast<std::size_t>(cur)].t_ns)
      cur = static_cast<int>(i);
  path.seconds =
      static_cast<double>(nodes[static_cast<std::size_t>(cur)].t_ns) / 1e9;
  path.end_rank = nodes[static_cast<std::size_t>(cur)].rank;

  while (cur >= 0) {
    path.nodes.push_back(cur);
    const CommNode& node = nodes[static_cast<std::size_t>(cur)];
    int next = -1;
    if (node.seq > 0) next = g.index_of(node.rank, node.seq - 1);
    if (node.kind == simnet::EventKind::Recv && node.match >= 0) {
      if (next < 0 ||
          nodes[static_cast<std::size_t>(node.match)].t_ns >
              nodes[static_cast<std::size_t>(next)].t_ns)
        next = node.match;
    }
    cur = next;
  }
  std::reverse(path.nodes.begin(), path.nodes.end());
  return path;
}

}  // namespace

CriticalPath extract_critical_path(const CommGraph& g) {
  CriticalPath path = walk(g);
  path.slack_seconds.assign(static_cast<std::size_t>(g.nranks()),
                            path.seconds);
  for (const CommNode& node : g.nodes()) {
    double& slack = path.slack_seconds[static_cast<std::size_t>(node.rank)];
    slack = std::min(slack,
                     path.seconds - static_cast<double>(node.t_ns) / 1e9);
  }
  return path;
}

CriticalPath extract_critical_path(const CommGraph& g,
                                   const telemetry::TelemetryBoard& tel) {
  CriticalPath path = walk(g);
  path.slack_seconds.assign(static_cast<std::size_t>(g.nranks()), 0.0);
  const int nr = std::min(g.nranks(), tel.nranks());
  for (int r = 0; r < nr; ++r)
    path.slack_seconds[static_cast<std::size_t>(r)] =
        std::max(0.0, path.seconds - tel.busy_seconds(r));
  return path;
}

}  // namespace conflux::verify
