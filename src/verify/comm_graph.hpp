/// \file comm_graph.hpp
/// The CommCheck intermediate representation: a communication graph built
/// from a TraceRecorder's per-rank event streams. Nodes are (rank, seq, op)
/// events in each rank's program order; edges are implied — program order
/// within a rank, and send -> matching-recv across ranks. Matching mirrors
/// the fabric's semantics exactly: FIFO pairing of the k-th send with the
/// k-th receive on every directed (src, dst, tag) channel, which is the
/// ordering guarantee Network gives (and MPI gives for matching
/// send/receive pairs).
///
/// Everything the analysis passes (passes.hpp) prove — deadlock freedom,
/// complete pairing, tag hygiene, volume conservation — is proven over this
/// IR, statically, without re-running the schedule.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "simnet/trace.hpp"

namespace conflux::verify {

/// One node of the communication graph.
struct CommNode {
  int rank = -1;  ///< rank whose stream this event is on
  int seq = -1;   ///< position within that rank's program order
  simnet::EventKind kind = simnet::EventKind::Send;
  int peer = -1;  ///< destination (Send) or source (Recv)
  simnet::Tag tag = 0;
  std::uint64_t bytes = 0;
  bool multicast = false;
  int match = -1;  ///< global index of the matched counterpart; -1 unmatched
  std::uint64_t t_ns = 0;  ///< completion time (ns since recorder epoch)
};

/// The IR. Nodes are stored grouped by rank, ascending seq, so a rank's
/// stream is one contiguous span and (rank, seq) -> global index is O(1).
class CommGraph {
 public:
  /// Build the graph (including send/recv matching) from recorded streams.
  [[nodiscard]] static CommGraph build(const simnet::TraceRecorder& trace);

  [[nodiscard]] int nranks() const { return nranks_; }
  [[nodiscard]] const std::vector<CommNode>& nodes() const { return nodes_; }

  /// Rank `r`'s events, in program order.
  [[nodiscard]] std::span<const CommNode> rank_nodes(int r) const {
    return std::span<const CommNode>(nodes_)
        .subspan(static_cast<std::size_t>(rank_begin_[r]),
                 static_cast<std::size_t>(rank_begin_[r + 1] -
                                          rank_begin_[r]));
  }

  /// Global node index of rank `r`'s `seq`-th event.
  [[nodiscard]] int index_of(int r, int seq) const {
    return rank_begin_[r] + seq;
  }

  /// True when node `b` is causally after node `a` (program order and
  /// send->recv edges, transitively). Used by the tag-collision pass to
  /// decide whether two same-tag messages can ever be simultaneously in
  /// flight. Indices are global node indices; lazily computes vector clocks
  /// on first use (O(nodes * nranks) space).
  [[nodiscard]] bool happens_before(int a, int b) const;

 private:
  void compute_clocks() const;

  int nranks_ = 0;
  std::vector<CommNode> nodes_;
  std::vector<int> rank_begin_;  ///< nranks_+1 offsets into nodes_

  /// clocks_[node * nranks_ + r] = number of rank r's leading events that
  /// happen before-or-at `node`. Empty until happens_before is first asked.
  mutable std::vector<int> clocks_;
};

}  // namespace conflux::verify
