/// \file critical_path.hpp
/// ConfScope's critical-path analysis: lift a *timed* trace (TraceEvent
/// completion stamps) onto the CommGraph's happens-before structure and
/// walk back from the globally latest event, at every node following the
/// later-finishing of its two possible predecessors — the program-order
/// predecessor on the same rank, or (for a receive) the matched send. The
/// resulting chain is by construction a happens-before path, and its end
/// time is the run's makespan: no schedule change that leaves the chain's
/// work in place can finish earlier.
///
/// Per-rank slack is the gap between the makespan and the time each rank's
/// own stream went quiet — the headroom a rank has before it would join the
/// critical path.
#pragma once

#include <vector>

#include "verify/comm_graph.hpp"

namespace conflux::telemetry {
class TelemetryBoard;
}

namespace conflux::verify {

/// One extracted critical path through a timed communication graph.
struct CriticalPath {
  /// Global CommGraph node indices, earliest first. Consecutive entries are
  /// connected by a program-order or send->recv edge, so
  /// happens_before(nodes[i], nodes[i+1]) holds for every i.
  std::vector<int> nodes;
  double seconds = 0;  ///< makespan: completion time of the last node
  int end_rank = -1;   ///< rank whose event ends the path
  /// Per-rank slack: makespan minus the completion time of the rank's last
  /// event (0 for the rank(s) that finish last; ranks with no events get
  /// the full makespan).
  std::vector<double> slack_seconds;
};

/// Extract the critical path of `g`. Requires a trace recorded live (the
/// fabric stamps every event); an empty graph yields an empty path.
[[nodiscard]] CriticalPath extract_critical_path(const CommGraph& g);

/// As above, but slack is computed against ConfScope's per-rank busy time
/// (makespan minus busy_seconds(r)) instead of stream-end times — the
/// idle+wait headroom of each rank. `tel` must cover the same run.
[[nodiscard]] CriticalPath extract_critical_path(
    const CommGraph& g, const telemetry::TelemetryBoard& tel);

}  // namespace conflux::verify
