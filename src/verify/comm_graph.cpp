#include "verify/comm_graph.hpp"

#include <algorithm>
#include <map>
#include <tuple>

#include "support/assert.hpp"

namespace conflux::verify {

CommGraph CommGraph::build(const simnet::TraceRecorder& trace) {
  CommGraph g;
  g.nranks_ = trace.nranks();
  g.rank_begin_.assign(static_cast<std::size_t>(g.nranks_) + 1, 0);
  for (int r = 0; r < g.nranks_; ++r)
    g.rank_begin_[static_cast<std::size_t>(r) + 1] =
        g.rank_begin_[static_cast<std::size_t>(r)] +
        static_cast<int>(trace.rank_events(r).size());
  g.nodes_.reserve(static_cast<std::size_t>(g.rank_begin_.back()));
  for (int r = 0; r < g.nranks_; ++r) {
    const auto& events = trace.rank_events(r);
    for (std::size_t i = 0; i < events.size(); ++i) {
      const simnet::TraceEvent& e = events[i];
      g.nodes_.push_back({r, static_cast<int>(i), e.kind, e.peer, e.tag,
                          e.bytes, e.multicast, -1, e.t_ns});
    }
  }

  // FIFO matching per directed (src, dst, tag) channel: k-th send pairs
  // with k-th recv, exactly the fabric's dequeue order.
  std::map<std::tuple<int, int, simnet::Tag>, std::pair<std::vector<int>,
                                                        std::vector<int>>>
      channels;
  for (std::size_t i = 0; i < g.nodes_.size(); ++i) {
    const CommNode& node = g.nodes_[i];
    if (node.kind == simnet::EventKind::Send)
      channels[{node.rank, node.peer, node.tag}].first.push_back(
          static_cast<int>(i));
    else
      channels[{node.peer, node.rank, node.tag}].second.push_back(
          static_cast<int>(i));
  }
  for (auto& [key, lists] : channels) {
    auto& [sends, recvs] = lists;
    const std::size_t paired = std::min(sends.size(), recvs.size());
    for (std::size_t k = 0; k < paired; ++k) {
      g.nodes_[static_cast<std::size_t>(sends[k])].match = recvs[k];
      g.nodes_[static_cast<std::size_t>(recvs[k])].match = sends[k];
    }
  }
  return g;
}

void CommGraph::compute_clocks() const {
  const std::size_t n = nodes_.size();
  const std::size_t width = static_cast<std::size_t>(nranks_);
  clocks_.assign(n * width, 0);
  std::vector<char> issued(n, 0);
  std::vector<int> ptr(width, 0);

  // Causal replay: sends issue as soon as their program predecessors have;
  // a recv additionally needs its matched send issued. Each completed node
  // gets the component-wise max of its predecessor clocks, stamped with its
  // own position — standard vector clocks over the executable prefix.
  // (Nodes a deadlock keeps from executing retain zero clocks, so
  // happens_before stays conservatively false for them.)
  bool progress = true;
  while (progress) {
    progress = false;
    for (int r = 0; r < nranks_; ++r) {
      const int end = rank_begin_[static_cast<std::size_t>(r) + 1] -
                      rank_begin_[static_cast<std::size_t>(r)];
      while (ptr[static_cast<std::size_t>(r)] < end) {
        const int seq = ptr[static_cast<std::size_t>(r)];
        const std::size_t idx = static_cast<std::size_t>(index_of(r, seq));
        const CommNode& node = nodes_[idx];
        if (node.kind == simnet::EventKind::Recv &&
            (node.match < 0 || !issued[static_cast<std::size_t>(node.match)]))
          break;
        int* clock = &clocks_[idx * width];
        if (seq > 0) {
          const int* prev =
              &clocks_[static_cast<std::size_t>(index_of(r, seq - 1)) * width];
          std::copy(prev, prev + width, clock);
        }
        clock[static_cast<std::size_t>(r)] = seq + 1;
        if (node.kind == simnet::EventKind::Recv) {
          const int* sent =
              &clocks_[static_cast<std::size_t>(node.match) * width];
          for (std::size_t k = 0; k < width; ++k)
            clock[k] = std::max(clock[k], sent[k]);
        }
        issued[idx] = 1;
        ptr[static_cast<std::size_t>(r)] = seq + 1;
        progress = true;
      }
    }
  }
}

bool CommGraph::happens_before(int a, int b) const {
  CONFLUX_EXPECTS(a >= 0 && a < static_cast<int>(nodes_.size()) && b >= 0 &&
                  b < static_cast<int>(nodes_.size()));
  if (a == b) return false;
  if (clocks_.empty()) compute_clocks();
  const CommNode& na = nodes_[static_cast<std::size_t>(a)];
  return clocks_[static_cast<std::size_t>(b) *
                     static_cast<std::size_t>(nranks_) +
                 static_cast<std::size_t>(na.rank)] >= na.seq + 1;
}

}  // namespace conflux::verify
