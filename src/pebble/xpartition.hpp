/// \file xpartition.hpp
/// Dominator-set and minimum-set utilities plus X-partition validation
/// (§2.3.2-§2.3.3). Finding a *minimum* dominator set is NP-hard in
/// general; this module provides the boundary dominator (always valid, used
/// as an upper bound) and an exact validity check for candidate sets.
#pragma once

#include <vector>

#include "pebble/cdag.hpp"

namespace conflux::pebble {

/// Min(V_h): vertices of v_h with no immediate successor inside v_h.
[[nodiscard]] std::vector<int> min_set(const CDag& dag,
                                       const std::vector<int>& vh);

/// The boundary dominator of v_h: sources of edges entering v_h from
/// outside, plus graph inputs inside v_h. Always a valid dominator set, so
/// |Dom_min(V_h)| <= boundary size.
[[nodiscard]] std::vector<int> boundary_dominator(const CDag& dag,
                                                  const std::vector<int>& vh);

/// Exact check: does every path from a graph input into v_h pass through
/// `dom`?
[[nodiscard]] bool is_dominator(const CDag& dag, const std::vector<int>& vh,
                                const std::vector<int>& dom);

/// X-partition validity per §2.3.3 (using boundary dominators as the
/// conservative bound for the size conditions).
struct XPartitionCheck {
  bool covers_all = false;   ///< every non-input vertex in exactly one part
  bool disjoint = false;     ///< parts do not overlap
  bool acyclic = false;      ///< no cyclic dependencies between parts
  bool within_x = false;     ///< |Dom| <= X and |Min| <= X for every part
  [[nodiscard]] bool valid() const {
    return covers_all && disjoint && acyclic && within_x;
  }
};

[[nodiscard]] XPartitionCheck validate_xpartition(
    const CDag& dag, const std::vector<std::vector<int>>& parts, int x);

/// The schedule-derived X-partition of Lemma 2 in [42]: cut an executed
/// compute order into consecutive segments, each loading at most x - m new
/// vertices. Returns the parts (used to cross-check |P| <= (Q+X-M)/(X-M)).
[[nodiscard]] std::vector<std::vector<int>> partition_from_order(
    const CDag& dag, const std::vector<int>& order, int x, int m);

}  // namespace conflux::pebble
