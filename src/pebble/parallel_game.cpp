#include "pebble/parallel_game.hpp"

namespace conflux::pebble {

ParallelPebbleGame::ParallelPebbleGame(const CDag& dag, int processors, int m)
    : dag_(dag),
      m_(m),
      red_(static_cast<std::size_t>(processors),
           std::vector<std::uint8_t>(static_cast<std::size_t>(dag.size()), 0)),
      reds_(static_cast<std::size_t>(processors), 0),
      blue_(static_cast<std::size_t>(dag.size()), 0),
      computed_(static_cast<std::size_t>(dag.size()), 0),
      q_(static_cast<std::size_t>(processors), 0) {
  CONFLUX_EXPECTS(processors >= 1 && m >= 1);
  for (int v : dag.inputs()) {
    blue_[static_cast<std::size_t>(v)] = 1;
    computed_[static_cast<std::size_t>(v)] = 1;
  }
}

bool ParallelPebbleGame::any_pebble(int v) const {
  if (blue_[static_cast<std::size_t>(v)]) return true;
  for (const auto& hue : red_)
    if (hue[static_cast<std::size_t>(v)]) return true;
  return false;
}

void ParallelPebbleGame::load(int p, int v) {
  auto& mine = red_[static_cast<std::size_t>(p)];
  if (mine[static_cast<std::size_t>(v)])
    throw IllegalMove("parallel load: already red in this hue");
  if (!any_pebble(v))
    throw IllegalMove("parallel load: vertex carries no pebble");
  if (reds_[static_cast<std::size_t>(p)] >= m_)
    throw IllegalMove("parallel load: no free red pebbles");
  mine[static_cast<std::size_t>(v)] = 1;
  ++reds_[static_cast<std::size_t>(p)];
  ++q_[static_cast<std::size_t>(p)];
}

void ParallelPebbleGame::store(int p, int v) {
  if (!red_[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)])
    throw IllegalMove("parallel store: not red in this hue");
  if (blue_[static_cast<std::size_t>(v)]) return;
  blue_[static_cast<std::size_t>(v)] = 1;
  ++q_[static_cast<std::size_t>(p)];
}

void ParallelPebbleGame::compute(int p, int v) {
  if (dag_.is_input(v))
    throw IllegalMove("parallel compute: inputs are not computed");
  auto& mine = red_[static_cast<std::size_t>(p)];
  if (mine[static_cast<std::size_t>(v)])
    throw IllegalMove("parallel compute: already red in this hue");
  for (int pred : dag_.preds(v))
    if (!mine[static_cast<std::size_t>(pred)])
      throw IllegalMove("parallel compute: predecessor not red in this hue");
  if (reds_[static_cast<std::size_t>(p)] >= m_)
    throw IllegalMove("parallel compute: no free red pebbles");
  mine[static_cast<std::size_t>(v)] = 1;
  computed_[static_cast<std::size_t>(v)] = 1;
  ++reds_[static_cast<std::size_t>(p)];
}

void ParallelPebbleGame::discard(int p, int v) {
  auto& mine = red_[static_cast<std::size_t>(p)];
  if (!mine[static_cast<std::size_t>(v)])
    throw IllegalMove("parallel discard: not red in this hue");
  mine[static_cast<std::size_t>(v)] = 0;
  --reds_[static_cast<std::size_t>(p)];
}

std::uint64_t ParallelPebbleGame::total_io() const {
  std::uint64_t total = 0;
  for (std::uint64_t q : q_) total += q;
  return total;
}

bool ParallelPebbleGame::complete() const {
  for (int v = 0; v < dag_.size(); ++v)
    if (dag_.is_output(v) && !blue_[static_cast<std::size_t>(v)]) return false;
  return true;
}

}  // namespace conflux::pebble
