/// \file schedulers.hpp
/// Compute orders for the pebble-game executor. The tiled MMM order is the
/// X-partition-informed schedule whose I/O matches the 2N^3/sqrt(M) bound
/// within a small constant; the row-major orders are the cache-oblivious
/// baselines the bounds separate from.
#pragma once

#include <vector>

#include "pebble/cdag.hpp"

namespace conflux::pebble {

/// Tiled i/j/k order for mmm_cdag(n): tiles of side b, k-tiles innermost of
/// the tile loops so accumulator chains stay resident. Returns compute-
/// vertex ids in execution order.
[[nodiscard]] std::vector<int> tiled_mmm_order(int n, int b);

/// Row-major (i, j, k) order for mmm_cdag(n).
[[nodiscard]] std::vector<int> rowmajor_mmm_order(int n);

/// Pick the tile size matching the X-partition optimum for memory m:
/// b = floor(sqrt(m / 3)) (three b x b operands resident), at least 1.
[[nodiscard]] int mmm_tile_for_memory(int m);

}  // namespace conflux::pebble
