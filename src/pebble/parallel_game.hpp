/// \file parallel_game.hpp
/// The parallel red-blue pebble game of §5: P processors with M red pebbles
/// each ("hues"). Compute requires all predecessors red in the processor's
/// own hue; a load may copy from ANY pebble (red of another hue or blue) at
/// uniform cost — the paper's uniform remote-access model.
#pragma once

#include <cstdint>
#include <vector>

#include "pebble/game.hpp"

namespace conflux::pebble {

class ParallelPebbleGame {
 public:
  ParallelPebbleGame(const CDag& dag, int processors, int m);

  /// Load: place a red pebble of processor p's hue on v, which must carry
  /// any pebble (blue or any hue's red). Counts one I/O for p.
  void load(int p, int v);
  /// Store: blue-pebble a vertex that is red in p's hue. Counts one I/O.
  void store(int p, int v);
  /// Compute v on processor p (all predecessors red in p's hue).
  void compute(int p, int v);
  /// Remove p's red pebble.
  void discard(int p, int v);

  [[nodiscard]] bool red(int p, int v) const {
    return red_[static_cast<std::size_t>(p)][static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool blue(int v) const {
    return blue_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] bool any_pebble(int v) const;

  [[nodiscard]] std::uint64_t io_count(int p) const {
    return q_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] std::uint64_t total_io() const;
  [[nodiscard]] bool complete() const;
  [[nodiscard]] int processors() const { return static_cast<int>(red_.size()); }

 private:
  const CDag& dag_;
  int m_;
  std::vector<std::vector<std::uint8_t>> red_;  ///< [processor][vertex]
  std::vector<int> reds_;
  std::vector<std::uint8_t> blue_, computed_;
  std::vector<std::uint64_t> q_;
};

}  // namespace conflux::pebble
