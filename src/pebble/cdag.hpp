/// \file cdag.hpp
/// Computational DAGs for the red-blue pebble game (§2.3). Vertices are
/// versions of array elements (Figure 1's "elements vs vertices"
/// distinction); builders below construct the explicit cDAGs of the paper's
/// running examples for small, testable sizes.
#pragma once

#include <vector>

#include "support/assert.hpp"

namespace conflux::pebble {

/// A DAG with explicit predecessor/successor lists. Vertices are dense ids.
class CDag {
 public:
  /// Add a vertex with the given predecessors; returns its id.
  int add_vertex(const std::vector<int>& preds) {
    const int id = static_cast<int>(preds_.size());
    for (int p : preds) {
      CONFLUX_EXPECTS(p >= 0 && p < id);
      succs_[static_cast<std::size_t>(p)].push_back(id);
    }
    preds_.push_back(preds);
    succs_.emplace_back();
    return id;
  }

  [[nodiscard]] int size() const { return static_cast<int>(preds_.size()); }

  [[nodiscard]] const std::vector<int>& preds(int v) const {
    return preds_[static_cast<std::size_t>(v)];
  }
  [[nodiscard]] const std::vector<int>& succs(int v) const {
    return succs_[static_cast<std::size_t>(v)];
  }

  /// Vertices with no predecessors (the graph inputs, initially blue).
  [[nodiscard]] std::vector<int> inputs() const {
    std::vector<int> out;
    for (int v = 0; v < size(); ++v)
      if (preds(v).empty()) out.push_back(v);
    return out;
  }
  /// Vertices with no successors (the outputs; the game must turn them blue).
  [[nodiscard]] std::vector<int> outputs() const {
    std::vector<int> out;
    for (int v = 0; v < size(); ++v)
      if (succs(v).empty()) out.push_back(v);
    return out;
  }

  [[nodiscard]] bool is_input(int v) const { return preds(v).empty(); }
  [[nodiscard]] bool is_output(int v) const { return succs(v).empty(); }

  /// Number of non-input (compute) vertices.
  [[nodiscard]] int compute_count() const {
    int n = 0;
    for (int v = 0; v < size(); ++v)
      if (!is_input(v)) ++n;
    return n;
  }

 private:
  std::vector<std::vector<int>> preds_;
  std::vector<std::vector<int>> succs_;
};

/// Builders -----------------------------------------------------------------

/// Result of a builder: the dag plus a map from (element, version-ish) to
/// vertex id where useful for assertions.
struct BuiltDag {
  CDag dag;
  /// For matrix builders: the final vertex of element (i, j).
  std::vector<std::vector<int>> final_vertex;
};

/// The LU cDAG of Figure 1 (in-place, no pivoting) for an n x n matrix:
///   for k: for i>k: A(i,k) /= A(k,k)           (S1)
///           for i>k, j>k: A(i,j) -= A(i,k)A(k,j)  (S2)
[[nodiscard]] BuiltDag lu_cdag(int n);

/// Classic MMM cDAG: C(i,j) accumulates over k (a chain of n multiplies per
/// output element; A and B vertices have out-degree n).
[[nodiscard]] BuiltDag mmm_cdag(int n);

/// The out-degree-one example of Figure 2a: C(i,j) = f(A(i,j), b(j)).
[[nodiscard]] BuiltDag elementwise_cdag(int n);

/// Inner product chain of Figure 2b: c = sum_i a(i)*b(i).
[[nodiscard]] BuiltDag inner_product_cdag(int n);

}  // namespace conflux::pebble
