#include "pebble/xpartition.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace conflux::pebble {

namespace {
std::vector<std::uint8_t> member_mask(const CDag& dag,
                                      const std::vector<int>& vs) {
  std::vector<std::uint8_t> mask(static_cast<std::size_t>(dag.size()), 0);
  for (int v : vs) {
    CONFLUX_EXPECTS(v >= 0 && v < dag.size());
    mask[static_cast<std::size_t>(v)] = 1;
  }
  return mask;
}
}  // namespace

std::vector<int> min_set(const CDag& dag, const std::vector<int>& vh) {
  const auto in_vh = member_mask(dag, vh);
  std::vector<int> out;
  for (int v : vh) {
    bool has_inner_succ = false;
    for (int s : dag.succs(v))
      if (in_vh[static_cast<std::size_t>(s)]) {
        has_inner_succ = true;
        break;
      }
    if (!has_inner_succ) out.push_back(v);
  }
  return out;
}

std::vector<int> boundary_dominator(const CDag& dag,
                                    const std::vector<int>& vh) {
  const auto in_vh = member_mask(dag, vh);
  std::set<int> dom;
  for (int v : vh) {
    if (dag.is_input(v)) {
      dom.insert(v);
      continue;
    }
    for (int p : dag.preds(v))
      if (!in_vh[static_cast<std::size_t>(p)]) dom.insert(p);
  }
  return {dom.begin(), dom.end()};
}

bool is_dominator(const CDag& dag, const std::vector<int>& vh,
                  const std::vector<int>& dom) {
  const auto in_vh = member_mask(dag, vh);
  const auto in_dom = member_mask(dag, dom);
  // BFS from the inputs; dominator vertices block expansion. If we can
  // touch a v_h vertex that is not itself in dom, some path sneaks in.
  std::deque<int> queue;
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(dag.size()), 0);
  for (int v : dag.inputs()) {
    if (in_dom[static_cast<std::size_t>(v)]) continue;
    if (in_vh[static_cast<std::size_t>(v)]) return false;
    seen[static_cast<std::size_t>(v)] = 1;
    queue.push_back(v);
  }
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (int s : dag.succs(v)) {
      if (seen[static_cast<std::size_t>(s)]) continue;
      if (in_dom[static_cast<std::size_t>(s)]) continue;  // blocked
      if (in_vh[static_cast<std::size_t>(s)]) return false;
      seen[static_cast<std::size_t>(s)] = 1;
      queue.push_back(s);
    }
  }
  return true;
}

XPartitionCheck validate_xpartition(
    const CDag& dag, const std::vector<std::vector<int>>& parts, int x) {
  XPartitionCheck check;

  std::vector<int> owner(static_cast<std::size_t>(dag.size()), -1);
  bool disjoint = true;
  for (std::size_t h = 0; h < parts.size(); ++h)
    for (int v : parts[h]) {
      if (owner[static_cast<std::size_t>(v)] != -1) disjoint = false;
      owner[static_cast<std::size_t>(v)] = static_cast<int>(h);
    }
  check.disjoint = disjoint;

  bool covers = true;
  for (int v = 0; v < dag.size(); ++v)
    if (!dag.is_input(v) && owner[static_cast<std::size_t>(v)] < 0)
      covers = false;
  check.covers_all = covers;

  // Acyclicity of the contracted graph (Kahn's algorithm).
  const int s = static_cast<int>(parts.size());
  std::vector<std::set<int>> edges(static_cast<std::size_t>(s));
  for (int v = 0; v < dag.size(); ++v) {
    const int a = owner[static_cast<std::size_t>(v)];
    if (a < 0) continue;
    for (int t : dag.succs(v)) {
      const int b = owner[static_cast<std::size_t>(t)];
      if (b >= 0 && b != a) edges[static_cast<std::size_t>(a)].insert(b);
    }
  }
  std::vector<int> indeg(static_cast<std::size_t>(s), 0);
  for (int a = 0; a < s; ++a)
    for (int b : edges[static_cast<std::size_t>(a)])
      ++indeg[static_cast<std::size_t>(b)];
  std::deque<int> ready;
  for (int a = 0; a < s; ++a)
    if (indeg[static_cast<std::size_t>(a)] == 0) ready.push_back(a);
  int visited = 0;
  while (!ready.empty()) {
    const int a = ready.front();
    ready.pop_front();
    ++visited;
    for (int b : edges[static_cast<std::size_t>(a)])
      if (--indeg[static_cast<std::size_t>(b)] == 0) ready.push_back(b);
  }
  check.acyclic = (visited == s);

  bool within = true;
  for (const auto& part : parts) {
    if (static_cast<int>(boundary_dominator(dag, part).size()) > x ||
        static_cast<int>(min_set(dag, part).size()) > x)
      within = false;
  }
  check.within_x = within;
  return check;
}

std::vector<std::vector<int>> partition_from_order(const CDag& dag,
                                                   const std::vector<int>& order,
                                                   int x, int m) {
  CONFLUX_EXPECTS(x > m && m >= 1);
  std::vector<std::vector<int>> parts;
  std::vector<int> current;
  std::set<int> touched;  // distinct non-member sources touched by this part
  for (int v : order) {
    std::set<int> would = touched;
    for (int p : dag.preds(v)) would.insert(p);
    if (static_cast<int>(would.size()) > x - m && !current.empty()) {
      parts.push_back(current);
      current.clear();
      touched.clear();
      for (int p : dag.preds(v)) touched.insert(p);
    } else {
      touched = std::move(would);
    }
    current.push_back(v);
  }
  if (!current.empty()) parts.push_back(current);
  return parts;
}

}  // namespace conflux::pebble
