#include "pebble/game.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <sstream>

namespace conflux::pebble {

RedBluePebbleGame::RedBluePebbleGame(const CDag& dag, int m)
    : dag_(dag),
      m_(m),
      red_(static_cast<std::size_t>(dag.size()), 0),
      blue_(static_cast<std::size_t>(dag.size()), 0),
      computed_(static_cast<std::size_t>(dag.size()), 0) {
  CONFLUX_EXPECTS(m >= 1);
  for (int v : dag.inputs()) {
    blue_[static_cast<std::size_t>(v)] = 1;
    computed_[static_cast<std::size_t>(v)] = 1;  // inputs exist ab initio
  }
}

void RedBluePebbleGame::load(int v) {
  if (!blue_[static_cast<std::size_t>(v)])
    throw IllegalMove("load: vertex has no blue pebble");
  if (red_[static_cast<std::size_t>(v)])
    throw IllegalMove("load: vertex already red");
  if (reds_ >= m_) throw IllegalMove("load: no free red pebbles");
  red_[static_cast<std::size_t>(v)] = 1;
  ++reds_;
  ++q_;
  ++loads_;
}

void RedBluePebbleGame::store(int v) {
  if (!red_[static_cast<std::size_t>(v)])
    throw IllegalMove("store: vertex has no red pebble");
  if (blue_[static_cast<std::size_t>(v)]) return;  // already persisted: no-op
  blue_[static_cast<std::size_t>(v)] = 1;
  ++q_;
  ++stores_;
}

void RedBluePebbleGame::compute(int v) {
  if (dag_.is_input(v)) throw IllegalMove("compute: inputs are not computed");
  if (red_[static_cast<std::size_t>(v)])
    throw IllegalMove("compute: vertex already red");
  for (int p : dag_.preds(v))
    if (!red_[static_cast<std::size_t>(p)]) {
      std::ostringstream os;
      os << "compute(" << v << "): predecessor " << p << " not in fast memory";
      throw IllegalMove(os.str());
    }
  if (reds_ >= m_) throw IllegalMove("compute: no free red pebbles");
  red_[static_cast<std::size_t>(v)] = 1;
  computed_[static_cast<std::size_t>(v)] = 1;
  ++reds_;
}

void RedBluePebbleGame::discard(int v) {
  if (!red_[static_cast<std::size_t>(v)])
    throw IllegalMove("discard: vertex has no red pebble");
  red_[static_cast<std::size_t>(v)] = 0;
  --reds_;
}

bool RedBluePebbleGame::complete() const {
  for (int v = 0; v < dag_.size(); ++v)
    if (dag_.is_output(v) && !blue_[static_cast<std::size_t>(v)]) return false;
  return true;
}

std::vector<int> natural_order(const CDag& dag) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(dag.compute_count()));
  for (int v = 0; v < dag.size(); ++v)
    if (!dag.is_input(v)) order.push_back(v);
  return order;
}

RedBluePebbleGame execute_schedule(const CDag& dag, int m,
                                   const std::vector<int>& order,
                                   Eviction policy) {
  RedBluePebbleGame game(dag, m);

  // Position of each vertex use in the schedule, for Belady and liveness.
  // use_times[v] = ascending positions at which v is a predecessor.
  std::vector<std::vector<int>> use_times(static_cast<std::size_t>(dag.size()));
  for (std::size_t pos = 0; pos < order.size(); ++pos)
    for (int p : dag.preds(order[pos]))
      use_times[static_cast<std::size_t>(p)].push_back(static_cast<int>(pos));
  std::vector<std::size_t> next_use_idx(static_cast<std::size_t>(dag.size()), 0);

  auto next_use = [&](int v, int now) {
    auto& uses = use_times[static_cast<std::size_t>(v)];
    auto& idx = next_use_idx[static_cast<std::size_t>(v)];
    while (idx < uses.size() && uses[idx] < now) ++idx;
    return idx < uses.size() ? uses[idx] : std::numeric_limits<int>::max();
  };

  std::vector<int> resident;  // vertices currently red, LRU order (front=old)
  auto touch = [&](int v) {
    const auto it = std::find(resident.begin(), resident.end(), v);
    if (it != resident.end()) resident.erase(it);
    resident.push_back(v);
  };

  auto evict_one = [&](int now, int protect_after) {
    // Pick a victim among residents not used at the current position.
    int victim = -1;
    if (policy == Eviction::Lru) {
      for (int v : resident) {
        if (next_use(v, now) == now) continue;  // needed right now
        victim = v;
        break;
      }
    } else {
      int furthest = -1;
      for (int v : resident) {
        const int use = next_use(v, now);
        if (use == now) continue;
        if (use > furthest) {
          furthest = use;
          victim = v;
        }
      }
    }
    CONFLUX_ASSERT(victim >= 0);
    (void)protect_after;
    // Persist the victim if it is still needed later (or is an output) and
    // has no blue copy yet.
    const bool needed_later =
        next_use(victim, now) != std::numeric_limits<int>::max() ||
        dag.is_output(victim);
    if (needed_later && !game.blue(victim)) game.store(victim);
    game.discard(victim);
    resident.erase(std::find(resident.begin(), resident.end(), victim));
  };

  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    const int v = order[static_cast<std::size_t>(pos)];
    const int now = static_cast<int>(pos);
    // Bring predecessors in.
    for (int p : dag.preds(v)) {
      if (game.red(p)) {
        touch(p);
        continue;
      }
      CONFLUX_ASSERT(game.blue(p));  // topological order guarantees this
      while (game.reds_in_use() >= m) evict_one(now, -1);
      game.load(p);
      touch(p);
    }
    while (game.reds_in_use() >= m) evict_one(now, -1);
    game.compute(v);
    touch(v);
  }
  // Persist outputs still in fast memory.
  for (int v = 0; v < dag.size(); ++v)
    if (dag.is_output(v) && game.red(v) && !game.blue(v)) game.store(v);
  CONFLUX_ENSURES(game.complete());
  return game;
}

}  // namespace conflux::pebble
