#include "pebble/schedulers.hpp"

#include <algorithm>
#include <cmath>

namespace conflux::pebble {

namespace {
/// Compute-vertex id of the k-th partial product of C(i,j) in mmm_cdag(n):
/// inputs occupy [0, 2n^2), then products in (i, j, k) construction order.
int mmm_vertex(int n, int i, int j, int k) {
  return 2 * n * n + (i * n + j) * n + k;
}
}  // namespace

std::vector<int> tiled_mmm_order(int n, int b) {
  CONFLUX_EXPECTS(n >= 1 && b >= 1);
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n) * n * n);
  // k-tiles outermost so each (i, j) accumulator chain advances across tile
  // rounds in ascending k (a valid topological order); within a (kt, it, jt)
  // tile the b x b x b block is walked i, j, k.
  for (int kt = 0; kt < n; kt += b)
    for (int it = 0; it < n; it += b)
      for (int jt = 0; jt < n; jt += b)
        for (int i = it; i < std::min(it + b, n); ++i)
          for (int j = jt; j < std::min(jt + b, n); ++j)
            for (int k = kt; k < std::min(kt + b, n); ++k)
              order.push_back(mmm_vertex(n, i, j, k));
  return order;
}

std::vector<int> rowmajor_mmm_order(int n) {
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(n) * n * n);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      for (int k = 0; k < n; ++k) order.push_back(mmm_vertex(n, i, j, k));
  return order;
}

int mmm_tile_for_memory(int m) {
  return std::max(1, static_cast<int>(std::floor(std::sqrt(m / 3.0))));
}

}  // namespace conflux::pebble
