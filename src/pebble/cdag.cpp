#include "pebble/cdag.hpp"

namespace conflux::pebble {

BuiltDag lu_cdag(int n) {
  CONFLUX_EXPECTS(n >= 1);
  BuiltDag built;
  auto& dag = built.dag;
  // cur[i][j] = current vertex holding element (i, j).
  std::vector<std::vector<int>> cur(static_cast<std::size_t>(n),
                                    std::vector<int>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j)
      cur[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          dag.add_vertex({});

  for (int k = 0; k < n; ++k) {
    for (int i = k + 1; i < n; ++i) {
      // S1: A(i,k) <- A(i,k) / A(k,k)
      cur[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
          dag.add_vertex({cur[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                          cur[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)]});
    }
    for (int i = k + 1; i < n; ++i)
      for (int j = k + 1; j < n; ++j)
        // S2: A(i,j) <- A(i,j) - A(i,k) * A(k,j)
        cur[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
            dag.add_vertex(
                {cur[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)],
                 cur[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                 cur[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]});
  }
  built.final_vertex = std::move(cur);
  return built;
}

BuiltDag mmm_cdag(int n) {
  CONFLUX_EXPECTS(n >= 1);
  BuiltDag built;
  auto& dag = built.dag;
  std::vector<std::vector<int>> a(static_cast<std::size_t>(n),
                                  std::vector<int>(static_cast<std::size_t>(n)));
  auto b = a;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) a[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = dag.add_vertex({});
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) b[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = dag.add_vertex({});

  built.final_vertex.assign(static_cast<std::size_t>(n),
                            std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      int acc = -1;
      for (int k = 0; k < n; ++k) {
        std::vector<int> preds = {a[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)],
                                  b[static_cast<std::size_t>(k)][static_cast<std::size_t>(j)]};
        if (acc >= 0) preds.push_back(acc);
        acc = dag.add_vertex(preds);
      }
      built.final_vertex[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = acc;
    }
  return built;
}

BuiltDag elementwise_cdag(int n) {
  CONFLUX_EXPECTS(n >= 1);
  BuiltDag built;
  auto& dag = built.dag;
  std::vector<int> b(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) b[static_cast<std::size_t>(j)] = dag.add_vertex({});
  built.final_vertex.assign(static_cast<std::size_t>(n),
                            std::vector<int>(static_cast<std::size_t>(n), -1));
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const int aij = dag.add_vertex({});
      built.final_vertex[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          dag.add_vertex({aij, b[static_cast<std::size_t>(j)]});
    }
  return built;
}

BuiltDag inner_product_cdag(int n) {
  CONFLUX_EXPECTS(n >= 1);
  BuiltDag built;
  auto& dag = built.dag;
  int acc = -1;
  for (int i = 0; i < n; ++i) {
    const int ai = dag.add_vertex({});
    const int bi = dag.add_vertex({});
    std::vector<int> preds = {ai, bi};
    if (acc >= 0) preds.push_back(acc);
    acc = dag.add_vertex(preds);
  }
  built.final_vertex = {{acc}};
  return built;
}

}  // namespace conflux::pebble
