/// \file game.hpp
/// The red-blue pebble game of Hong & Kung (§2.3.1) with strict rule
/// enforcement, plus an automatic executor that plays a given compute order
/// under an eviction policy and counts the I/O operations Q.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "pebble/cdag.hpp"

namespace conflux::pebble {

/// Thrown on an illegal pebbling move.
class IllegalMove : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// Game state: red pebbles (fast memory, at most M), blue pebbles (slow
/// memory, unlimited). Inputs start blue; the game ends when all outputs
/// are blue. Q counts loads + stores.
class RedBluePebbleGame {
 public:
  RedBluePebbleGame(const CDag& dag, int m);

  /// Rule 1: place a red pebble on a blue vertex.
  void load(int v);
  /// Rule 2: place a blue pebble on a red vertex.
  void store(int v);
  /// Rule 3: place a red pebble on a vertex whose predecessors are all red.
  void compute(int v);
  /// Rule 4: remove the red pebble from a vertex.
  void discard(int v);

  [[nodiscard]] bool red(int v) const { return red_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] bool blue(int v) const { return blue_[static_cast<std::size_t>(v)]; }
  [[nodiscard]] bool computed(int v) const {
    return computed_[static_cast<std::size_t>(v)];
  }

  [[nodiscard]] int reds_in_use() const { return reds_; }
  [[nodiscard]] int memory() const { return m_; }
  [[nodiscard]] std::uint64_t io_count() const { return q_; }
  [[nodiscard]] std::uint64_t loads() const { return loads_; }
  [[nodiscard]] std::uint64_t stores() const { return stores_; }

  /// All outputs blue?
  [[nodiscard]] bool complete() const;

  [[nodiscard]] const CDag& dag() const { return dag_; }

 private:
  const CDag& dag_;
  int m_;
  int reds_ = 0;
  std::uint64_t q_ = 0, loads_ = 0, stores_ = 0;
  std::vector<std::uint8_t> red_, blue_, computed_;
};

/// Eviction policies for the executor.
enum class Eviction {
  Lru,     ///< least-recently-used
  Belady,  ///< furthest-next-use in the given compute order (offline optimal
           ///< heuristic for this order)
};

/// Play the game by computing vertices in `order` (must be a topological
/// order of the non-input vertices). Loads predecessors on demand, evicts
/// per policy (storing a victim first whenever it is still needed and not
/// blue), stores outputs at the end. Returns the completed game.
[[nodiscard]] RedBluePebbleGame execute_schedule(const CDag& dag, int m,
                                                 const std::vector<int>& order,
                                                 Eviction policy);

/// Natural (construction) topological order of all non-input vertices.
[[nodiscard]] std::vector<int> natural_order(const CDag& dag);

}  // namespace conflux::pebble
