/// \file block_cyclic.hpp
/// Block-cyclic index arithmetic shared by all distributed LU variants:
/// tiles of size b are dealt round-robin to a 1D ring of p owners.
#pragma once

#include <vector>

#include "support/assert.hpp"

namespace conflux::grid {

/// 1D block-cyclic map of `n` global indices in tiles of `b` over `p`
/// owners: global index g lives in tile g / b, owned by (g / b) % p.
class BlockCyclic1D {
 public:
  BlockCyclic1D(int n, int b, int p) : n_(n), b_(b), p_(p) {
    CONFLUX_EXPECTS(n >= 0 && b >= 1 && p >= 1);
  }

  [[nodiscard]] int extent() const { return n_; }
  [[nodiscard]] int block() const { return b_; }
  [[nodiscard]] int owners() const { return p_; }

  /// Number of tiles overall (last may be partial).
  [[nodiscard]] int tiles() const { return (n_ + b_ - 1) / b_; }

  /// Tile index of a global index.
  [[nodiscard]] int tile_of(int g) const {
    CONFLUX_EXPECTS(g >= 0 && g < n_);
    return g / b_;
  }

  /// Owner of a global index.
  [[nodiscard]] int owner_of(int g) const { return tile_of(g) % p_; }

  /// Owner of a tile.
  [[nodiscard]] int tile_owner(int t) const {
    CONFLUX_EXPECTS(t >= 0 && t < tiles());
    return t % p_;
  }

  /// Size of tile t (b except possibly the last).
  [[nodiscard]] int tile_size(int t) const {
    CONFLUX_EXPECTS(t >= 0 && t < tiles());
    const int start = t * b_;
    return std::min(b_, n_ - start);
  }

  /// Local tile slot of tile t on its owner (t / p).
  [[nodiscard]] int local_tile(int t) const { return t / p_; }

  /// Number of tiles owned by rank r.
  [[nodiscard]] int tiles_of_owner(int r) const {
    CONFLUX_EXPECTS(r >= 0 && r < p_);
    const int full = tiles();
    return (full - r + p_ - 1) / p_;
  }

  /// Number of global indices owned by rank r.
  [[nodiscard]] int extent_of_owner(int r) const {
    int count = 0;
    for (int t = r; t < tiles(); t += p_) count += tile_size(t);
    return count;
  }

  /// Local contiguous position of global index g on its owner (tiles packed
  /// in increasing tile order).
  [[nodiscard]] int local_of(int g) const {
    const int t = tile_of(g);
    return local_tile(t) * b_ + (g - t * b_);
  }

  /// All global indices owned by rank r, ascending.
  [[nodiscard]] std::vector<int> indices_of_owner(int r) const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(extent_of_owner(r)));
    for (int t = r; t < tiles(); t += p_) {
      const int start = t * b_;
      const int stop = start + tile_size(t);
      for (int g = start; g < stop; ++g) out.push_back(g);
    }
    return out;
  }

 private:
  int n_, b_, p_;
};

/// Split `n` items into `parts` near-equal contiguous chunks; returns the
/// half-open range of chunk `part`. Used for the 1D panel layouts (steps
/// 4/6 of Algorithm 1).
struct Range {
  int begin = 0;
  int end = 0;
  [[nodiscard]] int size() const { return end - begin; }
};

[[nodiscard]] inline Range chunk_range(int n, int parts, int part) {
  CONFLUX_EXPECTS(parts >= 1 && part >= 0 && part < parts);
  const long long lo = static_cast<long long>(n) * part / parts;
  const long long hi = static_cast<long long>(n) * (part + 1) / parts;
  return {static_cast<int>(lo), static_cast<int>(hi)};
}

/// Inverse of chunk_range: which chunk does item `i` of `n` fall into?
[[nodiscard]] inline int chunk_of(int n, int parts, int i) {
  CONFLUX_EXPECTS(n > 0 && i >= 0 && i < n);
  // chunk k satisfies floor(n*k/parts) <= i < floor(n*(k+1)/parts).
  long long k = (static_cast<long long>(i) * parts + parts - 1) / n;
  while (k > 0 && chunk_range(n, parts, static_cast<int>(k)).begin > i) --k;
  while (k + 1 < parts && chunk_range(n, parts, static_cast<int>(k)).end <= i)
    ++k;
  return static_cast<int>(k);
}

}  // namespace conflux::grid
