#include "grid/block_cyclic.hpp"

namespace conflux::grid {
// Header-only; TU anchors the target.
}  // namespace conflux::grid
