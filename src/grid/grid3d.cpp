#include "grid/grid3d.hpp"

namespace conflux::grid {
// Grid classes are header-only; the TU anchors the library target.
}  // namespace conflux::grid
