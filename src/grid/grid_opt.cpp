#include "grid/grid_opt.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace conflux::grid {

double conflux_cost_per_rank(double n, int px, int py, int c) {
  const double n2 = n * n;
  const double panel_multicast =
      n2 / (2.0 * c) * (1.0 / px + 1.0 / py);
  const double lazy_reduction =
      n2 * static_cast<double>(c - 1) / (static_cast<double>(px) * py * c);
  return panel_multicast + lazy_reduction;
}

double confchox_cost_per_rank(double n, int px, int py, int c) {
  const double n2 = n * n;
  const double panel_multicast =
      n2 / (2.0 * c) * (1.0 / px + 1.0 / py);
  const double lazy_reduction =
      n2 * static_cast<double>(c - 1) /
      (2.0 * static_cast<double>(px) * py * c);
  return panel_multicast + lazy_reduction;
}

GridChoice optimize_grid(int p_available, int n, double mem_elements_per_rank,
                         int max_layers, GridCostFn cost_fn) {
  CONFLUX_EXPECTS(p_available >= 1 && n >= 1);
  GridChoice best;
  double best_cost = std::numeric_limits<double>::infinity();

  const double n2 = static_cast<double>(n) * n;
  const int c_limit = max_layers > 0 ? max_layers : p_available;

  for (int c = 1; c <= c_limit && c <= p_available; ++c) {
    const int front = p_available / c;  // ranks available for the 2D face
    if (front < 1) break;
    for (int px = 1; px <= front; ++px) {
      const int py = front / px;
      if (py < 1) break;
      // Memory cap: each rank stores N^2/(px*py) elements.
      if (mem_elements_per_rank > 0.0 &&
          n2 / (static_cast<double>(px) * py) > mem_elements_per_rank)
        continue;
      const double cost = cost_fn(n, px, py, c);
      const int active = px * py * c;
      const bool better =
          cost < best_cost * (1.0 - 1e-12) ||
          (cost < best_cost * (1.0 + 1e-12) &&
           (active > best.grid.active() ||
            (active == best.grid.active() &&
             std::abs(px - py) < std::abs(best.grid.px_extent() -
                                          best.grid.py_extent()))));
      if (better) {
        best_cost = cost;
        best.grid = Grid3D(px, py, c);
        best.modeled_cost_per_rank = cost;
        best.idle_ranks = p_available - active;
      }
    }
  }
  CONFLUX_ENSURES(best.grid.active() <= p_available);
  return best;
}

Grid2D choose_grid_2d_all_ranks(int p) {
  CONFLUX_EXPECTS(p >= 1);
  int pr = static_cast<int>(std::sqrt(static_cast<double>(p)));
  while (pr > 1 && p % pr != 0) --pr;
  return {pr, p / pr};
}

Grid2D choose_grid_2d_near_square(int p) {
  CONFLUX_EXPECTS(p >= 1);
  const int pr = std::max(1, static_cast<int>(std::sqrt(static_cast<double>(p))));
  const int pc = std::max(1, p / pr);
  return {pr, pc};
}

int default_block_target(int n, int c) {
  return std::clamp(std::max(4 * c, n / 256), 16, 256);
}

int choose_block_size(int n, int c, int target) {
  CONFLUX_EXPECTS(n >= 1 && c >= 1);
  const int want = std::clamp(target, std::min(c, n), n);
  int best = n;  // n always divides n
  long long best_dist = std::llabs(static_cast<long long>(n) - want);
  for (int d = 1; d * d <= n; ++d) {
    if (n % d != 0) continue;
    for (int candidate : {d, n / d}) {
      if (candidate < std::min(c, n)) continue;
      const long long dist =
          std::llabs(static_cast<long long>(candidate) - want);
      if (dist < best_dist ||
          (dist == best_dist && candidate < best)) {
        best = candidate;
        best_dist = dist;
      }
    }
  }
  return best;
}

}  // namespace conflux::grid
