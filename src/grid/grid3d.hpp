/// \file grid3d.hpp
/// Processor grids. COnfLUX decomposes P processors into a
/// [Px, Py, c] grid (§7.2): a 2D front face tiling the matrix plus c
/// replication layers in the reduction dimension. The 2D baselines use the
/// degenerate c = 1 case with their own (Pr, Pc) choosers.
#pragma once

#include <string>

#include "support/assert.hpp"

namespace conflux::grid {

/// Coordinates of a rank inside a 3D grid.
struct Coord3 {
  int px = 0;  ///< position along matrix rows (tile-row owner dimension)
  int py = 0;  ///< position along matrix columns
  int l = 0;   ///< replication layer

  friend bool operator==(const Coord3&, const Coord3&) = default;
};

/// A [Px, Py, c] processor grid mapped onto global ranks
/// rank = px + Px * (py + Py * l). Ranks >= active() take no part in the
/// computation (the paper's Processor Grid Optimization may deliberately
/// leave a minority of ranks idle).
class Grid3D {
 public:
  Grid3D(int px_extent, int py_extent, int layers)
      : px_(px_extent), py_(py_extent), c_(layers) {
    CONFLUX_EXPECTS(px_extent >= 1 && py_extent >= 1 && layers >= 1);
  }

  [[nodiscard]] int px_extent() const { return px_; }
  [[nodiscard]] int py_extent() const { return py_; }
  [[nodiscard]] int layers() const { return c_; }

  /// Number of ranks this grid actually uses.
  [[nodiscard]] int active() const { return px_ * py_ * c_; }

  /// Global rank of a coordinate.
  [[nodiscard]] int rank_of(Coord3 coord) const {
    CONFLUX_EXPECTS(contains(coord));
    return coord.px + px_ * (coord.py + py_ * coord.l);
  }

  /// Coordinate of an active global rank.
  [[nodiscard]] Coord3 coord_of(int rank) const {
    CONFLUX_EXPECTS(rank >= 0 && rank < active());
    Coord3 coord;
    coord.px = rank % px_;
    coord.py = (rank / px_) % py_;
    coord.l = rank / (px_ * py_);
    return coord;
  }

  [[nodiscard]] bool contains(Coord3 coord) const {
    return coord.px >= 0 && coord.px < px_ && coord.py >= 0 &&
           coord.py < py_ && coord.l >= 0 && coord.l < c_;
  }

  [[nodiscard]] std::string to_string() const {
    // Built by appending (not operator+ chains): GCC 12's -O3 inliner emits
    // a spurious -Wrestrict for `"[" + std::to_string(...)`.
    std::string out = "[";
    out += std::to_string(px_);
    out += " x ";
    out += std::to_string(py_);
    out += " x ";
    out += std::to_string(c_);
    out += "]";
    return out;
  }

  friend bool operator==(const Grid3D&, const Grid3D&) = default;

 private:
  int px_, py_, c_;
};

/// A 2D (Pr x Pc) grid for the ScaLAPACK-style baselines; rank =
/// pr + Pr * pc (column-major process ordering, as ScaLAPACK defaults to).
class Grid2D {
 public:
  Grid2D(int rows, int cols) : pr_(rows), pc_(cols) {
    CONFLUX_EXPECTS(rows >= 1 && cols >= 1);
  }

  [[nodiscard]] int rows() const { return pr_; }
  [[nodiscard]] int cols() const { return pc_; }
  [[nodiscard]] int active() const { return pr_ * pc_; }

  [[nodiscard]] int rank_of(int pr, int pc) const {
    CONFLUX_EXPECTS(pr >= 0 && pr < pr_ && pc >= 0 && pc < pc_);
    return pr + pr_ * pc;
  }
  [[nodiscard]] int row_of(int rank) const { return rank % pr_; }
  [[nodiscard]] int col_of(int rank) const { return rank / pr_; }

  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    out += std::to_string(pr_);
    out += " x ";
    out += std::to_string(pc_);
    out += "]";
    return out;
  }

  friend bool operator==(const Grid2D&, const Grid2D&) = default;

 private:
  int pr_, pc_;
};

}  // namespace conflux::grid
