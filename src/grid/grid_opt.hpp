/// \file grid_opt.hpp
/// Processor Grid Optimization (§8, "Implementation"): given the ranks
/// available, pick the [Px, Py, c] grid with the lowest modeled
/// communication cost, even if that leaves a minority of ranks idle.
/// Greedy use of every rank (what LibSci does) produces the communication
/// outliers visible in the paper's Fig. 6a inset; this module reproduces
/// both behaviours.
#pragma once

#include "grid/grid3d.hpp"

namespace conflux::grid {

/// Result of a grid search.
struct GridChoice {
  Grid3D grid{1, 1, 1};
  double modeled_cost_per_rank = 0.0;  ///< elements communicated (leading terms)
  int idle_ranks = 0;                  ///< ranks deliberately left out
};

/// Leading-order per-rank communication cost (in elements) of COnfLUX on an
/// [Px, Py, c] grid for an N x N matrix:
///
///   N^2/(2c) * (1/Px + 1/Py)      panel multicasts (steps 8/10)
/// + N^2 * (c-1)/(Px*Py*c)         lazy panel reductions (steps 1/5)
///
/// Minimizing this under Px*Py*c <= P reproduces the classic 2.5D optimum
/// c ~ P^(1/3) (and c is additionally capped by the memory budget).
[[nodiscard]] double conflux_cost_per_rank(double n, int px, int py, int c);

/// Leading-order per-rank communication cost (in elements) of COnfCHOX
/// (the 2.5D Cholesky of the journal extension) on an [Px, Py, c] grid:
/// the two layer-sliced panel multicasts cost what COnfLUX's do,
///
///   N^2/(2c) * (1/Px + 1/Py)      row + transposed panel multicasts
/// + N^2 * (c-1)/(2*Px*Py*c)       lazy panel reduction (column strip only)
///
/// — only the column strip needs lazy reduction (the row panel is the
/// transposed column panel), so the reduction term is half of COnfLUX's.
[[nodiscard]] double confchox_cost_per_rank(double n, int px, int py, int c);

/// Per-rank cost function over an [Px, Py, c] grid, in elements — the
/// family-specific objective optimize_grid minimizes
/// (conflux_cost_per_rank for LU, confchox_cost_per_rank for Cholesky).
using GridCostFn = double (*)(double n, int px, int py, int c);

/// Search all [Px, Py, c] with Px*Py*c <= p_available for the grid with
/// the lowest `cost` (default: the COnfLUX objective).
/// `mem_elements_per_rank` caps replication: each rank stores
/// N^2 * c / (Px*Py*c) = N^2/(Px*Py) elements, which must fit in the budget
/// (pass <= 0 for an unlimited budget). `max_layers`, if positive, caps c
/// (used by ablations to force 2D operation).
[[nodiscard]] GridChoice optimize_grid(int p_available, int n,
                                       double mem_elements_per_rank = -1.0,
                                       int max_layers = 0,
                                       GridCostFn cost = conflux_cost_per_rank);

/// LibSci/ScaLAPACK-style greedy 2D grid: uses *all* P ranks with the most
/// square divisor pair Pr x Pc = P (degrades to 1 x P for primes — the
/// source of the Fig. 6a outliers).
[[nodiscard]] Grid2D choose_grid_2d_all_ranks(int p);

/// SLATE-style 2D grid: near-square Pr = floor(sqrt P), Pc = floor(P / Pr),
/// leaving P - Pr*Pc ranks idle. Slightly better than the greedy divisor
/// grid at awkward P.
[[nodiscard]] Grid2D choose_grid_2d_near_square(int p);

/// The 2.5D implementations' shared block-size target (§7.2): v = a * c
/// for a small constant a — big enough for per-message efficiency, small
/// enough that the per-step A00/L00 broadcast stays a lower-order term —
/// with the n/256 floor bounding the number of outer steps. The algorithms
/// (Conflux25D, Confchox25D) and their cost models all consume this one
/// rule, so the modeled lower-order terms track the implemented v.
[[nodiscard]] int default_block_target(int n, int c);

/// Pick the COnfLUX block size v: a small multiple of the replication depth
/// c (the minimum the algorithm needs, §7.2), raised toward `target` for
/// per-message efficiency, and constrained to divide N (this implementation
/// keeps tiles uniform). Returns the divisor of N closest to
/// clamp(target, c, N).
[[nodiscard]] int choose_block_size(int n, int c, int target = 128);

}  // namespace conflux::grid
