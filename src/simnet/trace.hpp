/// \file trace.hpp
/// Lightweight per-rank event recording for the simulated fabric. When a
/// TraceRecorder is attached to a Network, every deliver/multicast records a
/// Send event on the sender's stream and every completed receive records a
/// Recv event on the receiver's stream — in each rank's program order, which
/// is exactly the ordering the static verifier (src/verify) needs to
/// reconstruct the communication graph of a run. Recording is lock-free:
/// each rank's thread appends only to its own slot.
///
/// The recorder also carries the buffer-ownership debug hooks: misuse
/// reports from BufferView (use-after-take) and the paranoid payload-hash
/// check (mutation of an in-flight SharedBuffer) funnel through a
/// process-wide handler that tests and the verifier can intercept.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "simnet/message.hpp"

namespace conflux::simnet {

/// What one trace event records.
enum class EventKind : std::uint8_t { Send, Recv };

/// One communication operation on one rank's stream.
struct TraceEvent {
  EventKind kind = EventKind::Send;
  int peer = -1;            ///< destination (Send) or source (Recv)
  Tag tag = 0;
  std::uint64_t bytes = 0;  ///< logical wire bytes of the message
  bool multicast = false;   ///< Send only: part of a multicast fan-out
  std::uint64_t t_ns = 0;   ///< completion time, steady-clock ns since the
                            ///< recorder's reset() epoch
};

/// Per-rank event log. Attach to a Network with Network::set_trace before
/// the run; read the streams after the SPMD join (which synchronizes).
/// Tests may also populate a recorder by hand to seed defective schedules.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  explicit TraceRecorder(int nranks) { reset(nranks); }

  /// Drop all events and size the recorder for `nranks` ranks.
  void reset(int nranks);

  [[nodiscard]] int nranks() const { return static_cast<int>(slots_.size()); }

  /// Total events over all ranks.
  [[nodiscard]] std::size_t size() const;

  /// Rank `r`'s events in its program order.
  [[nodiscard]] const std::vector<TraceEvent>& rank_events(int r) const;

  /// Append a Send event on `src`'s stream (called by the sender's thread).
  void record_send(int src, int dst, Tag tag, std::uint64_t bytes,
                   bool multicast = false);

  /// Append a Recv event on `dst`'s stream (called by the receiver's thread
  /// once the message has been matched and dequeued).
  void record_recv(int dst, int src, Tag tag, std::uint64_t bytes);

  /// Absolute steady-clock ns of the epoch events are stamped against
  /// (captured in reset()).
  [[nodiscard]] std::uint64_t epoch_ns() const { return epoch_; }

  /// Switch event timestamps to virtual time: `clock_ns` points at one
  /// uint64 per rank (owned by the caller, updated by each rank's own
  /// context). Events are then stamped from the recording rank's virtual
  /// clock, so critical-path analysis over a virtual-time run works in
  /// simulated seconds. reset() clears the attachment; pass nullptr to
  /// detach.
  void set_virtual_clock(const std::uint64_t* clock_ns) { vclock_ = clock_ns; }

 private:
  /// Cache-line-padded so concurrent ranks never share a line.
  struct alignas(64) Slot {
    std::vector<TraceEvent> events;
  };

  [[nodiscard]] std::uint64_t stamp_ns(int rank) const;

  std::vector<Slot> slots_;
  std::uint64_t epoch_ = 0;
  const std::uint64_t* vclock_ = nullptr;
};

/// --- buffer-ownership debug hooks ----------------------------------------

/// Handler invoked on a buffer-ownership violation (use-after-take, mutation
/// of an in-flight shared payload). The default handler throws
/// ContractViolation; the verifier and tests install collectors.
using BufferMisuseHandler = std::function<void(const std::string& what)>;

/// Install `handler` process-wide; returns the previous handler. Passing a
/// null handler restores the throwing default.
BufferMisuseHandler set_buffer_misuse_handler(BufferMisuseHandler handler);

/// Report a violation through the installed handler (used by BufferView and
/// the Network payload-integrity check).
void report_buffer_misuse(const std::string& what);

/// FNV-1a over a payload's bytes — the fingerprint the paranoid payload
/// check stamps on a shared buffer at deliver time and re-checks at receive
/// time to catch in-flight mutation. The span overload covers exclusive
/// (moved-vector) payloads, which the end-to-end integrity mode
/// (Network::set_integrity) also stamps and re-checks.
[[nodiscard]] std::uint64_t payload_fingerprint(std::span<const double> data);
[[nodiscard]] std::uint64_t payload_fingerprint(const SharedBuffer& buf);

}  // namespace conflux::simnet
