#include "simnet/network.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "support/assert.hpp"
#include "support/telemetry.hpp"

namespace conflux::simnet {

namespace {

/// Flip one bit of a payload (injected corruption). Exclusive payloads are
/// flipped in place; shared payloads are cloned first so only the targeted
/// recipient sees the corruption — the other members of a multicast alias
/// the pristine original, exactly like a per-link transmission error.
void flip_payload_bit(Message& msg, std::uint64_t bit) {
  auto flip = [bit](std::vector<double>& data) {
    if (data.empty()) return;
    double& word = data[static_cast<std::size_t>((bit / 64) % data.size())];
    std::uint64_t bits;
    std::memcpy(&bits, &word, sizeof(bits));
    bits ^= std::uint64_t{1} << (bit % 64);
    std::memcpy(&word, &bits, sizeof(bits));
  };
  if (msg.shared) {
    auto clone = std::make_shared<std::vector<double>>(*msg.shared);
    flip(*clone);
    msg.shared = std::move(clone);
  } else {
    flip(msg.exclusive);
  }
}

[[nodiscard]] std::size_t payload_doubles(const Message& msg) {
  return msg.shared ? msg.shared->size() : msg.exclusive.size();
}

/// Beyond this many sources, channel slots are shared (src % slots). Only
/// the destination thread waits on a slot, so sharing never adds waiters —
/// it only coarsens the wakeup filter at very large rank counts.
constexpr std::size_t kMaxChannelSlots = 64;

/// CPU-relax between spin probes.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

Network::Network(int nranks, FabricSpec spec)
    : nranks_(nranks),
      spec_(spec),
      slots_per_rank_(
          std::min<std::size_t>(static_cast<std::size_t>(nranks),
                                kMaxChannelSlots)),
      channels_(static_cast<std::size_t>(nranks) * slots_per_rank_),
      inbound_(static_cast<std::size_t>(nranks)),
      stats_(nranks) {
  CONFLUX_EXPECTS(nranks >= 1);
  // Spinning before blocking only pays when senders can make progress on
  // another core while the receiver burns cycles; on an oversubscribed host
  // the receiver must yield the core immediately instead.
  const unsigned hw = std::thread::hardware_concurrency();
  spin_iters_ = (hw > 1 && static_cast<int>(hw) >= nranks) ? 128 : 0;
  if (spec_.mode == ExecMode::VirtualTime)
    vt_ = std::make_unique<VtRuntime>(*this, nranks, spec_.link);
}

Network::~Network() { stop_team(); }

void Network::enqueue(int dst, int src, Tag tag, Message msg) {
  Channel& ch = channel(dst, src);
  // Per-destination depth/HWM; see Inbound for why this is not per-slot.
  Inbound& in = inbound_[static_cast<std::size_t>(dst)];
  const int depth = in.depth.fetch_add(1, std::memory_order_relaxed) + 1;
  int hwm = in.hwm.load(std::memory_order_relaxed);
  while (depth > hwm &&
         !in.hwm.compare_exchange_weak(hwm, depth, std::memory_order_relaxed))
    ;
  bool wake = false;
  {
    const std::lock_guard<std::mutex> lock(ch.mutex);
    ch.queues[{src, tag}].push_back(std::move(msg));
    if (vt_ != nullptr) {
      // Fiber wakeup shares the channel mutex with the park handshake, so
      // a deliver concurrent with a park either lands before the parking
      // worker's queue re-check or observes the parked flag.
      vt_->wake_if_parked(dst, src, tag);
    } else {
      wake = ch.waiting && ch.waiting_src == src && ch.waiting_tag == tag;
    }
  }
  if (wake) ch.cv.notify_one();
}

void Network::set_trace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ == nullptr) return;
  trace_->reset(nranks_);
  if (vt_ != nullptr) trace_->set_virtual_clock(vt_->clock_ns_array());
}

void Network::set_telemetry(telemetry::TelemetryBoard* board) {
  telemetry_ = board;
  if (telemetry_ == nullptr) return;
  telemetry_->reset(nranks_);
  if (vt_ != nullptr) telemetry_->set_virtual_clock(vt_->clock_ns_array());
  // Queue high-water marks restart with the board so a reused Network
  // reports this run, not the union of all runs.
  for (Inbound& in : inbound_)
    in.hwm.store(in.depth.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void Network::set_faults(FaultPlan* plan) {
  faults_ = plan;
  if (faults_ != nullptr) faults_->reset(nranks_);
}

/// Stamp the payload's FNV-1a fingerprint into the message. Shared payloads
/// are stamped whenever a trace is attached (the in-flight-mutation lint)
/// or integrity mode is on; exclusive payloads only under integrity mode,
/// where the stamp becomes a first-class end-to-end checksum.
void Network::stamp_fingerprint(Message& msg) const {
  if (msg.shared) {
    if (trace_ != nullptr || integrity_) {
      msg.fingerprint = payload_fingerprint(msg.shared);
      if (msg.fingerprint == 0) msg.fingerprint = 1;  // 0 means unstamped
    }
  } else if (integrity_ && !msg.exclusive.empty()) {
    msg.fingerprint =
        payload_fingerprint(std::span<const double>(msg.exclusive));
    if (msg.fingerprint == 0) msg.fingerprint = 1;
  }
}

/// Consult the fault plan for this remote message and apply the verdict:
/// corruption flips a payload bit (after stamping, so the receiver's
/// integrity check sees the mismatch); stalls and delays become virtual-
/// clock charges in VirtualTime mode, or a real sender sleep plus a
/// delivery-ripeness timestamp in Threaded mode. Also performs the LogGP
/// send charge, so injected chaos is makespan-visible in virtual time.
void Network::apply_injection(int src, int dst, Tag tag, Message& msg) {
  FaultPlan::Injection inj;
  if (faults_ != nullptr && src != dst)
    inj = faults_->at_delivery(src, dst, tag, payload_doubles(msg));
  if (inj.corrupt) flip_payload_bit(msg, inj.corrupt_bit);
  if (vt_ != nullptr) {
    // Charge the LogGP injection cost before the telemetry/trace records
    // so their timestamps reflect the post-send clock. Self-sends are free
    // (matching the StatsBoard accounting exemption).
    if (inj.stall_s > 0) vt_->charge_seconds(src, inj.stall_s);
    msg.vt_arrival = (src != dst)
                         ? vt_->charge_send(src, msg.logical_bytes) +
                               inj.delay_s
                         : vt_->clock_seconds(src);
  } else {
    if (inj.stall_s > 0)
      std::this_thread::sleep_for(std::chrono::duration<double>(inj.stall_s));
    if (inj.delay_s > 0)
      msg.not_before_ns =
          telemetry::now_ns() + static_cast<std::uint64_t>(inj.delay_s * 1e9);
  }
}

void Network::deliver(int src, int dst, Tag tag, Message msg) {
  CONFLUX_EXPECTS_CTX(src >= 0 && src < size() && dst >= 0 && dst < size(),
                      (CommContext{.src = src, .dst = dst}.with_tag(tag)));
  stats_.record_send(src, dst, msg.logical_bytes);
  stamp_fingerprint(msg);
  apply_injection(src, dst, tag, msg);
  if (telemetry_ != nullptr && src != dst)
    telemetry_->add_bytes(src, msg.logical_bytes);
  if (trace_ != nullptr) trace_->record_send(src, dst, tag, msg.logical_bytes);
  enqueue(dst, src, tag, std::move(msg));
}

void Network::multicast(int src, std::span<const int> dsts, Tag tag,
                        SharedBuffer payload, std::size_t logical_bytes) {
  CONFLUX_EXPECTS_CTX(src >= 0 && src < size(),
                      (CommContext{.src = src}.with_tag(tag)));
  std::uint64_t fingerprint = 0;
  if ((trace_ != nullptr || integrity_) && payload) {
    fingerprint = payload_fingerprint(payload);
    if (fingerprint == 0) fingerprint = 1;
  }
  for (int dst : dsts) {
    CONFLUX_EXPECTS_CTX(dst >= 0 && dst < size(),
                        (CommContext{.src = src, .dst = dst}.with_tag(tag)));
    stats_.record_send(src, dst, logical_bytes);
    Message msg{payload, {}, logical_bytes, fingerprint, 0};
    // Each destination gets its own injection verdict (and pays its own
    // LogGP charge in virtual time): a P-way multicast is P sends, and a
    // corrupted copy reaches only its targeted recipient.
    apply_injection(src, dst, tag, msg);
    if (telemetry_ != nullptr && src != dst)
      telemetry_->add_bytes(src, logical_bytes);
    if (trace_ != nullptr)
      trace_->record_send(src, dst, tag, logical_bytes, /*multicast=*/true);
    enqueue(dst, src, tag, std::move(msg));
  }
}

/// Re-check the shared-payload fingerprint stamped at deliver time (the
/// in-flight-mutation lint). Runs on the receiver's context once the
/// message has been matched.
void Network::check_fingerprint(int me, int src, Tag tag, const Message& m) {
  if (m.shared && m.fingerprint != 0) {
    std::uint64_t fp = payload_fingerprint(m.shared);
    if (fp == 0) fp = 1;
    if (fp != m.fingerprint) {
      std::ostringstream os;
      os << "shared payload mutated in flight "
         << CommContext{.rank = me, .src = src, .dst = me}.with_tag(tag);
      report_buffer_misuse(os.str());
    }
  }
}

/// End-to-end integrity verification (Network::set_integrity): recompute
/// the payload fingerprint on the receiver and compare against the stamp
/// from deliver time. Runs before the trace's mutation lint, so injected
/// corruption surfaces as the typed PayloadCorrupted, never as a
/// ContractViolation from the lint.
void Network::check_integrity(int me, int src, Tag tag,
                              const Message& m) const {
  if (!integrity_ || m.fingerprint == 0) return;
  std::uint64_t fp = m.shared
                         ? payload_fingerprint(m.shared)
                         : payload_fingerprint(
                               std::span<const double>(m.exclusive));
  if (fp == 0) fp = 1;
  if (fp != m.fingerprint) {
    const CommContext ctx =
        CommContext{.rank = me, .src = src, .dst = me}.with_tag(tag);
    std::ostringstream os;
    os << "payload integrity violation: end-to-end fingerprint mismatch at "
          "receive "
       << ctx << " (" << payload_doubles(m) << " doubles, "
       << m.logical_bytes << " wire bytes)";
    throw PayloadCorrupted(os.str(), ctx);
  }
}

/// Every rank currently parked in a blocking receive. Threaded mode scans
/// the channel slots (each guarded by its own mutex — the caller must hold
/// none of them); virtual-time mode asks the fiber runtime.
std::vector<ParkedRank> Network::parked_snapshot() {
  if (vt_ != nullptr) return vt_->parked_snapshot();
  std::vector<ParkedRank> out;
  for (std::size_t i = 0; i < channels_.size(); ++i) {
    Channel& ch = channels_[i];
    const std::lock_guard<std::mutex> lock(ch.mutex);
    if (ch.waiting)
      out.push_back({static_cast<int>(i / slots_per_rank_), ch.waiting_src,
                     ch.waiting_tag});
  }
  return out;
}

/// Build and throw the located timeout diagnostic for a receive that
/// exceeded the run policy's deadline. Must be called with no channel
/// mutex held (the parked snapshot takes them all in turn).
void Network::throw_receive_timeout(int me, int src, Tag tag,
                                    double waited_s) {
  std::vector<ParkedRank> parked = parked_snapshot();
  const CommContext ctx =
      CommContext{.rank = me, .src = src, .dst = me}.with_tag(tag);
  std::ostringstream os;
  os << "receive deadline exceeded after " << waited_s << " s " << ctx
     << ": no matching message from rank " << src << "; " << parked.size()
     << " other rank(s) parked in receives; inbound queue-depth HWM for "
        "rank "
     << me << " = "
     << inbound_[static_cast<std::size_t>(me)].hwm.load(
            std::memory_order_relaxed);
  throw ReceiveTimeout(os.str(), ctx, std::move(parked), /*deadlock=*/false);
}

Message Network::receive(int me, int src, Tag tag) {
  CONFLUX_EXPECTS_CTX(me >= 0 && me < size() && src >= 0 && src < size(),
                      (CommContext{.rank = me, .src = src, .dst = me}
                           .with_tag(tag)));
  if (vt_ != nullptr) return receive_vt(me, src, tag);
  Channel& ch = channel(me, src);
  const auto key = std::make_pair(src, tag);
  // Wait-time attribution (ConfScope): stamped lazily, only after the
  // first probe misses — a receive whose message already arrived records a
  // zero-length wait without touching the clock at all, so the attached
  // fast path stays within a few percent of the disabled one.
  std::uint64_t wait_begin = 0;

  // Pop the head of the matching queue if it exists *and is ripe*: a
  // fault-injected link delay stamps a not-before instant, and FIFO order
  // within the channel must hold, so an unripe head means "nothing yet"
  // (ripe_at reports when to re-check).
  auto try_pop = [&](Message& out, std::uint64_t* ripe_at) {
    const auto it = ch.queues.find(key);
    if (it == ch.queues.end() || it->second.empty()) return false;
    Message& front = it->second.front();
    if (front.not_before_ns != 0) {
      const std::uint64_t now = telemetry::now_ns();
      if (now < front.not_before_ns) {
        if (ripe_at != nullptr) *ripe_at = front.not_before_ns;
        return false;
      }
    }
    out = std::move(front);
    it->second.pop_front();
    if (it->second.empty()) ch.queues.erase(it);
    inbound_[static_cast<std::size_t>(me)].depth.fetch_sub(
        1, std::memory_order_relaxed);
    return true;
  };

  // Runs on the receiver's thread once a message has been matched: counts
  // the receive, attributes the time parked here to (src, tag), verifies
  // end-to-end integrity, logs the Recv event in program order and
  // re-checks the shared-payload fingerprint (in-flight mutation lint).
  auto finish = [&](Message&& m) -> Message {
    stats_.record_recv(me, src);
    if (telemetry_ != nullptr)
      telemetry_->record_wait(
          me, src, tag, wait_begin,
          wait_begin != 0 ? telemetry::now_ns() : 0, m.logical_bytes);
    check_integrity(me, src, tag, m);
    if (trace_ != nullptr) {
      trace_->record_recv(me, src, tag, m.logical_bytes);
      check_fingerprint(me, src, tag, m);
    }
    return std::move(m);
  };

  Message msg;
  // Clock-free first probe: the common already-delivered case.
  {
    std::unique_lock<std::mutex> lock(ch.mutex, std::try_to_lock);
    if (lock.owns_lock() && try_pop(msg, nullptr))
      return finish(std::move(msg));
  }
  if (telemetry_ != nullptr) wait_begin = telemetry::now_ns();

  // Short spin: cheap when a matching send is already in flight on another
  // core; skipped entirely (spin_iters_ == 0) when ranks outnumber cores.
  for (int i = 0; i < spin_iters_; ++i) {
    {
      std::unique_lock<std::mutex> lock(ch.mutex, std::try_to_lock);
      if (lock.owns_lock() && try_pop(msg, nullptr))
        return finish(std::move(msg));
    }
    if (aborted()) throw JobAborted{};
    cpu_pause();
  }

  const bool deadline_on = policy_.deadline_s > 0;
  const double heartbeat_s = std::max(policy_.heartbeat_s, 1e-3);
  std::uint64_t entered_ns = 0;  ///< stamped lazily on the first miss
  double waited_s = 0;
  bool timed_out = false;
  {
    std::unique_lock<std::mutex> lock(ch.mutex);
    for (;;) {
      if (aborted()) {
        ch.waiting = false;
        throw JobAborted{};
      }
      std::uint64_t ripe_at = 0;
      if (try_pop(msg, &ripe_at)) {
        ch.waiting = false;
        break;
      }
      if (deadline_on) {
        const std::uint64_t now = telemetry::now_ns();
        if (entered_ns == 0) entered_ns = now;
        const double elapsed = static_cast<double>(now - entered_ns) * 1e-9;
        if (elapsed >= policy_.deadline_s) {
          ch.waiting = false;
          waited_s = elapsed;
          timed_out = true;
          break;
        }
      }
      ch.waiting = true;
      ch.waiting_src = src;
      ch.waiting_tag = tag;
      if (ripe_at != 0) {
        // Nobody re-notifies when a delayed head ripens: bound the wait by
        // the time to ripeness (and the deadline heartbeat, if any).
        const std::uint64_t now = telemetry::now_ns();
        double until =
            ripe_at > now ? static_cast<double>(ripe_at - now) * 1e-9 : 0.0;
        if (deadline_on) until = std::min(until, heartbeat_s);
        ch.cv.wait_for(lock, std::chrono::duration<double>(until));
      } else if (deadline_on) {
        ch.cv.wait_for(lock, std::chrono::duration<double>(heartbeat_s));
      } else {
        ch.cv.wait(lock);
      }
    }
  }
  // The timeout diagnostic snapshots every channel — build it with our own
  // channel mutex released (it is not recursive).
  if (timed_out) throw_receive_timeout(me, src, tag, waited_s);
  return finish(std::move(msg));
}

/// Virtual-time receive: no clocks, no spinning — a miss parks the calling
/// fiber until the matching deliver wakes it. Once matched, the message's
/// simulated arrival instant is folded into the receiver's virtual clock
/// and the blocked interval is recorded in virtual time.
Message Network::receive_vt(int me, int src, Tag tag) {
  Channel& ch = channel(me, src);
  const auto key = std::make_pair(src, tag);
  Message msg;
  for (;;) {
    bool got = false;
    {
      const std::lock_guard<std::mutex> lock(ch.mutex);
      const auto it = ch.queues.find(key);
      if (it != ch.queues.end() && !it->second.empty()) {
        msg = std::move(it->second.front());
        it->second.pop_front();
        if (it->second.empty()) ch.queues.erase(it);
        inbound_[static_cast<std::size_t>(me)].depth.fetch_sub(
            1, std::memory_order_relaxed);
        got = true;
      }
    }
    if (got) break;
    if (aborted()) throw JobAborted{};
    vt_->park(me, src, tag);
    if (aborted()) throw JobAborted{};
  }
  const auto [begin_s, end_s] = vt_->absorb_arrival(me, msg.vt_arrival);
  if (policy_.virtual_deadline_s > 0 && end_s > policy_.virtual_deadline_s) {
    // The virtual-time analogue of the real-time deadline: a fault-stalled
    // simulated run whose clock blows past the cap fails deterministically
    // with the same typed diagnostic a threaded timeout produces.
    const CommContext ctx =
        CommContext{.rank = me, .src = src, .dst = me}.with_tag(tag);
    std::ostringstream os;
    os << "virtual-clock deadline exceeded: rank " << me << " reached "
       << end_s << " s > cap " << policy_.virtual_deadline_s << " s " << ctx;
    throw ReceiveTimeout(os.str(), ctx, vt_->parked_snapshot(),
                         /*deadlock=*/false);
  }
  stats_.record_recv(me, src);
  if (telemetry_ != nullptr)
    telemetry_->record_wait(me, src, tag,
                            static_cast<std::uint64_t>(begin_s * 1e9),
                            static_cast<std::uint64_t>(end_s * 1e9),
                            msg.logical_bytes);
  check_integrity(me, src, tag, msg);
  if (trace_ != nullptr) {
    // After absorb_arrival, so the Recv event carries the post-match clock.
    trace_->record_recv(me, src, tag, msg.logical_bytes);
    check_fingerprint(me, src, tag, msg);
  }
  return msg;
}

void Network::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& ch : channels_) {
    const std::lock_guard<std::mutex> lock(ch.mutex);
    ch.cv.notify_all();
  }
  if (vt_ != nullptr) vt_->wake_all_parked();
}

double Network::virtual_makespan() const {
  return vt_ != nullptr ? vt_->makespan_seconds() : 0.0;
}

double Network::virtual_seconds(int rank) const {
  CONFLUX_EXPECTS(rank >= 0 && rank < nranks_);
  return vt_ != nullptr ? vt_->clock_seconds(rank) : 0.0;
}

void Network::charge_flops(int rank, double flops) {
  CONFLUX_EXPECTS(rank >= 0 && rank < nranks_);
  if (vt_ != nullptr) vt_->charge_flops(rank, flops);
}

void Network::note_rank_failure(int rank, std::string message) {
  const std::lock_guard<std::mutex> lock(failures_mutex_);
  rank_failures_.push_back({rank, std::move(message)});
}

std::vector<Network::RankFailure> Network::failure_report() const {
  std::vector<RankFailure> out;
  {
    const std::lock_guard<std::mutex> lock(failures_mutex_);
    out = rank_failures_;
  }
  std::sort(out.begin(), out.end(),
            [](const RankFailure& a, const RankFailure& b) {
              return a.rank < b.rank;
            });
  return out;
}

// --- persistent rank team ---------------------------------------------------

void Network::start_team() {
  if (!team_.empty()) return;
  team_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r)
    team_.emplace_back([this, r] { team_worker(r); });
}

void Network::stop_team() {
  {
    const std::lock_guard<std::mutex> lock(team_mutex_);
    team_shutdown_ = true;
  }
  team_work_cv_.notify_all();
  for (auto& t : team_) t.join();
  team_.clear();
}

void Network::team_worker(int rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(team_mutex_);
      team_work_cv_.wait(lock, [&] {
        return team_shutdown_ || team_generation_ != seen;
      });
      if (team_shutdown_) return;
      seen = team_generation_;
      job = team_job_;
    }
    try {
      (*job)(rank);
    } catch (const JobAborted&) {
      // Another rank failed first; nothing to record.
    } catch (const std::exception& e) {
      note_rank_failure(rank, e.what());
      {
        const std::lock_guard<std::mutex> lock(team_mutex_);
        if (!team_error_) team_error_ = std::current_exception();
      }
      abort();
    } catch (...) {
      note_rank_failure(rank, "unknown exception");
      {
        const std::lock_guard<std::mutex> lock(team_mutex_);
        if (!team_error_) team_error_ = std::current_exception();
      }
      abort();
    }
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(team_mutex_);
      last = (--team_remaining_ == 0);
    }
    if (last) team_done_cv_.notify_all();
  }
}

void Network::run_team(const std::function<void(int)>& job) {
  // A previous run may have been aborted mid-flight: reset the flag and
  // drain any stale messages so the new run starts from a clean fabric.
  if (aborted()) {
    for (auto& ch : channels_) {
      const std::lock_guard<std::mutex> lock(ch.mutex);
      ch.queues.clear();
      ch.waiting = false;
    }
    for (Inbound& in : inbound_) in.depth.store(0, std::memory_order_relaxed);
    aborted_.store(false, std::memory_order_release);
  }
  {
    const std::lock_guard<std::mutex> lock(failures_mutex_);
    rank_failures_.clear();
  }
  // Sequence counters restart per run: an identical rerun injects
  // identically (the determinism contract), and retries re-randomize
  // through FaultPlan::next_attempt, not through leftover counter state.
  if (faults_ != nullptr) faults_->begin_run();
  if (vt_ != nullptr) {
    run_vt(job);
    return;
  }
  start_team();
  {
    const std::lock_guard<std::mutex> lock(team_mutex_);
    team_job_ = &job;
    team_error_ = nullptr;
    team_remaining_ = nranks_;
    ++team_generation_;
  }
  team_work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(team_mutex_);
    team_done_cv_.wait(lock, [&] { return team_remaining_ == 0; });
    team_job_ = nullptr;
    error = std::move(team_error_);
    team_error_ = nullptr;
  }
  flush_queue_hwm();
  if (error) std::rethrow_exception(error);
}

/// Flush per-rank inbound queue-depth high-water marks into the telemetry
/// board. Called after the run_team / run_vt join, which synchronizes, so
/// the relaxed reads see every worker's final values.
void Network::flush_queue_hwm() {
  if (telemetry_ == nullptr) return;
  for (int dst = 0; dst < nranks_; ++dst)
    telemetry_->set_queue_hwm(
        dst, inbound_[static_cast<std::size_t>(dst)].hwm.load(
                 std::memory_order_relaxed));
}

void Network::run_vt(const std::function<void(int)>& job) {
  std::exception_ptr error;
  try {
    vt_->run(job, /*workers=*/0);
  } catch (...) {
    error = std::current_exception();
  }
  flush_queue_hwm();
  if (error) std::rethrow_exception(error);
}

}  // namespace conflux::simnet
