#include "simnet/network.hpp"

#include "support/assert.hpp"

namespace conflux::simnet {

Network::Network(int nranks)
    : boxes_(static_cast<std::size_t>(nranks)), stats_(nranks) {
  CONFLUX_EXPECTS(nranks >= 1);
}

void Network::deliver(int src, int dst, Tag tag, Message msg) {
  CONFLUX_EXPECTS(src >= 0 && src < size() && dst >= 0 && dst < size());
  stats_.record_send(src, dst, msg.logical_bytes);
  Mailbox& box = boxes_[static_cast<std::size_t>(dst)];
  {
    const std::lock_guard<std::mutex> lock(box.mutex);
    box.queues[{src, tag}].push_back(std::move(msg));
  }
  box.cv.notify_all();
}

Message Network::receive(int me, int src, Tag tag) {
  CONFLUX_EXPECTS(me >= 0 && me < size() && src >= 0 && src < size());
  Mailbox& box = boxes_[static_cast<std::size_t>(me)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::make_pair(src, tag);
  for (;;) {
    if (aborted()) throw JobAborted{};
    auto it = box.queues.find(key);
    if (it != box.queues.end() && !it->second.empty()) {
      Message msg = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) box.queues.erase(it);
      return msg;
    }
    box.cv.wait(lock);
  }
}

void Network::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& box : boxes_) {
    const std::lock_guard<std::mutex> lock(box.mutex);
    box.cv.notify_all();
  }
}

}  // namespace conflux::simnet
