#include "simnet/network.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/telemetry.hpp"

namespace conflux::simnet {

namespace {

/// Beyond this many sources, channel slots are shared (src % slots). Only
/// the destination thread waits on a slot, so sharing never adds waiters —
/// it only coarsens the wakeup filter at very large rank counts.
constexpr std::size_t kMaxChannelSlots = 64;

/// CPU-relax between spin probes.
inline void cpu_pause() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}

}  // namespace

Network::Network(int nranks)
    : nranks_(nranks),
      slots_per_rank_(
          std::min<std::size_t>(static_cast<std::size_t>(nranks),
                                kMaxChannelSlots)),
      channels_(static_cast<std::size_t>(nranks) * slots_per_rank_),
      stats_(nranks) {
  CONFLUX_EXPECTS(nranks >= 1);
  // Spinning before blocking only pays when senders can make progress on
  // another core while the receiver burns cycles; on an oversubscribed host
  // the receiver must yield the core immediately instead.
  const unsigned hw = std::thread::hardware_concurrency();
  spin_iters_ = (hw > 1 && static_cast<int>(hw) >= nranks) ? 128 : 0;
}

Network::~Network() { stop_team(); }

void Network::enqueue(Channel& ch, int src, Tag tag, Message msg) {
  bool wake = false;
  {
    const std::lock_guard<std::mutex> lock(ch.mutex);
    ch.queues[{src, tag}].push_back(std::move(msg));
    ++ch.queued;
    ch.queued_hwm = std::max(ch.queued_hwm, ch.queued);
    wake = ch.waiting && ch.waiting_src == src && ch.waiting_tag == tag;
  }
  if (wake) ch.cv.notify_one();
}

void Network::set_trace(TraceRecorder* trace) {
  trace_ = trace;
  if (trace_ != nullptr) trace_->reset(nranks_);
}

void Network::set_telemetry(telemetry::TelemetryBoard* board) {
  telemetry_ = board;
  if (telemetry_ == nullptr) return;
  telemetry_->reset(nranks_);
  // Queue high-water marks restart with the board so a reused Network
  // reports this run, not the union of all runs.
  for (Channel& ch : channels_) {
    const std::lock_guard<std::mutex> lock(ch.mutex);
    ch.queued_hwm = ch.queued;
  }
}

void Network::deliver(int src, int dst, Tag tag, Message msg) {
  CONFLUX_EXPECTS_CTX(src >= 0 && src < size() && dst >= 0 && dst < size(),
                      (CommContext{.src = src, .dst = dst}.with_tag(tag)));
  stats_.record_send(src, dst, msg.logical_bytes);
  if (telemetry_ != nullptr && src != dst)
    telemetry_->add_bytes(src, msg.logical_bytes);
  if (trace_ != nullptr) {
    trace_->record_send(src, dst, tag, msg.logical_bytes);
    if (msg.shared) {
      msg.fingerprint = payload_fingerprint(msg.shared);
      if (msg.fingerprint == 0) msg.fingerprint = 1;  // 0 means unstamped
    }
  }
  enqueue(channel(dst, src), src, tag, std::move(msg));
}

void Network::multicast(int src, std::span<const int> dsts, Tag tag,
                        SharedBuffer payload, std::size_t logical_bytes) {
  CONFLUX_EXPECTS_CTX(src >= 0 && src < size(),
                      (CommContext{.src = src}.with_tag(tag)));
  std::uint64_t fingerprint = 0;
  if (trace_ != nullptr && payload) {
    fingerprint = payload_fingerprint(payload);
    if (fingerprint == 0) fingerprint = 1;
  }
  for (int dst : dsts) {
    CONFLUX_EXPECTS_CTX(dst >= 0 && dst < size(),
                        (CommContext{.src = src, .dst = dst}.with_tag(tag)));
    stats_.record_send(src, dst, logical_bytes);
    if (telemetry_ != nullptr && src != dst)
      telemetry_->add_bytes(src, logical_bytes);
    if (trace_ != nullptr)
      trace_->record_send(src, dst, tag, logical_bytes, /*multicast=*/true);
    enqueue(channel(dst, src), src, tag,
            Message{payload, {}, logical_bytes, fingerprint});
  }
}

Message Network::receive(int me, int src, Tag tag) {
  CONFLUX_EXPECTS_CTX(me >= 0 && me < size() && src >= 0 && src < size(),
                      (CommContext{.rank = me, .src = src, .dst = me}
                           .with_tag(tag)));
  Channel& ch = channel(me, src);
  const auto key = std::make_pair(src, tag);
  // Wait-time attribution (ConfScope): stamped lazily, only after the
  // first probe misses — a receive whose message already arrived records a
  // zero-length wait without touching the clock at all, so the attached
  // fast path stays within a few percent of the disabled one.
  std::uint64_t wait_begin = 0;

  auto try_pop = [&](Message& out) {
    const auto it = ch.queues.find(key);
    if (it == ch.queues.end() || it->second.empty()) return false;
    out = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty()) ch.queues.erase(it);
    --ch.queued;
    return true;
  };

  // Runs on the receiver's thread once a message has been matched: counts
  // the receive, attributes the time parked here to (src, tag), logs the
  // Recv event in program order and re-checks the shared-payload
  // fingerprint stamped at deliver time (in-flight mutation lint).
  auto finish = [&](Message&& m) -> Message {
    stats_.record_recv(me, src);
    if (telemetry_ != nullptr)
      telemetry_->record_wait(
          me, src, tag, wait_begin,
          wait_begin != 0 ? telemetry::now_ns() : 0, m.logical_bytes);
    if (trace_ != nullptr) {
      trace_->record_recv(me, src, tag, m.logical_bytes);
      if (m.shared && m.fingerprint != 0) {
        std::uint64_t fp = payload_fingerprint(m.shared);
        if (fp == 0) fp = 1;
        if (fp != m.fingerprint) {
          std::ostringstream os;
          os << "shared payload mutated in flight "
             << CommContext{.rank = me, .src = src, .dst = me}.with_tag(tag);
          report_buffer_misuse(os.str());
        }
      }
    }
    return std::move(m);
  };

  Message msg;
  // Clock-free first probe: the common already-delivered case.
  {
    std::unique_lock<std::mutex> lock(ch.mutex, std::try_to_lock);
    if (lock.owns_lock() && try_pop(msg)) return finish(std::move(msg));
  }
  if (telemetry_ != nullptr) wait_begin = telemetry::now_ns();

  // Short spin: cheap when a matching send is already in flight on another
  // core; skipped entirely (spin_iters_ == 0) when ranks outnumber cores.
  for (int i = 0; i < spin_iters_; ++i) {
    {
      std::unique_lock<std::mutex> lock(ch.mutex, std::try_to_lock);
      if (lock.owns_lock() && try_pop(msg)) return finish(std::move(msg));
    }
    if (aborted()) throw JobAborted{};
    cpu_pause();
  }

  std::unique_lock<std::mutex> lock(ch.mutex);
  for (;;) {
    if (aborted()) throw JobAborted{};
    if (try_pop(msg)) {
      ch.waiting = false;
      return finish(std::move(msg));
    }
    ch.waiting = true;
    ch.waiting_src = src;
    ch.waiting_tag = tag;
    ch.cv.wait(lock);
  }
}

void Network::abort() {
  aborted_.store(true, std::memory_order_release);
  for (auto& ch : channels_) {
    const std::lock_guard<std::mutex> lock(ch.mutex);
    ch.cv.notify_all();
  }
}

// --- persistent rank team ---------------------------------------------------

void Network::start_team() {
  if (!team_.empty()) return;
  team_.reserve(static_cast<std::size_t>(nranks_));
  for (int r = 0; r < nranks_; ++r)
    team_.emplace_back([this, r] { team_worker(r); });
}

void Network::stop_team() {
  {
    const std::lock_guard<std::mutex> lock(team_mutex_);
    team_shutdown_ = true;
  }
  team_work_cv_.notify_all();
  for (auto& t : team_) t.join();
  team_.clear();
}

void Network::team_worker(int rank) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(team_mutex_);
      team_work_cv_.wait(lock, [&] {
        return team_shutdown_ || team_generation_ != seen;
      });
      if (team_shutdown_) return;
      seen = team_generation_;
      job = team_job_;
    }
    try {
      (*job)(rank);
    } catch (const JobAborted&) {
      // Another rank failed first; nothing to record.
    } catch (...) {
      {
        const std::lock_guard<std::mutex> lock(team_mutex_);
        if (!team_error_) team_error_ = std::current_exception();
      }
      abort();
    }
    bool last = false;
    {
      const std::lock_guard<std::mutex> lock(team_mutex_);
      last = (--team_remaining_ == 0);
    }
    if (last) team_done_cv_.notify_all();
  }
}

void Network::run_team(const std::function<void(int)>& job) {
  // A previous run may have been aborted mid-flight: reset the flag and
  // drain any stale messages so the new run starts from a clean fabric.
  if (aborted()) {
    for (auto& ch : channels_) {
      const std::lock_guard<std::mutex> lock(ch.mutex);
      ch.queues.clear();
      ch.queued = 0;
      ch.waiting = false;
    }
    aborted_.store(false, std::memory_order_release);
  }
  start_team();
  {
    const std::lock_guard<std::mutex> lock(team_mutex_);
    team_job_ = &job;
    team_error_ = nullptr;
    team_remaining_ = nranks_;
    ++team_generation_;
  }
  team_work_cv_.notify_all();
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(team_mutex_);
    team_done_cv_.wait(lock, [&] { return team_remaining_ == 0; });
    team_job_ = nullptr;
    error = std::move(team_error_);
    team_error_ = nullptr;
  }
  // Flush per-rank inbound queue-depth high-water marks into the telemetry
  // board. The join above synchronizes, so the channel reads see every
  // worker's final values.
  if (telemetry_ != nullptr) {
    for (int dst = 0; dst < nranks_; ++dst) {
      int hwm = 0;
      for (std::size_t s = 0; s < slots_per_rank_; ++s) {
        Channel& ch = channels_[static_cast<std::size_t>(dst) *
                                    slots_per_rank_ + s];
        const std::lock_guard<std::mutex> lock(ch.mutex);
        hwm = std::max(hwm, ch.queued_hwm);
      }
      telemetry_->set_queue_hwm(dst, hwm);
    }
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace conflux::simnet
