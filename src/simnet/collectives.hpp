/// \file collectives.hpp
/// Group collectives built from point-to-point messages with the tree shapes
/// production MPI implementations use (binomial broadcast/reduce,
/// dissemination barrier). Volumes therefore match what Score-P would count
/// for the equivalent MPI calls. Broadcast trees forward one immutable
/// shared payload hop-to-hop (zero-copy fan-out; see message.hpp).
///
/// Every rank in the group must call the collective with the same tag.
/// Internal rounds derive sub-tags, so a user tag must not be reused for a
/// different concurrent operation within the same group.
#pragma once

#include <initializer_list>
#include <span>
#include <utility>
#include <vector>

#include "simnet/comm.hpp"

namespace conflux::simnet {

/// An ordered set of distinct global ranks participating in a collective.
/// Membership lookup is precomputed at construction: `index_of` is O(1) for
/// contiguous rank ranges (the common "world" case) and O(log n) otherwise —
/// it sits on the entry path of every collective round, so it must not be a
/// linear scan.
class Group {
 public:
  Group() = default;
  Group(std::initializer_list<int> ranks)
      : Group(std::vector<int>(ranks)) {}
  explicit Group(std::vector<int> ranks);

  /// The trivial group [0, n).
  [[nodiscard]] static Group iota(int n);

  [[nodiscard]] int size() const { return static_cast<int>(ranks_.size()); }
  [[nodiscard]] const std::vector<int>& ranks() const { return ranks_; }

  /// Global rank of the member at `index`.
  [[nodiscard]] int at(int index) const {
    return ranks_[static_cast<std::size_t>(index)];
  }

  /// Index of `rank` within the group; -1 when absent.
  [[nodiscard]] int index_of(int rank) const;

 private:
  std::vector<int> ranks_;
  int contiguous_base_ = -1;  ///< ranks_[i] == base + i when >= 0
  std::vector<std::pair<int, int>> sorted_;  ///< (rank, index), by rank
};

/// Binomial-tree broadcast of `data` from the group member at `root_index`.
/// Non-root buffers are overwritten.
void bcast(const Comm& comm, const Group& group, int root_index,
           std::vector<double>& data, Tag tag);

/// Ghost broadcast: only a logical byte count (known at the root) travels.
/// Returns the byte count on every rank.
std::size_t bcast_ghost(const Comm& comm, const Group& group, int root_index,
                        std::size_t logical_bytes, Tag tag);

/// Broadcast of int indices, bit-packed two per double slot (exactly 4 B
/// per element on the wire, same tree shape as bcast).
void bcast_ints(const Comm& comm, const Group& group, int root_index,
                std::vector<int>& data, Tag tag);

/// Binomial-tree sum-reduction into the member at `root_index` (in place:
/// on the root, `inout` holds the element-wise total on return; on other
/// ranks it is consumed).
void reduce_sum(const Comm& comm, const Group& group, int root_index,
                std::span<double> inout, Tag tag);

/// Ghost reduction with the same tree shape and byte counts.
void reduce_ghost(const Comm& comm, const Group& group, int root_index,
                  std::size_t logical_bytes, Tag tag);

/// reduce_sum followed by bcast (tree allreduce).
void allreduce_sum(const Comm& comm, const Group& group,
                   std::span<double> inout, Tag tag);

/// Max-magnitude-and-location allreduce, the pivot-search primitive of
/// partial pivoting: combines (|value|, global_row) pairs, 12 B on the wire
/// per message (double + int).
struct MaxLoc {
  double value = 0.0;
  int location = -1;
};
MaxLoc allreduce_maxloc(const Comm& comm, const Group& group, MaxLoc mine,
                        Tag tag);

/// Direct gather of variable-length buffers to `root_index`. Returns, on the
/// root only, one buffer per group member (in group order); empty elsewhere.
std::vector<std::vector<double>> gather(const Comm& comm, const Group& group,
                                        int root_index,
                                        std::span<const double> mine, Tag tag);

/// Dissemination barrier (zero-byte messages).
void barrier(const Comm& comm, const Group& group, Tag tag);

}  // namespace conflux::simnet
