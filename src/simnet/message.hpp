/// \file message.hpp
/// Message and tag types for the simulated message-passing fabric.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace conflux::simnet {

/// Message tag. Collective operations derive internal round tags by shifting
/// the user tag left by 8 bits, so user tags must fit in 56 bits. The
/// `make_tag` helper composes (phase, step, sub) triples used by the LU
/// implementations.
using Tag = std::uint64_t;

/// Compose a tag from an algorithm phase, an outer-loop step and a
/// sub-operation id. All three are range-checked in debug contract mode.
[[nodiscard]] constexpr Tag make_tag(std::uint32_t phase, std::uint32_t step,
                                     std::uint32_t sub = 0) noexcept {
  return (static_cast<Tag>(phase) << 40) | (static_cast<Tag>(step) << 12) |
         static_cast<Tag>(sub & 0xFFF);
}

/// A message in flight. `payload` may be empty for "ghost" messages used in
/// dry-run mode: those carry only a logical byte count, which is what the
/// communication-volume accounting consumes. `logical_bytes` is the number
/// of bytes the message would occupy on a real network (8 per double, 4 per
/// int index), independent of whether the payload is materialized.
struct Message {
  std::vector<double> payload;
  std::size_t logical_bytes = 0;
};

}  // namespace conflux::simnet
