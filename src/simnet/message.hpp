/// \file message.hpp
/// Message, tag and payload-buffer types for the simulated message-passing
/// fabric. Payloads come in two flavours: an *exclusive* buffer owned by a
/// single recipient (point-to-point sends move it through the mailbox with
/// zero copies), and an *immutable shared* buffer that can sit in many
/// mailboxes at once (multicast, broadcast trees) the way real MPI
/// broadcast trees and RDMA transports share registered buffers. Receivers
/// get a non-owning BufferView over either flavour and copy out explicitly
/// (`take()`) only where mutation is needed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace conflux::simnet {

/// Report a buffer-ownership violation (use-after-take, mutation of an
/// in-flight shared payload) through the process-wide debug hook installed
/// via set_buffer_misuse_handler (trace.hpp). The default handler throws
/// ContractViolation.
void report_buffer_misuse(const std::string& what);

/// Message tag. Collective operations derive internal round tags by shifting
/// the user tag left by 8 bits, so user tags must fit in 56 bits. The
/// `make_tag` helper composes (phase, step, sub) triples used by the LU
/// implementations.
using Tag = std::uint64_t;

/// Field widths of the make_tag packing: phase<<44 | step<<20 | sub. `sub`
/// gets 20 bits so rank-indexed sub-operation ids stay collision-free past
/// the paper-scale P = 4096 (the historical 12-bit layout silently wrapped
/// `sub & 0xFFF` in release builds, aliasing two channels' tags); the
/// remaining 12 phase bits keep the composed value inside the 56 bits the
/// collectives' round-tag shift requires.
inline constexpr std::uint32_t kTagPhaseBits = 12;
inline constexpr std::uint32_t kTagStepBits = 24;
inline constexpr std::uint32_t kTagSubBits = 20;

/// Compose a tag from an algorithm phase, an outer-loop step and a
/// sub-operation id. The range check is unconditional (it throws
/// ContractViolation in release builds too): a wrapped field would silently
/// alias another channel's tag, which is strictly worse than failing.
[[nodiscard]] constexpr Tag make_tag(std::uint32_t phase, std::uint32_t step,
                                     std::uint32_t sub = 0) {
  if (phase >= (1u << kTagPhaseBits) || step >= (1u << kTagStepBits) ||
      sub >= (1u << kTagSubBits))
    throw ContractViolation(
        "make_tag field out of range (phase < 2^12, step < 2^24, sub < "
        "2^20)");
  return (static_cast<Tag>(phase) << (kTagStepBits + kTagSubBits)) |
         (static_cast<Tag>(step) << kTagSubBits) | static_cast<Tag>(sub);
}

/// An immutable, shareable payload. All recipients of a multicast alias the
/// same storage; nobody mutates it (BufferView::take copies out).
using SharedBuffer = std::shared_ptr<const std::vector<double>>;

/// Wrap an owned vector as an immutable shared payload (no copy).
[[nodiscard]] inline SharedBuffer make_shared_buffer(
    std::vector<double>&& data) {
  return std::make_shared<std::vector<double>>(std::move(data));
}

/// Copy a span into a fresh immutable shared payload.
[[nodiscard]] inline SharedBuffer make_shared_buffer(
    std::span<const double> data) {
  return std::make_shared<std::vector<double>>(data.begin(), data.end());
}

/// A receiver's non-owning handle to a delivered payload. The data may be
/// aliased by other recipients of the same multicast; reading is always
/// safe, and `take()` produces a private mutable copy (free for exclusive
/// point-to-point payloads: their storage is simply handed over).
class BufferView {
 public:
  BufferView() = default;
  explicit BufferView(SharedBuffer shared, std::size_t logical_bytes = 0)
      : shared_(std::move(shared)), logical_bytes_(logical_bytes) {}
  BufferView(SharedBuffer shared, std::vector<double>&& exclusive,
             std::size_t logical_bytes)
      : shared_(std::move(shared)),
        owned_(std::move(exclusive)),
        logical_bytes_(logical_bytes) {}

  /// Wire size of the message this view came from (4 B/int, 8 B/double).
  [[nodiscard]] std::size_t logical_bytes() const { return logical_bytes_; }
  [[nodiscard]] std::size_t size() const {
    return shared_ ? shared_->size() : owned_.size();
  }
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] const double* data() const {
    check_not_taken();
    return shared_ ? shared_->data() : owned_.data();
  }
  [[nodiscard]] std::span<const double> span() const {
    check_not_taken();
    return shared_ ? std::span<const double>(*shared_)
                   : std::span<const double>(owned_);
  }
  [[nodiscard]] double operator[](std::size_t i) const { return data()[i]; }

  /// The underlying shared payload (for zero-copy re-forwarding down a
  /// broadcast tree); null for exclusive point-to-point payloads.
  [[nodiscard]] const SharedBuffer& shared() const { return shared_; }

  /// Copy the payload out into a private, mutable vector, releasing this
  /// view. Exclusive payloads are moved (zero-copy — the mailbox handoff
  /// already transferred sole ownership under the channel mutex); shared
  /// payloads are copied, never mutated in place. The view is dead
  /// afterwards: any further data access trips the buffer-ownership debug
  /// hook (use-after-take is always a bug — for exclusive payloads the
  /// storage is gone, for shared ones the caller clearly confused its copy
  /// with the shared original).
  [[nodiscard]] std::vector<double> take() && {
    check_not_taken();
    taken_ = true;
    if (shared_) {
      std::vector<double> copy = *shared_;
      shared_.reset();
      return copy;
    }
    return std::move(owned_);
  }

 private:
  void check_not_taken() const {
    if (taken_) report_buffer_misuse("BufferView accessed after take()");
  }

  SharedBuffer shared_;
  std::vector<double> owned_;
  std::size_t logical_bytes_ = 0;
  bool taken_ = false;
};

/// A message in flight. Exactly one of `shared` / `exclusive` carries data
/// — or neither, for the "ghost" messages of dry-run mode, which carry only
/// a logical byte count (what the communication-volume accounting
/// consumes). `logical_bytes` is the number of bytes the message would
/// occupy on a real network (8 per double, 4 per int index), independent of
/// whether a payload is materialized. A multicast enqueues the same
/// refcounted `shared` payload into every destination mailbox, so N
/// recipients share one buffer in real memory.
struct Message {
  SharedBuffer shared;
  std::vector<double> exclusive;
  std::size_t logical_bytes = 0;
  /// Content fingerprint of `shared` stamped at deliver time when a trace
  /// is attached (0 = unstamped). Re-checked at receive time: a mismatch
  /// means some rank mutated an immutable in-flight payload — the
  /// mutation-of-SharedBuffer lint of the verifier.
  std::uint64_t fingerprint = 0;
  /// Virtual-time mode only: simulated arrival instant in seconds
  /// (sender's clock after LogGP injection, plus the link latency). The
  /// receiver's clock advances to at least this value when it matches the
  /// message. Unused (0) in threaded mode.
  double vt_arrival = 0;
  /// Threaded mode only: earliest steady-clock instant (ns) at which the
  /// receiver may match this message — how an injected link delay
  /// (simnet/faults.hpp) manifests as real latency. 0 = ripe immediately.
  /// FIFO order within a (src, dst, tag) channel is preserved: an unripe
  /// message at the head makes the receiver wait, never skips.
  std::uint64_t not_before_ns = 0;
};

}  // namespace conflux::simnet
