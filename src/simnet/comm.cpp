// comm.hpp is header-only; this translation unit exists so the library has a
// stable archive member for the target and to catch ODR issues early.
#include "simnet/comm.hpp"

namespace conflux::simnet {
static_assert(sizeof(Comm) <= 2 * sizeof(void*),
              "Comm is intended to be a cheap value handle");
}  // namespace conflux::simnet
