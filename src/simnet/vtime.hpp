/// \file vtime.hpp
/// The virtual-time execution mode of the simulated fabric: an event-driven
/// scheduler that multiplexes thousands of cooperative rank contexts
/// (ucontext fibers with small mmap'd stacks) onto the shared thread pool,
/// and a LogGP-style latency/bandwidth clock that advances a per-rank
/// virtual clock on every send, receive and (optionally) charged flop.
///
/// Why it exists: the persistent rank team runs one OS thread per simulated
/// rank, which caps usable P at roughly the host's core count. The paper's
/// headline figures run at P = 512–4096 on Piz Daint; with fibers, those
/// scales run on a laptop, and the virtual clocks turn the run into a
/// *predicted wall-clock* for the modeled machine.
///
/// Determinism: the simulation is a pure dataflow. Each blocking receive
/// names its (src, tag) channel and FIFO order within a channel is
/// preserved, so the k-th matching receive always pairs with the k-th
/// matching send regardless of host interleaving. Virtual timestamps are
/// computed from sender clocks at send time and folded into receiver clocks
/// at match time — both functions of the dataflow only — so the predicted
/// makespan and all CommVolume counters are bit-identical across repeated
/// runs and across worker counts (the determinism contract test_vtime
/// pins).
///
/// Clock model (LogGP with o folded into alpha, G = beta):
///   send  k bytes:  sender clock += k * beta (injection serialization);
///                   arrival = sender clock + alpha
///   recv:           receiver clock = max(receiver clock, arrival)
///   flops f:        clock += f * gamma (engines charge their local compute)
///   self-sends are free, matching the StatsBoard accounting exemption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <vector>

#include "simnet/faults.hpp"
#include "simnet/message.hpp"

namespace conflux::simnet {

class Network;

/// LogGP-style machine parameters for the virtual clock. The defaults are a
/// generic modern interconnect (1 us latency, 10 GB/s per-rank injection
/// bandwidth, comm-only); the presets in models/machines.hpp carry
/// per-machine values.
struct LinkModel {
  double alpha_s = 1.0e-6;          ///< per-message latency (seconds)
  double beta_s_per_byte = 1.0e-10;  ///< inverse injection bandwidth
  double gamma_s_per_flop = 0.0;     ///< compute cost; 0 = comm-only clock
};

/// How a Network executes its SPMD ranks.
enum class ExecMode {
  Threaded,     ///< persistent rank team: one OS thread per rank
  VirtualTime,  ///< cooperative fibers + LogGP virtual clock
};

/// Execution-mode selection carried by the Network constructor (and by
/// factor::FactorConfig::fabric through every backend).
struct FabricSpec {
  ExecMode mode = ExecMode::Threaded;
  LinkModel link;
};

/// The fiber scheduler behind ExecMode::VirtualTime. Owned by the Network;
/// everything here is internal to the fabric — user code selects the mode
/// through FabricSpec and reads clocks through Network::virtual_makespan()
/// / Comm::virtual_seconds().
class VtRuntime {
 public:
  VtRuntime(Network& net, int nranks, LinkModel link);
  ~VtRuntime();

  VtRuntime(const VtRuntime&) = delete;
  VtRuntime& operator=(const VtRuntime&) = delete;

  /// Run `job(rank)` once per rank on cooperative fibers, multiplexed over
  /// `workers` host threads (clamped to the shared pool's size by the
  /// caller). Rethrows the first rank exception after all fibers unwind.
  void run(const std::function<void(int)>& job, int workers);

  // --- called from inside a rank's fiber -----------------------------------

  /// Suspend the calling rank's fiber until a message on (src, tag) is
  /// enqueued for it (or the job aborts). The caller re-checks its queue on
  /// return; lost wakeups are impossible because the parked flag is
  /// registered under the destination channel's mutex after the fiber's
  /// context is saved, with a queue re-check in between.
  void park(int rank, int src, Tag tag);

  /// Advance `rank`'s clock by the LogGP injection cost of `bytes` and
  /// return the arrival instant (clock + alpha). Self-sends are free:
  /// callers skip the charge for src == dst.
  double charge_send(int rank, std::size_t bytes);

  /// Fold a matched message's arrival into `rank`'s clock; returns the
  /// blocked interval [begin, end) in seconds (zero-length when the message
  /// was already there).
  std::pair<double, double> absorb_arrival(int rank, double arrival);

  /// Charge local compute to `rank`'s clock (gamma * flops).
  void charge_flops(int rank, double flops);

  /// Advance `rank`'s clock by `seconds` of injected virtual time — how
  /// fault-injected stalls (simnet/faults.hpp) fold into the simulated run
  /// so they are makespan-visible without any real sleeping.
  void charge_seconds(int rank, double seconds);

  // --- called by the Network / deliver path --------------------------------

  /// Wake `dst` if it is parked on (src, tag). Must be called with the
  /// (dst, src) channel's mutex held (the same mutex the parking handshake
  /// uses), which makes the park/deliver race benign.
  void wake_if_parked(int dst, int src, Tag tag);

  /// Wake every parked fiber (abort path); each resumes, observes the
  /// aborted flag and unwinds with JobAborted.
  void wake_all_parked();

  // --- post-join queries ----------------------------------------------------

  [[nodiscard]] double clock_seconds(int rank) const;
  [[nodiscard]] double makespan_seconds() const;

  /// Per-rank virtual clocks in nanoseconds, updated by each rank's own
  /// fiber — the timestamp source TelemetryBoard/TraceRecorder use in
  /// virtual-time mode.
  [[nodiscard]] const std::uint64_t* clock_ns_array() const;

  /// Every rank currently parked in a blocking receive and the (src, tag)
  /// it waits on — the parked-channel snapshot a ReceiveTimeout diagnostic
  /// carries. Safe to call from any thread.
  [[nodiscard]] std::vector<ParkedRank> parked_snapshot() const;

 private:
  struct RankCtx;
  struct Impl;
  friend struct Impl;

  /// makecontext entry point; the RankCtx pointer arrives split across the
  /// two unsigned ints (makecontext passes only ints portably).
  static void trampoline(unsigned int hi, unsigned int lo);

  void worker_loop();
  void resume(RankCtx& c);
  void finish_park(RankCtx& c);
  void push_ready(int rank);
  void fiber_main(RankCtx& c);

  Network* net_;
  int nranks_;
  LinkModel link_;
  Impl* impl_;
};

}  // namespace conflux::simnet
