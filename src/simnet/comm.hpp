/// \file comm.hpp
/// Per-rank communication endpoint: typed point-to-point operations over the
/// simulated network, in both numeric (real payload) and dry-run ("ghost",
/// bytes-only) flavours. Byte accounting uses 8 B per double and 4 B per
/// int index, matching what the MPI datatypes would put on the wire.
/// Payloads are immutable shared buffers (see message.hpp): `send_shared`
/// and `multicast` move a refcounted buffer through the fabric with zero
/// copies, and `recv_view` hands the receiver a non-owning view.
#pragma once

#include <cstring>
#include <span>
#include <vector>

#include "simnet/network.hpp"
#include "support/assert.hpp"

namespace conflux::simnet {

/// Bit-pack int indices two-per-double-slot (4 B each on the wire). The
/// element count travels separately as `logical_bytes / sizeof(int)`.
[[nodiscard]] inline std::vector<double> pack_ints(std::span<const int> data) {
  std::vector<double> packed((data.size() + 1) / 2, 0.0);
  if (!data.empty())
    std::memcpy(packed.data(), data.data(), data.size() * sizeof(int));
  return packed;
}

/// Inverse of pack_ints.
[[nodiscard]] inline std::vector<int> unpack_ints(const BufferView& view,
                                                  std::size_t count) {
  CONFLUX_ASSERT(view.size() * sizeof(double) >= count * sizeof(int));
  std::vector<int> out(count);
  if (count > 0) std::memcpy(out.data(), view.data(), count * sizeof(int));
  return out;
}

/// A rank's handle to the fabric. Cheap to copy; all state lives in the
/// Network it references.
class Comm {
 public:
  Comm(Network& net, int rank) : net_(&net), rank_(rank) {
    CONFLUX_EXPECTS(rank >= 0 && rank < net.size());
  }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return net_->size(); }
  [[nodiscard]] Network& network() const { return *net_; }

  // --- point-to-point, shared immutable payloads ---------------------------

  /// Send an immutable shared buffer (8 B/element on the wire). Zero-copy:
  /// the mailbox holds a reference, not a duplicate.
  void send_shared(int dst, Tag tag, SharedBuffer buf) const {
    const std::size_t bytes = buf->size() * sizeof(double);
    send_shared(dst, tag, std::move(buf), bytes);
  }

  /// As above with an explicit wire size (for packed int / mixed payloads).
  void send_shared(int dst, Tag tag, SharedBuffer buf,
                   std::size_t logical_bytes) const {
    Message msg;
    msg.shared = std::move(buf);
    msg.logical_bytes = logical_bytes;
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Enqueue one immutable buffer to every destination — the multicast
  /// primitive. All recipients alias the same storage; accounting equals
  /// `dsts.size()` individual sends.
  void multicast(std::span<const int> dsts, Tag tag, SharedBuffer buf) const {
    const std::size_t bytes = buf->size() * sizeof(double);
    net_->multicast(rank_, dsts, tag, std::move(buf), bytes);
  }

  /// Multicast with an explicit wire size (packed int / mixed payloads).
  void multicast(std::span<const int> dsts, Tag tag, SharedBuffer buf,
                 std::size_t logical_bytes) const {
    net_->multicast(rank_, dsts, tag, std::move(buf), logical_bytes);
  }

  /// Ghost multicast: only byte counts travel (dry-run mode).
  void multicast_ghost(std::span<const int> dsts, Tag tag,
                       std::size_t logical_bytes) const {
    net_->multicast(rank_, dsts, tag, nullptr, logical_bytes);
  }

  /// Blocking receive of a non-owning view of the payload. Reading is
  /// always safe; call `.take()` to copy out where mutation is needed
  /// (free — a storage handover — for point-to-point payloads).
  [[nodiscard]] BufferView recv_view(int src, Tag tag) const {
    Message msg = net_->receive(rank_, src, tag);
    return BufferView(std::move(msg.shared), std::move(msg.exclusive),
                      msg.logical_bytes);
  }

  // --- point-to-point, exclusive payloads ----------------------------------

  /// Send `data` (8 B/element on the wire) to `dst`.
  void send(int dst, Tag tag, std::span<const double> data) const {
    send(dst, tag, std::vector<double>(data.begin(), data.end()));
  }

  /// Move-send an owned buffer (no copy at all for large panels: the
  /// receiver's `take()` gets this very storage).
  void send(int dst, Tag tag, std::vector<double>&& data) const {
    Message msg;
    msg.logical_bytes = data.size() * sizeof(double);
    msg.exclusive = std::move(data);
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Send int indices, bit-packed two per double slot (4 B/element on the
  /// wire, exactly).
  void send_ints(int dst, Tag tag, std::span<const int> data) const {
    Message msg;
    msg.logical_bytes = data.size() * sizeof(int);
    msg.exclusive = pack_ints(data);
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Blocking receive of a double buffer from `src` (private copy).
  [[nodiscard]] std::vector<double> recv(int src, Tag tag) const {
    return recv_view(src, tag).take();
  }

  /// Blocking receive of an int index buffer from `src`.
  [[nodiscard]] std::vector<int> recv_ints(int src, Tag tag) const {
    const BufferView view = recv_view(src, tag);
    return unpack_ints(view, view.logical_bytes() / sizeof(int));
  }

  // --- point-to-point, ghost (dry-run) ------------------------------------

  /// Send only a byte count: exercises the same channel and accounting as a
  /// real message without materializing data. Used by dry-run mode for
  /// matrix payloads whose contents cannot affect communication volume.
  void send_ghost(int dst, Tag tag, std::size_t logical_bytes) const {
    Message msg;
    msg.logical_bytes = logical_bytes;
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Ghost send sized in doubles.
  void send_ghost_doubles(int dst, Tag tag, std::size_t count) const {
    send_ghost(dst, tag, count * sizeof(double));
  }

  /// Blocking receive of a ghost message; returns its logical byte count.
  [[nodiscard]] std::size_t recv_ghost(int src, Tag tag) const {
    return net_->receive(rank_, src, tag).logical_bytes;
  }

  // --- convenience ---------------------------------------------------------

  /// Simultaneous exchange with a partner (both sides must call). Returns
  /// the partner's buffer.
  [[nodiscard]] std::vector<double> exchange(
      int partner, Tag tag, std::span<const double> mine) const {
    send(partner, tag, mine);
    return recv(partner, tag);
  }

  /// This rank's accumulated volume.
  [[nodiscard]] CommVolume volume() const {
    return net_->stats().rank_volume(rank_);
  }

  // --- virtual time (no-ops / 0 in threaded mode) --------------------------

  /// True when the fabric runs in virtual-time mode (fibers + LogGP clock).
  [[nodiscard]] bool virtual_time() const { return net_->virtual_time(); }

  /// Charge local compute to this rank's virtual clock (gamma * flops).
  void charge_flops(double flops) const { net_->charge_flops(rank_, flops); }

  /// This rank's virtual clock in simulated seconds.
  [[nodiscard]] double virtual_seconds() const {
    return net_->virtual_seconds(rank_);
  }

 private:
  Network* net_;
  int rank_;
};

}  // namespace conflux::simnet
