/// \file comm.hpp
/// Per-rank communication endpoint: typed point-to-point operations over the
/// simulated network, in both numeric (real payload) and dry-run ("ghost",
/// bytes-only) flavours. Byte accounting uses 8 B per double and 4 B per
/// int index, matching what the MPI datatypes would put on the wire.
#pragma once

#include <span>
#include <vector>

#include "simnet/network.hpp"
#include "support/assert.hpp"

namespace conflux::simnet {

/// A rank's handle to the fabric. Cheap to copy; all state lives in the
/// Network it references.
class Comm {
 public:
  Comm(Network& net, int rank) : net_(&net), rank_(rank) {
    CONFLUX_EXPECTS(rank >= 0 && rank < net.size());
  }

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return net_->size(); }
  [[nodiscard]] Network& network() const { return *net_; }

  // --- point-to-point, real payloads -------------------------------------

  /// Send `data` (8 B/element on the wire) to `dst`.
  void send(int dst, Tag tag, std::span<const double> data) const {
    Message msg;
    msg.payload.assign(data.begin(), data.end());
    msg.logical_bytes = data.size() * sizeof(double);
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Move-send an owned buffer (avoids the copy for large panels).
  void send(int dst, Tag tag, std::vector<double>&& data) const {
    Message msg;
    msg.logical_bytes = data.size() * sizeof(double);
    msg.payload = std::move(data);
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Send int indices (4 B/element on the wire; transported as doubles,
  /// which represent indices < 2^53 exactly).
  void send_ints(int dst, Tag tag, std::span<const int> data) const {
    Message msg;
    msg.payload.reserve(data.size());
    for (int x : data) msg.payload.push_back(static_cast<double>(x));
    msg.logical_bytes = data.size() * sizeof(int);
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Blocking receive of a double buffer from `src`.
  [[nodiscard]] std::vector<double> recv(int src, Tag tag) const {
    return net_->receive(rank_, src, tag).payload;
  }

  /// Blocking receive of an int index buffer from `src`.
  [[nodiscard]] std::vector<int> recv_ints(int src, Tag tag) const {
    const Message msg = net_->receive(rank_, src, tag);
    std::vector<int> out;
    out.reserve(msg.payload.size());
    for (double x : msg.payload) out.push_back(static_cast<int>(x));
    return out;
  }

  // --- point-to-point, ghost (dry-run) ------------------------------------

  /// Send only a byte count: exercises the same channel and accounting as a
  /// real message without materializing data. Used by dry-run mode for
  /// matrix payloads whose contents cannot affect communication volume.
  void send_ghost(int dst, Tag tag, std::size_t logical_bytes) const {
    Message msg;
    msg.logical_bytes = logical_bytes;
    net_->deliver(rank_, dst, tag, std::move(msg));
  }

  /// Ghost send sized in doubles.
  void send_ghost_doubles(int dst, Tag tag, std::size_t count) const {
    send_ghost(dst, tag, count * sizeof(double));
  }

  /// Blocking receive of a ghost message; returns its logical byte count.
  [[nodiscard]] std::size_t recv_ghost(int src, Tag tag) const {
    return net_->receive(rank_, src, tag).logical_bytes;
  }

  // --- convenience ---------------------------------------------------------

  /// Simultaneous exchange with a partner (both sides must call). Returns
  /// the partner's buffer.
  [[nodiscard]] std::vector<double> exchange(
      int partner, Tag tag, std::span<const double> mine) const {
    send(partner, tag, mine);
    return recv(partner, tag);
  }

  /// This rank's accumulated volume.
  [[nodiscard]] CommVolume volume() const {
    return net_->stats().rank_volume(rank_);
  }

 private:
  Network* net_;
  int rank_;
};

}  // namespace conflux::simnet
