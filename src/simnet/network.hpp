/// \file network.hpp
/// The simulated interconnect: per-(destination, source) channel slots with
/// tag matching and FIFO ordering per (source, destination, tag) channel —
/// the ordering guarantee MPI gives for matching sends/receives.
///
/// Two execution modes share the fabric (FabricSpec, vtime.hpp):
///   - Threaded: the persistent rank team — one OS thread per simulated
///     rank, created once and reused across successive SPMD runs.
///   - VirtualTime: cooperative fibers multiplexed over the shared thread
///     pool, with a LogGP clock advancing per-rank virtual time on every
///     send/receive — the mode that runs P = 512–4096 on a laptop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "simnet/faults.hpp"
#include "simnet/message.hpp"
#include "simnet/stats.hpp"
#include "simnet/trace.hpp"
#include "simnet/vtime.hpp"

namespace conflux::telemetry {
class TelemetryBoard;
}

namespace conflux::simnet {

/// Thrown out of blocked receives when another rank aborted the job
/// (exception escaped its SPMD body); prevents deadlock on error paths.
class JobAborted : public std::runtime_error {
 public:
  JobAborted() : std::runtime_error("simnet job aborted by another rank") {}
};

/// A shared-memory stand-in for the machine's network fabric. Sends are
/// asynchronous (never block — unbounded mailboxes); receives block until a
/// matching message arrives. All byte accounting flows through `stats()`.
///
/// Concurrency design: each destination owns an array of channel slots,
/// one per source (hashed down to at most kMaxChannelSlots). Only the
/// destination rank's thread ever waits on a slot, so a deliver wakes at
/// most one thread, and it does so with a targeted `notify_one` — and only
/// when the receiver is actually parked on the (source, tag) pair being
/// delivered. Receivers spin briefly before blocking when the host has
/// spare cores; on oversubscribed hosts (fewer cores than ranks) they block
/// immediately.
class Network {
 public:
  explicit Network(int nranks, FabricSpec spec = {});
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] int size() const { return nranks_; }

  /// Deposit a message from `src` into `dst`'s mailbox under `tag`.
  void deliver(int src, int dst, Tag tag, Message msg);

  /// Deposit the same immutable payload into every destination's mailbox.
  /// Zero copies: all recipients share one refcounted buffer. Accounting is
  /// identical to `dsts.size()` point-to-point sends of the same size.
  void multicast(int src, std::span<const int> dsts, Tag tag,
                 SharedBuffer payload, std::size_t logical_bytes);

  /// Block until a message from `src` with `tag` is available for `me`.
  [[nodiscard]] Message receive(int me, int src, Tag tag);

  /// Run `job(rank)` once for every rank. In Threaded mode this uses the
  /// persistent rank team: threads are created lazily on the first call and
  /// reused by later calls (and by later runs over the same Network). In
  /// VirtualTime mode the ranks run as cooperative fibers multiplexed over
  /// the shared thread pool. Either way, if any rank throws, the job is
  /// aborted (blocked receives wake up with JobAborted) and the first
  /// exception is rethrown here; a subsequent run resets the abort flag and
  /// drains any stale messages. All rank failures of the run (not just the
  /// rethrown first) are collected in failure_report().
  void run_team(const std::function<void(int)>& job);

  /// As run_team, with a containment policy installed for this and
  /// subsequent runs (see RunPolicy in faults.hpp).
  void run_team(const std::function<void(int)>& job, const RunPolicy& policy) {
    set_policy(policy);
    run_team(job);
  }

  // --- virtual time ---------------------------------------------------------

  [[nodiscard]] const FabricSpec& fabric() const { return spec_; }
  [[nodiscard]] bool virtual_time() const { return vt_ != nullptr; }

  /// Predicted wall-clock of the last virtual-time run: the maximum
  /// per-rank virtual clock after the join. 0 in Threaded mode.
  [[nodiscard]] double virtual_makespan() const;

  /// `rank`'s current virtual clock in seconds (0 in Threaded mode). Valid
  /// from the rank's own fiber during a run, or from anywhere after the
  /// join.
  [[nodiscard]] double virtual_seconds(int rank) const;

  /// Advance `rank`'s virtual clock by gamma * flops (no-op in Threaded
  /// mode or when the link model is comm-only). Called by the engines from
  /// the rank's own context.
  void charge_flops(int rank, double flops);

  /// Mark the job as aborted and wake all blocked receivers.
  void abort();
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

  [[nodiscard]] StatsBoard& stats() { return stats_; }
  [[nodiscard]] const StatsBoard& stats() const { return stats_; }

  /// Attach a per-rank event recorder: every deliver/multicast/receive is
  /// logged in program order (see trace.hpp), and shared payloads get the
  /// paranoid in-flight-mutation fingerprint check. The recorder is reset
  /// to this network's rank count. Pass nullptr to detach. Must not be
  /// called while a job is running.
  void set_trace(TraceRecorder* trace);
  [[nodiscard]] TraceRecorder* trace() const { return trace_; }

  /// Attach a ConfScope telemetry board (see support/telemetry.hpp): every
  /// deliver attributes wire bytes to the sender's open span, every receive
  /// records a (src, tag) wait sample, and per-rank channel queue-depth
  /// high-water marks are flushed into the board after each run_team join.
  /// The board is reset to this network's rank count. Pass nullptr to
  /// detach. Must not be called while a job is running.
  void set_telemetry(telemetry::TelemetryBoard* board);
  [[nodiscard]] telemetry::TelemetryBoard* telemetry() const {
    return telemetry_;
  }

  // --- ConfChaos: faults, containment, failure aggregation ------------------

  /// Attach a seeded fault plan (simnet/faults.hpp): every remote deliver
  /// consults it and the decided delays/stalls/bit-flips are applied — as
  /// real sleeps and delivery-ripeness timestamps in Threaded mode, as
  /// virtual-clock charges in VirtualTime mode. The plan is reset to this
  /// network's rank count; its sequence counters restart at the top of
  /// every run_team. Pass nullptr to detach (zero hot-path cost). Must not
  /// be called while a job is running.
  void set_faults(FaultPlan* plan);
  [[nodiscard]] FaultPlan* faults() const { return faults_; }

  /// End-to-end payload integrity: stamp every payload (shared *and*
  /// exclusive) with its FNV-1a fingerprint at deliver time and re-verify
  /// on the receiver once the message is matched, raising PayloadCorrupted
  /// on mismatch. Off (the default) costs nothing.
  void set_integrity(bool on) { integrity_ = on; }
  [[nodiscard]] bool integrity() const { return integrity_; }

  /// Install the containment policy for subsequent runs: receive deadlines
  /// (Threaded) and the virtual-clock cap (VirtualTime). All-zero restores
  /// the wait-forever default.
  void set_policy(const RunPolicy& policy) { policy_ = policy; }
  [[nodiscard]] const RunPolicy& policy() const { return policy_; }

  /// One rank's failure in the last run.
  struct RankFailure {
    int rank = -1;
    std::string message;
  };

  /// Every rank that failed during the last run_team, sorted by rank —
  /// run_team rethrows only the first exception, this reports them all.
  [[nodiscard]] std::vector<RankFailure> failure_report() const;

 private:
  friend class VtRuntime;  ///< parks/wakes under the channel mutexes

  /// One (destination, source-slot) channel. Queues are keyed by
  /// (source, tag) so slot sharing at very large rank counts stays correct.
  struct Channel {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::pair<int, Tag>, std::deque<Message>> queues;
    // What the destination thread is parked on, if anything. Guarded by
    // `mutex`; lets deliver skip the notify for non-matching traffic.
    int waiting_src = -1;
    Tag waiting_tag = 0;
    bool waiting = false;
  };

  /// Per-destination inbound queue-depth accounting for ConfScope. This
  /// lives beside the channels (not inside them) deliberately: channel
  /// slots are shared between sources at P > kMaxChannelSlots, so a
  /// per-slot counter would report a per-slot high-water mark as if it
  /// were the rank's — under sharing, neither a max nor a sum over slots
  /// reconstructs the true simultaneous per-rank depth. Atomics, because
  /// deliverers into different slots of one destination hold different
  /// channel mutexes.
  struct Inbound {
    std::atomic<int> depth{0};
    std::atomic<int> hwm{0};
  };

  [[nodiscard]] Channel& channel(int dst, int src) {
    return channels_[static_cast<std::size_t>(dst) * slots_per_rank_ +
                     static_cast<std::size_t>(src) % slots_per_rank_];
  }
  void enqueue(int dst, int src, Tag tag, Message msg);
  [[nodiscard]] Message receive_vt(int me, int src, Tag tag);
  void check_fingerprint(int me, int src, Tag tag, const Message& m);
  void run_vt(const std::function<void(int)>& job);
  void flush_queue_hwm();
  void stamp_fingerprint(Message& msg) const;
  void check_integrity(int me, int src, Tag tag, const Message& m) const;
  void apply_injection(int src, int dst, Tag tag, Message& msg);
  void note_rank_failure(int rank, std::string message);
  /// Every rank parked in a blocking receive right now (threaded channels
  /// or vtime fibers). Callers must not hold any channel mutex.
  [[nodiscard]] std::vector<ParkedRank> parked_snapshot();
  [[noreturn]] void throw_receive_timeout(int me, int src, Tag tag,
                                          double waited_s);

  int nranks_ = 0;
  FabricSpec spec_;
  std::size_t slots_per_rank_ = 0;
  std::vector<Channel> channels_;
  std::vector<Inbound> inbound_;
  StatsBoard stats_;
  TraceRecorder* trace_ = nullptr;
  telemetry::TelemetryBoard* telemetry_ = nullptr;
  FaultPlan* faults_ = nullptr;
  bool integrity_ = false;
  RunPolicy policy_;
  mutable std::mutex failures_mutex_;
  std::vector<RankFailure> rank_failures_;
  std::atomic<bool> aborted_{false};
  int spin_iters_ = 0;  ///< 0 on oversubscribed hosts
  std::unique_ptr<VtRuntime> vt_;  ///< non-null iff VirtualTime mode

  // --- persistent rank team -------------------------------------------------
  void team_worker(int rank);
  void start_team();
  void stop_team();

  std::vector<std::thread> team_;
  std::mutex team_mutex_;
  std::condition_variable team_work_cv_;   ///< workers wait for a generation
  std::condition_variable team_done_cv_;   ///< caller waits for completion
  const std::function<void(int)>* team_job_ = nullptr;
  std::uint64_t team_generation_ = 0;
  int team_remaining_ = 0;
  bool team_shutdown_ = false;
  std::exception_ptr team_error_;
};

}  // namespace conflux::simnet
