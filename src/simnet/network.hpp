/// \file network.hpp
/// The simulated interconnect: P mailboxes with (source, tag) matching and
/// FIFO ordering per (source, destination, tag) channel — the ordering
/// guarantee MPI gives for matching sends/receives.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>
#include <utility>
#include <vector>

#include "simnet/message.hpp"
#include "simnet/stats.hpp"

namespace conflux::simnet {

/// Thrown out of blocked receives when another rank aborted the job
/// (exception escaped its SPMD body); prevents deadlock on error paths.
class JobAborted : public std::runtime_error {
 public:
  JobAborted() : std::runtime_error("simnet job aborted by another rank") {}
};

/// A shared-memory stand-in for the machine's network fabric. Sends are
/// asynchronous (never block — unbounded mailboxes); receives block until a
/// matching message arrives. All byte accounting flows through `stats()`.
class Network {
 public:
  explicit Network(int nranks);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(boxes_.size()); }

  /// Deposit a message from `src` into `dst`'s mailbox under `tag`.
  void deliver(int src, int dst, Tag tag, Message msg);

  /// Block until a message from `src` with `tag` is available for `me`.
  [[nodiscard]] Message receive(int me, int src, Tag tag);

  /// Mark the job as aborted and wake all blocked receivers.
  void abort();
  [[nodiscard]] bool aborted() const {
    return aborted_.load(std::memory_order_acquire);
  }

  [[nodiscard]] StatsBoard& stats() { return stats_; }
  [[nodiscard]] const StatsBoard& stats() const { return stats_; }

 private:
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    std::map<std::pair<int, Tag>, std::deque<Message>> queues;
  };

  std::vector<Mailbox> boxes_;
  StatsBoard stats_;
  std::atomic<bool> aborted_{false};
};

}  // namespace conflux::simnet
