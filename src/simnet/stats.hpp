/// \file stats.hpp
/// Per-rank communication-volume accounting — the reproduction's equivalent
/// of the paper's Score-P instrumentation ("we count the aggregate bytes
/// sent over the network", §8).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace conflux::simnet {

/// Aggregated communication statistics for one rank or a whole job.
struct CommVolume {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;

  CommVolume& operator+=(const CommVolume& other) {
    bytes_sent += other.bytes_sent;
    bytes_received += other.bytes_received;
    messages_sent += other.messages_sent;
    messages_received += other.messages_received;
    return *this;
  }
};

/// Lock-free per-rank counters. Each sender updates its own `sent` slot and
/// the destination's `received` byte slot; the receiver's own thread counts
/// `messages_received` at dequeue time. The receive side may be hit by
/// several sender threads concurrently, hence the atomics (relaxed:
/// counters are read only after the SPMD join, which synchronizes).
///
/// After a complete run every enqueued message has been dequeued, so
/// total().messages_sent == total().messages_received — the parity the
/// fabric tests assert.
class StatsBoard {
 public:
  explicit StatsBoard(int nranks) : slots_(static_cast<std::size_t>(nranks)) {}

  void record_send(int src, int dst, std::size_t bytes) {
    if (src == dst) return;  // local copy, free (uniform remote-cost model)
    auto& s = slots_[static_cast<std::size_t>(src)];
    s.bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
    s.messages_sent.fetch_add(1, std::memory_order_relaxed);
    slots_[static_cast<std::size_t>(dst)].bytes_received.fetch_add(
        bytes, std::memory_order_relaxed);
  }

  /// Called by the receiver once a message is matched and dequeued (the
  /// same self-delivery exemption as record_send keeps the parity exact).
  void record_recv(int dst, int src) {
    if (src == dst) return;
    slots_[static_cast<std::size_t>(dst)].messages_received.fetch_add(
        1, std::memory_order_relaxed);
  }

  [[nodiscard]] CommVolume rank_volume(int rank) const {
    const auto& s = slots_[static_cast<std::size_t>(rank)];
    return {s.bytes_sent.load(std::memory_order_relaxed),
            s.bytes_received.load(std::memory_order_relaxed),
            s.messages_sent.load(std::memory_order_relaxed),
            s.messages_received.load(std::memory_order_relaxed)};
  }

  /// Total volume over all ranks (sum of bytes sent — the paper's metric).
  [[nodiscard]] CommVolume total() const {
    CommVolume t;
    for (std::size_t r = 0; r < slots_.size(); ++r)
      t += rank_volume(static_cast<int>(r));
    return t;
  }

  /// Maximum bytes sent+received by any single rank (per-node volume, the
  /// quantity plotted in Fig. 6).
  [[nodiscard]] std::uint64_t max_rank_bytes() const {
    std::uint64_t m = 0;
    for (std::size_t r = 0; r < slots_.size(); ++r) {
      const CommVolume v = rank_volume(static_cast<int>(r));
      m = std::max(m, v.bytes_sent + v.bytes_received);
    }
    return m;
  }

  void reset() {
    for (auto& s : slots_) {
      s.bytes_sent.store(0, std::memory_order_relaxed);
      s.bytes_received.store(0, std::memory_order_relaxed);
      s.messages_sent.store(0, std::memory_order_relaxed);
      s.messages_received.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> bytes_sent{0};
    std::atomic<std::uint64_t> bytes_received{0};
    std::atomic<std::uint64_t> messages_sent{0};
    std::atomic<std::uint64_t> messages_received{0};
  };
  std::vector<Slot> slots_;
};

}  // namespace conflux::simnet
