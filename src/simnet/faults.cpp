#include "simnet/faults.hpp"

#include <algorithm>
#include <utility>

namespace conflux::simnet {

namespace {

/// splitmix64 finalizer — the mixing function behind every injection
/// decision. Statistically strong enough that per-message decisions look
/// independent, yet a pure function of its input, which is what makes the
/// whole plan reproducible.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Top 53 bits of a hash as a uniform double in [0, 1).
[[nodiscard]] double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

// Domain-separation constants so the delay/stall/corrupt draws for one
// message are independent of each other and of the link/slow-rank sets.
constexpr std::uint64_t kLinkSalt = 0x11bcd5d4f9d1a0c3ULL;
constexpr std::uint64_t kSlowSalt = 0x5e11a2b7c4d90f17ULL;
constexpr std::uint64_t kDelaySalt = 0xd31a70b5e6c48a91ULL;
constexpr std::uint64_t kStallSalt = 0x57a1105fb3e2d769ULL;
constexpr std::uint64_t kCorruptSalt = 0xc0442e8ba17f5d23ULL;

}  // namespace

void FaultPlan::reset(int nranks) {
  CONFLUX_EXPECTS(nranks >= 1);
  if (nranks != nranks_ || seq_ == nullptr) {
    // (Re)sizing marks a new experiment: the lifetime injection counters
    // restart here — NOT on the per-attempt re-attach every retry's fresh
    // Network performs, which must keep failed attempts' totals visible.
    delayed_.store(0, std::memory_order_relaxed);
    stalled_.store(0, std::memory_order_relaxed);
    corrupted_.store(0, std::memory_order_relaxed);
    nranks_ = nranks;
    seq_ = std::make_unique<std::atomic<std::uint64_t>[]>(
        static_cast<std::size_t>(nranks));
    // Slow-rank selection: hash every rank with the seed and take the
    // spec'd count of smallest hashes — an exact-size, seed-stable victim
    // set that does not depend on enumeration order.
    slow_.assign(static_cast<std::size_t>(nranks), 0);
    if (spec_.slow_ranks > 0 && spec_.slow_factor != 1.0) {
      std::vector<std::pair<std::uint64_t, int>> order;
      order.reserve(static_cast<std::size_t>(nranks));
      for (int r = 0; r < nranks; ++r)
        order.emplace_back(
            mix64(spec_.seed ^ kSlowSalt ^ static_cast<std::uint64_t>(r)), r);
      std::sort(order.begin(), order.end());
      const int victims = std::min(spec_.slow_ranks, nranks);
      for (int i = 0; i < victims; ++i)
        slow_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)]
                                           .second)] = 1;
    }
  }
  begin_run();
}

void FaultPlan::begin_run() {
  // Sequence counters restart so an identical rerun injects identically;
  // the injection counters do NOT — they are lifetime totals, so a retry
  // chain's failed attempts stay visible in the final report.
  for (int r = 0; r < nranks_; ++r)
    seq_[static_cast<std::size_t>(r)].store(0, std::memory_order_relaxed);
}

bool FaultPlan::slow_rank(int rank) const {
  return rank >= 0 && rank < nranks_ &&
         slow_[static_cast<std::size_t>(rank)] != 0;
}

FaultPlan::Injection FaultPlan::at_delivery(int src, int dst, Tag tag,
                                            std::size_t payload_doubles) {
  Injection inj;
  if (!spec_.any()) return inj;
  CONFLUX_EXPECTS_CTX(seq_ != nullptr && src >= 0 && src < nranks_ &&
                          dst >= 0 && dst < nranks_,
                      (CommContext{.src = src, .dst = dst}.with_tag(tag)));
  // The per-source sequence number advances in the sender's program order —
  // fixed by the dataflow — so this key, and every decision derived from
  // it, is identical across repeats, host pool sizes and execution modes.
  const std::uint64_t seq = seq_[static_cast<std::size_t>(src)].fetch_add(
      1, std::memory_order_relaxed);
  const std::uint64_t key =
      mix64(mix64(spec_.seed ^ attempt_.load(std::memory_order_relaxed)) ^
            mix64((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                   << 32) |
                  static_cast<std::uint32_t>(dst)) ^
            mix64(tag) ^ mix64(seq));
  // A persistently slow rank scales every fault it is involved in.
  double scale = 1.0;
  if (slow_rank(src) || slow_rank(dst)) scale *= spec_.slow_factor;

  if (spec_.delay_prob > 0 && spec_.delay_s + spec_.jitter_s > 0) {
    // The faulty-link set is a property of the (src, dst) pair and the seed
    // only — stable across messages and retry attempts, like a bad cable.
    const std::uint64_t link =
        mix64(spec_.seed ^ kLinkSalt ^
              ((static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
                << 32) |
               static_cast<std::uint32_t>(dst)));
    if (unit(link) < spec_.faulty_links) {
      const std::uint64_t draw = mix64(key ^ kDelaySalt);
      if (unit(draw) < spec_.delay_prob) {
        inj.delay_s =
            (spec_.delay_s + unit(mix64(draw)) * spec_.jitter_s) * scale;
        delayed_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  if (spec_.stall_prob > 0 && spec_.stall_s > 0) {
    const std::uint64_t draw = mix64(key ^ kStallSalt);
    if (unit(draw) < spec_.stall_prob) {
      inj.stall_s = spec_.stall_s * scale;
      stalled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (spec_.corrupt_prob > 0 && payload_doubles > 0) {
    const std::uint64_t draw = mix64(key ^ kCorruptSalt);
    if (unit(draw) < spec_.corrupt_prob) {
      inj.corrupt = true;
      inj.corrupt_bit =
          mix64(draw) % (static_cast<std::uint64_t>(payload_doubles) * 64);
      corrupted_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return inj;
}

FaultPlan::Counters FaultPlan::counters() const {
  return {delayed_.load(std::memory_order_relaxed),
          stalled_.load(std::memory_order_relaxed),
          corrupted_.load(std::memory_order_relaxed)};
}

}  // namespace conflux::simnet
