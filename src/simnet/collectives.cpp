#include "simnet/collectives.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.hpp"

namespace conflux::simnet {

namespace {

/// Sub-tag composition for internal rounds: shift the user tag and add the
/// round/sub-operation id.
[[nodiscard]] constexpr Tag sub_tag(Tag tag, unsigned op, unsigned round) {
  return (tag << 8) | (static_cast<Tag>(op) << 5) | round;
}

/// Virtual rank relative to the root so binomial trees can be rooted
/// anywhere.
[[nodiscard]] int vrank_of(int index, int root_index, int n) {
  return (index - root_index + n) % n;
}
[[nodiscard]] int real_of(int vrank, int root_index, const Group& g) {
  return g.at((vrank + root_index) % g.size());
}

/// The binomial broadcast tree of one rank: its parent hop (if any) and its
/// forwarding rounds, shared by the real / packed / ghost bcast variants.
struct BcastPosition {
  int parent_vrank = -1;  ///< -1 at the root
  unsigned recv_round = 0;
  unsigned first_send_round = 0;
  int first_mask = 1;
};

[[nodiscard]] BcastPosition bcast_position(int v) {
  BcastPosition pos;
  if (v == 0) return pos;
  int bit = 1;
  while (bit * 2 <= v) bit <<= 1;
  unsigned r = 0;
  for (int b = bit; b > 1; b >>= 1) ++r;
  pos.parent_vrank = v - bit;
  pos.recv_round = r;
  pos.first_send_round = r + 1;
  pos.first_mask = bit << 1;
  return pos;
}

/// Forward an immutable payload down this rank's branch of the binomial
/// tree: one refcount bump per child, zero copies.
void bcast_forward(const Comm& comm, const Group& group, int root_index,
                   int v, const BcastPosition& pos, const SharedBuffer& buf,
                   std::size_t logical_bytes, Tag tag, unsigned op) {
  const int n = group.size();
  unsigned round = pos.first_send_round;
  for (int mask = pos.first_mask; mask < n; mask <<= 1, ++round) {
    if (v < mask && v + mask < n)
      comm.send_shared(real_of(v + mask, root_index, group),
                       sub_tag(tag, op, round), buf, logical_bytes);
  }
}

}  // namespace

Group::Group(std::vector<int> ranks) : ranks_(std::move(ranks)) {
  bool contiguous = true;
  for (std::size_t i = 1; i < ranks_.size(); ++i)
    if (ranks_[i] != ranks_[0] + static_cast<int>(i)) {
      contiguous = false;
      break;
    }
  if (contiguous && !ranks_.empty()) {
    contiguous_base_ = ranks_[0];
    return;
  }
  sorted_.reserve(ranks_.size());
  for (std::size_t i = 0; i < ranks_.size(); ++i)
    sorted_.emplace_back(ranks_[i], static_cast<int>(i));
  std::sort(sorted_.begin(), sorted_.end());
}

Group Group::iota(int n) {
  std::vector<int> ranks(static_cast<std::size_t>(n));
  std::iota(ranks.begin(), ranks.end(), 0);
  return Group(std::move(ranks));
}

int Group::index_of(int rank) const {
  if (contiguous_base_ >= 0) {
    const int i = rank - contiguous_base_;
    return (i >= 0 && i < size()) ? i : -1;
  }
  const auto it = std::lower_bound(
      sorted_.begin(), sorted_.end(), std::make_pair(rank, 0),
      [](const auto& a, const auto& b) { return a.first < b.first; });
  return (it != sorted_.end() && it->first == rank) ? it->second : -1;
}

void bcast(const Comm& comm, const Group& group, int root_index,
           std::vector<double>& data, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);
  const BcastPosition pos = bcast_position(v);

  SharedBuffer buf;
  if (v == 0) {
    if (n == 1) return;
    buf = make_shared_buffer(std::span<const double>(data));
  } else {
    buf = comm.recv_view(real_of(pos.parent_vrank, root_index, group),
                         sub_tag(tag, 0, pos.recv_round))
              .shared();
  }
  bcast_forward(comm, group, root_index, v, pos, buf,
                buf->size() * sizeof(double), tag, 0);
  if (v != 0) data = BufferView(std::move(buf)).take();
}

std::size_t bcast_ghost(const Comm& comm, const Group& group, int root_index,
                        std::size_t logical_bytes, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);
  const BcastPosition pos = bcast_position(v);

  std::size_t count = logical_bytes;
  if (v != 0)
    count = comm.recv_ghost(real_of(pos.parent_vrank, root_index, group),
                            sub_tag(tag, 0, pos.recv_round));
  unsigned round = pos.first_send_round;
  for (int mask = pos.first_mask; mask < n; mask <<= 1, ++round) {
    if (v < mask && v + mask < n)
      comm.send_ghost(real_of(v + mask, root_index, group),
                      sub_tag(tag, 0, round), count);
  }
  return count;
}

void bcast_ints(const Comm& comm, const Group& group, int root_index,
                std::vector<int>& data, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);
  const BcastPosition pos = bcast_position(v);

  // One bit-packed buffer (exact 4 B/element accounting) travels the same
  // binomial tree as bcast, forwarded by reference hop-to-hop.
  SharedBuffer buf;
  std::size_t logical_bytes = data.size() * sizeof(int);
  if (v == 0) {
    if (n == 1) return;
    buf = make_shared_buffer(pack_ints(data));
  } else {
    const BufferView view =
        comm.recv_view(real_of(pos.parent_vrank, root_index, group),
                       sub_tag(tag, 1, pos.recv_round));
    logical_bytes = view.logical_bytes();
    buf = view.shared();
  }
  bcast_forward(comm, group, root_index, v, pos, buf, logical_bytes, tag, 1);
  if (v != 0)
    data = unpack_ints(BufferView(std::move(buf)),
                       logical_bytes / sizeof(int));
}

void reduce_sum(const Comm& comm, const Group& group, int root_index,
                std::span<double> inout, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);

  unsigned round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    if ((v & mask) != 0) {
      comm.send(real_of(v - mask, root_index, group), sub_tag(tag, 2, round),
                std::span<const double>(inout.data(), inout.size()));
      return;  // leaf for the remaining rounds
    }
    if (v + mask < n) {
      const BufferView other = comm.recv_view(
          real_of(v + mask, root_index, group), sub_tag(tag, 2, round));
      CONFLUX_ASSERT(other.size() == inout.size());
      const double* src = other.data();
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += src[i];
    }
  }
}

void reduce_ghost(const Comm& comm, const Group& group, int root_index,
                  std::size_t logical_bytes, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);

  unsigned round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    if ((v & mask) != 0) {
      comm.send_ghost(real_of(v - mask, root_index, group),
                      sub_tag(tag, 2, round), logical_bytes);
      return;
    }
    if (v + mask < n)
      (void)comm.recv_ghost(real_of(v + mask, root_index, group),
                            sub_tag(tag, 2, round));
  }
}

void allreduce_sum(const Comm& comm, const Group& group,
                   std::span<double> inout, Tag tag) {
  reduce_sum(comm, group, 0, inout, tag);
  std::vector<double> buf(inout.begin(), inout.end());
  bcast(comm, group, 0, buf, sub_tag(tag, 3, 0));
  std::copy(buf.begin(), buf.end(), inout.begin());
}

MaxLoc allreduce_maxloc(const Comm& comm, const Group& group, MaxLoc mine,
                        Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0);
  // Tree reduce to index 0 with 12-byte pair messages, then broadcast back.
  constexpr std::size_t kPairBytes = sizeof(double) + sizeof(int);
  auto encode = [](MaxLoc m) {
    return make_shared_buffer(
        std::vector<double>{m.value, static_cast<double>(m.location)});
  };
  auto combine = [](MaxLoc a, MaxLoc b) {
    if (b.value > a.value ||
        (b.value == a.value && b.location >= 0 &&
         (a.location < 0 || b.location < a.location)))
      return b;
    return a;
  };

  unsigned round = 0;
  bool leaf = false;
  for (int mask = 1; mask < n && !leaf; mask <<= 1, ++round) {
    if ((me & mask) != 0) {
      comm.send_shared(group.at(me - mask), sub_tag(tag, 4, round),
                       encode(mine), kPairBytes);
      leaf = true;
    } else if (me + mask < n) {
      const BufferView other =
          comm.recv_view(group.at(me + mask), sub_tag(tag, 4, round));
      mine = combine(mine, {other[0], static_cast<int>(other[1])});
    }
  }
  // Broadcast the winner down the same tree, zero-copy.
  const BcastPosition pos = bcast_position(me);
  SharedBuffer buf;
  if (me == 0) {
    if (n == 1) return mine;
    buf = encode(mine);
  } else {
    buf = comm.recv_view(group.at(pos.parent_vrank),
                         sub_tag(tag, 5, pos.recv_round))
              .shared();
  }
  bcast_forward(comm, group, 0, me, pos, buf, kPairBytes, tag, 5);
  return {(*buf)[0], static_cast<int>((*buf)[1])};
}

std::vector<std::vector<double>> gather(const Comm& comm, const Group& group,
                                        int root_index,
                                        std::span<const double> mine,
                                        Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  std::vector<std::vector<double>> parts;
  if (me == root_index) {
    parts.resize(static_cast<std::size_t>(n));
    parts[static_cast<std::size_t>(me)].assign(mine.begin(), mine.end());
    for (int i = 0; i < n; ++i) {
      if (i == root_index) continue;
      parts[static_cast<std::size_t>(i)] =
          comm.recv(group.at(i), sub_tag(tag, 6, 0));
    }
  } else {
    comm.send(group.at(root_index), sub_tag(tag, 6, 0), mine);
  }
  return parts;
}

void barrier(const Comm& comm, const Group& group, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0);
  // Dissemination barrier: ceil(log2 n) rounds of zero-byte messages.
  unsigned round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (me + dist) % n;
    const int from = (me - dist % n + n) % n;
    comm.send_ghost(group.at(to), sub_tag(tag, 7, round), 0);
    (void)comm.recv_ghost(group.at(from), sub_tag(tag, 7, round));
  }
}

}  // namespace conflux::simnet
