#include "simnet/collectives.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/assert.hpp"

namespace conflux::simnet {

namespace {

/// Sub-tag composition for internal rounds: shift the user tag and add the
/// round/sub-operation id.
[[nodiscard]] constexpr Tag sub_tag(Tag tag, unsigned op, unsigned round) {
  return (tag << 8) | (static_cast<Tag>(op) << 5) | round;
}

/// Virtual rank relative to the root so binomial trees can be rooted
/// anywhere.
[[nodiscard]] int vrank_of(int index, int root_index, int n) {
  return (index - root_index + n) % n;
}
[[nodiscard]] int real_of(int vrank, int root_index, const Group& g) {
  return g.ranks[static_cast<std::size_t>((vrank + root_index) % g.size())];
}

}  // namespace

Group Group::iota(int n) {
  Group g;
  g.ranks.resize(static_cast<std::size_t>(n));
  std::iota(g.ranks.begin(), g.ranks.end(), 0);
  return g;
}

void bcast(const Comm& comm, const Group& group, int root_index,
           std::vector<double>& data, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);

  // Binomial tree: in round r, ranks with vrank < 2^r forward to vrank+2^r.
  unsigned round = 0;
  int mask = 1;
  while (mask < n) mask <<= 1;
  // Receive first (non-root): find the highest bit of v.
  if (v != 0) {
    int bit = 1;
    while (bit * 2 <= v) bit <<= 1;
    // parent = v - bit; round index = log2(bit)
    unsigned r = 0;
    for (int b = bit; b > 1; b >>= 1) ++r;
    data = comm.recv(real_of(v - bit, root_index, group), sub_tag(tag, 0, r));
    round = r + 1;
    mask = bit << 1;
  } else {
    mask = 1;
  }
  for (; mask < n; mask <<= 1, ++round) {
    if (v < mask && v + mask < n)
      comm.send(real_of(v + mask, root_index, group), sub_tag(tag, 0, round),
                std::span<const double>(data));
  }
}

std::size_t bcast_ghost(const Comm& comm, const Group& group, int root_index,
                        std::size_t logical_bytes, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);

  std::size_t count = logical_bytes;
  int mask = 1;
  unsigned round = 0;
  if (v != 0) {
    int bit = 1;
    while (bit * 2 <= v) bit <<= 1;
    unsigned r = 0;
    for (int b = bit; b > 1; b >>= 1) ++r;
    count = comm.recv_ghost(real_of(v - bit, root_index, group),
                            sub_tag(tag, 0, r));
    round = r + 1;
    mask = bit << 1;
  }
  for (; mask < n; mask <<= 1, ++round) {
    if (v < mask && v + mask < n)
      comm.send_ghost(real_of(v + mask, root_index, group),
                      sub_tag(tag, 0, round), count);
  }
  return count;
}

void bcast_ints(const Comm& comm, const Group& group, int root_index,
                std::vector<int>& data, Tag tag) {
  // Reuse the double-payload tree; account 4 B per element by sending via
  // send_ints-compatible encoding. For simplicity we transport as doubles
  // and adjust: volume-accurate variant packs 2 ints per double slot.
  std::vector<double> packed;
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0);
  const int v = vrank_of(me, root_index, n);

  int mask = 1;
  unsigned round = 0;
  if (v != 0) {
    int bit = 1;
    while (bit * 2 <= v) bit <<= 1;
    unsigned r = 0;
    for (int b = bit; b > 1; b >>= 1) ++r;
    data = comm.recv_ints(real_of(v - bit, root_index, group),
                          sub_tag(tag, 1, r));
    round = r + 1;
    mask = bit << 1;
  }
  for (; mask < n; mask <<= 1, ++round) {
    if (v < mask && v + mask < n)
      comm.send_ints(real_of(v + mask, root_index, group),
                     sub_tag(tag, 1, round), std::span<const int>(data));
  }
}

void reduce_sum(const Comm& comm, const Group& group, int root_index,
                std::span<double> inout, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);

  unsigned round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    if ((v & mask) != 0) {
      comm.send(real_of(v - mask, root_index, group), sub_tag(tag, 2, round),
                std::span<const double>(inout.data(), inout.size()));
      return;  // leaf for the remaining rounds
    }
    if (v + mask < n) {
      const std::vector<double> other =
          comm.recv(real_of(v + mask, root_index, group), sub_tag(tag, 2, round));
      CONFLUX_ASSERT(other.size() == inout.size());
      for (std::size_t i = 0; i < inout.size(); ++i) inout[i] += other[i];
    }
  }
}

void reduce_ghost(const Comm& comm, const Group& group, int root_index,
                  std::size_t logical_bytes, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  const int v = vrank_of(me, root_index, n);

  unsigned round = 0;
  for (int mask = 1; mask < n; mask <<= 1, ++round) {
    if ((v & mask) != 0) {
      comm.send_ghost(real_of(v - mask, root_index, group),
                      sub_tag(tag, 2, round), logical_bytes);
      return;
    }
    if (v + mask < n)
      (void)comm.recv_ghost(real_of(v + mask, root_index, group),
                            sub_tag(tag, 2, round));
  }
}

void allreduce_sum(const Comm& comm, const Group& group,
                   std::span<double> inout, Tag tag) {
  reduce_sum(comm, group, 0, inout, tag);
  std::vector<double> buf(inout.begin(), inout.end());
  bcast(comm, group, 0, buf, sub_tag(tag, 3, 0));
  std::copy(buf.begin(), buf.end(), inout.begin());
}

MaxLoc allreduce_maxloc(const Comm& comm, const Group& group, MaxLoc mine,
                        Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0);
  // Tree reduce to index 0 with 12-byte pair messages, then broadcast back.
  auto encode = [](MaxLoc m) {
    return std::vector<double>{m.value, static_cast<double>(m.location)};
  };
  auto combine = [](MaxLoc a, MaxLoc b) {
    if (b.value > a.value ||
        (b.value == a.value && b.location >= 0 &&
         (a.location < 0 || b.location < a.location)))
      return b;
    return a;
  };

  unsigned round = 0;
  bool leaf = false;
  for (int mask = 1; mask < n && !leaf; mask <<= 1, ++round) {
    if ((me & mask) != 0) {
      Message msg;
      msg.payload = encode(mine);
      msg.logical_bytes = sizeof(double) + sizeof(int);
      comm.network().deliver(comm.rank(),
                             group.ranks[static_cast<std::size_t>(me - mask)],
                             sub_tag(tag, 4, round), std::move(msg));
      leaf = true;
    } else if (me + mask < n) {
      const std::vector<double> other =
          comm.recv(group.ranks[static_cast<std::size_t>(me + mask)],
                    sub_tag(tag, 4, round));
      mine = combine(mine, {other[0], static_cast<int>(other[1])});
    }
  }
  // Broadcast the winner.
  std::vector<double> buf = encode(mine);
  // 12 logical bytes per hop: emulate by ghost accounting plus payload relay.
  const int root_index = 0;
  const int v = me;
  unsigned r2 = 0;
  int mask = 1;
  if (v != 0) {
    int bit = 1;
    while (bit * 2 <= v) bit <<= 1;
    unsigned r = 0;
    for (int b = bit; b > 1; b >>= 1) ++r;
    buf = comm.recv(group.ranks[static_cast<std::size_t>(v - bit)],
                    sub_tag(tag, 5, r));
    r2 = r + 1;
    mask = bit << 1;
  }
  for (; mask < n; mask <<= 1, ++r2) {
    if (v < mask && v + mask < n) {
      Message msg;
      msg.payload = buf;
      msg.logical_bytes = sizeof(double) + sizeof(int);
      comm.network().deliver(comm.rank(),
                             group.ranks[static_cast<std::size_t>(v + mask)],
                             sub_tag(tag, 5, r2), std::move(msg));
    }
  }
  (void)root_index;
  return {buf[0], static_cast<int>(buf[1])};
}

std::vector<std::vector<double>> gather(const Comm& comm, const Group& group,
                                        int root_index,
                                        std::span<const double> mine,
                                        Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0 && root_index >= 0 && root_index < n);
  std::vector<std::vector<double>> parts;
  if (me == root_index) {
    parts.resize(static_cast<std::size_t>(n));
    parts[static_cast<std::size_t>(me)].assign(mine.begin(), mine.end());
    for (int i = 0; i < n; ++i) {
      if (i == root_index) continue;
      parts[static_cast<std::size_t>(i)] =
          comm.recv(group.ranks[static_cast<std::size_t>(i)], sub_tag(tag, 6, 0));
    }
  } else {
    comm.send(group.ranks[static_cast<std::size_t>(root_index)],
              sub_tag(tag, 6, 0), mine);
  }
  return parts;
}

void barrier(const Comm& comm, const Group& group, Tag tag) {
  const int n = group.size();
  const int me = group.index_of(comm.rank());
  CONFLUX_EXPECTS(me >= 0);
  // Dissemination barrier: ceil(log2 n) rounds of zero-byte messages.
  unsigned round = 0;
  for (int dist = 1; dist < n; dist <<= 1, ++round) {
    const int to = (me + dist) % n;
    const int from = (me - dist % n + n) % n;
    comm.send_ghost(group.ranks[static_cast<std::size_t>(to)],
                    sub_tag(tag, 7, round), 0);
    (void)comm.recv_ghost(group.ranks[static_cast<std::size_t>(from)],
                          sub_tag(tag, 7, round));
  }
}

}  // namespace conflux::simnet
