#include "simnet/vtime.hpp"

#include <sys/mman.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <thread>

#include "simnet/network.hpp"
#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/thread_pool.hpp"

// Sanitizer fiber annotations: ASan must be told about stack switches so its
// fake-stack bookkeeping follows the fibers, and TSan models each fiber as
// its own logical thread (switching synchronizes, so the cooperative
// handoffs carry happens-before edges).
#if defined(__SANITIZE_ADDRESS__)
#define CONFLUX_VT_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define CONFLUX_VT_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer)
#define CONFLUX_VT_ASAN 1
#endif
#if __has_feature(thread_sanitizer)
#define CONFLUX_VT_TSAN 1
#endif
#endif
#if defined(CONFLUX_VT_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(CONFLUX_VT_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace conflux::simnet {

namespace {

/// Usable fiber stack size. Fibers run the same rank bodies the OS-thread
/// team runs (numeric kernels included), so the default leaves headroom;
/// sanitizer builds triple frame sizes, hence the larger floor there. The
/// stacks are lazily committed mmap regions — 4096 ranks reserve virtual
/// address space only for pages never touched.
std::size_t fiber_stack_bytes() {
#if defined(CONFLUX_VT_ASAN) || defined(CONFLUX_VT_TSAN)
  const std::int64_t kb = env_int("CONFLUX_VT_STACK_KB", 1024);
#else
  const std::int64_t kb = env_int("CONFLUX_VT_STACK_KB", 512);
#endif
  return static_cast<std::size_t>(std::max<std::int64_t>(64, kb)) * 1024;
}

std::size_t page_size() {
  static const std::size_t ps =
      static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  return ps;
}

#if defined(CONFLUX_VT_TSAN)
thread_local void* tl_worker_tsan_fiber = nullptr;
#endif
#if defined(CONFLUX_VT_ASAN)
thread_local void* tl_worker_fake_stack = nullptr;
#endif

}  // namespace

/// One simulated rank's cooperative context: a ucontext fiber on an mmap'd
/// guarded stack, the park/wake handshake state, and the rank's virtual
/// clock. `parked`, `wait_src` and `wait_tag` are written by the rank's own
/// worker under `park_mutex` and read by delivering fibers under the same
/// mutex; everything else is touched only by the fiber itself or by the
/// worker that just suspended/resumed it (hand-off through the ready queue
/// provides the happens-before edge).
struct VtRuntime::RankCtx {
  enum class Phase : std::uint8_t { Ready, Running, Blocking, Parked, Done };

  ucontext_t uc{};
  ucontext_t* return_uc = nullptr;  ///< resuming worker's context
  void* map = nullptr;              ///< mmap base (guard page first)
  std::size_t map_bytes = 0;
  void* stack_base = nullptr;       ///< usable stack bottom
  std::size_t stack_bytes = 0;
  int rank = -1;
  VtRuntime* rt = nullptr;
  Phase phase = Phase::Ready;

  int wait_src = -1;
  Tag wait_tag = 0;
  bool parked = false;
  std::mutex park_mutex;

  double vclock = 0;  ///< virtual seconds; owned by the rank's fiber

#if defined(CONFLUX_VT_ASAN)
  void* fake_stack = nullptr;
  const void* worker_bottom = nullptr;
  std::size_t worker_size = 0;
#endif
#if defined(CONFLUX_VT_TSAN)
  void* return_tsan = nullptr;
  void* tsan_fiber = nullptr;
#endif
};

struct VtRuntime::Impl {
  std::vector<std::unique_ptr<RankCtx>> ranks;
  std::vector<std::uint64_t> clock_ns;  ///< vclock mirror for telemetry/trace

  std::mutex ready_mutex;
  std::condition_variable ready_cv;
  std::deque<int> ready;
  int running = 0;
  int finished = 0;
  bool stop = false;

  const std::function<void(int)>* job = nullptr;
  std::mutex error_mutex;
  std::exception_ptr error;
};

VtRuntime::VtRuntime(Network& net, int nranks, LinkModel link)
    : net_(&net), nranks_(nranks), link_(link), impl_(new Impl) {
  CONFLUX_EXPECTS(nranks >= 1);
  CONFLUX_EXPECTS(link.alpha_s >= 0 && link.beta_s_per_byte >= 0 &&
                  link.gamma_s_per_flop >= 0);
  impl_->ranks.reserve(static_cast<std::size_t>(nranks));
  impl_->clock_ns.assign(static_cast<std::size_t>(nranks), 0);
  const std::size_t stack = fiber_stack_bytes();
  const std::size_t guard = page_size();
  for (int r = 0; r < nranks; ++r) {
    auto c = std::make_unique<RankCtx>();
    c->rank = r;
    c->rt = this;
    c->map_bytes = stack + guard;
    c->map = ::mmap(nullptr, c->map_bytes, PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    CONFLUX_EXPECTS_MSG(c->map != MAP_FAILED,
                        "mmap of a " << c->map_bytes
                                     << "-byte fiber stack failed (rank " << r
                                     << " of " << nranks << ")");
    // Guard page at the low end: stack overflow faults instead of silently
    // corrupting the neighbouring fiber's stack.
    ::mprotect(c->map, guard, PROT_NONE);
    c->stack_base = static_cast<char*>(c->map) + guard;
    c->stack_bytes = stack;
#if defined(CONFLUX_VT_TSAN)
    c->tsan_fiber = __tsan_create_fiber(0);
#endif
    impl_->ranks.push_back(std::move(c));
  }
}

VtRuntime::~VtRuntime() {
  for (auto& c : impl_->ranks) {
#if defined(CONFLUX_VT_TSAN)
    if (c->tsan_fiber != nullptr) __tsan_destroy_fiber(c->tsan_fiber);
#endif
    if (c->map != nullptr) ::munmap(c->map, c->map_bytes);
  }
  delete impl_;
}

const std::uint64_t* VtRuntime::clock_ns_array() const {
  return impl_->clock_ns.data();
}

double VtRuntime::clock_seconds(int rank) const {
  return impl_->ranks[static_cast<std::size_t>(rank)]->vclock;
}

double VtRuntime::makespan_seconds() const {
  double m = 0;
  for (const auto& c : impl_->ranks) m = std::max(m, c->vclock);
  return m;
}

void VtRuntime::push_ready(int rank) {
  {
    const std::lock_guard<std::mutex> lock(impl_->ready_mutex);
    impl_->ready.push_back(rank);
  }
  impl_->ready_cv.notify_one();
}

// --- context switching ------------------------------------------------------

void VtRuntime::trampoline(unsigned int hi, unsigned int lo) {
  auto* c = reinterpret_cast<RankCtx*>((static_cast<std::uintptr_t>(hi) << 32) |
                                       static_cast<std::uintptr_t>(lo));
#if defined(CONFLUX_VT_ASAN)
  __sanitizer_finish_switch_fiber(c->fake_stack, &c->worker_bottom,
                                  &c->worker_size);
#endif
  c->rt->fiber_main(*c);
}

void VtRuntime::resume(RankCtx& c) {
  ucontext_t here;
  c.return_uc = &here;
#if defined(CONFLUX_VT_TSAN)
  if (tl_worker_tsan_fiber == nullptr)
    tl_worker_tsan_fiber = __tsan_get_current_fiber();
  c.return_tsan = tl_worker_tsan_fiber;
  __tsan_switch_to_fiber(c.tsan_fiber, 0);
#endif
#if defined(CONFLUX_VT_ASAN)
  __sanitizer_start_switch_fiber(&tl_worker_fake_stack, c.stack_base,
                                 c.stack_bytes);
#endif
  ::swapcontext(&here, &c.uc);
#if defined(CONFLUX_VT_ASAN)
  __sanitizer_finish_switch_fiber(tl_worker_fake_stack, nullptr, nullptr);
#endif
}

/// Suspend the current fiber and return control to the worker that resumed
/// it. Runs on the fiber's stack; returns when some worker resumes the
/// fiber again (never returns when called with phase == Done).
void VtRuntime::finish_park(RankCtx& c) {
  // Registered *after* the fiber context was saved (we are on the worker
  // stack here), so a deliver that races with the park either sees the
  // message in the queue re-check below or sees `parked` and wakes — a lost
  // wakeup would need the deliver to happen between the re-check and
  // setting `parked`, and both happen under the channel mutex.
  auto& ch = net_->channel(c.rank, c.wait_src);
  const std::lock_guard<std::mutex> lock(ch.mutex);
  const auto it = ch.queues.find(std::make_pair(c.wait_src, c.wait_tag));
  const bool has = (it != ch.queues.end() && !it->second.empty());
  if (has || net_->aborted()) {
    c.phase = RankCtx::Phase::Ready;
    push_ready(c.rank);
    return;
  }
  const std::lock_guard<std::mutex> plock(c.park_mutex);
  c.parked = true;
  c.phase = RankCtx::Phase::Parked;
}

void VtRuntime::fiber_main(RankCtx& c) {
  try {
    (*impl_->job)(c.rank);
  } catch (const JobAborted&) {
    // Another rank failed first; nothing to record.
  } catch (const std::exception& e) {
    net_->note_rank_failure(c.rank, e.what());
    {
      const std::lock_guard<std::mutex> lock(impl_->error_mutex);
      if (!impl_->error) impl_->error = std::current_exception();
    }
    net_->abort();
  } catch (...) {
    net_->note_rank_failure(c.rank, "unknown exception");
    {
      const std::lock_guard<std::mutex> lock(impl_->error_mutex);
      if (!impl_->error) impl_->error = std::current_exception();
    }
    net_->abort();
  }
  c.phase = RankCtx::Phase::Done;
  // Hand control back to the worker for the last time. The context saved
  // into c.uc here is never resumed; the next run re-creates it. Passing
  // nullptr for the fake-stack save slot tells ASan the fiber is dying so
  // it releases the fiber's fake stack instead of keeping it live.
#if defined(CONFLUX_VT_ASAN)
  __sanitizer_start_switch_fiber(nullptr, c.worker_bottom, c.worker_size);
#endif
#if defined(CONFLUX_VT_TSAN)
  __tsan_switch_to_fiber(c.return_tsan, 0);
#endif
  ::swapcontext(&c.uc, c.return_uc);
  // Unreachable: a Done fiber is never resumed.
  CONFLUX_ASSERT(false);
}

void VtRuntime::park(int rank, int src, Tag tag) {
  RankCtx& c = *impl_->ranks[static_cast<std::size_t>(rank)];
  CONFLUX_ASSERT(c.phase == RankCtx::Phase::Running);
  c.wait_src = src;
  c.wait_tag = tag;
  c.phase = RankCtx::Phase::Blocking;
#if defined(CONFLUX_VT_ASAN)
  __sanitizer_start_switch_fiber(&c.fake_stack, c.worker_bottom,
                                 c.worker_size);
#endif
#if defined(CONFLUX_VT_TSAN)
  __tsan_switch_to_fiber(c.return_tsan, 0);
#endif
  ::swapcontext(&c.uc, c.return_uc);
#if defined(CONFLUX_VT_ASAN)
  __sanitizer_finish_switch_fiber(c.fake_stack, &c.worker_bottom,
                                  &c.worker_size);
#endif
}

void VtRuntime::wake_if_parked(int dst, int src, Tag tag) {
  RankCtx& c = *impl_->ranks[static_cast<std::size_t>(dst)];
  bool wake = false;
  {
    const std::lock_guard<std::mutex> lock(c.park_mutex);
    if (c.parked && c.wait_src == src && c.wait_tag == tag) {
      c.parked = false;
      c.phase = RankCtx::Phase::Ready;
      wake = true;
    }
  }
  if (wake) push_ready(dst);
}

void VtRuntime::wake_all_parked() {
  for (auto& cp : impl_->ranks) {
    RankCtx& c = *cp;
    bool wake = false;
    {
      const std::lock_guard<std::mutex> lock(c.park_mutex);
      if (c.parked) {
        c.parked = false;
        c.phase = RankCtx::Phase::Ready;
        wake = true;
      }
    }
    if (wake) push_ready(c.rank);
  }
}

// --- clocks -----------------------------------------------------------------

double VtRuntime::charge_send(int rank, std::size_t bytes) {
  RankCtx& c = *impl_->ranks[static_cast<std::size_t>(rank)];
  c.vclock += static_cast<double>(bytes) * link_.beta_s_per_byte;
  impl_->clock_ns[static_cast<std::size_t>(rank)] =
      static_cast<std::uint64_t>(c.vclock * 1e9);
  return c.vclock + link_.alpha_s;
}

std::pair<double, double> VtRuntime::absorb_arrival(int rank, double arrival) {
  RankCtx& c = *impl_->ranks[static_cast<std::size_t>(rank)];
  const double begin = c.vclock;
  if (arrival > c.vclock) {
    c.vclock = arrival;
    impl_->clock_ns[static_cast<std::size_t>(rank)] =
        static_cast<std::uint64_t>(c.vclock * 1e9);
  }
  return {begin, c.vclock};
}

void VtRuntime::charge_flops(int rank, double flops) {
  if (link_.gamma_s_per_flop <= 0 || flops <= 0) return;
  RankCtx& c = *impl_->ranks[static_cast<std::size_t>(rank)];
  c.vclock += flops * link_.gamma_s_per_flop;
  impl_->clock_ns[static_cast<std::size_t>(rank)] =
      static_cast<std::uint64_t>(c.vclock * 1e9);
}

void VtRuntime::charge_seconds(int rank, double seconds) {
  if (seconds <= 0) return;
  RankCtx& c = *impl_->ranks[static_cast<std::size_t>(rank)];
  c.vclock += seconds;
  impl_->clock_ns[static_cast<std::size_t>(rank)] =
      static_cast<std::uint64_t>(c.vclock * 1e9);
}

std::vector<ParkedRank> VtRuntime::parked_snapshot() const {
  std::vector<ParkedRank> out;
  for (const auto& cp : impl_->ranks) {
    RankCtx& c = *cp;
    const std::lock_guard<std::mutex> lock(c.park_mutex);
    if (c.parked) out.push_back({c.rank, c.wait_src, c.wait_tag});
  }
  return out;
}

// --- scheduler --------------------------------------------------------------

void VtRuntime::worker_loop() {
  Impl& im = *impl_;
  for (;;) {
    int rank = -1;
    {
      std::unique_lock<std::mutex> lock(im.ready_mutex);
      im.ready_cv.wait(lock, [&] { return im.stop || !im.ready.empty(); });
      if (im.stop) return;
      rank = im.ready.front();
      im.ready.pop_front();
      ++im.running;
    }
    RankCtx& c = *im.ranks[static_cast<std::size_t>(rank)];
    c.phase = RankCtx::Phase::Running;
    resume(c);
    // The fiber suspended: either it wants to park or it finished. Capture
    // the phase now, while only this worker touches c — finish_park() may
    // re-enqueue the fiber, after which another worker can resume it and
    // rewrite c.phase concurrently, so it must not be re-read below.
    const RankCtx::Phase suspended = c.phase;
    const bool done = suspended == RankCtx::Phase::Done;
    if (suspended == RankCtx::Phase::Blocking) finish_park(c);
    bool all_done = false;
    bool deadlock = false;
    {
      const std::lock_guard<std::mutex> lock(im.ready_mutex);
      --im.running;
      if (done) ++im.finished;
      if (im.finished == nranks_) {
        im.stop = true;
        all_done = true;
      } else if (im.running == 0 && im.ready.empty()) {
        // No fiber is runnable and none is running: every live rank is
        // parked in a receive — the simulated program deadlocked.
        deadlock = true;
      }
    }
    if (all_done) {
      im.ready_cv.notify_all();
    } else if (deadlock) {
      {
        const std::lock_guard<std::mutex> lock(im.error_mutex);
        if (!im.error) {
          // Typed, located diagnostic: which ranks are parked and on what.
          // deadlock() == true marks it deterministic — a retry would park
          // the same way, so factor::run_with_retry must not re-run it.
          std::vector<ParkedRank> parked = parked_snapshot();
          CommContext ctx;
          std::ostringstream os;
          os << "virtual-time deadlock: every live rank is parked in a "
                "receive with no matching message in flight ("
             << parked.size() << " parked";
          if (!parked.empty()) {
            const ParkedRank& p = parked.front();
            ctx = CommContext{.rank = p.rank, .src = p.src, .dst = p.rank}
                      .with_tag(p.tag);
            os << "; first " << ctx;
          }
          os << ")";
          im.error = std::make_exception_ptr(
              ReceiveTimeout(os.str(), ctx, std::move(parked),
                             /*deadlock=*/true));
        }
      }
      // abort() wakes all parked fibers (through wake_all_parked), which
      // then unwind with JobAborted and finish normally.
      net_->abort();
    }
  }
}

void VtRuntime::run(const std::function<void(int)>& job, int workers) {
  Impl& im = *impl_;
  CONFLUX_EXPECTS(im.job == nullptr);  // no concurrent / re-entrant runs
  im.job = &job;
  im.error = nullptr;
  im.stop = false;
  im.running = 0;
  im.finished = 0;
  im.ready.clear();

  for (auto& cp : impl_->ranks) {
    RankCtx& c = *cp;
    c.phase = RankCtx::Phase::Ready;
    c.parked = false;
    c.wait_src = -1;
    c.wait_tag = 0;
    c.vclock = 0;
    im.clock_ns[static_cast<std::size_t>(c.rank)] = 0;
    // Fresh context on the persistent stack for this run.
    CONFLUX_ASSERT(::getcontext(&c.uc) == 0);
    c.uc.uc_stack.ss_sp = c.stack_base;
    c.uc.uc_stack.ss_size = c.stack_bytes;
    c.uc.uc_link = nullptr;
    const auto ptr = reinterpret_cast<std::uintptr_t>(&c);
    ::makecontext(&c.uc, reinterpret_cast<void (*)()>(&VtRuntime::trampoline),
                  2, static_cast<unsigned int>(ptr >> 32),
                  static_cast<unsigned int>(ptr & 0xFFFFFFFFu));
    im.ready.push_back(c.rank);
  }

  // Multiplex the fibers over the shared thread pool. parallel_for from
  // inside a fiber (the numeric kernels use it) runs inline by the pool's
  // re-entrancy rule, so the workers never deadlock on themselves.
  support::ThreadPool& pool = support::global_pool();
  const int base =
      workers > 0 ? workers : std::min(pool.size(), nranks_);
  const int w =
      std::max(1, static_cast<int>(env_int("CONFLUX_VT_WORKERS", base)));
  if (w == 1 || pool.size() == 1) {
    worker_loop();
  } else {
    support::parallel_for(0, w, [&](int) { worker_loop(); });
  }

  im.job = nullptr;
  std::exception_ptr error;
  {
    const std::lock_guard<std::mutex> lock(im.error_mutex);
    error = std::move(im.error);
    im.error = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

}  // namespace conflux::simnet
