/// \file spmd.hpp
/// The SPMD launcher: runs one OS thread per simulated rank, exactly like
/// `mpirun -np P` launches P processes over a single program body. The
/// threads belong to the Network's persistent rank team — created once per
/// Network and reused by every subsequent run over it, so repeated runs
/// (benchmark sweeps, multi-phase jobs) pay the thread-spawn cost once.
#pragma once

#include <functional>

#include "simnet/comm.hpp"

namespace conflux::simnet {

/// Run `body(comm)` on `nranks` concurrent ranks over a fresh Network and
/// return that network's statistics board totals. If any rank throws, the
/// job is aborted (blocked receives wake up with JobAborted) and the first
/// exception is rethrown on the caller's thread.
CommVolume run_spmd(int nranks, const std::function<void(Comm&)>& body);

/// As run_spmd, but over a caller-provided network (so the caller can read
/// per-rank statistics afterwards, and repeated runs reuse the network's
/// rank team). The network's rank count must match.
void run_spmd(Network& net, const std::function<void(Comm&)>& body);

/// run_spmd with a containment policy (simnet/faults.hpp): receive
/// deadlines in Threaded mode, the virtual-clock cap in VirtualTime mode.
/// Overloads rather than default arguments, so the two-argument forms
/// never clobber a policy already installed on the network.
CommVolume run_spmd(int nranks, const std::function<void(Comm&)>& body,
                    const RunPolicy& policy);
void run_spmd(Network& net, const std::function<void(Comm&)>& body,
              const RunPolicy& policy);

}  // namespace conflux::simnet
