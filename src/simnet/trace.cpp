#include "simnet/trace.hpp"

#include <mutex>
#include <utility>

#include "support/assert.hpp"
#include "support/telemetry.hpp"

namespace conflux::simnet {

void TraceRecorder::reset(int nranks) {
  CONFLUX_EXPECTS(nranks >= 0);
  slots_.clear();
  slots_.resize(static_cast<std::size_t>(nranks));
  epoch_ = telemetry::now_ns();
  vclock_ = nullptr;
}

std::uint64_t TraceRecorder::stamp_ns(int rank) const {
  if (vclock_ != nullptr) return vclock_[static_cast<std::size_t>(rank)];
  return telemetry::now_ns() - epoch_;
}

std::size_t TraceRecorder::size() const {
  std::size_t total = 0;
  for (const Slot& s : slots_) total += s.events.size();
  return total;
}

const std::vector<TraceEvent>& TraceRecorder::rank_events(int r) const {
  CONFLUX_EXPECTS(r >= 0 && r < nranks());
  return slots_[static_cast<std::size_t>(r)].events;
}

void TraceRecorder::record_send(int src, int dst, Tag tag, std::uint64_t bytes,
                                bool multicast) {
  CONFLUX_EXPECTS_CTX(src >= 0 && src < nranks() && dst >= 0,
                      (CommContext{.src = src, .dst = dst}.with_tag(tag)));
  slots_[static_cast<std::size_t>(src)].events.push_back(
      {EventKind::Send, dst, tag, bytes, multicast, stamp_ns(src)});
}

void TraceRecorder::record_recv(int dst, int src, Tag tag,
                                std::uint64_t bytes) {
  CONFLUX_EXPECTS_CTX(dst >= 0 && dst < nranks() && src >= 0,
                      (CommContext{.src = src, .dst = dst}.with_tag(tag)));
  slots_[static_cast<std::size_t>(dst)].events.push_back(
      {EventKind::Recv, src, tag, bytes, false, stamp_ns(dst)});
}

// --- buffer-ownership debug hooks ------------------------------------------

namespace {

std::mutex handler_mutex;
BufferMisuseHandler misuse_handler;  // null = throwing default

}  // namespace

BufferMisuseHandler set_buffer_misuse_handler(BufferMisuseHandler handler) {
  const std::lock_guard<std::mutex> lock(handler_mutex);
  std::swap(handler, misuse_handler);
  return handler;
}

void report_buffer_misuse(const std::string& what) {
  BufferMisuseHandler handler;
  {
    const std::lock_guard<std::mutex> lock(handler_mutex);
    handler = misuse_handler;
  }
  if (handler) {
    handler(what);
    return;
  }
  throw ContractViolation("buffer ownership violation: " + what);
}

std::uint64_t payload_fingerprint(std::span<const double> data) {
  // FNV-1a over the doubles' bit patterns; cheap and stable.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const double d : data) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(d));
    __builtin_memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

std::uint64_t payload_fingerprint(const SharedBuffer& buf) {
  if (!buf) return payload_fingerprint(std::span<const double>{});
  return payload_fingerprint(std::span<const double>(*buf));
}

}  // namespace conflux::simnet
