#include "simnet/spmd.hpp"

#include "support/assert.hpp"

namespace conflux::simnet {

void run_spmd(Network& net, const std::function<void(Comm&)>& body) {
  net.run_team([&](int rank) {
    Comm comm(net, rank);
    body(comm);
  });
}

CommVolume run_spmd(int nranks, const std::function<void(Comm&)>& body) {
  CONFLUX_EXPECTS(nranks >= 1);
  Network net(nranks);
  run_spmd(net, body);
  return net.stats().total();
}

void run_spmd(Network& net, const std::function<void(Comm&)>& body,
              const RunPolicy& policy) {
  net.set_policy(policy);
  run_spmd(net, body);
}

CommVolume run_spmd(int nranks, const std::function<void(Comm&)>& body,
                    const RunPolicy& policy) {
  CONFLUX_EXPECTS(nranks >= 1);
  Network net(nranks);
  run_spmd(net, body, policy);
  return net.stats().total();
}

}  // namespace conflux::simnet
