#include "simnet/spmd.hpp"

#include "support/assert.hpp"

namespace conflux::simnet {

void run_spmd(Network& net, const std::function<void(Comm&)>& body) {
  net.run_team([&](int rank) {
    Comm comm(net, rank);
    body(comm);
  });
}

CommVolume run_spmd(int nranks, const std::function<void(Comm&)>& body) {
  CONFLUX_EXPECTS(nranks >= 1);
  Network net(nranks);
  run_spmd(net, body);
  return net.stats().total();
}

}  // namespace conflux::simnet
