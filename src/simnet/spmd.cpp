#include "simnet/spmd.hpp"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "support/assert.hpp"

namespace conflux::simnet {

void run_spmd(Network& net, const std::function<void(Comm&)>& body) {
  const int nranks = net.size();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));

  std::mutex error_mutex;
  std::exception_ptr first_error;

  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(net, r);
        body(comm);
      } catch (const JobAborted&) {
        // Another rank failed first; nothing to record.
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        net.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

CommVolume run_spmd(int nranks, const std::function<void(Comm&)>& body) {
  CONFLUX_EXPECTS(nranks >= 1);
  Network net(nranks);
  run_spmd(net, body);
  return net.stats().total();
}

}  // namespace conflux::simnet
