/// \file faults.hpp
/// ConfChaos: deterministic fault injection and failure containment for the
/// simulated fabric.
///
/// Injection — a seeded FaultPlan attached to a Network (via
/// FactorConfig::faults, mirroring trace/telemetry) decides, per delivered
/// message, whether to inject a link delay (plus jitter), a sender-side
/// rank stall, or a payload bit-flip. Every decision is a pure function of
/// (seed, attempt, src, dst, tag, per-source sequence number): the sequence
/// number advances in the sender's program order, which the dataflow fixes,
/// so chaos runs are bit-for-bit reproducible across repeats, host pool
/// sizes and execution modes. In ExecMode::Threaded the faults become real
/// sleeps (stalls on the sender, delays as a delivery-ripeness timestamp
/// the receiver honors); in ExecMode::VirtualTime they fold into the
/// per-rank LogGP clock, so injected chaos is makespan-visible and the
/// predicted wall clock stays deterministic.
///
/// Containment — RunPolicy puts a deadline on blocked receives (real
/// seconds per receive in Threaded mode, a virtual-clock cap in VirtualTime
/// mode) so a lost or indefinitely delayed message becomes a typed
/// ReceiveTimeout carrying the full CommContext, a parked-channel snapshot
/// and queue-depth high-water marks — a located diagnostic instead of a CI
/// hang. Payload integrity (FactorConfig::integrity) stamps every payload
/// with the trace layer's FNV-1a fingerprint at deliver time and re-checks
/// it when the receiver matches the message, raising PayloadCorrupted
/// instead of silently misfactoring.
///
/// Recovery lives one layer up: factor::run_with_retry (factor/retry.hpp)
/// classifies these exceptions as transient and re-runs with capped
/// exponential backoff.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "simnet/message.hpp"
#include "support/assert.hpp"

namespace conflux::simnet {

/// Per-run containment policy, honored by Network::receive, the collectives
/// built on it, and the virtual-time runtime. All-zero (the default) means
/// "wait forever" — the pre-ConfChaos behaviour, with zero hot-path cost.
struct RunPolicy {
  /// Threaded mode: longest real time any single receive may stay blocked
  /// before it raises ReceiveTimeout (0 = no deadline). Injected link
  /// delays count toward it — a link slower than the deadline is a fault.
  double deadline_s = 0;

  /// Threaded mode: how often a blocked receive wakes to re-check the
  /// deadline and the abort flag while parked on its condition variable.
  double heartbeat_s = 0.05;

  /// VirtualTime mode: cap on a rank's virtual clock, checked when a
  /// receive completes (0 = no cap). Fault-stalled simulated runs whose
  /// clock blows past the cap fail with ReceiveTimeout deterministically —
  /// the virtual-time analogue of the real-time deadline.
  double virtual_deadline_s = 0;
};

/// What the injector may do to one delivered message.
struct FaultSpec {
  std::uint64_t seed = 1;  ///< the whole plan re-randomizes with this

  // --- link faults (per (src, dst) pair, decided per message) --------------
  double faulty_links = 1.0;  ///< fraction of (src, dst) pairs subject to
                              ///< delay injection (chosen by hash of seed)
  double delay_prob = 0;      ///< probability a message on a faulty link is
                              ///< delayed
  double delay_s = 0;         ///< base injected delivery delay
  double jitter_s = 0;        ///< extra uniform-[0, jitter_s) per delay

  // --- rank faults ---------------------------------------------------------
  double stall_prob = 0;   ///< per-send probability the sender stalls
  double stall_s = 0;      ///< stall duration (sender-side)
  int slow_ranks = 0;      ///< exactly this many hash-chosen victim ranks...
  double slow_factor = 1;  ///< ...have their injected delays/stalls
                           ///< multiplied by this (a persistent slowdown)

  // --- payload corruption --------------------------------------------------
  double corrupt_prob = 0;  ///< per-message probability of one bit flip in
                            ///< the payload (messages with payloads only)

  [[nodiscard]] bool any() const {
    return delay_prob > 0 || stall_prob > 0 || corrupt_prob > 0;
  }
};

/// A seeded, reproducible fault schedule. Attach to a Network with
/// Network::set_faults (or through FactorConfig::faults); the fabric calls
/// at_delivery for every remote message. Thread-safe: per-source sequence
/// counters are only ever advanced from the source rank's own context.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(FaultSpec spec) : spec_(spec) {}

  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  /// The injector's verdict for one message.
  struct Injection {
    double delay_s = 0;  ///< extra link latency before delivery
    double stall_s = 0;  ///< sender-side stall charged before injection
    bool corrupt = false;          ///< flip one payload bit at delivery
    std::uint64_t corrupt_bit = 0; ///< which bit (over the whole payload)
  };

  /// Size the per-source counters and the slow-rank set for `nranks` ranks
  /// (Network::set_faults calls this; idempotent for a matching size).
  void reset(int nranks);

  /// Begin one run/attempt: sequence counters restart so an identical rerun
  /// injects identically (the determinism contract test_faults pins).
  /// Called by the Network at the top of every run_team.
  void begin_run();

  /// Advance to the next retry attempt: all subsequent decisions
  /// re-randomize, so a transiently failed run can succeed on retry.
  /// factor::run_with_retry calls this between attempts.
  void next_attempt() { attempt_.fetch_add(1, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t attempt() const {
    return attempt_.load(std::memory_order_relaxed);
  }

  /// Decide the faults for the next message from `src` to `dst` under
  /// `tag` with a payload of `payload_doubles` doubles (0 = ghost; ghosts
  /// cannot be corrupted). Deterministic given the dataflow; advances
  /// src's sequence counter.
  [[nodiscard]] Injection at_delivery(int src, int dst, Tag tag,
                                      std::size_t payload_doubles);

  /// True when `rank` is one of the spec's hash-chosen slow ranks.
  [[nodiscard]] bool slow_rank(int rank) const;

  /// Injections actually decided since the last reset() — lifetime totals
  /// across runs and retry attempts, so a recovery report can show what a
  /// chain of failed attempts actually suffered.
  struct Counters {
    std::uint64_t delayed = 0;
    std::uint64_t stalled = 0;
    std::uint64_t corrupted = 0;
  };
  [[nodiscard]] Counters counters() const;

 private:
  FaultSpec spec_;
  std::atomic<std::uint64_t> attempt_{0};
  int nranks_ = 0;
  std::unique_ptr<std::atomic<std::uint64_t>[]> seq_;  ///< per-source
  std::vector<std::uint8_t> slow_;                     ///< slow-rank set
  std::atomic<std::uint64_t> delayed_{0};
  std::atomic<std::uint64_t> stalled_{0};
  std::atomic<std::uint64_t> corrupted_{0};
};

/// One rank observed parked in a blocking receive when a timeout or
/// deadlock diagnostic was taken.
struct ParkedRank {
  int rank = -1;
  int src = -1;           ///< source the rank is waiting on
  std::uint64_t tag = 0;  ///< tag the rank is waiting on
};

/// A blocked receive exceeded the run policy's deadline (or, in
/// virtual-time mode, every live rank parked with no message in flight —
/// `deadlock() == true`). Carries the full communication context of the
/// timed-out receive plus a snapshot of every parked rank and the inbound
/// queue-depth high-water marks, so a would-be hang is a located
/// diagnostic.
class ReceiveTimeout : public std::runtime_error {
 public:
  ReceiveTimeout(const std::string& what, CommContext context,
                 std::vector<ParkedRank> parked, bool deadlock)
      : std::runtime_error(what),
        context_(context),
        parked_(std::move(parked)),
        deadlock_(deadlock) {}

  [[nodiscard]] const CommContext& context() const { return context_; }
  [[nodiscard]] const std::vector<ParkedRank>& parked() const {
    return parked_;
  }

  /// True for the virtual-time all-ranks-parked case: a deterministic
  /// program bug (a retry would deadlock again), as opposed to a deadline
  /// expiry, which a retry may outrun. factor::is_transient_failure keys
  /// off this.
  [[nodiscard]] bool deadlock() const { return deadlock_; }

 private:
  CommContext context_;
  std::vector<ParkedRank> parked_;
  bool deadlock_ = false;
};

/// End-to-end payload integrity violation: the FNV-1a fingerprint stamped
/// at deliver time did not match the payload the receiver matched
/// (FactorConfig::integrity). Raised from the receiving rank's context
/// before the payload reaches the engine, so corruption can never silently
/// misfactor.
class PayloadCorrupted : public std::runtime_error {
 public:
  PayloadCorrupted(const std::string& what, CommContext context)
      : std::runtime_error(what), context_(context) {}

  [[nodiscard]] const CommContext& context() const { return context_; }

 private:
  CommContext context_;
};

}  // namespace conflux::simnet
