/// \file phase_model.hpp
/// Per-phase communication-volume predictions for the 2.5D LU engine
/// (COnfLUX and CALU), the analytic counterpart of ConfScope's measured
/// per-phase byte attribution. Where cost_model.hpp predicts one total per
/// implementation, this model splits the prediction along the same span
/// names the instrumented engine uses (support/telemetry.hpp), by summing
/// the engine's exact per-step message sizes on the grid and block size the
/// implementation itself would pick:
///
///   layer_reduction   steps 1 + 5 (cross-layer panel reductions)
///   panel_tournament  step 2 (butterfly or reduction-tree pivoting)
///   pivot_apply       step 3 (pivots + A00 broadcast to all ranks)
///   trsm              steps 4/7/9 — local compute, zero wire bytes
///   schur_update      steps 8 + 10 (layer-sliced panel multicasts)
///
/// The only approximation is the per-owner row split (assumed even, which
/// the hash-spread synthetic pivots guarantee to within one tile); every
/// other term replays the schedule's size arithmetic exactly, so measured
/// dry-run volumes land well inside the benchmarks' 1.1x model band.
#pragma once

#include <string>
#include <vector>

namespace conflux::models {

/// Predicted bytes on the wire (summed over ranks, self-sends excluded —
/// the fabric's accounting convention) for one phase.
struct PhaseVolume {
  std::string phase;  ///< telemetry span name
  double bytes = 0;
};

/// Predicted critical-path time (seconds) for one phase under the LogGP
/// clock the virtual-time fabric charges (simnet/vtime.hpp).
struct PhaseTime {
  std::string phase;  ///< telemetry span name
  double seconds = 0;
};

/// True for the algorithms predict_lu_phases covers ("COnfLUX", "CALU").
[[nodiscard]] bool has_phase_model(const std::string& algo);

/// Per-phase predicted volume of `algo` on N x N over P ranks with the
/// paper's default memory rule (M = N^2 / P^(2/3)). Entries appear in
/// engine step order; phases with zero predicted wire bytes (trsm) are
/// included so the measured/model table stays aligned with the spans.
[[nodiscard]] std::vector<PhaseVolume> predict_lu_phases(
    const std::string& algo, int n, int p);

/// Per-phase times under the virtual-time fabric's LogGP charging rules:
/// a send of k bytes costs the *sender* k*beta and lands alpha later;
/// receives are free (clock = max); multicasts serialize at the sender,
/// one injection per recipient; self-sends are free. Where
/// predict_lu_phases replays the schedule's *size* arithmetic, this
/// replays its *timing*: one clock per rank, advanced message-by-message
/// in the engine's program order (panel reduction, tournament rounds, the
/// binomial pivot broadcast, the lazy A01 reduction, the layer-sliced
/// multicasts). The only approximation is the even pivot-row split, so
/// the prediction tracks a virtual-time dry run's measured makespan
/// (FactorResult::predicted_seconds) to within a few percent — the tests
/// hold it to 10%.
///
/// Each entry reports how far the global clock frontier advances while
/// that phase's messages land; entries sum to the predicted makespan, and
/// a phase whose traffic hides entirely behind a concurrent chain
/// contributes zero.
[[nodiscard]] std::vector<PhaseTime> predict_lu_phase_times(
    const std::string& algo, int n, int p, double alpha_s,
    double beta_s_per_byte);

/// Sum of predict_lu_phase_times — the predicted wall clock, comparable to
/// FactorResult::predicted_seconds from a virtual-time run.
[[nodiscard]] double predict_lu_makespan(const std::string& algo, int n,
                                         int p, double alpha_s,
                                         double beta_s_per_byte);

}  // namespace conflux::models
