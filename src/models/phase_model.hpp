/// \file phase_model.hpp
/// Per-phase communication-volume predictions for the 2.5D LU engine
/// (COnfLUX and CALU), the analytic counterpart of ConfScope's measured
/// per-phase byte attribution. Where cost_model.hpp predicts one total per
/// implementation, this model splits the prediction along the same span
/// names the instrumented engine uses (support/telemetry.hpp), by summing
/// the engine's exact per-step message sizes on the grid and block size the
/// implementation itself would pick:
///
///   layer_reduction   steps 1 + 5 (cross-layer panel reductions)
///   panel_tournament  step 2 (butterfly or reduction-tree pivoting)
///   pivot_apply       step 3 (pivots + A00 broadcast to all ranks)
///   trsm              steps 4/7/9 — local compute, zero wire bytes
///   schur_update      steps 8 + 10 (layer-sliced panel multicasts)
///
/// The only approximation is the per-owner row split (assumed even, which
/// the hash-spread synthetic pivots guarantee to within one tile); every
/// other term replays the schedule's size arithmetic exactly, so measured
/// dry-run volumes land well inside the benchmarks' 1.1x model band.
#pragma once

#include <string>
#include <vector>

namespace conflux::models {

/// Predicted bytes on the wire (summed over ranks, self-sends excluded —
/// the fabric's accounting convention) for one phase.
struct PhaseVolume {
  std::string phase;  ///< telemetry span name
  double bytes = 0;
};

/// True for the algorithms predict_lu_phases covers ("COnfLUX", "CALU").
[[nodiscard]] bool has_phase_model(const std::string& algo);

/// Per-phase predicted volume of `algo` on N x N over P ranks with the
/// paper's default memory rule (M = N^2 / P^(2/3)). Entries appear in
/// engine step order; phases with zero predicted wire bytes (trsm) are
/// included so the measured/model table stays aligned with the spans.
[[nodiscard]] std::vector<PhaseVolume> predict_lu_phases(
    const std::string& algo, int n, int p);

}  // namespace conflux::models
