/// \file predictions.hpp
/// Model-based comparisons: "reduction vs. second best" (Fig. 7) and
/// model-line crossovers (the paper's observation that CANDMC overtakes the
/// 2D libraries only beyond ~450k ranks).
#pragma once

#include <string>
#include <vector>

#include "models/cost_model.hpp"

namespace conflux::models {

/// One implementation's predicted or measured volume.
struct NamedVolume {
  std::string name;
  double total_bytes = 0;
};

/// The cheapest entry.
[[nodiscard]] NamedVolume best_of(const std::vector<NamedVolume>& entries);

/// The cheapest entry excluding `excluded` (Fig. 7's "second-best" is the
/// best non-COnfLUX implementation).
[[nodiscard]] NamedVolume best_excluding(
    const std::vector<NamedVolume>& entries, const std::string& excluded);

/// Fig. 7 cell: (second-best volume) / (COnfLUX volume), with the
/// second-best implementation's name ("L" = LibSci, "S" = SLATE,
/// "C" = CANDMC in the paper's annotation).
struct Reduction {
  double factor = 0;
  std::string second_best;
};
[[nodiscard]] Reduction reduction_vs_second_best(
    const std::vector<NamedVolume>& entries,
    const std::string& ours = "COnfLUX");

/// Evaluate all standard models at an instance. With `leading_only`, use
/// only the models' leading-order terms — the paper's convention for its
/// large-P extrapolations ("only the leading factors of the models are
/// shown", Fig. 6a).
[[nodiscard]] std::vector<NamedVolume> predict_all(const Instance& inst,
                                                   bool leading_only = false);

/// As predict_all, for the Cholesky family (ScaLAPACK 2D baseline vs
/// COnfCHOX) — the model side of bench_cholesky's measured/modeled table.
[[nodiscard]] std::vector<NamedVolume> predict_all_cholesky(
    const Instance& inst, bool leading_only = false);

/// Smallest power-of-two P (scanned geometrically up to `p_max`) at which
/// `a` predicts less volume than `b` for matrix size n under the
/// max-replication memory rule; returns -1 if no crossover below p_max.
[[nodiscard]] double crossover_ranks(const CostModel& a, const CostModel& b,
                                     double n, double p_max);

}  // namespace conflux::models
