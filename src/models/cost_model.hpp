/// \file cost_model.hpp
/// Analytic communication-volume models for the four LU implementations of
/// Table 2. Each model maps a problem instance (N, P, M) to the predicted
/// communication volume; the benchmark harness prints these next to the
/// simulator's measured volumes exactly as the paper prints
/// "measured/modeled (prediction %)".
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace conflux::models {

/// A problem instance. `m_elements` is the per-rank fast-memory budget in
/// matrix elements (the paper's M); it controls the replication factor
/// c = P*M/N^2 available to 2.5D algorithms.
struct Instance {
  double n = 0;           ///< matrix dimension N
  double p = 0;           ///< number of ranks P
  double m_elements = 0;  ///< per-rank memory budget M (elements)
};

/// The paper's memory rule for its scaling experiments (Fig. 6 caption):
/// "enough memory M >= N^2/P^(2/3) was present to allow the maximum number
/// of replications c = P^(1/3)".
[[nodiscard]] Instance max_replication_instance(double n, double p);

/// Interface for per-implementation volume models.
class CostModel {
 public:
  virtual ~CostModel() = default;

  /// Implementation name as used in tables ("LibSci", "SLATE", "CANDMC",
  /// "COnfLUX").
  [[nodiscard]] virtual std::string name() const = 0;

  /// Predicted *elements* communicated per rank, leading plus lower-order
  /// terms.
  [[nodiscard]] virtual double elements_per_rank(const Instance& inst) const = 0;

  /// Leading-order term only (the solid lines in Fig. 6a).
  [[nodiscard]] virtual double leading_elements_per_rank(
      const Instance& inst) const = 0;

  /// Predicted total bytes over all ranks (8 B elements — the Table 2 GB
  /// numbers).
  [[nodiscard]] double total_bytes(const Instance& inst) const {
    return elements_per_rank(inst) * inst.p * 8.0;
  }
  /// Predicted per-rank bytes.
  [[nodiscard]] double bytes_per_rank(const Instance& inst) const {
    return elements_per_rank(inst) * 8.0;
  }
};

/// Cray LibSci / ScaLAPACK: 2D block-cyclic, partial pivoting, greedy
/// divisor grid over all ranks. Leading cost N^2/sqrt(P) per rank.
class LibSciModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "LibSci"; }
  [[nodiscard]] double elements_per_rank(const Instance& inst) const override;
  [[nodiscard]] double leading_elements_per_rank(
      const Instance& inst) const override;
};

/// SLATE: same 2D decomposition with a near-square grid chooser (may idle a
/// few ranks). Leading cost N^2/sqrt(P) per rank.
class SlateModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "SLATE"; }
  [[nodiscard]] double elements_per_rank(const Instance& inst) const override;
  [[nodiscard]] double leading_elements_per_rank(
      const Instance& inst) const override;
};

/// CANDMC: the authors' published cost model [56] — 5 N^3/(P sqrt M) leading
/// term (asymptotically optimal, constant 5x above COnfLUX).
class CandmcModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "CANDMC"; }
  [[nodiscard]] double elements_per_rank(const Instance& inst) const override;
  [[nodiscard]] double leading_elements_per_rank(
      const Instance& inst) const override;
};

/// COnfLUX: N^3/(P sqrt M) leading term plus the lazy-reduction and scatter
/// lower-order terms of Lemma 10, evaluated on the grid the implementation
/// itself would pick.
class ConfluxModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "COnfLUX"; }
  [[nodiscard]] double elements_per_rank(const Instance& inst) const override;
  [[nodiscard]] double leading_elements_per_rank(
      const Instance& inst) const override;
};

/// CALU on the shared 2.5D engine: identical leading term and lower-order
/// tails to COnfLUX except the step-2 tournament, where the binary
/// reduction tree sends Px - 1 candidate blocks per panel instead of the
/// butterfly's ~Px log2(Px). Kept out of standard_models() — Table 2 and
/// the Fig. 6 reproductions compare exactly the paper's four
/// implementations; CALU is the ablation extra.
class CaluModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "CALU"; }
  [[nodiscard]] double elements_per_rank(const Instance& inst) const override;
  [[nodiscard]] double leading_elements_per_rank(
      const Instance& inst) const override;
};

/// The I/O lower bound of §6: 2N^3/(3 P sqrt M) + N^2/(2P) elements.
[[nodiscard]] double lu_lower_bound_elements_per_rank(const Instance& inst);

/// All four models in Table 2 order (LibSci, SLATE, CANDMC, COnfLUX).
[[nodiscard]] std::vector<std::unique_ptr<CostModel>> standard_models();

// --- Cholesky family (journal extension, arXiv:2108.09337) ----------------

/// COnfCHOX: N^3/(P sqrt M) leading term (same layer-sliced multicasts as
/// COnfLUX) plus the halved lazy-reduction tail and the L00 broadcast,
/// evaluated on the grid the implementation itself would pick.
class ConfchoxModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "COnfCHOX"; }
  [[nodiscard]] double elements_per_rank(const Instance& inst) const override;
  [[nodiscard]] double leading_elements_per_rank(
      const Instance& inst) const override;
};

/// ScaLAPACK-style 2D Cholesky (pdpotrf): L-panel and transposed-panel
/// broadcasts on the greedy all-ranks grid. Leading cost N^2/sqrt(P) per
/// rank — no replication, so COnfCHOX undercuts it whenever c > 1 fits in
/// memory.
class Scalapack2DCholModel final : public CostModel {
 public:
  [[nodiscard]] std::string name() const override { return "ScaLAPACK"; }
  [[nodiscard]] double elements_per_rank(const Instance& inst) const override;
  [[nodiscard]] double leading_elements_per_rank(
      const Instance& inst) const override;
};

/// The Cholesky I/O lower bound (daap/kernels.hpp closed form, per rank):
/// N^3/(3 P sqrt M) + N(N-1)/(2P) elements.
[[nodiscard]] double cholesky_lower_bound_elements_per_rank(
    const Instance& inst);

/// Both Cholesky models, baseline first (ScaLAPACK, COnfCHOX).
[[nodiscard]] std::vector<std::unique_ptr<CostModel>> cholesky_models();

}  // namespace conflux::models
