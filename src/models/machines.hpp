/// \file machines.hpp
/// Machine presets used for the paper's extrapolations (§9, "Implications
/// for Exascale"): Piz Daint (the measurement platform), Summit and Sunway
/// TaihuLight (prediction targets), plus a generic future machine at the
/// P = 262,144 rank scale the paper cites.
#pragma once

#include <string>
#include <vector>

namespace conflux::models {

/// A machine's coarse parameters for the volume models.
struct Machine {
  std::string name;
  int ranks = 0;                ///< MPI ranks at full scale (1/socket or GPU)
  double mem_bytes_per_rank = 0;  ///< usable memory per rank

  /// Memory budget in matrix elements per rank, assuming doubles and a
  /// utilization factor (the whole budget cannot hold working copies).
  [[nodiscard]] double mem_elements(double utilization = 0.5) const {
    return mem_bytes_per_rank * utilization / 8.0;
  }
};

/// CSCS Piz Daint: 5,704 XC50 nodes, 64 GiB, 1 rank per node (§8).
[[nodiscard]] Machine piz_daint();

/// OLCF Summit: 4,608 nodes, one rank per node (the paper's full-scale
/// prediction target).
[[nodiscard]] Machine summit();

/// Sunway TaihuLight: 40,960 nodes.
[[nodiscard]] Machine taihulight();

/// Generic near-future machine with 262,144 ranks (the largest P in Fig. 7).
[[nodiscard]] Machine future_exascale();

/// All presets.
[[nodiscard]] std::vector<Machine> all_machines();

}  // namespace conflux::models
