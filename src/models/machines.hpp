/// \file machines.hpp
/// Machine presets used for the paper's extrapolations (§9, "Implications
/// for Exascale"): Piz Daint (the measurement platform), Summit and Sunway
/// TaihuLight (prediction targets), plus a generic future machine at the
/// P = 262,144 rank scale the paper cites.
#pragma once

#include <string>
#include <vector>

namespace conflux::models {

/// A machine's coarse parameters for the volume models, plus the
/// LogGP-style link parameters the virtual-time fabric clock consumes
/// (simnet::LinkModel — kept as plain doubles here so models/ stays free of
/// simnet headers): per-message latency alpha, inverse per-rank injection
/// bandwidth beta, and optional per-flop compute cost gamma (0 = comm-only
/// predictions, the paper's modeling focus).
struct Machine {
  std::string name;
  int ranks = 0;                ///< MPI ranks at full scale (1/socket or GPU)
  double mem_bytes_per_rank = 0;  ///< usable memory per rank
  double alpha_s = 1.0e-6;        ///< network latency per message (seconds)
  double beta_s_per_byte = 1.0e-10;  ///< 1 / injection bandwidth
  double gamma_s_per_flop = 0.0;     ///< compute cost; 0 = comm-only clock

  /// Memory budget in matrix elements per rank, assuming doubles and a
  /// utilization factor (the whole budget cannot hold working copies).
  [[nodiscard]] double mem_elements(double utilization = 0.5) const {
    return mem_bytes_per_rank * utilization / 8.0;
  }
};

/// CSCS Piz Daint: 5,704 XC50 nodes, 64 GiB, 1 rank per node (§8).
[[nodiscard]] Machine piz_daint();

/// OLCF Summit: 4,608 nodes, one rank per node (the paper's full-scale
/// prediction target).
[[nodiscard]] Machine summit();

/// Sunway TaihuLight: 40,960 nodes.
[[nodiscard]] Machine taihulight();

/// Generic near-future machine with 262,144 ranks (the largest P in Fig. 7).
[[nodiscard]] Machine future_exascale();

/// All presets.
[[nodiscard]] std::vector<Machine> all_machines();

/// Preset lookup by name — exact preset name or a case-insensitive
/// substring ("daint", "summit", ...). Throws ContractViolation listing the
/// known names when nothing matches; benches use this for their --machine
/// flag.
[[nodiscard]] Machine machine_by_name(const std::string& name);

}  // namespace conflux::models
