#include "models/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "grid/grid_opt.hpp"
#include "support/assert.hpp"

namespace conflux::models {

namespace {

/// Common 2D ScaLAPACK-style cost on a Pr x Pc grid:
///   N^2/2 * (1/Pr + 1/Pc)   L-panel and U-row broadcasts
/// + 2 N^2 / P               pivot row swaps (exchange counted both ways)
/// + N/nb * nb * logPr ...   pivot searches (latency-dominated, tiny volume)
double cost2d_elements_per_rank(double n, const conflux::grid::Grid2D& g,
                                double nb) {
  const double p = g.active();
  const double broadcasts = n * n / 2.0 * (1.0 / g.rows() + 1.0 / g.cols());
  const double swaps = 2.0 * n * n / p;
  const double pivot_search =
      (n / nb) * nb * std::ceil(std::log2(std::max(2, g.rows()))) * 1.5;
  return broadcasts + swaps + pivot_search;
}

/// Replication depth available with memory budget M: c = clamp(P*M/N^2).
int replication_depth(const Instance& inst) {
  const double c = inst.p * inst.m_elements / (inst.n * inst.n);
  return std::max(1, static_cast<int>(c));
}

}  // namespace

Instance max_replication_instance(double n, double p) {
  // Fig. 6 caption: "enough memory M >= N^2/P^(2/3) was present to allow the
  // maximum number of replications c = P^(1/3)". Rounding P^(1/3) to the
  // integer grid the algorithms actually build keeps c = round(P^(1/3))
  // feasible (e.g. a 10 x 10 x 10 grid inside P = 1024).
  Instance inst;
  inst.n = n;
  inst.p = p;
  const double c = std::max(1.0, std::round(std::cbrt(p)));
  inst.m_elements = n * n / (c * c);
  return inst;
}

double LibSciModel::elements_per_rank(const Instance& inst) const {
  const auto g = conflux::grid::choose_grid_2d_all_ranks(
      static_cast<int>(inst.p));
  return cost2d_elements_per_rank(inst.n, g, 64.0);
}

double LibSciModel::leading_elements_per_rank(const Instance& inst) const {
  return inst.n * inst.n / std::sqrt(inst.p);
}

double SlateModel::elements_per_rank(const Instance& inst) const {
  const auto g = conflux::grid::choose_grid_2d_near_square(
      static_cast<int>(inst.p));
  return cost2d_elements_per_rank(inst.n, g, 16.0);
}

double SlateModel::leading_elements_per_rank(const Instance& inst) const {
  return inst.n * inst.n / std::sqrt(inst.p);
}

double CandmcModel::elements_per_rank(const Instance& inst) const {
  // Authors' model [56]: 5 N^3/(P sqrt M) with an N^2/(P sqrt M)-order tail;
  // we add the replicated row-swap traffic the implementation performs.
  const double leading = leading_elements_per_rank(inst);
  const int c = replication_depth(inst);
  const double swaps = 2.0 * inst.n * inst.n * c / inst.p;
  return leading + swaps;
}

double CandmcModel::leading_elements_per_rank(const Instance& inst) const {
  CONFLUX_EXPECTS(inst.m_elements > 0);
  return 5.0 * inst.n * inst.n * inst.n /
         (inst.p * std::sqrt(inst.m_elements));
}

double ConfluxModel::elements_per_rank(const Instance& inst) const {
  const int n = static_cast<int>(inst.n);
  const auto choice = conflux::grid::optimize_grid(
      static_cast<int>(inst.p), n, inst.m_elements);
  const auto& g = choice.grid;
  const double active = g.active();
  const double per_rank = conflux::grid::conflux_cost_per_rank(
      inst.n, g.px_extent(), g.py_extent(), g.layers());
  // Block size: same rule as the implementation (v = a*c, bounded steps).
  const int v = conflux::grid::choose_block_size(
      n, g.layers(), conflux::grid::default_block_target(n, g.layers()));
  // Lower-order tails: the per-step A00 + pivot broadcast (v^2 + v to
  // every rank) and the tournament butterfly (participants only, amortized
  // over all ranks).
  const double a00_bcast = inst.n * v + inst.n;
  const double tournament =
      2.0 * inst.n * v *
      (1.0 + std::ceil(std::log2(std::max(2, g.px_extent())))) *
      g.px_extent() / active;
  return per_rank + a00_bcast + tournament;
}

double ConfluxModel::leading_elements_per_rank(const Instance& inst) const {
  CONFLUX_EXPECTS(inst.m_elements > 0);
  return inst.n * inst.n * inst.n / (inst.p * std::sqrt(inst.m_elements));
}

double CaluModel::elements_per_rank(const Instance& inst) const {
  const int n = static_cast<int>(inst.n);
  const auto choice = conflux::grid::optimize_grid(
      static_cast<int>(inst.p), n, inst.m_elements);
  const auto& g = choice.grid;
  const double active = g.active();
  const double per_rank = conflux::grid::conflux_cost_per_rank(
      inst.n, g.px_extent(), g.py_extent(), g.layers());
  const int v = conflux::grid::choose_block_size(
      n, g.layers(), conflux::grid::default_block_target(n, g.layers()));
  const double a00_bcast = inst.n * v + inst.n;
  // Tree tournament: Px - 1 candidate blocks per panel (each <= 2v x v
  // counted at both endpoints, like the butterfly term), no log factor.
  const double tournament = 2.0 * inst.n * v * g.px_extent() / active;
  return per_rank + a00_bcast + tournament;
}

double CaluModel::leading_elements_per_rank(const Instance& inst) const {
  CONFLUX_EXPECTS(inst.m_elements > 0);
  return inst.n * inst.n * inst.n / (inst.p * std::sqrt(inst.m_elements));
}

double lu_lower_bound_elements_per_rank(const Instance& inst) {
  CONFLUX_EXPECTS(inst.m_elements > 0);
  return 2.0 * inst.n * inst.n * inst.n /
             (3.0 * inst.p * std::sqrt(inst.m_elements)) +
         inst.n * (inst.n - 1.0) / (2.0 * inst.p);
}

double ConfchoxModel::elements_per_rank(const Instance& inst) const {
  const int n = static_cast<int>(inst.n);
  const auto choice = conflux::grid::optimize_grid(
      static_cast<int>(inst.p), n, inst.m_elements, 0,
      conflux::grid::confchox_cost_per_rank);
  const auto& g = choice.grid;
  const double per_rank = conflux::grid::confchox_cost_per_rank(
      inst.n, g.px_extent(), g.py_extent(), g.layers());
  // Block size: same rule as the implementation.
  const int v = conflux::grid::choose_block_size(
      n, g.layers(), conflux::grid::default_block_target(n, g.layers()));
  // Lower-order tail: the per-step L00 broadcast (v^2 to every rank).
  const double l00_bcast = inst.n * v;
  return per_rank + l00_bcast;
}

double ConfchoxModel::leading_elements_per_rank(const Instance& inst) const {
  CONFLUX_EXPECTS(inst.m_elements > 0);
  return inst.n * inst.n * inst.n / (inst.p * std::sqrt(inst.m_elements));
}

double Scalapack2DCholModel::elements_per_rank(const Instance& inst) const {
  const auto g = conflux::grid::choose_grid_2d_all_ranks(
      static_cast<int>(inst.p));
  const double nb = 64.0;
  // L-panel (along rows) + transposed panel (down columns) broadcasts, plus
  // the per-step L00 broadcast inside the panel column (amortized).
  const double broadcasts =
      inst.n * inst.n / 2.0 * (1.0 / g.rows() + 1.0 / g.cols());
  const double l00 = inst.n * nb / g.cols();
  return broadcasts + l00;
}

double Scalapack2DCholModel::leading_elements_per_rank(
    const Instance& inst) const {
  return inst.n * inst.n / std::sqrt(inst.p);
}

double cholesky_lower_bound_elements_per_rank(const Instance& inst) {
  CONFLUX_EXPECTS(inst.m_elements > 0);
  return inst.n * inst.n * inst.n /
             (3.0 * inst.p * std::sqrt(inst.m_elements)) +
         inst.n * (inst.n - 1.0) / (2.0 * inst.p);
}

std::vector<std::unique_ptr<CostModel>> cholesky_models() {
  std::vector<std::unique_ptr<CostModel>> models;
  models.push_back(std::make_unique<Scalapack2DCholModel>());
  models.push_back(std::make_unique<ConfchoxModel>());
  return models;
}

std::vector<std::unique_ptr<CostModel>> standard_models() {
  std::vector<std::unique_ptr<CostModel>> models;
  models.push_back(std::make_unique<LibSciModel>());
  models.push_back(std::make_unique<SlateModel>());
  models.push_back(std::make_unique<CandmcModel>());
  models.push_back(std::make_unique<ConfluxModel>());
  return models;
}

}  // namespace conflux::models
