#include "models/predictions.hpp"

#include <limits>

#include "support/assert.hpp"

namespace conflux::models {

NamedVolume best_of(const std::vector<NamedVolume>& entries) {
  CONFLUX_EXPECTS(!entries.empty());
  const NamedVolume* best = &entries.front();
  for (const auto& e : entries)
    if (e.total_bytes < best->total_bytes) best = &e;
  return *best;
}

NamedVolume best_excluding(const std::vector<NamedVolume>& entries,
                           const std::string& excluded) {
  NamedVolume best{"", std::numeric_limits<double>::infinity()};
  for (const auto& e : entries)
    if (e.name != excluded && e.total_bytes < best.total_bytes) best = e;
  CONFLUX_ENSURES(!best.name.empty());
  return best;
}

Reduction reduction_vs_second_best(const std::vector<NamedVolume>& entries,
                                   const std::string& ours) {
  double our_bytes = -1;
  for (const auto& e : entries)
    if (e.name == ours) our_bytes = e.total_bytes;
  CONFLUX_EXPECTS_MSG(our_bytes > 0, "entry '" << ours << "' missing");
  const NamedVolume second = best_excluding(entries, ours);
  return {second.total_bytes / our_bytes, second.name};
}

namespace {

std::vector<NamedVolume> predict_with(
    const std::vector<std::unique_ptr<CostModel>>& models,
    const Instance& inst, bool leading_only) {
  std::vector<NamedVolume> out;
  for (const auto& model : models) {
    const double bytes =
        leading_only
            ? model->leading_elements_per_rank(inst) * inst.p * 8.0
            : model->total_bytes(inst);
    out.push_back({model->name(), bytes});
  }
  return out;
}

}  // namespace

std::vector<NamedVolume> predict_all(const Instance& inst,
                                     bool leading_only) {
  return predict_with(standard_models(), inst, leading_only);
}

std::vector<NamedVolume> predict_all_cholesky(const Instance& inst,
                                              bool leading_only) {
  return predict_with(cholesky_models(), inst, leading_only);
}

double crossover_ranks(const CostModel& a, const CostModel& b, double n,
                       double p_max) {
  for (double p = 4; p <= p_max; p *= 2) {
    const Instance inst = max_replication_instance(n, p);
    if (a.total_bytes(inst) < b.total_bytes(inst)) return p;
  }
  return -1;
}

}  // namespace conflux::models
