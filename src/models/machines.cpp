#include "models/machines.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "support/assert.hpp"

namespace conflux::models {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}
}  // namespace

// Link parameters: alpha is the small-message latency of the interconnect,
// beta the inverse per-rank injection bandwidth (1 rank per node, so the
// node's NIC bandwidth). Values are the vendors' published figures rounded
// to one significant digit — the volume model is exact, the time model is
// deliberately coarse.

Machine piz_daint() {
  // Cray Aries dragonfly: ~1 us MPI latency, ~10 GB/s injection per node.
  return {"Piz Daint", 5704, 64.0 * kGiB, 1.0e-6, 1.0e-10, 0.0};
}

Machine summit() {
  // Dual-rail EDR InfiniBand: ~1 us, ~25 GB/s per node.
  return {"Summit", 4608, (512.0 + 96.0) * kGiB, 1.0e-6, 4.0e-11, 0.0};
}

Machine taihulight() {
  // Sunway TaihuLight custom network: ~1 us, ~8 GB/s per node.
  return {"TaihuLight", 40960, 32.0 * kGiB, 1.0e-6, 1.25e-10, 0.0};
}

Machine future_exascale() {
  // Generic near-future machine: ~0.5 us, ~50 GB/s per rank.
  return {"Future-262k", 262144, 16.0 * kGiB, 5.0e-7, 2.0e-11, 0.0};
}

std::vector<Machine> all_machines() {
  return {piz_daint(), summit(), taihulight(), future_exascale()};
}

Machine machine_by_name(const std::string& name) {
  const std::string needle = lower(name);
  for (const Machine& m : all_machines())
    if (lower(m.name) == needle) return m;
  for (const Machine& m : all_machines())
    if (lower(m.name).find(needle) != std::string::npos) return m;
  std::ostringstream os;
  os << "unknown machine '" << name << "'; known machines:";
  for (const Machine& m : all_machines()) os << " '" << m.name << '\'';
  throw ContractViolation(os.str());
}

}  // namespace conflux::models
