#include "models/machines.hpp"

namespace conflux::models {

namespace {
constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
}

Machine piz_daint() { return {"Piz Daint", 5704, 64.0 * kGiB}; }

Machine summit() { return {"Summit", 4608, (512.0 + 96.0) * kGiB}; }

Machine taihulight() { return {"TaihuLight", 40960, 32.0 * kGiB}; }

Machine future_exascale() { return {"Future-262k", 262144, 16.0 * kGiB}; }

std::vector<Machine> all_machines() {
  return {piz_daint(), summit(), taihulight(), future_exascale()};
}

}  // namespace conflux::models
