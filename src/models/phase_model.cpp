#include "models/phase_model.hpp"

#include <algorithm>
#include <cmath>

#include "grid/block_cyclic.hpp"
#include "grid/grid_opt.hpp"
#include "support/assert.hpp"

namespace conflux::models {

namespace {

/// Candidate-pack size in bytes: 2 header doubles plus, per candidate row,
/// one row index and v values (linalg::pack_candidates layout, which the
/// engine's dry run replays byte-for-byte).
double pack_bytes(double count, int v) { return (2.0 + count * (1 + v)) * 8.0; }

/// Step-2 volume of one butterfly tournament over px owners whose panels
/// each hold `s0` candidate rows (saturated at v). Mirrors the engine's
/// fold-in + mask-doubling size recursion.
double butterfly_bytes(int px_count, double s0, int v) {
  std::vector<double> size_of(static_cast<std::size_t>(px_count), s0);
  const double cap = v;
  double bytes = 0;
  int fold = 1;
  while (fold * 2 <= px_count) fold *= 2;
  for (int q = fold; q < px_count; ++q)
    bytes += pack_bytes(size_of[static_cast<std::size_t>(q)], v);
  for (int q = 0; q + fold < px_count; ++q)
    size_of[static_cast<std::size_t>(q)] =
        std::min(cap, size_of[static_cast<std::size_t>(q)] +
                          size_of[static_cast<std::size_t>(q + fold)]);
  for (int mask = 1; mask < fold; mask <<= 1) {
    for (int q = 0; q < fold; ++q)
      bytes += pack_bytes(size_of[static_cast<std::size_t>(q)], v);
    std::vector<double> next = size_of;
    for (int q = 0; q < fold; ++q)
      next[static_cast<std::size_t>(q)] =
          std::min(cap, size_of[static_cast<std::size_t>(q)] +
                            size_of[static_cast<std::size_t>(q ^ mask)]);
    size_of = std::move(next);
  }
  return bytes;
}

/// Step-2 volume of one reduction-tree tournament (CALU): gap-doubling
/// rounds, every non-root owner sends exactly once, merged counts saturate
/// at v — the same schedule linalg::reduction_tree_schedule emits.
double tree_bytes(int px_count, double s0, int v) {
  std::vector<double> size_of(static_cast<std::size_t>(px_count), s0);
  const double cap = v;
  double bytes = 0;
  for (int gap = 1; gap < px_count; gap *= 2)
    for (int dst = 0; dst + gap < px_count; dst += 2 * gap) {
      const int src = dst + gap;
      bytes += pack_bytes(size_of[static_cast<std::size_t>(src)], v);
      size_of[static_cast<std::size_t>(dst)] =
          std::min(cap, size_of[static_cast<std::size_t>(dst)] +
                            size_of[static_cast<std::size_t>(src)]);
    }
  return bytes;
}

/// Grid, block size and derived extents — the same choices run_block25d
/// makes with a default config, shared by the volume and time models.
struct LuShape {
  grid::Grid3D g;
  int v = 0;
  int px = 0, py = 0, c = 0, steps = 0;
  double active = 0;
};

LuShape lu_shape(int n, int p) {
  const double mem = static_cast<double>(n) * n /
                     std::pow(static_cast<double>(p), 2.0 / 3.0);
  LuShape s{grid::optimize_grid(p, n, mem).grid, 0, 0, 0, 0, 0, 0};
  s.v = grid::choose_block_size(
      n, s.g.layers(), grid::default_block_target(n, s.g.layers()));
  s.px = s.g.px_extent();
  s.py = s.g.py_extent();
  s.c = s.g.layers();
  s.active = s.g.active();
  s.steps = n / s.v;
  return s;
}

}  // namespace

bool has_phase_model(const std::string& algo) {
  return algo == "COnfLUX" || algo == "CALU";
}

std::vector<PhaseVolume> predict_lu_phases(const std::string& algo, int n,
                                           int p) {
  CONFLUX_EXPECTS(has_phase_model(algo));
  CONFLUX_EXPECTS(n >= 1 && p >= 1);

  // Same grid and block-size rules as run_block25d with default config.
  const LuShape sh = lu_shape(n, p);
  const int v = sh.v;
  const int px = sh.px;
  const int py = sh.py;
  const int c = sh.c;
  const double active = sh.active;
  const int steps = sh.steps;

  double reduce = 0, tournament = 0, pivot = 0, schur = 0;
  for (int t = 0; t < steps; ++t) {
    const double rem = n - static_cast<double>(t) * v;     // unpivoted rows
    const double rem2 = rem - v;                           // after this step
    const double tiles_left = steps - t - 1;               // trailing tile cols

    // Step 1: each non-reducing layer of the panel column ships its rows.
    reduce += 8.0 * rem * v * (c - 1);
    // Step 5: pivot-row partials from every (px, py, l) to the aggregators;
    // the aggregator's own contribution (1/px of the reducing layer's) is a
    // self-send the fabric does not meter.
    reduce += 8.0 * v * v * tiles_left * (c - 1.0 / px);

    // Step 2: one tournament over the px panel owners, candidate counts
    // saturated at v (even row split across owners).
    const double s0 = std::min(static_cast<double>(v), rem / px);
    tournament += algo == "CALU" ? tree_bytes(px, s0, v)
                                 : butterfly_bytes(px, s0, v);

    // Step 3: pivots (v ints) + A00 (v^2 doubles) to every other rank.
    pivot += (active - 1) * (8.0 * v * v + 4.0 * v);

    // Steps 8 + 10: layer-sliced A10/A01 multicasts; each side reaches
    // px (resp. py) recipients per layer and skips the 1/c self-slice.
    schur += 8.0 * rem2 * v * (py - 1.0 / c);
    schur += 8.0 * rem2 * v * (px - 1.0 / c);
  }

  return {{"layer_reduction", reduce},
          {"panel_tournament", tournament},
          {"pivot_apply", pivot},
          {"trsm", 0.0},
          {"schur_update", schur}};
}

std::vector<PhaseTime> predict_lu_phase_times(const std::string& algo, int n,
                                              int p, double alpha_s,
                                              double beta_s_per_byte) {
  CONFLUX_EXPECTS(has_phase_model(algo));
  CONFLUX_EXPECTS(n >= 1 && p >= 1);
  CONFLUX_EXPECTS(alpha_s >= 0 && beta_s_per_byte >= 0);

  const LuShape sh = lu_shape(n, p);
  const grid::Grid3D& g = sh.g;
  const int v = sh.v;
  const int px = sh.px;
  const int py = sh.py;
  const int c = sh.c;
  const int steps = sh.steps;
  const int nr = g.active();
  const double a = alpha_s;
  const double b = beta_s_per_byte;

  // One LogGP clock per rank, advanced by replaying the engine's message
  // schedule in per-rank program order with the fabric's charging rules:
  // a send costs the sender bytes*beta (serialized in program order), the
  // receiver's clock rises to the arrival (sender clock + alpha), and
  // self-sends are free. The only approximation is the even pivot-row
  // split (exact for the dry run's hash-spread synthetic pivots to within
  // one tile) — everything else replays the schedule's arithmetic exactly,
  // mirroring how predict_lu_phases replays the sizes.
  std::vector<double> clk(static_cast<std::size_t>(nr), 0.0);
  const auto send = [&](int src, int dst, double bytes) {
    if (src == dst) return;  // fabric exemption: self-sends are free
    double& s = clk[static_cast<std::size_t>(src)];
    double& d = clk[static_cast<std::size_t>(dst)];
    s += bytes * b;
    d = std::max(d, s + a);
  };
  const auto frontier = [&] {
    return *std::max_element(clk.begin(), clk.end());
  };

  // Phase attribution: how far the global frontier (the would-be makespan)
  // advances while each phase's messages land. Phases sum to the makespan
  // by construction; a phase whose traffic hides entirely behind another
  // chain contributes zero.
  double mark = 0;
  const auto take = [&](double& acc) {
    const double f = frontier();
    if (f > mark) {
      acc += f - mark;
      mark = f;
    }
  };

  double reduce = 0, tournament = 0, pivot = 0, schur = 0;
  for (int t = 0; t < steps; ++t) {
    const int l_star = t % c;
    const int py_c = t % py;
    const int px_c = t % px;
    const double rem = n - static_cast<double>(t) * v;
    const double rem2 = rem - v;

    // Trailing tile columns owned by each process column (exact count —
    // the step-5/10 column split is index-determined, not pivot-
    // dependent).
    std::vector<int> tiles_of_py(static_cast<std::size_t>(py), 0);
    for (int jt = t + 1; jt < steps; ++jt)
      ++tiles_of_py[static_cast<std::size_t>(jt % py)];

    // Step 1: every non-reducing layer of the panel column ships its
    // ~rem/px rows to the reducing layer.
    if (c > 1) {
      const double bytes1 = 8.0 * (rem / px) * v;
      for (int x = 0; x < px; ++x) {
        const int dst = g.rank_of({x, py_c, l_star});
        for (int l = 0; l < c; ++l)
          if (l != l_star) send(g.rank_of({x, py_c, l}), dst, bytes1);
      }
    }
    take(reduce);

    // Step 2: tournament among the px panel owners at the reducing layer,
    // candidate counts saturating at v (even row split).
    const double s0 = std::min(static_cast<double>(v), rem / px);
    std::vector<double> size_of(static_cast<std::size_t>(px), s0);
    std::vector<int> owner(static_cast<std::size_t>(px));
    for (int q = 0; q < px; ++q)
      owner[static_cast<std::size_t>(q)] = g.rank_of({q, py_c, l_star});
    const double cap = v;
    if (algo == "CALU") {
      // Reduction tree: gap-doubling rounds, each non-root sends once.
      for (int gap = 1; gap < px; gap *= 2)
        for (int dst = 0; dst + gap < px; dst += 2 * gap) {
          const int src = dst + gap;
          send(owner[static_cast<std::size_t>(src)],
               owner[static_cast<std::size_t>(dst)],
               pack_bytes(size_of[static_cast<std::size_t>(src)], v));
          size_of[static_cast<std::size_t>(dst)] =
              std::min(cap, size_of[static_cast<std::size_t>(dst)] +
                                size_of[static_cast<std::size_t>(src)]);
        }
    } else {
      // Butterfly: fold-in of the non-power-of-two tail, then pairwise
      // exchange rounds (both partners inject concurrently).
      int fold = 1;
      while (fold * 2 <= px) fold *= 2;
      for (int q = fold; q < px; ++q)
        send(owner[static_cast<std::size_t>(q)],
             owner[static_cast<std::size_t>(q - fold)],
             pack_bytes(size_of[static_cast<std::size_t>(q)], v));
      for (int q = 0; q + fold < px; ++q)
        size_of[static_cast<std::size_t>(q)] =
            std::min(cap, size_of[static_cast<std::size_t>(q)] +
                              size_of[static_cast<std::size_t>(q + fold)]);
      for (int mask = 1; mask < fold; mask <<= 1) {
        std::vector<double> snap(static_cast<std::size_t>(fold));
        for (int q = 0; q < fold; ++q)
          snap[static_cast<std::size_t>(q)] =
              clk[static_cast<std::size_t>(
                  owner[static_cast<std::size_t>(q)])];
        for (int q = 0; q < fold; ++q) {
          const int pr = q ^ mask;
          const double mine =
              snap[static_cast<std::size_t>(q)] +
              b * pack_bytes(size_of[static_cast<std::size_t>(q)], v);
          const double arrival =
              snap[static_cast<std::size_t>(pr)] +
              b * pack_bytes(size_of[static_cast<std::size_t>(pr)], v) + a;
          clk[static_cast<std::size_t>(owner[static_cast<std::size_t>(q)])] =
              std::max(mine, arrival);
        }
        std::vector<double> next = size_of;
        for (int q = 0; q < fold; ++q)
          next[static_cast<std::size_t>(q)] =
              std::min(cap, size_of[static_cast<std::size_t>(q)] +
                                size_of[static_cast<std::size_t>(q ^ mask)]);
        size_of = std::move(next);
      }
    }
    take(tournament);

    // Step 3: one binomial-tree ghost broadcast of pivots + A00
    // (collectives.hpp bcast shape: vrank order, children in increasing
    // mask order, the payload forwarded hop-to-hop) from the tournament
    // root over the whole active world.
    {
      const double bytes3 = 4.0 * v + 8.0 * v * v;
      const int root = g.rank_of({0, py_c, l_star});
      std::vector<double> arrive(static_cast<std::size_t>(nr), 0.0);
      for (int vr = 0; vr < nr; ++vr) {
        const int r = (vr + root) % nr;  // world group is iota(active)
        if (vr > 0)
          clk[static_cast<std::size_t>(r)] =
              std::max(clk[static_cast<std::size_t>(r)],
                       arrive[static_cast<std::size_t>(vr)]);
        int first_mask = 1;
        while (first_mask <= vr) first_mask <<= 1;
        for (int mask = first_mask; vr + mask < nr; mask <<= 1) {
          clk[static_cast<std::size_t>(r)] += bytes3 * b;
          arrive[static_cast<std::size_t>(vr + mask)] =
              clk[static_cast<std::size_t>(r)] + a;
        }
      }
    }
    take(pivot);

    // Step 5: every rank ships its pivot-row partials (~v/px rows x its
    // process column's trailing columns) to the column's aggregator.
    if (t + 1 < steps) {
      for (int y = 0; y < py; ++y) {
        const int cnt = tiles_of_py[static_cast<std::size_t>(y)];
        if (cnt == 0) continue;
        const double bytes5 = 8.0 * (v / static_cast<double>(px)) * cnt * v;
        const int dst = g.rank_of({px_c, y, l_star});
        for (int x = 0; x < px; ++x)
          for (int l = 0; l < c; ++l)
            send(g.rank_of({x, y, l}), dst, bytes5);
      }
    }
    take(reduce);

    // Steps 8 + 10: layer-sliced flat multicasts, serialized at the
    // sender one recipient at a time in the engine's loop order (layers
    // outer, destinations inner), self-slice free.
    if (rem2 > 0) {
      const double rows2 = rem2 / px;
      for (int x = 0; x < px; ++x) {
        const int leader = g.rank_of({x, py_c, l_star});
        for (int l = 0; l < c; ++l) {
          const grid::Range slice = grid::chunk_range(v, c, l);
          if (slice.size() == 0) continue;
          const double bytes8 = 8.0 * rows2 * slice.size();
          for (int y = 0; y < py; ++y)
            send(leader, g.rank_of({x, y, l}), bytes8);
        }
      }
      for (int y = 0; y < py; ++y) {
        const int cols = tiles_of_py[static_cast<std::size_t>(y)] * v;
        if (cols == 0) continue;
        const int agg = g.rank_of({px_c, y, l_star});
        for (int l = 0; l < c; ++l) {
          const grid::Range slice = grid::chunk_range(v, c, l);
          if (slice.size() == 0) continue;
          const double bytes10 = 8.0 * slice.size() * cols;
          for (int x = 0; x < px; ++x)
            send(agg, g.rank_of({x, y, l}), bytes10);
        }
      }
    }
    take(schur);
  }

  return {{"layer_reduction", reduce},
          {"panel_tournament", tournament},
          {"pivot_apply", pivot},
          {"trsm", 0.0},
          {"schur_update", schur}};
}

double predict_lu_makespan(const std::string& algo, int n, int p,
                           double alpha_s, double beta_s_per_byte) {
  double total = 0;
  for (const PhaseTime& ph :
       predict_lu_phase_times(algo, n, p, alpha_s, beta_s_per_byte))
    total += ph.seconds;
  return total;
}

}  // namespace conflux::models
