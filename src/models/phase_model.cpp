#include "models/phase_model.hpp"

#include <algorithm>
#include <cmath>

#include "grid/grid_opt.hpp"
#include "support/assert.hpp"

namespace conflux::models {

namespace {

/// Candidate-pack size in bytes: 2 header doubles plus, per candidate row,
/// one row index and v values (linalg::pack_candidates layout, which the
/// engine's dry run replays byte-for-byte).
double pack_bytes(double count, int v) { return (2.0 + count * (1 + v)) * 8.0; }

/// Step-2 volume of one butterfly tournament over px owners whose panels
/// each hold `s0` candidate rows (saturated at v). Mirrors the engine's
/// fold-in + mask-doubling size recursion.
double butterfly_bytes(int px_count, double s0, int v) {
  std::vector<double> size_of(static_cast<std::size_t>(px_count), s0);
  const double cap = v;
  double bytes = 0;
  int fold = 1;
  while (fold * 2 <= px_count) fold *= 2;
  for (int q = fold; q < px_count; ++q)
    bytes += pack_bytes(size_of[static_cast<std::size_t>(q)], v);
  for (int q = 0; q + fold < px_count; ++q)
    size_of[static_cast<std::size_t>(q)] =
        std::min(cap, size_of[static_cast<std::size_t>(q)] +
                          size_of[static_cast<std::size_t>(q + fold)]);
  for (int mask = 1; mask < fold; mask <<= 1) {
    for (int q = 0; q < fold; ++q)
      bytes += pack_bytes(size_of[static_cast<std::size_t>(q)], v);
    std::vector<double> next = size_of;
    for (int q = 0; q < fold; ++q)
      next[static_cast<std::size_t>(q)] =
          std::min(cap, size_of[static_cast<std::size_t>(q)] +
                            size_of[static_cast<std::size_t>(q ^ mask)]);
    size_of = std::move(next);
  }
  return bytes;
}

/// Step-2 volume of one reduction-tree tournament (CALU): gap-doubling
/// rounds, every non-root owner sends exactly once, merged counts saturate
/// at v — the same schedule linalg::reduction_tree_schedule emits.
double tree_bytes(int px_count, double s0, int v) {
  std::vector<double> size_of(static_cast<std::size_t>(px_count), s0);
  const double cap = v;
  double bytes = 0;
  for (int gap = 1; gap < px_count; gap *= 2)
    for (int dst = 0; dst + gap < px_count; dst += 2 * gap) {
      const int src = dst + gap;
      bytes += pack_bytes(size_of[static_cast<std::size_t>(src)], v);
      size_of[static_cast<std::size_t>(dst)] =
          std::min(cap, size_of[static_cast<std::size_t>(dst)] +
                            size_of[static_cast<std::size_t>(src)]);
    }
  return bytes;
}

}  // namespace

bool has_phase_model(const std::string& algo) {
  return algo == "COnfLUX" || algo == "CALU";
}

std::vector<PhaseVolume> predict_lu_phases(const std::string& algo, int n,
                                           int p) {
  CONFLUX_EXPECTS(has_phase_model(algo));
  CONFLUX_EXPECTS(n >= 1 && p >= 1);

  // Same grid and block-size rules as run_block25d with default config.
  const double mem = static_cast<double>(n) * n /
                     std::pow(static_cast<double>(p), 2.0 / 3.0);
  const grid::Grid3D g = grid::optimize_grid(p, n, mem).grid;
  const int v = grid::choose_block_size(
      n, g.layers(), grid::default_block_target(n, g.layers()));
  const int px = g.px_extent();
  const int py = g.py_extent();
  const int c = g.layers();
  const double active = g.active();
  const int steps = n / v;

  double reduce = 0, tournament = 0, pivot = 0, schur = 0;
  for (int t = 0; t < steps; ++t) {
    const double rem = n - static_cast<double>(t) * v;     // unpivoted rows
    const double rem2 = rem - v;                           // after this step
    const double tiles_left = steps - t - 1;               // trailing tile cols

    // Step 1: each non-reducing layer of the panel column ships its rows.
    reduce += 8.0 * rem * v * (c - 1);
    // Step 5: pivot-row partials from every (px, py, l) to the aggregators;
    // the aggregator's own contribution (1/px of the reducing layer's) is a
    // self-send the fabric does not meter.
    reduce += 8.0 * v * v * tiles_left * (c - 1.0 / px);

    // Step 2: one tournament over the px panel owners, candidate counts
    // saturated at v (even row split across owners).
    const double s0 = std::min(static_cast<double>(v), rem / px);
    tournament += algo == "CALU" ? tree_bytes(px, s0, v)
                                 : butterfly_bytes(px, s0, v);

    // Step 3: pivots (v ints) + A00 (v^2 doubles) to every other rank.
    pivot += (active - 1) * (8.0 * v * v + 4.0 * v);

    // Steps 8 + 10: layer-sliced A10/A01 multicasts; each side reaches
    // px (resp. py) recipients per layer and skips the 1/c self-slice.
    schur += 8.0 * rem2 * v * (py - 1.0 / c);
    schur += 8.0 * rem2 * v * (px - 1.0 / c);
  }

  return {{"layer_reduction", reduce},
          {"panel_tournament", tournament},
          {"pivot_apply", pivot},
          {"trsm", 0.0},
          {"schur_update", schur}};
}

}  // namespace conflux::models
