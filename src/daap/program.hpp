/// \file program.hpp
/// DAAP — Disjoint Array Access Programs (§2.2): statements nested in loop
/// nests, each reading m array inputs through injective access-function
/// vectors and writing one output. This representation carries exactly the
/// information the I/O lower-bound machinery of §3-§5 consumes:
///   - which iteration variables appear in each access (dim(phi_j)),
///   - which inputs are out-degree-one graph inputs (Lemma 6),
///   - which inputs are produced by earlier statements (output reuse,
///     §4.2 / Corollary 1),
///   - which arrays are shared between statements (input reuse, §4.1).
#pragma once

#include <string>
#include <vector>

#include "support/assert.hpp"

namespace conflux::daap {

/// One array access A_j[phi_j(r)]. Only the *set* of distinct iteration
/// variables in phi_j matters for the bounds (the access dimension,
/// §2.2 item 7); injectivity is assumed per the DAAP definition.
struct Access {
  std::string array;      ///< logical array name (shared names = shared data)
  std::vector<int> vars;  ///< distinct iteration-variable indices in phi_j
  bool out_degree_one = false;  ///< every touched vertex has out-degree 1
  int producer = -1;  ///< index of the statement producing this array
                      ///< (output reuse), or -1 when it is a program input
};

/// One statement S: A_0[phi_0(r)] <- f(A_1[...], ..., A_m[...]).
struct Statement {
  std::string name;
  int num_vars = 0;             ///< loop-nest depth l
  std::vector<Access> inputs;   ///< A_1 ... A_m
  Access output;                ///< A_0
  double domain_size = 0;       ///< |V| — number of statement executions
};

/// A program: an ordered sequence of statements (dependencies flow forward).
struct Program {
  std::string name;
  std::vector<Statement> statements;
};

/// Validate structural invariants (variable indices in range, producer
/// indices acyclic). Throws ContractViolation on malformed programs.
void validate(const Program& prog);

}  // namespace conflux::daap
