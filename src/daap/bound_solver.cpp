#include "daap/bound_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

namespace conflux::daap {

void validate(const Program& prog) {
  for (std::size_t i = 0; i < prog.statements.size(); ++i) {
    const Statement& s = prog.statements[i];
    CONFLUX_EXPECTS_MSG(s.num_vars >= 1 && s.num_vars <= 16,
                        "statement '" << s.name << "' loop depth out of range");
    CONFLUX_EXPECTS(s.domain_size > 0);
    for (const Access& acc : s.inputs) {
      for (int v : acc.vars)
        CONFLUX_EXPECTS_MSG(v >= 0 && v < s.num_vars,
                            "access " << acc.array << " uses variable " << v
                                      << " outside loop nest");
      CONFLUX_EXPECTS_MSG(acc.producer < static_cast<int>(i),
                          "producer of " << acc.array
                                         << " must precede statement");
    }
  }
}

namespace {

/// Constraint value sum_j w_j * prod_{k in phi_j} exp(s * d_k) for direction
/// d scaled by s, in ordinary (non-log) space.
double constraint_at(const Statement& s, const std::vector<double>& weights,
                     const std::vector<double>& dir, double scale) {
  double total = 0;
  for (std::size_t j = 0; j < s.inputs.size(); ++j) {
    const double w = weights.empty() ? 1.0 : weights[j];
    if (w == 0.0 || std::isinf(w)) continue;  // dropped term (rho -> inf)
    double exponent = 0;
    for (int k : s.inputs[j].vars) exponent += dir[static_cast<std::size_t>(k)];
    total += std::exp(scale * exponent) / w;
    if (!std::isfinite(total)) return total;
  }
  return total;
}

/// Largest s with constraint(s) <= x (monotone in s along a direction).
double max_scale(const Statement& s, const std::vector<double>& weights,
                 const std::vector<double>& dir, double x) {
  if (constraint_at(s, weights, dir, 0.0) > x) return 0.0;
  double lo = 0.0, hi = 1.0;
  while (constraint_at(s, weights, dir, hi) <= x && hi < 1e3) hi *= 2.0;
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (constraint_at(s, weights, dir, mid) <= x)
      lo = mid;
    else
      hi = mid;
  }
  return lo;
}

/// Objective along a direction: log-volume = s * sum_t d_t.
double log_volume(const std::vector<double>& dir, double s) {
  double sum = 0;
  for (double d : dir) sum += d;
  return s * sum;
}

}  // namespace

VolumeSolution max_volume(const Statement& s, double x,
                          const std::vector<double>& intensity_weights) {
  CONFLUX_EXPECTS(x >= 1.0);
  const int l = s.num_vars;

  // If every constraint term is dropped (all producers free), the volume is
  // unbounded; callers treat this via the out-degree/intensity caps. We
  // return a large sentinel consistent with x.
  bool any_term = false;
  for (std::size_t j = 0; j < s.inputs.size(); ++j) {
    const double w = intensity_weights.empty() ? 1.0 : intensity_weights[j];
    if (!(w == 0.0 || std::isinf(w))) any_term = true;
  }

  VolumeSolution best;
  best.ranges.assign(static_cast<std::size_t>(l), 1.0);
  if (!any_term) {
    best.volume = std::numeric_limits<double>::infinity();
    best.access_sizes.assign(s.inputs.size(), 0.0);
    return best;
  }

  // Direction search over the simplex {d >= 0, max d = 1} by iterated local
  // refinement from a uniform start plus axis-aligned corners.
  std::vector<std::vector<double>> starts;
  starts.emplace_back(static_cast<std::size_t>(l), 1.0);  // uniform
  for (int t = 0; t < l; ++t) {
    std::vector<double> axis(static_cast<std::size_t>(l), 0.0);
    axis[static_cast<std::size_t>(t)] = 1.0;
    starts.push_back(std::move(axis));
  }
  // Pairwise corners capture solutions with two active variables.
  for (int t1 = 0; t1 < l; ++t1)
    for (int t2 = t1 + 1; t2 < l; ++t2) {
      std::vector<double> two(static_cast<std::size_t>(l), 0.0);
      two[static_cast<std::size_t>(t1)] = 1.0;
      two[static_cast<std::size_t>(t2)] = 1.0;
      starts.push_back(std::move(two));
    }

  double best_obj = -1.0;
  std::vector<double> best_dir;
  double best_scale = 0.0;
  for (auto& dir : starts) {
    // Coordinate-wise refinement of the direction.
    double step = 0.5;
    double obj = log_volume(dir, max_scale(s, intensity_weights, dir, x));
    for (int sweep = 0; sweep < 60; ++sweep) {
      bool improved = false;
      for (int t = 0; t < l; ++t) {
        for (double delta : {step, -step}) {
          std::vector<double> trial = dir;
          trial[static_cast<std::size_t>(t)] =
              std::max(0.0, trial[static_cast<std::size_t>(t)] + delta);
          const double sc = max_scale(s, intensity_weights, trial, x);
          const double o = log_volume(trial, sc);
          if (o > obj + 1e-13) {
            dir = std::move(trial);
            obj = o;
            improved = true;
          }
        }
      }
      if (!improved) step *= 0.5;
      if (step < 1e-9) break;
    }
    if (obj > best_obj) {
      best_obj = obj;
      best_dir = dir;
      best_scale = max_scale(s, intensity_weights, best_dir, x);
    }
  }

  best.volume = std::exp(best_obj);
  for (int t = 0; t < l; ++t)
    best.ranges[static_cast<std::size_t>(t)] =
        std::exp(best_scale * best_dir[static_cast<std::size_t>(t)]);
  best.access_sizes.clear();
  for (const Access& acc : s.inputs) {
    double size = 1.0;
    for (int k : acc.vars)
      size *= best.ranges[static_cast<std::size_t>(k)];
    best.access_sizes.push_back(size);
  }
  return best;
}

StatementBound solve_statement(const Statement& s, double m,
                               const std::vector<double>& intensity_weights) {
  CONFLUX_EXPECTS(m >= 1.0);
  StatementBound out;
  out.name = s.name;

  // Out-degree-one cap (Lemma 6): u = number of out-degree-one graph-input
  // accesses; rho <= 1/u.
  int u = 0;
  for (std::size_t j = 0; j < s.inputs.size(); ++j) {
    const bool produced = s.inputs[j].producer >= 0;
    if (s.inputs[j].out_degree_one && !produced) ++u;
  }

  auto rho_of = [&](double x) {
    return max_volume(s, x, intensity_weights).volume / (x - m);
  };

  // Golden-section search for X0 = argmin rho on (M, X_hi]. rho is
  // unimodal for DAAP statements (psi is concave-increasing in log space).
  const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
  double lo = m + std::max(1.0, 1e-6 * m);
  double hi = 64.0 * m + 64.0;
  double x1 = hi - phi * (hi - lo), x2 = lo + phi * (hi - lo);
  double f1 = rho_of(x1), f2 = rho_of(x2);
  for (int it = 0; it < 160; ++it) {
    if (f1 > f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = rho_of(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = rho_of(x1);
    }
  }
  out.x0 = 0.5 * (lo + hi);
  out.at_x0 = max_volume(s, out.x0, intensity_weights);
  out.psi_x0 = out.at_x0.volume;
  out.rho = out.psi_x0 / (out.x0 - m);
  if (u > 0) out.rho = std::min(out.rho, 1.0 / u);
  out.q = s.domain_size / out.rho;
  return out;
}

ProgramBound solve_program(const Program& prog, double m, double p) {
  validate(prog);
  CONFLUX_EXPECTS(p >= 1.0);
  ProgramBound out;

  // Pass 1: per-statement bounds with output-reuse weights (Corollary 1):
  // input j produced by statement i gets weight rho_i (>= 1 weakens the
  // dominator term; rho = 1 leaves it unchanged, matching the LU case).
  for (const Statement& s : prog.statements) {
    std::vector<double> weights(s.inputs.size(), 1.0);
    for (std::size_t j = 0; j < s.inputs.size(); ++j) {
      const int producer = s.inputs[j].producer;
      if (producer >= 0) {
        const double rho_producer =
            out.statements[static_cast<std::size_t>(producer)].rho;
        weights[j] = std::max(1.0, rho_producer);
      }
    }
    out.statements.push_back(solve_statement(s, m, weights));
  }

  // Pass 2: input reuse (Lemma 7, equation (6)) for arrays read as program
  // inputs by more than one statement.
  std::map<std::string, std::vector<std::size_t>> readers;
  for (std::size_t i = 0; i < prog.statements.size(); ++i)
    for (const Access& acc : prog.statements[i].inputs)
      if (acc.producer < 0) readers[acc.array].push_back(i);

  double reuse_total = 0;
  for (const auto& [array, stmts] : readers) {
    if (stmts.size() < 2) continue;
    double reuse = std::numeric_limits<double>::infinity();
    for (std::size_t i : stmts) {
      const Statement& s = prog.statements[i];
      const StatementBound& b = out.statements[i];
      // Access size of this array at the optimum, times the minimum number
      // of subcomputations |V| / |V_max|.
      double access = 0;
      for (std::size_t j = 0; j < s.inputs.size(); ++j)
        if (s.inputs[j].array == array) access = b.at_x0.access_sizes[j];
      const double subcomputations = s.domain_size / b.psi_x0;
      reuse = std::min(reuse, access * subcomputations);
    }
    out.reuses.push_back({array, reuse});
    reuse_total += reuse;
  }

  double q = 0;
  for (const StatementBound& b : out.statements) q += b.q;
  out.q_sequential = std::max(0.0, q - reuse_total);
  out.q_parallel = out.q_sequential / p;  // Lemma 9
  return out;
}

}  // namespace conflux::daap
