#include "daap/bound_solver.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <utility>

#include "support/thread_pool.hpp"

namespace conflux::daap {

void validate(const Program& prog) {
  for (std::size_t i = 0; i < prog.statements.size(); ++i) {
    const Statement& s = prog.statements[i];
    CONFLUX_EXPECTS_MSG(s.num_vars >= 1 && s.num_vars <= 16,
                        "statement '" << s.name << "' loop depth out of range");
    CONFLUX_EXPECTS(s.domain_size > 0);
    for (const Access& acc : s.inputs) {
      for (int v : acc.vars)
        CONFLUX_EXPECTS_MSG(v >= 0 && v < s.num_vars,
                            "access " << acc.array << " uses variable " << v
                                      << " outside loop nest");
      CONFLUX_EXPECTS_MSG(acc.producer < static_cast<int>(i),
                          "producer of " << acc.array
                                         << " must precede statement");
    }
  }
}

namespace {

/// The constraint of problem (3) for one statement, preprocessed so that
/// evaluating it along a direction costs one std::exp per live term:
/// constraint(s) = sum_j inv_w[j] * exp(s * e_j), where e_j = sum_{k in
/// phi_j} dir[k] is maintained incrementally as the hill-climb perturbs one
/// coordinate at a time (the repeated dot products and dropped-term checks
/// of the naive form are hoisted out of the inner loop entirely).
struct ConstraintTerms {
  std::vector<std::vector<int>> vars;   ///< live terms only
  std::vector<double> inv_w;            ///< 1/w_j per live term
  std::vector<std::vector<int>> terms_of_var;  ///< var t -> term indices

  ConstraintTerms(const Statement& s, const std::vector<double>& weights) {
    terms_of_var.assign(static_cast<std::size_t>(s.num_vars), {});
    for (std::size_t j = 0; j < s.inputs.size(); ++j) {
      const double w = weights.empty() ? 1.0 : weights[j];
      if (w == 0.0 || std::isinf(w)) continue;  // dropped term (rho -> inf)
      for (int k : s.inputs[j].vars)
        terms_of_var[static_cast<std::size_t>(k)].push_back(
            static_cast<int>(vars.size()));
      vars.push_back(s.inputs[j].vars);
      inv_w.push_back(1.0 / w);
    }
  }

  [[nodiscard]] bool empty() const { return vars.empty(); }

  /// e_j = sum_{k in phi_j} dir[k] for every live term.
  void exponents(const std::vector<double>& dir, std::vector<double>& e) const {
    e.assign(vars.size(), 0.0);
    for (std::size_t j = 0; j < vars.size(); ++j)
      for (int k : vars[j]) e[j] += dir[static_cast<std::size_t>(k)];
  }

  [[nodiscard]] double constraint_at(const std::vector<double>& e,
                                     double scale) const {
    double total = 0;
    for (std::size_t j = 0; j < vars.size(); ++j) {
      total += inv_w[j] * std::exp(scale * e[j]);
      if (!std::isfinite(total)) return total;
    }
    return total;
  }

  /// Largest s with constraint(s) <= x (monotone in s along a direction).
  [[nodiscard]] double max_scale(const std::vector<double>& e,
                                 double x) const {
    if (constraint_at(e, 0.0) > x) return 0.0;
    double lo = 0.0, hi = 1.0;
    while (constraint_at(e, hi) <= x && hi < 1e3) hi *= 2.0;
    while (hi - lo > 1e-12 * hi) {
      const double mid = 0.5 * (lo + hi);
      if (constraint_at(e, mid) <= x)
        lo = mid;
      else
        hi = mid;
    }
    return lo;
  }
};

/// One multi-start refinement outcome.
struct DirectionResult {
  double obj = -1.0;
  double scale = 0.0;
  std::vector<double> dir;
};

/// Coordinate-wise hill-climb from `dir` (consumed) for budget x. The term
/// exponents and the direction sum are updated incrementally per trial, so a
/// trial costs one max_scale (a handful of exps) and no allocation.
DirectionResult refine_direction(const ConstraintTerms& terms,
                                 std::vector<double> dir, double x) {
  const int l = static_cast<int>(dir.size());
  std::vector<double> e;
  terms.exponents(dir, e);
  double dir_sum = 0;
  for (double d : dir) dir_sum += d;

  DirectionResult out;
  double scale = terms.max_scale(e, x);
  double obj = scale * dir_sum;

  double step = 0.5;
  std::vector<double> trial_e;
  for (int sweep = 0; sweep < 60; ++sweep) {
    bool improved = false;
    for (int t = 0; t < l; ++t) {
      const auto& affected = terms.terms_of_var[static_cast<std::size_t>(t)];
      for (double delta : {step, -step}) {
        const double old_val = dir[static_cast<std::size_t>(t)];
        const double new_val = std::max(0.0, old_val + delta);
        if (new_val == old_val) continue;
        const double shift = new_val - old_val;
        trial_e = e;
        for (int j : affected) trial_e[static_cast<std::size_t>(j)] += shift;
        const double sc = terms.max_scale(trial_e, x);
        const double o = sc * (dir_sum + shift);
        if (o > obj + 1e-13) {
          dir[static_cast<std::size_t>(t)] = new_val;
          dir_sum += shift;
          e.swap(trial_e);
          scale = sc;
          obj = o;
          improved = true;
        }
      }
    }
    if (!improved) step *= 0.5;
    if (step < 1e-9) break;
  }
  out.obj = obj;
  out.scale = scale;
  out.dir = std::move(dir);
  return out;
}

}  // namespace

VolumeSolution max_volume(const Statement& s, double x,
                          const std::vector<double>& intensity_weights) {
  CONFLUX_EXPECTS(x >= 1.0);
  const int l = s.num_vars;

  const ConstraintTerms terms(s, intensity_weights);

  VolumeSolution best;
  best.ranges.assign(static_cast<std::size_t>(l), 1.0);
  // If every constraint term is dropped (all producers free), the volume is
  // unbounded; callers treat this via the out-degree/intensity caps. We
  // return a large sentinel consistent with x.
  if (terms.empty()) {
    best.volume = std::numeric_limits<double>::infinity();
    best.access_sizes.assign(s.inputs.size(), 0.0);
    return best;
  }

  // Direction search over the simplex {d >= 0, max d = 1} by iterated local
  // refinement from a uniform start plus axis-aligned and pairwise corners.
  std::vector<std::vector<double>> starts;
  starts.emplace_back(static_cast<std::size_t>(l), 1.0);  // uniform
  for (int t = 0; t < l; ++t) {
    std::vector<double> axis(static_cast<std::size_t>(l), 0.0);
    axis[static_cast<std::size_t>(t)] = 1.0;
    starts.push_back(std::move(axis));
  }
  // Pairwise corners capture solutions with two active variables.
  for (int t1 = 0; t1 < l; ++t1)
    for (int t2 = t1 + 1; t2 < l; ++t2) {
      std::vector<double> two(static_cast<std::size_t>(l), 0.0);
      two[static_cast<std::size_t>(t1)] = 1.0;
      two[static_cast<std::size_t>(t2)] = 1.0;
      starts.push_back(std::move(two));
    }

  // The starts are independent; refine them on the shared pool and reduce in
  // start order so the result is deterministic for any thread count.
  std::vector<DirectionResult> results(starts.size());
  support::parallel_for(0, static_cast<int>(starts.size()), [&](int i) {
    results[static_cast<std::size_t>(i)] = refine_direction(
        terms, std::move(starts[static_cast<std::size_t>(i)]), x);
  });

  const DirectionResult* winner = nullptr;
  for (const DirectionResult& r : results)
    if (winner == nullptr || r.obj > winner->obj) winner = &r;

  best.volume = std::exp(winner->obj);
  for (int t = 0; t < l; ++t)
    best.ranges[static_cast<std::size_t>(t)] =
        std::exp(winner->scale * winner->dir[static_cast<std::size_t>(t)]);
  best.access_sizes.clear();
  for (const Access& acc : s.inputs) {
    double size = 1.0;
    for (int k : acc.vars)
      size *= best.ranges[static_cast<std::size_t>(k)];
    best.access_sizes.push_back(size);
  }
  return best;
}

StatementBound solve_statement(const Statement& s, double m,
                               const std::vector<double>& intensity_weights) {
  CONFLUX_EXPECTS(m >= 1.0);
  StatementBound out;
  out.name = s.name;

  // Out-degree-one cap (Lemma 6): u = number of out-degree-one graph-input
  // accesses; rho <= 1/u.
  int u = 0;
  for (std::size_t j = 0; j < s.inputs.size(); ++j) {
    const bool produced = s.inputs[j].producer >= 0;
    if (s.inputs[j].out_degree_one && !produced) ++u;
  }

  auto rho_of = [&](double x) {
    return max_volume(s, x, intensity_weights).volume / (x - m);
  };

  // Golden-section search for X0 = argmin rho on (M, X_hi]. rho is
  // unimodal for DAAP statements (psi is concave-increasing in log space);
  // the bracket is shrunk until it is negligible against the tests'
  // percent-level tolerances.
  const double phi = 0.5 * (std::sqrt(5.0) - 1.0);
  double lo = m + std::max(1.0, 1e-6 * m);
  double hi = 64.0 * m + 64.0;
  double x1 = hi - phi * (hi - lo), x2 = lo + phi * (hi - lo);
  double f1 = rho_of(x1), f2 = rho_of(x2);
  while (hi - lo > 1e-10 * hi) {
    if (f1 > f2) {
      lo = x1;
      x1 = x2;
      f1 = f2;
      x2 = lo + phi * (hi - lo);
      f2 = rho_of(x2);
    } else {
      hi = x2;
      x2 = x1;
      f2 = f1;
      x1 = hi - phi * (hi - lo);
      f1 = rho_of(x1);
    }
  }
  out.x0 = 0.5 * (lo + hi);
  out.at_x0 = max_volume(s, out.x0, intensity_weights);
  out.psi_x0 = out.at_x0.volume;
  out.rho = out.psi_x0 / (out.x0 - m);
  if (u > 0) out.rho = std::min(out.rho, 1.0 / u);
  out.q = s.domain_size / out.rho;
  return out;
}

ProgramBound solve_program(const Program& prog, double m, double p) {
  validate(prog);
  CONFLUX_EXPECTS(p >= 1.0);
  ProgramBound out;

  // Pass 1: per-statement bounds with output-reuse weights (Corollary 1):
  // input j produced by statement i gets weight rho_i (>= 1 weakens the
  // dominator term; rho = 1 leaves it unchanged, matching the LU case).
  for (const Statement& s : prog.statements) {
    std::vector<double> weights(s.inputs.size(), 1.0);
    for (std::size_t j = 0; j < s.inputs.size(); ++j) {
      const int producer = s.inputs[j].producer;
      if (producer >= 0) {
        const double rho_producer =
            out.statements[static_cast<std::size_t>(producer)].rho;
        weights[j] = std::max(1.0, rho_producer);
      }
    }
    out.statements.push_back(solve_statement(s, m, weights));
  }

  // Pass 2: input reuse (Lemma 7, equation (6)) for arrays read as program
  // inputs by more than one statement.
  std::map<std::string, std::vector<std::size_t>> readers;
  for (std::size_t i = 0; i < prog.statements.size(); ++i)
    for (const Access& acc : prog.statements[i].inputs)
      if (acc.producer < 0) readers[acc.array].push_back(i);

  double reuse_total = 0;
  for (const auto& [array, stmts] : readers) {
    if (stmts.size() < 2) continue;
    double reuse = std::numeric_limits<double>::infinity();
    for (std::size_t i : stmts) {
      const Statement& s = prog.statements[i];
      const StatementBound& b = out.statements[i];
      // Access size of this array at the optimum, times the minimum number
      // of subcomputations |V| / |V_max|.
      double access = 0;
      for (std::size_t j = 0; j < s.inputs.size(); ++j)
        if (s.inputs[j].array == array) access = b.at_x0.access_sizes[j];
      const double subcomputations = s.domain_size / b.psi_x0;
      reuse = std::min(reuse, access * subcomputations);
    }
    out.reuses.push_back({array, reuse});
    reuse_total += reuse;
  }

  double q = 0;
  for (const StatementBound& b : out.statements) q += b.q;
  out.q_sequential = std::max(0.0, q - reuse_total);
  out.q_parallel = out.q_sequential / p;  // Lemma 9
  return out;
}

}  // namespace conflux::daap
