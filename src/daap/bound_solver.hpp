/// \file bound_solver.hpp
/// The general I/O lower-bound machinery of §3-§5:
///
///  1. For one statement, solve optimization problem (3):
///         max prod_t |R_t|  s.t.  sum_j prod_{k in phi_j} |R_k| <= X
///     giving psi(X) = |V_max|, via a direction-search in log space (the
///     constraint is monotone along any ray, so each direction reduces to a
///     1D bisection; the simplex of directions is searched by iterated
///     refinement). Exact for the paper's kernels (validated against the
///     closed forms: MMM psi = (X/3)^(3/2), LU-S1 psi = X - 1, ...).
///  2. Minimize rho(X) = psi(X)/(X - M) over X > M (equation (4)) by golden
///     section, apply the out-degree-one cap of Lemma 6, and emit
///         Q >= |V| (X0 - M) / psi(X0)            (equation (5), Lemma 2).
///  3. Across statements, account for input reuse (Lemma 7) and output
///     reuse (Lemma 8 / Corollary 1: a produced input's access-size term is
///     weakened by the producer's computational intensity).
///  4. Parallel bound: Q_p >= |V| / (P rho) (Lemma 9).
///
/// The solver is numeric but exact for the paper's kernels: test_daap pins
/// it against every closed form (MMM, LU §6, the §4 reuse examples, and
/// the journal extension's Cholesky bound in daap/kernels.hpp) to within
/// the direction-search tolerance (< 2%).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "daap/program.hpp"

namespace conflux::daap {

/// psi(X) and the optimizing per-variable range sizes for one statement.
struct VolumeSolution {
  double volume = 0;              ///< psi(X) = max |V_h|
  std::vector<double> ranges;     ///< optimal |R_t| per iteration variable
  std::vector<double> access_sizes;  ///< per input j: prod_{k in phi_j} |R_k|
};

/// Solve optimization problem (3) for a given dominator budget X.
/// `intensity_weights[j]`, when provided, divides input j's constraint term
/// (Corollary 1: produced inputs need only |B_j|/rho_S dominator vertices);
/// an infinite weight drops the term entirely.
[[nodiscard]] VolumeSolution max_volume(
    const Statement& s, double x,
    const std::vector<double>& intensity_weights = {});

/// The per-statement lower-bound summary.
struct StatementBound {
  std::string name;
  double x0 = 0;          ///< optimal dominator budget (equation (4))
  double rho = 0;         ///< computational intensity at X0 (after Lemma 6)
  double psi_x0 = 0;      ///< psi(X0)
  double q = 0;           ///< sequential I/O lower bound |V| / rho
  VolumeSolution at_x0;   ///< ranges/access sizes at the optimum
};

/// Solve one statement for memory size M (steps 1-2 above).
/// `intensity_weights` as in max_volume.
[[nodiscard]] StatementBound solve_statement(
    const Statement& s, double m,
    const std::vector<double>& intensity_weights = {});

/// Reuse accounting for one shared input array (Lemma 7 / equation (6)).
struct ReuseInfo {
  std::string array;
  double reuse = 0;  ///< upper bound on loads shared between statements
};

/// Whole-program bound (steps 1-4).
struct ProgramBound {
  double q_sequential = 0;  ///< Q_tot >= sum Q_i - sum Reuse(A_j)
  double q_parallel = 0;    ///< Lemma 9, for the P supplied
  std::vector<StatementBound> statements;
  std::vector<ReuseInfo> reuses;
};

/// Derive the program's parallel I/O lower bound for memory M and P ranks.
[[nodiscard]] ProgramBound solve_program(const Program& prog, double m,
                                         double p = 1.0);

}  // namespace conflux::daap
