/// \file kernels.hpp
/// Canned DAAP programs for the kernels analyzed in the paper, with their
/// known closed-form bounds for cross-validation:
///   - MMM: psi = (X/3)^(3/2), X0 = 3M, rho = sqrt(M)/2, Q >= 2N^3/sqrt(M)
///   - LU S1 (column scaling): rho = 1 (Lemma 6), Q >= N(N-1)/2
///   - LU S2 (Schur update): rho = sqrt(M)/2, Q >= (2N^3-6N^2+4N)/(3 sqrt M)
///   - §4.1 example (two products sharing B): Q_tot = N^3/M after reuse
///   - §4.2 example (produced A, "modified MMM"): Q_tot >= N^3/M
///   - Cholesky (journal extension, arXiv:2108.09337): rho_S2 = 1,
///     rho_S3 = sqrt(M)/2, Q >= N^3/(3 sqrt M) — the bound COnfCHOX
///     (cholesky/confchox25d.hpp) is measured against
#pragma once

#include "daap/program.hpp"

namespace conflux::daap {

/// Variable index conventions are per-kernel; see each builder.

/// C[i,j] += A[i,k] * B[k,j] over an n^3 cube (vars i=0, j=1, k=2).
[[nodiscard]] Program matmul(double n);

/// The LU factorization of Figure 1: S1: A[i,k] /= A[k,k] (vars k=0, i=1)
/// and S2: A[i,j] -= A[i,k] * A[k,j] (vars k=0, i=1, j=2), with the output
/// of S1 feeding input A[i,k] of S2 (output reuse, rho_S1 = 1).
[[nodiscard]] Program lu_factorization(double n);

/// §4.1 input-reuse example: S: D[i,j,k] = A[i,k]*B[k,j];
/// T: E[i,j,k] = C[i,k]*B[k,j] — B is shared, Reuse(B) = N^3/M.
[[nodiscard]] Program section41_shared_b(double n);

/// §4.2 output-reuse example ("modified MMM"): S generates A[i,j] with no
/// inputs (rho_S -> inf), T: C[i,j] += A[i,k]*B[k,j]. Q_tot >= N^3/M.
[[nodiscard]] Program section42_generated_a(double n);

/// Cholesky factorization (journal extension): S1: A[j,j] = sqrt(A[j,j]);
/// S2: A[i,j] /= A[j,j]; S3: A[i,k] -= A[i,j]*A[k,j]. S1's domain is
/// linear (no I/O contribution); S2/S3 mirror LU's S1/S2 on the halved
/// triangular update domain ~N^3/6.
[[nodiscard]] Program cholesky(double n);

/// Closed forms for the LU lower bound of §6:
/// sequential: 2N^3/(3 sqrt M) - lower-order;
/// parallel (Lemma 9): 2N^3/(3 P sqrt M) + N(N-1)/(2P).
[[nodiscard]] double lu_bound_sequential(double n, double m);
[[nodiscard]] double lu_bound_parallel(double n, double m, double p);

/// Closed form for MMM (validated against [42]): 2N^3/sqrt(M).
[[nodiscard]] double mmm_bound_sequential(double n, double m);

/// Closed forms for the Cholesky lower bound (the COnfCHOX analysis of the
/// journal extension, arXiv:2108.09337), mirrored from the LU derivation:
/// S3 has the MMM-like intensity sqrt(M)/2 on its ~N^3/6 triangular
/// domain, and S2's out-degree-one inputs cap its intensity at 1
/// (Lemma 6), giving
///   sequential: N^3/(3 sqrt M) + N(N-1)/2;
///   parallel (Lemma 9): the sequential bound divided by P.
/// test_daap pins these against the generic solver, like the LU pair.
[[nodiscard]] double cholesky_bound_sequential(double n, double m);
[[nodiscard]] double cholesky_bound_parallel(double n, double m, double p);

}  // namespace conflux::daap
