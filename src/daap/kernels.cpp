#include "daap/kernels.hpp"

#include <cmath>

namespace conflux::daap {

Program matmul(double n) {
  Program prog;
  prog.name = "MMM";
  Statement s;
  s.name = "C[i,j] += A[i,k]*B[k,j]";
  s.num_vars = 3;  // i=0, j=1, k=2
  s.inputs = {
      {"A", {0, 2}, false, -1},
      {"B", {2, 1}, false, -1},
      {"C", {0, 1}, false, -1},  // previous version of the accumulator
  };
  s.output = {"C", {0, 1}, false, -1};
  s.domain_size = n * n * n;
  prog.statements.push_back(std::move(s));
  return prog;
}

Program lu_factorization(double n) {
  Program prog;
  prog.name = "LU";

  Statement s1;
  s1.name = "S1: A[i,k] /= A[k,k]";
  s1.num_vars = 2;  // k=0, i=1
  // A[i,k]'s vertices feed exactly one division each (out-degree 1 into S1);
  // A[k,k] has access dimension 1.
  s1.inputs = {
      {"A10", {0, 1}, true, -1},
      {"Adiag", {0}, false, -1},
  };
  s1.output = {"L", {0, 1}, false, -1};
  s1.domain_size = n * (n - 1) / 2.0;
  prog.statements.push_back(std::move(s1));

  Statement s2;
  s2.name = "S2: A[i,j] -= A[i,k]*A[k,j]";
  s2.num_vars = 3;  // k=0, i=1, j=2
  s2.inputs = {
      {"L", {0, 1}, false, 0},  // produced by S1 (output reuse, rho_S1 = 1)
      {"U", {0, 2}, false, -1},
      {"Aprev", {1, 2}, false, -1},
  };
  s2.output = {"Aprev", {1, 2}, false, -1};
  s2.domain_size = n * n * n / 3.0 - n * n + 2.0 * n / 3.0;
  prog.statements.push_back(std::move(s2));
  return prog;
}

Program section41_shared_b(double n) {
  Program prog;
  prog.name = "Section4.1-sharedB";
  for (const char* out : {"D", "E"}) {
    Statement s;
    s.name = std::string(out) + "[i,j,k] = X[i,k]*B[k,j]";
    s.num_vars = 3;  // i=0, j=1, k=2
    // A (resp. C) is read once per (i, j, k) but reused across j, so its
    // vertices have out-degree N: Lemma 6 does not apply here.
    s.inputs = {
        {std::string(out) == "D" ? "A" : "C", {0, 2}, false, -1},
        {"B", {2, 1}, false, -1},
    };
    s.output = {out, {0, 1, 2}, false, -1};
    s.domain_size = n * n * n;
    prog.statements.push_back(std::move(s));
  }
  return prog;
}

Program section42_generated_a(double n) {
  Program prog;
  prog.name = "Section4.2-generatedA";

  Statement s;
  s.name = "S: A[i,j] = exp(2 pi sqrt(-1) (i-1)(j-1)/N)";
  s.num_vars = 2;
  s.inputs = {};  // no array inputs: rho_S -> infinity
  s.output = {"A", {0, 1}, false, -1};
  s.domain_size = n * n;
  prog.statements.push_back(std::move(s));

  Statement t;
  t.name = "T: C[i,j] += A[i,k]*B[k,j]";
  t.num_vars = 3;  // i=0, j=1, k=2
  t.inputs = {
      {"A", {0, 2}, false, 0},  // produced by S: dominator term drops
      {"B", {2, 1}, false, -1},
      {"C", {0, 1}, false, -1},
  };
  t.output = {"C", {0, 1}, false, -1};
  t.domain_size = n * n * n;
  prog.statements.push_back(std::move(t));
  return prog;
}

Program cholesky(double n) {
  Program prog;
  prog.name = "Cholesky";

  Statement s2;
  s2.name = "S2: A[i,j] /= A[j,j]";
  s2.num_vars = 2;  // j=0, i=1
  s2.inputs = {
      {"Acol", {0, 1}, true, -1},
      {"Adiag", {0}, false, -1},
  };
  s2.output = {"L", {0, 1}, false, -1};
  s2.domain_size = n * (n - 1) / 2.0;
  prog.statements.push_back(std::move(s2));

  Statement s3;
  s3.name = "S3: A[i,k] -= A[i,j]*A[k,j]";
  s3.num_vars = 3;  // j=0, i=1, k=2
  s3.inputs = {
      {"L", {0, 1}, false, 0},
      {"Lt", {0, 2}, false, 0},
      {"Aprev", {1, 2}, false, -1},
  };
  s3.output = {"Aprev", {1, 2}, false, -1};
  // Triangular update domain: sum_j (n-j)^2/2 ~ n^3/6.
  s3.domain_size = n * n * n / 6.0;
  prog.statements.push_back(std::move(s3));
  return prog;
}

double lu_bound_sequential(double n, double m) {
  return (2.0 * n * n * n - 6.0 * n * n + 4.0 * n) / (3.0 * std::sqrt(m)) +
         n * (n - 1.0) / 2.0;
}

double lu_bound_parallel(double n, double m, double p) {
  return lu_bound_sequential(n, m) / p;
}

double mmm_bound_sequential(double n, double m) {
  return 2.0 * n * n * n / std::sqrt(m);
}

double cholesky_bound_sequential(double n, double m) {
  // Q_S3 = |V_S3| / rho = (n^3/6) / (sqrt(M)/2); Q_S2 = n(n-1)/2 at rho = 1.
  return n * n * n / (3.0 * std::sqrt(m)) + n * (n - 1.0) / 2.0;
}

double cholesky_bound_parallel(double n, double m, double p) {
  return cholesky_bound_sequential(n, m) / p;
}

}  // namespace conflux::daap
