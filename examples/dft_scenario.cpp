/// dft_scenario — the workload the paper's §8 motivates: Density Functional
/// Theory and other electronic-structure methods factorize dense
/// atom-interaction matrices with N >= 10,000. This example builds a
/// screened-interaction matrix, verifies all four libraries factor it, and
/// compares their communication volumes at an application-relevant scale
/// (dry-run mode for the big sweep, numeric at a reduced size).
///
///   $ ./examples/dft_scenario [P]
#include <cstdlib>
#include <iostream>

#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace conflux;
  const int p = argc > 1 ? std::atoi(argv[1]) : 64;

  std::cout << "DFT scenario: atom-interaction matrix factorization\n\n";

  // Part 1 — numerical verification at a reduced size: the interaction
  // matrix (decaying off-diagonals + dominant diagonal) is representative
  // of screened-Coulomb operators.
  {
    const int n = 384;
    const auto a = linalg::generate(n, linalg::MatrixKind::Interaction);
    std::cout << "numeric check at N = " << n << ", P = " << p << ":\n";
    for (const auto& algo : lu::all_algorithms()) {
      lu::LuConfig cfg;
      cfg.n = n;
      cfg.p = p;
      cfg.mode = lu::Mode::Numeric;
      const auto res = algo->run(&a, cfg);
      std::cout << "  " << algo->name() << ": residual " << res.residual
                << ", growth " << res.growth << "\n";
      if (!(res.residual < 1e-10)) return 1;
    }
  }

  // Part 2 — the communication story at application scale (volume-exact
  // dry runs; values are what Score-P would report on a real cluster).
  {
    const int n = 10240;  // "DFT ... yields sizes of N >= 10,000" (§8)
    std::cout << "\ncommunication volume at N = " << n << ", P = " << p
              << " (dry run):\n";
    Table table({"impl", "total GB", "per-rank MB", "grid"});
    double best = 1e300;
    std::string best_name;
    for (const auto& name : {"LibSci", "SLATE", "CANDMC", "COnfLUX"}) {
      lu::LuConfig cfg;
      cfg.n = n;
      cfg.p = p;
      cfg.mode = lu::Mode::DryRun;
      const auto res = lu::make_algorithm(name)->run(nullptr, cfg);
      if (res.total_bytes() < best) {
        best = res.total_bytes();
        best_name = name;
      }
      table.add_row({name, gb(res.total_bytes()),
                     fmt(res.bytes_per_rank() / 1e6, 4), res.grid});
    }
    table.print(std::cout, 2);
    std::cout << "\n  cheapest: " << best_name
              << " — on communication-bound machines this translates "
                 "directly into time and energy savings.\n";
  }
  return 0;
}
