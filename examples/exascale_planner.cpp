/// exascale_planner — the §9 "Implications for Exascale" story as a tool:
/// for each machine preset (Piz Daint, Summit, TaihuLight, a 262k-rank
/// future machine) and a range of matrix sizes, evaluate the communication
/// models, report which library moves the least data, and recommend the
/// COnfLUX grid the Processor Grid Optimization would build.
///
///   $ ./examples/exascale_planner [N]
#include <cstdlib>
#include <iostream>

#include "grid/grid_opt.hpp"
#include "models/cost_model.hpp"
#include "models/machines.hpp"
#include "models/predictions.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace conflux;
  const double n_cli = argc > 1 ? std::atof(argv[1]) : 0;

  std::cout << "Exascale communication planner (model-based, cf. Fig. 7)\n\n";
  for (const auto& machine : models::all_machines()) {
    std::cout << machine.name << " — " << machine.ranks << " ranks, "
              << human_bytes(machine.mem_bytes_per_rank) << "/rank\n";
    Table table({"N", "best", "COnfLUX GB", "2nd-best GB", "reduction",
                 "recommended grid", "idle"});
    for (double n : n_cli > 0 ? std::vector<double>{n_cli}
                              : std::vector<double>{16384, 65536, 262144}) {
      models::Instance inst = models::max_replication_instance(n, machine.ranks);
      // Hardware memory caps the replication budget.
      inst.m_elements = std::min(inst.m_elements, machine.mem_elements());
      const auto all = models::predict_all(inst);
      const auto best = models::best_of(all);
      const auto red = models::reduction_vs_second_best(all);
      double ours = 0;
      for (const auto& e : all)
        if (e.name == "COnfLUX") ours = e.total_bytes;
      const auto choice = grid::optimize_grid(
          machine.ranks, static_cast<int>(n), inst.m_elements);
      table.add_row({fmt(n, 7), best.name, gb(ours),
                     gb(red.factor * ours), fmt(red.factor, 3) + "x",
                     choice.grid.to_string(),
                     std::to_string(choice.idle_ranks)});
    }
    table.print(std::cout, 2);
    std::cout << "\n";
  }
  std::cout << "Note: predictions use the full analytic models; the paper's "
               "published Fig. 7 extrapolation uses leading terms only "
               "(reductions there are larger — e.g. ~2.1x on Summit).\n";
  return 0;
}
