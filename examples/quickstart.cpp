/// quickstart — the 60-second tour of the library's public API:
/// generate a matrix, factor it with COnfLUX on a simulated 2.5D machine,
/// verify the factorization, and inspect the communication volume.
///
///   $ ./examples/quickstart [N] [P]
#include <cstdlib>
#include <iostream>

#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "models/cost_model.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace conflux;

  const int n = argc > 1 ? std::atoi(argv[1]) : 512;
  const int p = argc > 2 ? std::atoi(argv[2]) : 16;

  std::cout << "COnfLUX quickstart: LU factorization of a " << n << " x " << n
            << " matrix on " << p << " simulated ranks\n\n";

  // 1. A test matrix (deterministic seed).
  const linalg::Matrix a = linalg::generate(n, linalg::MatrixKind::Uniform);

  // 2. Configure and run. Numeric mode factors real data and verifies
  //    ||LU - PA||; the defaults pick the communication-optimal grid and
  //    block size for you.
  lu::LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = lu::Mode::Numeric;
  const lu::LuResult result = lu::make_algorithm("COnfLUX")->run(&a, cfg);

  std::cout << "grid           : " << result.grid << " (ranks used "
            << result.ranks_used << "/" << result.ranks_available << ")\n"
            << "block size v   : " << result.block << "\n"
            << "residual       : " << result.residual
            << "   (scaled max|LU - PA|; ~1e-15 is machine precision)\n"
            << "pivot growth   : " << result.growth << "\n"
            << "comm volume    : " << human_bytes(result.total_bytes())
            << " total, " << human_bytes(result.bytes_per_rank())
            << " per rank\n"
            << "messages       : " << result.total.messages_sent << "\n"
            << "simulated in   : " << result.seconds << " s\n\n";

  // 3. Compare with the paper's lower bound for this configuration.
  const auto inst = models::max_replication_instance(n, p);
  const double bound =
      models::lu_lower_bound_elements_per_rank(inst) * p * 8.0;
  std::cout << "I/O lower bound (Section 6): " << human_bytes(bound)
            << "  ->  COnfLUX is " << result.total_bytes() / bound
            << "x above it (leading term: 1.5x by design)\n";
  return result.residual < 1e-10 ? 0 : 1;
}
