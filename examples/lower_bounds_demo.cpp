/// lower_bounds_demo — walk through the paper's general lower-bound method
/// (§3-§6) on every kernel it derives, printing the intermediate
/// quantities: the optimum X0, psi(X0), the computational intensity rho,
/// the per-statement bounds, the input/output reuse adjustments and the
/// final sequential + parallel bounds.
///
///   $ ./examples/lower_bounds_demo [N] [M] [P]
#include <cstdlib>
#include <iostream>

#include "daap/bound_solver.hpp"
#include "daap/kernels.hpp"
#include "support/table.hpp"

namespace {

void show(const conflux::daap::Program& prog, double m, double p) {
  using namespace conflux;
  const auto bound = daap::solve_program(prog, m, p);
  std::cout << "Program: " << prog.name << "\n";
  Table table({"statement", "X0", "psi(X0)", "rho", "Q_i"});
  for (const auto& s : bound.statements)
    table.add_row({s.name, fmt(s.x0, 5), fmt(s.psi_x0, 5), fmt(s.rho, 5),
                   fmt(s.q, 6)});
  table.print(std::cout, 2);
  for (const auto& r : bound.reuses)
    std::cout << "  input reuse on shared array '" << r.array
              << "' (Lemma 7): -" << fmt(r.reuse, 6) << "\n";
  std::cout << "  => Q_sequential >= " << fmt(bound.q_sequential, 6)
            << "   |   Q_parallel(P=" << p << ") >= "
            << fmt(bound.q_parallel, 6) << "  (Lemma 9)\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace conflux;
  const double n = argc > 1 ? std::atof(argv[1]) : 1024;
  const double m = argc > 2 ? std::atof(argv[2]) : 1024;
  const double p = argc > 3 ? std::atof(argv[3]) : 64;

  std::cout << "DAAP I/O lower-bound derivations (N = " << n << ", M = " << m
            << ", P = " << p << ")\n\n";

  show(daap::matmul(n), m, p);
  std::cout << "  closed form 2N^3/sqrt(M) = "
            << fmt(daap::mmm_bound_sequential(n, m), 6) << "\n\n";

  show(daap::lu_factorization(n), m, p);
  std::cout << "  closed form (Section 6)  = "
            << fmt(daap::lu_bound_sequential(n, m), 6)
            << "  — the paper's 2N^3/(3 sqrt M) + N(N-1)/2\n"
            << "  note rho_S1 = 1 via the out-degree-one rule (Lemma 6), and"
               " S1 -> S2 output reuse\n  changes nothing because"
               " recomputation cannot beat a unit-intensity producer.\n\n";

  show(daap::section41_shared_b(n), m, p);
  std::cout << "  paper: Q_tot = N^3/M = " << fmt(n * n * n / m, 6)
            << " after the shared-B reuse credit.\n\n";

  show(daap::section42_generated_a(n), m, p);
  std::cout << "  paper: generating A on the fly (rho_S -> inf) drops its "
               "dominator term; Q_tot = N^3/M = "
            << fmt(n * n * n / m, 6) << ".\n\n";

  show(daap::cholesky(n), m, p);
  std::cout << "  extension (§11 future work): Cholesky moves about half of "
               "LU's Schur volume, ~N^3/(3 sqrt M).\n";
  return 0;
}
