/// pebble_explorer — play the red-blue pebble game (§2.3) on the paper's
/// cDAGs: build the LU cDAG of Figure 1/4 and the MMM cDAG for a small N,
/// pebble them under varying fast-memory sizes M, and print measured I/O Q
/// against the DAAP lower bounds — the Q(M) ~ 1/sqrt(M) law made tangible.
///
///   $ ./examples/pebble_explorer [N]
#include <cstdlib>
#include <iostream>

#include "daap/bound_solver.hpp"
#include "daap/kernels.hpp"
#include "pebble/cdag.hpp"
#include "pebble/game.hpp"
#include "pebble/schedulers.hpp"
#include "pebble/xpartition.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace conflux;
  const int n = argc > 1 ? std::atoi(argv[1]) : 16;

  std::cout << "Red-blue pebble game explorer (N = " << n << ")\n\n";

  {
    const auto built = pebble::mmm_cdag(n);
    std::cout << "MMM cDAG: " << built.dag.size() << " vertices ("
              << built.dag.compute_count() << " compute)\n";
    Table table({"M", "tile b", "Q tiled", "Q row-major", "lower bound",
                 "tiled/bound"});
    for (int m : {16, 32, 64, 128, 256}) {
      const int b = pebble::mmm_tile_for_memory(m);
      const auto tiled = pebble::execute_schedule(
          built.dag, m, pebble::tiled_mmm_order(n, b),
          pebble::Eviction::Belady);
      const auto naive = pebble::execute_schedule(
          built.dag, m, pebble::rowmajor_mmm_order(n),
          pebble::Eviction::Lru);
      const double bound =
          daap::solve_program(daap::matmul(n), m).q_sequential;
      table.add_row({std::to_string(m), std::to_string(b),
                     std::to_string(tiled.io_count()),
                     std::to_string(naive.io_count()), fmt(bound, 5),
                     fmt(tiled.io_count() / bound, 3) + "x"});
    }
    table.print(std::cout, 2);
  }

  {
    const auto built = pebble::lu_cdag(n);
    std::cout << "\nLU cDAG (Figure 1): " << built.dag.size()
              << " vertices\n";
    Table table({"M", "Q (Belady)", "lower bound", "ratio"});
    for (int m : {16, 32, 64, 128}) {
      const auto game = pebble::execute_schedule(
          built.dag, m, pebble::natural_order(built.dag),
          pebble::Eviction::Belady);
      const double bound =
          daap::solve_program(daap::lu_factorization(n), m).q_sequential;
      table.add_row({std::to_string(m), std::to_string(game.io_count()),
                     fmt(bound, 5), fmt(game.io_count() / bound, 3) + "x"});
    }
    table.print(std::cout, 2);
  }

  {
    // X-partition of the MMM cDAG into accumulator chains (cf. §2.3.3).
    const auto built = pebble::mmm_cdag(n);
    std::vector<std::vector<int>> parts;
    for (int i = 0; i < n; ++i)
      for (int j = 0; j < n; ++j) {
        std::vector<int> chain;
        for (int k = 0; k < n; ++k)
          chain.push_back(2 * n * n + (i * n + j) * n + k);
        parts.push_back(chain);
      }
    const auto check = pebble::validate_xpartition(built.dag, parts, 2 * n + 1);
    std::cout << "\nX-partition into " << parts.size()
              << " accumulator chains with X = " << 2 * n + 1 << ": "
              << (check.valid() ? "VALID" : "invalid")
              << " (disjoint=" << check.disjoint
              << ", acyclic=" << check.acyclic
              << ", |Dom|,|Min| <= X: " << check.within_x << ")\n";
  }
  return 0;
}
