/// confscope — the ConfScope profiler CLI.
///
/// Dry-runs (or, with --numeric, fully executes) registered factorization
/// backends with a TelemetryBoard and a TraceRecorder attached, then
/// reports the model-vs-measured profile:
///
///   - per-phase table: exclusive time, blocked-in-recv time, and wire
///     bytes per span name, next to the per-phase volume model's
///     prediction (models/phase_model.hpp) where one exists;
///   - critical path: makespan, path length, end rank, and per-rank slack
///     extracted from the timed CommGraph (verify/critical_path.hpp);
///   - totals: wall time, busy/blocked split, queue high-water marks, and
///     the whole-run volume next to the Table 2 cost model.
///
/// Usage:
///   confscope --algo=COnfLUX,CALU --n=256 --p=8    profile two backends
///   confscope --all --n=128 --p=8                  profile every backend
///   confscope ... --trace=trace.json               merged Chrome/Perfetto
///                                                  trace (one pid/backend)
///   confscope ... --json=profile.json              machine-readable report
///   confscope ... --check-volume [--band=1.1]      gate measured per-phase
///                                                  volume against the model
///   confscope --chaos --n=128 --p=8                ConfChaos sweep: seeded
///                                                  fault matrix x backend x
///                                                  both execution modes
///
/// Exit status: 0 clean, 1 when --check-volume finds a phase outside the
/// band, --chaos finds a violation, or a run fails; 2 on usage errors.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <exception>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cholesky/cholesky_common.hpp"
#include "factor/retry.hpp"
#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "models/cost_model.hpp"
#include "models/machines.hpp"
#include "models/phase_model.hpp"
#include "simnet/trace.hpp"
#include "support/json_writer.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "verify/comm_graph.hpp"
#include "verify/commcheck.hpp"
#include "verify/critical_path.hpp"

namespace {

using conflux::verify::Backend;

struct Options {
  std::vector<std::string> algos;  ///< empty + !all -> usage error
  std::string family;              ///< restrict --all to one family
  bool all = false;
  bool list = false;
  bool numeric = false;
  bool virtual_time = false;      ///< --virtual: LogGP fiber fabric
  std::string machine = "Piz Daint";  ///< --machine= LogGP preset
  bool check_volume = false;
  double band = 1.1;
  int n = 256;
  int p = 8;
  int layers = 0;
  int block = 0;
  std::string trace_path;
  std::string json_path;

  // --- ConfChaos sweep (--chaos) ------------------------------------------
  bool chaos = false;
  std::uint64_t chaos_seed = 1;  ///< --chaos-seed= fault-matrix seed
  int attempts = 3;              ///< --attempts= retry budget per scenario
  double deadline = 30.0;        ///< --deadline= watchdog for non-timeout runs
};

/// One backend's collected profile. The board is heap-held so the Chrome
/// trace writer can stream every backend after all runs finish.
struct Profile {
  Backend backend;
  conflux::factor::FactorResult run;
  std::unique_ptr<conflux::telemetry::TelemetryBoard> board;
  std::map<std::string, conflux::telemetry::PhaseTotal> phases;
  conflux::verify::CriticalPath path;
  std::vector<conflux::models::PhaseVolume> model;  ///< empty if no model
  double model_total_bytes = 0;                     ///< 0 if no total model
};

void print_usage(std::ostream& os) {
  os << "usage: confscope [--algo=NAME[,NAME...]] [--all] "
        "[--family=LU|Cholesky]\n"
        "                 [--n=N] [--p=P] [--layers=C] [--block=V] "
        "[--numeric]\n"
        "                 [--virtual] [--machine=NAME]\n"
        "                 [--trace=FILE] [--json=FILE] [--check-volume]\n"
        "                 [--band=X] [--list] [--help]\n"
        "\n"
        "Profiles factorization backends on the simulated fabric: per-phase\n"
        "span times and wire bytes vs the per-phase volume model, fabric\n"
        "wait metrics, and the critical path of the timed schedule.\n"
        "\n"
        "  --algo=LIST    backend names to profile (see --list)\n"
        "  --all          profile every registered backend\n"
        "  --family=F     with --all: restrict to LU or Cholesky\n"
        "  --n=N          matrix dimension (default 256)\n"
        "  --p=P          rank count (default 8)\n"
        "  --layers=C     force the 2.5D replication depth (0 = auto)\n"
        "  --block=V      force the block size (0 = auto)\n"
        "  --numeric      numeric run instead of the default dry run\n"
        "  --virtual      run on the virtual-time fabric (cooperative\n"
        "                 fibers + LogGP clock): spans, waits, the trace\n"
        "                 and the critical path are in *predicted* seconds\n"
        "  --machine=NAME LogGP preset for --virtual (default Piz Daint;\n"
        "                 see models/machines.hpp)\n"
        "  --trace=FILE   write a merged Chrome-trace/Perfetto JSON file\n"
        "                 (one process per backend, one thread per rank)\n"
        "  --json=FILE    write the machine-readable profile report\n"
        "  --check-volume fail (exit 1) when a measured phase volume falls\n"
        "                 outside the model band (backends with a model)\n"
        "  --band=X       model band for --check-volume (default 1.1)\n"
        "  --chaos        ConfChaos sweep: run every selected backend in\n"
        "                 both execution modes under a seeded fault matrix\n"
        "                 (link delays, rank stalls, payload corruption,\n"
        "                 receive-deadline expiry) and fail unless every\n"
        "                 fault is contained: no hangs, no silent\n"
        "                 corruption, recovered runs bit-identical in\n"
        "                 volume to the fault-free baseline. --json=FILE\n"
        "                 writes the recovery-latency report\n"
        "  --chaos-seed=S fault-matrix seed for --chaos (default 1)\n"
        "  --attempts=K   retry budget per chaos scenario (default 3)\n"
        "  --deadline=T   watchdog receive deadline, in seconds, for chaos\n"
        "                 runs that should NOT time out (default 30)\n"
        "  --list         print the registered (family, backend) table\n"
        "  --help         this text\n";
}

std::vector<std::string> parse_name_list(const std::string& s) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(item);
  return out;
}

/// Total-volume model for one backend name, or null when none applies.
std::unique_ptr<conflux::models::CostModel> total_model_for(
    const Backend& b) {
  using namespace conflux::models;
  if (b.family == "LU") {
    if (b.name == "CALU") return std::make_unique<CaluModel>();
    for (auto& m : standard_models())
      if (m->name() == b.name) return std::move(m);
    return nullptr;
  }
  for (auto& m : cholesky_models())
    if (m->name() == b.name) return std::move(m);
  return nullptr;
}

/// Run one backend with telemetry + trace attached and collect its profile.
Profile profile_backend(const Backend& backend, const Options& opt) {
  Profile out;
  out.backend = backend;
  out.board = std::make_unique<conflux::telemetry::TelemetryBoard>();

  conflux::simnet::TraceRecorder trace;
  conflux::factor::FactorConfig base;
  base.n = opt.n;
  base.p = opt.p;
  base.block = opt.block;
  base.force_layers = opt.layers;
  base.mode = opt.numeric ? conflux::factor::Mode::Numeric
                          : conflux::factor::Mode::DryRun;
  base.verify = opt.numeric;
  base.trace = &trace;
  base.telemetry = out.board.get();
  if (opt.virtual_time) {
    const conflux::models::Machine m =
        conflux::models::machine_by_name(opt.machine);
    base.fabric.mode = conflux::simnet::ExecMode::VirtualTime;
    base.fabric.link.alpha_s = m.alpha_s;
    base.fabric.link.beta_s_per_byte = m.beta_s_per_byte;
    base.fabric.link.gamma_s_per_flop = m.gamma_s_per_flop;
  }

  if (backend.family == "LU") {
    conflux::lu::LuConfig cfg;
    static_cast<conflux::factor::FactorConfig&>(cfg) = base;
    conflux::linalg::Matrix a;
    if (opt.numeric)
      a = conflux::linalg::generate(opt.n,
                                    conflux::linalg::MatrixKind::DiagDominant);
    out.run = conflux::lu::make_algorithm(backend.name)
                  ->run(opt.numeric ? &a : nullptr, cfg);
  } else {
    conflux::cholesky::CholConfig cfg;
    static_cast<conflux::factor::FactorConfig&>(cfg) = base;
    conflux::linalg::Matrix a;
    if (opt.numeric)
      a = conflux::linalg::generate(opt.n, conflux::linalg::MatrixKind::Spd);
    out.run = conflux::cholesky::make_cholesky_algorithm(backend.name)
                  ->run(opt.numeric ? &a : nullptr, cfg);
  }

  out.phases = out.board->phase_totals();
  const conflux::verify::CommGraph graph =
      conflux::verify::CommGraph::build(trace);
  out.path = conflux::verify::extract_critical_path(graph, *out.board);

  // The per-phase model replays the auto-tuned schedule; a forced grid or
  // block size walks a different schedule, so the comparison is skipped.
  if (backend.family == "LU" && opt.layers == 0 && opt.block == 0 &&
      conflux::models::has_phase_model(backend.name))
    out.model = conflux::models::predict_lu_phases(backend.name, opt.n, opt.p);

  if (const auto total = total_model_for(backend))
    out.model_total_bytes = total->total_bytes(
        conflux::models::max_replication_instance(opt.n, opt.p));
  return out;
}

double model_bytes_for_phase(const Profile& prof, const std::string& phase,
                             bool* found) {
  for (const conflux::models::PhaseVolume& pv : prof.model)
    if (pv.phase == phase) {
      *found = true;
      return pv.bytes;
    }
  *found = false;
  return 0;
}

/// Measured/model ratio gate: both sides must be nonzero and within `band`
/// of each other; phases with zero on both sides (trsm) pass trivially.
bool phase_in_band(double measured, double model, double band) {
  if (measured == 0 && model == 0) return true;
  if (measured == 0 || model == 0) return false;
  const double ratio = measured > model ? measured / model : model / measured;
  return ratio <= band;
}

void print_profile(const Profile& prof, const Options& opt, bool* volume_ok) {
  using conflux::Table;
  using conflux::fmt;
  using conflux::human_bytes;
  const conflux::telemetry::TelemetryBoard& board = *prof.board;

  std::cout << "== " << prof.backend.family << '/' << prof.backend.name
            << "  n=" << opt.n << " p=" << opt.p << " grid=" << prof.run.grid
            << " v=" << prof.run.block
            << (opt.numeric ? " (numeric)" : " (dry run)") << "\n";

  Table table({"phase", "seconds", "wait_s", "bytes", "model", "dev"});
  // Engine step order; phase_totals() is alphabetical, which buries the
  // pipeline structure the table is meant to show.
  static const char* kOrder[] = {
      conflux::telemetry::kLayerReduction, conflux::telemetry::kPanelTournament,
      conflux::telemetry::kPanelFactor,    conflux::telemetry::kPivotApply,
      conflux::telemetry::kTrsm,           conflux::telemetry::kSchurUpdate};
  std::vector<std::string> order;
  for (const char* name : kOrder)
    if (prof.phases.count(name) != 0) order.emplace_back(name);
  for (const auto& [name, total] : prof.phases) {
    (void)total;
    bool known = false;
    for (const std::string& o : order) known = known || o == name;
    if (!known) order.push_back(name);
  }

  for (const std::string& name : order) {
    const conflux::telemetry::PhaseTotal& t = prof.phases.at(name);
    bool has_model = false;
    const double model = model_bytes_for_phase(prof, name, &has_model);
    std::string model_cell = "-";
    std::string dev_cell = "-";
    if (has_model) {
      model_cell = human_bytes(model);
      if (model > 0)
        dev_cell =
            fmt(100.0 * (static_cast<double>(t.bytes) - model) / model, 1) +
            "%";
      else if (t.bytes == 0)
        dev_cell = "0%";
      if (opt.check_volume &&
          !phase_in_band(static_cast<double>(t.bytes), model, opt.band)) {
        *volume_ok = false;
        dev_cell += " OUT-OF-BAND";
      }
    }
    table.add_row({name, fmt(t.seconds, 4), fmt(t.wait_seconds, 4),
                   human_bytes(static_cast<double>(t.bytes)), model_cell,
                   dev_cell});
  }
  table.print(std::cout, 2);

  // Fabric totals: busy/blocked split and the worst inbound queue depth.
  double busy = 0, blocked = 0;
  int hwm = 0;
  for (int r = 0; r < board.nranks(); ++r) {
    busy += board.busy_seconds(r);
    blocked += board.blocked_seconds(r);
    hwm = std::max(hwm, board.queue_hwm(r));
  }
  if (prof.run.predicted_seconds > 0)
    std::cout << "  predicted makespan " << fmt(prof.run.predicted_seconds, 4)
              << " s (virtual time)\n";
  std::cout << "  wall " << fmt(board.wall_seconds(), 4) << " s, busy "
            << fmt(busy, 4) << " s, blocked " << fmt(blocked, 4)
            << " s (summed over " << board.nranks()
            << " ranks), queue hwm " << hwm << "\n";

  // Critical path + slack.
  double max_slack = 0;
  for (const double s : prof.path.slack_seconds) max_slack = std::max(max_slack, s);
  std::cout << "  critical path " << fmt(prof.path.seconds, 4) << " s over "
            << prof.path.nodes.size() << " events, ends on rank "
            << prof.path.end_rank << ", max rank slack "
            << fmt(max_slack, 4) << " s\n";

  std::cout << "  volume " << human_bytes(prof.run.total_bytes()) << " ("
            << prof.run.total.messages_sent << " messages";
  if (prof.model_total_bytes > 0)
    std::cout << "; model " << human_bytes(prof.model_total_bytes) << ", "
              << fmt(100.0 *
                         (prof.run.total_bytes() - prof.model_total_bytes) /
                         prof.model_total_bytes,
                     1)
              << "%";
  std::cout << ")\n\n";
}

void write_json(std::ostream& os, const std::vector<Profile>& profiles,
                const Options& opt) {
  conflux::support::JsonWriter w(os);
  w.begin_object();
  w.kv("tool", "confscope");
  w.kv("n", opt.n);
  w.kv("p", opt.p);
  w.kv("mode", opt.numeric ? "numeric" : "dry");
  w.key("backends");
  w.begin_array();
  for (const Profile& prof : profiles) {
    const conflux::telemetry::TelemetryBoard& board = *prof.board;
    w.begin_object();
    w.kv("family", prof.backend.family);
    w.kv("name", prof.backend.name);
    w.kv("grid", prof.run.grid);
    w.kv("block", prof.run.block);
    w.kv("seconds", prof.run.seconds);
    w.kv("wall_seconds", board.wall_seconds());
    if (prof.run.predicted_seconds > 0)
      w.kv("predicted_seconds", prof.run.predicted_seconds);
    w.kv("total_bytes", prof.run.total.bytes_sent);
    w.kv("messages_sent", prof.run.total.messages_sent);
    w.kv("messages_received", prof.run.total.messages_received);
    if (prof.model_total_bytes > 0)
      w.kv("model_total_bytes", prof.model_total_bytes);
    w.kv("critical_path_seconds", prof.path.seconds);
    w.kv("critical_path_events",
         static_cast<std::uint64_t>(prof.path.nodes.size()));
    w.kv("critical_path_end_rank", prof.path.end_rank);
    w.key("phases");
    w.begin_array();
    for (const auto& [name, t] : prof.phases) {
      w.begin_object();
      w.kv("phase", name);
      w.kv("seconds", t.seconds);
      w.kv("wait_seconds", t.wait_seconds);
      w.kv("bytes", t.bytes);
      w.kv("count", t.count);
      bool has_model = false;
      const double model = model_bytes_for_phase(prof, name, &has_model);
      if (has_model) w.kv("model_bytes", model);
      w.end_object();
    }
    w.end_array();
    w.key("ranks");
    w.begin_array();
    for (int r = 0; r < board.nranks(); ++r) {
      w.begin_object();
      w.kv("rank", r);
      w.kv("busy_seconds", board.busy_seconds(r));
      w.kv("blocked_seconds", board.blocked_seconds(r));
      if (r < static_cast<int>(prof.path.slack_seconds.size()))
        w.kv("slack_seconds",
             prof.path.slack_seconds[static_cast<std::size_t>(r)]);
      w.kv("queue_hwm", board.queue_hwm(r));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
}

// ---------------------------------------------------------------------------
// ConfChaos (--chaos): seeded fault matrix x backend x execution mode.
//
// Per (backend, mode) a fault-free numeric baseline is run first, then four
// scenarios, each of which must be *contained*:
//   delay    link delays + jitter   -> run succeeds, volume bit-identical
//   stall    rank stalls + slowdown -> run succeeds, volume bit-identical
//   corrupt  payload bit-flips with integrity on -> typed PayloadCorrupted,
//            retry recovers, recovered volume bit-identical, residual passes
//   timeout  every message delayed past the receive deadline -> typed
//            ReceiveTimeout with located context (never a hang)
// Any hang is caught by the CTest TIMEOUT; any other violation exits 1.
// ---------------------------------------------------------------------------

struct ChaosOutcome {
  std::string backend;   ///< "family/name"
  std::string mode;      ///< "threaded" | "vtime"
  std::string scenario;  ///< delay | stall | corrupt | timeout
  bool ok = false;
  std::string detail;
  int attempts = 1;
  double backoff_s = 0;  ///< recovery backoff recorded by run_with_retry
  double wall_s = 0;     ///< host seconds the scenario took
  conflux::simnet::FaultPlan::Counters counters;
};

/// One numeric run of `b` under `base`. Derived result types slice down to
/// the FactorResult the chaos gates read (volume, residual, attempts).
conflux::factor::FactorResult chaos_run_once(
    const Backend& b, const conflux::linalg::Matrix& a,
    const conflux::factor::FactorConfig& base) {
  if (b.family == "LU") {
    conflux::lu::LuConfig cfg;
    static_cast<conflux::factor::FactorConfig&>(cfg) = base;
    return conflux::lu::make_algorithm(b.name)->run(&a, cfg);
  }
  conflux::cholesky::CholConfig cfg;
  static_cast<conflux::factor::FactorConfig&>(cfg) = base;
  return conflux::cholesky::make_cholesky_algorithm(b.name)->run(&a, cfg);
}

bool chaos_volume_matches(const conflux::factor::FactorResult& got,
                          const conflux::factor::FactorResult& want,
                          std::string* detail) {
  if (got.total.bytes_sent == want.total.bytes_sent &&
      got.total.messages_sent == want.total.messages_sent)
    return true;
  *detail = "volume diverged: " + std::to_string(got.total.bytes_sent) +
            " bytes vs baseline " + std::to_string(want.total.bytes_sent);
  return false;
}

constexpr double kChaosResidualTol = 1e-9;

int run_chaos(const std::vector<Backend>& selected, const Options& opt) {
  using conflux::factor::FactorConfig;
  using conflux::factor::FactorResult;
  using conflux::factor::RetryPolicy;
  using conflux::factor::run_with_retry;
  using conflux::simnet::FaultPlan;
  using conflux::simnet::FaultSpec;

  const conflux::linalg::Matrix lu_a = conflux::linalg::generate(
      opt.n, conflux::linalg::MatrixKind::DiagDominant);
  const conflux::linalg::Matrix chol_a =
      conflux::linalg::generate(opt.n, conflux::linalg::MatrixKind::Spd);
  const conflux::models::Machine machine =
      conflux::models::machine_by_name(opt.machine);

  std::vector<ChaosOutcome> outcomes;
  const auto wall = [] {
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  };

  for (const Backend& b : selected) {
    const conflux::linalg::Matrix& a = b.family == "LU" ? lu_a : chol_a;
    for (const bool vtime : {false, true}) {
      FactorConfig base;
      base.n = opt.n;
      base.p = opt.p;
      base.block = opt.block;
      base.force_layers = opt.layers;
      base.mode = conflux::factor::Mode::Numeric;
      base.verify = true;
      if (vtime) {
        base.fabric.mode = conflux::simnet::ExecMode::VirtualTime;
        base.fabric.link.alpha_s = machine.alpha_s;
        base.fabric.link.beta_s_per_byte = machine.beta_s_per_byte;
        base.fabric.link.gamma_s_per_flop = machine.gamma_s_per_flop;
        base.policy.virtual_deadline_s = 1e9;  // watchdog: absurd = bug
      } else {
        base.policy.deadline_s = opt.deadline;
        base.policy.heartbeat_s = 0.02;
      }

      const std::string id = b.family + "/" + b.name;
      const std::string mode = vtime ? "vtime" : "threaded";
      FactorResult baseline;
      try {
        baseline = chaos_run_once(b, a, base);
      } catch (const std::exception& e) {
        outcomes.push_back({id, mode, "baseline", false,
                            std::string("baseline failed: ") + e.what(), 1, 0,
                            0, {}});
        continue;
      }

      // Inject-but-succeed scenarios: faults that must never change the
      // dataflow. Delay/stall magnitudes are kept tiny in threaded mode
      // (they are real sleeps) and hefty in virtual time (they are free).
      struct Soft {
        const char* name;
        FaultSpec spec;
      };
      FaultSpec delay_spec;
      delay_spec.seed = opt.chaos_seed;
      delay_spec.faulty_links = 0.5;
      delay_spec.delay_prob = 0.3;
      delay_spec.delay_s = vtime ? 1e-3 : 1e-4;
      delay_spec.jitter_s = vtime ? 5e-4 : 5e-5;
      FaultSpec stall_spec;
      stall_spec.seed = opt.chaos_seed + 1;
      stall_spec.stall_prob = 0.2;
      stall_spec.stall_s = vtime ? 1e-2 : 1e-4;
      stall_spec.slow_ranks = 2;
      stall_spec.slow_factor = 2.0;
      for (const Soft& soft : {Soft{"delay", delay_spec},
                               Soft{"stall", stall_spec}}) {
        ChaosOutcome out;
        out.backend = id;
        out.mode = mode;
        out.scenario = soft.name;
        FaultPlan plan(soft.spec);
        FactorConfig cfg = base;
        cfg.faults = &plan;
        RetryPolicy rp;
        rp.max_attempts = opt.attempts;
        rp.real_sleep = false;
        const double t0 = wall();
        try {
          const FactorResult r = run_with_retry(
              [&] { return chaos_run_once(b, a, cfg); }, rp, &plan);
          out.attempts = r.attempts;
          out.backoff_s = r.backoff_seconds;
          out.ok = chaos_volume_matches(r, baseline, &out.detail) &&
                   r.residual < kChaosResidualTol;
          if (out.ok && plan.counters().delayed + plan.counters().stalled == 0)
            out.detail = "warning: no fault fired";
        } catch (const std::exception& e) {
          out.detail = e.what();
        }
        out.wall_s = wall() - t0;
        out.counters = plan.counters();
        outcomes.push_back(out);
      }

      // Corruption + integrity + retry. The probability targets ~1 flip per
      // attempt (calibrated from the baseline's message count) and the seed
      // scans forward until an attempt is actually poisoned — each seed's
      // outcome is deterministic, so the sweep is too.
      {
        ChaosOutcome out;
        out.backend = id;
        out.mode = mode;
        out.scenario = "corrupt";
        const double t0 = wall();
        bool fired = false;
        for (std::uint64_t seed = opt.chaos_seed;
             seed < opt.chaos_seed + 32 && !out.ok; ++seed) {
          FaultSpec spec;
          spec.seed = seed;
          spec.corrupt_prob =
              1.0 / static_cast<double>(
                        std::max<std::uint64_t>(1, baseline.total.messages_sent));
          FaultPlan plan(spec);
          FactorConfig cfg = base;
          cfg.faults = &plan;
          cfg.integrity = true;
          RetryPolicy rp;
          rp.max_attempts = opt.attempts;
          rp.backoff_s = 0.001;
          rp.real_sleep = false;
          try {
            const FactorResult r = run_with_retry(
                [&] { return chaos_run_once(b, a, cfg); }, rp, &plan);
            if (r.attempts > 1) {
              fired = true;
              out.attempts = r.attempts;
              out.backoff_s = r.backoff_seconds;
              out.counters = plan.counters();
              out.ok = chaos_volume_matches(r, baseline, &out.detail) &&
                       r.residual < kChaosResidualTol;
              if (!out.ok && out.detail.empty())
                out.detail = "recovered run failed the residual gate";
            }
          } catch (const conflux::simnet::PayloadCorrupted&) {
            fired = true;  // detected every time but retries exhausted;
                           // keep scanning for a recoverable seed
          } catch (const std::exception& e) {
            out.detail = std::string("unexpected failure type: ") + e.what();
            break;
          }
        }
        if (!out.ok && out.detail.empty())
          out.detail = fired ? "corruption detected but never recovered"
                             : "injection never fired (probability too low)";
        out.wall_s = wall() - t0;
        outcomes.push_back(out);
      }

      // Deadline expiry: every message delayed far past the receive
      // deadline. The only acceptable outcome is the typed, located
      // ReceiveTimeout — anything else is an escape (and a hang would trip
      // the CTest TIMEOUT).
      {
        ChaosOutcome out;
        out.backend = id;
        out.mode = mode;
        out.scenario = "timeout";
        FaultSpec spec;
        spec.seed = opt.chaos_seed + 2;
        spec.delay_prob = 1.0;
        spec.delay_s = vtime ? 10.0 : 1.0;
        FaultPlan plan(spec);
        FactorConfig cfg = base;
        cfg.faults = &plan;
        if (vtime)
          cfg.policy.virtual_deadline_s = 1.0;
        else {
          cfg.policy.deadline_s = 0.25;
          cfg.policy.heartbeat_s = 0.02;
        }
        const double t0 = wall();
        try {
          (void)chaos_run_once(b, a, cfg);
          out.detail = "deadline never fired";
        } catch (const conflux::simnet::ReceiveTimeout& e) {
          if (e.deadlock())
            out.detail = "misclassified as deadlock";
          else if (e.context().rank < 0)
            out.detail = "timeout lost its context";
          else
            out.ok = true;
        } catch (const std::exception& e) {
          out.detail = std::string("untyped failure: ") + e.what();
        }
        out.wall_s = wall() - t0;
        out.counters = plan.counters();
        outcomes.push_back(out);
      }
    }
  }

  conflux::Table table(
      {"backend", "mode", "scenario", "result", "attempts", "backoff_s",
       "wall_s", "inj", "detail"});
  bool all_ok = true;
  for (const ChaosOutcome& out : outcomes) {
    all_ok = all_ok && out.ok;
    const std::uint64_t injected =
        out.counters.delayed + out.counters.stalled + out.counters.corrupted;
    table.add_row({out.backend, out.mode, out.scenario,
                   out.ok ? "ok" : "FAIL", std::to_string(out.attempts),
                   conflux::fmt(out.backoff_s, 4), conflux::fmt(out.wall_s, 3),
                   std::to_string(injected), out.detail});
  }
  table.print(std::cout, 2);

  if (!opt.json_path.empty()) {
    std::ofstream os(opt.json_path);
    if (!os) {
      std::cerr << "confscope: cannot write '" << opt.json_path << "'\n";
      return 1;
    }
    conflux::support::JsonWriter w(os);
    w.begin_object();
    w.kv("tool", "confscope-chaos");
    w.kv("n", opt.n);
    w.kv("p", opt.p);
    w.kv("seed", opt.chaos_seed);
    w.kv("attempts_budget", opt.attempts);
    w.key("scenarios");
    w.begin_array();
    for (const ChaosOutcome& out : outcomes) {
      w.begin_object();
      w.kv("backend", out.backend);
      w.kv("mode", out.mode);
      w.kv("scenario", out.scenario);
      w.kv("ok", out.ok);
      w.kv("attempts", out.attempts);
      w.kv("backoff_seconds", out.backoff_s);
      w.kv("wall_seconds", out.wall_s);
      w.kv("delayed", out.counters.delayed);
      w.kv("stalled", out.counters.stalled);
      w.kv("corrupted", out.counters.corrupted);
      if (!out.detail.empty()) w.kv("detail", out.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::cout << "wrote chaos report to " << opt.json_path << "\n";
  }

  if (!all_ok) {
    std::cerr << "confscope: chaos sweep found uncontained faults\n";
    return 1;
  }
  std::cout << "chaos sweep clean: " << outcomes.size()
            << " scenarios contained\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--all")
        opt.all = true;
      else if (arg == "--list")
        opt.list = true;
      else if (arg == "--numeric")
        opt.numeric = true;
      else if (arg == "--virtual")
        opt.virtual_time = true;
      else if (arg == "--check-volume")
        opt.check_volume = true;
      else if (arg == "--chaos")
        opt.chaos = true;
      else if (arg == "--help" || arg == "-h") {
        print_usage(std::cout);
        return 0;
      } else if (arg.rfind("--algo=", 0) == 0)
        opt.algos = parse_name_list(arg.substr(7));
      else if (arg.rfind("--family=", 0) == 0)
        opt.family = arg.substr(9);
      else if (arg.rfind("--machine=", 0) == 0)
        opt.machine = arg.substr(10);
      else if (arg.rfind("--n=", 0) == 0)
        opt.n = std::stoi(arg.substr(4));
      else if (arg.rfind("--p=", 0) == 0)
        opt.p = std::stoi(arg.substr(4));
      else if (arg.rfind("--layers=", 0) == 0)
        opt.layers = std::stoi(arg.substr(9));
      else if (arg.rfind("--block=", 0) == 0)
        opt.block = std::stoi(arg.substr(8));
      else if (arg.rfind("--band=", 0) == 0)
        opt.band = std::stod(arg.substr(7));
      else if (arg.rfind("--chaos-seed=", 0) == 0)
        opt.chaos_seed = std::stoull(arg.substr(13));
      else if (arg.rfind("--attempts=", 0) == 0)
        opt.attempts = std::stoi(arg.substr(11));
      else if (arg.rfind("--deadline=", 0) == 0)
        opt.deadline = std::stod(arg.substr(11));
      else if (arg.rfind("--trace=", 0) == 0)
        opt.trace_path = arg.substr(8);
      else if (arg.rfind("--json=", 0) == 0)
        opt.json_path = arg.substr(7);
      else {
        std::cerr << "confscope: unknown option '" << arg << "'\n";
        print_usage(std::cerr);
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "confscope: bad value in '" << arg << "'\n";
      return 2;
    }
  }

  if (opt.list) {
    for (const Backend& b : conflux::verify::registered_backends())
      std::cout << b.family << '/' << b.name << "\n";
    return 0;
  }

  // --chaos with no explicit selection sweeps every registered backend.
  if (opt.chaos && opt.algos.empty()) opt.all = true;

  // Resolve the selection against the registry so typos fail loudly.
  std::vector<Backend> selected;
  for (const Backend& b : conflux::verify::registered_backends()) {
    if (!opt.family.empty() && b.family != opt.family) continue;
    if (!opt.all) {
      bool wanted = false;
      for (const std::string& name : opt.algos) wanted = wanted || name == b.name;
      if (!wanted) continue;
    }
    selected.push_back(b);
  }
  if (selected.empty()) {
    if (opt.algos.empty() && !opt.all) {
      std::cerr << "confscope: nothing selected (use --algo=... or --all)\n";
      print_usage(std::cerr);
    } else {
      std::cerr << "confscope: no registered backend matches the selection "
                   "(try --list)\n";
    }
    return 2;
  }

  if (opt.chaos) return run_chaos(selected, opt);

  bool volume_ok = true;
  std::vector<Profile> profiles;
  try {
    for (const Backend& b : selected)
      profiles.push_back(profile_backend(b, opt));
    for (const Profile& prof : profiles)
      print_profile(prof, opt, &volume_ok);
  } catch (const std::exception& e) {
    std::cerr << "confscope: " << e.what() << "\n";
    return 1;
  }

  if (!opt.trace_path.empty()) {
    std::ofstream os(opt.trace_path);
    if (!os) {
      std::cerr << "confscope: cannot write '" << opt.trace_path << "'\n";
      return 1;
    }
    conflux::telemetry::ChromeTraceWriter writer(os);
    int pid = 0;
    for (const Profile& prof : profiles)
      writer.add_process(pid++, prof.backend.family + "/" + prof.backend.name,
                         *prof.board);
    writer.finish();
    std::cout << "wrote Chrome trace to " << opt.trace_path << "\n";
  }

  if (!opt.json_path.empty()) {
    std::ofstream os(opt.json_path);
    if (!os) {
      std::cerr << "confscope: cannot write '" << opt.json_path << "'\n";
      return 1;
    }
    write_json(os, profiles, opt);
    std::cout << "wrote profile JSON to " << opt.json_path << "\n";
  }

  if (opt.check_volume && !volume_ok) {
    std::cerr << "confscope: measured per-phase volume outside the "
              << opt.band << "x model band\n";
    return 1;
  }
  return 0;
}
