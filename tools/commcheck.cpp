/// commcheck — the static communication-schedule verifier CLI.
///
/// Dry-runs registered factorization backends with a trace recorder
/// attached, lifts the recorded schedule into the CommGraph IR
/// (src/verify), and runs the analysis passes: send/recv matching,
/// deadlock freedom, tag hygiene, volume conservation against CommVolume
/// stats and the family's I/O lower bound, plus the buffer-ownership lint.
///
/// Usage:
///   commcheck --all                 sweep every registered backend over the
///                                   default (P, N, layers) matrix
///   commcheck --family=LU --backend=COnfLUX --n=256 --p=8 --layers=2
///                                   verify one configuration
///   commcheck --list                print the registered backends
///   --n=/--p= accept comma-separated lists in --all mode; --verbose prints
///   one line per verified configuration instead of only failures.
///
/// Exit status: 0 when every checked schedule is clean, 1 when any
/// diagnostic of Error severity fired, 2 on usage errors.
#include <cstdlib>
#include <exception>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "simnet/trace.hpp"
#include "verify/commcheck.hpp"

namespace {

using conflux::verify::Backend;
using conflux::verify::CheckConfig;
using conflux::verify::CheckResult;

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoi(item));
  return out;
}

void print_usage(std::ostream& os) {
  os << "usage: commcheck [--all] [--family=LU|Cholesky] [--backend=NAME]\n"
        "                 [--n=N[,N...]] [--p=P[,P...]] [--layers=C]\n"
        "                 [--block=V] [--list] [--verbose] [--help]\n"
        "\n"
        "Statically verifies dry-run communication schedules: send/recv\n"
        "matching, deadlock freedom, tag hygiene, volume conservation\n"
        "(cross-checked against CommVolume stats and the family's I/O lower\n"
        "bound), and buffer-ownership lint.\n"
        "\n"
        "  --all        sweep every registered backend (default N=128,256;\n"
        "               P=4,8,9; layers auto,1,2 where the backend has them)\n"
        "  --family=F   restrict to one family (LU or Cholesky)\n"
        "  --backend=B  restrict to one backend name (e.g. COnfLUX)\n"
        "  --n=LIST     matrix dimensions to check (comma-separated)\n"
        "  --p=LIST     rank counts to check (comma-separated)\n"
        "  --layers=C   force the 2.5D replication depth c (single run only)\n"
        "  --block=V    force the block size (single run only; 0 = auto)\n"
        "  --list       print the registered (family, backend) table\n"
        "  --verbose    print every verified configuration, not just failures\n"
        "  --seed-defect=CLASS\n"
        "               verify a deliberately defective schedule instead —\n"
        "               CLASS is deadlock, orphan-recv, tag-collision or\n"
        "               volume — and exit non-zero when (i.e. prove that)\n"
        "               the defect is detected\n"
        "  --help       this text\n";
}

/// Build the seeded defective schedule for --seed-defect and report it: the
/// demonstration (and CTest WILL_FAIL harness) that each defect class the
/// verifier claims to catch actually produces a located diagnostic and a
/// non-zero exit.
int run_seeded_defect(const std::string& which) {
  using conflux::simnet::TraceRecorder;
  TraceRecorder rec(2);
  conflux::verify::VolumeExpectation expect;
  if (which == "deadlock") {
    // Head-to-head exchange: both ranks receive before they send.
    rec.record_recv(0, 1, 11, 8);
    rec.record_send(0, 1, 10, 8);
    rec.record_recv(1, 0, 10, 8);
    rec.record_send(1, 0, 11, 8);
    expect.total.bytes_sent = 16;
    expect.total.messages_sent = 2;
  } else if (which == "orphan-recv") {
    // Rank 1 waits for a message nobody ever sends.
    rec.record_recv(1, 0, 6, 8);
  } else if (which == "tag-collision") {
    // Two messages share one (src, dst, tag) channel with no ordering.
    rec.record_send(0, 1, 9, 8);
    rec.record_send(0, 1, 9, 8);
    rec.record_recv(1, 0, 9, 8);
    rec.record_recv(1, 0, 9, 8);
    expect.total.bytes_sent = 16;
    expect.total.messages_sent = 2;
  } else if (which == "volume") {
    // Stats board disagreeing with the schedule (accounting bug).
    rec.record_send(0, 1, 3, 100);
    rec.record_recv(1, 0, 3, 100);
    expect.total.bytes_sent = 142;
    expect.total.messages_sent = 1;
  } else {
    std::cerr << "commcheck: unknown defect class '" << which
              << "' (deadlock, orphan-recv, tag-collision, volume)\n";
    return 2;
  }

  const auto graph = conflux::verify::CommGraph::build(rec);
  const auto diags = conflux::verify::run_all_passes(graph, expect);
  std::cout << "seeded defect '" << which << "': " << diags.size()
            << " diagnostic(s)\n";
  for (const conflux::verify::Diagnostic& d : diags)
    std::cout << "  " << to_string(d) << "\n";
  if (!conflux::verify::has_errors(diags)) {
    std::cout << "seeded defect was NOT detected — the verifier is broken\n";
    return 0;  // clean exit = the WILL_FAIL harness flags the regression
  }
  return 1;
}

int report(const std::vector<CheckResult>& results, bool verbose) {
  int clean = 0;
  int failed = 0;
  for (const CheckResult& r : results) {
    if (r.ok()) {
      ++clean;
      if (verbose) std::cout << "ok   " << r.describe() << "\n";
      continue;
    }
    ++failed;
    std::cout << "FAIL " << r.describe() << "\n";
    for (const conflux::verify::Diagnostic& d : r.diags)
      std::cout << "  " << to_string(d) << "\n";
  }
  std::cout << "\ncommcheck: " << clean << " schedule(s) clean, " << failed
            << " with errors\n";
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool all = false;
  bool list = false;
  bool verbose = false;
  std::string family;
  std::string backend;
  std::string seed_defect;
  std::vector<int> n_list;
  std::vector<int> p_list;
  int layers = 0;
  int block = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    try {
      if (arg == "--all")
        all = true;
      else if (arg == "--list")
        list = true;
      else if (arg == "--verbose")
        verbose = true;
      else if (arg == "--help" || arg == "-h") {
        print_usage(std::cout);
        return 0;
      } else if (arg.rfind("--seed-defect=", 0) == 0)
        seed_defect = arg.substr(14);
      else if (arg.rfind("--family=", 0) == 0)
        family = arg.substr(9);
      else if (arg.rfind("--backend=", 0) == 0)
        backend = arg.substr(10);
      else if (arg.rfind("--n=", 0) == 0)
        n_list = parse_int_list(arg.substr(4));
      else if (arg.rfind("--p=", 0) == 0)
        p_list = parse_int_list(arg.substr(4));
      else if (arg.rfind("--layers=", 0) == 0)
        layers = std::stoi(arg.substr(9));
      else if (arg.rfind("--block=", 0) == 0)
        block = std::stoi(arg.substr(8));
      else {
        std::cerr << "commcheck: unknown option '" << arg << "'\n";
        print_usage(std::cerr);
        return 2;
      }
    } catch (const std::exception&) {
      std::cerr << "commcheck: bad value in '" << arg << "'\n";
      return 2;
    }
  }

  if (list) {
    for (const Backend& b : conflux::verify::registered_backends())
      std::cout << b.family << '/' << b.name << "\n";
    return 0;
  }
  if (!seed_defect.empty()) return run_seeded_defect(seed_defect);

  try {
    if (all || (family.empty() && backend.empty())) {
      if (p_list.empty()) p_list = {4, 8, 9};
      if (n_list.empty()) n_list = {128, 256};
      std::vector<CheckResult> results;
      for (const CheckResult& r :
           conflux::verify::sweep(p_list, n_list)) {
        if (!family.empty() && r.backend.family != family) continue;
        if (!backend.empty() && r.backend.name != backend) continue;
        results.push_back(r);
      }
      return report(results, verbose);
    }

    // Single-backend mode: resolve the (family, backend) pair from the
    // registry so typos fail loudly instead of silently checking nothing.
    std::vector<Backend> selected;
    for (const Backend& b : conflux::verify::registered_backends()) {
      if (!family.empty() && b.family != family) continue;
      if (!backend.empty() && b.name != backend) continue;
      selected.push_back(b);
    }
    if (selected.empty()) {
      std::cerr << "commcheck: no registered backend matches family='"
                << family << "' backend='" << backend << "' (try --list)\n";
      return 2;
    }
    if (n_list.empty()) n_list = {128};
    if (p_list.empty()) p_list = {8};
    std::vector<CheckResult> results;
    for (const Backend& b : selected)
      for (int n : n_list)
        for (int p : p_list) {
          CheckConfig config;
          config.n = n;
          config.p = p;
          config.force_layers = layers;
          config.block = block;
          results.push_back(conflux::verify::check_schedule(b, config));
        }
    return report(results, verbose);
  } catch (const std::exception& e) {
    std::cerr << "commcheck: " << e.what() << "\n";
    return 1;
  }
}
