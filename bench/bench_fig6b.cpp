/// bench_fig6b — regenerates Figure 6b: weak scaling with constant work per
/// node, N = 3200 * P^(1/3). The 2.5D algorithms (COnfLUX, CANDMC) keep the
/// per-node volume ~constant; the 2D libraries grow like P^(1/6).
///
/// `--json[=path]` writes the per-point summary (default BENCH_fig6b.json,
/// shared emitter shape); `--trace=path` a merged Chrome-trace profile.
/// `--virtual` runs the same weak-scaling rule at P = 512-4096 (or the
/// `-p` list) on the virtual-time fabric, predicting wall clocks on the
/// `--machine=NAME` preset.
#include <cmath>

#include "bench/bench_common.hpp"
#include "grid/grid_opt.hpp"

namespace {
/// Weak-scaling N: block-friendly multiple near n0 * P^(1/3).
int weak_n(double n0, int p) {
  const int raw = static_cast<int>(std::lround(n0 * std::cbrt(p)));
  return std::max(128, (raw / 128) * 128);
}
}  // namespace

int main(int argc, char** argv) {
  using namespace conflux;
  using namespace conflux::bench;

  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_fig6b.json");
  BenchTrace trace(args.trace_path);

  const bool full = bench_scale() == BenchScale::Full;
  const double n0 = full ? 3200.0 : 640.0;

  if (args.virtual_mode) {
    std::cout << "== Figure 6b (virtual time): weak scaling N = " << n0
              << " * P^(1/3), predicted wall clock ==\n\n";
    std::vector<std::pair<int, int>> nps;
    for (int p : virtual_ps(args)) nps.emplace_back(weak_n(n0, p), p);
    const std::vector<BenchPoint> points =
        run_virtual_sweep(args, nps, trace);
    if (!args.json_path.empty())
      write_bench_json(args.json_path, "fig6b-virtual", 0, points);
    trace.finish();
    return 0;
  }

  const std::vector<int> ps = full ? std::vector<int>{8, 27, 64, 216, 512}
                                   : std::vector<int>{8, 27, 64};

  std::cout << "== Figure 6b: weak scaling, N = " << n0
            << " * P^(1/3), comm volume per node ==\n\n";
  Table table({"P", "N", "impl", "measured MB/node", "model MB/node",
               "growth vs first"});
  std::map<std::string, double> first;
  std::vector<BenchPoint> points;
  for (int p : ps) {
    const int n = weak_n(n0, p);
    for (const std::string& algo : algo_names()) {
      Stopwatch sw;
      const lu::LuResult res = run_dry(algo, n, p, trace.board());
      const double seconds = sw.seconds();
      trace.add(algo + "/p" + std::to_string(p));
      const double per_node = res.bytes_per_rank() / 1e6;
      if (first.find(algo) == first.end()) first[algo] = per_node;
      table.add_row({std::to_string(p), std::to_string(n), algo,
                     fmt(per_node, 4),
                     fmt(model_bytes(algo, n, p) / p / 1e6, 4),
                     fmt(per_node / first[algo], 3) + "x"});
      points.push_back({p, n, algo, seconds, res.bytes_per_rank(),
                        res.total_bytes(), res.total.messages_sent,
                        res.grid});
    }
  }
  table.print(std::cout, 2);
  std::cout << "\nExpected shape: 2.5D algorithms (COnfLUX) retain ~constant "
               "volume per node; 2D algorithms (LibSci, SLATE) grow ~P^(1/6) "
               "— cf. the paper's Fig. 6b.\n";
  if (!args.json_path.empty())
    write_bench_json(args.json_path, "fig6b", 0, points);
  trace.finish();
  return 0;
}
