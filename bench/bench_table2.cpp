/// bench_table2 — regenerates Table 2: total communication volume
/// (measured in the simulator / predicted by the analytic models) for all
/// four LU implementations at N in {4096, 16384} and P in {64, 1024}, with
/// the paper's published values printed alongside.
///
/// Set CONFLUX_BENCH_SCALE=small for a quick reduced-size run.
#include "bench/bench_common.hpp"

int main() {
  using namespace conflux;
  using namespace conflux::bench;

  const bool full = bench_scale() == BenchScale::Full;
  const std::vector<int> ns = full ? std::vector<int>{4096, 16384}
                                   : std::vector<int>{1024, 2048};
  const std::vector<int> ps = full ? std::vector<int>{64, 1024}
                                   : std::vector<int>{16, 64};

  std::cout << "== Table 2: total communication volume [GB], measured / "
               "modeled (prediction %) ==\n"
            << "   (paper reference values in parentheses where published)\n\n";

  for (int n : ns) {
    std::cout << "Total comm. volume for N = " << n << "\n";
    Table table({"P", "impl", "measured GB", "modeled GB", "pred %",
                 "paper meas", "paper model", "grid", "block", "sim s"});
    for (int p : ps) {
      for (const std::string& algo : algo_names()) {
        const lu::LuResult res = run_dry(algo, n, p);
        const double measured = res.total_bytes();
        const double modeled = model_bytes(algo, n, p);
        const double paper_m = paper_table2_gb(n, p, algo, false);
        const double paper_mod = paper_table2_gb(n, p, algo, true);
        table.add_row({std::to_string(p), algo, gb(measured), gb(modeled),
                       fmt(100.0 * modeled / measured, 3) + "%",
                       paper_m > 0 ? gb(paper_m * 1e9) : "-",
                       paper_mod > 0 ? gb(paper_mod * 1e9) : "-", res.grid,
                       std::to_string(res.block), fmt(res.seconds, 2)});
      }
    }
    table.print(std::cout, 2);
    std::cout << "\n";
  }

  std::cout << "Classification row (cf. Table 2):\n"
               "  LibSci : 2D, panel decomp., block size user-specified\n"
               "  SLATE  : 2D, block decomp., default block 16\n"
               "  CANDMC : 2.5D replicated proxy (model: authors' "
               "5N^3/(P sqrt M) [56])\n"
               "  COnfLUX: 1D/2.5D block decomp., block >= P*M/N^2, grid-"
               "optimized\n";
  return 0;
}
