/// bench_fig6a — regenerates Figure 6a: communication volume per node for
/// varying node counts P at fixed N = 16,384, measured points plus the
/// models' leading-factor lines, including the "difficult" non-square rank
/// counts of the inset (greedy 2D grids degrade; grid-optimized COnfLUX
/// stays smooth).
///
/// `--json[=path]` additionally writes a machine-readable summary
/// (per-point wall-clock seconds and volumes) to `path` (default
/// BENCH_simnet.json) so the simulator's perf trajectory can be tracked
/// across PRs; `--trace=path` writes a merged Chrome-trace profile of the
/// measured sweep (one process per point).
///
/// `--virtual` switches to the virtual-time fabric and sweeps P =
/// 512-4096 (or the `-p` list) at the same fixed N, printing *predicted*
/// wall clocks on the `--machine=NAME` preset (default Piz Daint) next to
/// the analytic LogGP phase model; the JSON summary defaults to
/// BENCH_virtual.json.
#include "bench/bench_common.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace conflux;
  using namespace conflux::bench;

  const bool full = bench_scale() == BenchScale::Full;
  const int n = full ? 16384 : 2048;

  BenchArgs args = parse_bench_args(argc, argv, "BENCH_simnet.json");
  if (args.virtual_mode) {
    // Bare `--json` means "the mode's default file"; an explicit
    // `--json=path` is honoured as given.
    if (args.json_defaulted) args.json_path = "BENCH_virtual.json";
    BenchTrace trace(args.trace_path);
    std::cout << "== Figure 6a (virtual time): predicted wall clock vs P "
                 "(N = "
              << n << ") ==\n\n";
    std::vector<std::pair<int, int>> nps;
    for (int p : virtual_ps(args)) nps.emplace_back(n, p);
    const std::vector<BenchPoint> points =
        run_virtual_sweep(args, nps, trace);
    if (!args.json_path.empty())
      write_bench_json(args.json_path, "fig6a-virtual", n, points);
    trace.finish();
    return 0;
  }

  BenchTrace trace(args.trace_path);
  const std::vector<int> ps = full
                                  ? std::vector<int>{4, 16, 64, 256, 1024}
                                  : std::vector<int>{4, 16, 64};

  std::cout << "== Figure 6a: comm volume per node vs P (N = " << n
            << ") ==\n\n";
  std::vector<BenchPoint> points;
  Table table({"P", "impl", "measured MB/node", "model MB/node",
               "leading MB/node", "seconds", "grid"});
  for (int p : ps) {
    for (const std::string& algo : algo_names()) {
      Stopwatch sw;
      const lu::LuResult res = run_dry(algo, n, p, trace.board());
      const double seconds = sw.seconds();
      trace.add(algo + "/p" + std::to_string(p));
      table.add_row(
          {std::to_string(p), algo, fmt(res.bytes_per_rank() / 1e6, 4),
           fmt(model_bytes(algo, n, p) / p / 1e6, 4),
           fmt(model_bytes(algo, n, p, true) / p / 1e6, 4), fmt(seconds, 4),
           res.grid});
      points.push_back({p, n, algo, seconds, res.bytes_per_rank(),
                        res.total_bytes(), res.total.messages_sent,
                        res.grid});
    }
  }
  table.print(std::cout, 2);

  // The inset: awkward (prime / highly non-square) node counts.
  const std::vector<int> awkward =
      full ? std::vector<int>{60, 96, 101} : std::vector<int>{13, 24};
  std::cout << "\n-- inset: difficult-to-factorize node counts --\n";
  Table inset({"P", "impl", "measured MB/node", "vs nearest pow2", "grid"});
  for (int p : awkward) {
    int p2 = 1;
    while (p2 * 2 <= p) p2 *= 2;
    for (const std::string& algo : {std::string("LibSci"),
                                    std::string("SLATE"),
                                    std::string("COnfLUX")}) {
      const lu::LuResult res = run_dry(algo, n, p);
      const lu::LuResult ref = run_dry(algo, n, p2);
      inset.add_row({std::to_string(p), algo,
                     fmt(res.bytes_per_rank() / 1e6, 4),
                     fmt(res.bytes_per_rank() / ref.bytes_per_rank(), 3) +
                         "x",
                     res.grid});
    }
  }
  inset.print(std::cout, 2);
  std::cout << "\nExpected shape: COnfLUX lowest everywhere and smooth at "
               "awkward P; LibSci/SLATE near-identical; CANDMC highest at "
               "all measured scales.\n";

  if (!args.json_path.empty())
    write_bench_json(args.json_path, "fig6a", n, points);
  trace.finish();
  return 0;
}
