/// bench_fig6a — regenerates Figure 6a: communication volume per node for
/// varying node counts P at fixed N = 16,384, measured points plus the
/// models' leading-factor lines, including the "difficult" non-square rank
/// counts of the inset (greedy 2D grids degrade; grid-optimized COnfLUX
/// stays smooth).
#include "bench/bench_common.hpp"

int main() {
  using namespace conflux;
  using namespace conflux::bench;

  const bool full = bench_scale() == BenchScale::Full;
  const int n = full ? 16384 : 2048;
  const std::vector<int> ps = full
                                  ? std::vector<int>{4, 16, 64, 256, 1024}
                                  : std::vector<int>{4, 16, 64};

  std::cout << "== Figure 6a: comm volume per node vs P (N = " << n
            << ") ==\n\n";
  Table table({"P", "impl", "measured MB/node", "model MB/node",
               "leading MB/node", "grid"});
  for (int p : ps) {
    for (const std::string& algo : algo_names()) {
      const lu::LuResult res = run_dry(algo, n, p);
      table.add_row(
          {std::to_string(p), algo, fmt(res.bytes_per_rank() / 1e6, 4),
           fmt(model_bytes(algo, n, p) / p / 1e6, 4),
           fmt(model_bytes(algo, n, p, true) / p / 1e6, 4), res.grid});
    }
  }
  table.print(std::cout, 2);

  // The inset: awkward (prime / highly non-square) node counts.
  const std::vector<int> awkward =
      full ? std::vector<int>{60, 96, 101} : std::vector<int>{13, 24};
  std::cout << "\n-- inset: difficult-to-factorize node counts --\n";
  Table inset({"P", "impl", "measured MB/node", "vs nearest pow2", "grid"});
  for (int p : awkward) {
    int p2 = 1;
    while (p2 * 2 <= p) p2 *= 2;
    for (const std::string& algo : {std::string("LibSci"),
                                    std::string("SLATE"),
                                    std::string("COnfLUX")}) {
      const lu::LuResult res = run_dry(algo, n, p);
      const lu::LuResult ref = run_dry(algo, n, p2);
      inset.add_row({std::to_string(p), algo,
                     fmt(res.bytes_per_rank() / 1e6, 4),
                     fmt(res.bytes_per_rank() / ref.bytes_per_rank(), 3) +
                         "x",
                     res.grid});
    }
  }
  inset.print(std::cout, 2);
  std::cout << "\nExpected shape: COnfLUX lowest everywhere and smooth at "
               "awkward P; LibSci/SLATE near-identical; CANDMC highest at "
               "all measured scales.\n";
  return 0;
}
