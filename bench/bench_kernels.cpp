/// bench_kernels — google-benchmark microbenchmarks of the substrates: the
/// BLAS kernels under the factorizations, the TSLU tournament, the
/// simulated fabric, the pebble-game executor, the grid optimizer and the
/// DAAP bound solver.
#include <benchmark/benchmark.h>

#include "daap/bound_solver.hpp"
#include "daap/kernels.hpp"
#include "grid/grid_opt.hpp"
#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "linalg/getrf.hpp"
#include "linalg/panel.hpp"
#include "pebble/game.hpp"
#include "pebble/schedulers.hpp"
#include "simnet/collectives.hpp"
#include "simnet/spmd.hpp"

namespace {

using namespace conflux;

void BM_Gemm(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = linalg::generate(n, linalg::MatrixKind::Uniform, 1);
  const auto b = linalg::generate(n, linalg::MatrixKind::Uniform, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

// Reference vs optimized A/B on the same 1024^3 multiply: the optimized
// packed/tiled kernel must win by >= 2x (tier-1 acceptance gate).
void BM_GemmReference1024(benchmark::State& state) {
  const int n = 1024;
  const auto a = linalg::generate(n, linalg::MatrixKind::Uniform, 1);
  const auto b = linalg::generate(n, linalg::MatrixKind::Uniform, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_reference(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmReference1024)->Unit(benchmark::kMillisecond);

void BM_GemmOptimized1024(benchmark::State& state) {
  const int n = 1024;
  const auto a = linalg::generate(n, linalg::MatrixKind::Uniform, 1);
  const auto b = linalg::generate(n, linalg::MatrixKind::Uniform, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm_optimized(1.0, a.view(), b.view(), 0.0, c.view());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n);
}
BENCHMARK(BM_GemmOptimized1024)->Unit(benchmark::kMillisecond);

void BM_TrsmRightUpper(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto u = linalg::generate(n, linalg::MatrixKind::DiagDominant, 3);
  auto b = linalg::generate(4 * n, n, linalg::MatrixKind::Uniform, 4);
  for (auto _ : state) {
    linalg::Matrix x = b;
    linalg::trsm_right(linalg::Triangle::Upper, linalg::Diag::NonUnit,
                       u.view(), x.view());
    benchmark::DoNotOptimize(x.data());
  }
}
BENCHMARK(BM_TrsmRightUpper)->Arg(32)->Arg(128);

void BM_GetrfBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto a = linalg::generate(n, linalg::MatrixKind::Uniform, 5);
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  for (auto _ : state) {
    linalg::Matrix f = a;
    (void)linalg::getrf_blocked(f.view(), ipiv, 32);
    benchmark::DoNotOptimize(f.data());
  }
  state.SetItemsProcessed(state.iterations() * 2LL * n * n * n / 3);
}
BENCHMARK(BM_GetrfBlocked)->Arg(128)->Arg(256);

void BM_TournamentRound(benchmark::State& state) {
  const int v = static_cast<int>(state.range(0));
  linalg::PivotCandidates a, b;
  a.values = linalg::generate(v, v, linalg::MatrixKind::Uniform, 6);
  b.values = linalg::generate(v, v, linalg::MatrixKind::Uniform, 7);
  for (int i = 0; i < v; ++i) {
    a.rows.push_back(i);
    b.rows.push_back(1000 + i);
  }
  for (auto _ : state) {
    auto winners = linalg::tournament_round(a, b, v);
    benchmark::DoNotOptimize(winners.rows.data());
  }
}
BENCHMARK(BM_TournamentRound)->Arg(32)->Arg(128);

void BM_SimnetPingPong(benchmark::State& state) {
  const std::size_t count = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    simnet::run_spmd(2, [count](simnet::Comm& comm) {
      std::vector<double> buf(count, 1.0);
      for (int i = 0; i < 50; ++i) {
        if (comm.rank() == 0) {
          comm.send(1, 1, buf);
          buf = comm.recv(1, 2);
        } else {
          buf = comm.recv(0, 1);
          comm.send(0, 2, buf);
        }
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_SimnetPingPong)->Arg(64)->Arg(4096);

void BM_Broadcast64Ranks(benchmark::State& state) {
  for (auto _ : state) {
    simnet::run_spmd(64, [](simnet::Comm& comm) {
      const auto g = simnet::Group::iota(64);
      std::vector<double> data(1024, comm.rank() == 0 ? 1.0 : 0.0);
      simnet::bcast(comm, g, 0, data, simnet::make_tag(1, 0));
    });
  }
}
BENCHMARK(BM_Broadcast64Ranks);

void BM_PebbleExecutor(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const auto built = pebble::mmm_cdag(n);
  const auto order =
      pebble::tiled_mmm_order(n, pebble::mmm_tile_for_memory(64));
  for (auto _ : state) {
    const auto game =
        pebble::execute_schedule(built.dag, 64, order, pebble::Eviction::Lru);
    benchmark::DoNotOptimize(game.io_count());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_PebbleExecutor)->Arg(8)->Arg(16);

void BM_GridOptimize(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto choice = grid::optimize_grid(p, 16384);
    benchmark::DoNotOptimize(choice.grid.active());
  }
}
BENCHMARK(BM_GridOptimize)->Arg(1024)->Arg(65536);

void BM_DaapLuBound(benchmark::State& state) {
  for (auto _ : state) {
    const auto bound = daap::solve_program(daap::lu_factorization(4096), 4096);
    benchmark::DoNotOptimize(bound.q_sequential);
  }
}
BENCHMARK(BM_DaapLuBound);

}  // namespace

BENCHMARK_MAIN();
