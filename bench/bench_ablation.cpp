/// bench_ablation — measures the design choices DESIGN.md calls out (§7.2,
/// §7.3): replication depth c, block size v, grid optimization at awkward
/// rank counts, and the cost of NOT slicing panel multicasts by layer
/// (the CANDMC-style full-panel broadcast).
#include "bench/bench_common.hpp"

int main() {
  using namespace conflux;
  using namespace conflux::bench;

  const bool full = bench_scale() == BenchScale::Full;
  const int n = full ? 4096 : 1024;
  const int p = 64;

  std::cout << "== Ablation 1: replication depth c (N = " << n
            << ", P = " << p << ") ==\n";
  Table crep({"c", "grid", "total GB", "vs best"});
  double best = 1e300;
  std::vector<std::pair<int, lu::LuResult>> rows;
  for (int c : {1, 2, 4, 8, 16}) {
    lu::LuConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.mode = lu::Mode::DryRun;
    cfg.force_layers = c;
    const auto res = lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
    best = std::min(best, res.total_bytes());
    rows.emplace_back(c, res);
  }
  for (const auto& [c, res] : rows)
    crep.add_row({std::to_string(c), res.grid, gb(res.total_bytes()),
                  fmt(res.total_bytes() / best, 3) + "x"});
  crep.print(std::cout, 2);
  std::cout << "  (U-shaped: too little replication wastes multicast "
               "bandwidth, too much wastes reduction bandwidth; optimum "
               "c ~ P^(1/3).)\n\n";

  std::cout << "== Ablation 2: block size v ==\n";
  Table vtab({"v", "total GB", "messages", "note"});
  for (int v : {16, 32, 64, 128, 256}) {
    if (n % v != 0) continue;
    lu::LuConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.mode = lu::Mode::DryRun;
    cfg.block = v;
    const auto res = lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
    vtab.add_row({std::to_string(v), gb(res.total_bytes()),
                  std::to_string(res.total.messages_sent),
                  v <= 32 ? "volume-lean, latency-heavy"
                          : "A00 broadcast term grows ~ N*v*P"});
  }
  vtab.print(std::cout, 2);
  std::cout << "\n";

  std::cout << "== Ablation 3: processor grid optimization at awkward P "
               "(N = " << n << ") ==\n";
  Table gtab({"P", "impl", "per-node MB", "grid", "idle"});
  for (int pa : full ? std::vector<int>{60, 61, 96} : std::vector<int>{13, 24}) {
    {
      lu::LuConfig cfg;
      cfg.n = n;
      cfg.p = pa;
      cfg.mode = lu::Mode::DryRun;
      cfg.grid_optimization = true;
      const auto res = lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
      gtab.add_row({std::to_string(pa), "COnfLUX(opt)",
                    fmt(res.bytes_per_rank() / 1e6, 4), res.grid,
                    std::to_string(pa - res.ranks_used)});
    }
    {
      const auto res = run_dry("LibSci", n, pa);
      gtab.add_row({std::to_string(pa), "LibSci(greedy)",
                    fmt(res.bytes_per_rank() / 1e6, 4), res.grid, "0"});
    }
  }
  gtab.print(std::cout, 2);
  std::cout << "  (Fig. 6a inset: greedy divisor grids degrade toward 1 x P "
               "at primes; the optimizer trades a few idle ranks for a "
               "near-square 2.5D grid.)\n\n";

  std::cout << "== Ablation 4: layer-sliced multicast vs full-panel "
               "replication (COnfLUX vs CANDMC proxy) ==\n";
  Table stab({"N", "P", "COnfLUX GB", "CANDMC GB", "penalty"});
  for (int pa : {16, 64}) {
    const auto cx = run_dry("COnfLUX", n, pa);
    const auto cd = run_dry("CANDMC", n, pa);
    stab.add_row({std::to_string(n), std::to_string(pa),
                  gb(cx.total_bytes()), gb(cd.total_bytes()),
                  fmt(cd.total_bytes() / cx.total_bytes(), 3) + "x"});
  }
  stab.print(std::cout, 2);
  std::cout << "  (Receiving full v-wide panels on every layer — instead of "
               "each layer's v/c slice — costs ~sqrt(c) extra at measured "
               "scales; row masking vs physical swapping adds the rest.)\n\n";

  std::cout << "== Ablation 5: 2D panel width nb (LibSci schedule) ==\n";
  Table ntab({"nb", "total GB", "messages"});
  for (int nb : {16, 32, 64, 128}) {
    if (n % nb != 0) continue;
    lu::LuConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.mode = lu::Mode::DryRun;
    cfg.block = nb;
    const auto res = lu::make_algorithm("LibSci")->run(nullptr, cfg);
    ntab.add_row({std::to_string(nb), gb(res.total_bytes()),
                  std::to_string(res.total.messages_sent)});
  }
  ntab.print(std::cout, 2);
  std::cout << "  (2D volume is nb-insensitive at leading order — the "
               "N^2/sqrt(P) broadcasts dominate.)\n";
  return 0;
}
