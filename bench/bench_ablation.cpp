/// bench_ablation — measures the design choices DESIGN.md calls out (§7.2,
/// §7.3): replication depth c, block size v, grid optimization at awkward
/// rank counts, the cost of NOT slicing panel multicasts by layer (the
/// CANDMC-style full-panel broadcast), and the pivoting-strategy sweep
/// answering the Tang critique (arXiv 2404.06713): partial (LibSci) vs
/// COnfLUX's butterfly tournament vs CALU's reduction-tree tournament,
/// crossed with the adversarial matrix families and several grids.
///
/// `--json[=path]` writes the pivoting sweep to `path` (default
/// BENCH_pivoting.json): per-(strategy, kind) growth/residual numerics and
/// per-grid communication volumes with the CALU/COnfLUX ratio.
#include <fstream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "linalg/generate.hpp"

int main(int argc, char** argv) {
  using namespace conflux;
  using namespace conflux::bench;

  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json")
      json_path = "BENCH_pivoting.json";
    else if (arg.rfind("--json=", 0) == 0)
      json_path = arg.substr(7);
  }

  const bool full = bench_scale() == BenchScale::Full;
  const int n = full ? 4096 : 1024;
  const int p = 64;

  std::cout << "== Ablation 1: replication depth c (N = " << n
            << ", P = " << p << ") ==\n";
  Table crep({"c", "grid", "total GB", "vs best"});
  double best = 1e300;
  std::vector<std::pair<int, lu::LuResult>> rows;
  for (int c : {1, 2, 4, 8, 16}) {
    lu::LuConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.mode = lu::Mode::DryRun;
    cfg.force_layers = c;
    const auto res = lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
    best = std::min(best, res.total_bytes());
    rows.emplace_back(c, res);
  }
  for (const auto& [c, res] : rows)
    crep.add_row({std::to_string(c), res.grid, gb(res.total_bytes()),
                  fmt(res.total_bytes() / best, 3) + "x"});
  crep.print(std::cout, 2);
  std::cout << "  (U-shaped: too little replication wastes multicast "
               "bandwidth, too much wastes reduction bandwidth; optimum "
               "c ~ P^(1/3).)\n\n";

  std::cout << "== Ablation 2: block size v ==\n";
  Table vtab({"v", "total GB", "messages", "note"});
  for (int v : {16, 32, 64, 128, 256}) {
    if (n % v != 0) continue;
    lu::LuConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.mode = lu::Mode::DryRun;
    cfg.block = v;
    const auto res = lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
    vtab.add_row({std::to_string(v), gb(res.total_bytes()),
                  std::to_string(res.total.messages_sent),
                  v <= 32 ? "volume-lean, latency-heavy"
                          : "A00 broadcast term grows ~ N*v*P"});
  }
  vtab.print(std::cout, 2);
  std::cout << "\n";

  std::cout << "== Ablation 3: processor grid optimization at awkward P "
               "(N = " << n << ") ==\n";
  Table gtab({"P", "impl", "per-node MB", "grid", "idle"});
  for (int pa : full ? std::vector<int>{60, 61, 96} : std::vector<int>{13, 24}) {
    {
      lu::LuConfig cfg;
      cfg.n = n;
      cfg.p = pa;
      cfg.mode = lu::Mode::DryRun;
      cfg.grid_optimization = true;
      const auto res = lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
      gtab.add_row({std::to_string(pa), "COnfLUX(opt)",
                    fmt(res.bytes_per_rank() / 1e6, 4), res.grid,
                    std::to_string(pa - res.ranks_used)});
    }
    {
      const auto res = run_dry("LibSci", n, pa);
      gtab.add_row({std::to_string(pa), "LibSci(greedy)",
                    fmt(res.bytes_per_rank() / 1e6, 4), res.grid, "0"});
    }
  }
  gtab.print(std::cout, 2);
  std::cout << "  (Fig. 6a inset: greedy divisor grids degrade toward 1 x P "
               "at primes; the optimizer trades a few idle ranks for a "
               "near-square 2.5D grid.)\n\n";

  std::cout << "== Ablation 4: layer-sliced multicast vs full-panel "
               "replication (COnfLUX vs CANDMC proxy) ==\n";
  Table stab({"N", "P", "COnfLUX GB", "CANDMC GB", "penalty"});
  for (int pa : {16, 64}) {
    const auto cx = run_dry("COnfLUX", n, pa);
    const auto cd = run_dry("CANDMC", n, pa);
    stab.add_row({std::to_string(n), std::to_string(pa),
                  gb(cx.total_bytes()), gb(cd.total_bytes()),
                  fmt(cd.total_bytes() / cx.total_bytes(), 3) + "x"});
  }
  stab.print(std::cout, 2);
  std::cout << "  (Receiving full v-wide panels on every layer — instead of "
               "each layer's v/c slice — costs ~sqrt(c) extra at measured "
               "scales; row masking vs physical swapping adds the rest.)\n\n";

  std::cout << "== Ablation 5: 2D panel width nb (LibSci schedule) ==\n";
  Table ntab({"nb", "total GB", "messages"});
  for (int nb : {16, 32, 64, 128}) {
    if (n % nb != 0) continue;
    lu::LuConfig cfg;
    cfg.n = n;
    cfg.p = p;
    cfg.mode = lu::Mode::DryRun;
    cfg.block = nb;
    const auto res = lu::make_algorithm("LibSci")->run(nullptr, cfg);
    ntab.add_row({std::to_string(nb), gb(res.total_bytes()),
                  std::to_string(res.total.messages_sent)});
  }
  ntab.print(std::cout, 2);
  std::cout << "  (2D volume is nb-insensitive at leading order — the "
               "N^2/sqrt(P) broadcasts dominate.)\n\n";

  std::cout << "== Ablation 6: pivoting strategies x adversarial kinds "
               "(Tang critique, arXiv 2404.06713) ==\n";
  // Partial pivoting (LibSci), COnfLUX's butterfly tournament, and CALU's
  // reduction-tree tournament on every adversarial family. Numeric runs
  // give growth + residual; dry runs at the sweep grids give the volumes.
  const std::vector<std::string> strategies = {"LibSci", "COnfLUX", "CALU"};
  std::ostringstream numerics_json;
  std::ostringstream volumes_json;

  const int adv_n = pick(256, 128);
  const int adv_p = 8;
  Table ptab({"strategy", "kind", "growth", "residual/eps", "off-natural"});
  for (const std::string& algo : strategies) {
    for (linalg::MatrixKind kind : linalg::adversarial_kinds()) {
      const linalg::Matrix a = linalg::generate(adv_n, kind, 131);
      lu::LuConfig cfg;
      cfg.n = adv_n;
      cfg.p = adv_p;
      cfg.mode = lu::Mode::Numeric;
      cfg.verify = true;
      const auto res = lu::make_algorithm(algo)->run(&a, cfg);
      ptab.add_row({algo, linalg::to_string(kind), fmt(res.growth, 3),
                    fmt(res.residual_eps, 2),
                    std::to_string(res.pivot_stats.off_natural)});
      if (numerics_json.tellp() > 0) numerics_json << ",";
      numerics_json << "\n    {\"strategy\": \"" << algo << "\", \"kind\": \""
                    << linalg::to_string(kind) << "\", \"n\": " << adv_n
                    << ", \"p\": " << adv_p << ", \"growth\": " << res.growth
                    << ", \"residual_eps\": " << res.residual_eps
                    << ", \"off_natural\": " << res.pivot_stats.off_natural
                    << "}";
    }
  }
  ptab.print(std::cout, 2);
  std::cout << "  (Wilkinson defeats every row-pivoting strategy — partial "
               "and tournament alike hit 2^(n-1); on the other families all "
               "three stay at O(1) growth. Tournament pivoting is about "
               "communication, not extra stability.)\n\n";

  const int piv_n = full ? 4096 : 1024;
  Table wtab({"N", "P", "c", "LibSci GB", "COnfLUX GB", "CALU GB",
              "CALU/COnfLUX"});
  for (const auto& [pa, c] :
       std::vector<std::pair<int, int>>{{16, 0}, {64, 0}, {64, 4}}) {
    lu::LuConfig cfg;
    cfg.n = piv_n;
    cfg.p = pa;
    cfg.mode = lu::Mode::DryRun;
    cfg.force_layers = c;
    const auto libsci = lu::make_algorithm("LibSci")->run(nullptr, cfg);
    const auto conflux = lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
    const auto calu = lu::make_algorithm("CALU")->run(nullptr, cfg);
    const double ratio = calu.total_bytes() / conflux.total_bytes();
    wtab.add_row({std::to_string(piv_n), std::to_string(pa),
                  c == 0 ? "auto" : std::to_string(c),
                  gb(libsci.total_bytes()), gb(conflux.total_bytes()),
                  gb(calu.total_bytes()), fmt(ratio, 4) + "x"});
    if (volumes_json.tellp() > 0) volumes_json << ",";
    volumes_json << "\n    {\"n\": " << piv_n << ", \"p\": " << pa
                 << ", \"layers\": \"" << (c == 0 ? "auto" : std::to_string(c))
                 << "\", \"grid\": \"" << conflux.grid
                 << "\", \"libsci_bytes\": " << libsci.total_bytes()
                 << ", \"conflux_bytes\": " << conflux.total_bytes()
                 << ", \"calu_bytes\": " << calu.total_bytes()
                 << ", \"calu_over_conflux\": " << ratio << "}";
  }
  wtab.print(std::cout, 2);
  std::cout << "  (The reduction tree sends Px-1 candidate blocks per panel "
               "vs the butterfly's ~Px log2 Px: CALU tracks COnfLUX from "
               "below, always within the 1.1x acceptance band.)\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"pivoting\",\n  \"scale\": \""
        << (full ? "full" : "small")
        << "\",\n  \"strategies\": [\"LibSci\", \"COnfLUX\", \"CALU\"],"
        << "\n  \"numerics\": [" << numerics_json.str()
        << "\n  ],\n  \"volumes\": [" << volumes_json.str() << "\n  ]\n}\n";
    std::cout << "\nwrote " << json_path << "\n";
  }
  return 0;
}
