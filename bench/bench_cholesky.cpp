/// bench_cholesky — the COnfCHOX extension table (journal version,
/// arXiv:2108.09337): total communication volume of the 2.5D Cholesky vs
/// the ScaLAPACK-style 2D baseline, measured in the simulator and predicted
/// by the analytic models, with the DAAP I/O lower bound and the COnfLUX
/// LU volume alongside (Cholesky moves strictly less data than LU on the
/// same instance).
///
/// Set CONFLUX_BENCH_SCALE=small for a quick reduced-size run.
#include "bench/bench_common.hpp"
#include "cholesky/cholesky_common.hpp"
#include "daap/kernels.hpp"

int main() {
  using namespace conflux;
  using namespace conflux::bench;

  const bool full = bench_scale() == BenchScale::Full;
  const std::vector<int> ns = full ? std::vector<int>{4096, 16384}
                                   : std::vector<int>{1024, 2048};
  const std::vector<int> ps = full ? std::vector<int>{64, 1024}
                                   : std::vector<int>{16, 64};

  std::cout << "== COnfCHOX: 2.5D Cholesky vs ScaLAPACK 2D, total "
               "communication volume [GB] ==\n"
            << "   (bound = Cholesky I/O lower bound, "
               "N^3/(3 P sqrt M) + N(N-1)/(2P) elements per rank)\n\n";

  for (int n : ns) {
    std::cout << "Total comm. volume for N = " << n << "\n";
    Table table({"P", "impl", "measured GB", "modeled GB", "pred %",
                 "bound GB", "x bound", "COnfLUX GB", "grid", "block",
                 "sim s"});
    for (int p : ps) {
      const models::Instance inst = models::max_replication_instance(n, p);
      const double bound_bytes =
          models::cholesky_lower_bound_elements_per_rank(inst) * p * 8.0;
      const double lu_bytes = run_dry("COnfLUX", n, p).total_bytes();
      for (const auto& algo : cholesky::all_cholesky_algorithms()) {
        cholesky::CholConfig cfg;
        cfg.n = n;
        cfg.p = p;
        cfg.mode = cholesky::Mode::DryRun;
        const cholesky::CholResult res = algo->run(nullptr, cfg);
        const double measured = res.total_bytes();
        double modeled = 0;
        for (const auto& m : models::cholesky_models())
          if (m->name() == algo->name()) modeled = m->total_bytes(inst);
        table.add_row({std::to_string(p), algo->name(), gb(measured),
                       gb(modeled), fmt(100.0 * modeled / measured, 3) + "%",
                       gb(bound_bytes), fmt(measured / bound_bytes, 2) + "x",
                       gb(lu_bytes), res.grid, std::to_string(res.block),
                       fmt(res.seconds, 2)});
      }
    }
    table.print(std::cout, 2);
    std::cout << "\n";
  }

  std::cout << "Classification row:\n"
               "  ScaLAPACK: 2D block-cyclic pdpotrf-style, greedy "
               "all-ranks grid, no replication\n"
               "  COnfCHOX : 1D/2.5D block decomp., lazy column-strip "
               "reduction, layer-sliced\n"
               "             row + transposed multicasts, no pivoting, "
               "grid-optimized\n";
  return 0;
}
