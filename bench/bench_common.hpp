/// \file bench_common.hpp
/// Shared helpers for the reproduction harness: dry-run execution, model
/// lookup, the paper's reference values for side-by-side printing, and the
/// common `--json` / `--trace` output machinery every bench shares.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "lu/lu_common.hpp"
#include "models/cost_model.hpp"
#include "models/machines.hpp"
#include "models/phase_model.hpp"
#include "models/predictions.hpp"
#include "support/env.hpp"
#include "support/json_writer.hpp"
#include "support/table.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"

namespace conflux::bench {

/// Run one dry-run configuration and return the result. Pass a telemetry
/// board (see BenchTrace) to profile the run with ConfScope spans.
inline lu::LuResult run_dry(const std::string& algo, int n, int p,
                            telemetry::TelemetryBoard* tel = nullptr) {
  lu::LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = lu::Mode::DryRun;
  cfg.telemetry = tel;
  return lu::make_algorithm(algo)->run(nullptr, cfg);
}

/// Run one dry-run configuration on the virtual-time fabric: cooperative
/// fibers instead of one thread per rank (so P = 512-4096 fits on a
/// laptop-class host) and a LogGP clock parameterized by `machine`'s
/// alpha/beta/gamma. The result's predicted_seconds carries the modeled
/// wall clock.
inline lu::LuResult run_dry_virtual(const std::string& algo, int n, int p,
                                    const models::Machine& machine,
                                    telemetry::TelemetryBoard* tel = nullptr) {
  lu::LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = lu::Mode::DryRun;
  cfg.telemetry = tel;
  cfg.fabric.mode = simnet::ExecMode::VirtualTime;
  cfg.fabric.link.alpha_s = machine.alpha_s;
  cfg.fabric.link.beta_s_per_byte = machine.beta_s_per_byte;
  cfg.fabric.link.gamma_s_per_flop = machine.gamma_s_per_flop;
  return lu::make_algorithm(algo)->run(nullptr, cfg);
}

/// Common bench CLI flags, shared by every bench that produces artifacts:
/// `--json[=path]` (machine-readable summary), `--trace=path` (merged
/// Chrome-trace/Perfetto profile of the measured runs), `--virtual`
/// (virtual-time sweep at large P with predicted wall clocks),
/// `--machine=NAME` (LogGP preset for --virtual; see models/machines.hpp)
/// and `-p P[,P...]` (override the --virtual rank sweep).
struct BenchArgs {
  std::string json_path;   ///< empty = no JSON summary
  bool json_defaulted = false;  ///< json_path came from bare `--json`
  std::string trace_path;  ///< empty = no Chrome trace
  bool virtual_mode = false;      ///< --virtual: LogGP fiber sweep
  std::string machine = "Piz Daint";  ///< --machine= preset name
  std::vector<int> ps;     ///< -p override for the --virtual sweep
};

inline BenchArgs parse_bench_args(int argc, char** argv,
                                  const std::string& default_json) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") {
      args.json_path = default_json;
      args.json_defaulted = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = arg.substr(7);
      args.json_defaulted = false;
    } else if (arg.rfind("--trace=", 0) == 0)
      args.trace_path = arg.substr(8);
    else if (arg == "--virtual")
      args.virtual_mode = true;
    else if (arg.rfind("--machine=", 0) == 0)
      args.machine = arg.substr(10);
    else if (arg == "-p" && i + 1 < argc) {
      const std::string list = argv[++i];
      for (std::size_t pos = 0; pos <= list.size();) {
        std::size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        const std::string tok = list.substr(pos, comma - pos);
        int p = 0;
        try {
          std::size_t used = 0;
          p = std::stoi(tok, &used);
          if (used != tok.size()) p = 0;
        } catch (const std::exception&) {
          p = 0;
        }
        if (p < 1) {
          std::cerr << "bad -p list '" << list
                    << "': expected comma-separated integers >= 1\n";
          std::exit(2);
        }
        args.ps.push_back(p);
        pos = comma + 1;
      }
    }
  }
  return args;
}

/// One measured point for the shared BENCH_*.json emitter.
struct BenchPoint {
  int p = 0;
  int n = 0;  ///< ignored when the file carries a fixed top-level N
  std::string impl;
  double seconds = 0;
  double bytes_per_rank = 0;
  double total_bytes = 0;
  std::uint64_t messages = 0;
  std::string grid;
  double predicted_seconds = 0;  ///< virtual-time runs: modeled wall clock
};

/// Write the shared bench JSON shape:
///   {"bench": ..., ["n": N,] "scale": ..., "points": [{...}]}
/// `fixed_n > 0` lifts N to the top level (fixed-size sweeps, fig6a);
/// otherwise each point carries its own "n" (weak scaling, fig6b/7).
inline void write_bench_json(const std::string& path, const std::string& bench,
                             int fixed_n,
                             const std::vector<BenchPoint>& points) {
  std::ofstream os(path);
  support::JsonWriter w(os);
  w.begin_object();
  w.kv("bench", bench);
  if (fixed_n > 0) w.kv("n", fixed_n);
  w.kv("scale", bench_scale() == BenchScale::Full ? "full" : "small");
  w.key("points");
  w.begin_array();
  for (const BenchPoint& pt : points) {
    w.begin_object();
    w.kv("p", pt.p);
    if (fixed_n <= 0) w.kv("n", pt.n);
    w.kv("impl", pt.impl);
    w.kv("seconds", pt.seconds);
    w.kv("bytes_per_rank", pt.bytes_per_rank);
    w.kv("total_bytes", pt.total_bytes);
    w.kv("messages", pt.messages);
    w.kv("grid", pt.grid);
    if (pt.predicted_seconds > 0)
      w.kv("predicted_seconds", pt.predicted_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::cout << "\nwrote " << path << "\n";
}

/// Accumulates one TelemetryBoard per measured run into a merged Chrome
/// trace (one process per labelled run, one thread per rank). Constructed
/// with an empty path, every call is a no-op and board() returns null, so
/// untraced bench runs stay telemetry-free.
class BenchTrace {
 public:
  explicit BenchTrace(const std::string& path) : path_(path) {
    if (path_.empty()) return;
    os_ = std::make_unique<std::ofstream>(path_);
    writer_ = std::make_unique<telemetry::ChromeTraceWriter>(*os_);
  }

  /// The board to pass to run_dry / FactorConfig::telemetry (null when
  /// tracing is off). The attached run's Network resets it, so call add()
  /// after each run before starting the next.
  [[nodiscard]] telemetry::TelemetryBoard* board() {
    return writer_ ? &board_ : nullptr;
  }

  /// Flush the last run's spans as process `label`.
  void add(const std::string& label) {
    if (writer_) writer_->add_process(pid_++, label, board_);
  }

  void finish() {
    if (!writer_) return;
    writer_->finish();
    writer_.reset();
    os_.reset();
    std::cout << "wrote Chrome trace to " << path_ << "\n";
  }

 private:
  std::string path_;
  telemetry::TelemetryBoard board_;
  std::unique_ptr<std::ofstream> os_;
  std::unique_ptr<telemetry::ChromeTraceWriter> writer_;
  int pid_ = 0;
};

/// Model prediction in bytes for one implementation.
inline double model_bytes(const std::string& algo, double n, double p,
                          bool leading_only = false) {
  const models::Instance inst = models::max_replication_instance(n, p);
  for (const auto& m : models::standard_models())
    if (m->name() == algo)
      return leading_only ? m->leading_elements_per_rank(inst) * p * 8.0
                          : m->total_bytes(inst);
  return 0.0;
}

/// Table 2's published measured/modeled totals in GB, keyed by
/// (N, P, implementation) — printed next to our numbers for comparison.
inline double paper_table2_gb(int n, int p, const std::string& algo,
                              bool modeled) {
  static const std::map<std::tuple<int, int, std::string>,
                        std::pair<double, double>>
      kPaper = {
          {{4096, 64, "LibSci"}, {1.17, 1.21}},
          {{4096, 64, "SLATE"}, {1.18, 1.21}},
          {{4096, 64, "CANDMC"}, {2.5, 4.9}},
          {{4096, 64, "COnfLUX"}, {1.11, 1.08}},
          {{4096, 1024, "LibSci"}, {4.45, 4.43}},
          {{4096, 1024, "SLATE"}, {4.35, 4.43}},
          {{4096, 1024, "CANDMC"}, {9.3, 12.13}},
          {{4096, 1024, "COnfLUX"}, {3.13, 3.07}},
          {{16384, 64, "LibSci"}, {18.79, 19.33}},
          {{16384, 64, "SLATE"}, {18.84, 19.33}},
          {{16384, 64, "CANDMC"}, {39.8, 78.74}},
          {{16384, 64, "COnfLUX"}, {17.61, 17.19}},
          {{16384, 1024, "LibSci"}, {70.91, 70.87}},
          {{16384, 1024, "SLATE"}, {71.1, 70.87}},
          {{16384, 1024, "CANDMC"}, {144, 194.09}},
          {{16384, 1024, "COnfLUX"}, {45.42, 44.77}},
      };
  const auto it = kPaper.find({n, p, algo});
  if (it == kPaper.end()) return 0.0;
  return modeled ? it->second.second : it->second.first;
}

inline const std::vector<std::string>& algo_names() {
  static const std::vector<std::string> kNames = {"LibSci", "SLATE", "CANDMC",
                                                  "COnfLUX"};
  return kNames;
}

/// Scale-dependent parameter pick.
template <typename T>
T pick(T full, T small) {
  return bench_scale() == BenchScale::Full ? full : small;
}

/// The rank sweep a `--virtual` bench runs: the issue's P = 512-4096
/// trajectory unless the user narrowed it with `-p`.
inline std::vector<int> virtual_ps(const BenchArgs& args) {
  return args.ps.empty() ? std::vector<int>{512, 1024, 2048, 4096} : args.ps;
}

/// Shared `--virtual` section: run every implementation over the given
/// (n, p) points on the virtual-time fabric and print the predicted
/// wall-clock trajectory next to the analytic LogGP phase model (COnfLUX /
/// CALU only — the baselines have volume models but no phase-time replay).
/// Host seconds show what the fiber scheduler actually cost.
inline std::vector<BenchPoint> run_virtual_sweep(
    const BenchArgs& args, const std::vector<std::pair<int, int>>& nps,
    BenchTrace& trace) {
  const models::Machine m = models::machine_by_name(args.machine);
  std::cout << "-- virtual time: " << m.name << " (alpha " << m.alpha_s * 1e6
            << " us, beta " << 1.0 / m.beta_s_per_byte / 1e9 << " GB/s) --\n";
  Table table({"P", "N", "impl", "predicted s", "model s", "MB/node",
               "host s", "grid"});
  std::vector<BenchPoint> points;
  for (const auto& [n, p] : nps) {
    for (const std::string& algo : algo_names()) {
      Stopwatch sw;
      const lu::LuResult res = run_dry_virtual(algo, n, p, m, trace.board());
      const double host = sw.seconds();
      trace.add(algo + "/n" + std::to_string(n) + "/p" + std::to_string(p));
      const std::string model =
          models::has_phase_model(algo)
              ? fmt(models::predict_lu_makespan(algo, n, p, m.alpha_s,
                                                m.beta_s_per_byte),
                    4)
              : "-";
      table.add_row({std::to_string(p), std::to_string(n), algo,
                     fmt(res.predicted_seconds, 4), model,
                     fmt(res.bytes_per_rank() / 1e6, 4), fmt(host, 4),
                     res.grid});
      BenchPoint pt{p,
                    n,
                    algo,
                    host,
                    res.bytes_per_rank(),
                    res.total_bytes(),
                    res.total.messages_sent,
                    res.grid,
                    res.predicted_seconds};
      points.push_back(pt);
    }
  }
  table.print(std::cout, 2);
  return points;
}

}  // namespace conflux::bench
