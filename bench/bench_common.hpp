/// \file bench_common.hpp
/// Shared helpers for the reproduction harness: dry-run execution, model
/// lookup, and the paper's reference values for side-by-side printing.
#pragma once

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "lu/lu_common.hpp"
#include "models/cost_model.hpp"
#include "models/predictions.hpp"
#include "support/env.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace conflux::bench {

/// Run one dry-run configuration and return the result.
inline lu::LuResult run_dry(const std::string& algo, int n, int p) {
  lu::LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = lu::Mode::DryRun;
  return lu::make_algorithm(algo)->run(nullptr, cfg);
}

/// Model prediction in bytes for one implementation.
inline double model_bytes(const std::string& algo, double n, double p,
                          bool leading_only = false) {
  const models::Instance inst = models::max_replication_instance(n, p);
  for (const auto& m : models::standard_models())
    if (m->name() == algo)
      return leading_only ? m->leading_elements_per_rank(inst) * p * 8.0
                          : m->total_bytes(inst);
  return 0.0;
}

/// Table 2's published measured/modeled totals in GB, keyed by
/// (N, P, implementation) — printed next to our numbers for comparison.
inline double paper_table2_gb(int n, int p, const std::string& algo,
                              bool modeled) {
  static const std::map<std::tuple<int, int, std::string>,
                        std::pair<double, double>>
      kPaper = {
          {{4096, 64, "LibSci"}, {1.17, 1.21}},
          {{4096, 64, "SLATE"}, {1.18, 1.21}},
          {{4096, 64, "CANDMC"}, {2.5, 4.9}},
          {{4096, 64, "COnfLUX"}, {1.11, 1.08}},
          {{4096, 1024, "LibSci"}, {4.45, 4.43}},
          {{4096, 1024, "SLATE"}, {4.35, 4.43}},
          {{4096, 1024, "CANDMC"}, {9.3, 12.13}},
          {{4096, 1024, "COnfLUX"}, {3.13, 3.07}},
          {{16384, 64, "LibSci"}, {18.79, 19.33}},
          {{16384, 64, "SLATE"}, {18.84, 19.33}},
          {{16384, 64, "CANDMC"}, {39.8, 78.74}},
          {{16384, 64, "COnfLUX"}, {17.61, 17.19}},
          {{16384, 1024, "LibSci"}, {70.91, 70.87}},
          {{16384, 1024, "SLATE"}, {71.1, 70.87}},
          {{16384, 1024, "CANDMC"}, {144, 194.09}},
          {{16384, 1024, "COnfLUX"}, {45.42, 44.77}},
      };
  const auto it = kPaper.find({n, p, algo});
  if (it == kPaper.end()) return 0.0;
  return modeled ? it->second.second : it->second.first;
}

inline const std::vector<std::string>& algo_names() {
  static const std::vector<std::string> kNames = {"LibSci", "SLATE", "CANDMC",
                                                  "COnfLUX"};
  return kNames;
}

/// Scale-dependent parameter pick.
template <typename T>
T pick(T full, T small) {
  return bench_scale() == BenchScale::Full ? full : small;
}

}  // namespace conflux::bench
