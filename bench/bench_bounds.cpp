/// bench_bounds — regenerates the theory results of §3-§6: the I/O lower
/// bounds the DAAP engine derives for every kernel in the paper, checked
/// against the closed forms, plus the end-to-end §6 LU bound and COnfLUX's
/// measured distance from it (the "1/3 over the lower bound" headline).
#include <cmath>

#include "bench/bench_common.hpp"
#include "daap/bound_solver.hpp"
#include "daap/kernels.hpp"

int main() {
  using namespace conflux;
  using namespace conflux::bench;

  const double n = 1024;
  std::cout << "== §3-§6: derived I/O lower bounds (N = " << n << ") ==\n\n";
  Table table({"kernel", "M", "solver Q", "closed form", "ratio", "rho(s)"});
  for (double m : {256.0, 1024.0, 4096.0}) {
    {
      const auto b = daap::solve_program(daap::matmul(n), m);
      table.add_row({"MMM", fmt(m, 5), fmt(b.q_sequential, 5),
                     fmt(daap::mmm_bound_sequential(n, m), 5),
                     fmt(b.q_sequential / daap::mmm_bound_sequential(n, m), 4),
                     fmt(b.statements[0].rho, 4)});
    }
    {
      const auto b = daap::solve_program(daap::lu_factorization(n), m);
      table.add_row({"LU", fmt(m, 5), fmt(b.q_sequential, 5),
                     fmt(daap::lu_bound_sequential(n, m), 5),
                     fmt(b.q_sequential / daap::lu_bound_sequential(n, m), 4),
                     fmt(b.statements[0].rho, 3) + ", " +
                         fmt(b.statements[1].rho, 4)});
    }
    {
      const auto b = daap::solve_program(daap::cholesky(n), m);
      table.add_row({"Cholesky", fmt(m, 5), fmt(b.q_sequential, 5),
                     fmt(n * n * n / (3.0 * std::sqrt(m)), 5), "-",
                     fmt(b.statements[1].rho, 4)});
    }
    {
      const auto b = daap::solve_program(daap::section41_shared_b(n), m);
      table.add_row({"S4.1 shared-B", fmt(m, 5), fmt(b.q_sequential, 5),
                     fmt(n * n * n / m, 5),
                     fmt(b.q_sequential / (n * n * n / m), 4), "-"});
    }
    {
      const auto b = daap::solve_program(daap::section42_generated_a(n), m);
      table.add_row({"S4.2 generated-A", fmt(m, 5), fmt(b.q_sequential, 5),
                     fmt(n * n * n / m, 5),
                     fmt(b.q_sequential / (n * n * n / m), 4), "-"});
    }
  }
  table.print(std::cout, 2);

  std::cout << "\n== §6 + Lemma 10: parallel LU bound vs COnfLUX measured ==\n";
  Table par({"N", "P", "M", "bound GB", "COnfLUX GB", "ratio"});
  const bool full = bench_scale() == BenchScale::Full;
  const std::vector<std::pair<int, int>> cells =
      full ? std::vector<std::pair<int, int>>{{2048, 64}, {4096, 64},
                                              {4096, 256}}
           : std::vector<std::pair<int, int>>{{512, 16}, {1024, 64}};
  for (const auto& [nn, p] : cells) {
    const auto inst = models::max_replication_instance(nn, p);
    const double bound_bytes =
        daap::lu_bound_parallel(nn, inst.m_elements, p) * p * 8.0;
    const double measured = run_dry("COnfLUX", nn, p).total_bytes();
    par.add_row({std::to_string(nn), std::to_string(p),
                 fmt(inst.m_elements, 4), gb(bound_bytes), gb(measured),
                 fmt(measured / bound_bytes, 3) + "x"});
  }
  par.print(std::cout, 2);
  std::cout << "\nPaper: COnfLUX's leading term N^3/(P sqrt M) is exactly "
               "1.5x the lower bound's 2N^3/(3 P sqrt M); measured ratios "
               "include the O(N^2/P) tails.\n";
  return 0;
}
