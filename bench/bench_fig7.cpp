/// bench_fig7 — regenerates Figure 7: COnfLUX's communication reduction vs
/// the second-best implementation, for measured (simulated) configurations
/// and model-based predictions up to P = 262,144 and machine-scale runs
/// (Piz Daint, Summit, TaihuLight), annotated with the second-best library
/// (L = LibSci, S = SLATE, C = CANDMC).
///
/// `--json[=path]` writes the measured sweep's raw per-(N, P, impl) volumes
/// (default BENCH_fig7.json, shared emitter shape — the reduction factors
/// are derivable); `--trace=path` a merged Chrome-trace profile.
/// `--virtual` sweeps P = 512-4096 (or the `-p` list) at a fixed N on the
/// virtual-time fabric, adding predicted wall clocks (--machine preset) to
/// the volume-reduction story.
#include "bench/bench_common.hpp"
#include "models/machines.hpp"

int main(int argc, char** argv) {
  using namespace conflux;
  using namespace conflux::bench;
  using models::NamedVolume;

  const BenchArgs args = parse_bench_args(argc, argv, "BENCH_fig7.json");
  BenchTrace trace(args.trace_path);

  const bool full = bench_scale() == BenchScale::Full;

  if (args.virtual_mode) {
    const int n = full ? 8192 : 1024;
    std::cout << "== Figure 7 (virtual time): predicted wall clock and "
                 "volume reduction at N = "
              << n << " ==\n\n";
    std::vector<std::pair<int, int>> nps;
    for (int p : virtual_ps(args)) nps.emplace_back(n, p);
    const std::vector<BenchPoint> points =
        run_virtual_sweep(args, nps, trace);
    Table red_t({"P", "reduction", "second best"});
    for (std::size_t i = 0; i < points.size();) {
      std::vector<NamedVolume> entries;
      const int p = points[i].p;
      for (; i < points.size() && points[i].p == p; ++i)
        entries.push_back({points[i].impl, points[i].total_bytes});
      const auto red = models::reduction_vs_second_best(entries);
      red_t.add_row({std::to_string(p), fmt(red.factor, 3) + "x",
                     red.second_best.substr(0, 1)});
    }
    std::cout << "\n";
    red_t.print(std::cout, 2);
    if (!args.json_path.empty())
      write_bench_json(args.json_path, "fig7-virtual", n, points);
    trace.finish();
    return 0;
  }

  std::cout << "== Figure 7: communication reduction vs second-best ==\n\n"
            << "-- measured (simulator) --\n";
  const std::vector<int> ns = full ? std::vector<int>{2048, 4096, 8192}
                                   : std::vector<int>{512, 1024};
  const std::vector<int> ps =
      full ? std::vector<int>{64, 256, 1024} : std::vector<int>{16, 64};

  Table measured({"N", "P", "reduction", "second best"});
  std::vector<BenchPoint> points;
  for (int n : ns) {
    for (int p : ps) {
      if (full && n == 8192 && p == 1024) continue;  // heaviest cell: skip
      std::vector<NamedVolume> entries;
      for (const std::string& algo : algo_names()) {
        Stopwatch sw;
        const lu::LuResult res = run_dry(algo, n, p, trace.board());
        const double seconds = sw.seconds();
        trace.add(algo + "/n" + std::to_string(n) + "/p" + std::to_string(p));
        entries.push_back({algo, res.total_bytes()});
        points.push_back({p, n, algo, seconds, res.bytes_per_rank(),
                          res.total_bytes(), res.total.messages_sent,
                          res.grid});
      }
      const auto red = models::reduction_vs_second_best(entries);
      measured.add_row({std::to_string(n), std::to_string(p),
                        fmt(red.factor, 3) + "x",
                        red.second_best.substr(0, 1)});
    }
  }
  measured.print(std::cout, 2);

  std::cout << "\n-- predicted (leading-factor models, as in the paper's "
               "extrapolation) --\n";
  Table predicted({"N", "P", "reduction", "second best"});
  for (double n : {4096.0, 16384.0, 65536.0}) {
    for (double p : {4096.0, 16384.0, 65536.0, 262144.0}) {
      const auto inst = models::max_replication_instance(n, p);
      const auto red = models::reduction_vs_second_best(
          models::predict_all(inst, /*leading_only=*/true));
      predicted.add_row({fmt(n, 6), fmt(p, 6), fmt(red.factor, 3) + "x",
                         red.second_best.substr(0, 1)});
    }
  }
  predicted.print(std::cout, 2);

  std::cout << "\n-- machine-scale predictions --\n";
  Table machines_t({"machine", "ranks", "N", "full-model", "leading-model"});
  for (const auto& machine : models::all_machines()) {
    const double n = 16384;
    const auto inst = models::max_replication_instance(n, machine.ranks);
    const auto red_full =
        models::reduction_vs_second_best(models::predict_all(inst));
    const auto red_lead = models::reduction_vs_second_best(
        models::predict_all(inst, true));
    machines_t.add_row({machine.name, std::to_string(machine.ranks), fmt(n, 6),
                        fmt(red_full.factor, 3) + "x (" +
                            red_full.second_best.substr(0, 1) + ")",
                        fmt(red_lead.factor, 3) + "x (" +
                            red_lead.second_best.substr(0, 1) + ")"});
  }
  machines_t.print(std::cout, 2);

  // The paper's §9 observation: CANDMC's model crosses the 2D libraries
  // only deep into extreme scale.
  models::CandmcModel candmc;
  models::LibSciModel libsci;
  const double cross =
      models::crossover_ranks(candmc, libsci, 16384, 1 << 22);
  std::cout << "\nCANDMC-model beats LibSci-model for N=16384 only beyond P ~ "
            << fmt(cross, 6)
            << " ranks (paper, with the authors' constants: ~450,000) — "
               "asymptotic optimality is not enough.\n"
            << "Paper headline: 1.42x at P=1024/N=16384 measured, up to 4.1x "
               "in-sweep, ~2.1x predicted on full-scale Summit.\n";
  if (!args.json_path.empty())
    write_bench_json(args.json_path, "fig7", 0, points);
  trace.finish();
  return 0;
}
