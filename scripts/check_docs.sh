#!/usr/bin/env bash
# Documentation lint, run by the CI "docs" job (and locally via
# `scripts/check_docs.sh`). Four invariants:
#
#  1. Every header under src/ opens with a `/// \file` doc comment (the
#     house style of conflux25d.hpp/spmd.hpp).
#  2. Every intra-repo Markdown link resolves to an existing file.
#     External links (http/https/mailto) and pure #anchors are ignored;
#     `path#anchor` links are checked for the path part only.
#  3. No stale CLI flags: every `--flag` a Markdown line mentions alongside
#     one of the repo's binaries (commcheck, confscope, bench_*) must appear
#     literally in that binary's source, so docs cannot outlive a renamed or
#     removed option.
#  4. No malformed Doxygen member markers: a bare `/<` (a typo for the
#     `///<` trailing-comment marker) renders as literal noise in the docs
#     and silently drops the comment from the generated output.
#  5. No stale CTest labels: every `ctest ... -L <label>` (or -LE) a
#     Markdown file mentions must be a label CMakeLists.txt actually
#     assigns, so docs cannot advertise a renamed or removed test wall.
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

# --- 1: header doc comments -------------------------------------------------
while IFS= read -r hpp; do
  if ! head -n1 "$hpp" | grep -q '^/// \\file'; then
    echo "error: $hpp does not start with a '/// \\file' doc comment" >&2
    fail=1
  fi
done < <(find src -name '*.hpp' | sort)

# --- 2: intra-repo markdown links -------------------------------------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "error: $md links to missing file '$target'" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(find . -name build -prune -o -name '*.md' -print | sort)

# --- 3: stale CLI flag references --------------------------------------------
# Map a documented binary name to the source file defining its flags.
flag_source_for() {
  case "$1" in
    commcheck) echo "tools/commcheck.cpp" ;;
    confscope) echo "tools/confscope.cpp" ;;
    bench_*) echo "bench/$1.cpp" ;;
  esac
}

while IFS= read -r md; do
  while IFS= read -r line; do
    for bin in $(grep -oE '\b(commcheck|confscope|bench_[a-z0-9_]+)\b' <<<"$line" |
                 sort -u); do
      src=$(flag_source_for "$bin")
      [ -f "$src" ] || continue  # binary gated off (e.g. bench_kernels): skip
      for flag in $(grep -oE '\-\-[a-z][a-z0-9_-]*' <<<"$line" | sort -u); do
        case "$flag" in
          --benchmark_*) continue ;;  # google-benchmark built-ins
        esac
        if ! grep -qF -- "$flag" "$src"; then
          echo "error: $md mentions flag '$flag' of $bin, not found in $src" >&2
          fail=1
        fi
      done
    done
  done < <(grep -E '\b(commcheck|confscope|bench_[a-z0-9_]+)\b.*--[a-z]' "$md" || true)
done < <(find . -mindepth 1 \( -name build -o -name '.*' \) -prune -o \
         -name '*.md' ! -name CHANGES.md -print | sort)
# CHANGES.md is exempt: its entries are one-line-per-PR history blobs that
# routinely name several binaries and another tool's flags in one line,
# which the per-line attribution above cannot parse.

# --- 4: malformed Doxygen trailing-comment markers ---------------------------
# Strip every well-formed `///<` occurrence, then flag any surviving `/<`:
# that is the `/<`-for-`///<` typo (or a stray `//<`), which Doxygen treats
# as plain code and drops from the docs.
while IFS= read -r f; do
  hits=$(sed 's_///<__g' "$f" | grep -n '/<' || true)
  if [ -n "$hits" ]; then
    echo "error: $f contains a malformed Doxygen marker ('/<' where '///<' is meant):" >&2
    echo "$hits" | sed 's/^/  /' >&2
    fail=1
  fi
done < <(find src tests bench tools examples \
         \( -name '*.hpp' -o -name '*.cpp' \) -print | sort)

# --- 5: stale CTest label references -----------------------------------------
# Labels CMakeLists.txt assigns, via `LABELS <name>` in set_tests_properties.
known_labels=$(grep -oE 'LABELS [a-z]+' CMakeLists.txt | awk '{print $2}' | sort -u)
while IFS= read -r md; do
  while IFS= read -r label; do
    if ! grep -qxF -- "$label" <<<"$known_labels"; then
      echo "error: $md mentions ctest label '$label', not assigned in CMakeLists.txt" >&2
      fail=1
    fi
  done < <(grep -oE 'ctest[^`)]* -LE? [a-z]+' "$md" |
           grep -oE '\-LE? [a-z]+$' | awk '{print $2}' | sort -u)
done < <(find . -name build -prune -o -name '*.md' -print | sort)

if [ "$fail" -eq 0 ]; then
  echo "docs lint OK: src headers carry \\file comments, intra-repo links resolve, documented CLI flags exist, no malformed '/<' Doxygen markers, documented ctest labels exist"
fi
exit "$fail"
