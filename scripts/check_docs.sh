#!/usr/bin/env bash
# Documentation lint, run by the CI "docs" job (and locally via
# `scripts/check_docs.sh`). Two invariants:
#
#  1. Every header under src/ opens with a `/// \file` doc comment (the
#     house style of conflux25d.hpp/spmd.hpp).
#  2. Every intra-repo Markdown link resolves to an existing file.
#     External links (http/https/mailto) and pure #anchors are ignored;
#     `path#anchor` links are checked for the path part only.
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

# --- 1: header doc comments -------------------------------------------------
while IFS= read -r hpp; do
  if ! head -n1 "$hpp" | grep -q '^/// \\file'; then
    echo "error: $hpp does not start with a '/// \\file' doc comment" >&2
    fail=1
  fi
done < <(find src -name '*.hpp' | sort)

# --- 2: intra-repo markdown links -------------------------------------------
while IFS= read -r md; do
  dir=$(dirname "$md")
  while IFS= read -r target; do
    [ -z "$target" ] && continue
    case "$target" in
      http://* | https://* | mailto:* | '#'*) continue ;;
    esac
    path="${target%%#*}"
    [ -z "$path" ] && continue
    if [ ! -e "$dir/$path" ]; then
      echo "error: $md links to missing file '$target'" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//')
done < <(find . -name build -prune -o -name '*.md' -print | sort)

if [ "$fail" -eq 0 ]; then
  echo "docs lint OK: all src headers carry \\file comments, all intra-repo links resolve"
fi
exit "$fail"
