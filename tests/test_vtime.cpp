// The virtual-time execution mode: cooperative-fiber scheduling at rank
// counts far beyond the host's cores, LogGP clock semantics, bit-identical
// determinism across repeated runs and worker counts, CommVolume parity
// with the threaded rank team, the make_tag wide-layout regression, and
// shared-channel-slot stress at P = 256.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <vector>

#include "simnet/collectives.hpp"
#include "simnet/spmd.hpp"
#include "simnet/vtime.hpp"
#include "support/telemetry.hpp"

namespace conflux::simnet {
namespace {

FabricSpec virtual_fabric(double alpha = 1e-6, double beta = 1e-10,
                          double gamma = 0.0) {
  FabricSpec spec;
  spec.mode = ExecMode::VirtualTime;
  spec.link = LinkModel{alpha, beta, gamma};
  return spec;
}

/// Scoped environment override (CONFLUX_VT_WORKERS etc).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) saved_ = old, had_ = true;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (had_)
      ::setenv(name_, saved_.c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::string saved_;
  bool had_ = false;
};

// --- make_tag regression (satellite bugfix) --------------------------------

TEST(MakeTag, FormerlyCollidingPairRoundTripsDistinctly) {
  // Under the historical layout (phase<<40 | step<<12 | sub & 0xFFF) a
  // rank-indexed sub at paper scale wrapped: sub = 4096 aliased sub = 0 in
  // release builds. The wide layout keeps them distinct.
  EXPECT_NE(make_tag(1, 0, 4096), make_tag(1, 0, 0));
  EXPECT_NE(make_tag(1, 0, 4095 + 1), make_tag(1, 1, 0));
  // Round-trip through the documented field layout.
  const Tag t = make_tag(7, 1234, 4095 + 42);
  EXPECT_EQ(t >> (kTagStepBits + kTagSubBits), 7u);
  EXPECT_EQ((t >> kTagSubBits) & ((1u << kTagStepBits) - 1), 1234u);
  EXPECT_EQ(t & ((1u << kTagSubBits) - 1), 4095u + 42u);
}

TEST(MakeTag, RangeCheckIsUnconditional) {
  EXPECT_THROW((void)make_tag(1u << 12, 0, 0), ContractViolation);
  EXPECT_THROW((void)make_tag(0, 1u << 24, 0), ContractViolation);
  EXPECT_THROW((void)make_tag(0, 0, 1u << 20), ContractViolation);
  // P = 4096 rank-indexed subs are in range — the point of the rebalance.
  EXPECT_NO_THROW((void)make_tag(4095, (1u << 24) - 1, 4096));
}

TEST(MakeTag, StaysInsideCollectiveRoundTagBudget) {
  // Collectives shift user tags left 8 bits for round tags; the widest
  // composed tag must still fit in 56 bits.
  const Tag widest =
      make_tag((1u << 12) - 1, (1u << 24) - 1, (1u << 20) - 1);
  EXPECT_LT(widest, Tag{1} << 56);
}

// --- basic virtual-time execution ------------------------------------------

TEST(VirtualTime, RingExchangeCompletesBeyondCoreCount) {
  const int p = 512;  // far beyond any laptop's core count
  Network net(p, virtual_fabric());
  run_spmd(net, [&](Comm& comm) {
    const int r = comm.rank();
    const std::vector<double> payload{static_cast<double>(r)};
    comm.send((r + 1) % comm.size(), make_tag(1, 0, r), payload);
    const std::vector<double> got =
        comm.recv((r + comm.size() - 1) % comm.size(),
                  make_tag(1, 0, (r + comm.size() - 1) % comm.size()));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], (r + comm.size() - 1) % comm.size());
  });
  EXPECT_EQ(net.stats().total().messages_sent, static_cast<std::uint64_t>(p));
  EXPECT_GT(net.virtual_makespan(), 0.0);
}

TEST(VirtualTime, LogGpClockArithmeticIsExact) {
  const double alpha = 2e-6;
  const double beta = 5e-10;
  Network net(2, virtual_fabric(alpha, beta));
  double clock0 = -1;
  double clock1 = -1;
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, make_tag(1, 0, 0), std::vector<double>(8, 1.0));
      clock0 = comm.virtual_seconds();
    } else {
      (void)comm.recv(0, make_tag(1, 0, 0));
      clock1 = comm.virtual_seconds();
    }
  });
  // Sender: 64 bytes * beta of injection. Receiver: idle until the arrival
  // instant (sender clock + alpha).
  EXPECT_DOUBLE_EQ(clock0, 64 * beta);
  EXPECT_DOUBLE_EQ(clock1, 64 * beta + alpha);
  EXPECT_DOUBLE_EQ(net.virtual_makespan(), 64 * beta + alpha);
  EXPECT_DOUBLE_EQ(net.virtual_seconds(1), 64 * beta + alpha);
}

TEST(VirtualTime, SelfSendsAreFree) {
  Network net(1, virtual_fabric());
  run_spmd(net, [&](Comm& comm) {
    comm.send(0, make_tag(1, 0, 0), std::vector<double>(1024, 0.0));
    (void)comm.recv(0, make_tag(1, 0, 0));
  });
  EXPECT_DOUBLE_EQ(net.virtual_makespan(), 0.0);
}

TEST(VirtualTime, ChargeFlopsAdvancesTheClock) {
  const double gamma = 1e-11;
  Network net(2, virtual_fabric(1e-6, 1e-10, gamma));
  run_spmd(net, [&](Comm& comm) { comm.charge_flops(1e9); });
  EXPECT_DOUBLE_EQ(net.virtual_makespan(), 1e9 * gamma);
  // Threaded mode: charge_flops is a no-op.
  Network threaded(2);
  run_spmd(threaded, [&](Comm& comm) { comm.charge_flops(1e9); });
  EXPECT_DOUBLE_EQ(threaded.virtual_makespan(), 0.0);
}

TEST(VirtualTime, DeadlockIsDetectedAndReported) {
  Network net(2, virtual_fabric());
  // Typed diagnostic (ConfChaos): deadlock() marks it deterministic, and
  // the parked snapshot names the stuck rank and its (src, tag).
  try {
    run_spmd(net, [&](Comm& comm) {
      if (comm.rank() == 0) (void)comm.recv(1, make_tag(2, 0, 0));
    });
    FAIL() << "deadlock not detected";
  } catch (const ReceiveTimeout& e) {
    EXPECT_TRUE(e.deadlock());
    ASSERT_EQ(e.parked().size(), 1u);
    EXPECT_EQ(e.parked()[0].rank, 0);
    EXPECT_EQ(e.parked()[0].src, 1);
    EXPECT_EQ(e.parked()[0].tag, make_tag(2, 0, 0));
  }
  // The fabric recovers: a subsequent run over the same network works.
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0)
      comm.send(1, make_tag(3, 0, 0), std::vector<double>{1.0});
    else
      (void)comm.recv(0, make_tag(3, 0, 0));
  });
}

TEST(VirtualTime, RankExceptionPropagatesAndAborts) {
  Network net(8, virtual_fabric());
  EXPECT_THROW(run_spmd(net,
                        [&](Comm& comm) {
                          if (comm.rank() == 3)
                            throw std::runtime_error("rank 3 failed");
                          // Everyone else blocks on a message that never
                          // comes; the abort must wake them.
                          (void)comm.recv((comm.rank() + 1) % comm.size(),
                                          make_tag(2, 1, 0));
                        }),
               std::runtime_error);
}

// --- collectives over fibers ------------------------------------------------

TEST(VirtualTime, CollectivesRunAtScale) {
  const int p = 256;
  Network net(p, virtual_fabric());
  std::vector<double> sums(static_cast<std::size_t>(p), 0.0);
  run_spmd(net, [&](Comm& comm) {
    const Group all = Group::iota(p);
    std::vector<double> v{static_cast<double>(comm.rank() + 1)};
    allreduce_sum(comm, all, v, make_tag(4, 0, 0));
    sums[static_cast<std::size_t>(comm.rank())] = v[0];
  });
  const double expect = p * (p + 1) / 2.0;
  for (int r = 0; r < p; ++r)
    EXPECT_DOUBLE_EQ(sums[static_cast<std::size_t>(r)], expect) << "rank " << r;
}

// --- shared channel slots at P = 256 (satellite bugfix) ---------------------

TEST(VirtualTime, SharedSlotFanInMatchesEverySourceAndTag) {
  // 256 sources hash onto 64 channel slots: four sources share each slot of
  // rank 0. Rank 0 drains them in *reverse* rank order so nearly every
  // receive targets a slot holding several queued sources, exercising the
  // targeted wakeup filter and (src, tag)-keyed matching under sharing.
  const int p = 256;
  Network net(p, virtual_fabric());
  telemetry::TelemetryBoard board;
  net.set_telemetry(&board);
  ScopedEnv workers("CONFLUX_VT_WORKERS", "1");
  run_spmd(net, [&](Comm& comm) {
    const int r = comm.rank();
    if (r != 0)
      comm.send(0, make_tag(5, 7, r), std::vector<double>{r * 1.0, r * 2.0});
    else
      for (int src = p - 1; src >= 1; --src) {
        const std::vector<double> got = comm.recv(src, make_tag(5, 7, src));
        ASSERT_EQ(got.size(), 2u);
        EXPECT_EQ(got[0], src * 1.0);
        EXPECT_EQ(got[1], src * 2.0);
      }
  });
  // Per-destination queue-depth high-water mark: with one worker, rank 0
  // parks on rank 255 first, so all 255 messages are enqueued before the
  // drain starts. The per-slot accounting this replaced could only ever
  // report ~4 here (255 messages spread over 64 shared slots).
  EXPECT_GE(board.queue_hwm(0), 255);
  EXPECT_EQ(board.queue_hwm(1), 0);
}

TEST(ThreadedMode, SharedSlotQueueDepthIsPerDestination) {
  // Same misattribution check for the threaded fabric, at a rank count
  // small enough to run on OS threads but with slot sharing forced by
  // fan-in volume: every rank sends 8 messages to rank 0 before it drains.
  const int p = 16;
  Network net(p);
  telemetry::TelemetryBoard board;
  net.set_telemetry(&board);
  run_spmd(net, [&](Comm& comm) {
    const int r = comm.rank();
    const int kEach = 8;
    if (r != 0) {
      for (int i = 0; i < kEach; ++i)
        comm.send(0, make_tag(6, i, r), std::vector<double>{1.0});
      (void)comm.recv(0, make_tag(6, 99, r));  // hold until 0 saw them all
    } else {
      for (int src = 1; src < p; ++src)
        for (int i = 0; i < kEach; ++i)
          (void)comm.recv(src, make_tag(6, i, src));
      for (int dst = 1; dst < p; ++dst)
        comm.send(dst, make_tag(6, 99, dst), std::vector<double>{1.0});
    }
  });
  // Messages to rank 0 only ever count against rank 0's depth.
  EXPECT_GE(board.queue_hwm(0), 1);
  for (int r = 1; r < p; ++r) EXPECT_LE(board.queue_hwm(r), 1) << "rank " << r;
}

// --- determinism (satellite test task) --------------------------------------

struct RunResult {
  double makespan = 0;
  CommVolume total;
  std::vector<std::uint64_t> rank_bytes;
};

/// A traffic pattern with fan-in, fan-out, multicast and collectives —
/// enough structure that a scheduling-order dependence would show up in
/// the clocks.
RunResult traffic_mix_run(int p) {
  Network net(p, virtual_fabric(1.7e-6, 2.3e-10));
  run_spmd(net, [&](Comm& comm) {
    const int r = comm.rank();
    const int peer = (r * 7 + 3) % p;
    comm.send(peer, make_tag(1, 0, r), std::vector<double>(16, r * 1.0));
    for (int src = 0; src < p; ++src)
      if ((src * 7 + 3) % p == r) (void)comm.recv(src, make_tag(1, 0, src));
    if (r == 0) {
      std::vector<int> dsts;
      for (int d = 1; d < p; ++d) dsts.push_back(d);
      comm.multicast(dsts, make_tag(1, 1, 0),
                     make_shared_buffer(std::vector<double>(32, 1.0)));
    } else {
      (void)comm.recv_view(0, make_tag(1, 1, 0));
    }
    comm.charge_flops(0);  // exercise the call on the hot path
  });
  RunResult res;
  res.makespan = net.virtual_makespan();
  res.total = net.stats().total();
  for (int r = 0; r < p; ++r)
    res.rank_bytes.push_back(net.stats().rank_volume(r).bytes_sent);
  return res;
}

void expect_bit_identical(const RunResult& a, const RunResult& b,
                          const char* what) {
  // Bit-level comparison: the determinism contract is exact, not approximate.
  EXPECT_EQ(std::memcmp(&a.makespan, &b.makespan, sizeof(double)), 0)
      << what << ": makespan " << a.makespan << " vs " << b.makespan;
  EXPECT_EQ(a.total.bytes_sent, b.total.bytes_sent) << what;
  EXPECT_EQ(a.total.messages_sent, b.total.messages_sent) << what;
  EXPECT_EQ(a.rank_bytes, b.rank_bytes) << what;
}

TEST(VirtualTimeDeterminism, RepeatedRunsAreBitIdentical) {
  const RunResult first = traffic_mix_run(96);
  for (int i = 0; i < 3; ++i)
    expect_bit_identical(first, traffic_mix_run(96), "repeat");
}

TEST(VirtualTimeDeterminism, WorkerCountDoesNotChangeResults) {
  RunResult base;
  {
    ScopedEnv workers("CONFLUX_VT_WORKERS", "1");
    base = traffic_mix_run(96);
  }
  {
    ScopedEnv workers("CONFLUX_VT_WORKERS", "4");
    expect_bit_identical(base, traffic_mix_run(96), "4 workers");
  }
  // Hardware default (no override).
  expect_bit_identical(base, traffic_mix_run(96), "default workers");
}

// --- threaded-mode parity (acceptance criterion) ----------------------------

TEST(VirtualTime, CommVolumeMatchesThreadedModeBitForBit) {
  const int p = 32;
  const auto body = [p](Comm& comm) {
    const int r = comm.rank();
    comm.send((r + 5) % p, make_tag(2, 0, r), std::vector<double>(r + 1, 1.0));
    (void)comm.recv((r + p - 5) % p, make_tag(2, 0, (r + p - 5) % p));
    const Group all = Group::iota(p);
    std::vector<double> v{1.0};
    allreduce_sum(comm, all, v, make_tag(2, 1, 0));
  };

  Network threaded(p);
  run_spmd(threaded, body);
  Network vt(p, virtual_fabric());
  run_spmd(vt, body);

  EXPECT_EQ(threaded.stats().total().bytes_sent, vt.stats().total().bytes_sent);
  EXPECT_EQ(threaded.stats().total().messages_sent, vt.stats().total().messages_sent);
  for (int r = 0; r < p; ++r) {
    const CommVolume a = threaded.stats().rank_volume(r);
    const CommVolume b = vt.stats().rank_volume(r);
    EXPECT_EQ(a.bytes_sent, b.bytes_sent) << "rank " << r;
    EXPECT_EQ(a.bytes_received, b.bytes_received) << "rank " << r;
    EXPECT_EQ(a.messages_sent, b.messages_sent) << "rank " << r;
    EXPECT_EQ(a.messages_received, b.messages_received) << "rank " << r;
  }
}

// --- virtual timestamps in telemetry ----------------------------------------

TEST(VirtualTime, TelemetrySpansCarryVirtualTimestamps) {
  const double alpha = 1e-6;
  const double beta = 1e-9;
  Network net(2, virtual_fabric(alpha, beta));
  telemetry::TelemetryBoard board;
  net.set_telemetry(&board);
  EXPECT_TRUE(board.virtual_clock());
  run_spmd(net, [&](Comm& comm) {
    telemetry::ScopedSpan span(&board, comm.rank(), "exchange");
    if (comm.rank() == 0)
      comm.send(1, make_tag(1, 0, 0), std::vector<double>(128, 0.0));
    else
      (void)comm.recv(0, make_tag(1, 0, 0));
  });
  // Rank 1's span closes at its post-receive virtual clock, not at a few
  // microseconds of host time.
  const auto& spans = board.rank_spans(1);
  ASSERT_EQ(spans.size(), 1u);
  const auto expect_ns =
      static_cast<std::uint64_t>((1024 * beta + alpha) * 1e9);
  EXPECT_EQ(spans[0].end_ns, expect_ns);
  // The receive recorded a virtual-time wait sample of the blocked interval.
  const auto& waits = board.rank_waits(1);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0].begin_ns, 0u);
  EXPECT_EQ(waits[0].ns, expect_ns);
}

}  // namespace
}  // namespace conflux::simnet
