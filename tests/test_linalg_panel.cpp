// Tests for the tournament-pivoting (TSLU) building blocks of §7.3.
#include <gtest/gtest.h>

#include <algorithm>

#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "linalg/getrf.hpp"
#include "linalg/panel.hpp"

namespace conflux::linalg {
namespace {

PivotCandidates make_candidates(int rows, int v, std::uint64_t seed,
                                int id_offset = 0) {
  PivotCandidates cand;
  cand.values = generate(rows, v, MatrixKind::Uniform, seed);
  for (int i = 0; i < rows; ++i) cand.rows.push_back(id_offset + i);
  return cand;
}

TEST(RankRows, ReturnsRequestedCount) {
  const auto cand = make_candidates(10, 4, 31);
  EXPECT_EQ(rank_rows_gepp(cand, 4).size(), 4u);
  EXPECT_EQ(rank_rows_gepp(cand, 12).size(), 10u);  // capped at count
  EXPECT_TRUE(rank_rows_gepp(PivotCandidates{}, 4).empty());
}

TEST(RankRows, FirstChoiceIsColumnMax) {
  auto cand = make_candidates(8, 3, 32);
  for (int i = 0; i < 8; ++i) cand.values(i, 0) = i == 5 ? 100.0 : 1.0;
  const auto order = rank_rows_gepp(cand, 3);
  EXPECT_EQ(order[0], 5);
}

TEST(SelectBest, KeepsOriginalValues) {
  const auto cand = make_candidates(12, 4, 33);
  const auto best = select_best(cand, 4);
  ASSERT_EQ(best.count(), 4);
  for (int i = 0; i < 4; ++i) {
    // Find the source row and compare values verbatim.
    const auto it =
        std::find(cand.rows.begin(), cand.rows.end(), best.rows[static_cast<std::size_t>(i)]);
    ASSERT_NE(it, cand.rows.end());
    const int src = static_cast<int>(it - cand.rows.begin());
    for (int j = 0; j < 4; ++j)
      EXPECT_EQ(best.values(i, j), cand.values(src, j));
  }
}

TEST(TournamentRound, SymmetricInArguments) {
  const auto a = make_candidates(6, 4, 34, 0);
  const auto b = make_candidates(6, 4, 35, 100);
  const auto ab = tournament_round(a, b, 4);
  const auto ba = tournament_round(b, a, 4);
  EXPECT_EQ(ab.rows, ba.rows);
  EXPECT_EQ(max_abs_diff(ab.values.view(), ba.values.view()), 0.0);
}

TEST(TournamentRound, HandlesEmptySide) {
  const auto a = make_candidates(5, 3, 36);
  const auto merged = tournament_round(a, PivotCandidates{}, 3);
  EXPECT_EQ(merged.count(), 3);
}

TEST(TournamentRound, WinnersComeFromBothSidesWhenStrong) {
  auto a = make_candidates(4, 2, 37, 0);
  auto b = make_candidates(4, 2, 38, 100);
  // Make one row of each side dominant in one column.
  a.values(1, 0) = 50.0;
  b.values(2, 1) = 50.0;
  const auto merged = tournament_round(a, b, 2);
  const bool has_a = std::any_of(merged.rows.begin(), merged.rows.end(),
                                 [](int r) { return r < 100; });
  const bool has_b = std::any_of(merged.rows.begin(), merged.rows.end(),
                                 [](int r) { return r >= 100; });
  EXPECT_TRUE(has_a);
  EXPECT_TRUE(has_b);
}

TEST(Finalize, FactorsWinnerBlock) {
  const auto winners = make_candidates(5, 5, 39);
  const TournamentResult result = finalize_tournament(winners);
  ASSERT_EQ(result.pivot_rows.size(), 5u);
  // Rebuild PA from the original rows in pivot order and check L*U = PA.
  Matrix pa(5, 5);
  for (int i = 0; i < 5; ++i) {
    const int src = result.pivot_rows[static_cast<std::size_t>(i)];
    for (int j = 0; j < 5; ++j) pa(i, j) = winners.values(src, j);
  }
  const Matrix l = extract_lower_unit(result.a00.view());
  const Matrix u = extract_upper(result.a00.view());
  Matrix prod(5, 5);
  gemm(1.0, l.view(), u.view(), 0.0, prod.view());
  EXPECT_LT(max_abs_diff(prod.view(), pa.view()), 1e-12);
}

TEST(PackUnpack, RoundTrips) {
  const auto cand = make_candidates(7, 3, 40, 42);
  const auto buf = pack_candidates(cand);
  EXPECT_EQ(buf.size(), 2u + 7u * (1 + 3));
  const auto back = unpack_candidates(buf);
  EXPECT_EQ(back.rows, cand.rows);
  EXPECT_EQ(max_abs_diff(back.values.view(), cand.values.view()), 0.0);
}

TEST(PackUnpack, EmptySet) {
  PivotCandidates empty;
  empty.values = Matrix(0, 4);
  const auto back = unpack_candidates(pack_candidates(empty));
  EXPECT_EQ(back.count(), 0);
}

TEST(PackUnpack, MalformedBufferThrows) {
  std::vector<double> junk = {3.0, 2.0, 1.0};  // inconsistent header
  EXPECT_THROW(unpack_candidates(junk), ContractViolation);
}

// ---- the CALU reduction tree ---------------------------------------------

TEST(ReductionTree, ScheduleShapeIsBinaryTree) {
  // parts - 1 edges; in round r, odd multiples of 2^r send to the even
  // multiple 2^r below; participant 0 never sends.
  for (int parts : {1, 2, 3, 4, 5, 8, 13, 16}) {
    const auto steps = reduction_tree_schedule(parts);
    EXPECT_EQ(steps.size(), static_cast<std::size_t>(parts - 1)) << parts;
    std::vector<int> sent(static_cast<std::size_t>(parts), 0);
    for (const TreeStep& s : steps) {
      EXPECT_GT(s.src, s.dst) << parts;
      EXPECT_EQ(s.src - s.dst, 1 << s.round) << parts;
      ++sent[static_cast<std::size_t>(s.src)];
    }
    // Every participant except the root sends exactly once.
    EXPECT_EQ(sent[0], 0) << parts;
    for (int p = 1; p < parts; ++p)
      EXPECT_EQ(sent[static_cast<std::size_t>(p)], 1) << parts << "/" << p;
  }
}

TEST(ReductionTree, RoundsAreMonotonicallyOrdered) {
  const auto steps = reduction_tree_schedule(16);
  for (std::size_t i = 1; i < steps.size(); ++i)
    EXPECT_GE(steps[i].round, steps[i - 1].round);
}

TEST(ReductionTree, TournamentTreeMatchesPairwiseFold) {
  // tournament_tree over the schedule must select the same winners as the
  // explicit pairwise fold (tournament_round merges in global row order, so
  // both reductions converge to the same set for power-of-two parts).
  const int v = 4;
  std::vector<PivotCandidates> parts;
  for (int p = 0; p < 8; ++p)
    parts.push_back(make_candidates(6, v, 50 + static_cast<unsigned>(p),
                                    p * 100));
  auto fold = parts;
  for (auto& c : fold) c = select_best(c, v);
  while (fold.size() > 1) {
    std::vector<PivotCandidates> next;
    for (std::size_t i = 0; i + 1 < fold.size(); i += 2)
      next.push_back(tournament_round(fold[i], fold[i + 1], v));
    fold = std::move(next);
  }
  const auto tree = tournament_tree(std::move(parts), v);
  EXPECT_EQ(tree.rows, fold[0].rows);
  EXPECT_EQ(max_abs_diff(tree.values.view(), fold[0].values.view()), 0.0);
}

TEST(ReductionTree, SingleParticipantIsSelectBest) {
  const auto cand = make_candidates(10, 3, 51);
  const auto expect = select_best(cand, 3);
  const auto got = tournament_tree({cand}, 3);
  EXPECT_EQ(got.rows, expect.rows);
}

class TournamentStability : public ::testing::TestWithParam<int> {};

// Tournament pivoting selects pivots whose growth behaves like partial
// pivoting's [29]: run a full simulated tournament over `parts` participants
// and compare the winner block's conditioning against GEPP's choice.
TEST_P(TournamentStability, GrowthComparableToGepp) {
  const int parts = GetParam();
  const int v = 4, rows_per = 8;
  const Matrix panel =
      generate(parts * rows_per, v, MatrixKind::Uniform, 41);

  // Tournament: local select then pairwise merge.
  std::vector<PivotCandidates> cands;
  for (int p = 0; p < parts; ++p) {
    PivotCandidates local;
    local.values = Matrix(rows_per, v);
    for (int i = 0; i < rows_per; ++i) {
      local.rows.push_back(p * rows_per + i);
      for (int j = 0; j < v; ++j)
        local.values(i, j) = panel(p * rows_per + i, j);
    }
    cands.push_back(select_best(local, v));
  }
  while (cands.size() > 1) {
    std::vector<PivotCandidates> next;
    for (std::size_t i = 0; i + 1 < cands.size(); i += 2)
      next.push_back(tournament_round(cands[i], cands[i + 1], v));
    if (cands.size() % 2 == 1) next.push_back(cands.back());
    cands = std::move(next);
  }
  const TournamentResult tslu = finalize_tournament(cands[0]);

  // GEPP on the full panel for reference.
  Matrix ref = panel;
  std::vector<int> ipiv(static_cast<std::size_t>(v));
  (void)getrf_unblocked(ref.view(), ipiv);
  const double gepp_umax = max_abs(extract_upper(ref.view()).view());
  const double tslu_umax = max_abs(extract_upper(tslu.a00.view()).view());
  // TSLU growth within a modest factor of GEPP growth.
  EXPECT_LT(tslu_umax, 8.0 * gepp_umax + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Participants, TournamentStability,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

}  // namespace
}  // namespace conflux::linalg
