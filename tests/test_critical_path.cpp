// Tests for ConfScope's critical-path extraction: the path is a
// happens-before chain whose makespan tracks the run's wall clock, bounds
// every rank's busy time, and shifts through an injected delay.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "factor/factorization.hpp"
#include "lu/lu_common.hpp"
#include "simnet/comm.hpp"
#include "simnet/network.hpp"
#include "simnet/spmd.hpp"
#include "simnet/trace.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"
#include "verify/comm_graph.hpp"
#include "verify/critical_path.hpp"

namespace conflux::verify {
namespace {

bool path_visits_rank(const CommGraph& g, const CriticalPath& path, int rank) {
  for (const int idx : path.nodes)
    if (g.nodes()[static_cast<std::size_t>(idx)].rank == rank) return true;
  return false;
}

TEST(CriticalPath, EmptyGraphYieldsEmptyPath) {
  simnet::TraceRecorder rec(2);
  const CriticalPath path = extract_critical_path(CommGraph::build(rec));
  EXPECT_TRUE(path.nodes.empty());
  EXPECT_EQ(path.seconds, 0.0);
  EXPECT_EQ(path.end_rank, -1);
}

TEST(CriticalPath, TracksDryRunWallClockAndBoundsBusyTime) {
  simnet::TraceRecorder rec;
  telemetry::TelemetryBoard board;
  lu::LuConfig cfg;
  cfg.n = 256;
  cfg.p = 8;
  cfg.mode = lu::Mode::DryRun;
  cfg.trace = &rec;
  cfg.telemetry = &board;
  Stopwatch sw;
  (void)lu::make_algorithm("COnfLUX")->run(nullptr, cfg);
  const double run_wall = sw.seconds();

  const CommGraph graph = CommGraph::build(rec);
  const CriticalPath path = extract_critical_path(graph, board);

  ASSERT_FALSE(path.nodes.empty());
  EXPECT_GT(path.seconds, 0.0);
  // The makespan cannot exceed the measured wall time of the whole run
  // (trace epoch starts at attach, inside the Stopwatch interval), and the
  // ISSUE's acceptance band: within 5% of the telemetry wall clock.
  EXPECT_LE(path.seconds, run_wall);
  // The two epochs (trace attach, telemetry attach) are a hair apart, so
  // the comparison carries a small absolute cushion on top of the 5% band.
  EXPECT_GE(path.seconds, board.wall_seconds() * 0.95 - 2e-3);
  EXPECT_LE(path.seconds, board.wall_seconds() * 1.05 + 2e-3);
  // No rank can compute longer than the makespan.
  for (int r = 0; r < board.nranks(); ++r)
    EXPECT_GE(path.seconds + 1e-9, board.busy_seconds(r)) << "rank " << r;

  // Consecutive path nodes form a happens-before chain, and completion
  // times never decrease along it.
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    EXPECT_TRUE(graph.happens_before(path.nodes[i], path.nodes[i + 1]))
        << "edge " << i;
    EXPECT_LE(graph.nodes()[static_cast<std::size_t>(path.nodes[i])].t_ns,
              graph.nodes()[static_cast<std::size_t>(path.nodes[i + 1])].t_ns);
  }

  // Slack: zero (to rounding) for some rank, never negative, never above
  // the makespan.
  double min_slack = path.seconds;
  for (const double s : path.slack_seconds) {
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, path.seconds + 1e-9);
    min_slack = std::min(min_slack, s);
  }
  EXPECT_LT(min_slack, path.seconds);
}

TEST(CriticalPath, ShiftsThroughAnInjectedDelay) {
  // Same diamond, two runs: whichever middle rank sleeps 30 ms becomes the
  // binding constraint, so the extracted path must route through it and
  // the makespan must absorb the delay.
  simnet::Network net(4);
  for (const int slow : {1, 2}) {
    simnet::TraceRecorder rec;
    net.set_trace(&rec);
    simnet::run_spmd(net, [slow](simnet::Comm& comm) {
      const int me = comm.rank();
      if (me == 0) {
        comm.send(1, 1, std::vector<double>{1.0});
        comm.send(2, 2, std::vector<double>{2.0});
      } else if (me == 1 || me == 2) {
        (void)comm.recv_view(0, me);
        if (me == slow)
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
        comm.send(3, 10 + me, std::vector<double>{3.0});
      } else {
        (void)comm.recv_view(1, 11);
        (void)comm.recv_view(2, 12);
      }
    });
    const CommGraph graph = CommGraph::build(rec);
    const CriticalPath path = extract_critical_path(graph);
    const int fast = slow == 1 ? 2 : 1;

    EXPECT_EQ(path.end_rank, 3);
    EXPECT_GE(path.seconds, 0.030);
    EXPECT_TRUE(path_visits_rank(graph, path, slow)) << "slow=" << slow;
    // The path enters rank 3 through the slow branch's send, not the fast
    // branch's: the fast middle rank contributes no node past its receive
    // of rank 0's seed... its send may appear only if it finished later,
    // which the 30 ms sleep rules out.
    EXPECT_FALSE(path_visits_rank(graph, path, fast)) << "slow=" << slow;
    // The slow rank had (close to) no slack; the fast one had ~30 ms.
    EXPECT_LT(path.slack_seconds[static_cast<std::size_t>(slow)], 0.015);
    EXPECT_GT(path.slack_seconds[static_cast<std::size_t>(fast)], 0.015);
  }
}

TEST(CriticalPath, TelemetrySlackUsesBusyTime) {
  simnet::Network net(2);
  simnet::TraceRecorder rec;
  telemetry::TelemetryBoard board;
  net.set_trace(&rec);
  net.set_telemetry(&board);
  simnet::run_spmd(net, [&board](simnet::Comm& comm) {
    const telemetry::ScopedSpan span(&board, comm.rank(),
                                     telemetry::kSchurUpdate);
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      comm.send(1, 1, std::vector<double>{1.0});
    } else {
      (void)comm.recv_view(0, 1);
    }
  });
  const CriticalPath path =
      extract_critical_path(CommGraph::build(rec), board);
  ASSERT_EQ(path.slack_seconds.size(), 2u);
  // Rank 0 was busy (sleeping inside its span) for ~the whole makespan;
  // rank 1 spent the window blocked in recv, so nearly all of its wall
  // time is slack under the busy-time definition.
  EXPECT_LT(path.slack_seconds[0], 0.010);
  EXPECT_GT(path.slack_seconds[1], 0.010);
}

}  // namespace
}  // namespace conflux::verify
