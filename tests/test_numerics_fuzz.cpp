// Randomized numerics property test: hash a seed into a point of the
// (backend, matrix kind, N, P, layers) space, run a verified numeric
// factorization, and assert the growth-scaled stability contract. Every
// assertion message carries "failing seed=<s>" so a red run reproduces with
// a one-line unit test. The sweep is deliberately cheap per point (N <= 96)
// so the whole suite stays inside the CI fast job's `ctest -L numerics`.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "support/random.hpp"

namespace conflux::lu {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

struct FuzzPoint {
  const char* algo;
  MatrixKind kind;
  int n;
  int p;
  int layers;  ///< force_layers for the 2.5D backends; 0 = let them choose
};

/// Deterministically expand a seed into a configuration. Every axis uses an
/// independent substream of the hash so adding an option to one axis does
/// not reshuffle the others.
FuzzPoint point_from_seed(std::uint64_t seed) {
  static constexpr const char* kAlgos[] = {"LibSci", "SLATE", "CANDMC",
                                           "COnfLUX", "CALU"};
  // Uniform and DiagDominant keep benign baselines in the mix; the rest are
  // the adversarial families.
  static constexpr MatrixKind kKinds[] = {
      MatrixKind::Uniform,     MatrixKind::DiagDominant,
      MatrixKind::Graded,      MatrixKind::NearSingular,
      MatrixKind::RandSvd,     MatrixKind::Wilkinson};
  static constexpr int kSizes[] = {32, 64, 96};
  static constexpr int kRanks[] = {4, 8, 9, 12};
  FuzzPoint pt;
  pt.algo = kAlgos[splitmix64(seed ^ 0x01) % std::size(kAlgos)];
  pt.kind = kKinds[splitmix64(seed ^ 0x02) % std::size(kKinds)];
  pt.n = kSizes[splitmix64(seed ^ 0x03) % std::size(kSizes)];
  pt.p = kRanks[splitmix64(seed ^ 0x04) % std::size(kRanks)];
  // Only the 2.5D engine honors force_layers; exercise c in {0 (auto), 1, 2}.
  const bool layered = std::string(pt.algo) == "COnfLUX" ||
                       std::string(pt.algo) == "CALU" ||
                       std::string(pt.algo) == "CANDMC";
  pt.layers =
      layered ? static_cast<int>(splitmix64(seed ^ 0x05) % 3) : 0;
  if (pt.layers > 0 && pt.layers * 2 > pt.p) pt.layers = 1;
  return pt;
}

TEST(NumericsFuzz, GrowthScaledStabilityAcrossTheConfigSpace) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const FuzzPoint pt = point_from_seed(seed);
    SCOPED_TRACE(::testing::Message()
                 << "failing seed=" << seed << " (" << pt.algo << ", "
                 << linalg::to_string(pt.kind) << ", n=" << pt.n
                 << ", p=" << pt.p << ", layers=" << pt.layers << ")");
    const Matrix a = generate(pt.n, pt.kind, seed * 7919);
    LuConfig cfg;
    cfg.n = pt.n;
    cfg.p = pt.p;
    cfg.mode = Mode::Numeric;
    cfg.verify = true;
    cfg.force_layers = pt.layers;
    const LuResult res = make_algorithm(pt.algo)->run(&a, cfg);

    ASSERT_TRUE(std::isfinite(res.growth));
    ASSERT_TRUE(std::isfinite(res.residual_eps));
    EXPECT_LE(res.residual_eps, 200.0 * std::max(1.0, res.growth));
    if (pt.kind != MatrixKind::Wilkinson) {
      EXPECT_LT(res.growth, 1e4);
    }
    EXPECT_EQ(res.pivot_stats.rows, pt.n);
    EXPECT_GT(res.pivot_stats.min_abs_u_diag, 0.0);
  }
}

TEST(NumericsFuzz, DrySchedulesAreSeedStableForCalu) {
  // The dry scheduler must not blow up or drift across synthetic-pivot
  // seeds: total volume stays within a few percent (pivot placement only
  // moves bytes between ranks, not in and out of existence).
  LuConfig cfg;
  cfg.n = 128;
  cfg.p = 8;
  cfg.mode = Mode::DryRun;
  const double base = make_algorithm("CALU")->run(nullptr, cfg).total_bytes();
  for (std::uint64_t seed : {17u, 23u, 29u}) {
    cfg.seed = seed;
    const double other =
        make_algorithm("CALU")->run(nullptr, cfg).total_bytes();
    EXPECT_NEAR(other / base, 1.0, 0.05) << "failing seed=" << seed;
  }
}

}  // namespace
}  // namespace conflux::lu
