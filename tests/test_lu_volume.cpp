// Communication-volume properties: the dry-run == numeric invariant that
// licenses the figure-scale dry runs, the paper's volume ordering at scale,
// the model-vs-measured agreement, and the §7.3 ablation claims.
#include <gtest/gtest.h>

#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "models/cost_model.hpp"

namespace conflux::lu {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

LuResult run_mode(const std::string& algo, int n, int p, Mode mode,
                  const Matrix* a = nullptr) {
  LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = mode;
  return make_algorithm(algo)->run(a, cfg);
}

class DryEqualsNumeric
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(DryEqualsNumeric, TotalVolumeWithinTolerance) {
  const auto [algo, n, p] = GetParam();
  const Matrix a = generate(n, MatrixKind::Uniform, 71);
  const LuResult numeric = run_mode(algo, n, p, Mode::Numeric, &a);
  const LuResult dry = run_mode(algo, n, p, Mode::DryRun);
  // Message sizes depend only on index-set cardinalities; the residual
  // difference comes from where data-dependent pivots land (tile-row
  // occupancy, same-owner swap luck). A few percent is the expected band.
  const double ratio = dry.total_bytes() / numeric.total_bytes();
  EXPECT_GT(ratio, 0.93) << algo << " n=" << n << " p=" << p;
  EXPECT_LT(ratio, 1.07) << algo << " n=" << n << " p=" << p;
  EXPECT_EQ(dry.ranks_used, numeric.ranks_used);
  EXPECT_EQ(dry.block, numeric.block);
  EXPECT_EQ(dry.grid, numeric.grid);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DryEqualsNumeric,
    ::testing::Values(std::make_tuple("COnfLUX", 128, 8),
                      std::make_tuple("COnfLUX", 192, 12),
                      std::make_tuple("COnfLUX", 128, 16),
                      std::make_tuple("LibSci", 128, 8),
                      std::make_tuple("LibSci", 192, 9),
                      std::make_tuple("SLATE", 128, 8),
                      std::make_tuple("CANDMC", 128, 16)));

TEST(DryRun, DeterministicAcrossRepeats) {
  const LuResult a = run_mode("COnfLUX", 256, 16, Mode::DryRun);
  const LuResult b = run_mode("COnfLUX", 256, 16, Mode::DryRun);
  EXPECT_EQ(a.total.bytes_sent, b.total.bytes_sent);
  EXPECT_EQ(a.total.messages_sent, b.total.messages_sent);
}

TEST(DryRun, SeedChangesScheduleNotScale) {
  LuConfig cfg;
  cfg.n = 256;
  cfg.p = 16;
  cfg.mode = Mode::DryRun;
  const LuResult a = make_algorithm("COnfLUX")->run(nullptr, cfg);
  cfg.seed = 777;
  const LuResult b = make_algorithm("COnfLUX")->run(nullptr, cfg);
  const double ratio = a.total_bytes() / b.total_bytes();
  EXPECT_GT(ratio, 0.97);
  EXPECT_LT(ratio, 1.03);
}

// The paper's headline ordering (Fig. 6a): at scale COnfLUX < 2D libraries
// < CANDMC (measured). Dry runs at a reduced but representative size.
TEST(Ordering, ConfluxWinsAtScale) {
  const int n = 2048, p = 64;
  const double conflux = run_mode("COnfLUX", n, p, Mode::DryRun).total_bytes();
  const double libsci = run_mode("LibSci", n, p, Mode::DryRun).total_bytes();
  const double slate = run_mode("SLATE", n, p, Mode::DryRun).total_bytes();
  const double candmc = run_mode("CANDMC", n, p, Mode::DryRun).total_bytes();
  EXPECT_LT(conflux, libsci);
  EXPECT_LT(conflux, slate);
  EXPECT_LT(conflux, candmc);
  EXPECT_GT(candmc, libsci);  // CANDMC worst at measured scales
  // 2D twins within a few percent of each other.
  EXPECT_NEAR(libsci / slate, 1.0, 0.1);
}

TEST(Ordering, ReductionGrowsWithRanks) {
  const int n = 2048;
  double prev = 0;
  for (int p : {16, 64, 256}) {
    const double conflux =
        run_mode("COnfLUX", n, p, Mode::DryRun).total_bytes();
    const double libsci = run_mode("LibSci", n, p, Mode::DryRun).total_bytes();
    const double factor = libsci / conflux;
    EXPECT_GT(factor, prev * 0.9) << "p=" << p;
    prev = factor;
  }
  EXPECT_GT(prev, 1.2);
}

TEST(Models, MeasuredWithinBandOfModel) {
  // Table 2 prints measured/modeled with ~100% agreement for COnfLUX and
  // the 2D libraries; our models should predict our simulator within 25%.
  const int n = 2048;
  for (int p : {64, 256}) {
    const auto inst = models::max_replication_instance(n, p);
    for (const char* name : {"LibSci", "SLATE", "COnfLUX"}) {
      const double measured =
          run_mode(name, n, p, Mode::DryRun).total_bytes();
      double modeled = 0;
      for (const auto& m : models::standard_models())
        if (m->name() == name) modeled = m->total_bytes(inst);
      EXPECT_GT(measured / modeled, 0.75) << name << " p=" << p;
      EXPECT_LT(measured / modeled, 1.25) << name << " p=" << p;
    }
  }
}

TEST(Models, LowerBoundBelowMeasuredConflux) {
  const int n = 2048, p = 64;
  const auto inst = models::max_replication_instance(n, p);
  const double bound_bytes =
      models::lu_lower_bound_elements_per_rank(inst) * p * 8.0;
  const double measured = run_mode("COnfLUX", n, p, Mode::DryRun).total_bytes();
  EXPECT_GT(measured, bound_bytes);
  EXPECT_LT(measured, 6.0 * bound_bytes);
}

// ---- Ablations (§7.3 design choices) -------------------------------------

TEST(Ablation, ReplicationReducesVolume) {
  // Lazy 2.5D replication (c > 1) must beat the same algorithm flattened to
  // c = 1 on the same rank budget.
  LuConfig cfg;
  cfg.n = 2048;
  cfg.p = 64;
  cfg.mode = Mode::DryRun;
  cfg.force_layers = 1;
  const double flat =
      make_algorithm("COnfLUX")->run(nullptr, cfg).total_bytes();
  cfg.force_layers = 4;
  const double replicated =
      make_algorithm("COnfLUX")->run(nullptr, cfg).total_bytes();
  EXPECT_LT(replicated, flat);
}

TEST(Ablation, OverReplicationBackfires) {
  // The reduce traffic ~ N^2 c eventually outweighs the multicast savings:
  // the c sweep is U-shaped (the basis of the 2.5D optimum c ~ P^(1/3)).
  LuConfig cfg;
  cfg.n = 1024;
  cfg.p = 64;
  cfg.mode = Mode::DryRun;
  cfg.force_layers = 4;
  const double at_opt =
      make_algorithm("COnfLUX")->run(nullptr, cfg).total_bytes();
  cfg.force_layers = 32;
  const double too_deep =
      make_algorithm("COnfLUX")->run(nullptr, cfg).total_bytes();
  EXPECT_GT(too_deep, at_opt);
}

TEST(Ablation, GridOptimizationSmoothsAwkwardRankCounts) {
  // Fig. 6a inset: at awkward P the greedy grid wastes volume; the
  // optimizer (possibly idling ranks) stays near the smooth curve.
  LuConfig cfg;
  cfg.n = 1024;
  cfg.p = 61;  // prime
  cfg.mode = Mode::DryRun;
  cfg.grid_optimization = true;
  const double optimized =
      make_algorithm("COnfLUX")->run(nullptr, cfg).total_bytes();
  const double libsci_prime =
      run_mode("LibSci", 1024, 61, Mode::DryRun).total_bytes();
  const double libsci_64 =
      run_mode("LibSci", 1024, 64, Mode::DryRun).total_bytes();
  // LibSci's 1 x 61 grid blows up; COnfLUX at 61 stays below LibSci at 64.
  EXPECT_GT(libsci_prime, 2.0 * libsci_64);
  EXPECT_LT(optimized, libsci_prime);
}

TEST(Ablation, BlockSizeSweepIsGentleNearDefault) {
  // Volume as a function of v has a shallow basin: halving/doubling the
  // auto-chosen block must not change volume by more than ~2x.
  LuConfig cfg;
  cfg.n = 1024;
  cfg.p = 27;
  cfg.mode = Mode::DryRun;
  const LuResult base = make_algorithm("COnfLUX")->run(nullptr, cfg);
  for (int v : {base.block / 2, base.block * 2}) {
    if (v < 1 || 1024 % v != 0) continue;
    cfg.block = v;
    const LuResult other = make_algorithm("COnfLUX")->run(nullptr, cfg);
    EXPECT_LT(other.total_bytes(), 2.0 * base.total_bytes()) << "v=" << v;
  }
}

TEST(PerNode, MaxRankWithinFactorOfMean) {
  // Load balance: the busiest rank carries no more than a few times the
  // average (sent+received) volume.
  const LuResult res = run_mode("COnfLUX", 1024, 64, Mode::DryRun);
  const double mean =
      2.0 * res.total_bytes() / res.ranks_used;  // sent + received
  EXPECT_LT(static_cast<double>(res.max_rank_bytes), 6.0 * mean);
}

TEST(WeakScaling, TwoPointFiveDStaysFlat) {
  // Fig. 6b: with N = n0 * P^(1/3), per-node volume is ~constant for 2.5D
  // and grows ~P^(1/6) for 2D.
  const double conflux_small =
      run_mode("COnfLUX", 512, 8, Mode::DryRun).bytes_per_rank();
  const double conflux_large =
      run_mode("COnfLUX", 1024, 64, Mode::DryRun).bytes_per_rank();
  EXPECT_LT(conflux_large / conflux_small, 1.6);

  const double libsci_small =
      run_mode("LibSci", 512, 8, Mode::DryRun).bytes_per_rank();
  const double libsci_large =
      run_mode("LibSci", 1024, 64, Mode::DryRun).bytes_per_rank();
  // 2D grows by ~ (64/8)^(1/6) * (volume mix) — noticeably more than 2.5D.
  EXPECT_GT(libsci_large / libsci_small, conflux_large / conflux_small);
}

}  // namespace
}  // namespace conflux::lu
