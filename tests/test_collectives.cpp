// Tests for the group collectives: correctness over rank-count sweeps,
// exact byte accounting of the tree shapes, ghost/real volume equivalence.
#include <gtest/gtest.h>

#include <cmath>

#include "simnet/collectives.hpp"
#include "simnet/spmd.hpp"

namespace conflux::simnet {
namespace {

class CollectiveP : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveP, BcastDeliversToAll) {
  const int p = GetParam();
  run_spmd(p, [&](Comm& comm) {
    const Group g = Group::iota(p);
    for (int root = 0; root < std::min(p, 3); ++root) {
      std::vector<double> data;
      if (comm.rank() == g.at(root))
        data = {1.0, 2.0, 3.0};
      bcast(comm, g, root, data, make_tag(1, static_cast<std::uint32_t>(root)));
      ASSERT_EQ(data.size(), 3u);
      EXPECT_EQ(data[2], 3.0);
    }
  });
}

TEST_P(CollectiveP, BcastVolumeIsTreeExact) {
  const int p = GetParam();
  Network net(p);
  run_spmd(net, [&](Comm& comm) {
    const Group g = Group::iota(p);
    std::vector<double> data(100, comm.rank() == 0 ? 1.0 : 0.0);
    bcast(comm, g, 0, data, make_tag(1, 0));
  });
  // A binomial tree transfers the buffer exactly p-1 times.
  EXPECT_EQ(net.stats().total().bytes_sent,
            static_cast<std::uint64_t>(p - 1) * 100 * sizeof(double));
}

TEST_P(CollectiveP, BcastGhostMatchesRealVolume) {
  const int p = GetParam();
  Network real(p), ghost(p);
  run_spmd(real, [&](Comm& comm) {
    const Group g = Group::iota(p);
    std::vector<double> data(57);
    bcast(comm, g, 0, data, make_tag(1, 0));
  });
  run_spmd(ghost, [&](Comm& comm) {
    const Group g = Group::iota(p);
    const std::size_t n =
        bcast_ghost(comm, g, 0, 57 * sizeof(double), make_tag(1, 0));
    EXPECT_EQ(n, 57 * sizeof(double));
  });
  EXPECT_EQ(real.stats().total().bytes_sent, ghost.stats().total().bytes_sent);
  EXPECT_EQ(real.stats().total().messages_sent,
            ghost.stats().total().messages_sent);
}

TEST_P(CollectiveP, ReduceSumsElementwise) {
  const int p = GetParam();
  run_spmd(p, [&](Comm& comm) {
    const Group g = Group::iota(p);
    std::vector<double> mine = {1.0, static_cast<double>(comm.rank())};
    reduce_sum(comm, g, 0, mine, make_tag(2, 0));
    if (comm.rank() == 0) {
      EXPECT_EQ(mine[0], static_cast<double>(p));
      EXPECT_EQ(mine[1], static_cast<double>(p * (p - 1) / 2));
    }
  });
}

TEST_P(CollectiveP, ReduceGhostMatchesRealVolume) {
  const int p = GetParam();
  Network real(p), ghost(p);
  run_spmd(real, [&](Comm& comm) {
    const Group g = Group::iota(p);
    std::vector<double> mine(31, 1.0);
    reduce_sum(comm, g, 0, mine, make_tag(2, 0));
  });
  run_spmd(ghost, [&](Comm& comm) {
    const Group g = Group::iota(p);
    reduce_ghost(comm, g, 0, 31 * sizeof(double), make_tag(2, 0));
  });
  EXPECT_EQ(real.stats().total().bytes_sent, ghost.stats().total().bytes_sent);
}

TEST_P(CollectiveP, AllreduceGivesEveryoneTheSum) {
  const int p = GetParam();
  run_spmd(p, [&](Comm& comm) {
    const Group g = Group::iota(p);
    std::vector<double> mine = {static_cast<double>(comm.rank() + 1)};
    allreduce_sum(comm, g, mine, make_tag(3, 0));
    EXPECT_EQ(mine[0], static_cast<double>(p * (p + 1) / 2));
  });
}

TEST_P(CollectiveP, MaxlocFindsGlobalWinner) {
  const int p = GetParam();
  run_spmd(p, [&](Comm& comm) {
    const Group g = Group::iota(p);
    // Rank p/2 holds the largest value.
    const double val = comm.rank() == p / 2 ? 100.0 : comm.rank();
    const MaxLoc win =
        allreduce_maxloc(comm, g, {val, comm.rank() * 10}, make_tag(4, 0));
    EXPECT_EQ(win.value, 100.0);
    EXPECT_EQ(win.location, (p / 2) * 10);
  });
}

TEST_P(CollectiveP, MaxlocTieBreaksOnLowestLocation) {
  const int p = GetParam();
  if (p < 2) GTEST_SKIP();
  run_spmd(p, [&](Comm& comm) {
    const Group g = Group::iota(p);
    const MaxLoc win =
        allreduce_maxloc(comm, g, {5.0, comm.rank()}, make_tag(4, 1));
    EXPECT_EQ(win.location, 0);
  });
}

TEST_P(CollectiveP, GatherCollectsInGroupOrder) {
  const int p = GetParam();
  run_spmd(p, [&](Comm& comm) {
    const Group g = Group::iota(p);
    const std::vector<double> mine(static_cast<std::size_t>(comm.rank() + 1),
                                   static_cast<double>(comm.rank()));
    const auto parts = gather(comm, g, 0, mine, make_tag(5, 0));
    if (comm.rank() == 0) {
      ASSERT_EQ(parts.size(), static_cast<std::size_t>(p));
      for (int r = 0; r < p; ++r) {
        ASSERT_EQ(parts[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        if (r > 0) {
          EXPECT_EQ(parts[static_cast<std::size_t>(r)][0],
                    static_cast<double>(r));
        }
      }
    } else {
      EXPECT_TRUE(parts.empty());
    }
  });
}

TEST_P(CollectiveP, BarrierSynchronizesWithZeroBytes) {
  const int p = GetParam();
  Network net(p);
  run_spmd(net, [&](Comm& comm) {
    const Group g = Group::iota(p);
    barrier(comm, g, make_tag(6, 0));
    barrier(comm, g, make_tag(6, 1));
  });
  EXPECT_EQ(net.stats().total().bytes_sent, 0u);
  if (p > 1) {
    EXPECT_GT(net.stats().total().messages_sent, 0u);
  }
}

TEST_P(CollectiveP, BcastIntsDelivers) {
  const int p = GetParam();
  run_spmd(p, [&](Comm& comm) {
    const Group g = Group::iota(p);
    std::vector<int> data;
    if (comm.rank() == 0) data = {3, -1, 4, 1 << 20, 5};
    bcast_ints(comm, g, 0, data, make_tag(7, 0));
    EXPECT_EQ(data, (std::vector<int>{3, -1, 4, 1 << 20, 5}));
  });
}

TEST_P(CollectiveP, BcastIntsVolumeIsExactly4BytesPerElement) {
  // The packed int path must account exactly sizeof(int) per element per
  // tree edge — the same volume a ghost broadcast of the int payload
  // reports (volume parity between the real and dry-run paths).
  const int p = GetParam();
  const std::size_t count = 57;
  Network real(p), ghost(p);
  run_spmd(real, [&](Comm& comm) {
    const Group g = Group::iota(p);
    std::vector<int> data;
    if (comm.rank() == 0) data.assign(count, 9);
    bcast_ints(comm, g, 0, data, make_tag(7, 1));
  });
  run_spmd(ghost, [&](Comm& comm) {
    const Group g = Group::iota(p);
    (void)bcast_ghost(comm, g, 0, count * sizeof(int), make_tag(7, 1));
  });
  EXPECT_EQ(real.stats().total().bytes_sent,
            static_cast<std::uint64_t>(p - 1) * count * sizeof(int));
  EXPECT_EQ(real.stats().total().bytes_sent, ghost.stats().total().bytes_sent);
  EXPECT_EQ(real.stats().total().messages_sent,
            ghost.stats().total().messages_sent);
}

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectiveP,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 16, 17));

TEST(Group, IndexOfAndIota) {
  const Group g = Group::iota(4);
  EXPECT_EQ(g.size(), 4);
  EXPECT_EQ(g.index_of(2), 2);
  EXPECT_EQ(g.index_of(9), -1);
}

TEST(Group, SubgroupCollective) {
  // A collective on a non-contiguous subgroup of a larger world.
  run_spmd(6, [](Comm& comm) {
    const Group g{{1, 3, 5}};
    if (g.index_of(comm.rank()) < 0) return;
    std::vector<double> mine = {1.0};
    allreduce_sum(comm, g, mine, make_tag(8, 0));
    EXPECT_EQ(mine[0], 3.0);
  });
}

TEST(Group, RootedBcastFromNonZeroRoot) {
  run_spmd(5, [](Comm& comm) {
    const Group g = Group::iota(5);
    std::vector<double> data;
    if (comm.rank() == 3) data = {9.0};
    bcast(comm, g, 3, data, make_tag(9, 0));
    EXPECT_EQ(data.at(0), 9.0);
  });
}

}  // namespace
}  // namespace conflux::simnet
