// Tests for ConfScope's span recorder: balanced instrumentation and byte
// attribution across every registered backend, the zero-allocation
// disabled-mode contract, wait-sample and queue-high-water-mark fabric
// metrics, and the Chrome-trace export's JSON validity.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cholesky/cholesky_common.hpp"
#include "factor/factorization.hpp"
#include "lu/lu_common.hpp"
#include "simnet/comm.hpp"
#include "simnet/network.hpp"
#include "simnet/spmd.hpp"
#include "support/telemetry.hpp"
#include "verify/commcheck.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}

// Counting global allocator so the disabled-mode test can prove ScopedSpan
// with a null board allocates nothing on the hot path. new and delete are
// replaced as a matched malloc/free pair; GCC's mismatch heuristic cannot
// see that both replacements are active at once, hence the pragma.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace conflux {
namespace {

/// Minimal recursive-descent JSON validity checker — enough to prove the
/// Chrome-trace export is loadable by a real parser.
class JsonChecker {
 public:
  static bool valid(const std::string& s) {
    JsonChecker c(s);
    return c.value() && (c.ws(), c.i_ == s.size());
  }

 private:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  void ws() {
    while (i_ < s_.size() && (s_[i_] == ' ' || s_[i_] == '\n' ||
                              s_[i_] == '\r' || s_[i_] == '\t'))
      ++i_;
  }
  bool lit(const char* t) {
    const std::size_t len = std::strlen(t);
    if (s_.compare(i_, len, t) != 0) return false;
    i_ += len;
    return true;
  }
  bool string() {
    if (i_ >= s_.size() || s_[i_] != '"') return false;
    for (++i_; i_ < s_.size(); ++i_) {
      if (s_[i_] == '\\')
        ++i_;
      else if (s_[i_] == '"') {
        ++i_;
        return true;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = i_;
    if (i_ < s_.size() && s_[i_] == '-') ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) != 0 ||
            s_[i_] == '.' || s_[i_] == 'e' || s_[i_] == 'E' ||
            s_[i_] == '+' || s_[i_] == '-'))
      ++i_;
    return i_ > start;
  }
  bool value() {
    ws();
    if (i_ >= s_.size()) return false;
    switch (s_[i_]) {
      case '{': {
        ++i_;
        ws();
        if (i_ < s_.size() && s_[i_] == '}') return ++i_, true;
        while (true) {
          ws();
          if (!string()) return false;
          ws();
          if (i_ >= s_.size() || s_[i_] != ':') return false;
          ++i_;
          if (!value()) return false;
          ws();
          if (i_ < s_.size() && s_[i_] == ',') {
            ++i_;
            continue;
          }
          return i_ < s_.size() && s_[i_] == '}' && (++i_, true);
        }
      }
      case '[': {
        ++i_;
        ws();
        if (i_ < s_.size() && s_[i_] == ']') return ++i_, true;
        while (true) {
          if (!value()) return false;
          ws();
          if (i_ < s_.size() && s_[i_] == ',') {
            ++i_;
            continue;
          }
          return i_ < s_.size() && s_[i_] == ']' && (++i_, true);
        }
      }
      case '"':
        return string();
      case 't':
        return lit("true");
      case 'f':
        return lit("false");
      case 'n':
        return lit("null");
      default:
        return number();
    }
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

/// Dry-run one registered backend with the board attached (the commcheck
/// configuration, minus the verifier).
factor::FactorResult run_with_board(const verify::Backend& backend,
                                    telemetry::TelemetryBoard* board, int n,
                                    int p) {
  factor::FactorConfig base;
  base.n = n;
  base.p = p;
  base.mode = factor::Mode::DryRun;
  base.verify = false;
  base.telemetry = board;
  if (backend.family == "LU") {
    lu::LuConfig cfg;
    static_cast<factor::FactorConfig&>(cfg) = base;
    return lu::make_algorithm(backend.name)->run(nullptr, cfg);
  }
  cholesky::CholConfig cfg;
  static_cast<factor::FactorConfig&>(cfg) = base;
  return cholesky::make_cholesky_algorithm(backend.name)->run(nullptr, cfg);
}

TEST(Telemetry, SpansBalancedAndBytesAttributedOnEveryBackend) {
  const std::set<std::string> known = {
      telemetry::kLayerReduction, telemetry::kPanelTournament,
      telemetry::kPanelFactor,    telemetry::kPivotApply,
      telemetry::kTrsm,           telemetry::kSchurUpdate};
  for (const verify::Backend& b : verify::registered_backends()) {
    telemetry::TelemetryBoard board;
    const factor::FactorResult run = run_with_board(b, &board, 128, 8);
    EXPECT_TRUE(board.balanced()) << b.family << "/" << b.name;

    std::uint64_t spans = 0;
    for (int r = 0; r < board.nranks(); ++r)
      spans += board.rank_spans(r).size();
    EXPECT_GT(spans, 0u) << b.family << "/" << b.name;

    // Every span uses a canonical phase name, and every wire byte the run
    // sent is attributed to some phase (no instrumentation gaps).
    std::uint64_t phase_bytes = 0;
    for (const auto& [name, total] : board.phase_totals()) {
      EXPECT_TRUE(known.count(name) != 0)
          << b.family << "/" << b.name << " unknown phase " << name;
      phase_bytes += total.bytes;
    }
    EXPECT_EQ(phase_bytes, run.total.bytes_sent) << b.family << "/" << b.name;

    // Telemetry's wall covers the spans; busy + blocked stays within it.
    EXPECT_GT(board.wall_seconds(), 0.0);
    for (int r = 0; r < board.nranks(); ++r)
      EXPECT_LE(board.busy_seconds(r),
                board.wall_seconds() + 1e-9)
          << b.family << "/" << b.name << " rank " << r;
  }
}

TEST(Telemetry, DisabledSpansAllocateNothing) {
  // The zero-overhead contract: a null board makes ScopedSpan a pair of
  // pointer tests — no clock read, no allocation.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    const telemetry::ScopedSpan span(nullptr, 0, telemetry::kSchurUpdate, i);
  }
  EXPECT_EQ(g_allocations.load(std::memory_order_relaxed), before);
}

TEST(Telemetry, WaitSamplesAttributeBlockedTimeToSourceAndTag) {
  simnet::Network net(2);
  telemetry::TelemetryBoard board;
  net.set_telemetry(&board);
  simnet::run_spmd(net, [](simnet::Comm& comm) {
    if (comm.rank() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      comm.send(1, 7, std::vector<double>(4));
    } else {
      (void)comm.recv_view(0, 7);
    }
  });
  const std::vector<telemetry::WaitSample>& waits = board.rank_waits(1);
  ASSERT_EQ(waits.size(), 1u);
  EXPECT_EQ(waits[0].src, 0);
  EXPECT_EQ(waits[0].tag, 7u);
  EXPECT_EQ(waits[0].bytes, 4 * sizeof(double));
  // Rank 1 sat parked through most of the sender's 20 ms sleep.
  EXPECT_GE(waits[0].ns, 10u * 1000 * 1000);
  EXPECT_GE(board.blocked_seconds(1), 0.010);
  EXPECT_EQ(board.rank_waits(0).size(), 0u);
}

TEST(Telemetry, QueueHighWaterMarkSeesReceiverBacklog) {
  simnet::Network net(2);
  telemetry::TelemetryBoard board;
  net.set_telemetry(&board);
  simnet::run_spmd(net, [](simnet::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 5; ++i)
        comm.send(1, 1, std::vector<double>{static_cast<double>(i)});
      comm.send_ghost(1, 2, 0);
    } else {
      // Channel FIFO: the ghost arrives after all five payloads are queued,
      // so the inbound backlog reached at least 5 before the first pop.
      (void)comm.recv_ghost(0, 2);
      for (int i = 0; i < 5; ++i)
        EXPECT_EQ(comm.recv_view(0, 1)[0], static_cast<double>(i));
    }
  });
  EXPECT_GE(board.queue_hwm(1), 5);
  EXPECT_EQ(board.queue_hwm(0), 0);
}

TEST(Telemetry, BytesLandOnTheSendersInnermostSpan) {
  simnet::Network net(2);
  telemetry::TelemetryBoard board;
  net.set_telemetry(&board);
  simnet::run_spmd(net, [&](simnet::Comm& comm) {
    if (comm.rank() == 0) {
      const telemetry::ScopedSpan outer(&board, 0, telemetry::kSchurUpdate);
      comm.send(1, 1, std::vector<double>(3));
      {
        const telemetry::ScopedSpan inner(&board, 0,
                                          telemetry::kLayerReduction);
        comm.send(1, 2, std::vector<double>(5));
      }
    } else {
      (void)comm.recv_view(0, 1);
      (void)comm.recv_view(0, 2);
    }
  });
  const auto totals = board.phase_totals();
  ASSERT_TRUE(totals.count(telemetry::kSchurUpdate) != 0);
  ASSERT_TRUE(totals.count(telemetry::kLayerReduction) != 0);
  EXPECT_EQ(totals.at(telemetry::kSchurUpdate).bytes, 3 * sizeof(double));
  EXPECT_EQ(totals.at(telemetry::kLayerReduction).bytes, 5 * sizeof(double));
}

TEST(Telemetry, CountersMergeByName) {
  telemetry::TelemetryBoard board(2);
  board.add_counter(0, "steps");
  board.add_counter(0, "steps", 2);
  board.add_counter(0, "spills", 7);
  ASSERT_EQ(board.rank_counters(0).size(), 2u);
  EXPECT_EQ(board.rank_counters(0)[0].value, 3u);
  EXPECT_EQ(board.rank_counters(0)[1].value, 7u);
  EXPECT_EQ(board.rank_counters(1).size(), 0u);
}

TEST(Telemetry, PhaseTotalsUseExclusiveTime) {
  telemetry::TelemetryBoard board(1);
  board.open_span(0, telemetry::kSchurUpdate);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  board.open_span(0, telemetry::kLayerReduction);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  board.close_span(0);
  board.close_span(0);
  const auto totals = board.phase_totals();
  // The nested 10 ms belongs to layer_reduction alone; schur_update keeps
  // only its ~5 ms of self time.
  EXPECT_GE(totals.at(telemetry::kLayerReduction).seconds, 0.008);
  EXPECT_LT(totals.at(telemetry::kSchurUpdate).seconds, 0.010);
  EXPECT_GE(totals.at(telemetry::kSchurUpdate).seconds, 0.002);
}

TEST(Telemetry, ChromeTraceIsValidLoadableJson) {
  telemetry::TelemetryBoard board;
  (void)run_with_board({"LU", "COnfLUX"}, &board, 128, 4);
  std::ostringstream os;
  telemetry::write_chrome_trace(os, board, "COnfLUX");
  const std::string trace = os.str();
  EXPECT_TRUE(JsonChecker::valid(trace)) << trace.substr(0, 400);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("panel_tournament"), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("process_name"), std::string::npos);
}

TEST(Telemetry, MultiProcessTraceKeepsOnePidPerBoard) {
  telemetry::TelemetryBoard a(1), b(1);
  a.open_span(0, telemetry::kTrsm);
  a.close_span(0);
  b.open_span(0, telemetry::kPivotApply);
  b.close_span(0);
  std::ostringstream os;
  {
    telemetry::ChromeTraceWriter writer(os);
    writer.add_process(0, "first", a);
    writer.add_process(1, "second", b);
  }  // destructor finishes the document
  const std::string trace = os.str();
  EXPECT_TRUE(JsonChecker::valid(trace));
  EXPECT_NE(trace.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(trace.find("first"), std::string::npos);
  EXPECT_NE(trace.find("second"), std::string::npos);
}

}  // namespace
}  // namespace conflux
