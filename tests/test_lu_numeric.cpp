// Numerical correctness of all four distributed LU implementations:
// residual ||LU - PA|| across algorithms, matrix families, rank counts and
// block sizes — including true 2.5D grids with replication.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"

namespace conflux::lu {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

constexpr double kTol = 1e-11;

LuResult run_numeric(const std::string& algo, const Matrix& a, int p,
                     int block = 0, int force_layers = 0) {
  LuConfig cfg;
  cfg.n = a.rows();
  cfg.p = p;
  cfg.block = block;
  cfg.force_layers = force_layers;
  cfg.mode = Mode::Numeric;
  return make_algorithm(algo)->run(&a, cfg);
}

class AlgoRanks
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(AlgoRanks, FactorsUniformMatrix) {
  const auto [algo, p] = GetParam();
  const Matrix a = generate(96, MatrixKind::Uniform, 51);
  const LuResult res = run_numeric(algo, a, p);
  EXPECT_LT(res.residual, kTol) << res.grid;
  EXPECT_LE(res.ranks_used, p);
  EXPECT_EQ(res.ranks_available, p);
  EXPECT_GT(res.block, 0);
}

TEST_P(AlgoRanks, FactorsInteractionMatrix) {
  const auto [algo, p] = GetParam();
  const Matrix a = generate(64, MatrixKind::Interaction, 52);
  EXPECT_LT(run_numeric(algo, a, p).residual, kTol);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgoRanks,
    ::testing::Combine(::testing::Values("COnfLUX", "LibSci", "SLATE",
                                         "CANDMC"),
                       ::testing::Values(1, 2, 4, 8, 9, 12, 16, 18)));

class AlgoKinds
    : public ::testing::TestWithParam<std::tuple<const char*, MatrixKind>> {};

TEST_P(AlgoKinds, ResidualSmallAcrossFamilies) {
  const auto [algo, kind] = GetParam();
  const Matrix a = generate(100, kind, 53);
  const LuResult res = run_numeric(algo, a, 4);
  EXPECT_LT(res.residual, kTol);
  EXPECT_GE(res.growth, 0.9);  // max|U| >= max|A| row after pivoting... loose
}

INSTANTIATE_TEST_SUITE_P(
    Families, AlgoKinds,
    ::testing::Combine(::testing::Values("COnfLUX", "LibSci", "SLATE",
                                         "CANDMC"),
                       ::testing::Values(MatrixKind::Uniform,
                                         MatrixKind::DiagDominant,
                                         MatrixKind::Interaction,
                                         MatrixKind::Laplace2D)));

class ConfluxBlocks : public ::testing::TestWithParam<int> {};

TEST_P(ConfluxBlocks, ExplicitBlockSizes) {
  const int v = GetParam();
  const Matrix a = generate(96, MatrixKind::Uniform, 54);
  const LuResult res = run_numeric("COnfLUX", a, 8, v);
  EXPECT_EQ(res.block, v);
  EXPECT_LT(res.residual, kTol);
}

INSTANTIATE_TEST_SUITE_P(Widths, ConfluxBlocks,
                         ::testing::Values(4, 8, 12, 16, 24, 32, 48, 96));

class ConfluxLayers : public ::testing::TestWithParam<int> {};

TEST_P(ConfluxLayers, ForcedReplicationDepths) {
  const int c = GetParam();
  const Matrix a = generate(80, MatrixKind::Uniform, 55);
  LuConfig cfg;
  cfg.n = 80;
  cfg.p = 16;
  cfg.force_layers = c;
  const LuResult real = make_algorithm("COnfLUX")->run(&a, cfg);
  EXPECT_LT(real.residual, kTol) << real.grid;
  // Grid string records the forced depth.
  EXPECT_NE(real.grid.find("x " + std::to_string(c) + "]"), std::string::npos)
      << real.grid;
}

INSTANTIATE_TEST_SUITE_P(Depths, ConfluxLayers, ::testing::Values(1, 2, 4));

TEST(Conflux, SingleStepWholeMatrixBlock) {
  // v = N degenerates to one tournament over the whole matrix.
  const Matrix a = generate(32, MatrixKind::Uniform, 56);
  const LuResult res = run_numeric("COnfLUX", a, 4, 32);
  EXPECT_LT(res.residual, kTol);
}

TEST(Conflux, PivotGrowthComparableToGepp) {
  const Matrix a = generate(128, MatrixKind::Uniform, 57);
  const LuResult conflux = run_numeric("COnfLUX", a, 8);
  const LuResult gepp = run_numeric("LibSci", a, 8);
  // Tournament pivoting is as stable as partial pivoting in practice [29].
  EXPECT_LT(conflux.growth, 10.0 * gepp.growth + 1.0);
}

TEST(Conflux, DeterministicAcrossRankCounts) {
  // Different grids factor the same matrix; residuals all tiny and the
  // pivot growth identical up to roundoff noise.
  const Matrix a = generate(64, MatrixKind::Uniform, 58);
  const double r1 = run_numeric("COnfLUX", a, 2).residual;
  const double r2 = run_numeric("COnfLUX", a, 16).residual;
  EXPECT_LT(r1, kTol);
  EXPECT_LT(r2, kTol);
}

TEST(Scalapack, BlockSizeSweep) {
  const Matrix a = generate(96, MatrixKind::Uniform, 59);
  for (int nb : {4, 8, 16, 32, 96}) {
    const LuResult res = run_numeric("LibSci", a, 6, nb);
    EXPECT_LT(res.residual, kTol) << "nb=" << nb;
  }
}

TEST(Scalapack, MatchesSequentialPivotChoice) {
  // With P = 1 the 2D algorithm degenerates to GEPP: growth must equal the
  // sequential factorization's exactly.
  const Matrix a = generate(64, MatrixKind::Uniform, 60);
  const LuResult p1 = run_numeric("LibSci", a, 1);
  const LuResult p4 = run_numeric("LibSci", a, 4);
  EXPECT_NEAR(p1.growth, p4.growth, 1e-9);  // same pivots on any grid
}

TEST(Candmc, ReplicatedLayersStayCoherent) {
  const Matrix a = generate(64, MatrixKind::Uniform, 61);
  LuConfig cfg;
  cfg.n = 64;
  cfg.p = 18;  // 2 layers x (3 x 3)
  cfg.force_layers = 2;
  const LuResult res = make_algorithm("CANDMC")->run(&a, cfg);
  EXPECT_LT(res.residual, kTol) << res.grid;
  EXPECT_EQ(res.ranks_used, 18);
}

TEST(Interface, UnknownAlgorithmThrows) {
  EXPECT_THROW(make_algorithm("HPL"), ContractViolation);
}

TEST(Interface, AllAlgorithmsEnumerated) {
  const auto algos = all_algorithms();
  ASSERT_EQ(algos.size(), 5u);
  EXPECT_EQ(algos[0]->name(), "LibSci");
  EXPECT_EQ(algos[3]->name(), "COnfLUX");
  EXPECT_EQ(algos[4]->name(), "CALU");
}

TEST(Interface, NumericModeRequiresMatrix) {
  LuConfig cfg;
  cfg.n = 32;
  cfg.p = 2;
  cfg.mode = Mode::Numeric;
  EXPECT_THROW(make_algorithm("COnfLUX")->run(nullptr, cfg),
               ContractViolation);
}

TEST(Interface, ResultCarriesVolumeInvariants) {
  const Matrix a = generate(64, MatrixKind::Uniform, 62);
  const LuResult res = run_numeric("COnfLUX", a, 8);
  EXPECT_EQ(res.total.bytes_sent, res.total.bytes_received);
  EXPECT_GT(res.total.messages_sent, 0u);
  EXPECT_GE(res.max_rank_bytes, res.total_bytes() / (2 * res.ranks_used));
  EXPECT_GT(res.bytes_per_rank(), 0.0);
}

TEST(Interface, SyntheticPivotsAreSpreadAndComplete) {
  std::vector<std::uint8_t> pivoted(64, 0);
  const auto piv = synthetic_pivots(pivoted, 64, 16, 0, 42);
  ASSERT_EQ(piv.size(), 16u);
  std::set<int> uniq(piv.begin(), piv.end());
  EXPECT_EQ(uniq.size(), 16u);
  // Spread: not all from one 16-row tile.
  int low = 0;
  for (int r : piv)
    if (r < 16) ++low;
  EXPECT_LT(low, 12);
}

}  // namespace
}  // namespace conflux::lu
