// Adversarial numerics wall: every LU backend must stay backward-stable on
// the generator's hostile matrix families (graded/ill-scaled, near-singular,
// prescribed-condition randsvd), with element growth bounded by the
// documented pivoting-strategy limits. Wilkinson's worst-case matrix is the
// known exception: ALL row-pivoting strategies — partial and tournament
// alike — are fooled into the no-swap trap and attain 2^(n-1) growth, so
// bounds are growth-scaled rather than absolute. The suite also pins the
// CALU-specific contracts: dry == numeric communication volume, and total
// volume within 1.1x of COnfLUX (the tournament tree sends Px - 1 messages
// per panel against the butterfly's ~Px log2 Px).
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"

namespace conflux::lu {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

LuResult run_verified(const std::string& algo, const Matrix& a, int p) {
  LuConfig cfg;
  cfg.n = a.rows();
  cfg.p = p;
  cfg.mode = Mode::Numeric;
  cfg.verify = true;
  return make_algorithm(algo)->run(&a, cfg);
}

constexpr const char* kAllAlgos[] = {"LibSci", "SLATE", "CANDMC", "COnfLUX",
                                     "CALU"};

// ---- every backend x every adversarial kind ------------------------------

class AdversarialNumerics
    : public ::testing::TestWithParam<std::tuple<const char*, MatrixKind>> {};

TEST_P(AdversarialNumerics, ResidualBoundedByGrowth) {
  const auto [algo, kind] = GetParam();
  const int n = 64, p = 8;
  const Matrix a = generate(n, kind, 101);
  const LuResult res = run_verified(algo, a, p);

  // Backward stability: ||PA - LU|| / (||A|| n eps) <= C * growth is the
  // classic LU error bound; C = 100 leaves an order of magnitude of slack
  // over what the simulator actually produces.
  ASSERT_TRUE(std::isfinite(res.growth)) << algo;
  EXPECT_GT(res.growth, 0.0) << algo;
  ASSERT_TRUE(std::isfinite(res.residual_eps)) << algo;
  EXPECT_LE(res.residual_eps, 100.0 * std::max(1.0, res.growth))
      << algo << " on " << linalg::to_string(kind);

  // Pivot-sequence instrumentation is populated and sane.
  EXPECT_EQ(res.pivot_stats.rows, n) << algo;
  EXPECT_GE(res.pivot_stats.off_natural, 0) << algo;
  EXPECT_LE(res.pivot_stats.off_natural, n) << algo;
  EXPECT_GT(res.pivot_stats.min_abs_u_diag, 0.0) << algo;
  EXPECT_GE(res.pivot_stats.max_abs_u_diag, res.pivot_stats.min_abs_u_diag)
      << algo;
}

TEST_P(AdversarialNumerics, GrowthBoundedOffWilkinson) {
  const auto [algo, kind] = GetParam();
  if (kind == MatrixKind::Wilkinson) GTEST_SKIP();
  const Matrix a = generate(64, kind, 103);
  const LuResult res = run_verified(algo, a, 8);
  // Away from the engineered worst case, every strategy keeps growth modest
  // (measured values are < 20; 1e3 is the alarm threshold).
  EXPECT_LT(res.growth, 1e3) << algo << " on " << linalg::to_string(kind);
}

std::vector<std::tuple<const char*, MatrixKind>> adversarial_grid() {
  std::vector<std::tuple<const char*, MatrixKind>> out;
  for (const char* algo : kAllAlgos)
    for (MatrixKind kind : linalg::adversarial_kinds())
      out.emplace_back(algo, kind);
  return out;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, AdversarialNumerics,
                         ::testing::ValuesIn(adversarial_grid()));

// ---- Wilkinson: the universal no-swap trap -------------------------------

TEST(Wilkinson, EveryStrategyHitsExponentialGrowth) {
  // W(n) has |column maxima| on the diagonal at every elimination step, so
  // partial pivoting never swaps — and the tournament's GEPP-ranked merge
  // reproduces the same choice. Growth is exactly 2^(n-1) for everyone;
  // tournament pivoting is NOT a stability upgrade here, which is the point
  // of keeping this family in the wall.
  const int n = 64;
  const Matrix a = generate(n, MatrixKind::Wilkinson, 107);
  for (const char* algo : kAllAlgos) {
    const LuResult res = run_verified(algo, a, 8);
    EXPECT_GT(std::log2(res.growth), n - 4.0) << algo;
    // No strategy moves a row: the pivot sequence is the natural order.
    EXPECT_EQ(res.pivot_stats.off_natural, 0) << algo;
  }
}

TEST(Wilkinson, TournamentGrowthWithinDocumentedBound) {
  // CALU's worst-case bound (arXiv 0808.2664, Thm 2.3-style): growth is at
  // most 2^(n (log2 P + 1)) — exponentially weaker than GEPP's 2^(n-1) in
  // the exponent, but still a bound. Compare in log space; the bound itself
  // overflows a double long before the measured growth does.
  const int n = 64, p = 8;
  const Matrix a = generate(n, MatrixKind::Wilkinson, 109);
  const LuResult res = run_verified("CALU", a, p);
  const double log2_bound = n * (std::log2(static_cast<double>(p)) + 1.0);
  EXPECT_LE(std::log2(res.growth), log2_bound);
}

// ---- CALU communication contracts ----------------------------------------

class CaluDryParity
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CaluDryParity, DryEqualsNumericVolume) {
  const auto [n, p] = GetParam();
  const Matrix a = generate(n, MatrixKind::Uniform, 113);
  LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = Mode::Numeric;
  const LuResult numeric = make_algorithm("CALU")->run(&a, cfg);
  const LuResult dry =
      make_algorithm("CALU")->run(nullptr, cfg.with_mode(Mode::DryRun));
  const double ratio = dry.total_bytes() / numeric.total_bytes();
  EXPECT_GT(ratio, 0.93) << "n=" << n << " p=" << p;
  EXPECT_LT(ratio, 1.07) << "n=" << n << " p=" << p;
  EXPECT_EQ(dry.ranks_used, numeric.ranks_used);
  EXPECT_EQ(dry.block, numeric.block);
  EXPECT_EQ(dry.grid, numeric.grid);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CaluDryParity,
                         ::testing::Values(std::make_tuple(128, 8),
                                           std::make_tuple(192, 12),
                                           std::make_tuple(128, 16)));

TEST(CaluVolume, WithinElevenTenthsOfConflux) {
  // Acceptance bound: the reduction tree can only remove tournament
  // traffic relative to the butterfly, so CALU stays within 1.1x of
  // COnfLUX on every grid (and in practice below it).
  LuConfig cfg;
  cfg.mode = Mode::DryRun;
  for (const auto& [n, p] : {std::pair{512, 16}, std::pair{1024, 64},
                             std::pair{2048, 64}}) {
    cfg.n = n;
    cfg.p = p;
    const double conflux =
        make_algorithm("COnfLUX")->run(nullptr, cfg).total_bytes();
    const double calu =
        make_algorithm("CALU")->run(nullptr, cfg).total_bytes();
    EXPECT_LT(calu, 1.1 * conflux) << "n=" << n << " p=" << p;
  }
}

TEST(CaluNumerics, MatchesConfluxFactorsOnSameProblem) {
  // Same engine, same tournament_round merge in global row order: both
  // topologies select identical pivots on a generic matrix, so the
  // factorizations agree to rounding.
  const int n = 64;
  const Matrix a = generate(n, MatrixKind::Uniform, 127);
  const LuResult conflux = run_verified("COnfLUX", a, 8);
  const LuResult calu = run_verified("CALU", a, 8);
  EXPECT_NEAR(calu.residual, conflux.residual, 1e-15);
  EXPECT_NEAR(calu.growth, conflux.growth, 1e-9 * conflux.growth);
}

}  // namespace
}  // namespace conflux::lu
