// Sequential Cholesky (potrf): unblocked vs blocked agreement, residuals on
// the SPD matrix families, non-SPD detection, and the lower-triangle-only
// contract that lets the distributed algorithms carry junk above the
// diagonal.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/generate.hpp"
#include "linalg/potrf.hpp"

namespace conflux::linalg {
namespace {

constexpr double kTol = 1e-13;

TEST(PotrfUnblocked, FactorsSpdMatrix) {
  const Matrix a = generate(64, MatrixKind::Spd, 11);
  Matrix f = a;
  EXPECT_EQ(potrf_unblocked(f.view()), FactorStatus::Ok);
  EXPECT_LT(cholesky_residual(a, f.view()), kTol);
}

TEST(PotrfUnblocked, FactorsLaplacian) {
  // The 2D Laplacian is SPD — a structured second family (49 = 7x7 grid).
  const Matrix a = generate(49, MatrixKind::Laplace2D, 12);
  Matrix f = a;
  EXPECT_EQ(potrf_unblocked(f.view()), FactorStatus::Ok);
  EXPECT_LT(cholesky_residual(a, f.view()), kTol);
}

TEST(PotrfUnblocked, DiagonalMatrixGivesSqrtDiagonal) {
  Matrix a(3, 3);
  a(0, 0) = 4.0;
  a(1, 1) = 9.0;
  a(2, 2) = 16.0;
  EXPECT_EQ(potrf_unblocked(a.view()), FactorStatus::Ok);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 3.0);
  EXPECT_DOUBLE_EQ(a(2, 2), 4.0);
}

TEST(PotrfUnblocked, RejectsIndefiniteMatrix) {
  Matrix a(4, 4);
  for (int i = 0; i < 4; ++i) a(i, i) = 1.0;
  a(3, 3) = -1.0;
  EXPECT_EQ(potrf_unblocked(a.view()), FactorStatus::NotSpd);
}

TEST(PotrfUnblocked, IgnoresUpperTriangleJunk) {
  const Matrix a = generate(48, MatrixKind::Spd, 13);
  Matrix junk = a;
  for (int i = 0; i < 48; ++i)
    for (int j = i + 1; j < 48; ++j) junk(i, j) = 1e30;
  EXPECT_EQ(potrf_unblocked(junk.view()), FactorStatus::Ok);
  EXPECT_LT(cholesky_residual(a, junk.view()), kTol);
}

class PotrfBlocked : public ::testing::TestWithParam<int> {};

TEST_P(PotrfBlocked, MatchesUnblocked) {
  const int nb = GetParam();
  const Matrix a = generate(96, MatrixKind::Spd, 14);
  Matrix ref = a;
  Matrix blk = a;
  EXPECT_EQ(potrf_unblocked(ref.view()), FactorStatus::Ok);
  EXPECT_EQ(potrf_blocked(blk.view(), nb), FactorStatus::Ok);
  // Cholesky is unique (positive diagonal), so the factors agree to
  // roundoff, not just the residual.
  double diff = 0.0;
  for (int i = 0; i < 96; ++i)
    for (int j = 0; j <= i; ++j)
      diff = std::max(diff, std::abs(ref(i, j) - blk(i, j)));
  EXPECT_LT(diff, 1e-10);
  EXPECT_LT(cholesky_residual(a, blk.view()), kTol);
}

INSTANTIATE_TEST_SUITE_P(Widths, PotrfBlocked,
                         ::testing::Values(1, 7, 16, 32, 96, 128));

TEST(ExtractLower, ZeroesAboveDiagonal) {
  Matrix f(3, 3);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) f(i, j) = 1.0 + i * 3 + j;
  const Matrix l = extract_lower(f.view());
  EXPECT_DOUBLE_EQ(l(2, 0), f(2, 0));
  EXPECT_DOUBLE_EQ(l(1, 1), f(1, 1));
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(l(0, 2), 0.0);
}

TEST(SpdGenerator, IsSymmetricWithDominantDiagonal) {
  const Matrix a = generate(32, MatrixKind::Spd, 15);
  for (int i = 0; i < 32; ++i) {
    EXPECT_GT(a(i, i), 31.0);
    for (int j = 0; j < i; ++j) EXPECT_DOUBLE_EQ(a(i, j), a(j, i));
  }
}

TEST(SpdGenerator, RequiresSquareShape) {
  EXPECT_THROW((void)generate(8, 16, MatrixKind::Spd), ContractViolation);
}

TEST(CholeskyResidual, DetectsWrongFactor) {
  const Matrix a = generate(16, MatrixKind::Spd, 16);
  Matrix f = a;
  EXPECT_EQ(potrf_unblocked(f.view()), FactorStatus::Ok);
  f(8, 3) += 0.5;  // corrupt one entry of L
  EXPECT_GT(cholesky_residual(a, f.view()), 1e-4);
}

}  // namespace
}  // namespace conflux::linalg
