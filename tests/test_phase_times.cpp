// LogGP phase-time model vs the virtual-time fabric: the analytic
// predict_lu_phase_times walks the same per-step schedule the engine runs,
// so at the validated sizes below its makespan must land within 10% of the
// fabric's measured critical path (FactorResult::predicted_seconds).
#include <gtest/gtest.h>

#include <cmath>
#include <iostream>

#include "lu/lu_common.hpp"
#include "models/machines.hpp"
#include "models/phase_model.hpp"

namespace conflux {
namespace {

lu::LuResult virtual_dry_run(const std::string& algo, int n, int p,
                             const models::Machine& m) {
  lu::LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = factor::Mode::DryRun;
  cfg.fabric.mode = simnet::ExecMode::VirtualTime;
  cfg.fabric.link.alpha_s = m.alpha_s;
  cfg.fabric.link.beta_s_per_byte = m.beta_s_per_byte;
  cfg.fabric.link.gamma_s_per_flop = m.gamma_s_per_flop;
  return lu::make_algorithm(algo)->run(nullptr, cfg);
}

class ModelVsFabric
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(ModelVsFabric, MakespanWithinTenPercent) {
  const auto [algo, n, p] = GetParam();
  const models::Machine m = models::piz_daint();
  const lu::LuResult run = virtual_dry_run(algo, n, p, m);
  ASSERT_GT(run.predicted_seconds, 0.0);
  const double model =
      models::predict_lu_makespan(algo, n, p, m.alpha_s, m.beta_s_per_byte);
  const double ratio = model / run.predicted_seconds;
  std::cout << algo << " n=" << n << " p=" << p << " fabric=_"
            << run.predicted_seconds << "s model=" << model
            << "s ratio=" << ratio << "\n";
  EXPECT_GT(ratio, 0.90) << algo << " n=" << n << " p=" << p;
  EXPECT_LT(ratio, 1.10) << algo << " n=" << n << " p=" << p;
}

INSTANTIATE_TEST_SUITE_P(
    ValidatedSizes, ModelVsFabric,
    ::testing::Values(std::make_tuple("COnfLUX", 256, 16),
                      std::make_tuple("COnfLUX", 256, 64),
                      std::make_tuple("COnfLUX", 512, 64),
                      std::make_tuple("CALU", 256, 16),
                      std::make_tuple("CALU", 512, 64)));

TEST(PhaseTimes, AlignWithPhaseVolumesAndSumToMakespan) {
  const models::Machine m = models::piz_daint();
  const auto times = models::predict_lu_phase_times("COnfLUX", 512, 64,
                                                    m.alpha_s,
                                                    m.beta_s_per_byte);
  const auto volumes = models::predict_lu_phases("COnfLUX", 512, 64);
  ASSERT_EQ(times.size(), volumes.size());
  double sum = 0;
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_EQ(times[i].phase, volumes[i].phase);
    // Time is critical-path attributed, so a phase can move bytes off the
    // critical path at zero charged time — but never the reverse.
    if (times[i].seconds > 0) EXPECT_GT(volumes[i].bytes, 0)
        << times[i].phase;
    sum += times[i].seconds;
  }
  EXPECT_DOUBLE_EQ(
      sum, models::predict_lu_makespan("COnfLUX", 512, 64, m.alpha_s,
                                       m.beta_s_per_byte));
}

TEST(PhaseTimes, LatencyAndBandwidthBothMatter) {
  // Every clock in the replay is a max over schedule paths of
  // (hops*alpha + bytes*beta), so the mixed makespan is bounded by the
  // pure-latency and pure-bandwidth runs: at least each alone, at most
  // their sum.
  const double mixed =
      models::predict_lu_makespan("COnfLUX", 256, 16, 1e-6, 1e-10);
  const double lat = models::predict_lu_makespan("COnfLUX", 256, 16, 1e-6, 0);
  const double bw = models::predict_lu_makespan("COnfLUX", 256, 16, 0, 1e-10);
  EXPECT_GT(lat, 0);
  EXPECT_GT(bw, 0);
  EXPECT_GE(mixed, std::max(lat, bw));
  EXPECT_LE(mixed, lat + bw);
}

}  // namespace
}  // namespace conflux
