// Tests for the Table 2 cost models, machine presets and Fig. 7 prediction
// logic, pinned against the paper's published numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "models/cost_model.hpp"
#include "models/machines.hpp"
#include "models/predictions.hpp"

namespace conflux::models {
namespace {

TEST(Instance, MaxReplicationRule) {
  const Instance inst = max_replication_instance(16384, 1024);
  // c = round(1024^(1/3)) = 10; M = N^2/100.
  EXPECT_NEAR(inst.m_elements, 16384.0 * 16384.0 / 100.0, 1.0);
}

TEST(Models, LeadingTermsMatchTable2Formulas) {
  const Instance inst = max_replication_instance(16384, 1024);
  LibSciModel libsci;
  ConfluxModel conflux;
  CandmcModel candmc;
  EXPECT_NEAR(libsci.leading_elements_per_rank(inst),
              16384.0 * 16384.0 / 32.0, 1.0);
  const double m = inst.m_elements;
  EXPECT_NEAR(conflux.leading_elements_per_rank(inst),
              std::pow(16384.0, 3) / (1024.0 * std::sqrt(m)), 1.0);
  EXPECT_NEAR(candmc.leading_elements_per_rank(inst),
              5.0 * std::pow(16384.0, 3) / (1024.0 * std::sqrt(m)), 1.0);
}

// The paper's Table 2 modeled totals (GB). Our models include slightly
// different lower-order terms, so compare within 35%.
struct Table2Case {
  double n, p;
  const char* name;
  double paper_gb;
};

class Table2Model : public ::testing::TestWithParam<Table2Case> {};

TEST_P(Table2Model, WithinBandOfPaperModel) {
  const auto& c = GetParam();
  const Instance inst = max_replication_instance(c.n, c.p);
  for (const auto& model : standard_models()) {
    if (model->name() != c.name) continue;
    const double ours = model->total_bytes(inst) / 1e9;
    EXPECT_GT(ours, 0.5 * c.paper_gb) << c.name;
    EXPECT_LT(ours, 1.6 * c.paper_gb) << c.name;
    return;
  }
  FAIL() << "model not found";
}

INSTANTIATE_TEST_SUITE_P(
    PaperCells, Table2Model,
    ::testing::Values(Table2Case{4096, 64, "LibSci", 1.21},
                      Table2Case{4096, 64, "SLATE", 1.21},
                      Table2Case{4096, 64, "COnfLUX", 1.08},
                      Table2Case{4096, 1024, "LibSci", 4.43},
                      Table2Case{4096, 1024, "COnfLUX", 3.07},
                      Table2Case{16384, 64, "LibSci", 19.33},
                      Table2Case{16384, 64, "COnfLUX", 17.19},
                      Table2Case{16384, 1024, "LibSci", 70.87},
                      Table2Case{16384, 1024, "SLATE", 70.87},
                      Table2Case{16384, 1024, "COnfLUX", 44.77}));

TEST(Models, ConfluxBeatsEveryoneAtScale) {
  // Full models at measured scales; leading terms for the extrapolated
  // scales, as the paper's Fig. 6a/7 prediction lines do.
  for (double p : {256.0, 1024.0, 4096.0}) {
    const Instance inst = max_replication_instance(16384, p);
    EXPECT_EQ(best_of(predict_all(inst)).name, "COnfLUX") << "P=" << p;
  }
  for (double p : {16384.0, 262144.0}) {
    const Instance inst = max_replication_instance(16384, p);
    EXPECT_EQ(best_of(predict_all(inst, /*leading_only=*/true)).name,
              "COnfLUX")
        << "P=" << p;
  }
}

TEST(Models, LowerBoundBelowConflux) {
  for (double p : {64.0, 1024.0, 27648.0}) {
    const Instance inst = max_replication_instance(16384, p);
    ConfluxModel conflux;
    EXPECT_LT(lu_lower_bound_elements_per_rank(inst),
              conflux.elements_per_rank(inst));
    // ... and within ~4x (the paper: 1/3 above the bound plus lower-order).
    EXPECT_GT(4.0 * lu_lower_bound_elements_per_rank(inst),
              conflux.leading_elements_per_rank(inst));
  }
}

TEST(Models, CaluTracksConfluxFromBelow) {
  // The tree tournament only removes the butterfly's log factor from one
  // lower-order term, so CALU's prediction sits at or below COnfLUX's and
  // within 10% of it — and it never joins standard_models(): Table 2 and
  // the Fig. 6 reproductions are pinned to the paper's four codes.
  CaluModel calu;
  ConfluxModel conflux;
  for (double p : {64.0, 1024.0, 27648.0}) {
    const Instance inst = max_replication_instance(16384, p);
    EXPECT_LE(calu.elements_per_rank(inst), conflux.elements_per_rank(inst));
    EXPECT_GT(calu.elements_per_rank(inst),
              0.9 * conflux.elements_per_rank(inst));
    EXPECT_EQ(calu.leading_elements_per_rank(inst),
              conflux.leading_elements_per_rank(inst));
  }
  for (const auto& m : standard_models()) EXPECT_NE(m->name(), "CALU");
}

TEST(Models, ConfluxLeadingIs1Point5xOverBoundLeading) {
  const Instance inst = max_replication_instance(65536, 4096);
  ConfluxModel conflux;
  const double ratio = conflux.leading_elements_per_rank(inst) /
                       (2.0 * inst.n * inst.n * inst.n /
                        (3.0 * inst.p * std::sqrt(inst.m_elements)));
  EXPECT_NEAR(ratio, 1.5, 1e-9);  // N^3/(P sqrt M) vs (2/3) N^3/(P sqrt M)
}

TEST(Predictions, SecondBestExcludesOurs) {
  const std::vector<NamedVolume> entries = {
      {"LibSci", 100}, {"SLATE", 90}, {"CANDMC", 200}, {"COnfLUX", 50}};
  const Reduction red = reduction_vs_second_best(entries);
  EXPECT_EQ(red.second_best, "SLATE");
  EXPECT_NEAR(red.factor, 90.0 / 50.0, 1e-12);
}

TEST(Predictions, BestOfAndExcluding) {
  const std::vector<NamedVolume> entries = {{"a", 3}, {"b", 1}, {"c", 2}};
  EXPECT_EQ(best_of(entries).name, "b");
  EXPECT_EQ(best_excluding(entries, "b").name, "c");
}

TEST(Predictions, CandmcCrossoverDeepIntoExtremeScale) {
  // Paper §9: "the asymptotically optimal CANDMC is predicted to
  // communicate less than suboptimal 2D implementations only for
  // P > 450,000 ranks for N = 16,384" — asymptotic optimality is not
  // enough. Our re-derived models place the crossover at ~6.5e4 ranks
  // (their exact lower-order constants are unpublished); the qualitative
  // claim — far beyond every measured configuration — holds.
  CandmcModel candmc;
  LibSciModel libsci;
  const double cross = crossover_ranks(candmc, libsci, 16384, 1 << 22);
  EXPECT_GT(cross, 2e4);
  EXPECT_GT(cross, 0);  // does eventually cross (asymptotically optimal)
}

TEST(Predictions, SummitReductionAbout2x) {
  // Paper: COnfLUX expected to communicate ~2.1x less than SLATE on a
  // full-scale Summit run. Our full models give ~1.5x and the leading-term
  // extrapolation ~4x; the paper's 2.1 must sit inside that bracket (the
  // authors' unpublished lower-order constants land between the two).
  const Machine summit_machine = summit();
  const Instance inst =
      max_replication_instance(16384.0, summit_machine.ranks);
  const Reduction full = reduction_vs_second_best(predict_all(inst));
  const Reduction leading =
      reduction_vs_second_best(predict_all(inst, /*leading_only=*/true));
  EXPECT_GT(full.factor, 1.3);
  EXPECT_LT(full.factor, 2.2);
  EXPECT_GT(leading.factor, 2.0);
  EXPECT_LE(full.factor, 2.1 + 1e-9);
  EXPECT_GE(leading.factor, 2.1 - 1e-9);
}

TEST(Predictions, ReductionGrowsWithP) {
  // Leading-term extrapolation (the paper's Fig. 7 convention).
  double prev = 0;
  for (double p : {64.0, 1024.0, 16384.0, 262144.0}) {
    const Instance inst = max_replication_instance(16384, p);
    const double factor =
        reduction_vs_second_best(predict_all(inst, /*leading_only=*/true))
            .factor;
    EXPECT_GE(factor, prev * 0.95);  // monotone up to model noise
    prev = factor;
  }
  EXPECT_GT(prev, 2.0);  // >2x at the largest predicted scale (Fig. 7)
}

TEST(Machines, PresetsAreSane) {
  for (const Machine& m : all_machines()) {
    EXPECT_FALSE(m.name.empty());
    EXPECT_GT(m.ranks, 1000);
    EXPECT_GT(m.mem_elements(), 1e6);
    EXPECT_LT(m.mem_elements(1.0), m.mem_bytes_per_rank);
  }
  EXPECT_EQ(piz_daint().ranks, 5704);
  EXPECT_EQ(future_exascale().ranks, 262144);
}

TEST(Models, TotalsScaleWithBytes) {
  const Instance inst = max_replication_instance(4096, 64);
  LibSciModel m;
  EXPECT_NEAR(m.total_bytes(inst),
              m.elements_per_rank(inst) * 64 * 8.0, 1.0);
  EXPECT_NEAR(m.bytes_per_rank(inst), m.elements_per_rank(inst) * 8.0, 1e-6);
}

}  // namespace
}  // namespace conflux::models
