// Tests for the DAAP lower-bound engine (§3-§6): the numeric solver is
// pinned against every closed form derived in the paper.
#include <gtest/gtest.h>

#include <cmath>

#include "daap/bound_solver.hpp"
#include "daap/kernels.hpp"

namespace conflux::daap {
namespace {

constexpr double kN = 512.0;

class MemorySweep : public ::testing::TestWithParam<double> {};

TEST_P(MemorySweep, MmmMatchesClosedForm) {
  const double m = GetParam();
  const ProgramBound bound = solve_program(matmul(kN), m);
  const StatementBound& s = bound.statements[0];
  // psi(X) = (X/3)^(3/2), X0 = 3M, rho = sqrt(M)/2 — [42]'s tight result.
  EXPECT_NEAR(s.x0, 3.0 * m, 0.02 * m);
  EXPECT_NEAR(s.rho, std::sqrt(m) / 2.0, 0.01 * std::sqrt(m));
  EXPECT_NEAR(bound.q_sequential, mmm_bound_sequential(kN, m),
              0.02 * mmm_bound_sequential(kN, m));
}

TEST_P(MemorySweep, LuMatchesSection6) {
  const double m = GetParam();
  const ProgramBound bound = solve_program(lu_factorization(kN), m);
  ASSERT_EQ(bound.statements.size(), 2u);
  // S1: Lemma 6 caps rho at 1; S2: the MMM-like intensity sqrt(M)/2.
  EXPECT_NEAR(bound.statements[0].rho, 1.0, 1e-9);
  EXPECT_NEAR(bound.statements[1].rho, std::sqrt(m) / 2.0,
              0.01 * std::sqrt(m));
  const double want = lu_bound_sequential(kN, m);
  EXPECT_NEAR(bound.q_sequential, want, 0.02 * want);
}

TEST_P(MemorySweep, ParallelBoundIsLemma9) {
  const double m = GetParam();
  for (double p : {2.0, 64.0, 1024.0}) {
    const ProgramBound seq = solve_program(lu_factorization(kN), m, 1.0);
    const ProgramBound par = solve_program(lu_factorization(kN), m, p);
    EXPECT_NEAR(par.q_parallel, seq.q_sequential / p,
                1e-9 * seq.q_sequential);
  }
}

INSTANTIATE_TEST_SUITE_P(Memories, MemorySweep,
                         ::testing::Values(64.0, 256.0, 1024.0, 4096.0));

TEST(Section41, SharedBReuseEqualsN3OverM) {
  const double m = 1024.0;
  const ProgramBound bound = solve_program(section41_shared_b(kN), m);
  // Each statement alone costs N^3/M; sharing B saves exactly one of them.
  ASSERT_EQ(bound.reuses.size(), 1u);
  EXPECT_EQ(bound.reuses[0].array, "B");
  const double n3m = kN * kN * kN / m;
  EXPECT_NEAR(bound.reuses[0].reuse, n3m, 0.05 * n3m);
  EXPECT_NEAR(bound.q_sequential, n3m, 0.05 * n3m);
}

TEST(Section42, GeneratedInputDropsDominatorTerm) {
  const double m = 1024.0;
  const ProgramBound bound = solve_program(section42_generated_a(kN), m);
  // S costs nothing (no inputs, rho -> inf); T's A-term is dropped, giving
  // the paper's Q_tot >= N^3/M instead of the standalone 2N^3/sqrt(M).
  EXPECT_EQ(bound.statements[0].q, 0.0);
  const double n3m = kN * kN * kN / m;
  EXPECT_NEAR(bound.q_sequential, n3m, 0.05 * n3m);
  // Strictly weaker than the no-reuse MMM bound at this M.
  EXPECT_LT(bound.q_sequential, mmm_bound_sequential(kN, m));
}

TEST(OutputReuse, UnitIntensityProducerChangesNothing) {
  // LU's S1 has rho = 1, so S2's bound equals its standalone value
  // (the paper's observation that recomputation cannot pay off).
  const double m = 1024.0;
  const ProgramBound with_reuse = solve_program(lu_factorization(kN), m);
  Program standalone = lu_factorization(kN);
  standalone.statements[1].inputs[0].producer = -1;  // sever the link
  const ProgramBound without = solve_program(standalone, m);
  EXPECT_NEAR(with_reuse.statements[1].q, without.statements[1].q,
              0.01 * without.statements[1].q);
}

TEST(Cholesky, MatchesClosedForm) {
  // The COnfCHOX regression twin of LuMatchesSection6: the generic solver
  // must land on the closed form N^3/(3 sqrt M) + N(N-1)/2 within 2%.
  for (double m : {256.0, 1024.0, 4096.0}) {
    const ProgramBound bound = solve_program(cholesky(kN), m);
    ASSERT_EQ(bound.statements.size(), 2u);
    // S2 (the column scaling): Lemma 6 caps rho at 1; S3: the MMM-like
    // intensity sqrt(M)/2 on the triangular update domain.
    EXPECT_NEAR(bound.statements[0].rho, 1.0, 1e-9);
    EXPECT_NEAR(bound.statements[1].rho, std::sqrt(m) / 2.0,
                0.01 * std::sqrt(m));
    const double want = cholesky_bound_sequential(kN, m);
    EXPECT_NEAR(bound.q_sequential, want, 0.02 * want);
  }
}

TEST(Cholesky, ParallelClosedFormIsLemma9) {
  const double m = 1024.0;
  for (double p : {2.0, 64.0, 1024.0}) {
    const ProgramBound par = solve_program(cholesky(kN), m, p);
    const double want = cholesky_bound_parallel(kN, m, p);
    EXPECT_NEAR(par.q_parallel, want, 0.02 * want);
  }
}

TEST(Cholesky, BoundIsOneThirdishOfCube) {
  const double m = 1024.0;
  const ProgramBound bound = solve_program(cholesky(kN), m);
  const double leading = kN * kN * kN / (3.0 * std::sqrt(m));
  EXPECT_GT(bound.q_sequential, 0.9 * leading);
  EXPECT_LT(bound.q_sequential, 1.6 * leading);
  // Cholesky moves strictly less than LU (half the update volume).
  EXPECT_LT(bound.q_sequential,
            solve_program(lu_factorization(kN), m).q_sequential);
}

TEST(MaxVolume, MonotoneInX) {
  const Program prog = matmul(kN);
  double prev = 0;
  for (double x : {16.0, 64.0, 256.0, 1024.0}) {
    const VolumeSolution sol = max_volume(prog.statements[0], x);
    EXPECT_GT(sol.volume, prev);
    prev = sol.volume;
  }
}

TEST(MaxVolume, AccessSizesRespectConstraint) {
  const Program prog = matmul(kN);
  const VolumeSolution sol = max_volume(prog.statements[0], 300.0);
  double total = 0;
  for (double a : sol.access_sizes) total += a;
  EXPECT_LE(total, 300.0 * 1.01);
  for (double r : sol.ranges) EXPECT_GE(r, 1.0 - 1e-9);
}

TEST(MaxVolume, Section41HasPsiXHalfSquared) {
  const Program prog = section41_shared_b(kN);
  const VolumeSolution sol = max_volume(prog.statements[0], 1000.0);
  EXPECT_NEAR(sol.volume, 250.0 * 1000.0 / 1.0, 0.05 * 250000.0);  // (X/2)^2
}

TEST(Lemma6, OutDegreeOneCapsIntensity) {
  // LU S1 without the cap would report rho slightly above 1 (psi = X - 1);
  // with the flag cleared the bound must weaken.
  Program prog = lu_factorization(kN);
  prog.statements[0].inputs[0].out_degree_one = false;
  const ProgramBound uncapped = solve_program(prog, 1024.0);
  const ProgramBound capped = solve_program(lu_factorization(kN), 1024.0);
  EXPECT_LE(uncapped.statements[0].q, capped.statements[0].q * 1.01);
}

TEST(Validate, RejectsMalformedPrograms) {
  Program bad = matmul(kN);
  bad.statements[0].inputs[0].vars = {7};  // out of range for 3 vars
  EXPECT_THROW(solve_program(bad, 64.0), ContractViolation);

  Program cyclic = lu_factorization(kN);
  cyclic.statements[0].inputs[0].producer = 1;  // forward reference
  EXPECT_THROW(solve_program(cyclic, 64.0), ContractViolation);

  Program empty_domain = matmul(kN);
  empty_domain.statements[0].domain_size = 0;
  EXPECT_THROW(solve_program(empty_domain, 64.0), ContractViolation);
}

TEST(Bounds, GrowWithProblemAndShrinkWithMemory) {
  const double q_small = solve_program(matmul(256), 1024.0).q_sequential;
  const double q_big = solve_program(matmul(512), 1024.0).q_sequential;
  EXPECT_GT(q_big, 7.0 * q_small);  // ~N^3 scaling
  const double q_more_mem = solve_program(matmul(256), 4096.0).q_sequential;
  EXPECT_LT(q_more_mem, q_small);  // ~1/sqrt(M) scaling
  EXPECT_NEAR(q_small / q_more_mem, 2.0, 0.1);
}

TEST(ClosedForms, LuSequentialTracksSolverOnSmallInstances) {
  // Regression pin: the closed form in kernels.cpp must keep tracking the
  // generic bound_solver output (both sides have changed independently
  // before; this catches either drifting).
  for (double n : {128.0, 256.0}) {
    for (double m : {64.0, 256.0}) {
      const ProgramBound bound = solve_program(lu_factorization(n), m);
      const double want = lu_bound_sequential(n, m);
      EXPECT_NEAR(bound.q_sequential, want, 0.03 * want)
          << "n=" << n << " m=" << m;
    }
  }
}

TEST(ClosedForms, LuParallelTracksSolverOnSmallInstances) {
  for (double n : {128.0, 256.0}) {
    const double m = 128.0;
    for (double p : {4.0, 64.0}) {
      const ProgramBound bound = solve_program(lu_factorization(n), m, p);
      const double want = lu_bound_parallel(n, m, p);
      EXPECT_NEAR(bound.q_parallel, want, 0.03 * want)
          << "n=" << n << " p=" << p;
    }
  }
}

TEST(Bounds, LuParallelClosedFormMatchesPaperStatement) {
  // Q >= 2N^3/(3 P sqrt M) + N(N-1)/(2P) — §6's final display.
  const double n = 16384, m = 2.68e6, p = 1024;
  const double q = lu_bound_parallel(n, m, p);
  const double leading = 2.0 * n * n * n / (3.0 * p * std::sqrt(m));
  EXPECT_GT(q, leading);
  EXPECT_LT(q, 1.1 * leading);
}

}  // namespace
}  // namespace conflux::daap
