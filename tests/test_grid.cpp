// Tests for processor grids, block-cyclic maps and the Processor Grid
// Optimization of §8.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "grid/block_cyclic.hpp"
#include "grid/grid3d.hpp"
#include "grid/grid_opt.hpp"

namespace conflux::grid {
namespace {

TEST(Grid3D, RankCoordRoundTrip) {
  const Grid3D g(3, 4, 2);
  EXPECT_EQ(g.active(), 24);
  std::set<int> seen;
  for (int px = 0; px < 3; ++px)
    for (int py = 0; py < 4; ++py)
      for (int l = 0; l < 2; ++l) {
        const int r = g.rank_of({px, py, l});
        EXPECT_TRUE(seen.insert(r).second);
        EXPECT_EQ(g.coord_of(r), (Coord3{px, py, l}));
      }
  EXPECT_EQ(*seen.rbegin(), 23);
}

TEST(Grid3D, RejectsOutOfRange) {
  const Grid3D g(2, 2, 2);
  EXPECT_THROW((void)g.rank_of({2, 0, 0}), ContractViolation);
  EXPECT_THROW((void)g.coord_of(8), ContractViolation);
  EXPECT_THROW(Grid3D(0, 1, 1), ContractViolation);
}

TEST(Grid2D, ColumnMajorRanks) {
  const Grid2D g(3, 2);
  EXPECT_EQ(g.rank_of(0, 0), 0);
  EXPECT_EQ(g.rank_of(2, 0), 2);
  EXPECT_EQ(g.rank_of(0, 1), 3);
  EXPECT_EQ(g.row_of(4), 1);
  EXPECT_EQ(g.col_of(4), 1);
}

class BlockCyclicParam
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockCyclicParam, PartitionIsExact) {
  const auto [n, b, p] = GetParam();
  const BlockCyclic1D map(n, b, p);
  // Every index owned exactly once; local indices consistent.
  int total = 0;
  for (int r = 0; r < p; ++r) {
    const auto mine = map.indices_of_owner(r);
    EXPECT_EQ(static_cast<int>(mine.size()), map.extent_of_owner(r));
    total += static_cast<int>(mine.size());
    for (int g : mine) EXPECT_EQ(map.owner_of(g), r);
    // Ascending and locally dense within tiles.
    for (std::size_t i = 1; i < mine.size(); ++i)
      EXPECT_LT(mine[i - 1], mine[i]);
  }
  EXPECT_EQ(total, n);
}

TEST_P(BlockCyclicParam, TileAccounting) {
  const auto [n, b, p] = GetParam();
  const BlockCyclic1D map(n, b, p);
  EXPECT_EQ(map.tiles(), (n + b - 1) / b);
  int sized = 0;
  for (int t = 0; t < map.tiles(); ++t) {
    sized += map.tile_size(t);
    EXPECT_EQ(map.tile_owner(t), t % p);
  }
  EXPECT_EQ(sized, n);
}

INSTANTIATE_TEST_SUITE_P(
    Maps, BlockCyclicParam,
    ::testing::Values(std::make_tuple(16, 4, 2), std::make_tuple(17, 4, 3),
                      std::make_tuple(1, 1, 1), std::make_tuple(100, 7, 5),
                      std::make_tuple(64, 64, 4), std::make_tuple(9, 2, 16)));

TEST(Chunks, RangeCoversExactly) {
  for (int n : {0, 1, 7, 100, 1001}) {
    for (int parts : {1, 2, 7, 32}) {
      int covered = 0;
      int prev_end = 0;
      for (int k = 0; k < parts; ++k) {
        const Range r = chunk_range(n, parts, k);
        EXPECT_EQ(r.begin, prev_end);
        prev_end = r.end;
        covered += r.size();
      }
      EXPECT_EQ(prev_end, n);
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(Chunks, ChunkOfInvertsRange) {
  for (int n : {1, 13, 64, 257}) {
    for (int parts : {1, 3, 8, 31}) {
      for (int i = 0; i < n; ++i) {
        const int k = chunk_of(n, parts, i);
        const Range r = chunk_range(n, parts, k);
        EXPECT_GE(i, r.begin);
        EXPECT_LT(i, r.end);
      }
    }
  }
}

TEST(GridOpt, CostFormulaRecovers25DOptimum) {
  // With free memory the optimizer should pick c on the order of P^(1/3).
  for (int p : {64, 512, 4096}) {
    const GridChoice choice = optimize_grid(p, 1 << 14);
    const double c_star = std::cbrt(static_cast<double>(p));
    EXPECT_GE(choice.grid.layers(), static_cast<int>(c_star / 3));
    EXPECT_LE(choice.grid.layers(), static_cast<int>(c_star * 3) + 1);
    EXPECT_LE(choice.grid.active(), p);
  }
}

TEST(GridOpt, MemoryCapLimitsReplication) {
  const int p = 512, n = 1 << 12;
  const double m2d = static_cast<double>(n) * n / p;  // no room to replicate
  const GridChoice tight = optimize_grid(p, n, m2d);
  EXPECT_EQ(tight.grid.layers(), 1);
  const GridChoice loose = optimize_grid(p, n, 8.0 * m2d);
  EXPECT_GT(loose.grid.layers(), 1);
  // The memory-per-rank invariant N^2/(Px*Py) <= M must hold.
  const double used = static_cast<double>(n) * n /
                      (loose.grid.px_extent() * loose.grid.py_extent());
  EXPECT_LE(used, 8.0 * m2d * (1 + 1e-9));
}

TEST(GridOpt, ForcedLayerCapRespected) {
  const GridChoice flat = optimize_grid(512, 4096, -1.0, 1);
  EXPECT_EQ(flat.grid.layers(), 1);
}

TEST(GridOpt, AwkwardRankCountsStaySmooth) {
  // The paper's Fig. 6a inset: greedy 2D grids blow up at primes; the
  // optimizer's cost must stay within a small factor of the neighbouring
  // power of two.
  const int n = 8192;
  const double at_1024 = optimize_grid(1024, n).modeled_cost_per_rank;
  for (int p : {1009, 1013, 1021}) {  // primes near 1024
    const GridChoice choice = optimize_grid(p, n);
    EXPECT_LT(choice.modeled_cost_per_rank, 1.5 * at_1024);
    EXPECT_LT(choice.idle_ranks, p / 4);
  }
}

TEST(GridOpt, CostDecreasesWithMoreRanks) {
  const int n = 4096;
  double prev = 1e300;
  for (int p : {8, 64, 512, 4096}) {
    const double cost = optimize_grid(p, n).modeled_cost_per_rank;
    EXPECT_LT(cost, prev);
    prev = cost;
  }
}

TEST(Grid2DChoosers, AllRanksGridUsesEveryRank) {
  for (int p : {1, 4, 12, 60, 64, 97, 1024}) {
    const Grid2D g = choose_grid_2d_all_ranks(p);
    EXPECT_EQ(g.active(), p);
  }
  // Primes degrade to 1 x P — the documented LibSci outlier behaviour.
  EXPECT_EQ(choose_grid_2d_all_ranks(97).rows(), 1);
}

TEST(Grid2DChoosers, NearSquareMayIdleRanks) {
  const Grid2D g = choose_grid_2d_near_square(97);
  EXPECT_GT(g.rows(), 1);  // avoids the 1 x P catastrophe
  EXPECT_LE(g.active(), 97);
  EXPECT_GE(g.active(), 80);
}

TEST(BlockSize, DividesNAndRespectsFloor) {
  for (int n : {64, 100, 4096, 16384}) {
    for (int c : {1, 2, 4, 10}) {
      const int v = choose_block_size(n, c, 128);
      EXPECT_EQ(n % v, 0) << "n=" << n << " c=" << c;
      EXPECT_GE(v, std::min(c, n));
    }
  }
}

TEST(BlockSize, PrefersNearTarget) {
  EXPECT_EQ(choose_block_size(4096, 1, 128), 128);
  EXPECT_EQ(choose_block_size(100, 1, 24), 25);
  EXPECT_EQ(choose_block_size(7, 1, 3), 1);  // prime: only 1 or 7
}

}  // namespace
}  // namespace conflux::grid
