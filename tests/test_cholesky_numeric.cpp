// Numerical correctness of the distributed Cholesky family (COnfCHOX and
// the ScaLAPACK-style 2D baseline): residual ||L L^T - A|| across rank
// counts, block sizes and replication depths, the non-SPD detection path,
// and the LU/Cholesky consistency invariant (both factorizations of the
// same SPD matrix reconstruct it to the same tolerance).
#include <gtest/gtest.h>

#include <tuple>

#include "cholesky/cholesky_common.hpp"
#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"

namespace conflux::cholesky {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

constexpr double kTol = 1e-11;

CholResult run_numeric(const std::string& algo, const Matrix& a, int p,
                       int block = 0, int force_layers = 0) {
  CholConfig cfg;
  cfg.n = a.rows();
  cfg.p = p;
  cfg.block = block;
  cfg.force_layers = force_layers;
  cfg.mode = Mode::Numeric;
  return make_cholesky_algorithm(algo)->run(&a, cfg);
}

class AlgoRanks
    : public ::testing::TestWithParam<std::tuple<const char*, int>> {};

TEST_P(AlgoRanks, FactorsSpdMatrix) {
  const auto [algo, p] = GetParam();
  const Matrix a = generate(96, MatrixKind::Spd, 81);
  const CholResult res = run_numeric(algo, a, p);
  EXPECT_TRUE(res.spd);
  EXPECT_LT(res.residual, kTol) << res.grid;
  EXPECT_LE(res.ranks_used, p);
  EXPECT_EQ(res.ranks_available, p);
  EXPECT_GT(res.block, 0);
}

TEST_P(AlgoRanks, FactorsLaplacian) {
  const auto [algo, p] = GetParam();
  const Matrix a = generate(64, MatrixKind::Laplace2D, 82);
  const CholResult res = run_numeric(algo, a, p);
  EXPECT_TRUE(res.spd);
  EXPECT_LT(res.residual, kTol) << res.grid;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AlgoRanks,
    ::testing::Combine(::testing::Values("COnfCHOX", "ScaLAPACK"),
                       ::testing::Values(1, 2, 4, 8, 9, 12, 16, 18)));

class ConfchoxBlocks : public ::testing::TestWithParam<int> {};

TEST_P(ConfchoxBlocks, ExplicitBlockSizes) {
  const int v = GetParam();
  const Matrix a = generate(96, MatrixKind::Spd, 83);
  const CholResult res = run_numeric("COnfCHOX", a, 8, v);
  EXPECT_EQ(res.block, v);
  EXPECT_LT(res.residual, kTol);
}

INSTANTIATE_TEST_SUITE_P(Widths, ConfchoxBlocks,
                         ::testing::Values(4, 8, 12, 16, 24, 32, 48, 96));

class ConfchoxLayers : public ::testing::TestWithParam<int> {};

TEST_P(ConfchoxLayers, ForcedReplicationDepths) {
  const int c = GetParam();
  const Matrix a = generate(80, MatrixKind::Spd, 84);
  const CholResult res = run_numeric("COnfCHOX", a, 16, 0, c);
  EXPECT_LT(res.residual, kTol) << res.grid;
  EXPECT_NE(res.grid.find("x " + std::to_string(c) + "]"), std::string::npos)
      << res.grid;
}

INSTANTIATE_TEST_SUITE_P(Depths, ConfchoxLayers, ::testing::Values(1, 2, 4));

TEST(Confchox, SingleStepWholeMatrixBlock) {
  // v = N degenerates to one sequential potrf plus the L00 broadcast.
  const Matrix a = generate(32, MatrixKind::Spd, 85);
  const CholResult res = run_numeric("COnfCHOX", a, 4, 32);
  EXPECT_LT(res.residual, kTol);
}

TEST(Confchox, KeepFactorsYieldsLowerTriangularL) {
  const Matrix a = generate(64, MatrixKind::Spd, 86);
  CholConfig cfg;
  cfg.n = 64;
  cfg.p = 8;
  cfg.keep_factors = true;
  const CholResult res = make_cholesky_algorithm("COnfCHOX")->run(&a, cfg);
  ASSERT_NE(res.factors, nullptr);
  const Matrix& l = *res.factors;
  for (int i = 0; i < 64; ++i) {
    EXPECT_GT(l(i, i), 0.0);
    for (int j = i + 1; j < 64; ++j) EXPECT_DOUBLE_EQ(l(i, j), 0.0);
  }
}

class AlgoNames : public ::testing::TestWithParam<const char*> {};

TEST_P(AlgoNames, DetectsNonSpdInput) {
  // A generic uniform matrix is (almost surely) indefinite.
  const Matrix a = generate(64, MatrixKind::Uniform, 87);
  const CholResult res = run_numeric(GetParam(), a, 4);
  EXPECT_FALSE(res.spd);
}

INSTANTIATE_TEST_SUITE_P(Both, AlgoNames,
                         ::testing::Values("COnfCHOX", "ScaLAPACK"));

// ---- The LU/Cholesky consistency invariant -------------------------------
// Factoring the same SPD matrix through both pipelines must reconstruct it
// to the same (tiny) scaled-residual tolerance: L*L^T == A for Cholesky and
// P*L*U == A for LU.

TEST(Consistency, CholeskyMatchesLuToleranceOnSpdMatrix) {
  const Matrix a = generate(96, MatrixKind::Spd, 88);

  const CholResult chol = run_numeric("COnfCHOX", a, 8);
  lu::LuConfig lu_cfg;
  lu_cfg.n = 96;
  lu_cfg.p = 8;
  const lu::LuResult lu = lu::make_algorithm("COnfLUX")->run(&a, lu_cfg);

  EXPECT_TRUE(chol.spd);
  EXPECT_LT(chol.residual, kTol);
  EXPECT_LT(lu.residual, kTol);
  // Same reconstruction quality up to a small constant (both are scaled
  // max-norm residuals of the same matrix).
  EXPECT_LT(chol.residual, 100.0 * lu.residual + 1e-14);
}

TEST(Consistency, BothBaselinesAgreeToo) {
  const Matrix a = generate(64, MatrixKind::Spd, 89);
  const CholResult chol = run_numeric("ScaLAPACK", a, 6);
  lu::LuConfig lu_cfg;
  lu_cfg.n = 64;
  lu_cfg.p = 6;
  const lu::LuResult lu = lu::make_algorithm("LibSci")->run(&a, lu_cfg);
  EXPECT_LT(chol.residual, kTol);
  EXPECT_LT(lu.residual, kTol);
}

// ---- Interface ------------------------------------------------------------

TEST(Interface, UnknownAlgorithmThrows) {
  EXPECT_THROW(make_cholesky_algorithm("Elemental"), ContractViolation);
}

TEST(Interface, BothAlgorithmsEnumerated) {
  const auto algos = all_cholesky_algorithms();
  ASSERT_EQ(algos.size(), 2u);
  EXPECT_EQ(algos[0]->name(), "ScaLAPACK");
  EXPECT_EQ(algos[1]->name(), "COnfCHOX");
}

TEST(Interface, NumericModeRequiresMatrix) {
  CholConfig cfg;
  cfg.n = 32;
  cfg.p = 2;
  cfg.mode = Mode::Numeric;
  EXPECT_THROW(make_cholesky_algorithm("COnfCHOX")->run(nullptr, cfg),
               ContractViolation);
}

TEST(Interface, ResultCarriesVolumeInvariants) {
  const Matrix a = generate(64, MatrixKind::Spd, 90);
  const CholResult res = run_numeric("COnfCHOX", a, 8);
  EXPECT_EQ(res.total.bytes_sent, res.total.bytes_received);
  EXPECT_GT(res.total.messages_sent, 0u);
  EXPECT_GT(res.bytes_per_rank(), 0.0);
}

}  // namespace
}  // namespace conflux::cholesky
