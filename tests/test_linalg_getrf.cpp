// Tests for sequential LU with partial pivoting: residuals across matrix
// families and shapes, blocked/unblocked agreement, pivot bookkeeping.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "linalg/getrf.hpp"

namespace conflux::linalg {
namespace {

class GetrfFamily
    : public ::testing::TestWithParam<std::tuple<MatrixKind, int>> {};

TEST_P(GetrfFamily, UnblockedResidualSmall) {
  const auto [kind, n] = GetParam();
  const Matrix a = generate(n, kind, 21);
  Matrix f = a;
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  EXPECT_EQ(getrf_unblocked(f.view(), ipiv), FactorStatus::Ok);
  EXPECT_LT(lu_residual(a, f.view(), ipiv), 1e-13);
}

TEST_P(GetrfFamily, BlockedMatchesUnblocked) {
  const auto [kind, n] = GetParam();
  const Matrix a = generate(n, kind, 22);
  Matrix f1 = a, f2 = a;
  std::vector<int> p1(static_cast<std::size_t>(n)), p2(p1);
  (void)getrf_unblocked(f1.view(), p1);
  (void)getrf_blocked(f2.view(), p2, 8);
  // Partial pivoting is deterministic: identical pivots and factors.
  EXPECT_EQ(p1, p2);
  EXPECT_LT(max_abs_diff(f1.view(), f2.view()), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Families, GetrfFamily,
    ::testing::Combine(::testing::Values(MatrixKind::Uniform,
                                         MatrixKind::DiagDominant,
                                         MatrixKind::Interaction),
                       ::testing::Values(1, 2, 5, 16, 33, 64, 100)));

class GetrfBlocking : public ::testing::TestWithParam<int> {};

TEST_P(GetrfBlocking, AnyPanelWidthWorks) {
  const int nb = GetParam();
  const int n = 48;
  const Matrix a = generate(n, MatrixKind::Uniform, 23);
  Matrix f = a;
  std::vector<int> ipiv(static_cast<std::size_t>(n));
  EXPECT_EQ(getrf_blocked(f.view(), ipiv, nb), FactorStatus::Ok);
  EXPECT_LT(lu_residual(a, f.view(), ipiv), 1e-13);
}

INSTANTIATE_TEST_SUITE_P(Widths, GetrfBlocking,
                         ::testing::Values(1, 2, 3, 7, 8, 16, 48, 100));

TEST(Getrf, TallMatrixFactorsLeadingColumns) {
  const Matrix a = generate(20, 6, MatrixKind::Uniform, 24);
  Matrix f = a;
  std::vector<int> ipiv(6);
  EXPECT_EQ(getrf_unblocked(f.view(), ipiv), FactorStatus::Ok);
  // PA = LU with L 20x6 unit-lower, U 6x6 upper.
  Matrix pa = a;
  apply_pivots(pa.view(), ipiv);
  const Matrix l = extract_lower_unit(f.view());
  const Matrix u = extract_upper(f.view());
  Matrix prod(20, 6);
  gemm(1.0, l.view(), u.view(), 0.0, prod.view());
  EXPECT_LT(max_abs_diff(prod.view(), pa.view()), 1e-12);
}

TEST(Getrf, SingularMatrixFlagged) {
  Matrix a(4, 4);  // all zeros
  std::vector<int> ipiv(4);
  EXPECT_EQ(getrf_unblocked(a.view(), ipiv), FactorStatus::Singular);
}

TEST(Getrf, PivotsPickLargestMagnitude) {
  Matrix a(3, 3);
  a(0, 0) = 0.1;
  a(1, 0) = -9.0;  // largest in column 0
  a(2, 0) = 2.0;
  a(0, 1) = 1;
  a(1, 1) = 1;
  a(2, 2) = 1;
  std::vector<int> ipiv(3);
  (void)getrf_unblocked(a.view(), ipiv);
  EXPECT_EQ(ipiv[0], 1);
}

TEST(Pivots, PermutationRoundTrip) {
  const std::vector<int> ipiv = {2, 2, 3, 3};
  const std::vector<int> perm = pivots_to_permutation(ipiv, 4);
  // Applying ipiv to the identity row order must equal perm.
  Matrix rows(4, 1);
  for (int i = 0; i < 4; ++i) rows(i, 0) = i;
  apply_pivots(rows.view(), ipiv);
  for (int i = 0; i < 4; ++i)
    EXPECT_EQ(static_cast<int>(rows(i, 0)), perm[static_cast<std::size_t>(i)]);
}

TEST(Pivots, PermutationIsBijective) {
  const Matrix a = generate(32, MatrixKind::Uniform, 25);
  Matrix f = a;
  std::vector<int> ipiv(32);
  (void)getrf_unblocked(f.view(), ipiv);
  std::vector<int> perm = pivots_to_permutation(ipiv, 32);
  std::sort(perm.begin(), perm.end());
  std::vector<int> want(32);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(perm, want);
}

TEST(Extract, FactorsHaveCorrectStructure) {
  const Matrix a = generate(10, MatrixKind::Uniform, 26);
  Matrix f = a;
  std::vector<int> ipiv(10);
  (void)getrf_unblocked(f.view(), ipiv);
  const Matrix l = extract_lower_unit(f.view());
  const Matrix u = extract_upper(f.view());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(l(i, i), 1.0);
    for (int j = i + 1; j < 10; ++j) EXPECT_EQ(l(i, j), 0.0);
    for (int j = 0; j < i; ++j) EXPECT_EQ(u(i, j), 0.0);
  }
}

TEST(Growth, DiagDominantHasNoGrowth) {
  const Matrix a = generate(32, MatrixKind::DiagDominant, 27);
  Matrix f = a;
  std::vector<int> ipiv(32);
  (void)getrf_unblocked(f.view(), ipiv);
  EXPECT_LE(growth_factor(a, f.view()), 1.5);
}

TEST(Growth, PartialPivotingBoundedOnRandom) {
  const Matrix a = generate(64, MatrixKind::Uniform, 28);
  Matrix f = a;
  std::vector<int> ipiv(64);
  (void)getrf_unblocked(f.view(), ipiv);
  // Average-case growth for GEPP is ~ n^(2/3); 2^63 worst case never occurs
  // for random matrices. Generous bound:
  EXPECT_LE(growth_factor(a, f.view()), 64.0);
}

TEST(Residual, DetectsCorruptedFactor) {
  const Matrix a = generate(16, MatrixKind::Uniform, 29);
  Matrix f = a;
  std::vector<int> ipiv(16);
  (void)getrf_unblocked(f.view(), ipiv);
  f(8, 8) += 0.5;  // corrupt U
  EXPECT_GT(lu_residual(a, f.view(), ipiv), 1e-4);
}

}  // namespace
}  // namespace conflux::linalg
