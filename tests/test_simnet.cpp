// Tests for the simulated message-passing fabric: point-to-point semantics,
// tag matching, FIFO ordering, byte accounting, dry-run ghosts, SPMD error
// propagation.
#include <gtest/gtest.h>

#include <atomic>

#include "simnet/comm.hpp"
#include "simnet/spmd.hpp"

namespace conflux::simnet {
namespace {

TEST(Message, TagComposition) {
  const Tag t = make_tag(3, 17, 5);
  EXPECT_NE(t, make_tag(3, 17, 6));
  EXPECT_NE(t, make_tag(3, 18, 5));
  EXPECT_NE(t, make_tag(4, 17, 5));
  // Collective sub-tags (<< 8) must not collide with user tags.
  EXPECT_NE(t << 8, t);
}

TEST(Spmd, SendRecvDelivers) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, std::vector<double>{1.0, 2.0, 3.0});
    } else {
      const auto got = comm.recv(0, 7);
      ASSERT_EQ(got.size(), 3u);
      EXPECT_EQ(got[1], 2.0);
    }
  });
}

TEST(Spmd, TagsSeparateStreams) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 100, std::vector<double>{1.0});
      comm.send(1, 200, std::vector<double>{2.0});
    } else {
      // Receive in the opposite order of sending: tags must match.
      EXPECT_EQ(comm.recv(0, 200).at(0), 2.0);
      EXPECT_EQ(comm.recv(0, 100).at(0), 1.0);
    }
  });
}

TEST(Spmd, FifoPerChannel) {
  run_spmd(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 50; ++i)
        comm.send(1, 5, std::vector<double>{static_cast<double>(i)});
    } else {
      for (int i = 0; i < 50; ++i)
        EXPECT_EQ(comm.recv(0, 5).at(0), static_cast<double>(i));
    }
  });
}

TEST(Spmd, IntsRoundTripWith4ByteAccounting) {
  Network net(2);
  run_spmd(net, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_ints(1, 9, std::vector<int>{5, -7, 1 << 20});
    } else {
      const auto got = comm.recv_ints(0, 9);
      EXPECT_EQ(got, (std::vector<int>{5, -7, 1 << 20}));
    }
  });
  EXPECT_EQ(net.stats().total().bytes_sent, 3 * sizeof(int));
}

TEST(Spmd, GhostCarriesOnlySize) {
  Network net(2);
  run_spmd(net, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send_ghost(1, 3, 12345);
    } else {
      EXPECT_EQ(comm.recv_ghost(0, 3), 12345u);
    }
  });
  EXPECT_EQ(net.stats().total().bytes_sent, 12345u);
  EXPECT_EQ(net.stats().total().messages_sent, 1u);
}

TEST(Spmd, SelfMessagesAreFree) {
  Network net(1);
  run_spmd(net, [](Comm& comm) {
    comm.send(0, 1, std::vector<double>{4.0});
    EXPECT_EQ(comm.recv(0, 1).at(0), 4.0);
  });
  EXPECT_EQ(net.stats().total().bytes_sent, 0u);
  EXPECT_EQ(net.stats().total().messages_sent, 0u);
}

TEST(Spmd, ExchangeSwapsBuffers) {
  run_spmd(2, [](Comm& comm) {
    const std::vector<double> mine = {static_cast<double>(comm.rank())};
    const auto theirs = comm.exchange(1 - comm.rank(), 11, mine);
    EXPECT_EQ(theirs.at(0), static_cast<double>(1 - comm.rank()));
  });
}

TEST(Stats, PerRankAccounting) {
  Network net(3);
  run_spmd(net, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<double>(10));
      comm.send(2, 1, std::vector<double>(20));
    } else {
      (void)comm.recv(0, 1);
    }
  });
  EXPECT_EQ(net.stats().rank_volume(0).bytes_sent, 30 * sizeof(double));
  EXPECT_EQ(net.stats().rank_volume(1).bytes_received, 10 * sizeof(double));
  EXPECT_EQ(net.stats().rank_volume(2).bytes_received, 20 * sizeof(double));
  EXPECT_EQ(net.stats().total().bytes_sent, net.stats().total().bytes_received);
  EXPECT_EQ(net.stats().max_rank_bytes(), 30 * sizeof(double));
  net.stats().reset();
  EXPECT_EQ(net.stats().total().bytes_sent, 0u);
}

TEST(Stats, MoveSendCountsBytes) {
  Network net(2);
  run_spmd(net, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(1000, 1.0);
      comm.send(1, 2, std::move(big));
    } else {
      EXPECT_EQ(comm.recv(0, 2).size(), 1000u);
    }
  });
  EXPECT_EQ(net.stats().total().bytes_sent, 8000u);
}

TEST(Spmd, ReturnsJobTotals) {
  const CommVolume total = run_spmd(4, [](Comm& comm) {
    const int next = (comm.rank() + 1) % comm.size();
    const int prev = (comm.rank() + 3) % comm.size();
    comm.send(next, 1, std::vector<double>(5));
    (void)comm.recv(prev, 1);
  });
  EXPECT_EQ(total.bytes_sent, 4 * 5 * sizeof(double));
  EXPECT_EQ(total.messages_sent, 4u);
}

TEST(Spmd, ExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(
      run_spmd(3,
               [](Comm& comm) {
                 if (comm.rank() == 0)
                   throw std::runtime_error("rank0 failed");
                 // Other ranks block on a message that never comes; the
                 // abort must wake them.
                 (void)comm.recv(0, 99);
               }),
      std::runtime_error);
}

TEST(Spmd, ContractViolationSurfaces) {
  EXPECT_THROW(run_spmd(2,
                        [](Comm& comm) {
                          if (comm.rank() == 1) CONFLUX_EXPECTS(false);
                          else
                            (void)comm.recv(1, 1);
                        }),
               ContractViolation);
}

TEST(Spmd, ManyRanksStress) {
  const int p = 64;
  std::atomic<int> sum{0};
  run_spmd(p, [&](Comm& comm) {
    // All-to-one then one-to-all over raw p2p.
    if (comm.rank() != 0) {
      comm.send(0, 1, std::vector<double>{static_cast<double>(comm.rank())});
      (void)comm.recv(0, 2);
    } else {
      int local = 0;
      for (int r = 1; r < p; ++r)
        local += static_cast<int>(comm.recv(r, 1).at(0));
      for (int r = 1; r < p; ++r) comm.send(r, 2, std::vector<double>{1.0});
      sum = local;
    }
  });
  EXPECT_EQ(sum.load(), p * (p - 1) / 2);
}

TEST(Network, AbortWakesReceivers) {
  Network net(2);
  EXPECT_THROW(run_spmd(net,
                        [&](Comm& comm) {
                          if (comm.rank() == 0) {
                            throw std::logic_error("bail");
                          }
                          (void)comm.recv(0, 1);  // must not hang
                        }),
               std::logic_error);
  EXPECT_TRUE(net.aborted());
}

TEST(Network, InvalidRankRejected) {
  Network net(2);
  EXPECT_THROW(net.deliver(0, 5, 1, Message{}), ContractViolation);
  EXPECT_THROW(Comm(net, 7), ContractViolation);
}

}  // namespace
}  // namespace conflux::simnet
