// Tests for the Matrix value type and its views.
#include <gtest/gtest.h>

#include "linalg/generate.hpp"
#include "linalg/matrix.hpp"

namespace conflux::linalg {
namespace {

TEST(Matrix, ZeroInitialized) {
  Matrix a(3, 4);
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_EQ(a(i, j), 0.0);
  EXPECT_EQ(a.rows(), 3);
  EXPECT_EQ(a.cols(), 4);
  EXPECT_EQ(a.size(), 12u);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix eye = Matrix::identity(5);
  for (int i = 0; i < 5; ++i)
    for (int j = 0; j < 5; ++j) EXPECT_EQ(eye(i, j), i == j ? 1.0 : 0.0);
}

TEST(Matrix, ValueSemantics) {
  Matrix a(2, 2);
  a(0, 1) = 3.5;
  Matrix b = a;
  b(0, 1) = -1.0;
  EXPECT_EQ(a(0, 1), 3.5);
  EXPECT_EQ(b(0, 1), -1.0);
  EXPECT_TRUE(a == a);
  EXPECT_FALSE(a == b);
}

TEST(Matrix, RowSpanIsLive) {
  Matrix a(2, 3);
  auto r = a.row(1);
  r[2] = 9.0;
  EXPECT_EQ(a(1, 2), 9.0);
}

TEST(View, BlockAddressesSubmatrix) {
  Matrix a(4, 4);
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) a(i, j) = i * 10 + j;
  auto blk = a.block(1, 2, 2, 2);
  EXPECT_EQ(blk.rows(), 2);
  EXPECT_EQ(blk.cols(), 2);
  EXPECT_EQ(blk(0, 0), 12.0);
  EXPECT_EQ(blk(1, 1), 23.0);
  blk(0, 0) = -5;
  EXPECT_EQ(a(1, 2), -5.0);
}

TEST(View, NestedBlocks) {
  Matrix a(6, 6);
  a(3, 3) = 7;
  auto outer = a.block(2, 2, 4, 4);
  auto inner = outer.block(1, 1, 2, 2);
  EXPECT_EQ(inner(0, 0), 7.0);
}

TEST(View, BlockOutOfRangeThrows) {
  Matrix a(3, 3);
  EXPECT_THROW((void)a.block(1, 1, 3, 1), ContractViolation);
  EXPECT_THROW((void)a.block(-1, 0, 1, 1), ContractViolation);
}

TEST(View, ConstViewFromMutable) {
  Matrix a(2, 2);
  a(1, 0) = 4;
  MatrixView mv = a.view();
  ConstMatrixView cv = mv;  // implicit conversion
  EXPECT_EQ(cv(1, 0), 4.0);
}

TEST(Copy, CopiesBlockwise) {
  Matrix a(3, 3), b(3, 3);
  a(2, 2) = 8;
  copy(a.view(), b.view());
  EXPECT_EQ(b(2, 2), 8.0);
  EXPECT_THROW(copy(a.view(), Matrix(2, 3).view()), ContractViolation);
}

TEST(Norms, MaxAbsAndFrobenius) {
  Matrix a(2, 2);
  a(0, 0) = 3;
  a(1, 1) = -4;
  EXPECT_EQ(max_abs(a.view()), 4.0);
  EXPECT_NEAR(frobenius(a.view()), 5.0, 1e-15);
}

TEST(Norms, MaxAbsDiff) {
  Matrix a(2, 2), b(2, 2);
  b(0, 1) = 0.25;
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.25);
}

class GeneratorTest : public ::testing::TestWithParam<MatrixKind> {};

TEST_P(GeneratorTest, DeterministicBySeed) {
  const Matrix a = generate(24, GetParam(), 5);
  const Matrix b = generate(24, GetParam(), 5);
  EXPECT_EQ(max_abs_diff(a.view(), b.view()), 0.0);
}

TEST_P(GeneratorTest, SeedChangesUniformFamilies) {
  if (GetParam() == MatrixKind::Laplace2D) GTEST_SKIP() << "seedless kind";
  const Matrix a = generate(24, GetParam(), 5);
  const Matrix b = generate(24, GetParam(), 6);
  EXPECT_GT(max_abs_diff(a.view(), b.view()), 0.0);
}

TEST_P(GeneratorTest, BoundedEntries) {
  const Matrix a = generate(32, GetParam(), 1);
  EXPECT_LE(max_abs(a.view()), 64.0);
  EXPECT_GT(max_abs(a.view()), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorTest,
                         ::testing::Values(MatrixKind::Uniform,
                                           MatrixKind::DiagDominant,
                                           MatrixKind::Interaction,
                                           MatrixKind::Laplace2D));

TEST(Generator, DiagDominantIsDominant) {
  const Matrix a = generate(16, MatrixKind::DiagDominant, 3);
  for (int i = 0; i < 16; ++i) {
    double off = 0;
    for (int j = 0; j < 16; ++j)
      if (j != i) off += std::abs(a(i, j));
    EXPECT_GT(std::abs(a(i, i)), off);
  }
}

TEST(Generator, Laplace2DStencil) {
  const Matrix a = generate(16, MatrixKind::Laplace2D, 1);  // 4x4 grid
  EXPECT_EQ(a(0, 0), 4.0);
  EXPECT_EQ(a(0, 1), -1.0);
  EXPECT_EQ(a(0, 4), -1.0);
  EXPECT_EQ(a(0, 5), 0.0);  // diagonal neighbour is not connected
  EXPECT_EQ(a(3, 4), 0.0);  // row wrap is not connected
}

TEST(Generator, RectangularShapes) {
  const Matrix a = generate(10, 4, MatrixKind::Uniform, 2);
  EXPECT_EQ(a.rows(), 10);
  EXPECT_EQ(a.cols(), 4);
}

}  // namespace
}  // namespace conflux::linalg
