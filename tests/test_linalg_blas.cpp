// Tests for the BLAS-3 kernels: GEMM against a naive reference, the four
// TRSM variants against explicit residuals, over parameterized shape sweeps.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "linalg/blas.hpp"
#include "linalg/generate.hpp"

namespace conflux::linalg {
namespace {

Matrix naive_gemm(double alpha, const Matrix& a, const Matrix& b, double beta,
                  const Matrix& c) {
  Matrix out = c;
  for (int i = 0; i < c.rows(); ++i)
    for (int j = 0; j < c.cols(); ++j) {
      double sum = 0;
      for (int k = 0; k < a.cols(); ++k) sum += a(i, k) * b(k, j);
      out(i, j) = alpha * sum + beta * c(i, j);
    }
  return out;
}

class GemmShape
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShape, MatchesNaive) {
  const auto [m, n, k] = GetParam();
  const Matrix a = generate(m, k, MatrixKind::Uniform, 1);
  const Matrix b = generate(k, n, MatrixKind::Uniform, 2);
  Matrix c = generate(m, n, MatrixKind::Uniform, 3);
  const Matrix want = naive_gemm(1.5, a, b, -0.5, c);
  gemm(1.5, a.view(), b.view(), -0.5, c.view());
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-12 * k);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmShape,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 3, 7),
                      std::make_tuple(16, 16, 16), std::make_tuple(33, 1, 65),
                      std::make_tuple(64, 65, 63), std::make_tuple(1, 70, 70),
                      std::make_tuple(128, 17, 96)));

TEST(Gemm, BetaZeroOverwritesGarbage) {
  Matrix c(2, 2);
  c(0, 0) = std::numeric_limits<double>::quiet_NaN();
  const Matrix a = Matrix::identity(2);
  gemm(1.0, a.view(), a.view(), 0.0, c.view());
  EXPECT_EQ(c(0, 0), 1.0);
  EXPECT_EQ(c(0, 1), 0.0);
}

TEST(Gemm, AlphaZeroScalesOnly) {
  Matrix c(2, 2);
  c(1, 1) = 4.0;
  const Matrix a = generate(2, MatrixKind::Uniform, 1);
  gemm(0.0, a.view(), a.view(), 0.5, c.view());
  EXPECT_EQ(c(1, 1), 2.0);
}

TEST(Gemm, EmptyKIsPureScale) {
  Matrix a(3, 0), b(0, 3);
  Matrix c = Matrix::identity(3);
  gemm(1.0, a.view(), b.view(), 3.0, c.view());
  EXPECT_EQ(c(1, 1), 3.0);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 2), c(2, 2);  // a.cols != b.rows
  EXPECT_THROW(gemm(1.0, a.view(), b.view(), 0.0, c.view()),
               ContractViolation);
}

TEST(SchurUpdate, SubtractsProduct) {
  const Matrix a = generate(8, 4, MatrixKind::Uniform, 4);
  const Matrix b = generate(4, 8, MatrixKind::Uniform, 5);
  Matrix c = generate(8, 8, MatrixKind::Uniform, 6);
  const Matrix want = naive_gemm(-1.0, a, b, 1.0, c);
  schur_update(c.view(), a.view(), b.view());
  EXPECT_LT(max_abs_diff(c.view(), want.view()), 1e-13);
}

/// Build a well-conditioned triangular matrix.
Matrix triangular(int n, Triangle tri, Diag diag, std::uint64_t seed) {
  Matrix t = generate(n, MatrixKind::Uniform, seed);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      const bool keep = tri == Triangle::Lower ? j <= i : j >= i;
      if (!keep) t(i, j) = 0.0;
      if (i == j) t(i, j) = diag == Diag::Unit ? 1.0 : 2.0 + 0.1 * i;
    }
  return t;
}

class TrsmCase : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrsmCase, LeftLowerSolves) {
  const auto [m, n] = GetParam();
  for (Diag diag : {Diag::Unit, Diag::NonUnit}) {
    const Matrix l = triangular(m, Triangle::Lower, diag, 11);
    const Matrix b = generate(m, n, MatrixKind::Uniform, 12);
    Matrix x = b;
    trsm_left(Triangle::Lower, diag, l.view(), x.view());
    Matrix lx(m, n);
    gemm(1.0, l.view(), x.view(), 0.0, lx.view());
    EXPECT_LT(max_abs_diff(lx.view(), b.view()), 1e-10) << "m=" << m;
  }
}

TEST_P(TrsmCase, LeftUpperSolves) {
  const auto [m, n] = GetParam();
  for (Diag diag : {Diag::Unit, Diag::NonUnit}) {
    const Matrix u = triangular(m, Triangle::Upper, diag, 13);
    const Matrix b = generate(m, n, MatrixKind::Uniform, 14);
    Matrix x = b;
    trsm_left(Triangle::Upper, diag, u.view(), x.view());
    Matrix ux(m, n);
    gemm(1.0, u.view(), x.view(), 0.0, ux.view());
    EXPECT_LT(max_abs_diff(ux.view(), b.view()), 1e-10);
  }
}

TEST_P(TrsmCase, RightUpperSolves) {
  const auto [m, n] = GetParam();
  for (Diag diag : {Diag::Unit, Diag::NonUnit}) {
    const Matrix u = triangular(n, Triangle::Upper, diag, 15);
    const Matrix b = generate(m, n, MatrixKind::Uniform, 16);
    Matrix x = b;
    trsm_right(Triangle::Upper, diag, u.view(), x.view());
    Matrix xu(m, n);
    gemm(1.0, x.view(), u.view(), 0.0, xu.view());
    EXPECT_LT(max_abs_diff(xu.view(), b.view()), 1e-10);
  }
}

TEST_P(TrsmCase, RightLowerSolves) {
  const auto [m, n] = GetParam();
  for (Diag diag : {Diag::Unit, Diag::NonUnit}) {
    const Matrix l = triangular(n, Triangle::Lower, diag, 17);
    const Matrix b = generate(m, n, MatrixKind::Uniform, 18);
    Matrix x = b;
    trsm_right(Triangle::Lower, diag, l.view(), x.view());
    Matrix xl(m, n);
    gemm(1.0, x.view(), l.view(), 0.0, xl.view());
    EXPECT_LT(max_abs_diff(xl.view(), b.view()), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrsmCase,
                         ::testing::Values(std::make_tuple(1, 1),
                                           std::make_tuple(4, 9),
                                           std::make_tuple(16, 16),
                                           std::make_tuple(31, 7),
                                           std::make_tuple(64, 33)));

// ---------------------------------------------------------------------------
// Optimized-vs-reference pins: the packed/tiled kernels must agree with the
// reference loops elementwise (up to summation-order rounding) on shapes that
// exercise the small fast path, the packed path, and every edge-padding case.
// ---------------------------------------------------------------------------

class OptimizedGemmShape
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(OptimizedGemmShape, MatchesReferenceElementwise) {
  const auto [m, n, k] = GetParam();
  for (const auto& [alpha, beta] :
       {std::make_tuple(1.0, 0.0), std::make_tuple(-1.0, 1.0),
        std::make_tuple(1.5, -0.5)}) {
    const Matrix a = generate(m, k, MatrixKind::Uniform, 21);
    const Matrix b = generate(k, n, MatrixKind::Uniform, 22);
    const Matrix c0 = generate(m, n, MatrixKind::Uniform, 23);
    Matrix c_ref = c0, c_opt = c0;
    gemm_reference(alpha, a.view(), b.view(), beta, c_ref.view());
    gemm_optimized(alpha, a.view(), b.view(), beta, c_opt.view());
    EXPECT_LT(max_abs_diff(c_ref.view(), c_opt.view()), 1e-12 * (k + 1))
        << "m=" << m << " n=" << n << " k=" << k << " alpha=" << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, OptimizedGemmShape,
    ::testing::Values(std::make_tuple(1, 1, 1),       // degenerate
                      std::make_tuple(47, 31, 53),    // small fast path
                      std::make_tuple(96, 64, 256),   // exactly one k-panel
                      std::make_tuple(97, 65, 257),   // every edge padded
                      std::make_tuple(200, 120, 300),  // k spans two panels
                      std::make_tuple(130, 7, 512)));  // narrow C

class OptimizedTrsmShape
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OptimizedTrsmShape, AllVariantsMatchReference) {
  const auto [m, n] = GetParam();
  for (Triangle tri : {Triangle::Lower, Triangle::Upper}) {
    for (Diag diag : {Diag::Unit, Diag::NonUnit}) {
      {
        const Matrix a = triangular(m, tri, diag, 24);
        const Matrix b = generate(m, n, MatrixKind::Uniform, 25);
        Matrix x_ref = b, x_opt = b;
        trsm_left_reference(tri, diag, a.view(), x_ref.view());
        trsm_left_optimized(tri, diag, a.view(), x_opt.view());
        // Relative to the solution magnitude: random unit-triangular solves
        // grow exponentially in m, so an absolute tolerance cannot work.
        EXPECT_LT(max_abs_diff(x_ref.view(), x_opt.view()),
                  1e-13 * (1.0 + max_abs(x_ref.view())))
            << "left m=" << m << " n=" << n;
      }
      {
        const Matrix a = triangular(n, tri, diag, 26);
        const Matrix b = generate(m, n, MatrixKind::Uniform, 27);
        Matrix x_ref = b, x_opt = b;
        trsm_right_reference(tri, diag, a.view(), x_ref.view());
        trsm_right_optimized(tri, diag, a.view(), x_opt.view());
        EXPECT_LT(max_abs_diff(x_ref.view(), x_opt.view()),
                  1e-13 * (1.0 + max_abs(x_ref.view())))
            << "right m=" << m << " n=" << n;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OptimizedTrsmShape,
                         ::testing::Values(std::make_tuple(3, 5),
                                           std::make_tuple(64, 64),
                                           std::make_tuple(129, 96),
                                           std::make_tuple(192, 200)));

TEST(BlasSwitch, DispatchFollowsRuntimeSelection) {
  const BlasImpl saved = blas_impl();
  const Matrix a = generate(96, 96, MatrixKind::Uniform, 28);
  const Matrix b = generate(96, 96, MatrixKind::Uniform, 29);

  Matrix c_ref(96, 96), c_via_switch(96, 96);
  gemm_reference(1.0, a.view(), b.view(), 0.0, c_ref.view());
  set_blas_impl(BlasImpl::Reference);
  gemm(1.0, a.view(), b.view(), 0.0, c_via_switch.view());
  // Same code path, so bitwise identical.
  EXPECT_EQ(max_abs_diff(c_ref.view(), c_via_switch.view()), 0.0);

  Matrix c_opt(96, 96), c_opt_via_switch(96, 96);
  gemm_optimized(1.0, a.view(), b.view(), 0.0, c_opt.view());
  set_blas_impl(BlasImpl::Optimized);
  gemm(1.0, a.view(), b.view(), 0.0, c_opt_via_switch.view());
  EXPECT_EQ(max_abs_diff(c_opt.view(), c_opt_via_switch.view()), 0.0);

  set_blas_impl(saved);
}

TEST(Trsm, IgnoresOppositeTriangleGarbage) {
  Matrix l = triangular(6, Triangle::Lower, Diag::NonUnit, 19);
  // Poison the strictly-upper part; the solve must not read it.
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j)
      l(i, j) = std::numeric_limits<double>::quiet_NaN();
  const Matrix b = generate(6, 3, MatrixKind::Uniform, 20);
  Matrix x = b;
  trsm_left(Triangle::Lower, Diag::NonUnit, l.view(), x.view());
  EXPECT_FALSE(std::isnan(x(5, 2)));
}

TEST(Trsm, ShapeMismatchThrows) {
  Matrix a(3, 3), b(4, 2);
  EXPECT_THROW(trsm_left(Triangle::Lower, Diag::Unit, a.view(), b.view()),
               ContractViolation);
  Matrix c(2, 4);
  EXPECT_THROW(trsm_right(Triangle::Upper, Diag::Unit, a.view(), c.view()),
               ContractViolation);
}

}  // namespace
}  // namespace conflux::linalg
