// ConfChaos: deterministic fault injection, receive deadlines, end-to-end
// payload integrity and run-level retry. Pins the chaos contract — seeded
// FaultPlan decisions are bit-reproducible across repeats and execution
// modes, a would-be hang becomes a typed located ReceiveTimeout, injected
// corruption becomes a typed PayloadCorrupted (never a silent misfactor),
// and run_with_retry recovers transient failures with a result that is
// bit-identical to a fault-free run's communication volume.
#include <gtest/gtest.h>

#include <chrono>
#include <stdexcept>
#include <string>
#include <vector>

#include "factor/retry.hpp"
#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "simnet/collectives.hpp"
#include "simnet/comm.hpp"
#include "simnet/spmd.hpp"

namespace conflux::simnet {
namespace {

FabricSpec virtual_fabric() {
  FabricSpec spec;
  spec.mode = ExecMode::VirtualTime;
  spec.link = LinkModel{1e-6, 1e-10, 0.0};
  return spec;
}

/// A chaos-heavy spec: delays with jitter, stalls, a slow rank.
FaultSpec noisy_spec(std::uint64_t seed) {
  FaultSpec spec;
  spec.seed = seed;
  spec.delay_prob = 0.3;
  spec.delay_s = 1e-4;
  spec.jitter_s = 5e-5;
  spec.stall_prob = 0.2;
  spec.stall_s = 2e-4;
  spec.slow_ranks = 2;
  spec.slow_factor = 3.0;
  return spec;
}

/// Record the full injection sequence for a fixed synthetic message
/// pattern.
std::vector<FaultPlan::Injection> injection_trace(FaultPlan& plan, int p,
                                                  int msgs) {
  std::vector<FaultPlan::Injection> out;
  for (int i = 0; i < msgs; ++i)
    for (int src = 0; src < p; ++src)
      out.push_back(plan.at_delivery(src, (src + 1 + i) % p,
                                     make_tag(1, static_cast<unsigned>(i)),
                                     64));
  return out;
}

bool same_injection(const FaultPlan::Injection& a,
                    const FaultPlan::Injection& b) {
  return a.delay_s == b.delay_s && a.stall_s == b.stall_s &&
         a.corrupt == b.corrupt && a.corrupt_bit == b.corrupt_bit;
}

TEST(FaultPlan, DecisionsAreReproducibleAcrossRuns) {
  FaultSpec spec = noisy_spec(7);
  spec.corrupt_prob = 0.1;
  FaultPlan plan(spec);
  plan.reset(8);
  const auto first = injection_trace(plan, 8, 50);
  plan.begin_run();  // what run_team does at the top of every run
  const auto second = injection_trace(plan, 8, 50);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_TRUE(same_injection(first[i], second[i])) << "decision " << i;
  // And the plan actually decided some faults, or the test proves nothing.
  const auto counts = plan.counters();
  EXPECT_GT(counts.delayed, 0u);
  EXPECT_GT(counts.stalled, 0u);
  EXPECT_GT(counts.corrupted, 0u);
}

TEST(FaultPlan, NextAttemptRerandomizesDecisions) {
  FaultPlan plan(noisy_spec(7));
  plan.reset(8);
  const auto first = injection_trace(plan, 8, 50);
  plan.next_attempt();
  plan.begin_run();
  const auto retried = injection_trace(plan, 8, 50);
  int differing = 0;
  for (std::size_t i = 0; i < first.size(); ++i)
    if (!same_injection(first[i], retried[i])) ++differing;
  EXPECT_GT(differing, 0) << "retry saw the identical fault schedule";
}

TEST(FaultPlan, SlowRankSetIsExactAndSeedStable) {
  FaultSpec spec;
  spec.slow_ranks = 3;
  spec.slow_factor = 2.0;
  FaultPlan a(spec), b(spec);
  a.reset(16);
  b.reset(16);
  int slow = 0;
  for (int r = 0; r < 16; ++r) {
    EXPECT_EQ(a.slow_rank(r), b.slow_rank(r));
    if (a.slow_rank(r)) ++slow;
  }
  EXPECT_EQ(slow, 3);
}

TEST(Chaos, VirtualTimeChaosRunIsBitReproducible) {
  // The headline determinism contract: with a fault plan attached, a
  // virtual-time run's makespan and injection counters are bit-identical
  // across repeats — chaos is reproducible, not heisenbuggy.
  const int p = 16;
  auto ring = [&](Comm& comm) {
    const Group world = Group::iota(p);
    for (int s = 0; s < 5; ++s) {
      comm.send((comm.rank() + 1) % p, make_tag(1, unsigned(s)),
                std::vector<double>(32, 1.0));
      (void)comm.recv_view((comm.rank() + p - 1) % p,
                           make_tag(1, unsigned(s)));
      barrier(comm, world, make_tag(2, unsigned(s)));
    }
  };
  double makespans[2];
  FaultPlan::Counters counts[2];
  for (int rep = 0; rep < 2; ++rep) {
    FaultPlan plan(noisy_spec(11));
    Network net(p, virtual_fabric());
    net.set_faults(&plan);
    run_spmd(net, ring);
    makespans[rep] = net.virtual_makespan();
    counts[rep] = plan.counters();
  }
  EXPECT_EQ(makespans[0], makespans[1]);  // bitwise, not approximate
  EXPECT_EQ(counts[0].delayed, counts[1].delayed);
  EXPECT_EQ(counts[0].stalled, counts[1].stalled);
  EXPECT_GT(counts[0].delayed + counts[0].stalled, 0u);
}

TEST(Chaos, InjectedDelaysAreMakespanVisibleInVirtualTime) {
  const int p = 4;
  auto job = [&](Comm& comm) {
    if (comm.rank() == 0)
      for (int dst = 1; dst < p; ++dst)
        comm.send(dst, 3, std::vector<double>(16, 1.0));
    else
      (void)comm.recv_view(0, 3);
  };
  Network quiet(p, virtual_fabric());
  run_spmd(quiet, job);
  const double baseline = quiet.virtual_makespan();

  FaultSpec spec;
  spec.seed = 3;
  spec.delay_prob = 1.0;  // every remote message delayed
  spec.delay_s = 0.25;
  FaultPlan plan(spec);
  Network net(p, virtual_fabric());
  net.set_faults(&plan);
  run_spmd(net, job);
  EXPECT_GE(net.virtual_makespan(), baseline + 0.25);
  // Delays never change the dataflow, so the volume is untouched.
  EXPECT_EQ(net.stats().total().bytes_sent, quiet.stats().total().bytes_sent);
}

TEST(Chaos, ThreadedDelayPostponesDelivery) {
  FaultSpec spec;
  spec.seed = 5;
  spec.delay_prob = 1.0;
  spec.delay_s = 0.08;
  FaultPlan plan(spec);
  Network net(2);
  net.set_faults(&plan);
  const auto t0 = std::chrono::steady_clock::now();
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0)
      comm.send(1, 1, std::vector<double>{1.0});
    else
      EXPECT_EQ(comm.recv_view(0, 1)[0], 1.0);
  });
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(elapsed, 0.07);
  EXPECT_EQ(plan.counters().delayed, 1u);
}

TEST(Containment, ReceiveTimeoutCarriesLocatedDiagnostics) {
  // A receive that can never match (nobody sends) must become a typed,
  // located diagnostic under a deadline — not a CI hang.
  Network net(3);
  RunPolicy policy;
  policy.deadline_s = 0.15;
  policy.heartbeat_s = 0.02;
  const Tag tag = make_tag(4, 2, 1);
  try {
    run_spmd(net, [&](Comm& comm) {
      if (comm.rank() == 0) (void)comm.recv_view(2, tag);
    }, policy);
    FAIL() << "deadline did not fire";
  } catch (const ReceiveTimeout& e) {
    EXPECT_FALSE(e.deadlock());
    EXPECT_EQ(e.context().rank, 0);
    EXPECT_EQ(e.context().src, 2);
    EXPECT_EQ(e.context().dst, 0);
    EXPECT_TRUE(e.context().has_tag);
    EXPECT_EQ(e.context().tag, tag);
    const std::string what = e.what();
    EXPECT_NE(what.find("deadline"), std::string::npos);
    EXPECT_NE(what.find("rank=0"), std::string::npos);
  }
  // The failed rank lands in the aggregated report.
  const auto report = net.failure_report();
  ASSERT_EQ(report.size(), 1u);
  EXPECT_EQ(report[0].rank, 0);
  EXPECT_NE(report[0].message.find("deadline"), std::string::npos);
}

TEST(Containment, VirtualClockDeadlineFiresDeterministically) {
  // Virtual-time analogue: a fault-stalled simulated run whose clock blows
  // past the cap fails with the same typed diagnostic, deterministically
  // and without any real waiting.
  FaultSpec spec;
  spec.seed = 9;
  spec.stall_prob = 1.0;
  spec.stall_s = 10.0;  // simulated seconds
  FaultPlan plan(spec);
  Network net(2, virtual_fabric());
  net.set_faults(&plan);
  RunPolicy policy;
  policy.virtual_deadline_s = 1.0;
  net.set_policy(policy);
  try {
    run_spmd(net, [&](Comm& comm) {
      if (comm.rank() == 0)
        comm.send(1, 1, std::vector<double>{1.0});
      else
        (void)comm.recv_view(0, 1);
    });
    FAIL() << "virtual deadline did not fire";
  } catch (const ReceiveTimeout& e) {
    EXPECT_FALSE(e.deadlock());
    EXPECT_EQ(e.context().rank, 1);
    EXPECT_EQ(e.context().src, 0);
  }
}

TEST(Integrity, CorruptedExclusivePayloadIsDetected) {
  FaultSpec spec;
  spec.seed = 21;
  spec.corrupt_prob = 1.0;
  FaultPlan plan(spec);
  Network net(2);
  net.set_faults(&plan);
  net.set_integrity(true);
  try {
    run_spmd(net, [&](Comm& comm) {
      if (comm.rank() == 0)
        comm.send(1, 6, std::vector<double>(128, 2.0));
      else
        (void)comm.recv_view(0, 6);
    });
    FAIL() << "corruption not detected";
  } catch (const PayloadCorrupted& e) {
    EXPECT_EQ(e.context().rank, 1);
    EXPECT_EQ(e.context().src, 0);
    EXPECT_NE(std::string(e.what()).find("integrity"), std::string::npos);
  }
  EXPECT_EQ(plan.counters().corrupted, 1u);
}

TEST(Integrity, MulticastCorruptionIsIsolatedPerRecipient) {
  // A shared multicast payload is aliased by every recipient; injected
  // corruption clones before flipping, so the sender's buffer (and any
  // uncorrupted recipient's view) stays pristine.
  FaultSpec spec;
  spec.seed = 22;
  spec.corrupt_prob = 1.0;
  FaultPlan plan(spec);
  Network net(3);
  net.set_faults(&plan);
  net.set_integrity(true);
  const SharedBuffer payload =
      make_shared_buffer(std::vector<double>{1.0, 2.0, 3.0, 4.0});
  EXPECT_THROW(run_spmd(net,
                        [&](Comm& comm) {
                          if (comm.rank() == 0) {
                            const std::vector<int> dsts = {1, 2};
                            comm.multicast(dsts, 7, payload);
                          } else {
                            (void)comm.recv_view(0, 7);
                          }
                        }),
               PayloadCorrupted);
  // The original storage was never touched.
  EXPECT_EQ((*payload)[0], 1.0);
  EXPECT_EQ((*payload)[3], 4.0);
  EXPECT_EQ(plan.counters().corrupted, 2u);
}

TEST(Integrity, GhostMessagesCannotBeCorrupted) {
  FaultSpec spec;
  spec.seed = 23;
  spec.corrupt_prob = 1.0;
  FaultPlan plan(spec);
  Network net(2);
  net.set_faults(&plan);
  net.set_integrity(true);
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0)
      comm.send_ghost(1, 8, 1024);
    else
      EXPECT_EQ(comm.recv_ghost(0, 8), 1024u);
  });
  EXPECT_EQ(plan.counters().corrupted, 0u);
}

TEST(Aggregation, AllRankFailuresAreReported) {
  for (const bool vtime : {false, true}) {
    Network net(4, vtime ? virtual_fabric() : FabricSpec{});
    EXPECT_THROW(
        run_spmd(net,
                 [](Comm& comm) {
                   throw std::runtime_error(
                       "rank " + std::to_string(comm.rank()) + " failed");
                 }),
        std::runtime_error);
    const auto report = net.failure_report();
    ASSERT_EQ(report.size(), 4u) << (vtime ? "vtime" : "threaded");
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(report[static_cast<std::size_t>(r)].rank, r);
      EXPECT_NE(report[static_cast<std::size_t>(r)].message.find(
                    "rank " + std::to_string(r)),
                std::string::npos);
    }
  }
}

}  // namespace
}  // namespace conflux::simnet

namespace conflux::factor {
namespace {

using simnet::FaultPlan;
using simnet::FaultSpec;

TEST(Retry, TransientFailuresRetryUntilSuccess) {
  FaultPlan plan(FaultSpec{});
  int calls = 0;
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.backoff_s = 0.001;
  policy.real_sleep = false;  // virtual backoff: recorded, not slept
  const FactorResult result = run_with_retry(
      [&]() -> FactorResult {
        ++calls;
        if (calls <= 2)
          throw simnet::ReceiveTimeout("transient timeout", {}, {},
                                       /*deadlock=*/false);
        return FactorResult{};
      },
      policy, &plan);
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(result.attempts, 3);
  ASSERT_EQ(result.failure_causes.size(), 2u);
  EXPECT_NE(result.failure_causes[0].find("transient"), std::string::npos);
  EXPECT_GT(result.backoff_seconds, 0.0);
  EXPECT_EQ(plan.attempt(), 2u);  // advanced once per failed attempt
}

TEST(Retry, DeterministicFailuresAreNotRetried) {
  int calls = 0;
  EXPECT_THROW(run_with_retry([&]() -> FactorResult {
                 ++calls;
                 throw ContractViolation("program bug");
               }),
               ContractViolation);
  EXPECT_EQ(calls, 1);
  // A detected deadlock is deterministic too, timeout type notwithstanding.
  calls = 0;
  EXPECT_THROW(run_with_retry([&]() -> FactorResult {
                 ++calls;
                 throw simnet::ReceiveTimeout("deadlock", {}, {},
                                              /*deadlock=*/true);
               }),
               simnet::ReceiveTimeout);
  EXPECT_EQ(calls, 1);
}

TEST(Retry, ExhaustedAttemptsRethrow) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.backoff_s = 0;
  policy.real_sleep = false;
  int calls = 0;
  EXPECT_THROW(run_with_retry(
                   [&]() -> FactorResult {
                     ++calls;
                     throw simnet::PayloadCorrupted("flipped", {});
                   },
                   policy),
               simnet::PayloadCorrupted);
  EXPECT_EQ(calls, 3);
}

TEST(Retry, LuRecoversFromInjectedCorruptionBitIdentically) {
  // End to end: a numeric COnfLUX run with injected payload corruption and
  // integrity checking fails its poisoned attempts with the typed
  // PayloadCorrupted, retries under a re-randomized plan, and the
  // recovered result matches a fault-free run bit-for-bit in volume and
  // passes the residual gate.
  const linalg::Matrix a = linalg::generate(64, linalg::MatrixKind::Uniform,
                                            77);
  lu::LuConfig cfg;
  cfg.n = 64;
  cfg.p = 4;
  cfg.mode = Mode::Numeric;

  const lu::LuResult clean = lu::make_algorithm("COnfLUX")->run(&a, cfg);
  ASSERT_LT(clean.residual, 1e-11);

  // Scan seeds until one poisons the first attempt (each seed's outcome is
  // deterministic, so the scan is too); the recovered run must then match
  // the clean one bit-for-bit in volume and pass the residual gate.
  bool recovered_from_fault = false;
  for (std::uint64_t seed = 1; seed <= 64 && !recovered_from_fault; ++seed) {
    FaultSpec spec;
    spec.seed = seed;
    spec.corrupt_prob = 0.004;
    FaultPlan plan(spec);
    lu::LuConfig chaos_cfg = cfg;
    chaos_cfg.faults = &plan;
    chaos_cfg.integrity = true;
    RetryPolicy policy;
    policy.max_attempts = 8;
    policy.backoff_s = 0.0005;
    policy.real_sleep = false;
    const lu::LuResult recovered = run_with_retry(
        [&] { return lu::make_algorithm("COnfLUX")->run(&a, chaos_cfg); },
        policy, &plan);
    EXPECT_LT(recovered.residual, 1e-11) << "seed " << seed;
    EXPECT_EQ(recovered.total.bytes_sent, clean.total.bytes_sent)
        << "seed " << seed;
    EXPECT_EQ(recovered.total.messages_sent, clean.total.messages_sent)
        << "seed " << seed;
    if (recovered.attempts > 1) {
      recovered_from_fault = true;
      EXPECT_FALSE(recovered.failure_causes.empty());
      EXPECT_NE(recovered.failure_causes[0].find("integrity"),
                std::string::npos)
          << recovered.failure_causes[0];
    }
  }
  // The injected corruption must actually have fired for some seed, or
  // this test degenerates to a plain numeric run.
  EXPECT_TRUE(recovered_from_fault);
}

}  // namespace
}  // namespace conflux::factor
