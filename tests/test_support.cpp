// Tests for the support substrate: contracts, PRNG, formatting, env knobs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "support/assert.hpp"
#include "support/env.hpp"
#include "support/random.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace conflux {
namespace {

TEST(Contracts, ExpectsThrowsOnViolation) {
  EXPECT_THROW([] { CONFLUX_EXPECTS(1 == 2); }(), ContractViolation);
  EXPECT_NO_THROW([] { CONFLUX_EXPECTS(2 == 2); }());
}

TEST(Contracts, MessageCarriesContext) {
  try {
    CONFLUX_EXPECTS_MSG(false, "value was " << 42);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_support"), std::string::npos);
  }
}

TEST(Contracts, AssertAndEnsures) {
  EXPECT_THROW([] { CONFLUX_ASSERT(false); }(), ContractViolation);
  EXPECT_THROW([] { CONFLUX_ENSURES(false); }(), ContractViolation);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const double x = rng.uniform();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.02);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.0, 5.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 5.0);
  }
}

TEST(Rng, BelowCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.below(10);
    ASSERT_LT(x, 10u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SplitmixIsStateless) {
  EXPECT_EQ(splitmix64(42), splitmix64(42));
  EXPECT_NE(splitmix64(42), splitmix64(43));
}

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(Table, CsvQuotesCommas) {
  Table t({"a"});
  t.add_row({"x,y"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(500), "500 B");
  EXPECT_EQ(human_bytes(1.5e9), "1.5 GB");
}

TEST(Format, GbMatchesPaperUnit) { EXPECT_EQ(gb(45.42e9), "45.42"); }

TEST(Env, FallbackWhenUnset) {
  ::unsetenv("CONFLUX_TEST_UNSET_VAR");
  EXPECT_EQ(env_string("CONFLUX_TEST_UNSET_VAR", "dflt"), "dflt");
  EXPECT_EQ(env_int("CONFLUX_TEST_UNSET_VAR", 17), 17);
}

TEST(Env, ReadsValues) {
  ::setenv("CONFLUX_TEST_VAR", "123", 1);
  EXPECT_EQ(env_int("CONFLUX_TEST_VAR", 0), 123);
  EXPECT_EQ(env_string("CONFLUX_TEST_VAR", ""), "123");
  ::unsetenv("CONFLUX_TEST_VAR");
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  support::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](int i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyAndSingleRangesWork) {
  support::ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(5, 5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](int i) {
    EXPECT_EQ(i, 7);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  support::ThreadPool pool(3);
  std::atomic<int> total{0};
  pool.parallel_for(0, 6, [&](int) {
    // Must not deadlock: nested calls execute on the calling worker.
    pool.parallel_for(0, 10, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 60);
}

TEST(ThreadPool, PropagatesBodyException) {
  support::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](int i) {
                                   if (i == 37) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SizeOnePoolSpawnsNoThreadsAndStillRuns) {
  support::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1);
  int sum = 0;
  pool.parallel_for(0, 10, [&](int i) { sum += i; });
  EXPECT_EQ(sum, 45);
}

TEST(Stopwatch, MeasuresForwardTime) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(w.seconds(), 0.0);
  EXPECT_GE(w.millis(), w.seconds() * 1000 - 1e-6);
}

TEST(Stopwatch, PauseExcludesTimeFromAccumulated) {
  Stopwatch w;
  volatile double sink = 0;
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  w.pause();
  EXPECT_TRUE(w.paused());
  const double at_pause = w.accumulated_seconds();
  EXPECT_GT(at_pause, 0.0);
  for (int i = 0; i < 200000; ++i) sink = sink + i;
  // Paused: accumulated time is frozen while wall time keeps advancing.
  EXPECT_EQ(w.accumulated_seconds(), at_pause);
  EXPECT_GE(w.seconds(), at_pause);
  w.resume();
  EXPECT_FALSE(w.paused());
  for (int i = 0; i < 10000; ++i) sink = sink + i;
  // The new interval adds on top of the frozen total; the paused window
  // itself never lands in the accumulated clock.
  const double after = w.accumulated_seconds();
  EXPECT_GE(after, at_pause);
}

TEST(Stopwatch, PauseAndResumeAreIdempotent) {
  Stopwatch w;
  w.pause();
  w.pause();  // second pause is a no-op
  const double frozen = w.accumulated_seconds();
  w.resume();
  w.resume();  // second resume is a no-op
  EXPECT_GE(w.accumulated_seconds(), frozen);
}

}  // namespace
}  // namespace conflux
