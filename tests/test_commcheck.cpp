// Tests for the CommCheck static schedule verifier (src/verify): the
// CommGraph IR (FIFO matching, happens-before), each analysis pass against
// a seeded defect of its class — wait-for cycle, orphan receive, tag
// collision, volume-accounting mismatch — the buffer-ownership lint hooks,
// and the end-to-end driver proving every registered backend's dry-run
// schedule clean.
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "cholesky/cholesky_common.hpp"
#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "simnet/network.hpp"
#include "simnet/trace.hpp"
#include "support/assert.hpp"
#include "verify/commcheck.hpp"

namespace conflux::verify {
namespace {

using simnet::EventKind;
using simnet::Tag;
using simnet::TraceRecorder;

bool any_diag(const std::vector<Diagnostic>& diags, const std::string& pass,
              const std::string& needle) {
  for (const Diagnostic& d : diags)
    if (d.pass == pass && d.message.find(needle) != std::string::npos)
      return true;
  return false;
}

int count_errors(const std::vector<Diagnostic>& diags,
                 const std::string& pass) {
  int n = 0;
  for (const Diagnostic& d : diags)
    if (d.severity == Severity::Error && d.pass == pass) ++n;
  return n;
}

/// Expectation consistent with a fully matched graph (so the volume pass
/// stays quiet and tests isolate the pass under study).
VolumeExpectation consistent_expectation(const CommGraph& g) {
  VolumeExpectation expect;
  std::vector<std::uint64_t> sent(static_cast<std::size_t>(g.nranks()), 0);
  std::vector<std::uint64_t> recvd(static_cast<std::size_t>(g.nranks()), 0);
  for (const CommNode& node : g.nodes()) {
    if (node.rank == node.peer) continue;
    if (node.kind == EventKind::Send) {
      expect.total.bytes_sent += node.bytes;
      ++expect.total.messages_sent;
      sent[static_cast<std::size_t>(node.rank)] += node.bytes;
    } else {
      expect.total.bytes_received += node.bytes;
      recvd[static_cast<std::size_t>(node.rank)] += node.bytes;
    }
  }
  for (int r = 0; r < g.nranks(); ++r)
    expect.max_rank_bytes =
        std::max(expect.max_rank_bytes, sent[static_cast<std::size_t>(r)] +
                                            recvd[static_cast<std::size_t>(r)]);
  return expect;
}

// ---- CommGraph IR --------------------------------------------------------

TEST(CommGraph, FifoMatchingAndHappensBefore) {
  TraceRecorder rec(2);
  rec.record_send(0, 1, 7, 8);
  rec.record_send(0, 1, 7, 16);
  rec.record_recv(1, 0, 7, 8);
  rec.record_recv(1, 0, 7, 16);
  const CommGraph g = CommGraph::build(rec);

  ASSERT_EQ(g.nodes().size(), 4u);
  const int send0 = g.index_of(0, 0);
  const int send1 = g.index_of(0, 1);
  const int recv0 = g.index_of(1, 0);
  const int recv1 = g.index_of(1, 1);
  // k-th send on a (src, dst, tag) channel pairs with the k-th recv.
  EXPECT_EQ(g.nodes()[static_cast<std::size_t>(send0)].match, recv0);
  EXPECT_EQ(g.nodes()[static_cast<std::size_t>(send1)].match, recv1);

  // Message edges and program order induce happens-before; nothing flows
  // from the receiver back to the sender.
  EXPECT_TRUE(g.happens_before(send0, recv0));
  EXPECT_TRUE(g.happens_before(send0, recv1));
  EXPECT_TRUE(g.happens_before(send0, send1));
  EXPECT_FALSE(g.happens_before(recv0, send1));
  EXPECT_FALSE(g.happens_before(recv0, send0));
  EXPECT_FALSE(g.happens_before(send0, send0));
}

// ---- seeded defect 1: wait-for cycle (deadlock) --------------------------

TEST(SeededDefects, WaitForCycleIsDetected) {
  // Both ranks receive first, send second: the classic head-to-head
  // exchange deadlock under blocking receives. Every message is matched, so
  // only the deadlock pass may fire.
  TraceRecorder rec(2);
  rec.record_recv(0, 1, 11, 8);
  rec.record_send(0, 1, 10, 8);
  rec.record_recv(1, 0, 10, 8);
  rec.record_send(1, 0, 11, 8);

  const CommGraph g = CommGraph::build(rec);
  const auto diags = run_all_passes(g, consistent_expectation(g));
  EXPECT_TRUE(has_errors(diags));
  EXPECT_TRUE(any_diag(diags, "deadlock", "wait-for cycle"));
  EXPECT_EQ(count_errors(diags, "deadlock"), 1);  // one cycle, one report
  EXPECT_EQ(count_errors(diags, "matching"), 0);
  EXPECT_EQ(count_errors(diags, "tags"), 0);
  EXPECT_EQ(count_errors(diags, "volume"), 0);

  // The diagnostic locates both blocked operations.
  for (const Diagnostic& d : diags)
    if (d.pass == "deadlock") {
      EXPECT_NE(d.message.find("rank 0"), std::string::npos) << d.message;
      EXPECT_NE(d.message.find("rank 1"), std::string::npos) << d.message;
    }
}

// ---- seeded defect 2: orphan receive -------------------------------------

TEST(SeededDefects, OrphanRecvIsDetected) {
  // Rank 1 waits for a message nobody ever sends.
  TraceRecorder rec(2);
  rec.record_send(0, 1, 5, 8);
  rec.record_recv(1, 0, 5, 8);
  rec.record_recv(1, 0, 6, 8);  // no matching send anywhere

  const CommGraph g = CommGraph::build(rec);
  const auto matching = check_matching(g);
  EXPECT_TRUE(any_diag(matching, "matching", "orphan recv"));
  EXPECT_EQ(count_errors(matching, "matching"), 1);
  // The stall is also visible to the deadlock pass (not as a cycle).
  const auto deadlock = check_deadlock(g);
  EXPECT_TRUE(any_diag(deadlock, "deadlock", "stalls forever"));

  // The diagnostic carries the structured location of the bad receive.
  for (const Diagnostic& d : matching) {
    EXPECT_EQ(d.context.rank, 1);
    EXPECT_EQ(d.context.src, 0);
    EXPECT_EQ(d.context.dst, 1);
    EXPECT_TRUE(d.context.has_tag);
    EXPECT_EQ(d.context.tag, 6u);
  }
}

TEST(SeededDefects, DroppedSendIsDetected) {
  TraceRecorder rec(2);
  rec.record_send(0, 1, 5, 8);  // never received
  const CommGraph g = CommGraph::build(rec);
  const auto diags = check_matching(g);
  EXPECT_TRUE(any_diag(diags, "matching", "never received"));
}

// ---- seeded defect 3: tag collision --------------------------------------

TEST(SeededDefects, TagCollisionIsDetected) {
  // Two back-to-back sends reuse a tag on the same (src, dst) channel with
  // nothing forcing the first receive before the second send: matching
  // becomes arrival-order dependent.
  TraceRecorder rec(2);
  rec.record_send(0, 1, 9, 8);
  rec.record_send(0, 1, 9, 8);
  rec.record_recv(1, 0, 9, 8);
  rec.record_recv(1, 0, 9, 8);

  const CommGraph g = CommGraph::build(rec);
  const auto diags = check_tags(g);
  EXPECT_EQ(count_errors(diags, "tags"), 1);
  EXPECT_TRUE(any_diag(diags, "tags", "tag collision"));
  // The rest of the schedule is fine: matched, executable.
  EXPECT_EQ(count_errors(check_matching(g), "matching"), 0);
  EXPECT_EQ(count_errors(check_deadlock(g), "deadlock"), 0);
}

TEST(SeededDefects, AcknowledgedTagReuseIsClean) {
  // Same tag reused, but an ack round-trip orders the first receive before
  // the second send — a legal (and common) reuse pattern.
  TraceRecorder rec(2);
  rec.record_send(0, 1, 9, 8);   // seq 0
  rec.record_recv(0, 1, 99, 8);  // seq 1: wait for the ack
  rec.record_send(0, 1, 9, 8);   // seq 2: safe reuse
  rec.record_recv(1, 0, 9, 8);   // seq 0
  rec.record_send(1, 0, 99, 8);  // seq 1: ack
  rec.record_recv(1, 0, 9, 8);   // seq 2

  const CommGraph g = CommGraph::build(rec);
  EXPECT_EQ(count_errors(check_tags(g), "tags"), 0);
  EXPECT_EQ(count_errors(check_deadlock(g), "deadlock"), 0);
}

// ---- seeded defect 4: volume-accounting mismatch -------------------------

TEST(SeededDefects, VolumeAccountingMismatchIsDetected) {
  TraceRecorder rec(2);
  rec.record_send(0, 1, 3, 100);
  rec.record_recv(1, 0, 3, 100);
  const CommGraph g = CommGraph::build(rec);

  VolumeExpectation expect = consistent_expectation(g);
  EXPECT_EQ(count_errors(check_volume(g, expect), "volume"), 0);

  // A stats board that disagrees with the graph — the defect an accounting
  // bug (double count, missed self-send exclusion) would produce.
  expect.total.bytes_sent += 42;
  const auto diags = check_volume(g, expect);
  EXPECT_EQ(count_errors(diags, "volume"), 1);
  EXPECT_TRUE(any_diag(diags, "volume", "CommVolume stats"));
}

TEST(SeededDefects, VolumeBelowLowerBoundIsDetected) {
  TraceRecorder rec(2);
  rec.record_send(0, 1, 3, 100);
  rec.record_recv(1, 0, 3, 100);
  const CommGraph g = CommGraph::build(rec);

  VolumeExpectation expect = consistent_expectation(g);
  expect.lower_bound_bytes = 1e6;  // schedule moves far less than "proven"
  const auto diags = check_volume(g, expect);
  EXPECT_TRUE(any_diag(diags, "volume", "lower bound"));
}

TEST(SeededDefects, CaluRealScheduleDetectsSeededVolumeDefects) {
  // The synthetic-graph defects above prove each pass in isolation; this
  // runs them against the real CALU dry-run schedule so the new backend is
  // part of the seeded-defect matrix too: clean as recorded, and each
  // seeded accounting defect is caught on the genuine trace.
  lu::LuConfig cfg;
  cfg.n = 128;
  cfg.p = 8;
  cfg.mode = lu::Mode::DryRun;
  TraceRecorder rec(8);
  cfg.trace = &rec;
  (void)lu::make_algorithm("CALU")->run(nullptr, cfg);
  const CommGraph g = CommGraph::build(rec);

  VolumeExpectation expect = consistent_expectation(g);
  for (const Diagnostic& d : run_all_passes(g, expect))
    ADD_FAILURE() << to_string(d);

  VolumeExpectation off_by = expect;
  off_by.total.bytes_sent += 42;
  EXPECT_EQ(count_errors(check_volume(g, off_by), "volume"), 1);

  VolumeExpectation impossible = expect;
  impossible.lower_bound_bytes = 1e18;  // "proven" floor above the schedule
  EXPECT_TRUE(any_diag(check_volume(g, impossible), "volume", "lower bound"));
}

TEST(SeededDefects, SelfSendsAreExcludedFromVolume) {
  // Multicast destination lists include the sender; StatsBoard counts no
  // bytes for the self-delivery and the graph accounting must agree.
  TraceRecorder rec(2);
  rec.record_send(0, 0, 4, 64, true);
  rec.record_send(0, 1, 4, 64, true);
  rec.record_recv(0, 0, 4, 64);
  rec.record_recv(1, 0, 4, 64);
  const CommGraph g = CommGraph::build(rec);

  VolumeExpectation expect;
  expect.total.bytes_sent = 64;  // the remote copy only
  expect.total.messages_sent = 1;
  expect.max_rank_bytes = 64;
  EXPECT_EQ(count_errors(check_volume(g, expect), "volume"), 0);
}

// ---- buffer-ownership lint -----------------------------------------------

TEST(OwnershipLint, UseAfterTakeReportsThroughHandler) {
  std::vector<std::string> reports;
  auto previous = simnet::set_buffer_misuse_handler(
      [&](const std::string& what) { reports.push_back(what); });

  simnet::BufferView view(
      simnet::make_shared_buffer(std::vector<double>{1.0, 2.0}));
  const std::vector<double> out = std::move(view).take();
  EXPECT_EQ(out.size(), 2u);
  (void)view.data();  // NOLINT(bugprone-use-after-move): the defect under test

  (void)simnet::set_buffer_misuse_handler(std::move(previous));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("after take()"), std::string::npos);
}

TEST(OwnershipLint, DefaultHandlerThrows) {
  simnet::BufferView view(
      simnet::make_shared_buffer(std::vector<double>{1.0}));
  const std::vector<double> out = std::move(view).take();
  EXPECT_EQ(out.size(), 1u);
  EXPECT_THROW((void)view.data(), ContractViolation);  // NOLINT(bugprone-use-after-move)
}

TEST(OwnershipLint, InFlightMutationOfSharedPayloadIsDetected) {
  // A rank mutating an immutable shared payload while it sits in a mailbox
  // is the aliasing bug the zero-copy fabric must never allow. The trace
  // fingerprint stamped at deliver time catches it at receive time.
  std::vector<std::string> reports;
  auto previous = simnet::set_buffer_misuse_handler(
      [&](const std::string& what) { reports.push_back(what); });

  simnet::TraceRecorder rec;
  simnet::Network net(2);
  net.set_trace(&rec);
  simnet::SharedBuffer buf =
      simnet::make_shared_buffer(std::vector<double>{1.0, 2.0, 3.0});
  auto* storage = const_cast<std::vector<double>*>(buf.get());
  simnet::Message msg;
  msg.shared = buf;
  msg.logical_bytes = 24;
  net.deliver(0, 1, 7, std::move(msg));
  (*storage)[0] = -99.0;  // the seeded defect: in-flight mutation
  const simnet::Message got = net.receive(1, 0, 7);
  EXPECT_EQ(got.logical_bytes, 24u);

  (void)simnet::set_buffer_misuse_handler(std::move(previous));
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_NE(reports[0].find("mutated in flight"), std::string::npos);
}

// ---- contextual assertions (support/assert.hpp) --------------------------

TEST(CommContext, FailureMessageCarriesLocation) {
  CommContext ctx;
  ctx.rank = 3;
  ctx.step = 17;
  ctx.src = 1;
  ctx.dst = 3;
  try {
    CONFLUX_EXPECTS_CTX(false, ctx.with_tag(simnet::make_tag(2, 17, 5)));
    FAIL() << "CONFLUX_EXPECTS_CTX did not throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("rank=3"), std::string::npos) << what;
    EXPECT_NE(what.find("step=17"), std::string::npos) << what;
    EXPECT_NE(what.find("src=1"), std::string::npos) << what;
    EXPECT_NE(what.find("dst=3"), std::string::npos) << what;
    EXPECT_NE(what.find("phase=2"), std::string::npos) << what;
    EXPECT_NE(what.find("sub=5"), std::string::npos) << what;
  }
}

// ---- end-to-end: every registered backend verifies clean -----------------

TEST(CommCheck, EveryRegisteredBackendVerifiesClean) {
  for (const Backend& backend : registered_backends())
    for (int p : {4, 8}) {
      CheckConfig config;
      config.n = 128;
      config.p = p;
      const CheckResult result = check_schedule(backend, config);
      EXPECT_TRUE(result.ok()) << result.describe();
      for (const Diagnostic& d : result.diags)
        ADD_FAILURE() << to_string(d);
      EXPECT_GT(result.events, 0u) << result.describe();
      EXPECT_GT(result.run.total.bytes_sent, 0u) << result.describe();
    }
}

TEST(CommCheck, ForcedReplicationDepthsVerifyClean) {
  for (const char* name : {"COnfLUX", "CALU", "COnfCHOX"})
    for (int c : {1, 2}) {
      Backend backend{name == std::string("COnfCHOX") ? "Cholesky" : "LU",
                      name};
      CheckConfig config;
      config.n = 128;
      config.p = 8;
      config.force_layers = c;
      const CheckResult result = check_schedule(backend, config);
      EXPECT_TRUE(result.ok()) << result.describe();
    }
}

TEST(CommCheck, NumericRunsVerifyCleanToo) {
  // The trace hook is not dry-run-only: a numeric COnfCHOX run (pivot-free,
  // so bit-identical schedule) must produce the same clean graph, and its
  // materialized payloads exercise the fingerprint integrity check for
  // real — every multicast payload is hashed at deliver and re-checked at
  // receive.
  simnet::TraceRecorder rec;
  const linalg::Matrix a = linalg::generate(64, linalg::MatrixKind::Spd, 7);
  cholesky::CholConfig cfg;
  cfg.n = 64;
  cfg.p = 4;
  cfg.mode = cholesky::Mode::Numeric;
  cfg.trace = &rec;
  const cholesky::CholResult numeric =
      cholesky::make_cholesky_algorithm("COnfCHOX")->run(&a, cfg);
  EXPECT_TRUE(numeric.spd);
  EXPECT_LT(numeric.residual, 1e-11);
  EXPECT_GT(rec.size(), 0u);

  const CommGraph g = CommGraph::build(rec);
  VolumeExpectation expect;
  expect.total = numeric.total;
  expect.max_rank_bytes = numeric.max_rank_bytes;
  const auto diags = run_all_passes(g, expect);
  for (const Diagnostic& d : diags) ADD_FAILURE() << to_string(d);

  // And the schedule matches the dry run's graph event-for-event (the
  // Numeric/DryRun duality the volume tests assert in bytes, here in full
  // schedule shape).
  Backend backend{"Cholesky", "COnfCHOX"};
  CheckConfig config;
  config.n = 64;
  config.p = 4;
  const CheckResult dry = check_schedule(backend, config);
  EXPECT_TRUE(dry.ok()) << dry.describe();
  EXPECT_EQ(dry.events, rec.size());
}

TEST(CommCheck, SweepCoversEveryBackend) {
  const auto results = sweep({4}, {128});
  // 5 LU + 2 Cholesky backends; the 2.5D ones run layers {auto, 1, 2}.
  EXPECT_EQ(results.size(), 4u * 3 + 3u * 1);
  for (const CheckResult& r : results) EXPECT_TRUE(r.ok()) << r.describe();
}

TEST(CommCheck, UnknownFamilyIsRejected) {
  EXPECT_THROW((void)check_schedule({"QR", "Householder"}, {}),
               ContractViolation);
}

}  // namespace
}  // namespace conflux::verify
