// Tests for the red-blue pebble game substrate: cDAG builders, rule
// enforcement, schedules vs the daap lower bounds, X-partition utilities,
// and the parallel (hued) game of §5.
#include <gtest/gtest.h>

#include <cmath>

#include "daap/bound_solver.hpp"
#include "daap/kernels.hpp"
#include "pebble/cdag.hpp"
#include "pebble/game.hpp"
#include "pebble/parallel_game.hpp"
#include "pebble/schedulers.hpp"
#include "pebble/xpartition.hpp"

namespace conflux::pebble {
namespace {

TEST(CDag, LuVertexCount) {
  // n^2 inputs + sum_k [(n-k-1) S1 + (n-k-1)^2 S2] vertices.
  for (int n : {1, 2, 3, 4, 6}) {
    const BuiltDag built = lu_cdag(n);
    int want = n * n;
    for (int k = 0; k < n; ++k)
      want += (n - k - 1) + (n - k - 1) * (n - k - 1);
    EXPECT_EQ(built.dag.size(), want) << "n=" << n;
    EXPECT_EQ(static_cast<int>(built.dag.inputs().size()), n * n);
  }
}

TEST(CDag, LuDependencyStructure) {
  const BuiltDag built = lu_cdag(3);
  const CDag& dag = built.dag;
  // The final vertex of (2,2) depends (transitively) on everything; its
  // immediate predecessors are the k=1 versions per Figure 1's S2.
  const int last = built.final_vertex[2][2];
  EXPECT_EQ(dag.preds(last).size(), 3u);
  EXPECT_TRUE(dag.is_output(last));
}

TEST(CDag, MmmShapeAndDegrees) {
  const int n = 4;
  const BuiltDag built = mmm_cdag(n);
  EXPECT_EQ(built.dag.size(), 2 * n * n + n * n * n);
  EXPECT_EQ(built.dag.compute_count(), n * n * n);
  // Every A input feeds exactly n products.
  EXPECT_EQ(built.dag.succs(0).size(), static_cast<std::size_t>(n));
  // Final accumulators are the outputs.
  EXPECT_EQ(built.dag.outputs().size(), static_cast<std::size_t>(n * n));
}

TEST(CDag, Figure2Examples) {
  const BuiltDag ew = elementwise_cdag(3);
  // Each compute vertex has one out-degree-1 input (A) and one shared (b).
  EXPECT_EQ(ew.dag.compute_count(), 9);
  const BuiltDag ip = inner_product_cdag(4);
  EXPECT_EQ(ip.dag.outputs().size(), 1u);
}

TEST(Game, RulesEnforced) {
  const BuiltDag built = inner_product_cdag(2);
  RedBluePebbleGame game(built.dag, 4);
  const int input = built.dag.inputs()[0];
  const int out = built.final_vertex[0][0];

  EXPECT_THROW(game.compute(input), IllegalMove);    // inputs not computable
  EXPECT_THROW(game.store(input), IllegalMove);      // not red yet
  EXPECT_THROW(game.discard(input), IllegalMove);    // no red pebble
  EXPECT_THROW(game.compute(out), IllegalMove);      // preds not red
  game.load(input);
  EXPECT_TRUE(game.red(input));
  EXPECT_THROW(game.load(input), IllegalMove);       // already red
  EXPECT_EQ(game.io_count(), 1u);
}

TEST(Game, MemoryLimitEnforced) {
  const BuiltDag built = mmm_cdag(3);
  RedBluePebbleGame game(built.dag, 2);
  const auto inputs = built.dag.inputs();
  game.load(inputs[0]);
  game.load(inputs[1]);
  EXPECT_THROW(game.load(inputs[2]), IllegalMove);  // M exhausted
  game.discard(inputs[0]);
  EXPECT_NO_THROW(game.load(inputs[2]));
}

TEST(Game, CompletionRequiresBlueOutputs) {
  const BuiltDag built = inner_product_cdag(2);
  RedBluePebbleGame game(built.dag, 8);
  EXPECT_FALSE(game.complete());
  for (int v : built.dag.inputs()) game.load(v);
  // compute both accumulator vertices (natural order).
  for (int v = 0; v < built.dag.size(); ++v)
    if (!built.dag.is_input(v)) game.compute(v);
  EXPECT_FALSE(game.complete());
  game.store(built.final_vertex[0][0]);
  EXPECT_TRUE(game.complete());
  // loads(4 inputs) + 1 store.
  EXPECT_EQ(game.io_count(), 5u);
}

class ExecutorSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExecutorSweep, SchedulesCompleteAndRespectBound) {
  const int m = GetParam();
  const int n = 10;
  const BuiltDag built = mmm_cdag(n);
  const auto order = tiled_mmm_order(n, mmm_tile_for_memory(m));
  const RedBluePebbleGame game =
      execute_schedule(built.dag, m, order, Eviction::Belady);
  EXPECT_TRUE(game.complete());

  // Lower bound from the daap engine (Lemma 2 with the accumulator-chain
  // cDAG): any valid pebbling must move at least that much.
  const double bound =
      daap::solve_program(daap::matmul(n), m).q_sequential;
  EXPECT_GE(static_cast<double>(game.io_count()), 0.99 * bound -
            2.0 * n * n);  // modulo boundary terms at tiny sizes
}

INSTANTIATE_TEST_SUITE_P(Memories, ExecutorSweep,
                         ::testing::Values(8, 16, 32, 64, 128));

TEST(Executor, TiledBeatsRowMajorUnderTightMemory) {
  const int n = 12, m = 27;
  const BuiltDag built = mmm_cdag(n);
  const auto tiled = execute_schedule(
      built.dag, m, tiled_mmm_order(n, mmm_tile_for_memory(m)),
      Eviction::Belady);
  const auto naive = execute_schedule(built.dag, m, rowmajor_mmm_order(n),
                                      Eviction::Lru);
  EXPECT_LT(tiled.io_count(), naive.io_count());
}

TEST(Executor, TiledWithinConstantOfBound) {
  const int n = 16, m = 48;
  const BuiltDag built = mmm_cdag(n);
  const auto game = execute_schedule(
      built.dag, m, tiled_mmm_order(n, mmm_tile_for_memory(m)),
      Eviction::Belady);
  const double bound = daap::solve_program(daap::matmul(n), m).q_sequential;
  EXPECT_LT(static_cast<double>(game.io_count()), 6.0 * bound);
}

TEST(Executor, BeladyNoWorseThanLru) {
  const int n = 10, m = 20;
  const BuiltDag built = mmm_cdag(n);
  const auto order = rowmajor_mmm_order(n);
  const auto lru = execute_schedule(built.dag, m, order, Eviction::Lru);
  const auto belady = execute_schedule(built.dag, m, order, Eviction::Belady);
  EXPECT_LE(belady.io_count(), lru.io_count());
}

TEST(Executor, LuNaturalOrderCompletes) {
  for (int n : {4, 6, 8}) {
    const BuiltDag built = lu_cdag(n);
    const auto game = execute_schedule(built.dag, 16, natural_order(built.dag),
                                       Eviction::Belady);
    EXPECT_TRUE(game.complete());
    const double bound =
        daap::solve_program(daap::lu_factorization(n), 16).q_sequential;
    EXPECT_GE(static_cast<double>(game.io_count()) + 2.0 * n * n, bound);
  }
}

TEST(Executor, MoreMemoryNeverHurts) {
  const int n = 12;
  const BuiltDag built = mmm_cdag(n);
  std::uint64_t prev = UINT64_MAX;
  for (int m : {12, 27, 48, 108, 300}) {
    const auto game = execute_schedule(
        built.dag, m, tiled_mmm_order(n, mmm_tile_for_memory(m)),
        Eviction::Belady);
    EXPECT_LE(game.io_count(), prev);
    prev = game.io_count();
  }
}

TEST(XPartition, MinSetAndBoundaryDominator) {
  const BuiltDag built = mmm_cdag(2);
  // V_h: the two partial products of C(0,0): ids 8 (k=0) and 9 (k=1).
  const std::vector<int> vh = {8, 9};
  const auto mins = min_set(built.dag, vh);
  ASSERT_EQ(mins.size(), 1u);
  EXPECT_EQ(mins[0], 9);
  const auto dom = boundary_dominator(built.dag, vh);
  EXPECT_EQ(dom.size(), 4u);  // A(0,0),B(0,0),A(0,1),B(1,0)
  EXPECT_TRUE(is_dominator(built.dag, vh, dom));
}

TEST(XPartition, NonDominatorDetected) {
  const BuiltDag built = mmm_cdag(2);
  const std::vector<int> vh = {8, 9};
  EXPECT_FALSE(is_dominator(built.dag, vh, {0}));   // single input
  EXPECT_FALSE(is_dominator(built.dag, vh, {}));    // empty set
  EXPECT_TRUE(is_dominator(built.dag, vh, vh));     // V_h dominates itself
}

TEST(XPartition, ValidatePartitionProperties) {
  const int n = 4;
  const BuiltDag built = mmm_cdag(n);
  // One part per (i, j) accumulator chain: a valid X-partition for
  // X >= 2n + 1 (2n inputs + the incoming accumulator... here none).
  std::vector<std::vector<int>> parts;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      std::vector<int> chain;
      for (int k = 0; k < n; ++k)
        chain.push_back(2 * n * n + (i * n + j) * n + k);
      parts.push_back(chain);
    }
  const auto check = validate_xpartition(built.dag, parts, 2 * n + 1);
  EXPECT_TRUE(check.valid());
  // Too-small X must fail the size condition.
  EXPECT_FALSE(validate_xpartition(built.dag, parts, n).within_x);
}

TEST(XPartition, DetectsOverlapAndGaps) {
  const BuiltDag built = inner_product_cdag(3);
  const auto computes = natural_order(built.dag);
  std::vector<std::vector<int>> overlap = {computes, {computes[0]}};
  EXPECT_FALSE(validate_xpartition(built.dag, overlap, 100).disjoint);
  std::vector<std::vector<int>> gap = {{computes[0]}};
  EXPECT_FALSE(validate_xpartition(built.dag, gap, 100).covers_all);
}

TEST(XPartition, PartitionFromOrderIsValid) {
  const int n = 6, m = 8, x = 24;
  const BuiltDag built = mmm_cdag(n);
  const auto order = tiled_mmm_order(n, 2);
  const auto parts = partition_from_order(built.dag, order, x, m);
  EXPECT_GT(parts.size(), 1u);
  const auto check = validate_xpartition(built.dag, parts, x + m);
  EXPECT_TRUE(check.covers_all);
  EXPECT_TRUE(check.disjoint);
  EXPECT_TRUE(check.acyclic);
}

TEST(ParallelGame, HuedRulesEnforced) {
  const BuiltDag built = inner_product_cdag(2);
  ParallelPebbleGame game(built.dag, 2, 4);
  const int input = built.dag.inputs()[0];
  game.load(0, input);
  EXPECT_TRUE(game.red(0, input));
  EXPECT_FALSE(game.red(1, input));
  // Processor 1 may copy it (remote get) because SOME pebble exists.
  game.load(1, input);
  EXPECT_TRUE(game.red(1, input));
  EXPECT_EQ(game.io_count(0), 1u);
  EXPECT_EQ(game.io_count(1), 1u);
  // A vertex with no pebble anywhere cannot be loaded by anyone... first
  // compute it, then the other processor can fetch it.
  const int v0 = natural_order(built.dag)[0];
  EXPECT_THROW(game.load(1, v0), IllegalMove);
}

TEST(ParallelGame, TwoProcessorMmmSplitsWork) {
  const int n = 2;
  const BuiltDag built = mmm_cdag(n);
  ParallelPebbleGame game(built.dag, 2, 16);
  // Processor p computes columns j == p.
  for (int p = 0; p < 2; ++p)
    for (int i = 0; i < n; ++i) {
      const int j = p;
      for (int k = 0; k < n; ++k) {
        const int a = i * n + k, b = n * n + k * n + j;
        if (!game.red(p, a)) game.load(p, a);
        if (!game.red(p, b)) game.load(p, b);
        game.compute(p, 2 * n * n + (i * n + j) * n + k);
      }
      game.store(p, built.final_vertex[i][j]);
    }
  EXPECT_TRUE(game.complete());
  EXPECT_GT(game.io_count(0), 0u);
  EXPECT_GT(game.io_count(1), 0u);
  EXPECT_EQ(game.total_io(), game.io_count(0) + game.io_count(1));
}

}  // namespace
}  // namespace conflux::pebble
