// Communication-volume properties of the Cholesky family: the exact
// DryRun == Numeric invariant (no pivots -> fully deterministic schedule),
// the closed-form DAAP bound sandwich, the COnfCHOX < ScaLAPACK ordering
// for replication depths c > 1, model-vs-measured agreement, and the
// Cholesky < LU volume relation.
#include <gtest/gtest.h>

#include "cholesky/cholesky_common.hpp"
#include "daap/kernels.hpp"
#include "linalg/generate.hpp"
#include "lu/lu_common.hpp"
#include "models/cost_model.hpp"

namespace conflux::cholesky {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

CholResult run_mode(const std::string& algo, int n, int p, Mode mode,
                    const Matrix* a = nullptr, int force_layers = 0) {
  CholConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = mode;
  cfg.force_layers = force_layers;
  return make_cholesky_algorithm(algo)->run(a, cfg);
}

class DryEqualsNumeric
    : public ::testing::TestWithParam<std::tuple<const char*, int, int>> {};

TEST_P(DryEqualsNumeric, VolumeIsBitIdentical) {
  // With no pivoting the schedule depends on nothing but (n, p): the ghost
  // replay must reproduce the numeric volume exactly, not within a band.
  const auto [algo, n, p] = GetParam();
  const Matrix a = generate(n, MatrixKind::Spd, 91);
  const CholResult numeric = run_mode(algo, n, p, Mode::Numeric, &a);
  const CholResult dry = run_mode(algo, n, p, Mode::DryRun);
  EXPECT_EQ(dry.total.bytes_sent, numeric.total.bytes_sent);
  EXPECT_EQ(dry.total.bytes_received, numeric.total.bytes_received);
  EXPECT_EQ(dry.total.messages_sent, numeric.total.messages_sent);
  EXPECT_EQ(dry.max_rank_bytes, numeric.max_rank_bytes);
  EXPECT_EQ(dry.ranks_used, numeric.ranks_used);
  EXPECT_EQ(dry.block, numeric.block);
  EXPECT_EQ(dry.grid, numeric.grid);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DryEqualsNumeric,
    ::testing::Values(std::make_tuple("COnfCHOX", 128, 8),
                      std::make_tuple("COnfCHOX", 192, 12),
                      std::make_tuple("COnfCHOX", 128, 16),
                      std::make_tuple("ScaLAPACK", 128, 8),
                      std::make_tuple("ScaLAPACK", 192, 9)));

TEST(DryRun, DeterministicAcrossRepeats) {
  const CholResult a = run_mode("COnfCHOX", 256, 16, Mode::DryRun);
  const CholResult b = run_mode("COnfCHOX", 256, 16, Mode::DryRun);
  EXPECT_EQ(a.total.bytes_sent, b.total.bytes_sent);
  EXPECT_EQ(a.total.messages_sent, b.total.messages_sent);
}

// ---- The acceptance sandwich: bound <= COnfCHOX < ScaLAPACK --------------

TEST(Bound, MeasuredWithinClosedFormDaapBand) {
  // Per-rank volume must sit above the Cholesky I/O lower bound and within
  // a small constant of it (COnfCHOX's multicasts pay ~3x the bound's
  // leading constant, as COnfLUX pays ~1.5x its LU bound).
  const int n = 2048;
  for (int p : {64, 256}) {
    const auto inst = models::max_replication_instance(n, p);
    const double bound_bytes =
        models::cholesky_lower_bound_elements_per_rank(inst) * p * 8.0;
    const double measured =
        run_mode("COnfCHOX", n, p, Mode::DryRun).total_bytes();
    EXPECT_GT(measured, bound_bytes) << "p=" << p;
    EXPECT_LT(measured, 6.0 * bound_bytes) << "p=" << p;
  }
}

TEST(Bound, ClosedFormAgreesWithGenericSolverScaling) {
  // The models-layer per-rank bound is the daap closed form divided by P.
  const auto inst = models::max_replication_instance(4096, 64);
  const double via_models =
      models::cholesky_lower_bound_elements_per_rank(inst);
  const double via_daap =
      daap::cholesky_bound_parallel(inst.n, inst.m_elements, inst.p);
  EXPECT_NEAR(via_models, via_daap, 1e-6 * via_daap);
}

TEST(Ordering, ConfchoxBeatsScalapackWithReplication) {
  // The acceptance criterion: strictly below the 2D baseline whenever the
  // memory budget allows c > 1.
  for (int p : {64, 256}) {
    const int n = 2048;
    const CholResult confchox = run_mode("COnfCHOX", n, p, Mode::DryRun);
    const CholResult scalapack = run_mode("ScaLAPACK", n, p, Mode::DryRun);
    // The max-replication memory rule gives COnfCHOX c = P^(1/3) > 1.
    EXPECT_EQ(confchox.grid.find("x 1]"), std::string::npos)
        << confchox.grid;
    EXPECT_LT(confchox.total_bytes(), scalapack.total_bytes()) << "p=" << p;
  }
}

TEST(Ordering, ReductionGrowsWithRanks) {
  const int n = 2048;
  double prev = 0;
  for (int p : {16, 64, 256}) {
    const double ours = run_mode("COnfCHOX", n, p, Mode::DryRun).total_bytes();
    const double theirs =
        run_mode("ScaLAPACK", n, p, Mode::DryRun).total_bytes();
    const double factor = theirs / ours;
    EXPECT_GT(factor, prev * 0.9) << "p=" << p;
    prev = factor;
  }
  EXPECT_GT(prev, 1.2);
}

TEST(Ordering, CholeskyMovesLessThanLu) {
  // Same machinery minus the tournament and the row-panel reduce: COnfCHOX
  // must communicate strictly less than COnfLUX on the same instance.
  const int n = 1024, p = 64;
  const double chol = run_mode("COnfCHOX", n, p, Mode::DryRun).total_bytes();
  lu::LuConfig cfg;
  cfg.n = n;
  cfg.p = p;
  cfg.mode = lu::Mode::DryRun;
  const double lu_bytes =
      lu::make_algorithm("COnfLUX")->run(nullptr, cfg).total_bytes();
  EXPECT_LT(chol, lu_bytes);
}

// ---- Ablations ------------------------------------------------------------

TEST(Ablation, ReplicationReducesVolume) {
  const double flat =
      run_mode("COnfCHOX", 2048, 64, Mode::DryRun, nullptr, 1).total_bytes();
  const double replicated =
      run_mode("COnfCHOX", 2048, 64, Mode::DryRun, nullptr, 4).total_bytes();
  EXPECT_LT(replicated, flat);
}

TEST(Ablation, OverReplicationBackfires) {
  const double at_opt =
      run_mode("COnfCHOX", 1024, 64, Mode::DryRun, nullptr, 4).total_bytes();
  const double too_deep =
      run_mode("COnfCHOX", 1024, 64, Mode::DryRun, nullptr, 32).total_bytes();
  EXPECT_GT(too_deep, at_opt);
}

// ---- Model agreement ------------------------------------------------------

TEST(Models, MeasuredWithinBandOfModel) {
  const int n = 2048;
  for (int p : {64, 256}) {
    const auto inst = models::max_replication_instance(n, p);
    for (const char* name : {"ScaLAPACK", "COnfCHOX"}) {
      const double measured =
          run_mode(name, n, p, Mode::DryRun).total_bytes();
      double modeled = 0;
      for (const auto& m : models::cholesky_models())
        if (m->name() == name) modeled = m->total_bytes(inst);
      EXPECT_GT(measured / modeled, 0.75) << name << " p=" << p;
      EXPECT_LT(measured / modeled, 1.25) << name << " p=" << p;
    }
  }
}

TEST(PerNode, MaxRankWithinFactorOfMean) {
  const CholResult res = run_mode("COnfCHOX", 1024, 64, Mode::DryRun);
  const double mean = 2.0 * res.total_bytes() / res.ranks_used;
  EXPECT_LT(static_cast<double>(res.max_rank_bytes), 6.0 * mean);
}

TEST(WeakScaling, TwoPointFiveDStaysFlat) {
  // With N = n0 * P^(1/3), per-node volume stays ~constant for COnfCHOX
  // and grows for the 2D baseline (the Cholesky analogue of Fig. 6b).
  const double ours_small =
      run_mode("COnfCHOX", 512, 8, Mode::DryRun).bytes_per_rank();
  const double ours_large =
      run_mode("COnfCHOX", 1024, 64, Mode::DryRun).bytes_per_rank();
  EXPECT_LT(ours_large / ours_small, 1.6);

  const double theirs_small =
      run_mode("ScaLAPACK", 512, 8, Mode::DryRun).bytes_per_rank();
  const double theirs_large =
      run_mode("ScaLAPACK", 1024, 64, Mode::DryRun).bytes_per_rank();
  EXPECT_GT(theirs_large / theirs_small, ours_large / ours_small);
}

}  // namespace
}  // namespace conflux::cholesky
