// Tests for the linear-system solve layer: factor once with any of the
// four distributed algorithms, then solve by permuted forward/backward
// substitution. Backward-error checks across algorithms, matrix families
// and multiple right-hand sides.
#include <gtest/gtest.h>

#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "lu/solve.hpp"
#include "support/random.hpp"

namespace conflux::lu {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

std::vector<double> rhs_for(const Matrix& a, std::uint64_t seed) {
  // Build b = A * x_true so the true solution is known.
  const int n = a.rows();
  Matrix xt(n, 1);
  conflux::Rng rng(seed);
  for (int i = 0; i < n; ++i) xt(i, 0) = rng.uniform(-1.0, 1.0);
  Matrix b(n, 1);
  linalg::gemm(1.0, a.view(), xt.view(), 0.0, b.view());
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = b(i, 0);
  return out;
}

class SolveAlgos : public ::testing::TestWithParam<const char*> {};

TEST_P(SolveAlgos, BackwardErrorTiny) {
  const Matrix a = generate(96, MatrixKind::Uniform, 81);
  const std::vector<double> b = rhs_for(a, 82);
  const SolveOutcome out = factor_and_solve(GetParam(), a, b, 8);
  EXPECT_LT(out.factorization.residual, 1e-11);
  EXPECT_LT(solve_residual(a, out.x, b), 1e-12);
}

TEST_P(SolveAlgos, InteractionMatrixSolves) {
  const Matrix a = generate(64, MatrixKind::Interaction, 83);
  const std::vector<double> b = rhs_for(a, 84);
  const SolveOutcome out = factor_and_solve(GetParam(), a, b, 9);
  EXPECT_LT(solve_residual(a, out.x, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SolveAlgos,
                         ::testing::Values("COnfLUX", "LibSci", "SLATE",
                                           "CANDMC"));

TEST(Solve, FactorOnceSolveMany) {
  const int n = 80;
  const Matrix a = generate(n, MatrixKind::Uniform, 85);
  LuConfig cfg;
  cfg.n = n;
  cfg.p = 8;
  cfg.keep_factors = true;
  const LuResult fact = make_algorithm("COnfLUX")->run(&a, cfg);
  ASSERT_NE(fact.factors, nullptr);
  for (std::uint64_t seed : {86u, 87u, 88u}) {
    const std::vector<double> b = rhs_for(a, seed);
    const std::vector<double> x = lu_solve(fact, b);
    EXPECT_LT(solve_residual(a, x, b), 1e-12) << "seed=" << seed;
  }
}

TEST(Solve, MultiRhsMatrixVariant) {
  const int n = 64, k = 5;
  const Matrix a = generate(n, MatrixKind::DiagDominant, 89);
  Matrix xt = generate(n, k, MatrixKind::Uniform, 90);
  Matrix b(n, k);
  linalg::gemm(1.0, a.view(), xt.view(), 0.0, b.view());

  LuConfig cfg;
  cfg.n = n;
  cfg.p = 4;
  cfg.keep_factors = true;
  const LuResult fact = make_algorithm("LibSci")->run(&a, cfg);
  const Matrix x = lu_solve(fact, b);
  // Diagonally dominant: the recovered solution matches x_true closely.
  EXPECT_LT(linalg::max_abs_diff(x.view(), xt.view()), 1e-10);
}

TEST(Solve, IdentityIsTrivial) {
  const Matrix eye = Matrix::identity(16);
  std::vector<double> b(16);
  for (int i = 0; i < 16; ++i) b[static_cast<std::size_t>(i)] = i;
  const SolveOutcome out = factor_and_solve("COnfLUX", eye, b, 4);
  for (int i = 0; i < 16; ++i)
    EXPECT_NEAR(out.x[static_cast<std::size_t>(i)], i, 1e-14);
}

TEST(Solve, PermutationIsRecorded) {
  const Matrix a = generate(48, MatrixKind::Uniform, 91);
  LuConfig cfg;
  cfg.n = 48;
  cfg.p = 4;
  cfg.keep_factors = true;
  for (const char* algo : {"COnfLUX", "SLATE"}) {
    const LuResult fact = make_algorithm(algo)->run(&a, cfg);
    ASSERT_EQ(fact.permutation.size(), 48u) << algo;
    std::vector<int> sorted = fact.permutation;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 48; ++i)
      EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i) << algo;
  }
}

TEST(Solve, WithoutKeepFactorsThrows) {
  const Matrix a = generate(32, MatrixKind::Uniform, 92);
  LuConfig cfg;
  cfg.n = 32;
  cfg.p = 2;
  const LuResult fact = make_algorithm("COnfLUX")->run(&a, cfg);
  const std::vector<double> b(32, 1.0);
  EXPECT_THROW((void)lu_solve(fact, b), ContractViolation);
}

TEST(Solve, SizeMismatchThrows) {
  const Matrix a = generate(32, MatrixKind::Uniform, 93);
  LuConfig cfg;
  cfg.n = 32;
  cfg.p = 2;
  cfg.keep_factors = true;
  const LuResult fact = make_algorithm("COnfLUX")->run(&a, cfg);
  const std::vector<double> bad(31, 1.0);
  EXPECT_THROW((void)lu_solve(fact, bad), ContractViolation);
}

}  // namespace
}  // namespace conflux::lu
