// Tests for the linear-system solve layer: factor once with any of the
// five distributed algorithms, then solve by permuted forward/backward
// substitution. Backward-error checks across algorithms, matrix families
// and multiple right-hand sides.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <tuple>

#include "linalg/blas.hpp"
#include "linalg/generate.hpp"
#include "lu/solve.hpp"
#include "support/random.hpp"

namespace conflux::lu {
namespace {

using linalg::generate;
using linalg::Matrix;
using linalg::MatrixKind;

std::vector<double> rhs_for(const Matrix& a, std::uint64_t seed) {
  // Build b = A * x_true so the true solution is known.
  const int n = a.rows();
  Matrix xt(n, 1);
  conflux::Rng rng(seed);
  for (int i = 0; i < n; ++i) xt(i, 0) = rng.uniform(-1.0, 1.0);
  Matrix b(n, 1);
  linalg::gemm(1.0, a.view(), xt.view(), 0.0, b.view());
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = b(i, 0);
  return out;
}

class SolveAlgos : public ::testing::TestWithParam<const char*> {};

TEST_P(SolveAlgos, BackwardErrorTiny) {
  const Matrix a = generate(96, MatrixKind::Uniform, 81);
  const std::vector<double> b = rhs_for(a, 82);
  const SolveOutcome out = factor_and_solve(GetParam(), a, b, 8);
  EXPECT_LT(out.factorization.residual, 1e-11);
  EXPECT_LT(solve_residual(a, out.x, b), 1e-12);
}

TEST_P(SolveAlgos, InteractionMatrixSolves) {
  const Matrix a = generate(64, MatrixKind::Interaction, 83);
  const std::vector<double> b = rhs_for(a, 84);
  const SolveOutcome out = factor_and_solve(GetParam(), a, b, 9);
  EXPECT_LT(solve_residual(a, out.x, b), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, SolveAlgos,
                         ::testing::Values("COnfLUX", "LibSci", "SLATE",
                                           "CANDMC", "CALU"));

// ---- adversarial multi-RHS solves ----------------------------------------
// Build B = A * X_true so the true solution is known, factor once, solve
// k right-hand sides, and check both the scaled backward residual and the
// forward error against a conditioning-scaled tolerance per family.

struct AdversarialSolveCase {
  MatrixKind kind;
  double forward_tol;  ///< ~ cond(A) * n * eps with an order of slack
};

class AdversarialSolve
    : public ::testing::TestWithParam<
          std::tuple<const char*, AdversarialSolveCase>> {};

TEST_P(AdversarialSolve, MultiRhsForwardErrorWithinConditioning) {
  const auto [algo, c] = GetParam();
  const int n = 64, k = 4;
  const Matrix a = generate(n, c.kind, 95);
  const Matrix xt = generate(n, k, MatrixKind::Uniform, 96);
  Matrix b(n, k);
  linalg::gemm(1.0, a.view(), xt.view(), 0.0, b.view());

  LuConfig cfg;
  cfg.n = n;
  cfg.p = 8;
  cfg.keep_factors = true;
  const LuResult fact = make_algorithm(algo)->run(&a, cfg);
  ASSERT_NE(fact.factors, nullptr) << algo;
  const Matrix x = lu_solve(fact, b);

  double fwd = 0.0, xt_max = 0.0;
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < k; ++j) {
      fwd = std::max(fwd, std::abs(x(i, j) - xt(i, j)));
      xt_max = std::max(xt_max, std::abs(xt(i, j)));
    }
  EXPECT_LT(fwd / xt_max, c.forward_tol)
      << algo << " on " << linalg::to_string(c.kind);

  // Backward error stays eps-scale per column regardless of conditioning.
  for (int j = 0; j < k; ++j) {
    std::vector<double> xj(static_cast<std::size_t>(n));
    std::vector<double> bj(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      xj[static_cast<std::size_t>(i)] = x(i, j);
      bj[static_cast<std::size_t>(i)] = b(i, j);
    }
    EXPECT_LT(solve_residual(a, xj, bj), 1e-10)
        << algo << " on " << linalg::to_string(c.kind) << " rhs " << j;
  }
}

std::vector<std::tuple<const char*, AdversarialSolveCase>>
adversarial_solve_grid() {
  // Forward-error tolerances scale with each family's conditioning:
  // graded ~2^48, randsvd cond 1e10, near-singular ~1e8.
  const AdversarialSolveCase cases[] = {
      {MatrixKind::Graded, 5e-1},
      {MatrixKind::RandSvd, 1e-2},
      {MatrixKind::NearSingular, 1e-4},
  };
  std::vector<std::tuple<const char*, AdversarialSolveCase>> out;
  for (const char* algo : {"COnfLUX", "CALU", "LibSci"})
    for (const AdversarialSolveCase& c : cases) out.emplace_back(algo, c);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Families, AdversarialSolve,
                         ::testing::ValuesIn(adversarial_solve_grid()));

TEST(Solve, FactorOnceSolveMany) {
  const int n = 80;
  const Matrix a = generate(n, MatrixKind::Uniform, 85);
  LuConfig cfg;
  cfg.n = n;
  cfg.p = 8;
  cfg.keep_factors = true;
  const LuResult fact = make_algorithm("COnfLUX")->run(&a, cfg);
  ASSERT_NE(fact.factors, nullptr);
  for (std::uint64_t seed : {86u, 87u, 88u}) {
    const std::vector<double> b = rhs_for(a, seed);
    const std::vector<double> x = lu_solve(fact, b);
    EXPECT_LT(solve_residual(a, x, b), 1e-12) << "seed=" << seed;
  }
}

TEST(Solve, MultiRhsMatrixVariant) {
  const int n = 64, k = 5;
  const Matrix a = generate(n, MatrixKind::DiagDominant, 89);
  Matrix xt = generate(n, k, MatrixKind::Uniform, 90);
  Matrix b(n, k);
  linalg::gemm(1.0, a.view(), xt.view(), 0.0, b.view());

  LuConfig cfg;
  cfg.n = n;
  cfg.p = 4;
  cfg.keep_factors = true;
  const LuResult fact = make_algorithm("LibSci")->run(&a, cfg);
  const Matrix x = lu_solve(fact, b);
  // Diagonally dominant: the recovered solution matches x_true closely.
  EXPECT_LT(linalg::max_abs_diff(x.view(), xt.view()), 1e-10);
}

TEST(Solve, IdentityIsTrivial) {
  const Matrix eye = Matrix::identity(16);
  std::vector<double> b(16);
  for (int i = 0; i < 16; ++i) b[static_cast<std::size_t>(i)] = i;
  const SolveOutcome out = factor_and_solve("COnfLUX", eye, b, 4);
  for (int i = 0; i < 16; ++i)
    EXPECT_NEAR(out.x[static_cast<std::size_t>(i)], i, 1e-14);
}

TEST(Solve, PermutationIsRecorded) {
  const Matrix a = generate(48, MatrixKind::Uniform, 91);
  LuConfig cfg;
  cfg.n = 48;
  cfg.p = 4;
  cfg.keep_factors = true;
  for (const char* algo : {"COnfLUX", "SLATE"}) {
    const LuResult fact = make_algorithm(algo)->run(&a, cfg);
    ASSERT_EQ(fact.permutation.size(), 48u) << algo;
    std::vector<int> sorted = fact.permutation;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < 48; ++i)
      EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i) << algo;
  }
}

TEST(Solve, WithoutKeepFactorsThrows) {
  const Matrix a = generate(32, MatrixKind::Uniform, 92);
  LuConfig cfg;
  cfg.n = 32;
  cfg.p = 2;
  const LuResult fact = make_algorithm("COnfLUX")->run(&a, cfg);
  const std::vector<double> b(32, 1.0);
  EXPECT_THROW((void)lu_solve(fact, b), ContractViolation);
}

TEST(Solve, SizeMismatchThrows) {
  const Matrix a = generate(32, MatrixKind::Uniform, 93);
  LuConfig cfg;
  cfg.n = 32;
  cfg.p = 2;
  cfg.keep_factors = true;
  const LuResult fact = make_algorithm("COnfLUX")->run(&a, cfg);
  const std::vector<double> bad(31, 1.0);
  EXPECT_THROW((void)lu_solve(fact, bad), ContractViolation);
}

}  // namespace
}  // namespace conflux::lu
