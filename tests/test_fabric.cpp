// Tests for the zero-copy fabric: shared immutable payloads, the multicast
// primitive and its accounting, the immutability/aliasing contract,
// FIFO-per-channel ordering under concurrent interleaved-tag stress, and
// the persistent rank-team lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "simnet/collectives.hpp"
#include "simnet/comm.hpp"
#include "simnet/spmd.hpp"

namespace conflux::simnet {
namespace {

TEST(Buffer, TakeHandsOverExclusivePayloadStorage) {
  // A move-send's storage travels through the mailbox untouched: the
  // receiver's take() gets the sender's very allocation (zero-copy p2p).
  const double* sent = nullptr;
  const double* got = nullptr;
  run_spmd(2, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<double> big(1000, 3.0);
      sent = big.data();
      comm.send(1, 1, std::move(big));
    } else {
      const std::vector<double> out = comm.recv_view(0, 1).take();
      got = out.data();
      EXPECT_EQ(out.size(), 1000u);
      EXPECT_EQ(out[999], 3.0);
    }
  });
  EXPECT_EQ(sent, got);
}

TEST(Buffer, TakeCopiesSharedPayloads) {
  // Shared (multicast) payloads are immutable: take() always copies, never
  // mutates the aliased storage.
  SharedBuffer buf = make_shared_buffer(std::vector<double>{4.0, 5.0});
  const SharedBuffer keep = buf;
  std::vector<double> out = BufferView(std::move(buf)).take();
  EXPECT_NE(out.data(), keep->data());
  EXPECT_EQ(out, (std::vector<double>{4.0, 5.0}));
  EXPECT_EQ((*keep)[0], 4.0);
}

TEST(Multicast, RecipientsAliasOneBuffer) {
  const int p = 5;
  std::vector<const double*> seen(p, nullptr);
  run_spmd(p, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> dsts;
      for (int r = 1; r < p; ++r) dsts.push_back(r);
      comm.multicast(dsts, 1,
                     make_shared_buffer(std::vector<double>{7.0, 8.0}));
    } else {
      const BufferView view = comm.recv_view(0, 1);
      ASSERT_EQ(view.size(), 2u);
      EXPECT_EQ(view[1], 8.0);
      seen[static_cast<std::size_t>(comm.rank())] = view.data();
    }
  });
  // Zero-copy: every recipient observed the same physical storage.
  for (int r = 2; r < p; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)],
                                        seen[1]);
}

TEST(Multicast, TakeIsolatesRecipientMutations) {
  // The immutability contract: one recipient copying out and mutating must
  // not be observable by any other recipient of the same multicast.
  const int p = 4;
  run_spmd(p, [&](Comm& comm) {
    const Group world = Group::iota(p);
    if (comm.rank() == 0) {
      std::vector<int> dsts = {1, 2, 3};
      comm.multicast(dsts, 1,
                     make_shared_buffer(std::vector<double>{1.0, 2.0, 3.0}));
    } else if (comm.rank() == 1) {
      // Mutator: copies out and scribbles, then signals.
      std::vector<double> mine = comm.recv_view(0, 1).take();
      for (double& x : mine) x = -999.0;
      for (int r = 2; r < p; ++r) comm.send_ghost(r, 2, 0);
    } else {
      // Readers: hold the view across the mutator's scribble.
      const BufferView view = comm.recv_view(0, 1);
      (void)comm.recv_ghost(1, 2);  // mutation has happened by now
      EXPECT_EQ(view[0], 1.0);
      EXPECT_EQ(view[1], 2.0);
      EXPECT_EQ(view[2], 3.0);
    }
    barrier(comm, world, 99);
  });
}

TEST(Multicast, AccountingMatchesIndividualSends) {
  const int p = 6;
  Network net(p);
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> dsts = {1, 2, 3, 4, 5};
      comm.multicast(dsts, 3, make_shared_buffer(std::vector<double>(10)));
    } else {
      (void)comm.recv_view(0, 3);
    }
  });
  EXPECT_EQ(net.stats().total().bytes_sent, 5u * 10 * sizeof(double));
  EXPECT_EQ(net.stats().total().bytes_received, 5u * 10 * sizeof(double));
  EXPECT_EQ(net.stats().total().messages_sent, 5u);
  EXPECT_EQ(net.stats().rank_volume(0).bytes_sent, 5u * 10 * sizeof(double));
  EXPECT_EQ(net.stats().rank_volume(3).bytes_received, 10 * sizeof(double));
}

TEST(Multicast, SelfDeliveryIsFreeButDelivered) {
  Network net(2);
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> dsts = {0, 1};  // includes self, like the layer
                                       // multicasts in the 2.5D kernels
      comm.multicast(dsts, 7, make_shared_buffer(std::vector<double>{6.0}));
      EXPECT_EQ(comm.recv_view(0, 7)[0], 6.0);
    } else {
      EXPECT_EQ(comm.recv_view(0, 7)[0], 6.0);
    }
  });
  // The self-copy is free under the uniform remote-cost model.
  EXPECT_EQ(net.stats().total().bytes_sent, 1u * sizeof(double));
  EXPECT_EQ(net.stats().total().messages_sent, 1u);
}

TEST(Multicast, GhostAccountingMatchesReal) {
  const int p = 5;
  Network real(p), ghost(p);
  const std::vector<int> dsts = {1, 2, 3, 4};
  run_spmd(real, [&](Comm& comm) {
    if (comm.rank() == 0)
      comm.multicast(dsts, 1, make_shared_buffer(std::vector<double>(33)));
    else
      (void)comm.recv_view(0, 1);
  });
  run_spmd(ghost, [&](Comm& comm) {
    if (comm.rank() == 0)
      comm.multicast_ghost(dsts, 1, 33 * sizeof(double));
    else
      EXPECT_EQ(comm.recv_ghost(0, 1), 33 * sizeof(double));
  });
  EXPECT_EQ(real.stats().total().bytes_sent, ghost.stats().total().bytes_sent);
  EXPECT_EQ(real.stats().total().messages_sent,
            ghost.stats().total().messages_sent);
}

TEST(Fabric, FifoPerChannelUnderInterleavedTagStress) {
  // Many ranks, several concurrent senders per receiver, interleaved tags:
  // per-(source, destination, tag) channels must each stay FIFO even though
  // messages of different tags interleave arbitrarily on the same pair.
  const int p = 16;
  const int per_tag = 40;
  const Tag tags[] = {11, 22, 33};
  run_spmd(p, [&](Comm& comm) {
    const int me = comm.rank();
    const int next = (me + 1) % p;
    const int prev = (me + p - 1) % p;
    const int next2 = (me + 2) % p;
    const int prev2 = (me + p - 2) % p;
    // Round-robin the tag streams so their messages interleave per channel.
    for (int i = 0; i < per_tag; ++i) {
      for (Tag t : tags) {
        comm.send(next, t,
                  std::vector<double>{static_cast<double>(i), double(t)});
        comm.send(next2, t + 100,
                  std::vector<double>{static_cast<double>(i)});
      }
    }
    // Drain the far stream first, then the near streams in reverse tag
    // order: ordering within each channel must still be send order.
    for (int i = 0; i < per_tag; ++i)
      for (Tag t : tags)
        EXPECT_EQ(comm.recv_view(prev2, t + 100)[0], static_cast<double>(i));
    for (auto it = std::rbegin(tags); it != std::rend(tags); ++it) {
      for (int i = 0; i < per_tag; ++i) {
        const BufferView v = comm.recv_view(prev, *it);
        EXPECT_EQ(v[0], static_cast<double>(i));
        EXPECT_EQ(v[1], static_cast<double>(*it));
      }
    }
  });
}

TEST(RankTeam, ThreadsAreReusedAcrossRuns) {
  const int p = 8;
  Network net(p);
  std::vector<std::thread::id> first(p), second(p);
  run_spmd(net, [&](Comm& comm) {
    first[static_cast<std::size_t>(comm.rank())] = std::this_thread::get_id();
  });
  run_spmd(net, [&](Comm& comm) {
    second[static_cast<std::size_t>(comm.rank())] = std::this_thread::get_id();
  });
  for (int r = 0; r < p; ++r)
    EXPECT_EQ(first[static_cast<std::size_t>(r)],
              second[static_cast<std::size_t>(r)])
        << "rank " << r << " ran on a fresh thread";
}

TEST(RankTeam, StatsAccumulateAcrossRuns) {
  Network net(2);
  const auto body = [](Comm& comm) {
    if (comm.rank() == 0)
      comm.send(1, 1, std::vector<double>(4));
    else
      (void)comm.recv_view(0, 1);
  };
  run_spmd(net, body);
  run_spmd(net, body);
  EXPECT_EQ(net.stats().total().bytes_sent, 2u * 4 * sizeof(double));
  EXPECT_EQ(net.stats().total().messages_sent, 2u);
}

TEST(RankTeam, RecoversAfterAbortedRun) {
  Network net(3);
  EXPECT_THROW(run_spmd(net,
                        [](Comm& comm) {
                          if (comm.rank() == 0)
                            throw std::runtime_error("boom");
                          // Leave a stale message behind, then block.
                          comm.send(2, 5, std::vector<double>{1.0});
                          (void)comm.recv_view(0, 99);
                        }),
               std::runtime_error);
  EXPECT_TRUE(net.aborted());
  // A later run over the same network starts from a clean fabric: the abort
  // flag resets and rank 2 must not see rank 1's stale tag-5 message.
  std::atomic<int> clean{0};
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 1) {
      comm.send(2, 5, std::vector<double>{2.0});
    } else if (comm.rank() == 2) {
      if (comm.recv_view(1, 5)[0] == 2.0) clean.fetch_add(1);
    }
  });
  EXPECT_FALSE(net.aborted());
  EXPECT_EQ(clean.load(), 1);
}

TEST(Fabric, EveryDeliveredMessageIsReceived) {
  // Send/receive parity: after a drained run, the messages_received counter
  // must equal messages_sent — p2p sends, ghosts and multicasts alike
  // (multicasts count per remote destination on both sides; self-deliveries
  // on neither).
  const int p = 6;
  Network net(p);
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<int> dsts = {0, 1, 2, 3, 4, 5};  // includes free self-copy
      comm.multicast(dsts, 1, make_shared_buffer(std::vector<double>(8)));
      (void)comm.recv_view(0, 1);
      comm.send_ghost(1, 2, 64);
    } else {
      (void)comm.recv_view(0, 1);
      if (comm.rank() == 1) {
        (void)comm.recv_ghost(0, 2);
        comm.send(2, 3, std::vector<double>{1.0});
      }
      if (comm.rank() == 2) (void)comm.recv_view(1, 3);
    }
  });
  const CommVolume total = net.stats().total();
  EXPECT_EQ(total.messages_sent, 5u + 1 + 1);  // 5 remote mcast + ghost + p2p
  EXPECT_EQ(total.messages_received, total.messages_sent);
  EXPECT_EQ(total.bytes_received, total.bytes_sent);
}

TEST(Fabric, ManyToOneContention) {
  // All ranks hammer one receiver's channels concurrently; counts and
  // per-source FIFO must survive.
  const int p = 32;
  const int msgs = 25;
  Network net(p);
  run_spmd(net, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (int r = 1; r < p; ++r)
        for (int i = 0; i < msgs; ++i)
          EXPECT_EQ(comm.recv_view(r, 4)[0], static_cast<double>(i));
    } else {
      for (int i = 0; i < msgs; ++i)
        comm.send(0, 4, std::vector<double>{static_cast<double>(i)});
    }
  });
  EXPECT_EQ(net.stats().total().messages_sent,
            static_cast<std::uint64_t>(p - 1) * msgs);
}

TEST(RankTeam, SurvivesRepeatedRandomizedAborts) {
  // ConfChaos stress: hammer one network with runs that abort at an
  // LCG-randomized (rank, step), in both execution modes, then prove the
  // fabric is unpoisoned — a final clean run must move exactly the bytes a
  // fresh network moves, bit-identically, and every abort must land in the
  // aggregated failure report naming the aborting rank.
  const int p = 6;
  const int steps = 4;
  auto ring = [&](Comm& comm, int abort_rank, int abort_step) {
    for (int s = 0; s < steps; ++s) {
      if (comm.rank() == abort_rank && s == abort_step)
        throw std::runtime_error("chaos abort @rank " +
                                 std::to_string(comm.rank()));
      comm.send((comm.rank() + 1) % p, make_tag(1, unsigned(s)),
                std::vector<double>(16, double(s)));
      (void)comm.recv_view((comm.rank() + p - 1) % p,
                           make_tag(1, unsigned(s)));
    }
  };
  for (const bool vtime : {false, true}) {
    FabricSpec spec;
    spec.mode = vtime ? ExecMode::VirtualTime : ExecMode::Threaded;

    // Reference volume of one clean run, from a pristine network.
    Network fresh(p, spec);
    run_spmd(fresh, [&](Comm& comm) { ring(comm, -1, -1); });
    const CommVolume want = fresh.stats().total();

    Network net(p, spec);
    std::uint64_t rng = vtime ? 0xC0FFEE : 0xB00;
    for (int iter = 0; iter < 10; ++iter) {
      rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
      const int abort_rank = static_cast<int>((rng >> 33) % p);
      const int abort_step = static_cast<int>((rng >> 13) % steps);
      EXPECT_THROW(
          run_spmd(net,
                   [&](Comm& comm) { ring(comm, abort_rank, abort_step); }),
          std::runtime_error);
      EXPECT_TRUE(net.aborted());
      // The aborting rank is named in the aggregated report.
      bool named = false;
      for (const auto& failure : net.failure_report())
        if (failure.rank == abort_rank &&
            failure.message.find("chaos abort") != std::string::npos)
          named = true;
      EXPECT_TRUE(named) << "iter " << iter << " rank " << abort_rank;
    }

    // StatsBoard accumulates across runs, so compare the clean run's delta.
    const CommVolume before = net.stats().total();
    run_spmd(net, [&](Comm& comm) { ring(comm, -1, -1); });
    const CommVolume after = net.stats().total();
    EXPECT_EQ(after.bytes_sent - before.bytes_sent, want.bytes_sent);
    EXPECT_EQ(after.messages_sent - before.messages_sent, want.messages_sent);
    EXPECT_EQ(after.bytes_received - before.bytes_received,
              want.bytes_received);
    EXPECT_FALSE(net.aborted());
  }
}

}  // namespace
}  // namespace conflux::simnet
